package component

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// resetForTest gives each test a clean, enabled cache.
func resetForTest(t *testing.T) {
	t.Helper()
	prev := SetCacheEnabled(true)
	ResetCache()
	t.Cleanup(func() {
		SetCacheEnabled(prev)
		ResetCache()
	})
}

type testKey struct{ ID int }

func TestMemoizeHitReturnsSharedValue(t *testing.T) {
	resetForTest(t)
	var runs atomic.Int32
	synth := func() (*int, error) {
		runs.Add(1)
		v := 42
		return &v, nil
	}
	a, err := Memoize(KindCore, testKey{1}, synth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Memoize(KindCore, testKey{1}, synth)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Errorf("synthesis ran %d times, want 1", runs.Load())
	}
	if a != b {
		t.Error("hit returned a different instance; subsystem values must be shared")
	}
	cs := Stats()
	if k := cs.Kinds[KindCore]; k.Hits != 1 || k.Misses != 1 {
		t.Errorf("counters = %+v, want 1 hit / 1 miss", k)
	}
	if cs.Entries != 1 {
		t.Errorf("Entries = %d, want 1", cs.Entries)
	}
}

func TestMemoizeKeysAndKindsAreDistinct(t *testing.T) {
	resetForTest(t)
	mk := func(v int) func() (int, error) {
		return func() (int, error) { return v, nil }
	}
	if v, _ := Memoize(KindCore, testKey{1}, mk(10)); v != 10 {
		t.Fatalf("got %d", v)
	}
	// Same key value under a different kind must not collide.
	if v, _ := Memoize(KindCache, testKey{1}, mk(20)); v != 20 {
		t.Errorf("kind collision: got %d, want 20", v)
	}
	// Different key under the same kind must not collide.
	if v, _ := Memoize(KindCore, testKey{2}, mk(30)); v != 30 {
		t.Errorf("key collision: got %d, want 30", v)
	}
	if cs := Stats(); cs.Entries != 3 || cs.Total().Misses != 3 {
		t.Errorf("stats = %+v, want 3 entries / 3 misses", cs)
	}
}

func TestMemoizeErrorNotCached(t *testing.T) {
	resetForTest(t)
	boom := errors.New("boom")
	var runs int
	synth := func() (int, error) {
		runs++
		if runs == 1 {
			return 0, boom
		}
		return 7, nil
	}
	if _, err := Memoize(KindMC, testKey{1}, synth); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := Memoize(KindMC, testKey{1}, synth)
	if err != nil || v != 7 {
		t.Fatalf("retry after error: v=%d err=%v", v, err)
	}
	if runs != 2 {
		t.Errorf("synthesis ran %d times, want 2 (errors must not be cached)", runs)
	}
}

func TestMemoizeDisabledBypasses(t *testing.T) {
	resetForTest(t)
	SetCacheEnabled(false)
	var runs int
	synth := func() (int, error) { runs++; return 1, nil }
	for i := 0; i < 3; i++ {
		if _, err := Memoize(KindClock, testKey{1}, synth); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 3 {
		t.Errorf("synthesis ran %d times with cache disabled, want 3", runs)
	}
	cs := Stats()
	if k := cs.Kinds[KindClock]; k.Bypassed != 3 || k.Hits != 0 || k.Misses != 0 {
		t.Errorf("counters = %+v, want 3 bypassed only", k)
	}
	if cs.Entries != 0 {
		t.Errorf("Entries = %d, want 0 (disabled runs must not populate)", cs.Entries)
	}
}

func TestMemoizePanicUnblocksAndRetries(t *testing.T) {
	resetForTest(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the synthesis panic to propagate")
			}
		}()
		Memoize(KindFabric, testKey{1}, func() (int, error) { panic("model fault") })
	}()
	// The panicked entry must be gone: a later call runs a real synthesis.
	v, err := Memoize(KindFabric, testKey{1}, func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("after panic: v=%d err=%v", v, err)
	}
	if cs := Stats(); cs.Entries != 1 {
		t.Errorf("Entries = %d, want 1", cs.Entries)
	}
}

// TestMemoizeConcurrentSingleFlight is the -race proof of the layer:
// many goroutines synthesize overlapping keys; every key's synthesis
// must run exactly once and every caller must observe the same shared
// instance.
func TestMemoizeConcurrentSingleFlight(t *testing.T) {
	resetForTest(t)
	const (
		workers = 16
		keys    = 8
		rounds  = 25
	)
	var runs [keys]atomic.Int32
	got := make([][]*int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([]*int, keys)
			for r := 0; r < rounds; r++ {
				for k := 0; k < keys; k++ {
					v, err := Memoize(KindCore, testKey{k}, func() (*int, error) {
						runs[k].Add(1)
						x := k
						return &x, nil
					})
					if err != nil {
						t.Error(err)
						return
					}
					if got[w][k] == nil {
						got[w][k] = v
					} else if got[w][k] != v {
						t.Errorf("worker %d key %d: instance changed between calls", w, k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if n := runs[k].Load(); n != 1 {
			t.Errorf("key %d synthesized %d times, want 1", k, n)
		}
		for w := 1; w < workers; w++ {
			if got[w][k] != got[0][k] {
				t.Errorf("key %d: workers observed different instances", k)
				break
			}
		}
	}
	cs := Stats()
	k := cs.Kinds[KindCore]
	if k.Misses != keys {
		t.Errorf("misses = %d, want %d", k.Misses, keys)
	}
	if want := uint64(workers*rounds*keys - keys); k.Hits != want {
		t.Errorf("hits = %d, want %d", k.Hits, want)
	}
}

func TestCacheStatsDeltaAndHitRate(t *testing.T) {
	var a, b CacheStats
	a.Kinds[KindCore] = KindStats{Hits: 10, Misses: 4, Shared: 1, Bypassed: 2}
	a.Entries = 3
	b.Kinds[KindCore] = KindStats{Hits: 25, Misses: 5, Shared: 2, Bypassed: 2}
	b.Kinds[KindCache] = KindStats{Hits: 5, Misses: 5}
	b.Entries = 7
	d := b.Delta(a)
	if got := d.Kinds[KindCore]; got != (KindStats{Hits: 15, Misses: 1, Shared: 1, Bypassed: 0}) {
		t.Errorf("delta core = %+v", got)
	}
	if got := d.Kinds[KindCache]; got != (KindStats{Hits: 5, Misses: 5}) {
		t.Errorf("delta cache = %+v", got)
	}
	if d.Entries != 7 {
		t.Errorf("delta entries = %d, want newer snapshot's 7", d.Entries)
	}
	if hr := d.HitRate(); hr != float64(20)/float64(26) {
		t.Errorf("hit rate = %v", hr)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindCore: "core", KindCache: "cache", KindFabric: "fabric",
		KindMC: "mc", KindClock: "clock",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if fmt.Sprint(Kind(99)) != "unknown" {
		t.Errorf("out-of-range kind should print unknown")
	}
}
