// Package component defines the chip-level two-phase component contract
// and the subsystem-level synthesis cache that makes design-space sweeps
// incremental.
//
// McPAT's composability comes from one uniform result shape: every block
// — wire, array, functional unit, core, fabric — reduces to the same
// power/area/timing triple, so a chip is just a tree of such results.
// This package makes the second half of that idea explicit by splitting
// every chip subsystem into two phases:
//
//   - Synthesize: config-dependent and expensive. Geometry, energies and
//     leakage are solved once per distinct configuration (what core.New,
//     cache.New, the interconnect constructors, mc.New and clock.New do).
//     Synthesis results are memoized process-wide (see Memoize), keyed by
//     a canonical config value plus the technology node's fingerprint.
//
//   - Score: cheap and pure. A synthesized component maps an Assignment —
//     the peak (TDP) and runtime activity it is driven with — to a report
//     Item. Scoring never mutates the component, so one synthesized
//     instance may be shared by any number of chips concurrently.
//
// chip.New assembles a processor as a registry of Components paired with
// assignment closures; chip.Report is then a pure Score pass. A DSE sweep
// that varies only one subsystem's knobs re-synthesizes only that
// subsystem — delta re-evaluation falls out of the cache keying rather
// than from any sweep-specific logic.
package component

import "mcpat/internal/power"

// Kind identifies the subsystem family a synthesized component belongs
// to. The memo layer keeps per-kind reuse counters so sweeps can report
// which subsystems were actually re-synthesized.
type Kind uint8

const (
	// KindCore is a processor core model (core.Core).
	KindCore Kind = iota
	// KindCache is a shared cache level (cache.Cache).
	KindCache
	// KindFabric covers on-chip interconnect pieces: routers, links,
	// buses, and crossbars.
	KindFabric
	// KindMC covers the off-chip interfaces: memory controller, NIU,
	// and PCIe.
	KindMC
	// KindClock is the chip-wide clock distribution network.
	KindClock

	numKinds
)

// NumKinds is the number of distinct component kinds tracked by the
// cache counters.
const NumKinds = int(numKinds)

func (k Kind) String() string {
	switch k {
	case KindCore:
		return "core"
	case KindCache:
		return "cache"
	case KindFabric:
		return "fabric"
	case KindMC:
		return "mc"
	case KindClock:
		return "clock"
	}
	return "unknown"
}

// Assignment is the Score-phase input: the activity a component is
// driven with under TDP and runtime conditions. Which fields a component
// reads is part of its contract; unused fields are ignored.
type Assignment struct {
	// Peak and Run are the TDP and runtime activity vectors for
	// components driven by a single access stream (caches, fabrics,
	// memory and I/O controllers).
	Peak, Run power.Activity

	// AuxPeak and AuxRun carry a second activity stream where one
	// exists (the intra-cluster bus of a clustered mesh fabric).
	AuxPeak, AuxRun power.Activity

	// Vec carries a component-specific activity payload that does not
	// reduce to plain read/write rates — the core's full per-structure
	// activity vector. Components that use Vec document the concrete
	// type they expect.
	Vec any

	// Arena, when non-nil, supplies bump-allocated report Items for the
	// Score pass (the trace engine's per-interval hot path). Items drawn
	// from it are valid only until the arena is reset, so callers that
	// set it own the lifetime of the returned tree. A nil Arena keeps
	// every Score result on the heap; both paths run identical
	// arithmetic, so the reports are bit-identical.
	Arena *power.Arena
}

// Component is a synthesized chip subsystem ready for scoring. Score
// maps an activity assignment to the subsystem's report subtree; it must
// be pure (no mutation of the component, fresh Items every call) so that
// memoized components can be shared across chips and goroutines.
type Component interface {
	Score(a Assignment) *power.Item
}
