package component

import "mcpat/internal/persist"

// Disk tier of the subsystem synthesis cache.
//
// Subsystem values are arbitrary Go structs (a core with twenty arrays,
// a banked cache), so unlike the array tier there is no universal
// serialization. Subsystem packages that can round-trip their value
// supply a PersistCodec per call; MemoizePersist then extends the
// single-flight walk to memory -> disk -> synthesize for that kind.
// Kinds without a codec simply stop at the memory tier — their
// re-synthesis is already cheap when the array tier underneath is
// disk-warm, because a subsystem build decomposes into array solves
// (all disk hits) plus fast analytic logic.

// PersistCodec serializes one memoized subsystem for the disk tier.
// The closures are built per call, so Decode may capture live context
// the serialized form deliberately omits (the caller's *tech.Node, for
// example — identified on disk by its value fingerprint inside Key).
type PersistCodec struct {
	// NS is the disk namespace, which must embed a format version
	// ("subsys.cache.v1"): bump it whenever Key or value encoding
	// changes so stale entries strand instead of decoding wrongly.
	NS string
	// Key returns the deterministic byte encoding of the memo key.
	Key func() ([]byte, error)
	// Encode serializes the synthesized value.
	Encode func(v any) ([]byte, error)
	// Decode reverses Encode. A decode failure is treated as a miss
	// (cold synthesis republishes); it must never panic.
	Decode func(data []byte) (any, error)
}

// diskLoad returns the decoded disk entry for the codec's key, or nil.
// Called only by the single-flight owner of a memory miss.
func diskLoad[T any](pc *PersistCodec) (T, bool) {
	var zero T
	store := persist.Default()
	if pc == nil || store == nil {
		return zero, false
	}
	kb, err := pc.Key()
	if err != nil {
		return zero, false
	}
	data, ok := store.Get(pc.NS, kb)
	if !ok {
		return zero, false
	}
	v, err := pc.Decode(data)
	if err != nil {
		return zero, false
	}
	typed, ok := v.(T)
	if !ok {
		return zero, false
	}
	return typed, true
}

// diskPublish stores a freshly synthesized value. Never fails the
// caller.
func diskPublish(pc *PersistCodec, v any) {
	store := persist.Default()
	if pc == nil || store == nil {
		return
	}
	kb, err := pc.Key()
	if err != nil {
		return
	}
	data, err := pc.Encode(v)
	if err != nil {
		return
	}
	store.Put(pc.NS, kb, data)
}
