package component

import (
	"sync"
	"sync/atomic"
)

// Subsystem-level memoized synthesis with single-flight deduplication.
//
// This lifts the machinery of internal/array's result cache one level
// up: instead of caching individual SRAM solves, it caches whole
// synthesized subsystems (a core with its twenty arrays, a banked cache,
// a router). A DSE candidate that shares a subsystem configuration with
// a previously evaluated candidate skips that subsystem's synthesis
// entirely — it does not even consult the array cache — so a sweep that
// varies only NoC parameters re-synthesizes fabrics and clocks but never
// cores or caches.
//
// Differences from the array cache, both deliberate:
//
//   - Values are shared, not cloned. Synthesized subsystems are
//     immutable after construction (the Score phase is pure), so hits
//     return the same instance the one real synthesis produced. This is
//     what makes a cache hit O(map lookup) regardless of how expensive
//     the subsystem was to build.
//
//   - Keys are supplied by the caller. Each subsystem package owns its
//     canonical key (its normalized Config with Tech and Name cleared,
//     plus the tech.Node value fingerprint), because only it knows which
//     fields its constructor reads. The key rules mirror
//     internal/array/key.go: two configs that can synthesize different
//     results must key differently; Name never keys (it only labels
//     reports and errors).
//
// The correctness properties carry over from the array cache: only
// successful syntheses are cached; errors embed the caller's Name, so a
// waiter that joined a failing flight re-runs locally for a correctly
// attributed error; a panicking synthesis (contained at the chip
// boundary) unblocks waiters and leaves no entry behind; node retunes
// (OverrideVdd, temperature) invalidate naturally through the
// fingerprint embedded in every key.

// memoShards bounds lock contention between parallel DSE workers.
const memoShards = 16

type memoKey struct {
	kind Kind
	key  any // comparable, caller-supplied canonical key
}

type memoEntry struct {
	done chan struct{} // closed when val/err are final
	val  any           // immutable once done is closed
	err  error
}

type memoShard struct {
	mu      sync.Mutex
	entries map[memoKey]*memoEntry
}

type kindCounters struct {
	hits     atomic.Uint64
	misses   atomic.Uint64
	shared   atomic.Uint64
	bypassed atomic.Uint64
}

type memoCache struct {
	disabled atomic.Bool
	kinds    [numKinds]kindCounters
	shards   [memoShards]memoShard
}

var memo memoCache

// shardOf picks the shard for a key. Go map keys of type any hash well,
// but we cannot hash an any ourselves without reflection; instead shards
// are selected by kind, which is enough because contention concentrates
// within one kind only during homogeneous sweeps, where the critical
// section is a single map operation.
func shardOf(k memoKey) *memoShard {
	return &memo.shards[int(k.kind)%memoShards]
}

// Memoize returns the memoized result of synth for the given (kind, key)
// pair, running synth at most once per key across the process.
// Concurrent calls with the same key share one in-flight synthesis. key
// must be a comparable value that canonically identifies the synthesis
// inputs (see the package rules above). The returned value is shared:
// callers must treat it as immutable.
func Memoize[T any](kind Kind, key any, synth func() (T, error)) (T, error) {
	return MemoizePersist(kind, key, nil, synth)
}

// MemoizePersist is Memoize extended with a disk tier: when a
// persistent cache is configured (persist.SetDefault) and pc is
// non-nil, the single-flight owner of a memory miss first tries to
// hydrate the value from disk, and publishes freshly synthesized
// values back. Disk problems of every kind degrade to cold synthesis.
// A disk-hydrated value populates the memory cache and counts as a
// memory-tier miss (the disk tier keeps its own counters).
func MemoizePersist[T any](kind Kind, key any, pc *PersistCodec, synth func() (T, error)) (T, error) {
	c := &memo.kinds[kind]
	if memo.disabled.Load() {
		c.bypassed.Add(1)
		return synth()
	}
	mk := memoKey{kind: kind, key: key}
	sh := shardOf(mk)

	sh.mu.Lock()
	if e, ok := sh.entries[mk]; ok {
		sh.mu.Unlock()
		select {
		case <-e.done:
		default:
			// Joining a synthesis started by a concurrent caller.
			c.shared.Add(1)
			<-e.done
		}
		if e.err != nil {
			// The shared synthesis failed. Its error embeds the other
			// caller's Name, so re-run locally for a correctly
			// attributed error (failures are rare and not hot).
			c.bypassed.Add(1)
			return synth()
		}
		c.hits.Add(1)
		return e.val.(T), nil
	}
	e := &memoEntry{done: make(chan struct{})}
	if sh.entries == nil {
		sh.entries = make(map[memoKey]*memoEntry)
	}
	sh.entries[mk] = e
	sh.mu.Unlock()

	// This goroutine owns the synthesis. The deferred cleanup also
	// covers a panicking model (contained at the chip boundary): waiters
	// are unblocked with an error entry and the key is removed so later
	// callers retry rather than deadlock.
	completed := false
	defer func() {
		if completed {
			return
		}
		e.err = errSynthPanicked
		sh.mu.Lock()
		delete(sh.entries, mk)
		sh.mu.Unlock()
		close(e.done)
	}()

	// Disk tier: only the flight owner consults it, preserving
	// single-flight across memory -> disk -> synthesize.
	if val, ok := diskLoad[T](pc); ok {
		completed = true
		c.misses.Add(1)
		e.val = val
		close(e.done)
		return val, nil
	}

	val, err := synth()
	completed = true
	if err != nil {
		e.err = err
		sh.mu.Lock()
		delete(sh.entries, mk)
		sh.mu.Unlock()
		close(e.done)
		var zero T
		return zero, err
	}
	c.misses.Add(1)
	e.val = val
	close(e.done)
	// Publish to the disk tier so future processes warm-start; runs
	// after waiters are released and never fails the caller.
	diskPublish(pc, val)
	return val, nil
}

// errSynthPanicked marks entries whose owning synthesis unwound via
// panic. Waiters never surface it; they re-synthesize (and re-panic)
// themselves.
var errSynthPanicked = &panickedError{}

type panickedError struct{}

func (*panickedError) Error() string { return "component: shared synthesis panicked" }

// KindStats is the counter snapshot for one component kind.
type KindStats struct {
	// Hits counts syntheses served from the cache (including Shared).
	Hits uint64
	// Misses counts memory-tier misses that populated the cache: real
	// synthesis runs, plus values hydrated from the disk tier for kinds
	// that register a PersistCodec (the disk tier keeps its own
	// counters; see internal/persist).
	Misses uint64
	// Shared counts hits that joined an in-flight synthesis started by
	// a concurrent caller — the single-flight deduplications.
	Shared uint64
	// Bypassed counts syntheses that ran uncached: caching disabled, or
	// a waiter re-running a synthesis whose shared flight failed.
	Bypassed uint64
}

func (k KindStats) add(o KindStats) KindStats {
	return KindStats{
		Hits:     k.Hits + o.Hits,
		Misses:   k.Misses + o.Misses,
		Shared:   k.Shared + o.Shared,
		Bypassed: k.Bypassed + o.Bypassed,
	}
}

func (k KindStats) sub(o KindStats) KindStats {
	return KindStats{
		Hits:     k.Hits - o.Hits,
		Misses:   k.Misses - o.Misses,
		Shared:   k.Shared - o.Shared,
		Bypassed: k.Bypassed - o.Bypassed,
	}
}

// CacheStats is a snapshot of the subsystem synthesis-cache counters,
// broken down by component kind.
type CacheStats struct {
	// Kinds holds per-kind counters indexed by Kind.
	Kinds [NumKinds]KindStats
	// Entries is the number of resident cached subsystems (a gauge, not
	// a counter; Delta keeps the newer snapshot's value).
	Entries int
}

// Total sums the per-kind counters.
func (s CacheStats) Total() KindStats {
	var t KindStats
	for _, k := range s.Kinds {
		t = t.add(k)
	}
	return t
}

// HitRate returns the fraction of cache-served syntheses among all
// syntheses that consulted the cache.
func (s CacheStats) HitRate() float64 {
	t := s.Total()
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}

// Delta returns the counter difference s - prev, for reporting one
// sweep's cache behavior. Entries is carried from s unchanged.
func (s CacheStats) Delta(prev CacheStats) CacheStats {
	d := CacheStats{Entries: s.Entries}
	for i := range s.Kinds {
		d.Kinds[i] = s.Kinds[i].sub(prev.Kinds[i])
	}
	return d
}

// Stats returns the current global cache counters.
func Stats() CacheStats {
	var s CacheStats
	for i := range memo.kinds {
		c := &memo.kinds[i]
		s.Kinds[i] = KindStats{
			Hits:     c.hits.Load(),
			Misses:   c.misses.Load(),
			Shared:   c.shared.Load(),
			Bypassed: c.bypassed.Load(),
		}
	}
	for i := range memo.shards {
		sh := &memo.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}

// ResetCache drops every cached subsystem and zeroes the counters.
// In-flight syntheses complete normally but repopulate a fresh table.
func ResetCache() {
	for i := range memo.shards {
		sh := &memo.shards[i]
		sh.mu.Lock()
		sh.entries = nil
		sh.mu.Unlock()
	}
	for i := range memo.kinds {
		c := &memo.kinds[i]
		c.hits.Store(0)
		c.misses.Store(0)
		c.shared.Store(0)
		c.bypassed.Store(0)
	}
}

// SetCacheEnabled turns subsystem-result caching on or off (it is on by
// default) and returns the previous setting. Disabling does not drop
// resident entries; combine with ResetCache for a cold, cache-free run.
func SetCacheEnabled(enabled bool) bool {
	return !memo.disabled.Swap(!enabled)
}

// CacheEnabled reports whether synthesized subsystems are being cached.
func CacheEnabled() bool { return !memo.disabled.Load() }
