// Package presets ships ready-to-run chip descriptions, the counterpart
// of the configuration templates the original McPAT distribution includes
// (Niagara/Alpha/Xeon validation targets plus ARM- and x86-class
// processors). Each preset is a complete chip.Config that synthesizes out
// of the box and can be dumped to XML as a starting point for user
// modifications.
package presets

import (
	"fmt"
	"sort"

	"mcpat/internal/cache"
	"mcpat/internal/chip"
	"mcpat/internal/core"
	"mcpat/internal/mc"
	"mcpat/internal/tech"
	"mcpat/internal/validation"
)

// Preset couples a name and description with a chip configuration.
type Preset struct {
	Name        string
	Description string
	Config      chip.Config
}

// ARMA9 returns a Cortex-A9-class embedded chip: dual 2-wide out-of-order
// cores at 45 nm / 1 GHz with a small shared L2 - the low-power end of
// the design space.
func ARMA9() Preset {
	return Preset{
		Name:        "arm-a9",
		Description: "dual-core Cortex-A9-class embedded SoC, 45nm, 1GHz, LOP devices",
		Config: chip.Config{
			Name:    "arm-a9-duo",
			NM:      45,
			ClockHz: 1.0e9,
			// Embedded parts ship on low-operating-power processes.
			Dev:      tech.LOP,
			NumCores: 2,
			Core: core.Config{
				Name:       "a9-core",
				OoO:        true,
				FetchWidth: 2, DecodeWidth: 2, IssueWidth: 2, CommitWidth: 2,
				PipelineDepth: 8,
				ROBEntries:    40, IQEntries: 16, FPIQEntries: 8,
				PhysIntRegs: 56, PhysFPRegs: 32,
				ICache:            core.CacheParams{Bytes: 32 << 10, BlockBytes: 32, Assoc: 4},
				DCache:            core.CacheParams{Bytes: 32 << 10, BlockBytes: 32, Assoc: 4},
				BTBEntries:        512,
				GlobalPredEntries: 4096,
				RASEntries:        8,
				ITLBEntries:       32, DTLBEntries: 32,
				IntALUs: 2, FPUs: 1, MulDivs: 1,
				LQEntries: 8, SQEntries: 8,
				GlueGates: 900e3,
			},
			L2: &cache.Config{
				Name: "L2", Bytes: 512 << 10, BlockBytes: 32, Assoc: 8, Banks: 2,
			},
			NoC: chip.NoCSpec{Kind: chip.Bus, FlitBits: 64},
			MC: &mc.Config{
				Channels: 1, DataBusBits: 32,
				PeakBandwidth: 4e9, LVDS: true,
			},
		},
	}
}

// AtomClass returns an Atom-class in-order x86 chip: dual 2-wide in-order
// SMT cores at 45 nm.
func AtomClass() Preset {
	return Preset{
		Name:        "atom-class",
		Description: "dual-core in-order x86 netbook chip, 45nm, 1.6GHz",
		Config: chip.Config{
			Name:     "atom-class-duo",
			NM:       45,
			ClockHz:  1.6e9,
			NumCores: 2,
			Core: core.Config{
				Name:       "atom-core",
				X86:        true,
				Threads:    2,
				FetchWidth: 2, DecodeWidth: 2, IssueWidth: 2, CommitWidth: 2,
				PipelineDepth: 16,
				ICache:        core.CacheParams{Bytes: 32 << 10, BlockBytes: 64, Assoc: 8},
				DCache:        core.CacheParams{Bytes: 24 << 10, BlockBytes: 64, Assoc: 6},
				BTBEntries:    4096, GlobalPredEntries: 4096, RASEntries: 8,
				ITLBEntries: 32, DTLBEntries: 32,
				IntALUs: 2, FPUs: 1, MulDivs: 1,
				LQEntries: 12, SQEntries: 8,
				GlueGates: 1.4e6,
			},
			L2: &cache.Config{
				Name: "L2", Bytes: 1 << 20, BlockBytes: 64, Assoc: 8, Banks: 2,
			},
			NoC: chip.NoCSpec{Kind: chip.Bus, FlitBits: 64},
			MC: &mc.Config{
				Channels: 1, DataBusBits: 64,
				PeakBandwidth: 8.5e9, LVDS: true,
			},
		},
	}
}

// PenrynClass returns a Penryn-class laptop chip: dual 4-wide OoO x86
// cores at 45 nm with a large shared L2.
func PenrynClass() Preset {
	return Preset{
		Name:        "penryn-class",
		Description: "dual-core 4-wide OoO x86 laptop chip, 45nm, 2.4GHz",
		Config: chip.Config{
			Name:     "penryn-class-duo",
			NM:       45,
			ClockHz:  2.4e9,
			NumCores: 2,
			Core: core.Config{
				Name:       "penryn-core",
				OoO:        true,
				X86:        true,
				FetchWidth: 4, DecodeWidth: 4, IssueWidth: 6, CommitWidth: 4,
				PipelineDepth: 14,
				ROBEntries:    96, IQEntries: 32, FPIQEntries: 32,
				PhysIntRegs: 128, PhysFPRegs: 128,
				ICache:            core.CacheParams{Bytes: 32 << 10, BlockBytes: 64, Assoc: 8},
				DCache:            core.CacheParams{Bytes: 32 << 10, BlockBytes: 64, Assoc: 8, Ports: 2},
				BTBEntries:        4096,
				LocalPredEntries:  2048,
				GlobalPredEntries: 8192,
				ChooserEntries:    8192,
				RASEntries:        16,
				ITLBEntries:       128, DTLBEntries: 256,
				IntALUs: 3, FPUs: 2, MulDivs: 1,
				LQEntries: 32, SQEntries: 20,
				GlueGates: 5e6, GlueActivity: 0.15,
			},
			L2: &cache.Config{
				Name: "L2", Bytes: 6 << 20, BlockBytes: 64, Assoc: 24, Banks: 2,
			},
			NoC: chip.NoCSpec{Kind: chip.Bus, FlitBits: 128},
			MC: &mc.Config{
				Channels: 1, DataBusBits: 64,
				PeakBandwidth: 12.8e9, LVDS: false, // FSB
			},
		},
	}
}

// All returns every preset: the three processor-class templates plus the
// four validation targets.
func All() []Preset {
	out := []Preset{ARMA9(), AtomClass(), PenrynClass()}
	for _, t := range validation.All() {
		out = append(out, Preset{
			Name:        shortName(t.Ref.Name),
			Description: t.Ref.Name + " validation target",
			Config:      t.Chip,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func shortName(ref string) string {
	switch {
	case ref == "Niagara (UltraSPARC T1)":
		return "niagara"
	case ref == "Niagara2 (UltraSPARC T2)":
		return "niagara2"
	case ref == "Alpha 21364 (EV7)":
		return "alpha21364"
	case ref == "Xeon Tulsa (7100)":
		return "xeon-tulsa"
	}
	return ref
}

// ByName looks a preset up by its short name.
func ByName(name string) (Preset, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("presets: unknown preset %q", name)
}
