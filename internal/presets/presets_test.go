package presets

import (
	"testing"

	"mcpat/internal/chip"
	"mcpat/internal/tech"
)

func TestAllPresetsSynthesize(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("expected 7 presets (3 templates + 4 validation), got %d", len(all))
	}
	for _, p := range all {
		proc, err := chip.New(p.Config)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		rep := proc.Report(nil)
		if rep.Peak() <= 0 || rep.Area <= 0 {
			t.Errorf("%s: degenerate report", p.Name)
		}
		if p.Description == "" {
			t.Errorf("%s: missing description", p.Name)
		}
		t.Logf("%-14s TDP %7.1f W  area %7.1f mm2", p.Name, rep.Peak(), rep.Area*1e6)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("arm-a9")
	if err != nil {
		t.Fatal(err)
	}
	if p.Config.Dev != tech.LOP {
		t.Error("A9 preset must use LOP devices")
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown preset must fail")
	}
}

func TestPresetPowerClasses(t *testing.T) {
	// The three processor classes must land in their market power bands.
	tdp := func(p Preset) float64 {
		proc, err := chip.New(p.Config)
		if err != nil {
			t.Fatal(err)
		}
		return proc.TDP()
	}
	a9 := tdp(ARMA9())
	atom := tdp(AtomClass())
	penryn := tdp(PenrynClass())
	t.Logf("A9 %.2f W, Atom-class %.2f W, Penryn-class %.2f W", a9, atom, penryn)
	if a9 > 3 {
		t.Errorf("embedded A9-class chip = %.2f W, want < 3 W", a9)
	}
	if atom < 1 || atom > 15 {
		t.Errorf("Atom-class chip = %.2f W, want single-digit watts", atom)
	}
	if penryn < 15 || penryn > 70 {
		t.Errorf("Penryn-class chip = %.2f W, want laptop-class 15-70 W", penryn)
	}
	if !(a9 < atom && atom < penryn) {
		t.Error("power ordering A9 < Atom < Penryn violated")
	}
}

func TestPresetsAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if seen[p.Name] {
			t.Errorf("duplicate preset name %q", p.Name)
		}
		seen[p.Name] = true
	}
}
