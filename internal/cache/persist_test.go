package cache

// Component-tier disk round-trip: a shared cache hydrated from the
// persistent store must be bit-identical to one synthesized cold,
// including its normalized config and reattached technology node.

import (
	"bytes"
	"reflect"
	"testing"

	"mcpat/internal/array"
	"mcpat/internal/component"
	"mcpat/internal/persist"
	"mcpat/internal/persist/faultfs"
)

func resetTiers() {
	component.ResetCache()
	array.ResetCache()
}

func installStore(t *testing.T, opts persist.Options) *persist.Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := persist.Open(opts)
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	prev := persist.SetDefault(s)
	resetTiers()
	t.Cleanup(func() {
		persist.SetDefault(prev)
		s.Close()
		resetTiers()
	})
	return s
}

func persistGrid() []Config {
	dir := l2cfg()
	dir.Name = "l2d"
	dir.Directory = true
	dir.Sharers = 16
	small := l2cfg()
	small.Name = "l2s"
	small.Bytes = 256 * 1024
	small.Banks = 1
	return []Config{l2cfg(), dir, small}
}

func TestCacheCodecRoundTripsBitIdentical(t *testing.T) {
	for _, cfg := range persistGrid() {
		cold, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		norm := cfg
		if err := norm.applyDefaults(); err != nil {
			t.Fatal(err)
		}
		key := synthKey{TechFP: norm.Tech.Fingerprint(), Cfg: norm}
		key.Cfg.Tech = nil
		pc := persistCodec(key, norm)
		data, err := pc.Encode(cold)
		if err != nil {
			t.Fatalf("%s encode: %v", cfg.Name, err)
		}
		v, err := pc.Decode(data)
		if err != nil {
			t.Fatalf("%s decode: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(cold, v.(*Cache)) {
			t.Errorf("%s: decoded cache differs from original", cfg.Name)
		}
	}
}

// TestCacheDiskKeyIsCanonical pins the disk key to the explicit binary
// encoding. An earlier revision gob-encoded the synthKey, and gob
// embeds wire type IDs allocated process-globally in first-use order —
// the same config produced different key bytes in different processes
// (whichever types that process happened to gob first), so every
// cross-process warm start silently missed and republished.
func TestCacheDiskKeyIsCanonical(t *testing.T) {
	norm := l2cfg()
	if err := norm.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	key := synthKey{TechFP: norm.Tech.Fingerprint(), Cfg: norm}
	key.Cfg.Tech = nil
	key.Cfg.Name = ""
	pc := persistCodec(key, norm)
	k1, err := pc.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := pc.Key()
	if !bytes.Equal(k1, k2) {
		t.Fatal("key encoding is not deterministic")
	}
	if len(k1) != 15*8 {
		t.Fatalf("key length %d, want fixed 15*8 bytes (one word per field)", len(k1))
	}
	for _, marker := range []string{"synthKey", "Config", "TechFP"} {
		if bytes.Contains(k1, []byte(marker)) {
			t.Fatalf("key embeds gob type descriptor %q; must stay an explicit field encoding", marker)
		}
	}
	// Every distinguishing field must reach the encoding.
	mutate := []func(*synthKey){
		func(k *synthKey) { k.TechFP++ },
		func(k *synthKey) { k.Cfg.Bytes *= 2 },
		func(k *synthKey) { k.Cfg.Assoc *= 2 },
		func(k *synthKey) { k.Cfg.Directory = !k.Cfg.Directory; k.Cfg.Sharers = 8 },
		func(k *synthKey) { k.Cfg.TargetHz *= 2 },
		func(k *synthKey) { k.Cfg.EDRAM = !k.Cfg.EDRAM },
	}
	for i, m := range mutate {
		k := key
		m(&k)
		if bytes.Equal(k1, k.encodeKey()) {
			t.Errorf("mutation %d does not change the disk key", i)
		}
	}
}

func TestCacheDiskHydrationBitIdentical(t *testing.T) {
	grid := persistGrid()
	// Ground truth without any caches.
	prevC := component.SetCacheEnabled(false)
	prevA := array.SetCacheEnabled(false)
	ref := make([]*Cache, len(grid))
	for i, cfg := range grid {
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("%s cold: %v", cfg.Name, err)
		}
		ref[i] = c
	}
	component.SetCacheEnabled(prevC)
	array.SetCacheEnabled(prevA)

	store := installStore(t, persist.Options{})
	for _, cfg := range grid {
		if _, err := Synthesize(cfg); err != nil {
			t.Fatalf("%s populate: %v", cfg.Name, err)
		}
	}
	base := store.Stats()
	if base.Entries == 0 {
		t.Fatal("population published no disk entries")
	}

	// Fresh process simulation: drop memory tiers, hydrate from disk.
	resetTiers()
	for i, cfg := range grid {
		c, err := Synthesize(cfg)
		if err != nil {
			t.Fatalf("%s hydrate: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(c, ref[i]) {
			t.Errorf("%s: disk-hydrated cache differs from cold synthesis", cfg.Name)
		}
		if c.cfg.Tech == nil || c.cfg.Tech.Fingerprint() != ref[i].cfg.Tech.Fingerprint() {
			t.Errorf("%s: hydrated cache lost its technology node", cfg.Name)
		}
	}
	d := store.Stats().Delta(base)
	if d.Hits == 0 {
		t.Fatal("hydration pass never hit the disk tier")
	}
	// Subsystem hits short-circuit before the array tier: the whole-cache
	// entries must satisfy the solve without re-running array synthesis.
	if ast := array.Stats(); ast.Misses != 0 {
		t.Errorf("subsystem hydration re-synthesized %d arrays", ast.Misses)
	}
}

func TestCacheDiskCorruptionFallsBack(t *testing.T) {
	grid := persistGrid()
	store := installStore(t, persist.Options{})
	ref := make([]*Cache, len(grid))
	for i, cfg := range grid {
		c, err := Synthesize(cfg)
		if err != nil {
			t.Fatalf("%s populate: %v", cfg.Name, err)
		}
		ref[i] = c
	}
	paths, err := faultfs.Entries(store.Dir())
	if err != nil || len(paths) == 0 {
		t.Fatalf("no entries published (%v)", err)
	}
	for _, p := range paths {
		if err := faultfs.Scribble(p); err != nil {
			t.Fatal(err)
		}
	}
	resetTiers()
	for i, cfg := range grid {
		c, err := Synthesize(cfg)
		if err != nil {
			t.Fatalf("%s with corrupt disk: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(c, ref[i]) {
			t.Errorf("%s: fallback result differs from reference", cfg.Name)
		}
	}
	if store.Stats().Corrupt == 0 {
		t.Fatal("corrupted entries were not quarantined")
	}
}
