package cache

import "mcpat/internal/component"

// synthKey canonically identifies one cache synthesis: the normalized
// Config (defaults applied, exactly what New reads) with Tech replaced
// by the node's value fingerprint and report-/error-only or consumed
// fields cleared.
type synthKey struct {
	TechFP uint64
	Cfg    Config
}

// Synthesize is the memoized front of New: repeated synthesis of an
// equivalent cache configuration returns the one shared *Cache instance.
// The result must be treated as immutable (Report, AccessTime and Cfg
// already are pure). Errors are never cached and carry the caller's
// Name.
func Synthesize(cfg Config) (*Cache, error) {
	norm := cfg
	if err := norm.applyDefaults(); err != nil {
		return nil, err
	}
	key := synthKey{TechFP: norm.Tech.Fingerprint(), Cfg: norm}
	key.Cfg.Tech = nil
	key.Cfg.Name = ""
	// CellHP only steers the cell-device resolution applyDefaults just
	// performed; CellDev now carries the outcome.
	key.Cfg.CellHP = false
	if !key.Cfg.Directory {
		key.Cfg.Sharers = 0 // unread without a directory
	}
	// The disk tier (active only when a persistent cache directory is
	// configured) round-trips the synthesized cache through the codec in
	// persist.go; norm supplies the *tech.Node to reattach on decode.
	return component.MemoizePersist(component.KindCache, key, persistCodec(key, norm), func() (*Cache, error) {
		return New(cfg)
	})
}
