// Package cache implements shared cache levels (L2/L3) as McPAT models
// them: a banked set-associative data+tag array, miss-status holding
// registers, write-back buffers, and an optional coherence directory for
// multicore chips.
package cache

import (
	"fmt"

	"mcpat/internal/array"
	"mcpat/internal/power"
	"mcpat/internal/tech"
)

// Config describes one shared cache level.
type Config struct {
	Name string

	Tech    *tech.Node
	Dev     tech.DeviceType
	CellDev tech.DeviceType // cell device class (see CellHP)
	// CellHP forces high-performance cells. By default, caches of 1MB
	// and larger use LSTP cells (sleep-capable low-leakage arrays, the
	// standard practice for large last-level caches) while periphery
	// stays on the chip's device class.
	CellHP bool
	// EDRAM builds the data array from 1T1C embedded-DRAM cells (denser,
	// slower, refresh-powered) - the large-LLC option of late McPAT
	// versions.
	EDRAM       bool
	LongChannel bool

	Bytes      int
	BlockBytes int
	Assoc      int
	Banks      int
	Ports      int // RW ports per bank

	MSHRs    int // 0 selects 16
	WBDepth  int // write-back buffer entries; 0 selects 16
	TargetHz float64

	// Directory adds a coherence directory sized for the given number of
	// sharers (presence-bit vector per block).
	Directory bool
	Sharers   int
}

// Cache is a synthesized shared cache level.
type Cache struct {
	power.PAT

	Data      *array.Result
	MSHR      *array.Result
	WBBuffer  *array.Result
	Directory *array.Result // nil unless configured

	cfg Config
}

// applyDefaults validates the configuration and fills every defaulted
// field in place, leaving cfg in the exact form the synthesis reads. It
// is idempotent; Synthesize relies on it for canonical cache keys.
func (cfg *Config) applyDefaults() error {
	if cfg.Tech == nil {
		return fmt.Errorf("cache %q: technology node required", cfg.Name)
	}
	if cfg.Bytes <= 0 {
		return fmt.Errorf("cache %q: capacity required", cfg.Name)
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = 64
	}
	if cfg.Assoc <= 0 {
		cfg.Assoc = 8
	}
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.Ports <= 0 {
		cfg.Ports = 1
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 16
	}
	if cfg.WBDepth <= 0 {
		cfg.WBDepth = 16
	}
	if cfg.CellDev == tech.HP && !cfg.CellHP && cfg.Bytes >= 1024*1024 {
		cfg.CellDev = tech.LSTP
	}
	if cfg.Directory && cfg.Sharers <= 0 {
		cfg.Sharers = 8
	}
	return nil
}

// New synthesizes the cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	target := 0.0
	if cfg.TargetHz > 0 {
		// Shared caches are typically pipelined over 2+ cycles; require
		// the bank cycle time to keep up with every-other-cycle access.
		target = 2 / cfg.TargetHz
	}
	cellKind := array.SRAM
	if cfg.EDRAM {
		cellKind = array.EDRAM
	}

	c := &Cache{cfg: cfg}
	var err error
	// Shared caches carry SEC-DED ECC: 8 check bits per 64 data bits.
	eccBits := cfg.BlockBytes * 8 * 9 / 8
	if c.Data, err = array.New(array.Config{
		Name: cfg.Name, Tech: cfg.Tech, Periph: cfg.Dev, Cell: cfg.CellDev,
		LongChannel: cfg.LongChannel, CellKind: cellKind,
		Bytes: cfg.Bytes * 9 / 8, BlockBits: eccBits,
		Assoc: cfg.Assoc, Banks: cfg.Banks, RWPorts: cfg.Ports,
		TargetCycle: target,
	}); err != nil {
		return nil, err
	}
	if c.MSHR, err = array.New(array.Config{
		Name: cfg.Name + ".mshr", Tech: cfg.Tech, Periph: cfg.Dev, Cell: cfg.Dev,
		LongChannel: cfg.LongChannel,
		Entries:     cfg.MSHRs, EntryBits: 42,
		CellKind: array.CAM, SearchPorts: 1, RWPorts: 1,
	}); err != nil {
		return nil, err
	}
	if c.WBBuffer, err = array.New(array.Config{
		Name: cfg.Name + ".wb", Tech: cfg.Tech, Periph: cfg.Dev, Cell: cfg.Dev,
		LongChannel: cfg.LongChannel,
		Entries:     cfg.WBDepth, EntryBits: cfg.BlockBytes * 8,
		RdPorts: 1, WrPorts: 1,
	}); err != nil {
		return nil, err
	}
	if cfg.Directory {
		sharers := cfg.Sharers
		blocks := cfg.Bytes / cfg.BlockBytes
		if c.Directory, err = array.New(array.Config{
			Name: cfg.Name + ".dir", Tech: cfg.Tech, Periph: cfg.Dev, Cell: cfg.CellDev,
			LongChannel: cfg.LongChannel,
			Entries:     blocks, EntryBits: sharers + 2, // presence vector + state
			Banks: cfg.Banks, RdPorts: 1, WrPorts: 1,
			TargetCycle: target,
		}); err != nil {
			return nil, err
		}
	}

	c.PAT = c.Data.PAT
	c.Energy.Read += c.MSHR.Energy.Search * 1.0 // every access probes MSHRs
	c.Static = c.Static.Add(c.MSHR.Static).Add(c.WBBuffer.Static)
	c.Area += c.MSHR.Area + c.WBBuffer.Area
	if c.Directory != nil {
		c.Energy.Read += c.Directory.Energy.Read
		c.Energy.Write += c.Directory.Energy.Write
		c.Static = c.Static.Add(c.Directory.Static)
		c.Area += c.Directory.Area
	}
	return c, nil
}

// Report builds the cache's report subtree for the given access rates
// (reads and writes per second at peak and runtime).
func (c *Cache) Report(peakR, peakW, runR, runW float64) *power.Item {
	return c.ReportIn(nil, peakR, peakW, runR, runW)
}

// ReportIn is Report with the result tree bump-allocated from ar (nil
// falls back to the heap; both paths run the identical arithmetic, so
// arena and heap reports are bit-identical by construction). Items are
// valid until ar is reset; see power.Arena for the lifetime contract.
func (c *Cache) ReportIn(ar *power.Arena, peakR, peakW, runR, runW float64) *power.Item {
	item := ar.NewItemN(c.cfg.Name, 4)
	item.Add(ar.FromPAT("data", c.Data.PAT,
		power.Activity{Reads: peakR, Writes: peakW},
		power.Activity{Reads: runR, Writes: runW}))
	missFrac := 0.05
	item.Add(ar.FromPAT("mshr", c.MSHR.PAT,
		power.Activity{Searches: peakR + peakW, Reads: (peakR + peakW) * missFrac, Writes: (peakR + peakW) * missFrac},
		power.Activity{Searches: runR + runW, Reads: (runR + runW) * missFrac, Writes: (runR + runW) * missFrac}))
	item.Add(ar.FromPAT("wbbuffer", c.WBBuffer.PAT,
		power.Activity{Reads: peakW * 0.5, Writes: peakW * 0.5},
		power.Activity{Reads: runW * 0.5, Writes: runW * 0.5}))
	if c.Directory != nil {
		item.Add(ar.FromPAT("directory", c.Directory.PAT,
			power.Activity{Reads: peakR + peakW, Writes: (peakR + peakW) * 0.2},
			power.Activity{Reads: runR + runW, Writes: (runR + runW) * 0.2}))
	}
	return item.Rollup()
}

// AccessTime returns the data-array access latency.
func (c *Cache) AccessTime() float64 { return c.Data.AccessTime }

// Cfg returns the normalized configuration.
func (c *Cache) Cfg() Config { return c.cfg }
