package cache

import (
	"testing"

	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

func l2cfg() Config {
	return Config{
		Name: "l2", Tech: techtest.Node(65), Dev: tech.HP,
		Bytes: 2 * 1024 * 1024, BlockBytes: 64, Assoc: 8, Banks: 4,
		TargetHz: 2e9,
	}
}

func TestSharedCacheBasics(t *testing.T) {
	c, err := New(l2cfg())
	if err != nil {
		t.Fatal(err)
	}
	if c.Data == nil || c.MSHR == nil || c.WBBuffer == nil {
		t.Fatal("missing subcomponents")
	}
	if c.Directory != nil {
		t.Fatal("directory not requested but present")
	}
	if c.Area <= c.Data.Area {
		t.Error("total area must include MSHR and WB buffer")
	}
	if c.Energy.Read <= c.Data.Energy.Read {
		t.Error("access energy must include the MSHR probe")
	}
	if c.AccessTime() != c.Data.AccessTime {
		t.Error("AccessTime must expose the data array latency")
	}
}

func TestDirectoryAddsCost(t *testing.T) {
	base, _ := New(l2cfg())
	cfg := l2cfg()
	cfg.Directory = true
	cfg.Sharers = 16
	dir, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dir.Directory == nil {
		t.Fatal("directory missing")
	}
	if dir.Area <= base.Area || dir.Energy.Read <= base.Energy.Read {
		t.Error("directory must add area and access energy")
	}
}

func TestLSTPCellsForLargeCaches(t *testing.T) {
	big, err := New(l2cfg()) // 2MB -> LSTP cells by default
	if err != nil {
		t.Fatal(err)
	}
	cfg := l2cfg()
	cfg.CellHP = true
	hp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if big.Static.Sub >= hp.Static.Sub*0.5 {
		t.Errorf("default LSTP cells (%.3g W) must leak far less than forced HP cells (%.3g W)",
			big.Static.Sub, hp.Static.Sub)
	}
	small := l2cfg()
	small.Bytes = 256 * 1024
	sc, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cfg().CellDev != tech.HP {
		t.Error("small caches should keep HP cells by default")
	}
	if big.Cfg().CellDev != tech.LSTP {
		t.Error("multi-MB caches should default to LSTP cells")
	}
}

func TestECCOverhead(t *testing.T) {
	// The synthesized data array carries 9/8 of the nominal capacity.
	c, err := New(l2cfg())
	if err != nil {
		t.Fatal(err)
	}
	nominalBits := 2 * 1024 * 1024 * 8
	gotBits := c.Data.Rows * c.Data.Cols * c.Data.Subarrays * c.Data.Banks
	if gotBits < nominalBits*9/8 {
		t.Errorf("data array holds %d bits, want at least %d (ECC)", gotBits, nominalBits*9/8)
	}
}

func TestReportTree(t *testing.T) {
	cfg := l2cfg()
	cfg.Directory = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report(2e9, 1e9, 1e8, 5e7)
	for _, name := range []string{"data", "mshr", "wbbuffer", "directory"} {
		if rep.Find(name) == nil {
			t.Errorf("report missing %s", name)
		}
	}
	if rep.PeakDynamic <= 0 || rep.RuntimeDynamic <= 0 {
		t.Error("report must have both power columns")
	}
	if rep.RuntimeDynamic >= rep.PeakDynamic {
		t.Error("runtime below peak for these rates")
	}
}

func TestCacheValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil tech must fail")
	}
	if _, err := New(Config{Tech: techtest.Node(65)}); err == nil {
		t.Error("zero capacity must fail")
	}
}
