package cache

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math"

	"mcpat/internal/array"
	"mcpat/internal/component"
	"mcpat/internal/power"
)

// Disk codec for synthesized shared caches (L2/L3) — the
// component-tier proof that whole subsystems round-trip through the
// persistent cache bit-identically. A shared cache is the most
// expensive single subsystem a chip build synthesizes (its data array
// dominates cold time), and its parts are exactly four array.Results
// plus the rolled-up PAT, all plain exported data.
//
// The serialized form omits Cfg.Tech (a pointer into live technology
// tables): on disk the node is identified by the value fingerprint
// inside the key, and Decode reattaches the caller's own *tech.Node,
// which fingerprints equal by construction.

// cacheDiskNS versions the on-disk shape; bump when synthKey, Config,
// Cache, or array.Result change.
const cacheDiskNS = "subsys.cache.v2"

// encodeKey serializes the synthKey deterministically. Explicit
// field-by-field binary encoding, same discipline as array.Key's: gob
// embeds wire type IDs allocated from a process-global registry in
// first-use order, so the identical value can encode differently in two
// processes (or before/after an unrelated decode), silently missing
// every cross-process disk lookup.
func (k synthKey) encodeKey() []byte {
	buf := make([]byte, 0, 16*8)
	u := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	i := func(v int) { u(uint64(int64(v))) }
	b := func(v bool) {
		if v {
			u(1)
		} else {
			u(0)
		}
	}
	c := &k.Cfg // Tech nil'd, Name/CellHP cleared by Synthesize
	u(k.TechFP)
	u(uint64(c.Dev))
	u(uint64(c.CellDev))
	b(c.EDRAM)
	b(c.LongChannel)
	i(c.Bytes)
	i(c.BlockBytes)
	i(c.Assoc)
	i(c.Banks)
	i(c.Ports)
	i(c.MSHRs)
	i(c.WBDepth)
	u(math.Float64bits(c.TargetHz))
	b(c.Directory)
	i(c.Sharers)
	return buf
}

// cacheDisk is the gob shape of a synthesized Cache.
type cacheDisk struct {
	PAT       power.PAT
	Data      *array.Result
	MSHR      *array.Result
	WBBuffer  *array.Result
	Directory *array.Result
	Cfg       Config // Tech nil'd; reattached on decode
}

// persistCodec builds the per-call codec. norm is the caller's
// normalized config (defaults applied), whose Tech pointer Decode
// reattaches.
func persistCodec(key synthKey, norm Config) *component.PersistCodec {
	return &component.PersistCodec{
		NS:  cacheDiskNS,
		Key: func() ([]byte, error) { return key.encodeKey(), nil },
		Encode: func(v any) ([]byte, error) {
			c := v.(*Cache)
			d := cacheDisk{
				PAT: c.PAT, Data: c.Data, MSHR: c.MSHR,
				WBBuffer: c.WBBuffer, Directory: c.Directory,
				Cfg: c.cfg,
			}
			d.Cfg.Tech = nil
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(d); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		Decode: func(data []byte) (any, error) {
			var d cacheDisk
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&d); err != nil {
				return nil, err
			}
			c := &Cache{
				PAT: d.PAT, Data: d.Data, MSHR: d.MSHR,
				WBBuffer: d.WBBuffer, Directory: d.Directory,
				cfg: d.Cfg,
			}
			c.cfg.Tech = norm.Tech
			return c, nil
		},
	}
}
