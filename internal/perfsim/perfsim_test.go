package perfsim

import (
	"testing"
	"testing/quick"
)

func machine(cores, cluster int) Machine {
	return Machine{
		Cores: cores, ThreadsPerCore: 4, IssueWidth: 1,
		ClockHz:     2e9,
		ClusterSize: cluster,
		L2Latency:   20, FabricHopLat: 4, MemLatency: 200,
		MemBandwidth: 50e9,
	}
}

func TestRunBasics(t *testing.T) {
	for _, w := range SPLASH2Like() {
		r, err := Run(machine(16, 2), w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if r.Runtime <= 0 || r.Throughput <= 0 {
			t.Fatalf("%s: non-positive results %+v", w.Name, r)
		}
		if r.CoreIPC <= 0 || r.CoreIPC > float64(r.Machine.IssueWidth) {
			t.Errorf("%s: IPC %v out of range", w.Name, r.CoreIPC)
		}
		if r.CoreUtil < 0 || r.CoreUtil > 1 {
			t.Errorf("%s: utilization %v out of range", w.Name, r.CoreUtil)
		}
		t.Logf("%-6s IPC=%.3f CPI=%.2f busU=%.2f memU=%.2f runtime=%.3fs",
			w.Name, r.CoreIPC, r.ThreadCPI, r.BusUtil, r.MemUtil, r.Runtime)
	}
}

func TestMoreCoresMoreThroughput(t *testing.T) {
	w := SPLASH2Like()[0]
	r16, _ := Run(machine(16, 1), w)
	r64, err := Run(machine(64, 1), w)
	if err != nil {
		t.Fatal(err)
	}
	if r64.Throughput <= r16.Throughput {
		t.Errorf("64 cores (%.3g) must outrun 16 cores (%.3g)", r64.Throughput, r16.Throughput)
	}
	// At most linear (shared resources can only hurt).
	if r64.Throughput > 4.001*r16.Throughput {
		t.Errorf("scaling cannot be superlinear: %.3g vs %.3g", r64.Throughput, r16.Throughput)
	}
}

func TestClusteringCostsPerformance(t *testing.T) {
	// The case study's performance-side premise: larger clusters share an
	// L2 bank and bus, so per-core throughput degrades mildly as cluster
	// size grows.
	// Clustering trades a small latency benefit (fewer mesh hops) against
	// bus/bank sharing; throughput must stay within ~1% of flat until the
	// bus approaches saturation, then fall.
	w := SPLASH2Like()[1] // ocean, memory-heavy
	prevBus := -1.0
	base := 0.0
	mk := func(c int) Machine {
		m := machine(64, c)
		m.MemBandwidth = 200e9 // provision DRAM so the fabric is exposed
		return m
	}
	for _, c := range []int{1, 2, 4, 8} {
		r, err := Run(mk(c), w)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("cluster=%d: throughput=%.4g busU=%.2f", c, r.Throughput, r.BusUtil)
		if c == 1 {
			base = r.Throughput
		}
		if r.Throughput > base*1.01 {
			t.Errorf("cluster %d should not meaningfully beat private L2 (%.4g > %.4g)", c, r.Throughput, base)
		}
		if r.BusUtil <= prevBus {
			t.Errorf("bus utilization must grow with cluster size")
		}
		prevBus = r.BusUtil
	}
	r1, _ := Run(mk(1), w)
	r8, _ := Run(mk(8), w)
	drop := 1 - r8.Throughput/r1.Throughput
	if drop <= 0 || drop > 0.6 {
		t.Errorf("8-way clustering perf drop = %.1f%%, want mild but nonzero", drop*100)
	}
}

func TestMemoryBoundWorkloadSaturates(t *testing.T) {
	w := SPLASH2Like()[1]
	lo := machine(64, 1)
	lo.MemBandwidth = 5e9 // starve the chip
	r, err := Run(lo, w)
	if err != nil {
		t.Fatal(err)
	}
	hi := machine(64, 1)
	hi.MemBandwidth = 500e9
	r2, _ := Run(hi, w)
	if r.Throughput >= r2.Throughput {
		t.Error("more memory bandwidth must help a memory-bound workload")
	}
	if r.MemUtil < 0.9 {
		t.Errorf("starved chip should saturate memory (util %.2f)", r.MemUtil)
	}
}

func TestStatisticsConsistency(t *testing.T) {
	w := SPLASH2Like()[0]
	r, err := Run(machine(32, 4), w)
	if err != nil {
		t.Fatal(err)
	}
	a := r.CoreActivity
	if a.Decode <= 0 || a.PipelineDuty <= 0 || a.PipelineDuty > 1 {
		t.Errorf("bad activity: %+v", a)
	}
	// Instruction mix fractions must roughly add up inside decode rate.
	sum := a.IntOp + a.MulOp + a.FPOp + a.DCacheRead + a.DCacheWrite
	if sum > a.Decode*1.05 {
		t.Errorf("op rates (%.3f) exceed decode rate (%.3f)", sum, a.Decode)
	}
	if r.L2ReadsSec+r.L2WritesSec <= 0 || r.MemAccessesS <= 0 {
		t.Error("traffic statistics missing")
	}
	if r.MemAccessesS >= r.L2AccessesSec {
		t.Error("memory traffic cannot exceed L2 traffic")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Run(Machine{}, SPLASH2Like()[0]); err == nil {
		t.Error("empty machine must fail")
	}
	if _, err := Run(machine(4, 1), Workload{Name: "empty"}); err == nil {
		t.Error("empty workload must fail")
	}
}

func TestQuickModelStability(t *testing.T) {
	w := SPLASH2Like()[2]
	f := func(c, cl uint8) bool {
		cores := 4 * (int(c%16) + 1) // 4..64
		cluster := 1 << (cl % 4)     // 1..8
		if cluster > cores {
			cluster = cores
		}
		r, err := Run(machine(cores, cluster), w)
		if err != nil {
			return false
		}
		return r.Runtime > 0 && r.CoreIPC > 0 && r.CoreIPC <= 1.0001 &&
			r.BusUtil <= 0.99 && r.MemUtil <= 0.99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
