// Package perfsim is the performance-simulation substrate paired with the
// power/area/timing models, standing in for the full-system simulator
// (M5) and SPLASH-2 benchmarks the original study used.
//
// It is an analytical multicore performance model: each hardware thread
// executes a workload described by its instruction mix and miss behavior;
// fine-grained multithreading hides memory stalls up to the issue
// bandwidth of the core; shared-cache banks, intra-cluster buses, and the
// global fabric add queueing delays (M/D/1 approximation); and off-chip
// bandwidth caps throughput. The model iterates to a fixed point between
// achieved IPC and contention, then emits exactly the statistics vector
// the chip model consumes (per-cycle core activity plus chip-level
// traffic rates) - the same decoupled interface McPAT defines for any
// external performance simulator.
//
// Why this substitution preserves the study's behavior: the case-study
// figures depend only on (a) how throughput degrades as more cores share
// a cluster's L2 bandwidth, and (b) the traffic rates that drive fabric
// and memory power. Both are first-order queueing effects that this model
// captures; the power/area/timing side is computed by the same code paths
// regardless of where the statistics come from.
package perfsim

import (
	"fmt"
	"math"

	"mcpat/internal/core"
)

// Workload characterizes a parallel kernel by its per-instruction rates,
// shaped after SPLASH-2 kernels' published profiles.
type Workload struct {
	Name string

	// Instructions is the total dynamic instruction count of the problem
	// (all threads together).
	Instructions float64

	// Per-instruction fractions.
	LoadFrac, StoreFrac float64
	BranchFrac          float64
	FPFrac, MulFrac     float64

	// Miss rates: per instruction for L1 (I+D combined treatment uses
	// D-side), per L2 access for L2.
	L1IMissRate float64 // per fetch
	L1DMissRate float64 // per load/store
	L2MissRate  float64 // per L2 access

	// SharingFrac is the fraction of L2 accesses that cross the global
	// fabric (coherence / remote-bank traffic).
	SharingFrac float64

	// BaseCPI is the no-stall CPI of one thread on a single-issue core.
	BaseCPI float64
}

// SPLASH2Like returns three workload descriptors with the published shape
// of SPLASH-2 kernels: fft (compute-heavy, streaming), ocean
// (memory-bound, high miss rates), and lu (blocked, cache-friendly).
func SPLASH2Like() []Workload {
	return []Workload{
		{
			Name: "fft", Instructions: 4e9,
			LoadFrac: 0.25, StoreFrac: 0.12, BranchFrac: 0.10,
			FPFrac: 0.30, MulFrac: 0.02,
			L1IMissRate: 0.002, L1DMissRate: 0.025, L2MissRate: 0.25,
			SharingFrac: 0.15, BaseCPI: 1.1,
		},
		{
			Name: "ocean", Instructions: 3e9,
			LoadFrac: 0.31, StoreFrac: 0.14, BranchFrac: 0.13,
			FPFrac: 0.26, MulFrac: 0.01,
			L1IMissRate: 0.003, L1DMissRate: 0.060, L2MissRate: 0.40,
			SharingFrac: 0.30, BaseCPI: 1.15,
		},
		{
			Name: "lu", Instructions: 5e9,
			LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.08,
			FPFrac: 0.35, MulFrac: 0.02,
			L1IMissRate: 0.001, L1DMissRate: 0.012, L2MissRate: 0.15,
			SharingFrac: 0.10, BaseCPI: 1.05,
		},
	}
}

// Machine describes the performance-relevant parameters of the modeled
// chip.
type Machine struct {
	Cores          int
	ThreadsPerCore int
	IssueWidth     int
	ClockHz        float64

	// ClusterSize is the number of cores sharing one L2 bank through one
	// intra-cluster bus (1 = private connection per core).
	ClusterSize int

	// Latencies in core cycles (unloaded).
	L2Latency    float64
	FabricHopLat float64 // per mesh hop
	MemLatency   float64

	// MeshDim is the number of routers along one edge of the global mesh
	// (clusters are the mesh nodes).
	MeshDim int

	// MemBandwidth is the off-chip bandwidth in bytes/s; BytesPerMiss the
	// line size fetched per L2 miss.
	MemBandwidth float64
	BytesPerMiss float64

	// BusBytes is the intra-cluster bus width in bytes (default 16); a
	// 64-byte line transfer occupies the bus for BytesPerMiss/BusBytes
	// beats plus request overhead.
	BusBytes int
}

// Result is a completed simulation.
type Result struct {
	Machine  Machine
	Workload Workload

	Runtime    float64 // seconds
	Throughput float64 // instructions/s (aggregate)
	CoreIPC    float64 // average per core
	ThreadCPI  float64 // average per thread, including stalls

	// Utilizations (0..1).
	CoreUtil   float64 // achieved IPC / issue width
	L2BankUtil float64
	BusUtil    float64
	MemUtil    float64

	// Statistics in the form the chip model consumes.
	CoreActivity  core.Activity
	L2AccessesSec float64 // chip-wide, per second
	L2ReadsSec    float64
	L2WritesSec   float64
	FabricFlits   float64 // flits/s per router
	MemAccessesS  float64 // 64B transactions/s
}

// mdQueueWait returns the M/D/1 mean wait in units of the service time for
// utilization rho, saturating smoothly as rho approaches 1.
func mdQueueWait(rho float64) float64 {
	if rho < 0 {
		return 0
	}
	if rho > 0.98 {
		rho = 0.98
	}
	return rho / (2 * (1 - rho))
}

// Run executes the analytical model to a fixed point.
func Run(m Machine, w Workload) (*Result, error) {
	if m.Cores <= 0 || m.ThreadsPerCore <= 0 || m.ClockHz <= 0 {
		return nil, fmt.Errorf("perfsim: invalid machine %+v", m)
	}
	if m.IssueWidth <= 0 {
		m.IssueWidth = 1
	}
	if m.ClusterSize <= 0 {
		m.ClusterSize = 1
	}
	if m.BytesPerMiss <= 0 {
		m.BytesPerMiss = 64
	}
	if m.BusBytes <= 0 {
		m.BusBytes = 16
	}
	if w.Instructions <= 0 || w.BaseCPI <= 0 {
		return nil, fmt.Errorf("perfsim: invalid workload %+v", w)
	}

	memFrac := w.LoadFrac + w.StoreFrac
	l2PerInst := memFrac*w.L1DMissRate + w.L1IMissRate
	memPerInst := l2PerInst * w.L2MissRate

	clusters := m.Cores / m.ClusterSize
	if clusters < 1 {
		clusters = 1
	}
	meshDim := m.MeshDim
	if meshDim <= 0 {
		meshDim = int(math.Ceil(math.Sqrt(float64(clusters))))
	}
	avgHops := 2.0 / 3.0 * float64(meshDim) // mean Manhattan distance in a dim x dim mesh

	// Bus occupancy per L2 access: request beat plus the line transfer
	// (req/resp round trip adds ~50% overhead).
	beats := 1.5 * (1 + float64(m.BytesPerMiss)/float64(m.BusBytes))
	// Occupancy coefficients per unit of core IPC.
	busCoef := l2PerInst * float64(m.ClusterSize) * beats
	bankCoef := l2PerInst * float64(m.ClusterSize) * 0.5 // pipelined banks
	memCoef := 0.0
	if m.MemBandwidth > 0 {
		memCoef = memPerInst * float64(m.Cores) * m.ClockHz * m.BytesPerMiss / m.MemBandwidth
	}

	ipc := float64(m.IssueWidth) * 0.8 // initial guess, per core
	var threadCPI, busRho, bankRho, memRho float64
	for iter := 0; iter < 64; iter++ {
		busRho = math.Min(ipc*busCoef, 0.98)
		bankRho = math.Min(ipc*bankCoef, 0.98)
		memRho = math.Min(ipc*memCoef, 0.98)

		// Loaded latencies.
		busDelay := 2 * (1 + mdQueueWait(busRho)) // arbitration+transfer, queued
		l2Loaded := m.L2Latency + busDelay + mdQueueWait(bankRho)*2
		remoteExtra := avgHops * m.FabricHopLat * (1 + mdQueueWait(busRho*0.5))
		memLoaded := m.MemLatency * (1 + 2*mdQueueWait(memRho))

		// Per-thread stall cycles per instruction. A fraction SharingFrac
		// of L2 accesses additionally crosses the mesh.
		stalls := l2PerInst*(l2Loaded+w.SharingFrac*remoteExtra) + memPerInst*memLoaded
		threadCPI = w.BaseCPI + stalls

		// Fine-grained multithreading: the core issues from any ready
		// thread; aggregate demand is T/CPI_thread instructions/cycle,
		// capped by issue width and by every shared resource's capacity.
		newIPC := math.Min(float64(m.IssueWidth), float64(m.ThreadsPerCore)/threadCPI)
		for _, coef := range []float64{busCoef, bankCoef, memCoef} {
			if coef > 0 {
				newIPC = math.Min(newIPC, 0.95/coef)
			}
		}
		if math.Abs(newIPC-ipc) < 1e-9 {
			ipc = newIPC
			break
		}
		ipc = 0.5*ipc + 0.5*newIPC
	}

	throughput := ipc * float64(m.Cores) * m.ClockHz
	runtime := w.Instructions / throughput

	instPerCyc := ipc
	l2PerCyc := instPerCyc * l2PerInst
	act := core.Activity{
		ICacheAccess: math.Min(1, instPerCyc),
		BTBAccess:    instPerCyc * w.BranchFrac,
		PredAccess:   instPerCyc * w.BranchFrac,
		Decode:       instPerCyc,
		IntOp:        instPerCyc * (1 - w.FPFrac - w.MulFrac - memFrac),
		MulOp:        instPerCyc * w.MulFrac,
		FPOp:         instPerCyc * w.FPFrac,
		DCacheRead:   instPerCyc * w.LoadFrac,
		DCacheWrite:  instPerCyc * w.StoreFrac,
		CacheMiss:    l2PerCyc,
		ITLBAccess:   math.Min(1, instPerCyc),
		PipelineDuty: math.Min(1, ipc/float64(m.IssueWidth)),
	}
	act.DTLBAccess = act.DCacheRead + act.DCacheWrite
	act.LSQSearch = act.DCacheWrite
	act.LSQAccess = act.DCacheRead + act.DCacheWrite
	act.RFRead = 1.6 * (act.IntOp + act.MulOp)
	act.RFWrite = 0.8 * (act.IntOp + act.MulOp)
	act.FPRFRead = 1.6 * act.FPOp
	act.FPRFWrite = 0.8 * act.FPOp
	act.Bypass = act.IntOp + act.MulOp + act.FPOp + act.DCacheRead

	l2Sec := l2PerCyc * float64(m.Cores) * m.ClockHz
	memSec := instPerCyc * memPerInst * float64(m.Cores) * m.ClockHz
	routers := float64(clusters)
	fabricFlits := l2Sec * w.SharingFrac * avgHops / math.Max(routers, 1)

	return &Result{
		Machine:  m,
		Workload: w,

		Runtime:    runtime,
		Throughput: throughput,
		CoreIPC:    ipc,
		ThreadCPI:  threadCPI,

		CoreUtil:   ipc / float64(m.IssueWidth),
		L2BankUtil: bankRho,
		BusUtil:    busRho,
		MemUtil:    memRho,

		CoreActivity:  act,
		L2AccessesSec: l2Sec,
		L2ReadsSec:    l2Sec * 0.7,
		L2WritesSec:   l2Sec * 0.3,
		FabricFlits:   fabricFlits,
		MemAccessesS:  memSec,
	}, nil
}
