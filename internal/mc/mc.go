// Package mc implements McPAT's off-chip interface models: the memory
// controller (front-end engine with request/read/write buffers, the
// transaction-processing back end, and the PHY), the network interface
// unit (NIU), and the PCIe controller.
//
// Buffering structures are synthesized with the array model; the
// transaction engine and the mixed-signal PHY/SerDes blocks use empirical
// per-bandwidth energy coefficients calibrated at 90 nm (the same
// methodology McPAT applies to these hard-to-model blocks).
package mc

import (
	"fmt"

	"mcpat/internal/array"
	"mcpat/internal/power"
	"mcpat/internal/tech"
)

// Config describes one memory-controller channel group.
type Config struct {
	Tech        *tech.Node
	Dev         tech.DeviceType
	LongChannel bool

	Channels      int     // independent memory channels
	DataBusBits   int     // per channel (64 for DDRx)
	PeakBandwidth float64 // bytes/s aggregate across channels

	// Buffer depths per channel (zero selects McPAT-style defaults).
	RequestDepth int // request window entries
	ReadDepth    int // read-return buffer entries
	WriteDepth   int // write buffer entries

	LVDS bool // low-voltage differential PHY (DDR) vs full-swing

	// PHYPJPerBit overrides the PHY energy coefficient (J/bit at the
	// 90 nm reference point); zero selects the LVDS/full-swing default.
	// Serial memory interfaces (FB-DIMM, RDRAM) sit between the two.
	PHYPJPerBit float64
}

// Controller is a synthesized memory controller. Energy.Read/Write are
// per-64-byte-transaction energies (front end + transaction engine; PHY
// energy is folded in per transferred bit).
type Controller struct {
	power.PAT

	FrontEnd power.PAT // buffers and scheduling
	Backend  power.PAT // transaction engine
	PHY      power.PAT // per-bit I/O drivers and clocking

	PeakPower float64 // W at 100% bandwidth utilization
	cfg       Config
}

// Per-bit energy coefficients at the 90 nm / 1.2 V reference point.
const (
	refFeature = 90e-9
	refVdd     = 1.2
	// Transaction engine: scheduling, ECC, command sequencing.
	backendPJPerBit = 3.0e-12
	// PHY: on-die termination, output drivers, DLL. Full-swing pads are
	// ~3x more expensive than LVDS.
	phyPJPerBitLVDS = 18.0e-12
	phyPJPerBitFS   = 100.0e-12
	txnBytes        = 64
)

// scaleEnergy applies McPAT's C*V^2 scaling from the 90 nm reference:
// switched capacitance tracks feature size, energy tracks Vdd squared.
func scaleEnergy(n *tech.Node, d tech.Device, e float64) float64 {
	fScale := n.Feature / refFeature
	vScale := (d.Vdd / refVdd) * (d.Vdd / refVdd)
	return e * fScale * vScale
}

// New synthesizes the memory controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Tech == nil {
		return nil, fmt.Errorf("mc: technology node required")
	}
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	if cfg.DataBusBits <= 0 {
		cfg.DataBusBits = 64
	}
	if cfg.RequestDepth <= 0 {
		cfg.RequestDepth = 32
	}
	if cfg.ReadDepth <= 0 {
		cfg.ReadDepth = 32
	}
	if cfg.WriteDepth <= 0 {
		cfg.WriteDepth = 32
	}
	n := cfg.Tech
	d := n.Device(cfg.Dev, cfg.LongChannel)

	mk := func(name string, entries, bits int) (*array.Result, error) {
		return array.New(array.Config{
			Name: name, Tech: n, Periph: cfg.Dev, Cell: cfg.Dev,
			LongChannel: cfg.LongChannel,
			Entries:     entries, EntryBits: bits,
			RdPorts: 1, WrPorts: 1,
		})
	}
	reqBuf, err := mk("mc.request", cfg.RequestDepth, 64)
	if err != nil {
		return nil, err
	}
	rdBuf, err := mk("mc.read", cfg.ReadDepth, txnBytes*8)
	if err != nil {
		return nil, err
	}
	wrBuf, err := mk("mc.write", cfg.WriteDepth, txnBytes*8)
	if err != nil {
		return nil, err
	}

	ch := float64(cfg.Channels)
	fe := power.PAT{
		Energy: power.Energy{
			Read:  reqBuf.Energy.Write + reqBuf.Energy.Read + rdBuf.Energy.Write + rdBuf.Energy.Read,
			Write: reqBuf.Energy.Write + reqBuf.Energy.Read + wrBuf.Energy.Write + wrBuf.Energy.Read,
		},
		Static: reqBuf.Static.Add(rdBuf.Static).Add(wrBuf.Static).Scale(ch),
		Area:   (reqBuf.Area + rdBuf.Area + wrBuf.Area) * ch,
	}

	bitsPerTxn := float64(txnBytes * 8)
	eBackend := scaleEnergy(n, d, backendPJPerBit) * bitsPerTxn
	be := power.PAT{
		Energy: power.Energy{Read: eBackend, Write: eBackend},
		// Backend logic leakage: modeled as a logic block of ~50k gates
		// per channel.
		Static: logicLeak(n, d, 50e3*ch),
		Area:   0.15e-6 * (n.Feature / refFeature) * (n.Feature / refFeature) * ch,
	}

	phyPJ := phyPJPerBitFS
	if cfg.LVDS {
		phyPJ = phyPJPerBitLVDS
	}
	if cfg.PHYPJPerBit > 0 {
		phyPJ = cfg.PHYPJPerBit
	}
	ePhy := scaleEnergy(n, d, phyPJ) * bitsPerTxn
	phy := power.PAT{
		Energy: power.Energy{Read: ePhy, Write: ePhy},
		Static: logicLeak(n, d, 20e3*ch),
		// Pad-limited: I/O cells, termination, and DLLs dominate; the PHY
		// of one 64-bit channel occupies several mm^2 nearly independent
		// of logic scaling.
		Area: 2.4e-6 * float64(cfg.DataBusBits) / 64 * ch * (n.Feature / refFeature),
	}

	total := power.PAT{
		Energy: power.Energy{
			Read:  fe.Energy.Read + be.Energy.Read + phy.Energy.Read,
			Write: fe.Energy.Write + be.Energy.Write + phy.Energy.Write,
		},
		Static: fe.Static.Add(be.Static).Add(phy.Static),
		Area:   fe.Area + be.Area + phy.Area,
		Delay:  reqBuf.AccessTime,
	}

	peak := 0.0
	if cfg.PeakBandwidth > 0 {
		txnPerSec := cfg.PeakBandwidth / txnBytes
		peak = total.Energy.Read*txnPerSec + total.Static.Total()
	}

	return &Controller{
		PAT:       total,
		FrontEnd:  fe,
		Backend:   be,
		PHY:       phy,
		PeakPower: peak,
		cfg:       cfg,
	}, nil
}

// logicLeak estimates leakage of a random-logic block of the given gate
// count: each gate ~6 minimum-width transistor widths.
func logicLeak(n *tech.Node, d tech.Device, gates float64) power.Static {
	w := gates * 6 * n.MinWidthN()
	return power.Static{
		Sub:  d.Ioff(w/2, w/2, n.Temperature) * d.Vdd,
		Gate: d.Ig(w) * d.Vdd,
	}
}

// NIUConfig describes an on-die network interface unit.
type NIUConfig struct {
	Tech        *tech.Node
	Dev         tech.DeviceType
	LongChannel bool
	Bandwidth   float64 // bits/s per direction (e.g. 10e9 for 10GbE)
	Count       int

	// PJPerBit overrides the SerDes energy coefficient (J/bit at 90 nm);
	// zero selects the default.
	PJPerBit float64
}

// NewNIU models MAC + packet DMA logic plus SerDes lanes. Calibrated so a
// 10 GbE NIU at 65 nm burns ~1.8 W at full rate.
func NewNIU(cfg NIUConfig) (power.PAT, error) {
	if cfg.Tech == nil {
		return power.PAT{}, fmt.Errorf("mc: NIU requires a technology node")
	}
	if cfg.Count <= 0 {
		cfg.Count = 1
	}
	n := cfg.Tech
	d := n.Device(cfg.Dev, cfg.LongChannel)
	const serdesPJPerBit = 80e-12 // at 90nm reference (SerDes dominates)
	pj := cfg.PJPerBit
	if pj <= 0 {
		pj = serdesPJPerBit
	}
	e := scaleEnergy(n, d, pj)
	cnt := float64(cfg.Count)
	return power.PAT{
		// Energy per bit; activity supplies the bit rate.
		Energy: power.Energy{Read: e},
		Static: logicLeak(n, d, 150e3*cnt),
		Area:   1.2e-6 * cnt * (n.Feature / refFeature),
	}, nil
}

// PCIeConfig describes a PCIe controller + SerDes lanes.
type PCIeConfig struct {
	Tech        *tech.Node
	Dev         tech.DeviceType
	LongChannel bool
	Lanes       int
	GbpsPerLane float64 // 2.5 for Gen1, 5 for Gen2
}

// NewPCIe models the PCIe controller. Calibrated so a Gen1 x8 port at
// 65 nm burns ~2 W at full rate.
func NewPCIe(cfg PCIeConfig) (power.PAT, error) {
	if cfg.Tech == nil {
		return power.PAT{}, fmt.Errorf("mc: PCIe requires a technology node")
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 8
	}
	if cfg.GbpsPerLane <= 0 {
		cfg.GbpsPerLane = 2.5
	}
	n := cfg.Tech
	d := n.Device(cfg.Dev, cfg.LongChannel)
	const pciePJPerBit = 90e-12 // at 90nm reference, incl. 8b/10b + SerDes
	e := scaleEnergy(n, d, pciePJPerBit)
	lanes := float64(cfg.Lanes)
	return power.PAT{
		Energy: power.Energy{Read: e}, // per bit
		Static: logicLeak(n, d, 30e3*lanes),
		Area:   0.35e-6 * lanes * (n.Feature / refFeature),
	}, nil
}
