package mc

import (
	"testing"

	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

func TestMemoryControllerPlausible(t *testing.T) {
	c, err := New(Config{
		Tech:          techtest.Node(90),
		Dev:           tech.HP,
		Channels:      4,
		DataBusBits:   64,
		PeakBandwidth: 25e9, // ~25 GB/s aggregate (Niagara class)
		LVDS:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("4-channel DDR2 MC @90nm: peak=%.2f W area=%.3f mm^2 E/txn=%.1f pJ leak=%.3f W",
		c.PeakPower, c.Area*1e6, c.Energy.Read*1e12, c.Static.Total())
	if c.PeakPower < 0.5 || c.PeakPower > 10 {
		t.Errorf("MC peak power = %.2f W, want 0.5-10 W", c.PeakPower)
	}
	if c.FrontEnd.Area <= 0 || c.Backend.Area <= 0 || c.PHY.Area <= 0 {
		t.Error("all MC components need area")
	}
	if c.PHY.Energy.Read <= c.Backend.Energy.Read {
		t.Error("PHY should dominate per-transaction energy over backend")
	}
}

func TestMCDefaults(t *testing.T) {
	c, err := New(Config{Tech: techtest.Node(65)})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.Channels != 1 || c.cfg.RequestDepth != 32 {
		t.Errorf("defaults not applied: %+v", c.cfg)
	}
	if c.PeakPower != 0 {
		t.Error("no bandwidth given: peak power must be 0")
	}
}

func TestMCFullSwingCostsMore(t *testing.T) {
	mk := func(lvds bool) *Controller {
		c, err := New(Config{Tech: techtest.Node(65), Dev: tech.HP, Channels: 2, LVDS: lvds})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if mk(true).PHY.Energy.Read >= mk(false).PHY.Energy.Read {
		t.Error("LVDS PHY must be cheaper per bit than full swing")
	}
}

func TestMCScaling(t *testing.T) {
	mk := func(nm float64) *Controller {
		c, err := New(Config{Tech: techtest.Node(nm), Dev: tech.HP, Channels: 2, PeakBandwidth: 20e9})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if mk(32).Energy.Read >= mk(90).Energy.Read {
		t.Error("32nm MC must use less energy per transaction than 90nm")
	}
}

func TestNIU(t *testing.T) {
	p, err := NewNIU(NIUConfig{Tech: techtest.Node(65), Dev: tech.HP, Bandwidth: 10e9, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	// At full 10 Gb/s per direction each: dynamic power = E/bit * rate.
	dynW := p.Energy.Read * 2 * 10e9
	total := dynW + p.Static.Total()
	t.Logf("2x10GbE NIU @65nm: full-rate power = %.2f W", total)
	if total < 0.5 || total > 8 {
		t.Errorf("NIU full-rate power = %.2f W, want 0.5-8", total)
	}
	if _, err := NewNIU(NIUConfig{}); err == nil {
		t.Error("nil tech must fail")
	}
}

func TestPCIe(t *testing.T) {
	p, err := NewPCIe(PCIeConfig{Tech: techtest.Node(65), Dev: tech.HP, Lanes: 8, GbpsPerLane: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	dynW := p.Energy.Read * 8 * 2.5e9
	total := dynW + p.Static.Total()
	t.Logf("PCIe Gen1 x8 @65nm: full-rate power = %.2f W", total)
	if total < 0.3 || total > 6 {
		t.Errorf("PCIe full-rate power = %.2f W, want 0.3-6", total)
	}
	d, err := NewPCIe(PCIeConfig{Tech: techtest.Node(65)})
	if err != nil {
		t.Fatal(err)
	}
	if d.Area <= 0 {
		t.Error("default PCIe must have positive area")
	}
}
