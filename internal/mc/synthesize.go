package mc

import (
	"mcpat/internal/component"
	"mcpat/internal/power"
)

// The off-chip interface models have no Name field, so their raw Config
// values (with Tech replaced by the node's value fingerprint) already
// canonically identify a synthesis; keys do not fold zero fields onto
// their defaults, which at worst costs one extra cache entry per spelling
// of the same configuration, never a wrong hit. Each key is a distinct
// struct type so the three interface families can never collide inside
// the shared KindMC table.

type mcKey struct {
	TechFP uint64
	Cfg    Config
}

// Synthesize is the memoized front of New: repeated synthesis of an
// equivalent memory-controller configuration returns the one shared
// *Controller instance, which must be treated as immutable.
func Synthesize(cfg Config) (*Controller, error) {
	if cfg.Tech == nil {
		return New(cfg) // surface the constructor's config error
	}
	key := mcKey{TechFP: cfg.Tech.Fingerprint(), Cfg: cfg}
	key.Cfg.Tech = nil
	return component.Memoize(component.KindMC, key, func() (*Controller, error) {
		return New(cfg)
	})
}

type niuKey struct {
	TechFP uint64
	Cfg    NIUConfig
}

// SynthesizeNIU is the memoized front of NewNIU.
func SynthesizeNIU(cfg NIUConfig) (power.PAT, error) {
	if cfg.Tech == nil {
		return NewNIU(cfg)
	}
	key := niuKey{TechFP: cfg.Tech.Fingerprint(), Cfg: cfg}
	key.Cfg.Tech = nil
	return component.Memoize(component.KindMC, key, func() (power.PAT, error) {
		return NewNIU(cfg)
	})
}

type pcieKey struct {
	TechFP uint64
	Cfg    PCIeConfig
}

// SynthesizePCIe is the memoized front of NewPCIe.
func SynthesizePCIe(cfg PCIeConfig) (power.PAT, error) {
	if cfg.Tech == nil {
		return NewPCIe(cfg)
	}
	key := pcieKey{TechFP: cfg.Tech.Fingerprint(), Cfg: cfg}
	key.Cfg.Tech = nil
	return component.Memoize(component.KindMC, key, func() (power.PAT, error) {
		return NewPCIe(cfg)
	})
}
