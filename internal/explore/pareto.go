package explore

import (
	"math"
	"sort"
)

// objectiveAxes is the dimensionality of the multi-objective vector the
// Pareto front is maintained over: {power, area, delay, ED², EDA}.
const objectiveAxes = 5

// Objectives returns the minimized multi-objective vector of a feasible
// candidate: runtime power (W), area (mm²), delay (s/instruction), and
// the two fused figures of merit, energy·delay² and energy·delay·area.
// The fused axes are redundant for dominance (a point better on all of
// power/area/delay is better on both products too) but they are the
// quantities the McPAT-style studies rank by, so the front carries them
// explicitly and crowding-distance truncation spreads along them.
func (c *Candidate) Objectives() [objectiveAxes]float64 {
	d := 1 / c.Perf // delay per instruction
	e := c.RunW * d // energy per instruction
	return [objectiveAxes]float64{
		c.RunW,
		c.AreaMM2,
		d,
		e * d * d,
		e * d * c.AreaMM2,
	}
}

// dominates reports whether a Pareto-dominates b: no worse on every
// minimized axis and strictly better on at least one.
func dominates(a, b *[objectiveAxes]float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// axisLess orders candidates by their design axes; the front keeps its
// archive in this order so every traversal (mutation scans, snapshots,
// truncation tie-breaks) is deterministic regardless of insertion order.
func axisLess(a, b *Candidate) bool {
	if a.Cores != b.Cores {
		return a.Cores < b.Cores
	}
	if a.L2PerCoreKB != b.L2PerCoreKB {
		return a.L2PerCoreKB < b.L2PerCoreKB
	}
	if a.Fabric != b.Fabric {
		return a.Fabric < b.Fabric
	}
	return a.ClusterSize < b.ClusterSize
}

// frontMember pairs an archived candidate with its cached objective
// vector so dominance checks do not recompute it.
type frontMember struct {
	cand Candidate
	obj  [objectiveAxes]float64
}

// ParetoFront is the archive of mutually non-dominated feasible
// candidates a multi-objective search maintains. Membership is exact:
// a new point enters only if no member dominates it, and it evicts every
// member it dominates. When a maximum size is set the archive truncates
// by NSGA-II crowding distance (extreme points on every axis are kept,
// the most crowded interior point is dropped), so a bounded front keeps
// its spread. All operations are deterministic: the archive is kept in
// axis order and ties break on that order, never on map or timing
// nondeterminism. The type is not goroutine-safe; the search engine
// serializes access.
type ParetoFront struct {
	maxSize int // <= 0: unbounded
	members []frontMember
	version uint64
}

// NewParetoFront returns an empty front. maxSize <= 0 leaves the
// archive unbounded; otherwise crowding-distance truncation keeps at
// most maxSize members.
func NewParetoFront(maxSize int) *ParetoFront {
	return &ParetoFront{maxSize: maxSize}
}

// Len returns the number of archived members.
func (f *ParetoFront) Len() int { return len(f.members) }

// Version increments on every membership change; generators use it to
// detect stalled searches without copying the archive.
func (f *ParetoFront) Version() uint64 { return f.version }

// Add offers a feasible candidate to the archive. It reports whether
// membership changed: false means the point was dominated (or a
// duplicate design point) and the front is untouched.
func (f *ParetoFront) Add(c Candidate) bool {
	if !c.Feasible {
		return false
	}
	obj := c.Objectives()
	for i := range f.members {
		m := &f.members[i]
		if m.cand.Cores == c.Cores && m.cand.L2PerCoreKB == c.L2PerCoreKB &&
			m.cand.Fabric == c.Fabric && m.cand.ClusterSize == c.ClusterSize {
			return false // same design point already archived
		}
		if dominates(&m.obj, &obj) {
			return false // strictly covered by an existing member
		}
	}
	kept := f.members[:0]
	for i := range f.members {
		if !dominates(&obj, &f.members[i].obj) {
			kept = append(kept, f.members[i])
		}
	}
	f.members = append(kept, frontMember{cand: c, obj: obj})
	sort.Slice(f.members, func(i, j int) bool {
		return axisLess(&f.members[i].cand, &f.members[j].cand)
	})
	if f.maxSize > 0 {
		for len(f.members) > f.maxSize {
			f.dropMostCrowded()
		}
	}
	f.version++
	return true
}

// Filter removes every member the predicate rejects and reports
// whether the archive changed. The adaptive search uses it to withhold
// unverified members — points whose likely dominators never got
// evaluated before the budget ran out — from the reported front.
func (f *ParetoFront) Filter(keep func(*Candidate) bool) bool {
	kept := f.members[:0]
	for i := range f.members {
		if keep(&f.members[i].cand) {
			kept = append(kept, f.members[i])
		}
	}
	changed := len(kept) != len(f.members)
	f.members = kept
	if changed {
		f.version++
	}
	return changed
}

// Members returns a snapshot of the archive in axis order.
func (f *ParetoFront) Members() []Candidate {
	out := make([]Candidate, len(f.members))
	for i := range f.members {
		out[i] = f.members[i].cand
	}
	return out
}

// dropMostCrowded removes the member with the smallest crowding
// distance (the densest interior point). Axis-extreme members carry an
// infinite distance and are never dropped, which preserves the
// single-objective optima a bounded front exists to report. Ties drop
// the axis-largest member, keeping truncation deterministic.
func (f *ParetoFront) dropMostCrowded() {
	n := len(f.members)
	if n <= 2 {
		f.members = f.members[:n-1]
		return
	}
	dist := make([]float64, n)
	idx := make([]int, n)
	for a := 0; a < objectiveAxes; a++ {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool {
			vi, vj := f.members[idx[i]].obj[a], f.members[idx[j]].obj[a]
			if vi != vj {
				return vi < vj
			}
			return idx[i] < idx[j]
		})
		lo, hi := f.members[idx[0]].obj[a], f.members[idx[n-1]].obj[a]
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		span := hi - lo
		if span <= 0 {
			continue // degenerate axis: contributes nothing
		}
		for i := 1; i < n-1; i++ {
			gap := (f.members[idx[i+1]].obj[a] - f.members[idx[i-1]].obj[a]) / span
			if !math.IsInf(dist[idx[i]], 1) {
				dist[idx[i]] += gap
			}
		}
	}
	drop := -1
	for i := n - 1; i >= 0; i-- { // backwards: ties drop the axis-largest
		if drop < 0 || dist[i] < dist[drop] {
			drop = i
		}
	}
	f.members = append(f.members[:drop], f.members[drop+1:]...)
}
