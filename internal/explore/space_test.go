package explore

import (
	"context"
	"errors"
	"testing"

	"mcpat/internal/chip"
	"mcpat/internal/guard"
)

func axisDiff(a, b *Candidate) int {
	d := 0
	if a.Cores != b.Cores {
		d++
	}
	if a.L2PerCoreKB != b.L2PerCoreKB {
		d++
	}
	if a.Fabric != b.Fabric {
		d++
	}
	if a.ClusterSize != b.ClusterSize {
		d++
	}
	return d
}

// TestEnumerateSnakeOrder pins the boustrophedon enumeration: the same
// point set as the naive cross product, with consecutive candidates
// differing in as few axes as possible so sweeps hand the subsystem
// cache single-axis deltas.
func TestEnumerateSnakeOrder(t *testing.T) {
	space := Space{
		Cores:        []int{4, 8, 16},
		L2PerCoreKB:  []int{64, 256, 1024},
		Fabrics:      []chip.InterconnectKind{chip.Ring, chip.Mesh, chip.Crossbar},
		ClusterSizes: []int{1, 2, 4},
	}
	got := enumerate(space)
	size, err := space.Size()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != size {
		t.Fatalf("enumerate produced %d points, Size says %d", len(got), size)
	}

	key := func(c *Candidate) [4]int {
		return [4]int{c.Cores, c.L2PerCoreKB, int(c.Fabric), c.ClusterSize}
	}
	seen := map[[4]int]bool{}
	for i := range got {
		k := key(&got[i])
		if seen[k] {
			t.Fatalf("duplicate design point %v", k)
		}
		seen[k] = true
	}
	// Same set as the naive cross product (mesh carries the cluster
	// axis, everything else collapses it to 1).
	for _, cores := range space.Cores {
		for _, l2 := range space.L2PerCoreKB {
			for _, fab := range space.Fabrics {
				clusters := space.ClusterSizes
				if fab != chip.Mesh {
					clusters = []int{1}
				}
				for _, cl := range clusters {
					k := [4]int{cores, l2, int(fab), cl}
					if !seen[k] {
						t.Fatalf("cross-product point %v missing from enumeration", k)
					}
				}
			}
		}
	}

	// Snake ordering: a step never changes more than two axes, and a
	// step that holds the fabric fixed changes exactly one.
	for i := 1; i < len(got); i++ {
		prev, cur := &got[i-1], &got[i]
		if d := axisDiff(prev, cur); d > 2 {
			t.Fatalf("step %d changes %d axes: %+v -> %+v", i, d, *prev, *cur)
		}
		if prev.Fabric == cur.Fabric {
			if d := axisDiff(prev, cur); d != 1 {
				t.Fatalf("same-fabric step %d changes %d axes: %+v -> %+v", i, d, *prev, *cur)
			}
		}
	}
}

// TestEnumerateOrderPinsWinnerIdentity pins that on a space with a
// unique optimum the snake enumeration still surfaces that exact design
// point as Best — reordering must never change winner identity.
func TestEnumerateOrderPinsWinnerIdentity(t *testing.T) {
	space := Space{
		Cores:        []int{4, 8, 16},
		L2PerCoreKB:  []int{128, 512},
		Fabrics:      []chip.InterconnectKind{chip.Ring},
		ClusterSizes: []int{1},
	}
	res, err := SearchContext(context.Background(), quickParams(), space, Constraints{},
		MaxThroughput, &Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("unconstrained space must produce a winner")
	}
	// Recompute the winner naively over the returned candidates: the
	// highest-scoring feasible point, first in rank order on ties.
	want := res.Candidates[0]
	for _, c := range res.Candidates[1:] {
		if c.Feasible && c.Score > want.Score {
			want = c
		}
	}
	if res.Best.Cores != want.Cores || res.Best.L2PerCoreKB != want.L2PerCoreKB ||
		res.Best.Fabric != want.Fabric || res.Best.ClusterSize != want.ClusterSize {
		t.Fatalf("Best %+v is not the top-scoring candidate %+v", *res.Best, want)
	}
}

// TestSpaceSizeOverflow pins satellite 1: a cross-product too large for
// int must surface guard.ErrConfig, not a wrapped or negative size.
func TestSpaceSizeOverflow(t *testing.T) {
	huge := make([]int, 1<<21)
	for i := range huge {
		huge[i] = i + 1
	}
	space := Space{
		Cores:        huge,
		L2PerCoreKB:  huge,
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: huge, // (2^21)^3 = 2^63: overflows int64
	}
	_, err := space.Size()
	if err == nil {
		t.Fatal("overflowing cross-product must be rejected")
	}
	if !errors.Is(err, guard.ErrConfig) {
		t.Fatalf("overflow must map to guard.ErrConfig, got %v", err)
	}

	// The error propagates through planning and the search entry point.
	if _, err := PlannedEvaluations(space, &Options{}); !errors.Is(err, guard.ErrConfig) {
		t.Fatalf("PlannedEvaluations must propagate the overflow, got %v", err)
	}
	if _, err := SearchContext(context.Background(), quickParams(), space, Constraints{},
		MaxThroughput, &Options{}); !errors.Is(err, guard.ErrConfig) {
		t.Fatalf("SearchContext must reject the overflowing space, got %v", err)
	}
}

func TestParseSearchKind(t *testing.T) {
	cases := []struct {
		in   string
		want SearchKind
	}{
		{"", SearchExhaustive},
		{"exhaustive", SearchExhaustive},
		{"pareto", SearchPareto},
	}
	for _, tc := range cases {
		got, err := ParseSearchKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSearchKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseSearchKind("genetic"); err == nil {
		t.Error("unknown search kind must be rejected")
	}
	if SearchExhaustive.String() != "exhaustive" || SearchPareto.String() != "pareto" {
		t.Error("SearchKind strings must round-trip the flag values")
	}
}
