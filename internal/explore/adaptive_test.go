package explore

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mcpat/internal/chip"
)

// validationSpaces are the spaces the pareto-vs-exhaustive equivalence
// contract is pinned on: a wide 3-fabric space with a cluster axis, a
// tightly constrained low-budget space including a bus fabric, and a
// flat two-fabric space with no cluster axis. They are deliberately
// diverse in feasible-region shape so the search cannot overfit one
// constraint geometry.
var validationSpaces = []struct {
	name  string
	space Space
	cons  Constraints
}{
	{"wide", Space{
		Cores:        []int{2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256},
		L2PerCoreKB:  []int{32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 4096},
		Fabrics:      []chip.InterconnectKind{chip.Mesh, chip.Ring, chip.Crossbar},
		ClusterSizes: []int{1, 2, 4},
	}, Constraints{MaxAreaMM2: 600, MaxTDP: 400}},
	{"tight", Space{
		Cores:        []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64},
		L2PerCoreKB:  []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384},
		Fabrics:      []chip.InterconnectKind{chip.Bus, chip.Ring, chip.Mesh},
		ClusterSizes: []int{1, 2, 4},
	}, Constraints{MaxAreaMM2: 150, MaxTDP: 100}},
	{"flat", Space{
		Cores:        []int{2, 4, 8, 16, 32, 64, 128},
		L2PerCoreKB:  []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384},
		Fabrics:      []chip.InterconnectKind{chip.Ring, chip.Crossbar},
		ClusterSizes: []int{1},
	}, Constraints{MaxAreaMM2: 400, MaxTDP: 300}},
}

// objectiveValue recomputes a candidate's score under an objective,
// letting one sweep's candidates be ranked under any objective.
func objectiveValue(obj Objective, c *Candidate) float64 {
	d := 1 / c.Perf
	e := c.RunW * d
	switch obj {
	case MaxPerfPerWatt:
		return c.Perf / c.RunW
	case MinED2AP:
		return 1 / (e * d * d * c.AreaMM2)
	}
	return c.Perf
}

func bestValue(res *Result, obj Objective) (float64, bool) {
	best, found := 0.0, false
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if !c.Feasible {
			continue
		}
		if v := objectiveValue(obj, c); !found || v > best {
			best, found = v, true
		}
	}
	return best, found
}

// TestParetoMatchesExhaustive pins the tentpole's acceptance contract:
// on every validation space the pareto search recovers the exhaustive
// sweep's best objective value for each single objective, reports a
// front that is a subset of the exhaustive ground-truth front, and
// spends at most 10% of the exhaustive evaluation count doing it.
func TestParetoMatchesExhaustive(t *testing.T) {
	for _, tc := range validationSpaces {
		t.Run(tc.name, func(t *testing.T) {
			size, err := tc.space.Size()
			if err != nil {
				t.Fatal(err)
			}
			truth, err := SearchContext(context.Background(), quickParams(), tc.space, tc.cons,
				MaxThroughput, &Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if truth.Evaluated != size {
				t.Fatalf("exhaustive sweep evaluated %d of %d", truth.Evaluated, size)
			}
			inTruthFront := func(c *Candidate) bool {
				for i := range truth.Front {
					m := &truth.Front[i]
					if m.Cores == c.Cores && m.L2PerCoreKB == c.L2PerCoreKB &&
						m.Fabric == c.Fabric && m.ClusterSize == c.ClusterSize {
						return true
					}
				}
				return false
			}

			budget := size / 10
			for _, obj := range []Objective{MaxThroughput, MaxPerfPerWatt, MinED2AP} {
				for seed := int64(1); seed <= 2; seed++ {
					res, err := SearchContext(context.Background(), quickParams(), tc.space, tc.cons, obj,
						&Options{Workers: 4, Search: SearchPareto, Budget: budget, Seed: seed})
					if err != nil {
						t.Fatal(err)
					}
					if res.Evaluated > budget {
						t.Fatalf("%v seed %d: %d evaluations exceed the 10%% budget %d",
							obj, seed, res.Evaluated, budget)
					}
					if res.Search != SearchPareto || res.SpaceSize != size {
						t.Fatalf("result metadata wrong: search=%v spaceSize=%d", res.Search, res.SpaceSize)
					}
					want, ok := bestValue(truth, obj)
					if !ok {
						t.Fatal("exhaustive sweep found nothing feasible")
					}
					got, ok := bestValue(res, obj)
					if !ok {
						t.Fatalf("%v seed %d: pareto search found nothing feasible", obj, seed)
					}
					// Same winner: identical best objective value (ties on the
					// saturated throughput plateau make exact-axes comparison
					// ill-defined; the objective value is the invariant).
					if rel := (want - got) / want; rel > 1e-9 {
						t.Errorf("%v seed %d: best %g vs exhaustive %g (missing %.2g rel)",
							obj, seed, got, want, rel)
					}
					if res.Best == nil {
						t.Fatalf("%v seed %d: no Best on a feasible space", obj, seed)
					}
					if len(res.Front) == 0 {
						t.Fatalf("%v seed %d: empty front", obj, seed)
					}
					for i := range res.Front {
						if !inTruthFront(&res.Front[i]) {
							c := &res.Front[i]
							t.Errorf("%v seed %d: front member %dc/%dKB/%v/cl%d is not Pareto-optimal in ground truth",
								obj, seed, c.Cores, c.L2PerCoreKB, c.Fabric, c.ClusterSize)
						}
					}
				}
			}
		})
	}
}

// TestParetoDeterministic pins that a (seed, space) pair replays the
// identical candidate sequence and front at any worker count.
func TestParetoDeterministic(t *testing.T) {
	tc := validationSpaces[0]
	var ref *Result
	for _, workers := range []int{1, 3, 8} {
		res, err := SearchContext(context.Background(), quickParams(), tc.space, tc.cons,
			MaxThroughput, &Options{Workers: workers, Search: SearchPareto, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref.Candidates, res.Candidates) {
			t.Errorf("candidate sequence differs between 1 and %d workers", workers)
		}
		if !reflect.DeepEqual(ref.Front, res.Front) {
			t.Errorf("front differs between 1 and %d workers", workers)
		}
		if ref.Evaluated != res.Evaluated {
			t.Errorf("evaluation count differs: %d vs %d", ref.Evaluated, res.Evaluated)
		}
	}
	// And an identical repeat run reproduces the result bit for bit.
	again, err := SearchContext(context.Background(), quickParams(), tc.space, tc.cons,
		MaxThroughput, &Options{Workers: 3, Search: SearchPareto, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Candidates, again.Candidates) || !reflect.DeepEqual(ref.Front, again.Front) {
		t.Error("same seed and space must replay the identical search")
	}
}

// TestParetoFrontStreaming pins the OnFrontUpdate contract: serialized
// snapshots with monotonically nondecreasing evaluation counts, each a
// well-formed front of feasible members.
func TestParetoFrontStreaming(t *testing.T) {
	tc := validationSpaces[0]
	var snaps [][]Candidate
	var evals []int
	res, err := SearchContext(context.Background(), quickParams(), tc.space, tc.cons,
		MaxThroughput, &Options{
			Workers: 4, Search: SearchPareto, Seed: 3,
			OnFrontUpdate: func(front []Candidate, evaluated int) {
				snaps = append(snaps, front)
				evals = append(evals, evaluated)
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("a multi-generation search must stream several front updates, got %d", len(snaps))
	}
	for i, s := range snaps {
		if len(s) == 0 {
			t.Fatalf("snapshot %d is empty", i)
		}
		for j := range s {
			if !s[j].Feasible {
				t.Fatalf("snapshot %d carries an infeasible member", i)
			}
		}
		if i > 0 && evals[i] < evals[i-1] {
			t.Fatalf("evaluated counts must be nondecreasing: %v", evals)
		}
	}
	if res.Evaluated < evals[len(evals)-1] {
		t.Errorf("final Evaluated %d below last streamed count %d", res.Evaluated, evals[len(evals)-1])
	}
}

// TestParetoCancelReturnsPartialFront cancels from inside a front
// update — i.e. mid-search, deterministically after the first
// improving generation — and verifies the partial result still carries
// the front built so far alongside context.Canceled.
func TestParetoCancelReturnsPartialFront(t *testing.T) {
	tc := validationSpaces[0]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last []Candidate
	res, err := SearchContext(ctx, quickParams(), tc.space, tc.cons,
		MaxThroughput, &Options{
			Workers: 4, Search: SearchPareto, Seed: 1,
			OnFrontUpdate: func(front []Candidate, evaluated int) {
				last = front
				cancel()
			},
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("partial result must accompany cancellation")
	}
	if len(res.Front) == 0 {
		t.Fatal("partial result must carry the front built so far")
	}
	if !reflect.DeepEqual(res.Front, last) {
		t.Error("partial front must match the last streamed snapshot")
	}
	size, _ := tc.space.Size()
	if res.Evaluated >= effectiveBudget(0, size) {
		t.Errorf("cancellation should have cut the search short, evaluated %d", res.Evaluated)
	}
}

// TestParetoBudgetSemantics pins effectiveBudget: the default is a
// tenth of the space floored at defaultMinBudget, explicit budgets cap
// at the space size, and OnProgress totals report the planned budget.
func TestParetoBudgetSemantics(t *testing.T) {
	if got := effectiveBudget(0, 1000); got != 100 {
		t.Errorf("default budget for 1000 points = %d, want 100", got)
	}
	if got := effectiveBudget(0, 50); got != defaultMinBudget {
		t.Errorf("default budget for 50 points = %d, want floor %d", got, defaultMinBudget)
	}
	if got := effectiveBudget(0, 10); got != 10 {
		t.Errorf("default budget for 10 points = %d, want the whole space", got)
	}
	if got := effectiveBudget(5000, 100); got != 100 {
		t.Errorf("explicit budget must cap at the space size, got %d", got)
	}

	space := Space{
		Cores:        []int{8, 16, 32},
		L2PerCoreKB:  []int{64, 256},
		Fabrics:      []chip.InterconnectKind{chip.Ring},
		ClusterSizes: []int{1},
	}
	planned, err := PlannedEvaluations(space, &Options{Search: SearchPareto})
	if err != nil {
		t.Fatal(err)
	}
	if planned != 6 { // space of 6 points: budget caps at the space
		t.Fatalf("planned = %d, want 6", planned)
	}
	var totals []int
	res, err := SearchContext(context.Background(), quickParams(), space, Constraints{},
		MaxThroughput, &Options{Workers: 2, Search: SearchPareto,
			OnProgress: func(done, total int) { totals = append(totals, total) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated > planned {
		t.Errorf("evaluated %d beyond planned %d", res.Evaluated, planned)
	}
	for _, tot := range totals {
		if tot != planned {
			t.Fatalf("OnProgress total %d, want planned budget %d", tot, planned)
		}
	}
}

func TestUnknownSearchKindRejected(t *testing.T) {
	_, err := SearchContext(context.Background(), quickParams(), singlePoint(), Constraints{},
		MaxThroughput, &Options{Search: SearchKind(99)})
	if err == nil {
		t.Fatal("an unknown search kind must be rejected")
	}
}

func TestExhaustiveFillsGroundTruthFront(t *testing.T) {
	res, err := SearchContext(context.Background(), quickParams(), Space{
		Cores:        []int{8, 16, 32},
		L2PerCoreKB:  []int{64, 256},
		Fabrics:      []chip.InterconnectKind{chip.Ring},
		ClusterSizes: []int{1},
	}, Constraints{}, MaxThroughput, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Search != SearchExhaustive {
		t.Errorf("default search kind must be exhaustive, got %v", res.Search)
	}
	if len(res.Front) == 0 {
		t.Fatal("the exhaustive sweep must fill Result.Front")
	}
	// Every front member must be feasible and non-dominated within the
	// evaluated candidates.
	for i := range res.Front {
		fi := res.Front[i].Objectives()
		for j := range res.Candidates {
			c := &res.Candidates[j]
			if !c.Feasible {
				continue
			}
			cj := c.Objectives()
			if dominates(&cj, &fi) {
				t.Fatalf("front member %+v dominated by evaluated %+v", res.Front[i], *c)
			}
		}
	}
}
