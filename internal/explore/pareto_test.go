package explore

import (
	"math"
	"reflect"
	"testing"

	"mcpat/internal/chip"
)

// feasible builds a feasible candidate with the given design axes and
// objective-driving metrics.
func feasible(cores, l2 int, fab chip.InterconnectKind, cl int, runW, area, perf float64) Candidate {
	return Candidate{
		Cores: cores, L2PerCoreKB: l2, Fabric: fab, ClusterSize: cl,
		RunW: runW, AreaMM2: area, Perf: perf, Feasible: true,
	}
}

func TestDominates(t *testing.T) {
	a := [objectiveAxes]float64{1, 1, 1, 1, 1}
	b := [objectiveAxes]float64{2, 2, 2, 2, 2}
	eq := a
	mixed := [objectiveAxes]float64{0.5, 3, 1, 1, 1}
	if !dominates(&a, &b) {
		t.Error("strictly smaller vector must dominate")
	}
	if dominates(&b, &a) {
		t.Error("strictly larger vector must not dominate")
	}
	if dominates(&a, &eq) || dominates(&eq, &a) {
		t.Error("equal vectors must not dominate each other")
	}
	if dominates(&a, &mixed) || dominates(&mixed, &a) {
		t.Error("trade-off vectors must be mutually non-dominated")
	}
}

func TestParetoFrontAddEvictsDominated(t *testing.T) {
	f := NewParetoFront(0)
	weak := feasible(16, 256, chip.Mesh, 1, 50, 100, 1e11)
	strong := feasible(32, 128, chip.Mesh, 1, 40, 90, 2e11) // better on all axes
	if !f.Add(weak) {
		t.Fatal("first feasible point must enter the front")
	}
	if !f.Add(strong) {
		t.Fatal("a dominating point must enter the front")
	}
	got := f.Members()
	if len(got) != 1 || got[0].Cores != 32 {
		t.Fatalf("dominated member must be evicted, front = %+v", got)
	}
	if f.Add(weak) {
		t.Error("a dominated point must be rejected")
	}
	if f.Len() != 1 {
		t.Errorf("front length %d, want 1", f.Len())
	}
}

func TestParetoFrontRejects(t *testing.T) {
	f := NewParetoFront(0)
	c := feasible(16, 256, chip.Mesh, 1, 50, 100, 1e11)
	if f.Add(Candidate{Cores: 16, Feasible: false}) {
		t.Error("infeasible candidates must never enter the front")
	}
	if !f.Add(c) {
		t.Fatal("add failed")
	}
	v := f.Version()
	dup := c
	dup.RunW = 1 // same design point, different metrics: still a duplicate
	if f.Add(dup) {
		t.Error("duplicate design point must be rejected")
	}
	if f.Version() != v {
		t.Error("rejected offers must not bump the version")
	}
}

func TestParetoFrontKeepsTradeoffs(t *testing.T) {
	f := NewParetoFront(0)
	lowPower := feasible(2, 64, chip.Ring, 1, 5, 10, 1e10)
	fast := feasible(64, 64, chip.Ring, 1, 150, 80, 8e11)
	mid := feasible(16, 64, chip.Ring, 1, 40, 30, 2e11)
	for _, c := range []Candidate{fast, lowPower, mid} {
		if !f.Add(c) {
			t.Fatalf("trade-off point %d cores must enter the front", c.Cores)
		}
	}
	got := f.Members()
	if len(got) != 3 {
		t.Fatalf("want 3 mutually non-dominated members, got %d", len(got))
	}
	// Members come back in deterministic axis order regardless of
	// insertion order.
	for i := 1; i < len(got); i++ {
		if !axisLess(&got[i-1], &got[i]) {
			t.Fatalf("members not in axis order: %+v", got)
		}
	}
}

func TestParetoFrontCrowdingTruncation(t *testing.T) {
	f := NewParetoFront(3)
	// Four trade-off points chosen so every one of the five objective
	// axes is strictly monotone along the chain (delay = {8,4,2,1},
	// energy constant at 8, so ED² = {512,128,32,8} and EDA =
	// {64,96,144,216}): the 2- and 8-core points are the extremes on
	// every axis and must survive. Summing normalized gaps per axis by
	// hand gives ~3.07 for the 3-core point vs ~3.24 for the 4-core
	// point, so the 3-core member is the most crowded interior point —
	// the one truncation must drop.
	pts := []Candidate{
		feasible(2, 64, chip.Ring, 1, 1, 1, 0.125), // slow, cool (extreme)
		feasible(4, 64, chip.Ring, 1, 4, 9, 0.5),   // roomy interior
		feasible(8, 64, chip.Ring, 1, 8, 27, 1),    // fast, hot (extreme)
		feasible(3, 64, chip.Ring, 1, 2, 3, 0.25),  // crowded interior
	}
	for _, c := range pts {
		f.Add(c)
	}
	got := f.Members()
	if len(got) != 3 {
		t.Fatalf("front must truncate to 3, got %d", len(got))
	}
	byCores := map[int]bool{}
	for _, c := range got {
		byCores[c.Cores] = true
	}
	if !byCores[2] || !byCores[8] {
		t.Errorf("axis extremes must never be truncated, kept %v", byCores)
	}
	if byCores[3] {
		t.Error("the most crowded interior point must be the one dropped")
	}
}

func TestParetoFrontFilter(t *testing.T) {
	f := NewParetoFront(0)
	f.Add(feasible(2, 64, chip.Ring, 1, 5, 10, 1e10))
	f.Add(feasible(64, 64, chip.Ring, 1, 150, 80, 8e11))
	v := f.Version()
	if f.Filter(func(*Candidate) bool { return true }) {
		t.Error("keep-all filter must report no change")
	}
	if f.Version() != v {
		t.Error("no-op filter must not bump the version")
	}
	if !f.Filter(func(c *Candidate) bool { return c.Cores != 64 }) {
		t.Error("dropping a member must report a change")
	}
	got := f.Members()
	if len(got) != 1 || got[0].Cores != 2 {
		t.Fatalf("filter kept the wrong members: %+v", got)
	}
}

func TestObjectivesVector(t *testing.T) {
	c := feasible(16, 256, chip.Mesh, 1, 100, 50, 1e11)
	obj := c.Objectives()
	d := 1 / 1e11
	e := 100 * d
	want := [objectiveAxes]float64{100, 50, d, e * d * d, e * d * 50}
	for i := range want {
		if math.Abs(obj[i]-want[i]) > 1e-18*math.Abs(want[i]) {
			t.Fatalf("objective axis %d = %g, want %g", i, obj[i], want[i])
		}
	}
}

func TestParetoFrontMembersIsSnapshot(t *testing.T) {
	f := NewParetoFront(0)
	f.Add(feasible(2, 64, chip.Ring, 1, 5, 10, 1e10))
	snap := f.Members()
	f.Add(feasible(64, 64, chip.Ring, 1, 150, 80, 8e11))
	if len(snap) != 1 {
		t.Fatal("snapshot must not alias the live archive")
	}
	if !reflect.DeepEqual(snap, []Candidate{feasible(2, 64, chip.Ring, 1, 5, 10, 1e10)}) {
		t.Fatalf("snapshot mutated: %+v", snap)
	}
}
