package explore

import "fmt"

// SearchKind selects the candidate-generation strategy of a sweep.
type SearchKind int

const (
	// SearchExhaustive enumerates the full cross-product of the space
	// (the classic sweep; the zero value, so existing callers are
	// unchanged).
	SearchExhaustive SearchKind = iota
	// SearchPareto runs the adaptive multi-objective search: a seeded
	// sample followed by one-axis mutations of the current Pareto front,
	// bounded by an evaluation budget.
	SearchPareto
)

func (k SearchKind) String() string {
	switch k {
	case SearchExhaustive:
		return "exhaustive"
	case SearchPareto:
		return "pareto"
	}
	return fmt.Sprintf("SearchKind(%d)", int(k))
}

// ParseSearchKind maps a search name to its kind. The empty string
// selects the exhaustive sweep.
func ParseSearchKind(name string) (SearchKind, error) {
	switch name {
	case "", "exhaustive":
		return SearchExhaustive, nil
	case "pareto":
		return SearchPareto, nil
	}
	return 0, fmt.Errorf("unknown search %q (exhaustive|pareto)", name)
}

// Generator proposes candidate design points for the engine to evaluate
// and observes the outcomes, closing the propose→evaluate→observe loop
// that both the exhaustive sweep and the adaptive search run on. The
// engine owns all concurrency: Propose and Observe are called from a
// single goroutine, strictly alternating, so implementations need no
// locking and stay deterministic; the worker pool only parallelizes the
// evaluations inside one proposed batch.
type Generator interface {
	// Propose returns the next batch of design points (axes populated,
	// metrics zero). An empty batch ends the search. The engine never
	// calls Propose again after a cancellation.
	Propose() []Candidate
	// Observe reports the batch's evaluated candidates in proposal
	// order: metrics filled in for feasible points, Reject set for
	// budget/validity rejections. Candidates whose evaluation failed
	// hard (panic, timeout) or was abandoned by cancellation are
	// omitted.
	Observe(evaluated []Candidate)
}

// exhaustiveGenerator proposes the entire enumerated space as one
// batch, reproducing the classic sweep through the generator loop.
type exhaustiveGenerator struct {
	specs []Candidate
	done  bool
}

func newExhaustiveGenerator(space Space) *exhaustiveGenerator {
	return &exhaustiveGenerator{specs: enumerate(space)}
}

func (g *exhaustiveGenerator) Propose() []Candidate {
	if g.done {
		return nil
	}
	g.done = true
	return g.specs
}

func (g *exhaustiveGenerator) Observe([]Candidate) {}
