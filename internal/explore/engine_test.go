package explore

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mcpat/internal/chip"
	"mcpat/internal/guard"
)

// withEvalHook installs a per-candidate evaluation hook for the duration
// of one test. The engine evaluates concurrently, so hooks must be
// goroutine-safe.
func withEvalHook(t *testing.T, hook func(c *Candidate)) {
	t.Helper()
	testEvalHook.Store(&hook)
	t.Cleanup(func() { testEvalHook.Store(nil) })
}

func singlePoint() Space {
	return Space{
		Cores:        []int{16},
		L2PerCoreKB:  []int{256},
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{1},
	}
}

func TestSearchContextMatchesSearch(t *testing.T) {
	space := Space{
		Cores:        []int{16, 32},
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{1, 4},
	}
	cons := Constraints{MaxAreaMM2: 400, MaxTDP: 250}
	seq, err := SearchContext(context.Background(), quickParams(), space, cons, MaxThroughput,
		&Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SearchContext(context.Background(), quickParams(), space, cons, MaxThroughput,
		&Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Candidates, par.Candidates) {
		t.Error("result ordering must be deterministic across worker counts")
	}
	if seq.Evaluated != par.Evaluated || seq.Feasible != par.Feasible {
		t.Errorf("counts differ: seq %d/%d, par %d/%d",
			seq.Feasible, seq.Evaluated, par.Feasible, par.Evaluated)
	}
}

func TestSinglePointSpace(t *testing.T) {
	res, err := SearchContext(context.Background(), quickParams(), singlePoint(),
		Constraints{}, MaxThroughput, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 1 || res.Feasible != 1 || res.Best == nil {
		t.Fatalf("single-point space: evaluated=%d feasible=%d best=%v",
			res.Evaluated, res.Feasible, res.Best)
	}
}

func TestEmptyFeasibleSet(t *testing.T) {
	// Every candidate violates the (absurd) budget: the sweep must still
	// complete, rank nothing, and report every rejection reason.
	res, err := SearchContext(context.Background(), quickParams(), Space{
		Cores:        []int{16, 32},
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{1},
	}, Constraints{MaxTDP: 0.001}, MaxThroughput, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil || res.Feasible != 0 {
		t.Fatalf("nothing can fit 1 mW: feasible=%d best=%v", res.Feasible, res.Best)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("all candidates must still be reported, got %d", len(res.Candidates))
	}
	for _, c := range res.Candidates {
		if c.Reject == "" {
			t.Error("infeasible candidate must carry a rejection reason")
		}
	}
	if len(res.Failures) != 0 {
		t.Errorf("budget rejections are not failures: %v", res.Failures)
	}
}

func TestAllCandidatesInfeasibleCombination(t *testing.T) {
	// Cluster size 7 divides neither core count: every point is malformed.
	res, err := SearchContext(context.Background(), quickParams(), Space{
		Cores:        []int{16, 32},
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{7},
	}, Constraints{}, MaxThroughput, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible != 0 || res.Best != nil || res.Evaluated != 2 {
		t.Fatalf("want 2 evaluated, 0 feasible: %+v", res)
	}
}

func TestPoisonedCandidateDoesNotAbortSweep(t *testing.T) {
	withEvalHook(t, func(c *Candidate) {
		if c.Cores == 32 {
			panic("poisoned candidate: simulated model fault")
		}
	})
	res, err := SearchContext(context.Background(), quickParams(), Space{
		Cores:        []int{16, 32, 64},
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{1},
	}, Constraints{MaxAreaMM2: 400, MaxTDP: 250}, MaxThroughput, &Options{Workers: 2})
	if err != nil {
		t.Fatalf("a poisoned candidate must not abort the sweep: %v", err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("want exactly 1 failure, got %v", res.Failures)
	}
	f := res.Failures[0]
	if f.Candidate.Cores != 32 {
		t.Errorf("failure attributed to wrong candidate: %+v", f.Candidate)
	}
	if !errors.Is(f.Err, guard.ErrInternal) {
		t.Errorf("recovered panic must classify as ErrInternal, got %v", f.Err)
	}
	if !strings.Contains(f.Err.Error(), "poisoned candidate") {
		t.Errorf("failure must preserve the panic value: %v", f.Err)
	}
	// The survivors are still evaluated and ranked.
	if res.Evaluated != 3 || len(res.Candidates) != 2 {
		t.Errorf("evaluated=%d candidates=%d, want 3 and 2", res.Evaluated, len(res.Candidates))
	}
	if res.Best == nil {
		t.Error("surviving feasible candidates must still produce a Best")
	}
	for _, c := range res.Candidates {
		if c.Cores == 32 {
			t.Error("failed candidate must not appear in ranked results")
		}
	}
}

func TestFailFastAbortsOnFirstFailure(t *testing.T) {
	withEvalHook(t, func(c *Candidate) {
		panic("always poisoned")
	})
	res, err := SearchContext(context.Background(), quickParams(), Space{
		Cores:        []int{16, 32, 64},
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{1},
	}, Constraints{}, MaxThroughput, &Options{Workers: 1, FailFast: true})
	if err == nil {
		t.Fatal("FailFast must surface the first failure as an error")
	}
	if !errors.Is(err, guard.ErrInternal) {
		t.Errorf("want ErrInternal, got %v", err)
	}
	if res == nil || len(res.Failures) == 0 {
		t.Error("partial result with the failure report must still be returned")
	}
}

func TestCancellationMidSweepReturnsPromptly(t *testing.T) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	withEvalHook(t, func(c *Candidate) {
		started <- struct{}{}
		<-release // stall until the test releases the evaluations
	})
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = SearchContext(ctx, quickParams(), Space{
			Cores:        []int{8, 16, 32, 64},
			Fabrics:      []chip.InterconnectKind{chip.Mesh},
			ClusterSizes: []int{1, 2},
		}, Constraints{}, MaxThroughput, &Options{Workers: 2})
		close(done)
	}()

	<-started // at least one evaluation is in flight
	cancel()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled sweep did not return promptly")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("partial result must accompany the cancellation error")
	}
	if res.Evaluated >= 8 {
		t.Errorf("cancellation should have stopped the sweep early, evaluated %d", res.Evaluated)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SearchContext(ctx, quickParams(), singlePoint(), Constraints{}, MaxThroughput, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Evaluated != 0 {
		t.Fatalf("pre-cancelled sweep must evaluate nothing: %+v", res)
	}
}

func TestCandidateTimeout(t *testing.T) {
	var stalls atomic.Int32
	release := make(chan struct{})
	defer close(release)
	withEvalHook(t, func(c *Candidate) {
		if c.Cores == 32 {
			stalls.Add(1)
			<-release // hang far beyond the deadline
		}
	})
	res, err := SearchContext(context.Background(), quickParams(), Space{
		Cores:        []int{16, 32},
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{1},
	}, Constraints{}, MaxThroughput, &Options{Workers: 2, CandidateTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("a timed-out candidate must not abort the sweep: %v", err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("want 1 timeout failure, got %v", res.Failures)
	}
	if !errors.Is(res.Failures[0].Err, context.DeadlineExceeded) {
		t.Errorf("timeout must classify as DeadlineExceeded, got %v", res.Failures[0].Err)
	}
	if stalls.Load() != 1 {
		t.Errorf("hook stalled %d times, want 1", stalls.Load())
	}
	if res.Best == nil || res.Best.Cores != 16 {
		t.Error("the surviving candidate must still be ranked")
	}
}

func TestFailureStringAndDeterministicFailureOrder(t *testing.T) {
	withEvalHook(t, func(c *Candidate) {
		if c.Cores == 16 || c.Cores == 64 {
			panic("boom")
		}
	})
	res, err := SearchContext(context.Background(), quickParams(), Space{
		Cores:        []int{16, 32, 64},
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{1},
	}, Constraints{}, MaxThroughput, &Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 2 ||
		res.Failures[0].Candidate.Cores != 16 || res.Failures[1].Candidate.Cores != 64 {
		t.Fatalf("failures must follow enumeration order: %v", res.Failures)
	}
	if s := res.Failures[0].String(); !strings.Contains(s, "16c") {
		t.Errorf("Failure.String should identify the design point: %q", s)
	}
}
