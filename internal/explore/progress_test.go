package explore

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcpat/internal/chip"
)

// progressRecorder collects OnProgress calls and verifies the contract:
// done strictly increases by 1 from 1, total is fixed at the space size.
// The engine serializes callback invocations, so no locking is needed
// here - the race detector would flag a violation of that guarantee.
type progressRecorder struct {
	dones  []int
	totals []int
}

func (r *progressRecorder) cb(done, total int) {
	r.dones = append(r.dones, done)
	r.totals = append(r.totals, total)
}

func (r *progressRecorder) verify(t *testing.T, wantTotal int) {
	t.Helper()
	for i, d := range r.dones {
		if d != i+1 {
			t.Fatalf("progress not monotonic: call %d reported done=%d", i, d)
		}
	}
	for _, tot := range r.totals {
		if tot != wantTotal {
			t.Fatalf("total must be fixed at %d, saw %d", wantTotal, tot)
		}
	}
}

func TestOnProgressCoversFullSweep(t *testing.T) {
	space := Space{
		Cores:        []int{8, 16, 32, 64},
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{1, 2},
	}
	rec := &progressRecorder{}
	res, err := SearchContext(context.Background(), quickParams(), space,
		Constraints{}, MaxThroughput, &Options{Workers: 4, OnProgress: rec.cb})
	if err != nil {
		t.Fatal(err)
	}
	rec.verify(t, 8)
	if len(rec.dones) != 8 {
		t.Fatalf("want 8 progress calls for 8 candidates, got %d", len(rec.dones))
	}
	if res.Evaluated != len(rec.dones) {
		t.Errorf("progress calls (%d) must match Evaluated (%d)", len(rec.dones), res.Evaluated)
	}
}

func TestOnProgressUnderCancellation(t *testing.T) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	withEvalHook(t, func(c *Candidate) {
		started <- struct{}{}
		<-release
	})
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &progressRecorder{}
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = SearchContext(ctx, quickParams(), Space{
			Cores:        []int{8, 16, 32, 64},
			Fabrics:      []chip.InterconnectKind{chip.Mesh},
			ClusterSizes: []int{1, 2},
		}, Constraints{}, MaxThroughput, &Options{Workers: 2, OnProgress: rec.cb})
		close(done)
	}()

	<-started
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled sweep did not return promptly")
	}

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("partial result must accompany the cancellation error")
	}
	// The engine has returned; no more callbacks can arrive. Everything
	// reported so far must satisfy the monotonicity contract, stop short
	// of the full space, and agree with the partial result.
	rec.verify(t, 8)
	if len(rec.dones) >= 8 {
		t.Errorf("cancellation should have cut progress short, saw %d calls", len(rec.dones))
	}
	if res.Evaluated != len(rec.dones) {
		t.Errorf("progress calls (%d) must match Evaluated (%d) in the partial result",
			len(rec.dones), res.Evaluated)
	}
}
