// Package explore implements chip-level design-space exploration on top
// of the power/area/timing models: it enumerates a design space (core
// count, cache capacity, fabric, clustering), synthesizes every point,
// rejects those that violate the area/TDP budget, evaluates performance
// with the bundled simulator, and ranks the survivors under a chosen
// objective. This is the "architecting as constrained optimization" use
// that McPAT was built to serve, packaged as a reusable engine.
package explore

import (
	"fmt"
	"math"
	"sort"

	"mcpat/internal/cache"
	"mcpat/internal/chip"
	"mcpat/internal/core"
	"mcpat/internal/mc"
	"mcpat/internal/perfsim"
)

// Space enumerates the design axes. Empty slices take single defaults.
type Space struct {
	Cores        []int
	L2PerCoreKB  []int
	Fabrics      []chip.InterconnectKind
	ClusterSizes []int // meaningful for Mesh fabrics only
}

// Constraints bound the feasible region.
type Constraints struct {
	MaxAreaMM2 float64 // 0 = unconstrained
	MaxTDP     float64 // W; 0 = unconstrained
}

// Objective ranks feasible candidates; higher is better.
type Objective int

const (
	// MaxThroughput maximizes aggregate instructions/s.
	MaxThroughput Objective = iota
	// MaxPerfPerWatt maximizes throughput per runtime watt.
	MaxPerfPerWatt
	// MinED2AP minimizes energy x delay^2 x area (reported as its inverse
	// so that higher is still better).
	MinED2AP
)

func (o Objective) String() string {
	switch o {
	case MaxThroughput:
		return "throughput"
	case MaxPerfPerWatt:
		return "perf/watt"
	case MinED2AP:
		return "1/ED2AP"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Params fixes everything the space does not sweep.
type Params struct {
	NM      float64
	ClockHz float64
	Threads int
	MemBW   float64 // bytes/s

	Workloads []perfsim.Workload // nil selects the SPLASH-2-like trio
}

// Candidate is one evaluated design point.
type Candidate struct {
	Cores       int
	L2PerCoreKB int
	Fabric      chip.InterconnectKind
	ClusterSize int

	TDP     float64 // W
	AreaMM2 float64
	Perf    float64 // instructions/s (mean over workloads)
	RunW    float64 // runtime power (geomean)

	Feasible bool
	Reject   string // why infeasible ("" when feasible)
	Score    float64
}

// Result is the completed exploration.
type Result struct {
	Candidates []Candidate // every point, feasible first, ranked by score
	Best       *Candidate  // nil if nothing feasible
	Evaluated  int
	Feasible   int
}

func (s *Space) defaults() {
	if len(s.Cores) == 0 {
		s.Cores = []int{8}
	}
	if len(s.L2PerCoreKB) == 0 {
		s.L2PerCoreKB = []int{256}
	}
	if len(s.Fabrics) == 0 {
		s.Fabrics = []chip.InterconnectKind{chip.Mesh}
	}
	if len(s.ClusterSizes) == 0 {
		s.ClusterSizes = []int{1}
	}
}

func (p *Params) defaults() error {
	if p.NM == 0 {
		p.NM = 22
	}
	if p.ClockHz == 0 {
		p.ClockHz = 2.5e9
	}
	if p.Threads == 0 {
		p.Threads = 4
	}
	if p.MemBW == 0 {
		p.MemBW = 200e9
	}
	if len(p.Workloads) == 0 {
		p.Workloads = perfsim.SPLASH2Like()
	}
	return nil
}

func meshDims(n int) (int, int) {
	x, y := 1, 1
	for x*y < n {
		if x <= y {
			x *= 2
		} else {
			y *= 2
		}
	}
	return x, y
}

// buildConfig constructs the chip for one design point.
func buildConfig(p Params, c Candidate) (chip.Config, error) {
	banks := c.Cores
	cfg := chip.Config{
		Name:     fmt.Sprintf("dse-%dc-%dkb-%v-cl%d", c.Cores, c.L2PerCoreKB, c.Fabric, c.ClusterSize),
		NM:       p.NM,
		ClockHz:  p.ClockHz,
		NumCores: c.Cores,
		Core: core.Config{
			Threads: p.Threads,
			ICache:  core.CacheParams{Bytes: 16 << 10, BlockBytes: 32, Assoc: 4},
			DCache:  core.CacheParams{Bytes: 8 << 10, BlockBytes: 16, Assoc: 4},
			IntALUs: 1, MulDivs: 1, FPUs: 1,
		},
		MC: &mc.Config{Channels: 4, PeakBandwidth: p.MemBW, LVDS: true},
	}
	switch c.Fabric {
	case chip.Mesh:
		if c.Cores%c.ClusterSize != 0 {
			return cfg, fmt.Errorf("cluster %d does not divide %d cores", c.ClusterSize, c.Cores)
		}
		clusters := c.Cores / c.ClusterSize
		mx, my := meshDims(clusters)
		cfg.NoC = chip.NoCSpec{
			Kind: chip.Mesh, FlitBits: 128, MeshX: mx, MeshY: my,
			VirtualChannels: 2, BuffersPerVC: 4, ClusterSize: c.ClusterSize,
		}
		banks = clusters
	case chip.Ring, chip.Bus, chip.Crossbar:
		cfg.NoC = chip.NoCSpec{Kind: c.Fabric, FlitBits: 128}
	}
	cfg.L2 = &cache.Config{
		Name:  "L2",
		Bytes: c.Cores * c.L2PerCoreKB << 10, BlockBytes: 64, Assoc: 8,
		Banks: banks, Directory: true, Sharers: c.Cores,
	}
	return cfg, nil
}

// Search runs the exhaustive exploration.
func Search(p Params, space Space, cons Constraints, obj Objective) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	space.defaults()

	res := &Result{}
	for _, cores := range space.Cores {
		for _, l2kb := range space.L2PerCoreKB {
			for _, fab := range space.Fabrics {
				clusterSizes := space.ClusterSizes
				if fab != chip.Mesh {
					clusterSizes = []int{1}
				}
				for _, cl := range clusterSizes {
					cand := Candidate{
						Cores: cores, L2PerCoreKB: l2kb, Fabric: fab, ClusterSize: cl,
					}
					if err := evaluate(p, cons, obj, &cand); err != nil {
						return nil, err
					}
					res.Evaluated++
					if cand.Feasible {
						res.Feasible++
					}
					res.Candidates = append(res.Candidates, cand)
				}
			}
		}
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		a, b := res.Candidates[i], res.Candidates[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		return a.Score > b.Score
	})
	if len(res.Candidates) > 0 && res.Candidates[0].Feasible {
		res.Best = &res.Candidates[0]
	}
	return res, nil
}

func evaluate(p Params, cons Constraints, obj Objective, cand *Candidate) error {
	cfg, err := buildConfig(p, *cand)
	if err != nil {
		cand.Reject = err.Error()
		return nil // malformed point: infeasible, not fatal
	}
	proc, err := chip.New(cfg)
	if err != nil {
		cand.Reject = err.Error()
		return nil
	}
	rep := proc.Report(nil)
	cand.TDP = rep.Peak()
	cand.AreaMM2 = rep.Area * 1e6

	if cons.MaxAreaMM2 > 0 && cand.AreaMM2 > cons.MaxAreaMM2 {
		cand.Reject = fmt.Sprintf("area %.0f mm2 > budget %.0f", cand.AreaMM2, cons.MaxAreaMM2)
		return nil
	}
	if cons.MaxTDP > 0 && cand.TDP > cons.MaxTDP {
		cand.Reject = fmt.Sprintf("TDP %.0f W > budget %.0f", cand.TDP, cons.MaxTDP)
		return nil
	}

	// Performance + runtime power over the workloads.
	dim, _ := meshDims(maxInt(cand.Cores/maxInt(cand.ClusterSize, 1), 1))
	m := perfsim.Machine{
		Cores: cand.Cores, ThreadsPerCore: p.Threads, IssueWidth: 1,
		ClockHz:      p.ClockHz,
		ClusterSize:  cand.ClusterSize,
		L2Latency:    math.Ceil(proc.L2.AccessTime()*p.ClockHz) + 4,
		FabricHopLat: 4, MemLatency: 60e-9 * p.ClockHz,
		MeshDim: dim, MemBandwidth: p.MemBW, BusBytes: 16,
	}
	var sumPerf, logW float64
	for _, w := range p.Workloads {
		sim, err := perfsim.Run(m, w)
		if err != nil {
			return err
		}
		stats := &chip.Stats{
			CoreRun:    sim.CoreActivity,
			L2Reads:    sim.L2ReadsSec,
			L2Writes:   sim.L2WritesSec,
			NoCFlits:   sim.FabricFlits,
			MCAccesses: sim.MemAccessesS,
		}
		runRep := proc.Report(stats)
		sumPerf += sim.Throughput
		logW += math.Log(runRep.RuntimeDynamic + runRep.Leakage())
	}
	n := float64(len(p.Workloads))
	cand.Perf = sumPerf / n
	cand.RunW = math.Exp(logW / n)
	cand.Feasible = true

	d := 1 / cand.Perf
	e := cand.RunW * d // energy per instruction
	switch obj {
	case MaxThroughput:
		cand.Score = cand.Perf
	case MaxPerfPerWatt:
		cand.Score = cand.Perf / cand.RunW
	case MinED2AP:
		cand.Score = 1 / (e * d * d * cand.AreaMM2)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
