// Package explore implements chip-level design-space exploration on top
// of the power/area/timing models: it enumerates a design space (core
// count, cache capacity, fabric, clustering), synthesizes every point,
// rejects those that violate the area/TDP budget, evaluates performance
// with the bundled simulator, and ranks the survivors under a chosen
// objective. This is the "architecting as constrained optimization" use
// that McPAT was built to serve, packaged as a reusable engine.
//
// The engine is built for unattended sweeps over large, partly hostile
// spaces: candidates are evaluated by a bounded worker pool under a
// caller-supplied context, each evaluation runs behind its own panic
// recovery and optional deadline, every synthesized chip passes the
// output sanity guard, and a sweep where some candidates fail returns
// the surviving ranked results plus a per-candidate failure report
// instead of aborting.
package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcpat/internal/array"
	"mcpat/internal/cache"
	"mcpat/internal/chip"
	"mcpat/internal/component"
	"mcpat/internal/core"
	"mcpat/internal/guard"
	"mcpat/internal/mc"
	"mcpat/internal/perfsim"
	"mcpat/internal/persist"
)

// Space enumerates the design axes. Empty slices take single defaults.
type Space struct {
	Cores        []int
	L2PerCoreKB  []int
	Fabrics      []chip.InterconnectKind
	ClusterSizes []int // meaningful for Mesh fabrics only
}

// Constraints bound the feasible region.
type Constraints struct {
	MaxAreaMM2 float64 // 0 = unconstrained
	MaxTDP     float64 // W; 0 = unconstrained
}

// Objective ranks feasible candidates; higher is better.
type Objective int

const (
	// MaxThroughput maximizes aggregate instructions/s.
	MaxThroughput Objective = iota
	// MaxPerfPerWatt maximizes throughput per runtime watt.
	MaxPerfPerWatt
	// MinED2AP minimizes energy x delay^2 x area (reported as its inverse
	// so that higher is still better).
	MinED2AP
)

func (o Objective) String() string {
	switch o {
	case MaxThroughput:
		return "throughput"
	case MaxPerfPerWatt:
		return "perf/watt"
	case MinED2AP:
		return "1/ED2AP"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Params fixes everything the space does not sweep.
type Params struct {
	NM      float64
	ClockHz float64
	Threads int
	MemBW   float64 // bytes/s

	Workloads []perfsim.Workload // nil selects the SPLASH-2-like trio
}

// Candidate is one evaluated design point.
type Candidate struct {
	Cores       int
	L2PerCoreKB int
	Fabric      chip.InterconnectKind
	ClusterSize int

	TDP     float64 // W
	AreaMM2 float64
	Perf    float64 // instructions/s (mean over workloads)
	RunW    float64 // runtime power (geomean)

	Feasible bool
	Reject   string // why infeasible ("" when feasible)
	Score    float64
}

// name returns the component path of the design point, used in errors.
func (c *Candidate) name() string {
	return fmt.Sprintf("dse[%dc-%dkb-%v-cl%d]", c.Cores, c.L2PerCoreKB, c.Fabric, c.ClusterSize)
}

// Failure reports one candidate whose evaluation failed hard: a panic
// inside the models, a per-candidate deadline, or outputs that violated
// the sanity guard. Budget rejections are not failures - those stay in
// Result.Candidates as infeasible points.
type Failure struct {
	Candidate Candidate // the design point (axes populated; metrics may be partial)
	Err       error     // structured cause; classify with errors.Is and the guard kinds
}

func (f Failure) String() string {
	// The error usually already leads with the candidate path (guard
	// errors do); avoid stuttering it.
	if msg := fmt.Sprint(f.Err); strings.HasPrefix(msg, f.Candidate.name()) {
		return msg
	}
	return fmt.Sprintf("%s: %v", f.Candidate.name(), f.Err)
}

// Result is the completed exploration.
type Result struct {
	Candidates []Candidate // every evaluated point, feasible first, ranked by score
	Best       *Candidate  // nil if nothing feasible
	Evaluated  int         // points whose evaluation ran (including failures)
	Feasible   int
	Failures   []Failure // hard per-candidate failures, in proposal order

	// Front is the Pareto-optimal subset of the evaluated feasible
	// candidates over {power, area, delay, ED², EDA}, in deterministic
	// axis order. Both engines fill it: for the exhaustive sweep it is
	// the ground-truth front of the whole space, for the pareto search
	// it is the archive the generations converged to.
	Front []Candidate

	// SpaceSize is the full cross-product size of the (defaulted)
	// space; Evaluated/SpaceSize is the fraction of the space the
	// search actually paid for.
	SpaceSize int

	// Search records the strategy that produced the result.
	Search SearchKind

	// Cache reports the array-synthesis cache activity attributable to
	// this sweep (counter deltas over the sweep; Entries is the resident
	// total afterwards). Parallel workers re-solving a structure another
	// candidate already solved hit this cache instead of recomputing,
	// which is what makes wide sweeps cheap.
	Cache array.CacheStats

	// Subsys reports the subsystem-synthesis cache activity for the
	// sweep (same delta semantics as Cache), broken down per component
	// kind. This is the delta-re-evaluation layer: a sweep that varies
	// only the NoC axes reuses whole synthesized cores and shared
	// caches, showing up here as core/cache hits with a single miss.
	Subsys component.CacheStats

	// ArrayOpt reports the array-optimizer enumeration work done during
	// the sweep (same delta semantics): organizations fully evaluated vs
	// skipped by the branch-and-bound lower bound. Cached syntheses do
	// no enumeration, so on a warm sweep both counters stay near zero.
	ArrayOpt array.OptimizerStats

	// Disk reports the persistent (disk) cache tier's activity for the
	// sweep (same delta semantics; Bytes/Entries are the store totals
	// afterwards). All counters are zero — and Enabled false — when no
	// cache directory is configured.
	Disk persist.Stats
}

// Options tunes the parallel engine. The zero value (or nil) selects the
// documented defaults.
type Options struct {
	// Workers bounds concurrent candidate evaluations.
	// <= 0 selects runtime.GOMAXPROCS(0).
	Workers int

	// SynthWorkers bounds the subsystem-synthesis parallelism inside
	// each candidate's cold chip assembly (cores, shared caches, MCs and
	// I/O build concurrently; see chip.SetSynthWorkers). 0 selects the
	// process default; 1 forces serial assembly. Serial and parallel
	// assembly are bit-identical, so this only trades wall-clock against
	// scheduling overhead when the sweep itself already saturates the
	// machine.
	SynthWorkers int

	// CandidateTimeout is the per-candidate evaluation deadline; a
	// candidate exceeding it is reported as a Failure wrapping
	// context.DeadlineExceeded. 0 disables the deadline.
	CandidateTimeout time.Duration

	// FailFast aborts the sweep at the first hard failure instead of
	// degrading gracefully. The default (false) keeps going: failed
	// candidates land in Result.Failures and the survivors are ranked.
	FailFast bool

	// OnProgress, when non-nil, is invoked after each candidate
	// evaluation completes (successes, rejections, and failures alike).
	// done is strictly increasing from 1 and never exceeds total, which
	// is fixed at the planned evaluation count (the space size for the
	// exhaustive sweep, the effective budget for the pareto search);
	// calls are serialized, so the callback needs no locking of its own.
	// A cancelled — or early-converged pareto — sweep stops reporting
	// before done reaches total. The callback runs on worker goroutines
	// and must not block for long.
	OnProgress func(done, total int)

	// Search selects the candidate-generation strategy: SearchExhaustive
	// (the zero value) sweeps the full cross-product, SearchPareto runs
	// the adaptive multi-objective search under an evaluation budget.
	Search SearchKind

	// Budget bounds the candidate evaluations a pareto search may
	// issue. <= 0 selects the default: a tenth of the space size,
	// floored at 24; explicit budgets are capped at the space size.
	// The exhaustive sweep ignores it.
	Budget int

	// Seed seeds the pareto search's generator. Equal seeds over equal
	// spaces replay the identical proposal sequence — and therefore the
	// identical front — at any worker count. 0 selects seed 1, so the
	// default is deterministic too.
	Seed int64

	// FrontSize caps the Pareto archive: when a new member would exceed
	// it, the most crowded interior member is dropped
	// (crowding-distance truncation; axis extremes are never dropped).
	// <= 0 leaves the front unbounded.
	FrontSize int

	// OnFrontUpdate, when non-nil, is invoked after each generation
	// whose evaluations changed the Pareto front, with a fresh snapshot
	// of the front and the number of candidates evaluated so far. Calls
	// are serialized on the engine goroutine. The exhaustive sweep
	// reports once at the end; the pareto search streams one update per
	// improving generation.
	OnFrontUpdate func(front []Candidate, evaluated int)

	// Shard restricts an exhaustive sweep to the contiguous index range
	// [Start, End) of the space's deterministic boustrophedon
	// enumeration (see Enumerate). This is the unit of distributed
	// work: a coordinator partitions [0, Size()) into contiguous
	// shards, each worker evaluates its range with this option, and the
	// union of the shards is exactly the full sweep. Because consecutive
	// enumeration indices differ in as few axes as possible, a
	// contiguous shard keeps the worker's subsystem cache as hot as the
	// full sweep would. Progress (OnProgress) counts within the shard.
	// Only the exhaustive search accepts a shard; combining it with
	// SearchPareto is a config error.
	Shard *ShardRange
}

// ShardRange selects the half-open enumeration index range [Start, End)
// of an exhaustive sweep (see Options.Shard).
type ShardRange struct {
	Start int
	End   int
}

// validate checks the range against the enumerated space size.
func (r *ShardRange) validate(size int) error {
	if r.Start < 0 || r.End < r.Start || r.End > size {
		return guard.Configf("dse.shard",
			"shard [%d,%d) out of range for a %d-point space", r.Start, r.End, size)
	}
	return nil
}

func (o *Options) defaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out
}

func (s *Space) defaults() {
	if len(s.Cores) == 0 {
		s.Cores = []int{8}
	}
	if len(s.L2PerCoreKB) == 0 {
		s.L2PerCoreKB = []int{256}
	}
	if len(s.Fabrics) == 0 {
		s.Fabrics = []chip.InterconnectKind{chip.Mesh}
	}
	if len(s.ClusterSizes) == 0 {
		s.ClusterSizes = []int{1}
	}
}

func (p *Params) defaults() error {
	if p.NM == 0 {
		p.NM = 22
	}
	if p.ClockHz == 0 {
		p.ClockHz = 2.5e9
	}
	if p.Threads == 0 {
		p.Threads = 4
	}
	if p.MemBW == 0 {
		p.MemBW = 200e9
	}
	if len(p.Workloads) == 0 {
		p.Workloads = perfsim.SPLASH2Like()
	}
	return nil
}

// Size returns the number of design points the space enumerates after
// defaulting - the total an exhaustive sweep over it will evaluate (and
// the total Options.OnProgress reports). The size is computed
// arithmetically, and a cross-product large enough to overflow int is
// rejected with guard.ErrConfig instead of being reported as a silently
// wrapped (possibly negative) count.
func (s Space) Size() (int, error) {
	sp := s
	sp.defaults()
	// Points per (cores, L2) pair: every mesh fabric carries the full
	// cluster axis, every other fabric collapses it to a single point.
	perPair := 0
	for _, f := range sp.Fabrics {
		if f == chip.Mesh {
			perPair += len(sp.ClusterSizes)
		} else {
			perPair++
		}
	}
	size := perPair
	for _, n := range []int{len(sp.Cores), len(sp.L2PerCoreKB)} {
		next := size * n
		if next/n != size || next < 0 {
			return 0, guard.Configf("dse.space",
				"design space cross-product overflows int (%d cores × %d L2 × %d fabric/cluster points)",
				len(sp.Cores), len(sp.L2PerCoreKB), perPair)
		}
		size = next
	}
	return size, nil
}

// PlannedEvaluations returns the progress total a sweep over the space
// reports under the given options: the full cross-product size for the
// exhaustive search, the effective evaluation budget for the pareto
// search. Like Size, it rejects an int-overflowing cross-product with
// guard.ErrConfig.
func PlannedEvaluations(space Space, opts *Options) (int, error) {
	size, err := space.Size()
	if err != nil {
		return 0, err
	}
	o := opts.defaults()
	if o.Search == SearchPareto {
		return effectiveBudget(o.Budget, size), nil
	}
	if o.Shard != nil {
		if err := o.Shard.validate(size); err != nil {
			return 0, err
		}
		return o.Shard.End - o.Shard.Start, nil
	}
	return size, nil
}

// defaultMinBudget floors the default pareto budget so tiny spaces
// still get a seed sample plus a few mutation generations.
const defaultMinBudget = 24

// effectiveBudget resolves the pareto evaluation budget: an explicit
// positive budget is honored (capped at the space size, since the
// generator never revisits a point); otherwise the default is a tenth
// of the space, floored at defaultMinBudget.
func effectiveBudget(budget, size int) int {
	if budget <= 0 {
		budget = size / 10
		if budget < defaultMinBudget {
			budget = defaultMinBudget
		}
	}
	if budget > size {
		budget = size
	}
	return budget
}

// Enumerate lists every design point of the (defaulted) space in the
// engine's deterministic boustrophedon order — the order Size() counts
// and ShardRange indexes. The distributed coordinator uses it to map
// evaluated candidates back to their global enumeration indices so
// per-shard results can be merged into exactly the ordering a
// single-process sweep would produce.
func Enumerate(space Space) []Candidate {
	space.defaults()
	return enumerate(space)
}

// enumerate lists every design point of the space in a deterministic
// boustrophedon (Gray-code-style) order: each inner axis reverses
// direction whenever its outer axis advances, so consecutive candidates
// differ in as few axes as possible - usually exactly one. Sweep result
// ordering derives from this order, so runs are reproducible regardless
// of worker count; the snake order additionally gives plain exhaustive
// sweeps the delta shape the subsystem cache serves best, because a
// one-axis step leaves every other subsystem's synthesis a pure cache
// hit.
func enumerate(space Space) []Candidate {
	var specs []Candidate
	pick := func(vals []int, i int, rev bool) int {
		if rev {
			return vals[len(vals)-1-i]
		}
		return vals[i]
	}
	l2Rev, fabRev, clRev := false, false, false
	for _, cores := range space.Cores {
		for li := range space.L2PerCoreKB {
			l2kb := pick(space.L2PerCoreKB, li, l2Rev)
			for fi := range space.Fabrics {
				fj := fi
				if fabRev {
					fj = len(space.Fabrics) - 1 - fi
				}
				fab := space.Fabrics[fj]
				clusterSizes := space.ClusterSizes
				if fab != chip.Mesh {
					clusterSizes = []int{1}
				}
				for ci := range clusterSizes {
					specs = append(specs, Candidate{
						Cores: cores, L2PerCoreKB: l2kb, Fabric: fab,
						ClusterSize: pick(clusterSizes, ci, clRev),
					})
				}
				if fab == chip.Mesh {
					// The next mesh run resumes from this end of the
					// cluster axis.
					clRev = !clRev
				}
			}
			fabRev = !fabRev
		}
		l2Rev = !l2Rev
	}
	return specs
}

func meshDims(n int) (int, int) {
	x, y := 1, 1
	for x*y < n {
		if x <= y {
			x *= 2
		} else {
			y *= 2
		}
	}
	return x, y
}

// buildConfig constructs the chip for one design point.
func buildConfig(p Params, c Candidate) (chip.Config, error) {
	banks := c.Cores
	cfg := chip.Config{
		Name:     fmt.Sprintf("dse-%dc-%dkb-%v-cl%d", c.Cores, c.L2PerCoreKB, c.Fabric, c.ClusterSize),
		NM:       p.NM,
		ClockHz:  p.ClockHz,
		NumCores: c.Cores,
		Core: core.Config{
			Threads: p.Threads,
			ICache:  core.CacheParams{Bytes: 16 << 10, BlockBytes: 32, Assoc: 4},
			DCache:  core.CacheParams{Bytes: 8 << 10, BlockBytes: 16, Assoc: 4},
			IntALUs: 1, MulDivs: 1, FPUs: 1,
		},
		MC: &mc.Config{Channels: 4, PeakBandwidth: p.MemBW, LVDS: true},
	}
	switch c.Fabric {
	case chip.Mesh:
		if c.ClusterSize <= 0 || c.Cores%c.ClusterSize != 0 {
			return cfg, fmt.Errorf("cluster %d does not divide %d cores", c.ClusterSize, c.Cores)
		}
		clusters := c.Cores / c.ClusterSize
		mx, my := meshDims(clusters)
		cfg.NoC = chip.NoCSpec{
			Kind: chip.Mesh, FlitBits: 128, MeshX: mx, MeshY: my,
			VirtualChannels: 2, BuffersPerVC: 4, ClusterSize: c.ClusterSize,
		}
		banks = clusters
	case chip.Ring, chip.Bus, chip.Crossbar:
		cfg.NoC = chip.NoCSpec{Kind: c.Fabric, FlitBits: 128}
	}
	cfg.L2 = &cache.Config{
		Name:  "L2",
		Bytes: c.Cores * c.L2PerCoreKB << 10, BlockBytes: 64, Assoc: 8,
		Banks: banks, Directory: true, Sharers: c.Cores,
	}
	return cfg, nil
}

// Search runs the exhaustive exploration sequentially-equivalent on the
// background context with default options. Kept as the simple entry
// point; SearchContext is the production engine.
func Search(p Params, space Space, cons Constraints, obj Objective) (*Result, error) {
	return SearchContext(context.Background(), p, space, cons, obj, nil)
}

// SearchContext runs the exploration on a bounded worker pool under the
// caller's context.
//
// Strategy: Options.Search picks the candidate generator. The default
// exhaustive sweep proposes the whole cross-product in one batch; the
// pareto search proposes a seeded sample and then generations of
// one-axis mutations of the current front, bounded by Options.Budget.
// Both run through the same worker pool, progress, failure, and
// cancellation plumbing, and both leave the evaluated Pareto front in
// Result.Front.
//
// Fault tolerance: each candidate is evaluated behind its own panic
// recovery and (optional) deadline, so one poisoned design point cannot
// abort the sweep - it is reported in Result.Failures and the surviving
// candidates are ranked as usual (unless Options.FailFast is set, in
// which case the first hard failure is returned as the error alongside
// the partial result).
//
// Cancellation: when ctx is cancelled mid-sweep the engine stops
// promptly, abandons in-flight evaluations, and returns the partial
// result - including the partial front - together with ctx.Err().
// Result ordering is deterministic for a given space (and, for the
// pareto search, seed) regardless of worker count or completion order.
func SearchContext(ctx context.Context, p Params, space Space, cons Constraints, obj Objective, opts *Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.defaults(); err != nil {
		return nil, err
	}
	space.defaults()
	o := opts.defaults()

	size, err := space.Size()
	if err != nil {
		return nil, err
	}
	front := NewParetoFront(o.FrontSize)
	var gen Generator
	planned := size
	switch o.Search {
	case SearchExhaustive:
		g := newExhaustiveGenerator(space)
		if o.Shard != nil {
			if err := o.Shard.validate(size); err != nil {
				return nil, err
			}
			g.specs = g.specs[o.Shard.Start:o.Shard.End]
			planned = o.Shard.End - o.Shard.Start
		}
		gen = g
	case SearchPareto:
		if o.Shard != nil {
			return nil, guard.Configf("dse.shard",
				"sharding applies to exhaustive sweeps only, not the %v search", o.Search)
		}
		planned = effectiveBudget(o.Budget, size)
		seed := o.Seed
		if seed == 0 {
			seed = 1
		}
		gen = newAdaptiveGenerator(space, front, planned, seed)
	default:
		return nil, guard.Configf("dse", "unknown search kind %d", int(o.Search))
	}

	cacheBefore := array.Stats()
	subsysBefore := component.Stats()
	optBefore := array.OptStats()
	diskBefore := persist.DefaultStats()

	// A derived context lets FailFast stop the pool without conflating
	// that with caller cancellation.
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	eng := &engine{
		ctx: ctx, cancel: cancel,
		o: &o, p: p, cons: cons, obj: obj,
		total: planned,
	}

	var outs []outcome
	notified := front.Version()
	for parent.Err() == nil && ctx.Err() == nil {
		batch := gen.Propose()
		if len(batch) == 0 {
			break
		}
		bouts := eng.evalBatch(batch)
		evaluated := make([]Candidate, 0, len(bouts))
		for i := range bouts {
			if !bouts[i].ran || bouts[i].err != nil {
				continue
			}
			evaluated = append(evaluated, bouts[i].cand)
			front.Add(bouts[i].cand)
		}
		outs = append(outs, bouts...)
		gen.Observe(evaluated)
		if o.OnFrontUpdate != nil && front.Version() != notified {
			notified = front.Version()
			o.OnFrontUpdate(front.Members(), eng.done())
		}
		if o.FailFast && eng.failure() != nil {
			break
		}
	}
	// The generator may trim the archive as it concludes (the adaptive
	// search withholds unverified members); stream that final state too,
	// so an observer's last snapshot always matches Result.Front.
	if o.OnFrontUpdate != nil && front.Version() != notified {
		o.OnFrontUpdate(front.Members(), eng.done())
	}

	res := &Result{
		Search:    o.Search,
		SpaceSize: size,
		Front:     front.Members(),
		Cache:     array.Stats().Delta(cacheBefore),
		Subsys:    component.Stats().Delta(subsysBefore),
		ArrayOpt:  array.OptStats().Delta(optBefore),
		Disk:      persist.DefaultStats().Delta(diskBefore),
	}
	for i := range outs {
		if !outs[i].ran {
			continue
		}
		res.Evaluated++
		if outs[i].err != nil {
			res.Failures = append(res.Failures, Failure{Candidate: outs[i].cand, Err: outs[i].err})
			continue
		}
		if outs[i].cand.Feasible {
			res.Feasible++
		}
		res.Candidates = append(res.Candidates, outs[i].cand)
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		a, b := res.Candidates[i], res.Candidates[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		return a.Score > b.Score
	})
	if len(res.Candidates) > 0 && res.Candidates[0].Feasible {
		res.Best = &res.Candidates[0]
	}
	if err := parent.Err(); err != nil {
		return res, err
	}
	if o.FailFast {
		if err := eng.failure(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// outcome is one candidate's evaluation result; ran is false when
// cancellation drained the job before it started.
type outcome struct {
	cand Candidate
	err  error
	ran  bool
}

// engine carries the per-sweep evaluation state shared across batches:
// the derived context, progress accounting against the planned total,
// and the first hard failure for FailFast.
type engine struct {
	ctx    context.Context
	cancel context.CancelFunc
	o      *Options
	p      Params
	cons   Constraints
	obj    Objective
	total  int

	mu           sync.Mutex
	progressDone int
	firstFailure error
}

func (e *engine) done() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.progressDone
}

func (e *engine) failure() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firstFailure
}

// reportProgress serializes OnProgress callbacks under the engine
// mutex, preserving the strictly-increasing contract across batches and
// workers.
func (e *engine) reportProgress() {
	e.mu.Lock()
	e.progressDone++
	if e.o.OnProgress != nil {
		e.o.OnProgress(e.progressDone, e.total)
	}
	e.mu.Unlock()
}

// evalBatch evaluates one proposed batch on a bounded worker pool and
// returns the outcomes in proposal order. Cancellation (caller or
// FailFast) stops the feed promptly; drained jobs come back with
// ran == false.
func (e *engine) evalBatch(specs []Candidate) []outcome {
	outs := make([]outcome, len(specs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := e.o.Workers
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if e.ctx.Err() != nil {
					continue // drain without evaluating
				}
				cand := specs[idx]
				err := evalCandidate(e.ctx, e.o, e.p, e.cons, e.obj, &cand)
				outs[idx] = outcome{cand: cand, err: err, ran: true}
				e.reportProgress()
				if err != nil && e.o.FailFast {
					e.mu.Lock()
					if e.firstFailure == nil {
						e.firstFailure = err
					}
					e.mu.Unlock()
					e.cancel()
				}
			}
		}()
	}
feed:
	for i := range specs {
		select {
		case jobs <- i:
		case <-e.ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return outs
}

// evalCandidate evaluates one design point behind its own panic-recovery
// boundary and, when timeout > 0, its own deadline. The evaluation runs
// in a child goroutine so that cancellation and deadlines take effect
// promptly even while the (CPU-bound) models are busy; a timed-out
// evaluation is abandoned and its late result discarded.
func evalCandidate(ctx context.Context, o *Options, p Params, cons Constraints, obj Objective, cand *Candidate) error {
	cctx := ctx
	if timeout := o.CandidateTimeout; timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	type evalOut struct {
		cand Candidate
		err  error
	}
	ch := make(chan evalOut, 1)
	go func() {
		c := *cand
		err := func() (err error) {
			defer guard.Recover(&err, c.name())
			return evaluate(p, cons, obj, o.SynthWorkers, &c)
		}()
		ch <- evalOut{c, err}
	}()
	select {
	case out := <-ch:
		*cand = out.cand
		return out.err
	case <-cctx.Done():
		return guard.At(cctx.Err(), cand.name())
	}
}

// testEvalHook, when set, runs at the start of every candidate
// evaluation inside the recovery boundary. Tests use it to poison or
// stall specific candidates. Atomic because abandoned (timed-out or
// cancelled) evaluation goroutines may still start after a test has
// swapped the hook out.
var testEvalHook atomic.Pointer[func(c *Candidate)]

// evaluate synthesizes and scores one design point. A nil return with
// cand.Feasible == false means the point was legitimately rejected
// (malformed combination or budget violation); a non-nil error is a hard
// failure of the models themselves.
func evaluate(p Params, cons Constraints, obj Objective, synthWorkers int, cand *Candidate) error {
	if hook := testEvalHook.Load(); hook != nil {
		(*hook)(cand)
	}
	cfg, err := buildConfig(p, *cand)
	if err != nil {
		cand.Reject = err.Error()
		return nil // malformed point: infeasible, not fatal
	}
	proc, err := chip.NewWithWorkers(cfg, synthWorkers)
	if err != nil {
		// Config/infeasibility errors are expected rejections of the
		// point; internal faults and domain violations are not.
		if errors.Is(err, guard.ErrInternal) || errors.Is(err, guard.ErrModelDomain) {
			return guard.At(err, cand.name())
		}
		cand.Reject = err.Error()
		return nil
	}
	rep, ds, err := proc.Check(nil)
	if err != nil {
		return guard.At(err, cand.name())
	}
	if dErr := ds.Err(); dErr != nil {
		// The synthesized chip's numbers are not physical: fail loudly
		// instead of ranking garbage.
		return guard.At(dErr, cand.name())
	}
	cand.TDP = rep.Peak()
	cand.AreaMM2 = rep.Area * 1e6

	if cons.MaxAreaMM2 > 0 && cand.AreaMM2 > cons.MaxAreaMM2 {
		cand.Reject = fmt.Sprintf("area %.0f mm2 > budget %.0f", cand.AreaMM2, cons.MaxAreaMM2)
		return nil
	}
	if cons.MaxTDP > 0 && cand.TDP > cons.MaxTDP {
		cand.Reject = fmt.Sprintf("TDP %.0f W > budget %.0f", cand.TDP, cons.MaxTDP)
		return nil
	}

	// Performance + runtime power over the workloads.
	dim, _ := meshDims(maxInt(cand.Cores/maxInt(cand.ClusterSize, 1), 1))
	m := perfsim.Machine{
		Cores: cand.Cores, ThreadsPerCore: p.Threads, IssueWidth: 1,
		ClockHz:      p.ClockHz,
		ClusterSize:  cand.ClusterSize,
		L2Latency:    math.Ceil(proc.L2.AccessTime()*p.ClockHz) + 4,
		FabricHopLat: 4, MemLatency: 60e-9 * p.ClockHz,
		MeshDim: dim, MemBandwidth: p.MemBW, BusBytes: 16,
	}
	var sumPerf, logW float64
	for _, w := range p.Workloads {
		sim, err := perfsim.Run(m, w)
		if err != nil {
			return guard.Wrap(guard.ErrInternal, cand.name(), err)
		}
		stats := &chip.Stats{
			CoreRun:    sim.CoreActivity,
			L2Reads:    sim.L2ReadsSec,
			L2Writes:   sim.L2WritesSec,
			NoCFlits:   sim.FabricFlits,
			MCAccesses: sim.MemAccessesS,
		}
		runRep, err := proc.ReportE(stats)
		if err != nil {
			return guard.At(err, cand.name())
		}
		sumPerf += sim.Throughput
		logW += math.Log(runRep.RuntimeDynamic + runRep.Leakage())
	}
	n := float64(len(p.Workloads))
	cand.Perf = sumPerf / n
	cand.RunW = math.Exp(logW / n)
	if !isFinitePositive(cand.Perf) || !isFinitePositive(cand.RunW) {
		return guard.Domainf(cand.name(),
			"non-physical evaluation: perf=%g runW=%g", cand.Perf, cand.RunW)
	}
	cand.Feasible = true

	d := 1 / cand.Perf
	e := cand.RunW * d // energy per instruction
	switch obj {
	case MaxThroughput:
		cand.Score = cand.Perf
	case MaxPerfPerWatt:
		cand.Score = cand.Perf / cand.RunW
	case MinED2AP:
		cand.Score = 1 / (e * d * d * cand.AreaMM2)
	}
	return nil
}

func isFinitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 0)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
