package explore

import (
	"context"
	"errors"
	"testing"

	"mcpat/internal/guard"
)

func shardTestSpace() Space {
	return Space{
		Cores:       []int{2, 4, 8, 16},
		L2PerCoreKB: []int{64, 128, 256},
	}
}

func TestShardRangeValidation(t *testing.T) {
	space := shardTestSpace()
	size, err := space.Size()
	if err != nil {
		t.Fatal(err)
	}
	bad := []ShardRange{
		{Start: -1, End: 2},
		{Start: 3, End: 2},
		{Start: 0, End: size + 1},
	}
	for _, r := range bad {
		r := r
		_, err := SearchContext(context.Background(), Params{}, space, Constraints{}, MaxThroughput,
			&Options{Shard: &r})
		if !errors.Is(err, guard.ErrConfig) {
			t.Errorf("shard [%d,%d): want config error, got %v", r.Start, r.End, err)
		}
		if _, err := PlannedEvaluations(space, &Options{Shard: &r}); !errors.Is(err, guard.ErrConfig) {
			t.Errorf("PlannedEvaluations shard [%d,%d): want config error, got %v", r.Start, r.End, err)
		}
	}
	if n, err := PlannedEvaluations(space, &Options{Shard: &ShardRange{Start: 2, End: 7}}); err != nil || n != 5 {
		t.Errorf("PlannedEvaluations valid shard: got (%d, %v), want (5, nil)", n, err)
	}
}

func TestShardRejectedForParetoSearch(t *testing.T) {
	_, err := SearchContext(context.Background(), Params{}, shardTestSpace(), Constraints{}, MaxThroughput,
		&Options{Search: SearchPareto, Shard: &ShardRange{Start: 0, End: 4}})
	if !errors.Is(err, guard.ErrConfig) {
		t.Fatalf("pareto + shard: want config error, got %v", err)
	}
}

// TestShardUnionMatchesFullSweep is the engine-level half of the
// distributed-equals-serial contract: evaluating a partition of
// [0, size) shard by shard visits exactly the full enumeration, each
// shard's planned total equals its length, and the per-shard progress
// callbacks count that shard alone.
func TestShardUnionMatchesFullSweep(t *testing.T) {
	space := shardTestSpace()
	full, err := SearchContext(context.Background(), Params{}, space, Constraints{}, MaxThroughput, nil)
	if err != nil {
		t.Fatal(err)
	}
	size := full.SpaceSize

	type key struct {
		cores, l2 int
	}
	want := make(map[key]Candidate, size)
	for _, c := range full.Candidates {
		want[key{c.Cores, c.L2PerCoreKB}] = c
	}

	bounds := []int{0, 3, 4, 9, size}
	seen := make(map[key]Candidate, size)
	for i := 0; i+1 < len(bounds); i++ {
		start, end := bounds[i], bounds[i+1]
		var progressed int
		res, err := SearchContext(context.Background(), Params{}, space, Constraints{}, MaxThroughput,
			&Options{
				Shard:      &ShardRange{Start: start, End: end},
				OnProgress: func(done, total int) { progressed, _ = done, total },
			})
		if err != nil {
			t.Fatalf("shard [%d,%d): %v", start, end, err)
		}
		if res.Evaluated != end-start {
			t.Errorf("shard [%d,%d): evaluated %d, want %d", start, end, res.Evaluated, end-start)
		}
		if progressed != end-start {
			t.Errorf("shard [%d,%d): final progress %d, want %d", start, end, progressed, end-start)
		}
		for _, c := range res.Candidates {
			k := key{c.Cores, c.L2PerCoreKB}
			if _, dup := seen[k]; dup {
				t.Fatalf("shard [%d,%d): candidate %+v already evaluated by an earlier shard", start, end, k)
			}
			seen[k] = c
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("shard union has %d candidates, full sweep %d", len(seen), len(want))
	}
	for k, w := range want {
		got, ok := seen[k]
		if !ok {
			t.Fatalf("candidate %+v missing from the shard union", k)
		}
		if got != w {
			t.Errorf("candidate %+v differs between sharded and full evaluation:\n got %+v\nwant %+v", k, got, w)
		}
	}
}

// TestEnumerateIsShardingBasis pins the public Enumerate wrapper: it
// defaults the space, has the full cross-product size, and slicing it
// is exactly what Options.Shard evaluates.
func TestEnumerateIsShardingBasis(t *testing.T) {
	space := shardTestSpace()
	specs := Enumerate(space)
	size, err := space.Size()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != size {
		t.Fatalf("Enumerate returned %d specs, want %d", len(specs), size)
	}
	res, err := SearchContext(context.Background(), Params{}, space, Constraints{}, MaxThroughput,
		&Options{Shard: &ShardRange{Start: 2, End: 5}})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[[2]int]bool)
	for _, c := range res.Candidates {
		got[[2]int{c.Cores, c.L2PerCoreKB}] = true
	}
	for _, s := range specs[2:5] {
		if !got[[2]int{s.Cores, s.L2PerCoreKB}] {
			t.Errorf("Enumerate[2:5] spec %dc/%dKB not evaluated by shard [2,5)", s.Cores, s.L2PerCoreKB)
		}
	}
}
