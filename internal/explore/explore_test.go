package explore

import (
	"testing"

	"mcpat/internal/chip"
	"mcpat/internal/perfsim"
)

func quickParams() Params {
	return Params{
		NM: 22, ClockHz: 2.5e9, Threads: 4, MemBW: 200e9,
		Workloads: []perfsim.Workload{perfsim.SPLASH2Like()[0]},
	}
}

func TestSearchRanksFeasiblePoints(t *testing.T) {
	res, err := Search(quickParams(), Space{
		Cores:        []int{16, 32, 64},
		L2PerCoreKB:  []int{256},
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{1, 4},
	}, Constraints{MaxAreaMM2: 400, MaxTDP: 250}, MaxThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 6 {
		t.Fatalf("evaluated %d points, want 6", res.Evaluated)
	}
	if res.Best == nil {
		t.Fatal("no feasible design found")
	}
	// Feasible candidates come first and are sorted by score.
	seenInfeasible := false
	var prev float64 = 1e300
	for _, c := range res.Candidates {
		if !c.Feasible {
			seenInfeasible = true
			if c.Reject == "" {
				t.Error("infeasible candidate must carry a reason")
			}
			continue
		}
		if seenInfeasible {
			t.Fatal("feasible candidate after infeasible one")
		}
		if c.Score > prev {
			t.Fatal("candidates not sorted by score")
		}
		prev = c.Score
	}
	// Under MaxThroughput with a generous budget, more cores win.
	if res.Best.Cores != 64 {
		t.Errorf("throughput objective should pick 64 cores, got %d", res.Best.Cores)
	}
}

func TestConstraintsPrune(t *testing.T) {
	res, err := Search(quickParams(), Space{
		Cores:   []int{16, 64},
		Fabrics: []chip.InterconnectKind{chip.Mesh},
	}, Constraints{MaxTDP: 60}, MaxThroughput)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Cores == 64 && c.Feasible {
			t.Error("a 64-core 22nm chip cannot fit a 60 W budget")
		}
	}
	// Infeasible-only spaces yield no Best.
	res2, err := Search(quickParams(), Space{
		Cores:   []int{64},
		Fabrics: []chip.InterconnectKind{chip.Mesh},
	}, Constraints{MaxTDP: 10}, MaxThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Best != nil {
		t.Error("10 W budget must be infeasible")
	}
}

func TestObjectivesDisagree(t *testing.T) {
	space := Space{
		Cores:        []int{16, 64},
		L2PerCoreKB:  []int{256},
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{1, 4},
	}
	cons := Constraints{MaxAreaMM2: 500, MaxTDP: 300}
	tp, err := Search(quickParams(), space, cons, MaxThroughput)
	if err != nil {
		t.Fatal(err)
	}
	ppw, err := Search(quickParams(), space, cons, MaxPerfPerWatt)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Best == nil || ppw.Best == nil {
		t.Fatal("both searches need a best point")
	}
	// The throughput winner has more raw perf; the efficiency winner has
	// better perf/watt - the central McPAT-study observation that optima
	// differ per target.
	if tp.Best.Perf < ppw.Best.Perf {
		t.Error("throughput objective must not lose raw performance")
	}
	if ppw.Best.Perf/ppw.Best.RunW < tp.Best.Perf/tp.Best.RunW {
		t.Error("perf/watt objective must not lose efficiency")
	}
}

func TestNonMeshFabricsIgnoreClustering(t *testing.T) {
	res, err := Search(quickParams(), Space{
		Cores:        []int{8},
		Fabrics:      []chip.InterconnectKind{chip.Crossbar},
		ClusterSizes: []int{1, 2, 4},
	}, Constraints{}, MaxThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 1 {
		t.Errorf("crossbar should collapse cluster axis: evaluated %d", res.Evaluated)
	}
}

func TestDefaults(t *testing.T) {
	res, err := Search(Params{Workloads: []perfsim.Workload{perfsim.SPLASH2Like()[2]}},
		Space{}, Constraints{}, MinED2AP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("default space must produce a feasible point")
	}
	if res.Best.Score <= 0 {
		t.Error("score must be positive")
	}
}

func TestInvalidClusterIsRejectedNotFatal(t *testing.T) {
	res, err := Search(quickParams(), Space{
		Cores:        []int{10}, // 3 does not divide 10
		Fabrics:      []chip.InterconnectKind{chip.Mesh},
		ClusterSizes: []int{3},
	}, Constraints{}, MaxThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible != 0 || res.Candidates[0].Reject == "" {
		t.Error("non-dividing cluster must be rejected with a reason")
	}
}
