package explore

import (
	"math/rand"
	"sort"

	"mcpat/internal/chip"
)

// adaptiveGenerator drives the Pareto search: a deterministic seeded
// sample (the axis corners of every fabric plus random fill), then
// generations that mutate the current front one axis at a time. The
// single-axis mutation is deliberate: a candidate that differs from an
// already-evaluated design in only one axis reuses every other
// subsystem outright through the delta cache (mutating the NoC leaves
// cores and shared caches as pure cache hits), so the search's marginal
// evaluation cost is a fraction of a cold candidate's.
//
// Two refinements make the budget go far. Mutation steps are geometric
// (index distance 1, 2, 4, ... along the cores and L2 axes), so the
// search crosses a wide axis in logarithmically many generations
// instead of crawling one value at a time. And every infeasible
// evaluation seeds a descent probe one index down in cores and L2:
// with area and TDP monotone in both axes, the constrained optima sit
// on the budget boundary, and walking down from an over-budget corner
// finds that boundary directly.
//
// A small rng-driven exploration share per generation protects against
// local optima; everything is derived from the seeded rng and the
// axis-ordered front, so a (seed, space) pair replays the identical
// proposal sequence at any worker count.
type adaptiveGenerator struct {
	cores    []int // sorted ascending, deduplicated
	l2kb     []int
	clusters []int
	fabrics  []chip.InterconnectKind // deduplicated, space order

	front *ParetoFront
	rng   *rand.Rand

	budget   int
	proposed int
	visited  map[axisKey]bool

	// pendInf queues infeasible evaluations (in evaluation order) whose
	// descent neighbors the next generation probes; descended marks the
	// points already expanded so a key descends at most once.
	pendInf   []axisKey
	descended map[axisKey]bool

	seeded       bool
	lastVersion  uint64
	prevFrontier bool // last generation proposed unvisited front neighbors
	stalled      int  // consecutive generations without front change
	concluded    bool // final front pruning already ran
}

// axisKey identifies one design point of the space.
type axisKey struct {
	cores, l2kb int
	fabric      chip.InterconnectKind
	cluster     int
}

// stallLimit ends the search early once this many consecutive
// generations neither changed the front nor found an unvisited neighbor
// of it: the remaining budget would be spent on blind sampling of a
// converged search.
const stallLimit = 4

func sortedUnique(vals []int) []int {
	out := append([]int(nil), vals...)
	sort.Ints(out)
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

func newAdaptiveGenerator(space Space, front *ParetoFront, budget int, seed int64) *adaptiveGenerator {
	g := &adaptiveGenerator{
		cores:     sortedUnique(space.Cores),
		l2kb:      sortedUnique(space.L2PerCoreKB),
		clusters:  sortedUnique(space.ClusterSizes),
		front:     front,
		rng:       rand.New(rand.NewSource(seed)),
		budget:    budget,
		visited:   make(map[axisKey]bool),
		descended: make(map[axisKey]bool),
	}
	for _, f := range space.Fabrics {
		dup := false
		for _, seen := range g.fabrics {
			dup = dup || seen == f
		}
		if !dup {
			g.fabrics = append(g.fabrics, f)
		}
	}
	return g
}

// legal reports whether the axes form an evaluable design point of the
// space: non-mesh fabrics collapse the cluster axis to 1 (as the
// exhaustive enumeration does) and mesh clusters must divide the core
// count. Filtering the non-dividing combinations here keeps them from
// consuming evaluation budget on guaranteed rejections.
func (g *adaptiveGenerator) legal(k axisKey) bool {
	if k.fabric != chip.Mesh {
		return k.cluster == 1
	}
	return k.cluster > 0 && k.cores%k.cluster == 0
}

// clusterFor returns the largest swept cluster size valid for the core
// count under the fabric, and whether one exists. Largest first is a
// model-informed prior: bigger clusters mean fewer mesh routers, so
// the max-cluster point usually dominates its smaller-cluster siblings
// and is the right place to enter the mesh axis; the cluster-step
// mutations then explore downward from there.
func (g *adaptiveGenerator) clusterFor(cores int, fabric chip.InterconnectKind) (int, bool) {
	if fabric != chip.Mesh {
		return 1, true
	}
	for i := len(g.clusters) - 1; i >= 0; i-- {
		if cl := g.clusters[i]; cl > 0 && cores%cl == 0 {
			return cl, true
		}
	}
	return 0, false
}

func candidateOf(k axisKey) Candidate {
	return Candidate{Cores: k.cores, L2PerCoreKB: k.l2kb, Fabric: k.fabric, ClusterSize: k.cluster}
}

// take claims the design point for the batch if it is legal, unvisited,
// and budget remains; it reports whether the point was added.
func (g *adaptiveGenerator) take(k axisKey, batch *[]Candidate) bool {
	if g.proposed >= g.budget || !g.legal(k) || g.visited[k] {
		return false
	}
	g.visited[k] = true
	g.proposed++
	*batch = append(*batch, candidateOf(k))
	return true
}

// randomKey draws one uniformly random legal design point; ok is false
// when the bounded retry budget finds none (a nearly exhausted space).
func (g *adaptiveGenerator) randomKey() (axisKey, bool) {
	for try := 0; try < 128; try++ {
		k := axisKey{
			cores:  g.cores[g.rng.Intn(len(g.cores))],
			l2kb:   g.l2kb[g.rng.Intn(len(g.l2kb))],
			fabric: g.fabrics[g.rng.Intn(len(g.fabrics))],
		}
		if k.fabric == chip.Mesh {
			// Largest valid cluster (the model-informed prior): random
			// samples land on the point most likely to be non-dominated;
			// smaller clusters are reached by cluster-step mutations.
			cl, ok := g.clusterFor(k.cores, k.fabric)
			if !ok {
				continue
			}
			k.cluster = cl
		} else {
			k.cluster = 1
		}
		if g.legal(k) && !g.visited[k] {
			return k, true
		}
	}
	return axisKey{}, false
}

// seedBatch is the first generation: all four corners of the cores×L2
// lattice for every fabric, plus random fill. The corners anchor the
// axis extremes every single-objective optimum tends to live near —
// and when a corner is over budget, its infeasible evaluation starts a
// descent toward the constraint boundary.
func (g *adaptiveGenerator) seedBatch() []Candidate {
	var batch []Candidate
	corner := func(cores, l2 int, f chip.InterconnectKind) {
		if cl, ok := g.clusterFor(cores, f); ok {
			g.take(axisKey{cores, l2, f, cl}, &batch)
		}
	}
	minC, maxC := g.cores[0], g.cores[len(g.cores)-1]
	minL, maxL := g.l2kb[0], g.l2kb[len(g.l2kb)-1]
	for _, f := range g.fabrics {
		corner(minC, minL, f)
		corner(maxC, minL, f)
		corner(minC, maxL, f)
		corner(maxC, maxL, f)
	}

	target := 4*len(g.fabrics) + 2
	if lim := g.budget / 2; target > lim {
		target = lim
	}
	for len(batch) < target {
		k, ok := g.randomKey()
		if !ok {
			break
		}
		g.take(k, &batch)
	}
	return batch
}

// stepInts visits the values step indices below and above cur in vals.
func stepInts(vals []int, cur, step int, visit func(int)) {
	i := sort.SearchInts(vals, cur)
	if j := i - step; j >= 0 {
		visit(vals[j])
	}
	if j := i + step; j < len(vals) {
		visit(vals[j])
	}
}

// neighbors yields the one-axis mutations of a front member at the
// given index distance, in a fixed order: step along cores, then L2,
// then (at step 1 only) the adjacent fabrics and mesh cluster sizes. A
// fabric step entering mesh picks the first valid cluster; a step
// leaving mesh collapses the cluster to 1 — the minimal second-axis
// adjustment legality forces.
func (g *adaptiveGenerator) neighbors(c *Candidate, step int, visit func(axisKey)) {
	base := axisKey{c.Cores, c.L2PerCoreKB, c.Fabric, c.ClusterSize}
	// visitMesh offers the moved point and, when the inherited cluster is
	// not the largest valid one, its max-cluster sibling too: the sibling
	// has fewer routers and usually dominates, so skipping it would let
	// inherited small-cluster points squat on the front unchallenged.
	visitMesh := func(k axisKey) {
		if k.fabric == chip.Mesh {
			if cl, ok := g.clusterFor(k.cores, k.fabric); ok {
				if !g.legal(k) {
					k.cluster = cl
				} else if k.cluster != cl {
					sib := k
					sib.cluster = cl
					visit(sib)
				}
			}
		}
		visit(k)
	}
	stepInts(g.cores, base.cores, step, func(v int) {
		k := base
		k.cores = v
		visitMesh(k)
	})
	stepInts(g.l2kb, base.l2kb, step, func(v int) {
		k := base
		k.l2kb = v
		visitMesh(k)
	})
	if step != 1 {
		return
	}
	g.siblings(base, visitMesh)
}

// siblings yields the fabric-adjacent and (on mesh) cluster-adjacent
// variants of a design point — the candidates most likely to dominate
// it outright, since they share its cores and L2 and differ only in
// interconnect cost.
func (g *adaptiveGenerator) siblings(base axisKey, visit func(axisKey)) {
	for fi, f := range g.fabrics {
		if f != base.fabric {
			continue
		}
		for _, fj := range []int{fi - 1, fi + 1} {
			if fj < 0 || fj >= len(g.fabrics) {
				continue
			}
			k := base
			k.fabric = g.fabrics[fj]
			if cl, ok := g.clusterFor(k.cores, k.fabric); ok {
				if k.fabric != chip.Mesh {
					k.cluster = 1
				} else if !g.legal(k) {
					k.cluster = cl
				}
				visit(k)
			}
		}
		break
	}
	if base.fabric == chip.Mesh {
		stepInts(g.clusters, base.cluster, 1, func(v int) {
			k := base
			k.cluster = v
			visit(k)
		})
	}
}

// challengers yields the candidates most likely to dominate a front
// member in a cost-monotone model: its cores-one-down and L2-one-down
// neighbors (same performance once the workload saturates, strictly
// less power and area) and its fabric/cluster siblings. The audit
// phase proposes exactly these, and the final front withholds any
// member whose challengers were never all evaluated.
func (g *adaptiveGenerator) challengers(c *Candidate, visit func(axisKey)) {
	base := axisKey{c.Cores, c.L2PerCoreKB, c.Fabric, c.ClusterSize}
	withSibling := func(k axisKey) {
		visit(k)
		if k.fabric == chip.Mesh {
			if cl, ok := g.clusterFor(k.cores, k.fabric); ok && cl != k.cluster {
				k.cluster = cl
				visit(k)
			}
		}
	}
	stepInts(g.cores, base.cores, 1, func(v int) {
		if v >= base.cores {
			return
		}
		k := base
		k.cores = v
		if k.fabric == chip.Mesh && !g.legal(k) {
			if cl, ok := g.clusterFor(v, k.fabric); ok {
				k.cluster = cl
			}
		}
		withSibling(k)
	})
	stepInts(g.l2kb, base.l2kb, 1, func(v int) {
		if v >= base.l2kb {
			return
		}
		k := base
		k.l2kb = v
		withSibling(k)
	})
	g.siblings(base, withSibling)
}

// verified reports whether every legal challenger of the candidate has
// been proposed (and therefore evaluated): nothing the heuristic ranks
// likely to dominate it is still unknown.
func (g *adaptiveGenerator) verified(c *Candidate) bool {
	ok := true
	g.challengers(c, func(k axisKey) {
		if g.legal(k) && !g.visited[k] {
			ok = false
		}
	})
	return ok
}

// conclude prunes unverified members from the shared front. It runs
// once, when the generator ends the search (budget exhausted, stall,
// or space exhausted): the reported archive then contains only members
// that survived evaluation of all their likely dominators, which is
// what lets a 10%-budget search report a subset of the true front
// instead of a superset polluted with unchallenged points.
func (g *adaptiveGenerator) conclude() {
	if g.concluded {
		return
	}
	g.concluded = true
	g.front.Filter(g.verified)
}

// descend proposes the index-decreasing cores and L2 neighbors of an
// infeasible point (constraint-boundary search): if the point blew the
// area or TDP budget, the nearest feasible designs lie one step down
// the monotone axes. Probes that land infeasible again queue their own
// descent, so the walk reaches the boundary in a few generations.
func (g *adaptiveGenerator) descend(k axisKey, batch *[]Candidate) {
	stepInts(g.cores, k.cores, 1, func(v int) {
		if v >= k.cores {
			return
		}
		n := k
		n.cores = v
		if n.fabric == chip.Mesh && !g.legal(n) {
			if cl, ok := g.clusterFor(v, n.fabric); ok {
				n.cluster = cl
			}
		}
		g.take(n, batch)
	})
	stepInts(g.l2kb, k.l2kb, 1, func(v int) {
		if v >= k.l2kb {
			return
		}
		n := k
		n.l2kb = v
		g.take(n, batch)
	})
}

func (g *adaptiveGenerator) Propose() []Candidate {
	if g.proposed >= g.budget {
		g.conclude()
		return nil
	}
	if !g.seeded {
		g.seeded = true
		g.lastVersion = g.front.Version()
		return g.seedBatch()
	}

	// A generation that neither changed the front nor had unvisited
	// front neighbors to try was pure blind sampling; several in a row
	// mean the search has converged and the leftover budget is better
	// returned than burned.
	if g.front.Version() == g.lastVersion && !g.prevFrontier {
		g.stalled++
	} else {
		g.stalled = 0
	}
	g.lastVersion = g.front.Version()
	if g.stalled >= stallLimit {
		g.conclude()
		return nil
	}

	genCap := g.budget / 6
	if genCap < 8 {
		genCap = 8
	}
	if remaining := g.budget - g.proposed; genCap > remaining {
		genCap = remaining
	}

	// The last sixth of the budget is an audit sweep: only immediate
	// (step-1) neighbors of front members are proposed, so the closing
	// generations are spent challenging the members the search will
	// report instead of opening new territory a spent budget could
	// never refine. A member whose every immediate neighbor has been
	// evaluated and lost is locally verified.
	auditing := g.proposed >= g.budget-g.budget/6

	// Boundary search first: descend from recent infeasible points
	// toward the constraint boundary. Descent is capped at half the
	// generation (the remainder stays queued) so a burst of infeasible
	// probes can never starve front exploitation.
	var batch []Candidate
	descentCap := genCap / 2
	for !auditing && len(g.pendInf) > 0 && len(batch) < descentCap {
		k := g.pendInf[0]
		g.pendInf = g.pendInf[1:]
		g.descend(k, &batch)
	}

	// Exploit: unvisited mutations of the front, nearest steps first so
	// local refinement wins when the cap bites, then doubling jumps so a
	// wide axis is still crossed in a few generations. Members are
	// visited from both ends of the axis-ordered archive inward: the
	// extremes are where the single-objective optima live, so their
	// neighborhoods must not starve when the generation cap bites.
	members := g.front.Members()
	order := make([]int, 0, len(members))
	for lo, hi := 0, len(members)-1; lo <= hi; lo, hi = lo+1, hi-1 {
		order = append(order, lo)
		if hi != lo {
			order = append(order, hi)
		}
	}
	take := func(k axisKey) {
		if len(batch) < genCap {
			g.take(k, &batch)
		}
	}
	if auditing {
		for _, i := range order {
			if len(batch) >= genCap {
				break
			}
			g.challengers(&members[i], take)
		}
	} else {
		maxLen := len(g.cores)
		if len(g.l2kb) > maxLen {
			maxLen = len(g.l2kb)
		}
		for step := 1; step < maxLen && len(batch) < genCap; step *= 2 {
			for _, i := range order {
				if len(batch) >= genCap {
					break
				}
				g.neighbors(&members[i], step, take)
			}
		}
	}
	g.prevFrontier = len(batch) > 0

	// Explore: a small random share each generation; the whole
	// generation once the front's neighborhood is exhausted.
	explore := genCap / 6
	if explore < 1 {
		explore = 1
	}
	if auditing {
		explore = 0
	} else if !g.prevFrontier {
		explore = genCap
	}
	for i := 0; i < explore && len(batch) < genCap; i++ {
		k, ok := g.randomKey()
		if !ok {
			break
		}
		g.take(k, &batch)
	}

	if len(batch) == 0 {
		g.conclude() // reachable space exhausted
		return nil
	}
	return batch
}

// Observe queues the generation's infeasible evaluations for descent;
// feasible results need no bookkeeping here because the engine folds
// them into the shared front before the next Propose.
func (g *adaptiveGenerator) Observe(evaluated []Candidate) {
	for _, c := range evaluated {
		if c.Feasible {
			continue
		}
		k := axisKey{c.Cores, c.L2PerCoreKB, c.Fabric, c.ClusterSize}
		if g.descended[k] {
			continue
		}
		g.descended[k] = true
		g.pendInf = append(g.pendInf, k)
	}
}
