// Package dram models off-chip DRAM device power with the standard
// IDD-current methodology (the Micron power-calculator approach that
// DRAMPower formalizes): background power from the precharge/active
// standby currents, activate/precharge energy per row cycle, read/write
// burst energy, refresh, and I/O termination. The memory-controller model
// in package mc covers the on-die interface; this package covers the DIMM
// side, so a full platform power budget can be assembled around the chip.
//
// Currents are datasheet values at the rated voltage; power follows
//
//	P = VDD * ( IDD3N*actFrac + IDD2N*(1-actFrac) )            background
//	  + VDD * (IDD0 - IDD3N) * tRC * actRate                   act/pre
//	  + VDD * (IDD4R - IDD3N) * burstFracRd  (and IDD4W)       bursts
//	  + VDD * (IDD5 - IDD3N) * tRFC / tREFI                    refresh
//	  + per-bit termination on the DQ pins                     I/O
package dram

import (
	"fmt"
)

// DeviceSpec is a DRAM device datasheet extract. Currents in amperes,
// times in seconds, per device (one x8 chip unless stated otherwise).
type DeviceSpec struct {
	Name string
	VDD  float64 // supply (V)

	IDD0  float64 // one-bank activate-precharge current
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5  float64 // refresh burst

	TRC   float64 // row cycle time (s)
	TRFC  float64 // refresh cycle time (s)
	TREFI float64 // refresh interval (s)

	DataRate float64 // transfers/s per pin (e.g. 800e6 for DDR2-800)
	Width    int     // data pins per device (x4/x8/x16)

	// TermMWPerPin is the output-driver + ODT power per active DQ pin in
	// watts at full utilization.
	TermWPerPin float64
}

// DDR2_800 returns a representative 1Gb x8 DDR2-800 device.
func DDR2_800() DeviceSpec {
	return DeviceSpec{
		Name: "DDR2-800 1Gb x8", VDD: 1.8,
		IDD0: 0.090, IDD2N: 0.055, IDD3N: 0.060,
		IDD4R: 0.145, IDD4W: 0.155, IDD5: 0.180,
		TRC: 55e-9, TRFC: 127.5e-9, TREFI: 7.8e-6,
		DataRate: 800e6, Width: 8,
		TermWPerPin: 0.011,
	}
}

// DDR3_1333 returns a representative 2Gb x8 DDR3-1333 device.
func DDR3_1333() DeviceSpec {
	return DeviceSpec{
		Name: "DDR3-1333 2Gb x8", VDD: 1.5,
		IDD0: 0.075, IDD2N: 0.040, IDD3N: 0.045,
		IDD4R: 0.130, IDD4W: 0.135, IDD5: 0.160,
		TRC: 49e-9, TRFC: 160e-9, TREFI: 7.8e-6,
		DataRate: 1333e6, Width: 8,
		TermWPerPin: 0.009,
	}
}

// ChannelSpec describes one populated memory channel.
type ChannelSpec struct {
	Device         DeviceSpec
	DevicesPerRank int // 8 x8 devices for a 64-bit channel
	Ranks          int
}

// Traffic is the workload the channel serves.
type Traffic struct {
	ReadBytesPerSec  float64
	WriteBytesPerSec float64
	// RowHitRate is the fraction of accesses hitting an open row
	// (no activate needed). Typical: 0.3-0.8.
	RowHitRate float64
	// ActiveFraction is the fraction of time at least one bank is open
	// (drives IDD3N vs IDD2N standby). Zero derives it from utilization.
	ActiveFraction float64
}

// Result is the channel power breakdown in watts.
type Result struct {
	Background  float64
	ActPre      float64
	ReadBurst   float64
	WriteBurst  float64
	Refresh     float64
	Termination float64
	Total       float64

	Utilization float64 // fraction of peak channel bandwidth used
}

// ChannelPower evaluates the IDD model for one channel under the given
// traffic.
func ChannelPower(ch ChannelSpec, tr Traffic) (*Result, error) {
	d := ch.Device
	if d.VDD <= 0 || d.DataRate <= 0 || d.Width <= 0 {
		return nil, fmt.Errorf("dram: incomplete device spec %q", d.Name)
	}
	if ch.DevicesPerRank <= 0 {
		ch.DevicesPerRank = 8
	}
	if ch.Ranks <= 0 {
		ch.Ranks = 1
	}
	if tr.RowHitRate < 0 || tr.RowHitRate > 1 {
		return nil, fmt.Errorf("dram: row hit rate %v out of range", tr.RowHitRate)
	}

	devices := float64(ch.DevicesPerRank * ch.Ranks)
	busBytesPerSec := d.DataRate * float64(ch.DevicesPerRank*d.Width) / 8
	demand := tr.ReadBytesPerSec + tr.WriteBytesPerSec
	util := 0.0
	if busBytesPerSec > 0 {
		util = demand / busBytesPerSec
	}
	if util > 1 {
		return nil, fmt.Errorf("dram: traffic %.1f GB/s exceeds channel peak %.1f GB/s",
			demand/1e9, busBytesPerSec/1e9)
	}

	active := tr.ActiveFraction
	if active == 0 {
		// Banks stay open roughly in proportion to utilization, with a
		// floor from page-open policy.
		active = 0.15 + 0.85*util
	}

	res := &Result{Utilization: util}

	// Background: blend of active and precharge standby across devices.
	res.Background = d.VDD * (d.IDD3N*active + d.IDD2N*(1-active)) * devices

	// Activates: each row miss costs one ACT+PRE across the rank. A
	// 64-byte access moves 64 bytes over the whole rank.
	accessesPerSec := demand / 64
	actRate := accessesPerSec * (1 - tr.RowHitRate)
	eActPre := d.VDD * (d.IDD0 - d.IDD3N) * d.TRC * float64(ch.DevicesPerRank)
	res.ActPre = eActPre * actRate

	// Burst power scales with the fraction of time each direction is
	// bursting.
	rdFrac, wrFrac := 0.0, 0.0
	if busBytesPerSec > 0 {
		rdFrac = tr.ReadBytesPerSec / busBytesPerSec
		wrFrac = tr.WriteBytesPerSec / busBytesPerSec
	}
	res.ReadBurst = d.VDD * (d.IDD4R - d.IDD3N) * rdFrac * devices
	res.WriteBurst = d.VDD * (d.IDD4W - d.IDD3N) * wrFrac * devices

	// Refresh: duty-cycled IDD5 across all devices.
	res.Refresh = d.VDD * (d.IDD5 - d.IDD3N) * (d.TRFC / d.TREFI) * devices

	// Termination on the active DQ pins.
	pins := float64(ch.DevicesPerRank * d.Width)
	res.Termination = d.TermWPerPin * pins * util

	res.Total = res.Background + res.ActPre + res.ReadBurst + res.WriteBurst +
		res.Refresh + res.Termination
	return res, nil
}
