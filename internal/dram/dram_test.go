package dram

import (
	"testing"
	"testing/quick"
)

func channel() ChannelSpec {
	return ChannelSpec{Device: DDR2_800(), DevicesPerRank: 8, Ranks: 2}
}

func TestIdleChannelPower(t *testing.T) {
	r, err := ChannelPower(channel(), Traffic{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("idle DDR2 channel: %.2f W (bg %.2f, refresh %.2f)", r.Total, r.Background, r.Refresh)
	// An idle 2-rank DDR2 channel burns 1.5-4 W in standby+refresh.
	if r.Total < 1 || r.Total > 5 {
		t.Errorf("idle power %.2f W implausible", r.Total)
	}
	if r.ActPre != 0 || r.ReadBurst != 0 || r.Termination != 0 {
		t.Error("idle channel must have no activity components")
	}
	if r.Refresh <= 0 {
		t.Error("refresh must always burn power")
	}
}

func TestLoadedChannelPower(t *testing.T) {
	r, err := ChannelPower(channel(), Traffic{
		ReadBytesPerSec:  4e9,
		WriteBytesPerSec: 2e9,
		RowHitRate:       0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("loaded (6 GB/s) channel: %.2f W  [bg %.2f act %.2f rd %.2f wr %.2f ref %.2f term %.2f]",
		r.Total, r.Background, r.ActPre, r.ReadBurst, r.WriteBurst, r.Refresh, r.Termination)
	idle, _ := ChannelPower(channel(), Traffic{})
	if r.Total <= idle.Total {
		t.Error("traffic must add power")
	}
	// A loaded DDR2 channel lands in the 3-8 W band.
	if r.Total < 2 || r.Total > 9 {
		t.Errorf("loaded power %.2f W implausible", r.Total)
	}
	if r.Utilization < 0.9 || r.Utilization > 1 {
		t.Errorf("6.0/6.4 GB/s should be ~94%% utilization, got %.2f", r.Utilization)
	}
}

func TestRowHitsSaveActivates(t *testing.T) {
	tr := Traffic{ReadBytesPerSec: 3e9, RowHitRate: 0.2}
	lo, _ := ChannelPower(channel(), tr)
	tr.RowHitRate = 0.9
	hi, _ := ChannelPower(channel(), tr)
	if hi.ActPre >= lo.ActPre {
		t.Errorf("higher row hit rate must cut ACT/PRE power: %.2f vs %.2f", hi.ActPre, lo.ActPre)
	}
	if hi.Total >= lo.Total {
		t.Error("the saving must appear in the total")
	}
}

func TestDDR3BeatsDDR2PerByte(t *testing.T) {
	tr := Traffic{ReadBytesPerSec: 4e9, RowHitRate: 0.6}
	d2, err := ChannelPower(channel(), tr)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := ChannelPower(ChannelSpec{Device: DDR3_1333(), DevicesPerRank: 8, Ranks: 2}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Total >= d2.Total {
		t.Errorf("DDR3 at 1.5V must beat DDR2 at 1.8V for the same traffic: %.2f vs %.2f W",
			d3.Total, d2.Total)
	}
}

func TestOversubscriptionRejected(t *testing.T) {
	if _, err := ChannelPower(channel(), Traffic{ReadBytesPerSec: 50e9}); err == nil {
		t.Error("traffic above channel peak must fail")
	}
	if _, err := ChannelPower(channel(), Traffic{RowHitRate: 1.5}); err == nil {
		t.Error("bad row hit rate must fail")
	}
	if _, err := ChannelPower(ChannelSpec{}, Traffic{}); err == nil {
		t.Error("empty device must fail")
	}
}

func TestQuickMonotoneInTraffic(t *testing.T) {
	f := func(gb uint8) bool {
		lo := Traffic{ReadBytesPerSec: float64(gb%5) * 1e9, RowHitRate: 0.5}
		hi := lo
		hi.ReadBytesPerSec += 1e9
		a, err1 := ChannelPower(channel(), lo)
		b, err2 := ChannelPower(channel(), hi)
		if err1 != nil || err2 != nil {
			return false
		}
		return b.Total > a.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
