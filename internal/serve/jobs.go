package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"mcpat/internal/explore"
)

// errQueueFull is returned by submit when the bounded job queue cannot
// take another sweep; the handler sheds the request with 429.
var errQueueFull = errors.New("job queue full")

// job is the server-side state of one DSE sweep. The mutex guards
// status; cancel is written once before the job becomes visible.
type job struct {
	mu     sync.Mutex
	status JobStatus

	// cancel aborts the sweep; set while queued (a no-op func) and
	// replaced with the real context cancel when the job starts.
	cancel context.CancelFunc
	// cancelRequested distinguishes a user DELETE (or server drain) from
	// other context errors.
	cancelRequested bool

	params explore.Params
	space  explore.Space
	cons   explore.Constraints
	obj    explore.Objective
	opts   explore.Options
}

// snapshot returns a copy of the job's wire status.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// jobStore owns the async DSE subsystem: a bounded queue feeding a
// fixed worker pool, the id-addressable job table, and terminal-job
// retention. All sweeps run under baseCtx, so canceling it (server
// drain) aborts every queued and running job.
type jobStore struct {
	baseCtx context.Context
	metrics *metrics

	// journal, when non-nil, makes accepted jobs durable across process
	// restarts (see journal.go). All appends go through it.
	journal *journal

	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for terminal-job eviction
	running  int
	retained int // max terminal jobs kept before eviction

	// runSweep performs the actual exploration; tests substitute a stub
	// to script job behavior (stalls, failures) without model work.
	runSweep func(ctx context.Context, j *job) (*explore.Result, error)
}

func newJobStore(baseCtx context.Context, workers, queueDepth, retention int, m *metrics, jl *journal) *jobStore {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	if retention < 1 {
		retention = 64
	}
	s := &jobStore{
		baseCtx:  baseCtx,
		metrics:  m,
		journal:  jl,
		queue:    make(chan *job, queueDepth),
		jobs:     make(map[string]*job),
		retained: retention,
		runSweep: runSweep,
	}
	m.queueDepth = func() int { return len(s.queue) }
	m.jobsRunning = func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.running
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// runSweep is the production sweep runner.
func runSweep(ctx context.Context, j *job) (*explore.Result, error) {
	return explore.SearchContext(ctx, j.params, j.space, j.cons, j.obj, &j.opts)
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable; ids must stay unique.
		panic(fmt.Sprintf("serve: job id entropy unavailable: %v", err))
	}
	return "job-" + hex.EncodeToString(b[:])
}

// submit registers a new sweep and enqueues it. It never blocks: a full
// queue returns errQueueFull so the handler can shed load.
func (s *jobStore) submit(req *DSERequest) (JobStatus, error) {
	p, space, cons, obj, opts, err := req.explore()
	if err != nil {
		return JobStatus{}, err
	}
	total, err := explore.PlannedEvaluations(space, opts)
	if err != nil {
		return JobStatus{}, err
	}
	j := &job{
		status: JobStatus{
			ID:              newJobID(),
			State:           JobQueued,
			CandidatesTotal: total,
			SubmittedAt:     time.Now(),
		},
		cancel: func() {},
		params: p, space: space, cons: cons, obj: obj, opts: *opts,
	}

	s.mu.Lock()
	s.jobs[j.status.ID] = j
	s.order = append(s.order, j.status.ID)
	s.evictLocked()
	s.mu.Unlock()

	select {
	case s.queue <- j:
	case <-s.baseCtx.Done():
		s.finish(j, nil, context.Canceled)
		return j.snapshot(), nil
	default:
		s.mu.Lock()
		delete(s.jobs, j.status.ID)
		s.mu.Unlock()
		s.metrics.jobsRejected.Add(1)
		return JobStatus{}, errQueueFull
	}
	// Journal before the caller can answer 202: once the client learns
	// the id, the job survives a restart.
	s.journal.submitted(j.status.ID, j.status.SubmittedAt, req)
	s.metrics.jobsSubmitted.Add(1)
	return j.snapshot(), nil
}

// resubmit restores one journaled job after a restart, preserving its
// original id and submission time. The enqueue blocks (workers are
// already draining the queue) so recovery never sheds jobs the journal
// promised to keep. A request that no longer validates — a journal from
// an older wire format, say — fails the job rather than dropping it.
func (s *jobStore) resubmit(rj recoveredJob) {
	p, space, cons, obj, opts, err := rj.Req.explore()
	var total int
	if err == nil {
		total, err = explore.PlannedEvaluations(space, opts)
	}
	j := &job{
		status: JobStatus{
			ID:          rj.ID,
			State:       JobQueued,
			SubmittedAt: rj.SubmittedAt,
		},
		cancel: func() {},
	}
	if err == nil {
		j.status.CandidatesTotal = total
		j.params, j.space, j.cons, j.obj, j.opts = p, space, cons, obj, *opts
	}

	s.mu.Lock()
	if _, exists := s.jobs[rj.ID]; exists {
		// A duplicate submit in a damaged journal; first wins.
		s.mu.Unlock()
		return
	}
	s.jobs[rj.ID] = j
	s.order = append(s.order, rj.ID)
	s.mu.Unlock()

	if err != nil {
		s.finish(j, nil, err)
		s.metrics.jobsRecovered.Add(1)
		return
	}
	select {
	case s.queue <- j:
	case <-s.baseCtx.Done():
		s.finish(j, nil, context.Canceled)
	}
	s.metrics.jobsRecovered.Add(1)
}

// evictLocked drops the oldest terminal jobs beyond the retention cap,
// keeping the table bounded on long-running servers. Live jobs are
// never evicted.
func (s *jobStore) evictLocked() {
	excess := len(s.jobs) - s.retained
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		if excess > 0 && j.snapshot().State.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// get returns the job's current status.
func (s *jobStore) get(id string) (JobStatus, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobStatus{}, false
	}
	return j.snapshot(), true
}

// list returns every retained job's status (results stripped), newest
// first.
func (s *jobStore) list() []JobStatus {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for i := len(jobs) - 1; i >= 0; i-- {
		st := jobs[i].snapshot()
		st.Result = nil // summaries only; fetch the job for the full report
		out = append(out, st)
	}
	return out
}

// requestCancel cancels a queued or running job. It reports whether the
// job exists; canceling a terminal job is a no-op.
func (s *jobStore) requestCancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobStatus{}, false
	}
	j.mu.Lock()
	j.cancelRequested = true
	cancel := j.cancel
	queued := j.status.State == JobQueued
	if queued {
		// The worker that eventually dequeues it will see the flag and
		// finish it as canceled without running the sweep.
		now := time.Now()
		j.status.State = JobCanceled
		j.status.FinishedAt = &now
		j.status.Error = &APIError{Kind: kindCanceled, Message: "canceled before start"}
	}
	j.mu.Unlock()
	if queued {
		s.metrics.jobsCanceled.Add(1)
		// User cancellation is terminal for good: journal it so the job
		// does not resurrect on restart.
		s.journal.ended(id, JobCanceled)
	}
	cancel()
	return j.snapshot(), true
}

// worker runs sweeps from the queue until the base context is canceled
// and the queue has been drained by closeAndDrain.
func (s *jobStore) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.run(j)
		case <-s.baseCtx.Done():
			// Drain whatever is still queued so every job reaches a
			// terminal state before shutdown completes.
			for {
				select {
				case j := <-s.queue:
					s.finish(j, nil, context.Canceled)
				default:
					return
				}
			}
		}
	}
}

// run executes one dequeued job.
func (s *jobStore) run(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.status.State != JobQueued || j.cancelRequested {
		// Canceled while waiting in the queue.
		alreadyTerminal := j.status.State.Terminal()
		j.mu.Unlock()
		if !alreadyTerminal {
			s.finish(j, nil, context.Canceled)
		}
		return
	}
	now := time.Now()
	j.status.State = JobRunning
	j.status.StartedAt = &now
	j.cancel = cancel
	j.opts.OnProgress = func(done, total int) {
		j.mu.Lock()
		j.status.CandidatesDone = done
		j.status.CandidatesTotal = total
		j.mu.Unlock()
	}
	// Stream front improvements into the job status so GET /v1/jobs/{id}
	// shows the current Pareto front while a pareto search is running
	// (and the partial front after a cancel).
	j.opts.OnFrontUpdate = func(front []explore.Candidate, evaluated int) {
		wire := make([]DSECandidate, len(front))
		for i, c := range front {
			wire[i] = newDSECandidate(c)
		}
		j.mu.Lock()
		j.status.Front = wire
		j.mu.Unlock()
	}
	j.mu.Unlock()

	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	res, err := s.runSweep(ctx, j)
	s.mu.Lock()
	s.running--
	s.mu.Unlock()

	s.finish(j, res, err)
}

// finish moves a job to its terminal state and records metrics. Every
// terminal transition is journaled except a shutdown cancel: drain is
// not completion, so the job stays live in the journal and re-runs on
// the next start.
func (s *jobStore) finish(j *job, res *explore.Result, err error) {
	now := time.Now()
	j.mu.Lock()
	if j.status.State.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status.FinishedAt = &now
	if res != nil {
		j.status.Result = NewDSEReport(res, j.obj)
	}
	journalEnd := true
	switch {
	case err == nil:
		j.status.State = JobDone
		s.metrics.jobsDone.Add(1)
	case errors.Is(err, context.Canceled):
		j.status.State = JobCanceled
		msg := "canceled"
		if !j.cancelRequested {
			msg = "canceled by server shutdown"
			journalEnd = false
		}
		j.status.Error = &APIError{Kind: kindCanceled, Message: msg}
		s.metrics.jobsCanceled.Add(1)
	default:
		j.status.State = JobFailed
		j.status.Error = apiError(err)
		s.metrics.jobsFailed.Add(1)
	}
	id, state := j.status.ID, j.status.State
	j.mu.Unlock()
	if journalEnd {
		s.journal.ended(id, state)
	}
}

// wait blocks until every worker has exited (the base context must
// already be canceled).
func (s *jobStore) wait() { s.wg.Wait() }
