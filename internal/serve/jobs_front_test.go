package serve

import (
	"context"
	"net/http"
	"testing"
	"time"

	"mcpat/internal/explore"
)

// TestJobFrontObservableWhileRunning pins the front-streaming contract:
// a running pareto job exposes its current Pareto front through
// GET /v1/jobs/{id}, and a cancel keeps the partial front in the
// terminal status. The sweep is stubbed so the test scripts exactly one
// front update and then blocks mid-search.
func TestJobFrontObservableWhileRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{JobWorkers: 1})
	started := make(chan string, 1)
	partial := []explore.Candidate{
		{Cores: 4, L2PerCoreKB: 64, ClusterSize: 1, RunW: 9, AreaMM2: 7, Perf: 1e10, Feasible: true, Score: 1e10},
		{Cores: 16, L2PerCoreKB: 64, ClusterSize: 1, RunW: 40, AreaMM2: 30, Perf: 4e10, Feasible: true, Score: 4e10},
	}
	s.jobs.runSweep = func(ctx context.Context, j *job) (*explore.Result, error) {
		// The engine streams front improvements between generations; the
		// stub plays one update, then stalls like a long mid-search batch.
		j.opts.OnFrontUpdate(partial, 8)
		started <- j.status.ID
		<-ctx.Done()
		return &explore.Result{
			Evaluated: 8, Feasible: 2,
			Front:  partial,
			Search: explore.SearchPareto,
		}, ctx.Err()
	}

	resp, body := doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{
		Cores: []int{4, 16}, Search: "pareto", Budget: 24, Seed: 1,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	id := decode[JobStatus](t, body).ID
	<-started

	resp, body = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d %s", resp.StatusCode, body)
	}
	st := decode[JobStatus](t, body)
	if st.State != JobRunning {
		t.Fatalf("job should be mid-sweep, got %v", st.State)
	}
	if len(st.Front) != len(partial) {
		t.Fatalf("running job must expose the streamed front, got %+v", st.Front)
	}
	if st.Front[0].Cores != 4 || st.Front[1].Cores != 16 {
		t.Errorf("front members wrong: %+v", st.Front)
	}
	if !st.Front[0].Feasible || st.Front[0].GIPS != 10 {
		t.Errorf("front member wire fields wrong: %+v", st.Front[0])
	}

	resp, body = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}
	final := pollJob(t, ts.URL, id, 10*time.Second)
	if final.State != JobCanceled {
		t.Fatalf("want canceled, got %+v", final.State)
	}
	if len(final.Front) != len(partial) {
		t.Errorf("cancel must keep the partial front in the status, got %+v", final.Front)
	}
	if final.Result == nil || len(final.Result.Front) != len(partial) {
		t.Errorf("partial result must carry the front, got %+v", final.Result)
	}
	if final.Result != nil && final.Result.Search != "pareto" {
		t.Errorf("result must name the pareto strategy, got %q", final.Result.Search)
	}
}

// TestJobParetoEndToEnd runs a real (small) pareto sweep through the
// service and checks the terminal report: strategy, space accounting,
// and a non-empty front of feasible members.
func TestJobParetoEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1})
	resp, body := doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{
		Cores:       []int{2, 4, 8, 16, 32},
		L2PerCoreKB: []int{64, 256, 1024},
		Fabrics:     []string{"ring"},
		Search:      "pareto",
		Budget:      10,
		Seed:        3,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	id := decode[JobStatus](t, body).ID
	final := pollJob(t, ts.URL, id, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("want done, got %+v", final)
	}
	rep := final.Result
	if rep == nil {
		t.Fatal("done job must carry a report")
	}
	if rep.Search != "pareto" || rep.SpaceSize != 15 {
		t.Fatalf("report accounting wrong: search=%q space=%d", rep.Search, rep.SpaceSize)
	}
	if rep.Evaluated > 10 {
		t.Errorf("budget 10 exceeded: %d evaluations", rep.Evaluated)
	}
	if len(rep.Front) == 0 {
		t.Fatal("pareto report must include the front")
	}
	for _, c := range rep.Front {
		if !c.Feasible {
			t.Errorf("front member must be feasible: %+v", c)
		}
	}
	// The terminal status mirrors the final streamed front.
	if len(final.Front) != len(rep.Front) {
		t.Errorf("status front (%d) and report front (%d) disagree", len(final.Front), len(rep.Front))
	}
}

// TestDSERequestRejectsUnknownSearch pins request validation for the
// new field.
func TestDSERequestRejectsUnknownSearch(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1})
	resp, body := doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{
		Cores: []int{2}, Search: "annealing",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown search must 400, got %d %s", resp.StatusCode, body)
	}
}
