package serve

// Job durability. mcpatd journals every accepted DSE job to an
// append-only JSONL file and marks it terminal when it completes, so a
// crashed or killed server recovers its queued and running sweeps on
// restart instead of silently dropping work the client was told was
// accepted (202 + job id).
//
// The format is one JSON record per line:
//
//	{"op":"submit","id":"job-…","time":…,"req":{…}}
//	{"op":"end","id":"job-…","time":…,"state":"done"}
//
// Semantics, chosen so recovery is exact:
//
//   - A job is journaled "submit" before its 202 response is written:
//     once a client knows the id, the job survives a crash.
//   - "end" is journaled for done, failed, and user-canceled jobs. A
//     job canceled by server drain is deliberately NOT journaled
//     terminal — shutdown is not completion, and the job re-runs on
//     the next start.
//   - Every append is fsynced, so at most the final line can be torn
//     by a crash. Replay tolerates torn and corrupt lines by skipping
//     them (a torn "submit" loses that one not-yet-acknowledged job; a
//     torn "end" re-runs one idempotent sweep — both safe).
//   - Open replays the log, then compacts it to just the live submit
//     records via write-temp-then-rename, so the file stays bounded by
//     the number of in-flight jobs, not server lifetime.
//
// Journal write failures after open (disk full, pulled volume) degrade:
// the failure is logged once and the server keeps running without
// durability, matching the persist tier's never-fatal contract.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// journalRecord is one line of the job journal.
type journalRecord struct {
	Op    string      `json:"op"` // "submit" or "end"
	ID    string      `json:"id"`
	Time  time.Time   `json:"time"`
	Req   *DSERequest `json:"req,omitempty"`   // submit only
	State JobState    `json:"state,omitempty"` // end only
}

// recoveredJob is one live job found during journal replay.
type recoveredJob struct {
	ID          string
	Req         *DSERequest
	SubmittedAt time.Time
}

// journal is the append side of the job log. Safe for concurrent use.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	logf   func(string, ...any)
	broken bool // a write failed; durability disabled, logged once
}

// openJournal replays the journal at path (creating it if absent),
// compacts it to the surviving live jobs, and returns the append handle
// plus those jobs in original submission order.
func openJournal(path string, logf func(string, ...any)) (*journal, []recoveredJob, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal dir: %w", err)
	}
	live, err := replayJournal(path, logf)
	if err != nil {
		return nil, nil, err
	}
	// Compact: rewrite only the live submits, atomically.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal compact: %w", err)
	}
	enc := json.NewEncoder(f)
	for _, rj := range live {
		rec := journalRecord{Op: "submit", ID: rj.ID, Time: rj.SubmittedAt, Req: rj.Req}
		if err := enc.Encode(&rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, nil, fmt.Errorf("journal compact: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, nil, fmt.Errorf("journal compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, nil, fmt.Errorf("journal compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, nil, fmt.Errorf("journal compact: %w", err)
	}
	h, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal open: %w", err)
	}
	return &journal{f: h, path: path, logf: logf}, live, nil
}

// replayJournal reads every parseable record and returns the jobs that
// were submitted but never ended, in submission order.
func replayJournal(path string, logf func(string, ...any)) ([]recoveredJob, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal replay: %w", err)
	}
	defer f.Close()

	liveByID := make(map[string]int) // id -> index in order, -1 = ended
	var order []recoveredJob
	skipped := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxBodyBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail from a crash mid-append, or external damage.
			// Either way the record is unusable; skip it.
			skipped++
			continue
		}
		switch rec.Op {
		case "submit":
			if rec.ID == "" || rec.Req == nil {
				skipped++
				continue
			}
			if _, dup := liveByID[rec.ID]; dup {
				continue // duplicate submit; first wins
			}
			liveByID[rec.ID] = len(order)
			order = append(order, recoveredJob{ID: rec.ID, Req: rec.Req, SubmittedAt: rec.Time})
		case "end":
			liveByID[rec.ID] = -1
		default:
			skipped++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal replay: %w", err)
	}
	if skipped > 0 {
		logf("mcpatd: journal %s: skipped %d unparseable record(s)", path, skipped)
	}
	var live []recoveredJob
	for _, rj := range order {
		if liveByID[rj.ID] != -1 {
			live = append(live, rj)
		}
	}
	return live, nil
}

// append writes one record durably. Failures disable the journal with a
// single log line; they never fail the caller.
func (jl *journal) append(rec journalRecord) {
	if jl == nil {
		return
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		return // wire types always marshal; defensive only
	}
	data = append(data, '\n')
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.broken {
		return
	}
	if _, err := jl.f.Write(data); err != nil {
		jl.disableLocked(err)
		return
	}
	if err := jl.f.Sync(); err != nil {
		jl.disableLocked(err)
	}
}

func (jl *journal) disableLocked(err error) {
	jl.broken = true
	jl.logf("mcpatd: journal %s write failed, durability disabled: %v", jl.path, err)
}

// submitted records an accepted job.
func (jl *journal) submitted(id string, at time.Time, req *DSERequest) {
	if jl == nil {
		return
	}
	jl.append(journalRecord{Op: "submit", ID: id, Time: at, Req: req})
}

// ended records a terminal job. Shutdown-canceled jobs must not be
// passed here — they stay live in the journal so the next start
// re-runs them.
func (jl *journal) ended(id string, state JobState) {
	if jl == nil {
		return
	}
	jl.append(journalRecord{Op: "end", ID: id, Time: time.Now(), State: state})
}

// close releases the file handle. Pending appends complete first.
func (jl *journal) close() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.f.Close()
}
