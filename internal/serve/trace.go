package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"mcpat/internal/chip"
	"mcpat/internal/guard"
	"mcpat/internal/m5compat"
	"mcpat/internal/presets"
	"mcpat/internal/thermal"
	"mcpat/internal/trace"
)

// maxTraceBodyBytes bounds POST /v1/trace bodies: unlike chip
// descriptions, a stats.txt with thousands of interval dumps is
// legitimately large.
const maxTraceBodyBytes = 64 << 20

// TraceRequest is the JSON body of POST /v1/trace. The chip comes from
// exactly one of Gem5Config (a raw gem5 config.json document, mapped
// template-free), Preset, or Config; StatsTxt is the gem5 statistics
// stream whose dumps become the trace intervals.
type TraceRequest struct {
	// Gem5Config is an embedded gem5 config.json document.
	Gem5Config json.RawMessage `json:"gem5_config,omitempty"`
	// Preset names a bundled chip template; ignored when Gem5Config is
	// set.
	Preset string `json:"preset,omitempty"`
	// Config is the native chip description; ignored when Gem5Config or
	// Preset is set.
	Config *chip.Config `json:"config,omitempty"`
	// StatsTxt is the raw stats.txt content (multi-dump).
	StatsTxt string `json:"stats_txt"`
	// Thermal, when present, closes the power/thermal/DVFS loop around
	// the trace: samples gain temperature_k/freq_hz/throttled fields and
	// the summary gains max/final temperature and throttle counts.
	Thermal *TraceThermalOptions `json:"thermal,omitempty"`
}

// TraceThermalOptions selects the closed-loop thermal/DVFS behavior of a
// trace request.
type TraceThermalOptions struct {
	// RthetaJA is the junction-to-ambient thermal resistance (K/W);
	// required.
	RthetaJA float64 `json:"rtheta_ja"`
	// AmbientK is the ambient temperature (0 = the thermal package
	// default, 318 K).
	AmbientK float64 `json:"ambient_k,omitempty"`
	// MaxTjK is the junction limit; it also sets the default setpoint of
	// the headroom governor.
	MaxTjK float64 `json:"max_tj_k,omitempty"`
	// TimeConstS is the thermal time constant for transient stepping
	// (0 = quasi-static).
	TimeConstS float64 `json:"time_const_s,omitempty"`
	// UseFloorplan enables per-subsystem thermal blocks with
	// floorplan-derived spreading resistances (default: whole-die lump).
	UseFloorplan bool `json:"use_floorplan,omitempty"`
	// InitialTempK seeds the die temperature (0 = ambient).
	InitialTempK float64 `json:"initial_temp_k,omitempty"`
	// Governor is the DVFS policy: "none" (default), "headroom", or
	// "schedule".
	Governor string `json:"governor,omitempty"`
	// TargetK overrides the headroom governor's throttle setpoint.
	TargetK float64 `json:"target_k,omitempty"`
	// FreqSchedule is the per-interval frequency fractions for the
	// "schedule" governor.
	FreqSchedule []float64 `json:"freq_schedule,omitempty"`
}

// loopOptions translates the request options into trace.LoopOptions.
func (o *TraceThermalOptions) loopOptions() (trace.LoopOptions, error) {
	if o.RthetaJA <= 0 {
		return trace.LoopOptions{}, guard.Configf("trace.thermal", "rtheta_ja must be positive")
	}
	gov, err := trace.NewGovernor(o.Governor, o.TargetK, o.FreqSchedule)
	if err != nil {
		return trace.LoopOptions{}, guard.Configf("trace.thermal", "%v", err)
	}
	return trace.LoopOptions{
		Package: thermal.PackageSpec{
			RthetaJA:   o.RthetaJA,
			AmbientK:   o.AmbientK,
			MaxTjK:     o.MaxTjK,
			TimeConstS: o.TimeConstS,
		},
		UseFloorplan: o.UseFloorplan,
		Governor:     gov,
		InitialTempK: o.InitialTempK,
	}, nil
}

// handleTrace serves POST /v1/trace: map + synthesize the chip once,
// then stream one NDJSON record per statistics interval — a "chip"
// header, one "sample" per dump, and a closing "summary" (the same
// framing trace.Trace.WriteNDJSON emits). Setup errors arrive as a
// plain JSON error body with the guard classification; errors after
// streaming has begun arrive as a final {"type":"error"} record.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	// Trace setup runs a full chip synthesis, so it competes with
	// /v1/evaluate for the same admission slots.
	select {
	case s.evalSem <- struct{}{}:
		defer func() { <-s.evalSem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			&APIError{Kind: kindOverloaded, Message: "evaluation capacity saturated; retry"})
		return
	}

	var req TraceRequest
	body := http.MaxBytesReader(nil, r.Body, maxTraceBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest,
			&APIError{Kind: kindBadRequest, Message: fmt.Sprintf("parse JSON: %v", err)})
		return
	}

	// Setup (mapping + the one synthesis) honors the request deadline
	// with the same goroutine containment as /v1/evaluate; the streaming
	// phase afterwards is bounded by the client connection instead.
	setupCtx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		setupCtx, cancel = context.WithTimeout(setupCtx, s.cfg.RequestTimeout)
		defer cancel()
	}
	type out struct {
		eng *trace.Engine
		ivs []trace.Interval
		err error
	}
	ch := make(chan out, 1)
	go func() {
		eng, ivs, err := traceSetup(&req)
		ch <- out{eng, ivs, err}
	}()
	var o out
	select {
	case o = <-ch:
	case <-setupCtx.Done():
		writeModelError(w, setupCtx.Err())
		return
	}
	if o.err != nil {
		writeModelError(w, o.err)
		return
	}

	s.metrics.traceStreams.Add(1)
	if req.Thermal != nil {
		s.metrics.traceThermalStreams.Add(1)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	h := o.eng.Header(len(o.ivs))
	if err := trace.WriteRecord(w, trace.Record{Type: "chip", Chip: &h}); err != nil {
		return // client went away before the header flushed
	}
	flush()

	tr, err := o.eng.Run(r.Context(), o.ivs, func(smp trace.Sample) error {
		if err := trace.WriteRecord(w, trace.Record{Type: "sample", Sample: &smp}); err != nil {
			return err
		}
		flush()
		s.metrics.traceSamples.Add(1)
		if smp.Throttled {
			s.metrics.traceThrottled.Add(1)
		}
		return nil
	})
	if err != nil {
		// The status line is gone; the error travels in-band as a final
		// record (write errors mean the client is gone — nothing to do).
		if b, merr := json.Marshal(struct {
			Type  string   `json:"type"`
			Error APIError `json:"error"`
		}{Type: "error", Error: *apiError(err)}); merr == nil {
			_, _ = w.Write(append(b, '\n'))
		}
		flush()
		return
	}
	sum := tr.Summary
	_ = trace.WriteRecord(w, trace.Record{Type: "summary", Summary: &sum})
	flush()
}

// traceSetup resolves the chip source, synthesizes the engine, and
// parses the interval stream. Every error carries a guard kind.
func traceSetup(req *TraceRequest) (*trace.Engine, []trace.Interval, error) {
	if strings.TrimSpace(req.StatsTxt) == "" {
		return nil, nil, guard.Configf("trace.stats", "stats_txt is required")
	}
	// armLoop closes the thermal/DVFS loop over the built engine when the
	// request asks for it (validated up front so option errors surface as
	// config errors before any synthesis output streams).
	armLoop := func(eng *trace.Engine) error {
		if req.Thermal == nil {
			return nil
		}
		opts, err := req.Thermal.loopOptions()
		if err != nil {
			return err
		}
		return eng.EnableLoop(opts)
	}
	if len(req.Gem5Config) > 0 {
		eng, ivs, _, err := trace.FromGem5(bytes.NewReader(req.Gem5Config), strings.NewReader(req.StatsTxt))
		if err != nil {
			return nil, nil, err
		}
		return eng, ivs, armLoop(eng)
	}
	cfg := req.Config
	if req.Preset != "" {
		p, err := presets.ByName(req.Preset)
		if err != nil {
			return nil, nil, guard.Configf("trace", "unknown preset %q", req.Preset)
		}
		cfg = &p.Config
	}
	if cfg == nil {
		return nil, nil, guard.Configf("trace", "one of gem5_config, preset, or config is required")
	}
	eng, err := trace.NewEngine(*cfg)
	if err != nil {
		return nil, nil, err
	}
	dumps, err := m5compat.Parse(strings.NewReader(req.StatsTxt))
	if err != nil {
		return nil, nil, guard.Wrap(guard.ErrConfig, "trace.stats", err)
	}
	ivs, err := trace.IntervalsFromDumps(dumps, cfg.ClockHz, cfg.NumCores)
	if err != nil {
		return nil, nil, err
	}
	return eng, ivs, armLoop(eng)
}
