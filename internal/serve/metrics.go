package serve

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mcpat/internal/array"
	"mcpat/internal/chip"
	"mcpat/internal/component"
	"mcpat/internal/distrib"
	"mcpat/internal/persist"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the request
// latency histogram; the implicit last bucket is +Inf.
var latencyBucketsMS = []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts [13]uint64 // len(latencyBucketsMS) + 1 for +Inf
	sumMS  float64
	count  uint64
}

func (h *histogram) observe(ms float64) {
	i := sort.SearchFloat64s(latencyBucketsMS, ms)
	h.counts[i]++
	h.sumMS += ms
	h.count++
}

// metrics is the expvar-style instrumentation of the server: counters
// keyed by route and status, an in-flight gauge, per-route latency
// histograms, job lifecycle counters, and the synthesis-cache deltas
// since the server started. Everything is monotonic except the gauges.
type metrics struct {
	start      time.Time
	cacheBase  array.CacheStats
	subsysBase component.CacheStats
	optBase    array.OptimizerStats
	diskBase   persist.Stats

	inFlight atomic.Int64

	// traceStreams counts /v1/trace streams that reached the streaming
	// phase (setup succeeded); traceSamples counts interval records
	// written across all of them. traceThermalStreams counts the subset
	// of streams running the closed thermal/DVFS loop, and
	// traceThrottled the samples the governor derated below nominal
	// frequency.
	traceStreams        atomic.Uint64
	traceSamples        atomic.Uint64
	traceThermalStreams atomic.Uint64
	traceThrottled      atomic.Uint64

	// shardsServed counts /v1/dse/shard requests that reached the
	// streaming phase; shardsFailed the subset that ended in an error
	// frame; shardCandidates the design points evaluated across all of
	// them (worker-side view of distributed sweeps).
	shardsServed    atomic.Uint64
	shardsFailed    atomic.Uint64
	shardCandidates atomic.Uint64

	// coord, when non-nil, is the long-lived coordinator metrics
	// instance (set when the server fans DSE jobs out to remote
	// workers).
	coord *distrib.Metrics

	jobsSubmitted atomic.Uint64
	jobsDone      atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCanceled  atomic.Uint64
	jobsRejected  atomic.Uint64 // submissions shed with 429
	jobsRecovered atomic.Uint64 // journaled jobs restored at startup

	// queueDepth and jobsRunning are wired to the job store by the
	// server; nil until then.
	queueDepth  func() int
	jobsRunning func() int

	mu       sync.Mutex
	requests map[string]map[string]uint64 // route -> status -> count
	latency  map[string]*histogram        // route -> histogram
}

func newMetrics() *metrics {
	return &metrics{
		start:      time.Now(),
		cacheBase:  array.Stats(),
		subsysBase: component.Stats(),
		optBase:    array.OptStats(),
		diskBase:   persist.DefaultStats(),
		requests:   make(map[string]map[string]uint64),
		latency:    make(map[string]*histogram),
	}
}

// observe records one completed request.
func (m *metrics) observe(route, status string, dur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[route]
	if byStatus == nil {
		byStatus = make(map[string]uint64)
		m.requests[route] = byStatus
	}
	byStatus[status]++
	h := m.latency[route]
	if h == nil {
		h = &histogram{}
		m.latency[route] = h
	}
	h.observe(float64(dur) / float64(time.Millisecond))
}

// LatencyJSON summarizes one route's latency histogram.
type LatencyJSON struct {
	Count uint64  `json:"count"`
	SumMS float64 `json:"sum_ms"`
	// Buckets holds cumulative counts per upper bound, Prometheus-style
	// ("1ms", ..., "+Inf").
	Buckets map[string]uint64 `json:"buckets"`
}

// JobMetricsJSON is the job subsystem section of the snapshot.
type JobMetricsJSON struct {
	Submitted uint64 `json:"submitted"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Rejected  uint64 `json:"rejected"`
	// Recovered counts journaled jobs restored at startup (included in
	// neither Submitted nor Rejected).
	Recovered  uint64 `json:"recovered,omitempty"`
	Running    int    `json:"running"`
	QueueDepth int    `json:"queue_depth"`
}

// TraceMetricsJSON is the /v1/trace section of the snapshot.
type TraceMetricsJSON struct {
	Streams uint64 `json:"streams"`
	Samples uint64 `json:"samples"`
	// ThermalStreams counts closed-loop (thermal/DVFS) streams;
	// ThrottledSamples counts intervals the governor ran below nominal
	// frequency.
	ThermalStreams   uint64 `json:"thermal_streams"`
	ThrottledSamples uint64 `json:"throttled_samples"`
}

// ShardMetricsJSON is the worker-side /v1/dse/shard section of the
// snapshot.
type ShardMetricsJSON struct {
	Served     uint64 `json:"served"`
	Failed     uint64 `json:"failed"`
	Candidates uint64 `json:"candidates"`
}

// MetricsSnapshot is the GET /metrics body.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`
	InFlight  int64   `json:"in_flight"`
	// Requests counts completed requests by route and status code.
	Requests map[string]map[string]uint64 `json:"requests"`
	Latency  map[string]LatencyJSON       `json:"latency_ms"`
	Jobs     JobMetricsJSON               `json:"jobs"`
	// Trace reports the streaming power-trace endpoint's activity: the
	// number of streams that began and the interval samples emitted.
	Trace TraceMetricsJSON `json:"trace"`
	// Shard reports the worker side of distributed sweeps: shard
	// requests served by POST /v1/dse/shard and the candidates they
	// evaluated. All zero unless the server runs in worker mode.
	Shard ShardMetricsJSON `json:"dse_shard"`
	// Distrib reports the coordinator side — shards dispatched, stolen,
	// retried, and per-worker throughput — and is present only when the
	// server coordinates DSE jobs across remote workers.
	Distrib *distrib.Stats `json:"distrib,omitempty"`
	// Cache reports the array-synthesis cache activity since the server
	// started (Entries is the current resident total).
	Cache CacheStatsJSON `json:"synth_cache"`
	// Subsys reports the subsystem-synthesis cache (whole cores, shared
	// caches, fabrics, memory controllers, clock networks) over the same
	// window, with a per-kind breakdown.
	Subsys SubsysCacheStatsJSON `json:"subsys_cache"`
	// ArrayOpt reports array-optimizer enumeration work (evaluated vs
	// pruned organizations) since the server started.
	ArrayOpt ArrayOptStatsJSON `json:"array_optimizer"`
	// Disk reports the persistent cache tier's activity since the server
	// started (Bytes/Entries are the store's current totals; Enabled is
	// false when the server runs without a cache directory).
	Disk DiskCacheStatsJSON `json:"disk_cache"`
	// SynthWorkers is the resolved per-evaluation subsystem-synthesis
	// parallelism; SynthInflight is the number of subsystem builders
	// executing right now (a point-in-time gauge).
	SynthWorkers  int   `json:"synth_workers"`
	SynthInflight int64 `json:"synth_inflight"`
}

func bucketLabel(i int) string {
	if i == len(latencyBucketsMS) {
		return "+Inf"
	}
	return strconv.FormatFloat(latencyBucketsMS[i], 'f', -1, 64) + "ms"
}

// snapshot captures the current instrumentation state.
func (m *metrics) snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSec: time.Since(m.start).Seconds(),
		InFlight:  m.inFlight.Load(),
		Requests:  make(map[string]map[string]uint64),
		Latency:   make(map[string]LatencyJSON),
		Jobs: JobMetricsJSON{
			Submitted: m.jobsSubmitted.Load(),
			Done:      m.jobsDone.Load(),
			Failed:    m.jobsFailed.Load(),
			Canceled:  m.jobsCanceled.Load(),
			Rejected:  m.jobsRejected.Load(),
			Recovered: m.jobsRecovered.Load(),
		},
		Trace: TraceMetricsJSON{
			Streams:          m.traceStreams.Load(),
			Samples:          m.traceSamples.Load(),
			ThermalStreams:   m.traceThermalStreams.Load(),
			ThrottledSamples: m.traceThrottled.Load(),
		},
		Shard: ShardMetricsJSON{
			Served:     m.shardsServed.Load(),
			Failed:     m.shardsFailed.Load(),
			Candidates: m.shardCandidates.Load(),
		},
		Cache:         newCacheStatsJSON(array.Stats().Delta(m.cacheBase)),
		Subsys:        newSubsysCacheStatsJSON(component.Stats().Delta(m.subsysBase)),
		ArrayOpt:      newArrayOptStatsJSON(array.OptStats().Delta(m.optBase)),
		Disk:          newDiskCacheStatsJSON(persist.DefaultStats().Delta(m.diskBase)),
		SynthWorkers:  chip.SynthWorkers(),
		SynthInflight: chip.SynthInflight(),
	}
	if m.coord != nil {
		st := m.coord.Snapshot()
		snap.Distrib = &st
	}
	if m.queueDepth != nil {
		snap.Jobs.QueueDepth = m.queueDepth()
	}
	if m.jobsRunning != nil {
		snap.Jobs.Running = m.jobsRunning()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for route, byStatus := range m.requests {
		out := make(map[string]uint64, len(byStatus))
		for status, n := range byStatus {
			out[status] = n
		}
		snap.Requests[route] = out
	}
	for route, h := range m.latency {
		lj := LatencyJSON{Count: h.count, SumMS: h.sumMS, Buckets: make(map[string]uint64)}
		var cum uint64
		for i := range h.counts {
			cum += h.counts[i]
			lj.Buckets[bucketLabel(i)] = cum
		}
		snap.Latency[route] = lj
	}
	return snap
}
