package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"mcpat/internal/trace"
)

// gem5Fixture loads the checked-in config.json/stats.txt pair.
func gem5Fixture(t *testing.T) (config, stats string) {
	t.Helper()
	cfg, err := os.ReadFile("../trace/testdata/config.json")
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.ReadFile("../trace/testdata/stats.txt")
	if err != nil {
		t.Fatal(err)
	}
	return string(cfg), string(st)
}

// postTrace posts a trace request and returns the response without
// reading the body (callers stream it).
func postTrace(t *testing.T, url string, req TraceRequest) *http.Response {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/trace", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestTraceStreamsNDJSON pins the endpoint's contract: the stream is
// application/x-ndjson framed chip/sample.../summary, and the records
// are exactly what the library engine produces for the same pair.
func TestTraceStreamsNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cfgJSON, statsTxt := gem5Fixture(t)

	resp := postTrace(t, ts.URL, TraceRequest{
		Gem5Config: json.RawMessage(cfgJSON),
		StatsTxt:   statsTxt,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var types []string
	var samples []trace.Sample
	var summary *trace.Summary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec trace.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		types = append(types, rec.Type)
		switch rec.Type {
		case "chip":
			if rec.Chip == nil || rec.Chip.NumCores != 2 || rec.Chip.ClockHz != 2.5e9 {
				t.Fatalf("chip header %+v", rec.Chip)
			}
			if rec.Chip.Intervals != 3 || rec.Chip.TDPW <= 0 {
				t.Fatalf("chip header %+v", rec.Chip)
			}
		case "sample":
			samples = append(samples, *rec.Sample)
		case "summary":
			summary = rec.Summary
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(types, ",") != "chip,sample,sample,sample,summary" {
		t.Fatalf("frame sequence %v", types)
	}

	// The streamed records match a library-side run over the same input.
	eng, ivs, _, err := trace.FromGem5(strings.NewReader(cfgJSON), strings.NewReader(statsTxt))
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		w := want.Samples[i]
		if s.TotalW != w.TotalW || s.DynamicW != w.DynamicW || s.EnergyJ != w.EnergyJ {
			t.Fatalf("sample %d: streamed %+v vs library %+v", i, s, w)
		}
	}
	if summary == nil || *summary != want.Summary {
		t.Fatalf("summary %+v vs %+v", summary, want.Summary)
	}
}

// TestTracePresetSource pins the alternate chip sources: a preset plus
// raw stats works without a gem5 config.
func TestTracePresetSource(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, statsTxt := gem5Fixture(t)
	resp := postTrace(t, ts.URL, TraceRequest{Preset: "atom-class", StatsTxt: statsTxt})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var n int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		n++
	}
	if n != 5 {
		t.Fatalf("%d records", n)
	}
}

// TestTraceBadRequests pins the pre-stream error contract: setup
// failures are plain JSON error bodies with guard classification — a
// malformed gem5 config is 400/"config" with the JSON path.
func TestTraceBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, statsTxt := gem5Fixture(t)
	cases := []struct {
		name   string
		req    TraceRequest
		status int
		kind   string
		path   string
	}{
		{"no source", TraceRequest{StatsTxt: statsTxt}, 400, "config", ""},
		{"no stats", TraceRequest{Preset: "atom-class"}, 400, "config", ""},
		{"unknown preset", TraceRequest{Preset: "nope", StatsTxt: statsTxt}, 400, "config", ""},
		{"bad gem5 config", TraceRequest{Gem5Config: json.RawMessage(`{"system":{}}`), StatsTxt: statsTxt},
			400, "config", "gem5.config.system.cpu"},
		{"gem5 zero clock", TraceRequest{
			Gem5Config: json.RawMessage(`{"system":{"cpu":{"type":"DerivO3CPU","clk_domain":{"clock":[0]}}}}`),
			StatsTxt:   statsTxt}, 400, "config", ".clock"},
		{"empty stats", TraceRequest{Preset: "atom-class", StatsTxt: "no counters here"}, 400, "config", "trace.stats"},
	}
	for _, tc := range cases {
		resp := postTrace(t, ts.URL, tc.req)
		var body ErrorBody
		err := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if resp.StatusCode != tc.status || body.Error.Kind != tc.kind {
			t.Fatalf("%s: %d/%s (%s)", tc.name, resp.StatusCode, body.Error.Kind, body.Error.Message)
		}
		if tc.path != "" && !strings.Contains(body.Error.Path, tc.path) {
			t.Fatalf("%s: path %q lacks %q", tc.name, body.Error.Path, tc.path)
		}
	}
}

// TestTraceClientCancelMidStream pins streaming teardown: a client that
// disappears mid-stream must not wedge the server — the next request
// completes normally.
func TestTraceClientCancelMidStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cfgJSON, statsTxt := gem5Fixture(t)
	b, err := json.Marshal(TraceRequest{Gem5Config: json.RawMessage(cfgJSON), StatsTxt: statsTxt})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/trace", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	// Read just the first record, then abandon the stream.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	// The server stays healthy: a fresh stream completes end to end.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp2 := postTrace(t, ts.URL, TraceRequest{Gem5Config: json.RawMessage(cfgJSON), StatsTxt: statsTxt})
		if resp2.StatusCode == http.StatusOK {
			var n int
			sc := bufio.NewScanner(resp2.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				n++
			}
			resp2.Body.Close()
			if n != 5 {
				t.Fatalf("%d records after cancel", n)
			}
			return
		}
		resp2.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover after client cancel: status %d", resp2.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTraceMetrics pins the counters: streams and per-interval samples
// show up in the /metrics snapshot.
func TestTraceMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cfgJSON, statsTxt := gem5Fixture(t)
	resp := postTrace(t, ts.URL, TraceRequest{Gem5Config: json.RawMessage(cfgJSON), StatsTxt: statsTxt})
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
	}
	resp.Body.Close()
	snap := s.metrics.snapshot()
	if snap.Trace.Streams != 1 || snap.Trace.Samples != 3 {
		t.Fatalf("trace metrics %+v", snap.Trace)
	}
}

// TestTraceThermalOptions pins the closed-loop endpoint contract: a
// request with thermal options streams samples carrying the hotspot
// temperature and applied frequency, throttled intervals are flagged by
// the scheduled governor, and the thermal stream/throttle counters show
// up in the /metrics snapshot. A bad thermal spec is a 400 before the
// stream starts.
func TestTraceThermalOptions(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cfgJSON, statsTxt := gem5Fixture(t)

	resp := postTrace(t, ts.URL, TraceRequest{
		Gem5Config: json.RawMessage(cfgJSON),
		StatsTxt:   statsTxt,
		Thermal: &TraceThermalOptions{
			RthetaJA:     0.8,
			AmbientK:     318,
			UseFloorplan: true,
			Governor:     "schedule",
			FreqSchedule: []float64{1, 0.8, 1},
		},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var samples []trace.Sample
	var summary *trace.Summary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec trace.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch rec.Type {
		case "sample":
			samples = append(samples, *rec.Sample)
		case "summary":
			summary = rec.Summary
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("%d samples", len(samples))
	}
	for i, smp := range samples {
		if smp.TemperatureK <= 0 || smp.FreqHz <= 0 {
			t.Fatalf("sample %d lacks thermal fields: %+v", i, smp)
		}
	}
	if !samples[1].Throttled || samples[0].Throttled || samples[2].Throttled {
		t.Fatalf("schedule should throttle exactly interval 1: %+v", samples)
	}
	if summary == nil || summary.ThrottledIntervals != 1 || summary.MaxTempK <= 0 {
		t.Fatalf("summary lacks thermal aggregates: %+v", summary)
	}

	snap := s.metrics.snapshot()
	if snap.Trace.ThermalStreams != 1 || snap.Trace.ThrottledSamples != 1 {
		t.Fatalf("thermal metrics %+v", snap.Trace)
	}

	// Invalid thermal specs fail before the stream starts.
	bad := []TraceThermalOptions{
		{},                                    // missing Rtheta
		{RthetaJA: 0.8, Governor: "ondemand"}, // unknown policy
		{RthetaJA: 0.8, Governor: "schedule"}, // schedule without entries
	}
	for i, th := range bad {
		opts := th
		r := postTrace(t, ts.URL, TraceRequest{
			Gem5Config: json.RawMessage(cfgJSON),
			StatsTxt:   statsTxt,
			Thermal:    &opts,
		})
		var body ErrorBody
		err := json.NewDecoder(r.Body).Decode(&body)
		r.Body.Close()
		if err != nil {
			t.Fatalf("bad case %d: %v", i, err)
		}
		if r.StatusCode != 400 || body.Error.Kind != "config" {
			t.Fatalf("bad case %d: %d/%s (%s)", i, r.StatusCode, body.Error.Kind, body.Error.Message)
		}
	}
}
