package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"mcpat/internal/guard"
)

// Error kinds beyond the guard taxonomy, used for transport-level
// failures.
const (
	kindBadRequest = "bad_request"
	kindNotFound   = "not_found"
	kindOverloaded = "overloaded"
	kindTimeout    = "timeout"
	kindDraining   = "draining"
	kindCanceled   = "canceled"
	kindInternal   = "internal"
)

// classify maps an evaluation error onto its HTTP status and error
// kind. The guard taxonomy drives the mapping: caller mistakes are 4xx,
// model bugs are 5xx.
//
//	ErrConfig      -> 400 "config"        (malformed / out-of-range input)
//	ErrInfeasible  -> 422 "infeasible"    (well-formed, no physical solution)
//	ErrModelDomain -> 422 "model_domain"  (outputs left the validity domain)
//	ErrInternal    -> 500 "internal"      (contained panic / framework bug)
//
// Context errors from per-request deadlines and drain map to 504/503.
func classify(err error) (status int, kind string) {
	switch {
	case errors.Is(err, guard.ErrConfig):
		return http.StatusBadRequest, "config"
	case errors.Is(err, guard.ErrInfeasible):
		return http.StatusUnprocessableEntity, "infeasible"
	case errors.Is(err, guard.ErrModelDomain):
		return http.StatusUnprocessableEntity, "model_domain"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, kindTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, kindCanceled
	}
	return http.StatusInternalServerError, kindInternal
}

// apiError converts any evaluation error into the wire form, preserving
// the guard component path and classifying the kind.
func apiError(err error) *APIError {
	if err == nil {
		return nil
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	_, kind := classify(err)
	return &APIError{Kind: kind, Path: guard.PathOf(err), Message: firstLine(err.Error())}
}

// firstLine trims multi-line diagnostics (recovered panic stacks) to
// their headline; the full trace belongs in server logs, not responses.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// writeError writes the structured error body for a classified failure.
func writeError(w http.ResponseWriter, status int, e *APIError) {
	writeJSON(w, status, ErrorBody{Error: *e})
}

// writeModelError classifies a model error and writes both status and
// body from it.
func writeModelError(w http.ResponseWriter, err error) {
	status, _ := classify(err)
	writeError(w, status, apiError(err))
}
