package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// journalPath returns a journal location inside a fresh temp dir.
func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.journal")
}

// oneCandidateSweep is a DSE request whose real sweep is a single tiny
// candidate — fast enough that recovery tests can run it for real.
func oneCandidateSweep() DSERequest {
	return DSERequest{Cores: []int{1}, L2PerCoreKB: []int{64}, Fabrics: []string{"none"}}
}

func TestJournalReplaySemantics(t *testing.T) {
	path := journalPath(t)
	logf := func(string, ...any) {}
	writeLines := func(lines ...string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	req := `{"cores":[2]}`
	writeLines(
		`{"op":"submit","id":"job-a","time":"2026-08-08T10:00:00Z","req":`+req+`}`,
		`{"op":"submit","id":"job-b","time":"2026-08-08T10:00:01Z","req":`+req+`}`,
		`{"op":"end","id":"job-a","time":"2026-08-08T10:00:02Z","state":"done"}`,
		`{"op":"submit","id":"job-c","time":"2026-08-08T10:00:03Z","req":`+req+`}`,
		`{"op":"submit","id":"job-b","time":"2026-08-08T10:00:04Z","req":`+req+`}`, // duplicate, first wins
		`not json at all{{{`, // torn tail from a crash mid-append
	)
	jl, live, err := openJournal(path, logf)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	defer jl.close()
	if len(live) != 2 || live[0].ID != "job-b" || live[1].ID != "job-c" {
		t.Fatalf("live jobs = %+v, want [job-b job-c]", live)
	}
	if live[0].Req == nil || len(live[0].Req.Cores) != 1 || live[0].Req.Cores[0] != 2 {
		t.Errorf("request not round-tripped: %+v", live[0].Req)
	}

	// The open compacted the file: only live submits remain, so a second
	// replay (restart during replay / double restart) recovers the same
	// set — no drops, no duplicates.
	jl.close()
	jl2, live2, err := openJournal(path, logf)
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	defer jl2.close()
	if len(live2) != 2 || live2[0].ID != "job-b" || live2[1].ID != "job-c" {
		t.Fatalf("second replay diverged: %+v", live2)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), `"op":"submit"`); n != 2 {
		t.Errorf("compacted journal holds %d submits, want 2:\n%s", n, data)
	}

	// Ending a job removes it from the next replay.
	jl2.ended("job-b", JobDone)
	jl2.close()
	jl3, live3, err := openJournal(path, logf)
	if err != nil {
		t.Fatal(err)
	}
	defer jl3.close()
	if len(live3) != 1 || live3[0].ID != "job-c" {
		t.Fatalf("after end(job-b): %+v, want [job-c]", live3)
	}
}

func TestJournalOpenOnMissingAndEmptyFile(t *testing.T) {
	path := journalPath(t)
	jl, live, err := openJournal(path, func(string, ...any) {})
	if err != nil || len(live) != 0 {
		t.Fatalf("fresh journal: live=%v err=%v", live, err)
	}
	jl.close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file not created: %v", err)
	}
}

// TestJobRecoveryAfterKill simulates a SIGKILL: the first server is
// abandoned without any drain, and a second server on the same journal
// must re-run the in-flight job under its original id.
func TestJobRecoveryAfterKill(t *testing.T) {
	path := journalPath(t)

	s1 := New(Config{JobWorkers: 1, JournalPath: path})
	ts1 := httptest_start(t, s1)
	stub1 := installStubSweep(t, s1) // blocks: the job dies mid-run

	_, body := doJSON(t, "POST", ts1+"/v1/dse", oneCandidateSweep())
	st := decode[JobStatus](t, body)
	if st.State.Terminal() {
		t.Fatalf("submit: %+v", st)
	}
	<-stub1.started // running when the "crash" happens

	// Also a job the user canceled before the crash: must NOT resurrect.
	_, body = doJSON(t, "POST", ts1+"/v1/dse", oneCandidateSweep())
	canceled := decode[JobStatus](t, body).ID
	doJSON(t, "DELETE", ts1+"/v1/jobs/"+canceled, nil)

	// SIGKILL: no Shutdown, no journal close. (The stub goroutine stays
	// blocked until releaseAll at cleanup — a stand-in for process death.)
	t.Cleanup(stub1.releaseAll)

	// Restart: the live job is recovered and runs its real (tiny) sweep.
	s2 := New(Config{JobWorkers: 1, JournalPath: path})
	ts2 := httptest_start(t, s2)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	})

	if got := s2.metrics.jobsRecovered.Load(); got != 1 {
		t.Fatalf("recovered %d jobs, want 1", got)
	}
	final := pollJob(t, ts2, st.ID, 120*time.Second)
	if final.State != JobDone {
		t.Fatalf("recovered job must re-run to done, got %+v", final)
	}
	if final.ID != st.ID || !final.SubmittedAt.Equal(st.SubmittedAt) {
		t.Errorf("recovered job lost identity: %+v vs %+v", final, st)
	}
	if resp, _ := doJSON(t, "GET", ts2+"/v1/jobs/"+canceled, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("user-canceled job resurrected after restart")
	}

	// Third start: the completed job was journaled terminal — nothing to
	// recover, nothing double-run.
	s3 := New(Config{JobWorkers: 1, JournalPath: path})
	if got := s3.metrics.jobsRecovered.Load(); got != 0 {
		t.Errorf("third start recovered %d jobs, want 0", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s3.Shutdown(ctx)
}

// TestDrainKeepsJobsDurable: jobs canceled by a graceful drain are NOT
// journaled terminal, so a restarted server re-runs them.
func TestDrainKeepsJobsDurable(t *testing.T) {
	path := journalPath(t)

	s1 := New(Config{JobWorkers: 1, JournalPath: path})
	ts1 := httptest_start(t, s1)
	stub := installStubSweep(t, s1)
	defer stub.releaseAll()

	_, body := doJSON(t, "POST", ts1+"/v1/dse", oneCandidateSweep())
	id := decode[JobStatus](t, body).ID
	<-stub.started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st, _ := s1.jobs.get(id); st.State != JobCanceled {
		t.Fatalf("drain should cancel the running job: %+v", st)
	}

	s2 := New(Config{JobWorkers: 1, JournalPath: path})
	ts2 := httptest_start(t, s2)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	})
	if got := s2.metrics.jobsRecovered.Load(); got != 1 {
		t.Fatalf("recovered %d jobs after drain, want 1", got)
	}
	if final := pollJob(t, ts2, id, 120*time.Second); final.State != JobDone {
		t.Fatalf("drained job must complete after restart: %+v", final)
	}
}

// TestDeleteCompletedJob: canceling an already-terminal job is a no-op
// that returns its (unchanged) terminal status, and the journal does
// not resurrect it.
func TestDeleteCompletedJob(t *testing.T) {
	path := journalPath(t)
	s, ts := newTestServerJournal(t, Config{JobWorkers: 1, JournalPath: path})
	stub := installStubSweep(t, s)

	_, body := doJSON(t, "POST", ts+"/v1/dse", oneCandidateSweep())
	id := decode[JobStatus](t, body).ID
	<-stub.started
	stub.releaseAll()
	if final := pollJob(t, ts, id, 10*time.Second); final.State != JobDone {
		t.Fatalf("setup: %+v", final)
	}

	resp, body := doJSON(t, "DELETE", ts+"/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE on done job: %d %s", resp.StatusCode, body)
	}
	st := decode[JobStatus](t, body)
	if st.State != JobDone {
		t.Fatalf("DELETE flipped a done job to %q", st.State)
	}
	if st.Error != nil {
		t.Errorf("done job grew an error after DELETE: %+v", st.Error)
	}

	// Replay confirms the job stayed ended.
	jl, live, err := openJournal(path, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	defer jl.close()
	for _, rj := range live {
		if rj.ID == id {
			t.Error("done job still live in journal after DELETE")
		}
	}
}

// TestRecoveryOverflowsQueueDepth: more journaled live jobs than the
// queue depth must all recover (blocking enqueue), none shed.
func TestRecoveryOverflowsQueueDepth(t *testing.T) {
	path := journalPath(t)
	// Seed a journal with 4 live jobs.
	jl, _, err := openJournal(path, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	req := oneCandidateSweep()
	for _, id := range []string{"job-r1", "job-r2", "job-r3", "job-r4"} {
		jl.submitted(id, time.Now(), &req)
	}
	jl.close()

	s, ts := newTestServerJournal(t, Config{JobWorkers: 1, JobQueueDepth: 1, JournalPath: path})
	if got := s.metrics.jobsRecovered.Load(); got != 4 {
		t.Fatalf("recovered %d, want 4", got)
	}
	for _, id := range []string{"job-r1", "job-r2", "job-r3", "job-r4"} {
		if final := pollJob(t, ts, id, 240*time.Second); final.State != JobDone {
			t.Fatalf("%s: %+v", id, final)
		}
	}
}

// TestRecoveryOfUnparseableRequest: a journaled request that no longer
// validates fails the job visibly instead of dropping it.
func TestRecoveryOfUnparseableRequest(t *testing.T) {
	path := journalPath(t)
	jl, _, err := openJournal(path, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	bad := DSERequest{Cores: []int{2}, Fabrics: []string{"warp-drive"}}
	jl.submitted("job-bad", time.Now(), &bad)
	jl.close()

	s, ts := newTestServerJournal(t, Config{JobWorkers: 1, JournalPath: path})
	if got := s.metrics.jobsRecovered.Load(); got != 1 {
		t.Fatalf("recovered %d, want 1", got)
	}
	final := pollJob(t, ts, "job-bad", 10*time.Second)
	if final.State != JobFailed || final.Error == nil {
		t.Fatalf("invalid recovered request must fail the job: %+v", final)
	}
}

// TestJournalUnusablePathDegrades: a journal path that cannot be used
// must not prevent the server from starting.
func TestJournalUnusablePathDegrades(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocked, []byte("a file, not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	var warned bool
	s := New(Config{
		JobWorkers:  1,
		JournalPath: filepath.Join(blocked, "jobs.journal"), // parent is a file
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "journal unavailable") {
				warned = true
			}
		},
	})
	ts := httptest_start(t, s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	if !warned {
		t.Error("degrading to a non-durable server must warn")
	}
	// The server still takes and runs jobs.
	stub := installStubSweep(t, s)
	defer stub.releaseAll()
	resp, body := doJSON(t, "POST", ts+"/v1/dse", oneCandidateSweep())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit on non-durable server: %d %s", resp.StatusCode, body)
	}
	<-stub.started
	stub.releaseAll()
	if final := pollJob(t, ts, decode[JobStatus](t, body).ID, 10*time.Second); final.State != JobDone {
		t.Fatalf("non-durable job: %+v", final)
	}
}

// TestJournalSubmitBeforeResponse pins the durability point: the submit
// record is on disk before the 202 goes out.
func TestJournalSubmitBeforeResponse(t *testing.T) {
	path := journalPath(t)
	s, ts := newTestServerJournal(t, Config{JobWorkers: 1, JournalPath: path})
	stub := installStubSweep(t, s)
	defer stub.releaseAll()

	_, body := doJSON(t, "POST", ts+"/v1/dse", oneCandidateSweep())
	id := decode[JobStatus](t, body).ID

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec journalRecord
		if json.Unmarshal([]byte(line), &rec) == nil && rec.Op == "submit" && rec.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("submit for %s not journaled by response time:\n%s", id, data)
	}
	<-stub.started
	stub.releaseAll()
	pollJob(t, ts, id, 10*time.Second)
}

// httptest_start mounts the server without the Shutdown cleanup (for
// tests that manage shutdown themselves, e.g. to simulate crashes).
func httptest_start(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// newTestServerJournal is newTestServer for configs carrying a journal.
func newTestServerJournal(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	url := httptest_start(t, s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, url
}
