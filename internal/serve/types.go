package serve

import (
	"fmt"
	"time"

	"mcpat/internal/array"
	"mcpat/internal/chip"
	"mcpat/internal/component"
	"mcpat/internal/distrib"
	"mcpat/internal/explore"
	"mcpat/internal/persist"
	"mcpat/internal/power"
)

// EvaluateRequest is the JSON body of POST /v1/evaluate. Exactly one of
// Preset or Config selects the chip; Stats optionally adds runtime
// activity so the response carries runtime power next to TDP. Clients
// that prefer the original tool's interface can instead POST a
// McPAT-style XML document with an XML content type, which carries both
// the configuration and the <stat> entries.
type EvaluateRequest struct {
	// Preset names a bundled chip template ("niagara", "arm-a9", ...).
	Preset string `json:"preset,omitempty"`
	// Config is the native chip description; ignored when Preset is set.
	Config *chip.Config `json:"config,omitempty"`
	// Stats is the optional runtime activity vector.
	Stats *chip.Stats `json:"stats,omitempty"`
}

// EvaluateResponse is the 200 body of POST /v1/evaluate.
type EvaluateResponse struct {
	Name     string  `json:"name"`
	NM       float64 `json:"nm"`
	ClockHz  float64 `json:"clock_hz"`
	TDPW     float64 `json:"tdp_w"`
	AreaMM2  float64 `json:"area_mm2"`
	RuntimeW float64 `json:"runtime_w,omitempty"`
	// Report is the hierarchical power/area tree (see power.Item JSON).
	Report *power.Item `json:"report"`
}

// APIError is the structured error detail inside every non-2xx body.
type APIError struct {
	// Kind classifies the failure: "config", "infeasible",
	// "model_domain", "internal" (the guard taxonomy), or a transport
	// kind ("bad_request", "not_found", "overloaded", "timeout",
	// "draining", "canceled").
	Kind string `json:"kind"`
	// Path is the component path the guard error carried, e.g.
	// "core[2].ifu.btb"; empty for transport errors.
	Path string `json:"path,omitempty"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

func (e *APIError) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("%s at %s: %s", e.Kind, e.Path, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Kind, e.Message)
}

// ErrorBody is the envelope of every non-2xx JSON response.
type ErrorBody struct {
	Error APIError `json:"error"`
}

// DSERequest is the JSON body of POST /v1/dse: the design space, fixed
// parameters, budget, objective, and engine options of one sweep job.
// Zero values select the same defaults as the library engine.
type DSERequest struct {
	// Fixed parameters (explore.Params).
	NM      float64 `json:"nm,omitempty"`
	ClockHz float64 `json:"clock_hz,omitempty"`
	Threads int     `json:"threads,omitempty"`
	MemBW   float64 `json:"mem_bw_bytes_per_s,omitempty"`

	// Swept axes (explore.Space). Fabrics use the fabric names
	// "none", "bus", "crossbar", "mesh", "ring".
	Cores        []int    `json:"cores,omitempty"`
	L2PerCoreKB  []int    `json:"l2_per_core_kb,omitempty"`
	Fabrics      []string `json:"fabrics,omitempty"`
	ClusterSizes []int    `json:"cluster_sizes,omitempty"`

	// Budget (explore.Constraints); 0 = unconstrained.
	MaxAreaMM2 float64 `json:"max_area_mm2,omitempty"`
	MaxTDPW    float64 `json:"max_tdp_w,omitempty"`

	// Objective: "throughput" (default), "perf/watt", or "ed2ap".
	Objective string `json:"objective,omitempty"`

	// Search selects the strategy: "exhaustive" (default) sweeps the
	// full cross-product, "pareto" runs the adaptive multi-objective
	// search under an evaluation budget.
	Search string `json:"search,omitempty"`
	// Budget bounds a pareto search's candidate evaluations; 0 selects
	// the engine default (a tenth of the space, floored at 24).
	Budget int `json:"budget,omitempty"`
	// Seed seeds the pareto search; equal seeds replay identical
	// searches. 0 selects the deterministic default seed.
	Seed int64 `json:"seed,omitempty"`

	// Engine options (explore.Options).
	Workers            int  `json:"workers,omitempty"`
	CandidateTimeoutMS int  `json:"candidate_timeout_ms,omitempty"`
	FailFast           bool `json:"fail_fast,omitempty"`
}

// ParseObjective maps an objective name to the engine constant. The
// empty string selects MaxThroughput.
func ParseObjective(name string) (explore.Objective, error) {
	switch name {
	case "", "throughput":
		return explore.MaxThroughput, nil
	case "perf/watt":
		return explore.MaxPerfPerWatt, nil
	case "ed2ap", "1/ED2AP":
		return explore.MinED2AP, nil
	}
	return 0, fmt.Errorf("unknown objective %q (throughput|perf/watt|ed2ap)", name)
}

// ParseFabric maps a fabric name to the chip-level kind.
func ParseFabric(name string) (chip.InterconnectKind, error) {
	for _, k := range []chip.InterconnectKind{chip.NoneIC, chip.Bus, chip.Crossbar, chip.Mesh, chip.Ring} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown fabric %q (none|bus|crossbar|mesh|ring)", name)
}

// explore converts the wire request into engine inputs, validating the
// enumerated fields.
func (r *DSERequest) explore() (explore.Params, explore.Space, explore.Constraints, explore.Objective, *explore.Options, error) {
	p := explore.Params{NM: r.NM, ClockHz: r.ClockHz, Threads: r.Threads, MemBW: r.MemBW}
	space := explore.Space{
		Cores:        r.Cores,
		L2PerCoreKB:  r.L2PerCoreKB,
		ClusterSizes: r.ClusterSizes,
	}
	for _, name := range r.Fabrics {
		k, err := ParseFabric(name)
		if err != nil {
			return p, space, explore.Constraints{}, 0, nil, err
		}
		space.Fabrics = append(space.Fabrics, k)
	}
	obj, err := ParseObjective(r.Objective)
	if err != nil {
		return p, space, explore.Constraints{}, 0, nil, err
	}
	cons := explore.Constraints{MaxAreaMM2: r.MaxAreaMM2, MaxTDP: r.MaxTDPW}
	search, err := explore.ParseSearchKind(r.Search)
	if err != nil {
		return p, space, cons, obj, nil, err
	}
	opts := &explore.Options{
		Workers:          r.Workers,
		CandidateTimeout: time.Duration(r.CandidateTimeoutMS) * time.Millisecond,
		FailFast:         r.FailFast,
		Search:           search,
		Budget:           r.Budget,
		Seed:             r.Seed,
	}
	return p, space, cons, obj, opts, nil
}

// DSECandidate is the wire form of one evaluated design point - the
// serialization both the service and mcpat-dse -json emit.
type DSECandidate struct {
	Cores       int    `json:"cores"`
	L2PerCoreKB int    `json:"l2_per_core_kb"`
	Fabric      string `json:"fabric"`
	ClusterSize int    `json:"cluster_size"`

	TDPW     float64 `json:"tdp_w"`
	AreaMM2  float64 `json:"area_mm2"`
	GIPS     float64 `json:"gips"`
	RuntimeW float64 `json:"runtime_w"`

	Feasible bool    `json:"feasible"`
	Reject   string  `json:"reject,omitempty"`
	Score    float64 `json:"score"`
}

func newDSECandidate(c explore.Candidate) DSECandidate {
	return DSECandidate{
		Cores:       c.Cores,
		L2PerCoreKB: c.L2PerCoreKB,
		Fabric:      c.Fabric.String(),
		ClusterSize: c.ClusterSize,
		TDPW:        c.TDP,
		AreaMM2:     c.AreaMM2,
		GIPS:        c.Perf / 1e9,
		RuntimeW:    c.RunW,
		Feasible:    c.Feasible,
		Reject:      c.Reject,
		Score:       c.Score,
	}
}

// DSEFailureJSON is the wire form of one hard per-candidate failure.
type DSEFailureJSON struct {
	Candidate DSECandidate `json:"candidate"`
	Error     APIError     `json:"error"`
}

// CacheStatsJSON is the wire form of the array-synthesis cache counters.
type CacheStatsJSON struct {
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	Shared   uint64  `json:"shared"`
	Bypassed uint64  `json:"bypassed"`
	Entries  int     `json:"entries"`
	HitRate  float64 `json:"hit_rate"`
}

func newCacheStatsJSON(cs array.CacheStats) CacheStatsJSON {
	return CacheStatsJSON{
		Hits:     cs.Hits,
		Misses:   cs.Misses,
		Shared:   cs.Shared,
		Bypassed: cs.Bypassed,
		Entries:  cs.Entries,
		HitRate:  cs.HitRate(),
	}
}

// SubsysCacheStatsJSON is the wire form of the subsystem-synthesis cache
// counters: totals plus a per-kind breakdown (core, cache, fabric, mc,
// clock) showing which whole subsystems were reused rather than
// re-synthesized.
type SubsysCacheStatsJSON struct {
	Hits     uint64                   `json:"hits"`
	Misses   uint64                   `json:"misses"`
	Shared   uint64                   `json:"shared"`
	Bypassed uint64                   `json:"bypassed"`
	Entries  int                      `json:"entries"`
	HitRate  float64                  `json:"hit_rate"`
	Kinds    map[string]KindStatsJSON `json:"kinds"`
}

// KindStatsJSON is one component kind's share of the subsystem cache
// counters. Kinds with no activity are omitted from the wire form.
type KindStatsJSON struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Shared   uint64 `json:"shared,omitempty"`
	Bypassed uint64 `json:"bypassed,omitempty"`
}

// ArrayOptStatsJSON is the wire form of the array-optimizer enumeration
// counters: organizations fully evaluated vs skipped by the
// branch-and-bound lower bound during cold synthesis.
type ArrayOptStatsJSON struct {
	Evaluated uint64  `json:"evaluated"`
	Pruned    uint64  `json:"pruned"`
	PruneRate float64 `json:"prune_rate"`
}

func newArrayOptStatsJSON(os array.OptimizerStats) ArrayOptStatsJSON {
	return ArrayOptStatsJSON{
		Evaluated: os.Evaluated,
		Pruned:    os.Pruned,
		PruneRate: os.PruneRate(),
	}
}

// DiskCacheStatsJSON is the wire form of the persistent (disk) cache
// tier's counters. Enabled is false — and every counter zero — when the
// server runs without a cache directory.
type DiskCacheStatsJSON struct {
	Enabled     bool    `json:"enabled"`
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	Corrupt     uint64  `json:"corrupt"`
	Evicted     uint64  `json:"evicted"`
	WriteErrors uint64  `json:"write_errors"`
	Bytes       int64   `json:"bytes"`
	Entries     int64   `json:"entries"`
	HitRate     float64 `json:"hit_rate"`
}

func newDiskCacheStatsJSON(ds persist.Stats) DiskCacheStatsJSON {
	return DiskCacheStatsJSON{
		Enabled:     ds.Enabled,
		Hits:        ds.Hits,
		Misses:      ds.Misses,
		Corrupt:     ds.Corrupt,
		Evicted:     ds.Evicted,
		WriteErrors: ds.WriteErrors,
		Bytes:       ds.Bytes,
		Entries:     ds.Entries,
		HitRate:     ds.HitRate(),
	}
}

func newSubsysCacheStatsJSON(cs component.CacheStats) SubsysCacheStatsJSON {
	tot := cs.Total()
	out := SubsysCacheStatsJSON{
		Hits:     tot.Hits,
		Misses:   tot.Misses,
		Shared:   tot.Shared,
		Bypassed: tot.Bypassed,
		Entries:  cs.Entries,
		HitRate:  cs.HitRate(),
		Kinds:    make(map[string]KindStatsJSON),
	}
	for i, k := range cs.Kinds {
		if k == (component.KindStats{}) {
			continue
		}
		out.Kinds[component.Kind(i).String()] = KindStatsJSON{
			Hits: k.Hits, Misses: k.Misses, Shared: k.Shared, Bypassed: k.Bypassed,
		}
	}
	return out
}

// DSEReport is the machine-readable form of a completed (or partial)
// sweep: the body of a finished job's result and of mcpat-dse -json.
type DSEReport struct {
	Objective string `json:"objective"`
	// Search names the strategy that produced the result ("exhaustive"
	// or "pareto"); SpaceSize is the full cross-product size, so
	// Evaluated/SpaceSize is the fraction of the space actually paid
	// for.
	Search     string         `json:"search"`
	SpaceSize  int            `json:"space_size"`
	Evaluated  int            `json:"evaluated"`
	Feasible   int            `json:"feasible"`
	Best       *DSECandidate  `json:"best,omitempty"`
	Candidates []DSECandidate `json:"candidates"`
	// Front is the Pareto-optimal subset of the evaluated feasible
	// candidates over {power, area, delay, ED², EDA}, in deterministic
	// axis order (filled by both search strategies).
	Front    []DSECandidate   `json:"front,omitempty"`
	Failures []DSEFailureJSON `json:"failures,omitempty"`
	Cache    CacheStatsJSON   `json:"cache"`
	// Subsys reports subsystem-level reuse during the sweep: whole
	// cores, caches, fabrics, memory controllers, and clock networks
	// served from the component cache instead of being re-synthesized.
	Subsys SubsysCacheStatsJSON `json:"subsys_cache"`
	// ArrayOpt reports the array-optimizer enumeration work the sweep's
	// cold syntheses did (and how much the pruning bound skipped).
	ArrayOpt ArrayOptStatsJSON `json:"array_optimizer"`
	// Disk reports the persistent cache tier's activity during the sweep
	// (zero-valued with Enabled false when no cache directory is set).
	Disk DiskCacheStatsJSON `json:"disk_cache"`
	// Distrib reports the coordinator's shard accounting when the sweep
	// ran distributed (mcpat-dse -remote); absent on single-process
	// sweeps.
	Distrib *distrib.Stats `json:"distrib,omitempty"`
}

// NewDSEReport converts an engine result into the shared wire form.
func NewDSEReport(res *explore.Result, obj explore.Objective) *DSEReport {
	rep := &DSEReport{
		Objective:  obj.String(),
		Search:     res.Search.String(),
		SpaceSize:  res.SpaceSize,
		Evaluated:  res.Evaluated,
		Feasible:   res.Feasible,
		Candidates: make([]DSECandidate, 0, len(res.Candidates)),
		Cache:      newCacheStatsJSON(res.Cache),
		Subsys:     newSubsysCacheStatsJSON(res.Subsys),
		ArrayOpt:   newArrayOptStatsJSON(res.ArrayOpt),
		Disk:       newDiskCacheStatsJSON(res.Disk),
	}
	for _, c := range res.Candidates {
		rep.Candidates = append(rep.Candidates, newDSECandidate(c))
	}
	for _, c := range res.Front {
		rep.Front = append(rep.Front, newDSECandidate(c))
	}
	if res.Best != nil {
		best := newDSECandidate(*res.Best)
		rep.Best = &best
	}
	for _, f := range res.Failures {
		rep.Failures = append(rep.Failures, DSEFailureJSON{
			Candidate: newDSECandidate(f.Candidate),
			Error:     *apiError(f.Err),
		})
	}
	return rep
}

// JobState names one stage of the DSE job lifecycle.
type JobState string

// Job lifecycle states. Queued and running jobs are live; done, failed,
// and canceled are terminal.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobStatus is the wire form of one job, returned by POST /v1/dse,
// GET /v1/jobs/{id}, and DELETE /v1/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`

	// Sweep progress: candidates evaluated so far out of the enumerated
	// space. Done is monotonic; a canceled sweep stops short of Total.
	CandidatesDone  int `json:"candidates_done"`
	CandidatesTotal int `json:"candidates_total"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// Front is the live Pareto-front snapshot of a running pareto
	// search, refreshed on every improving generation; it remains on a
	// terminal job (the completed front also appears in Result.Front).
	Front []DSECandidate `json:"front,omitempty"`

	// Result is present once the job is terminal and any candidates were
	// evaluated; a canceled job carries the partial sweep. Per-candidate
	// failures live inside the result - they do not fail the job.
	Result *DSEReport `json:"result,omitempty"`
	// Error is present on failed (and canceled) jobs.
	Error *APIError `json:"error,omitempty"`
}
