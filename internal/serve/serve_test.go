package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcpat/internal/chip"
	"mcpat/internal/config"
	"mcpat/internal/core"
	"mcpat/internal/guard"
)

// tinyChip returns a deliberately small configuration so synchronous
// evaluations stay fast under the race detector.
func tinyChip() chip.Config {
	return chip.Config{
		Name: "tiny", NM: 45, ClockHz: 1e9, NumCores: 1,
		Core: core.Config{
			Threads: 1, IntALUs: 1,
			ICache: core.CacheParams{Bytes: 8 << 10, BlockBytes: 32, Assoc: 2},
			DCache: core.CacheParams{Bytes: 8 << 10, BlockBytes: 32, Assoc: 2},
		},
	}
}

// newTestServer builds a Server plus its httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// withServeEvalHook installs the synchronous-evaluation hook for one
// test.
func withServeEvalHook(t *testing.T, hook func(cfg *chip.Config) error) {
	t.Helper()
	testEvalHook.Store(&hook)
	t.Cleanup(func() { testEvalHook.Store(nil) })
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode %T from %s: %v", v, data, err)
	}
	return v
}

func TestEvaluateJSONConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cfg := tinyChip()
	resp, body := doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{Config: &cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ev := decode[EvaluateResponse](t, body)
	if ev.Name != "tiny" || ev.TDPW <= 0 || ev.AreaMM2 <= 0 || ev.Report == nil {
		t.Fatalf("implausible response: %+v", ev)
	}
	if ev.Report.Name != "tiny" {
		t.Errorf("report root should carry the chip name, got %q", ev.Report.Name)
	}
}

func TestEvaluatePreset(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{Preset: "arm-a9"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ev := decode[EvaluateResponse](t, body)
	if ev.TDPW <= 0 {
		t.Fatalf("preset evaluation returned no power: %+v", ev)
	}
}

func TestEvaluateXML(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var buf bytes.Buffer
	if err := config.FromChipConfig(tinyChip()).Write(&buf); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/evaluate", &buf)
	req.Header.Set("Content-Type", "application/xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	ev := decode[EvaluateResponse](t, data)
	if ev.Name != "tiny" || ev.TDPW <= 0 {
		t.Fatalf("XML round trip failed: %+v", ev)
	}
}

// TestGuardKindStatusMapping drives each guard error kind through the
// real HTTP path and checks the documented status code and error body.
func TestGuardKindStatusMapping(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantStatus int
		wantKind   string
	}{
		{"config", guard.Configf("chip.core", "bad core count"), 400, "config"},
		{"infeasible", guard.Infeasiblef("chip.L2", "no organization meets 5 GHz"), 422, "infeasible"},
		{"model_domain", guard.Domainf("chip.noc", "negative router power"), 422, "model_domain"},
		{"internal", guard.Internalf("chip.core[0]", "recovered panic: boom\nstack..."), 500, "internal"},
	}
	_, ts := newTestServer(t, Config{})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			withServeEvalHook(t, func(cfg *chip.Config) error { return tc.err })
			cfg := tinyChip()
			resp, body := doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{Config: &cfg})
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
			eb := decode[ErrorBody](t, body)
			if eb.Error.Kind != tc.wantKind {
				t.Errorf("kind %q, want %q", eb.Error.Kind, tc.wantKind)
			}
			if eb.Error.Path == "" || !strings.HasPrefix(eb.Error.Path, "chip") {
				t.Errorf("error body must carry the component path, got %q", eb.Error.Path)
			}
			if strings.Contains(eb.Error.Message, "\n") {
				t.Errorf("multi-line internals must be trimmed: %q", eb.Error.Message)
			}
		})
	}
}

func TestEvaluateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Malformed JSON.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/evaluate", strings.NewReader("{not json"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 || decode[ErrorBody](t, data).Error.Kind != kindBadRequest {
		t.Fatalf("malformed JSON: status %d body %s", resp.StatusCode, data)
	}

	// Neither preset nor config.
	resp, body := doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{})
	if resp.StatusCode != 400 {
		t.Fatalf("empty request: status %d body %s", resp.StatusCode, body)
	}

	// Unknown preset classifies as a config error.
	resp, body = doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{Preset: "pentium-9"})
	if resp.StatusCode != 400 || decode[ErrorBody](t, body).Error.Kind != "config" {
		t.Fatalf("unknown preset: status %d body %s", resp.StatusCode, body)
	}

	// Malformed XML.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/evaluate", strings.NewReader("<unclosed"))
	req.Header.Set("Content-Type", "text/xml")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed XML: status %d body %s", resp.StatusCode, data)
	}
}

// TestAdmissionControl saturates the single evaluation slot and checks
// the second request is shed with 429 + Retry-After instead of queued.
func TestAdmissionControl(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	withServeEvalHook(t, func(cfg *chip.Config) error {
		entered <- struct{}{}
		<-release
		return nil
	})
	_, ts := newTestServer(t, Config{MaxInFlight: 1})

	type result struct {
		status int
		body   []byte
	}
	first := make(chan result, 1)
	go func() {
		cfg := tinyChip()
		resp, body := doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{Config: &cfg})
		first <- result{resp.StatusCode, body}
	}()
	<-entered // the slot is held

	cfg := tinyChip()
	resp, body := doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{Config: &cfg})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server must shed with 429, got %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	if decode[ErrorBody](t, body).Error.Kind != kindOverloaded {
		t.Errorf("want kind %q, body %s", kindOverloaded, body)
	}

	close(release)
	r := <-first
	if r.status != http.StatusOK {
		t.Fatalf("the admitted request must still complete: %d %s", r.status, r.body)
	}
}

// TestRequestTimeout checks the per-request deadline abandons a stuck
// evaluation with 504.
func TestRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	withServeEvalHook(t, func(cfg *chip.Config) error {
		<-release
		return nil
	})
	_, ts := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	cfg := tinyChip()
	resp, body := doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{Config: &cfg})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d: %s", resp.StatusCode, body)
	}
	if decode[ErrorBody](t, body).Error.Kind != kindTimeout {
		t.Errorf("want kind timeout, body %s", body)
	}
}

// TestJobLifecycle runs a real one-candidate sweep through submit ->
// poll -> result.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{
		Cores: []int{2}, L2PerCoreKB: []int{64}, Fabrics: []string{"crossbar"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	st := decode[JobStatus](t, body)
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("fresh job must be live with an id: %+v", st)
	}
	if st.CandidatesTotal != 1 {
		t.Errorf("total must be known at submit: %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location %q", loc)
	}

	final := pollJob(t, ts.URL, st.ID, 60*time.Second)
	if final.State != JobDone {
		t.Fatalf("job did not finish cleanly: %+v", final)
	}
	if final.Result == nil || final.Result.Evaluated != 1 || final.Result.Best == nil {
		t.Fatalf("finished job must carry its result: %+v", final.Result)
	}
	if final.CandidatesDone != 1 || final.CandidatesTotal != 1 {
		t.Errorf("progress must reach 1/1: %+v", final)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Errorf("timestamps missing: %+v", final)
	}
	if final.Result.Best.Fabric != "crossbar" || final.Result.Best.Cores != 2 {
		t.Errorf("wrong design point: %+v", final.Result.Best)
	}

	// The list endpoint shows the job without its (potentially large)
	// result payload.
	resp, body = doJSON(t, "GET", ts.URL+"/v1/jobs", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	list := decode[struct {
		Jobs []JobStatus `json:"jobs"`
	}](t, body)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID || list.Jobs[0].Result != nil {
		t.Fatalf("list must summarize without results: %s", body)
	}
}

func pollJob(t *testing.T, base, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, body := doJSON(t, "GET", base+"/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d body %s", resp.StatusCode, body)
		}
		st := decode[JobStatus](t, body)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish in %s: %+v", id, timeout, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, method := range []string{"GET", "DELETE"} {
		resp, body := doJSON(t, method, ts.URL+"/v1/jobs/job-doesnotexist", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d", method, resp.StatusCode)
		}
		if decode[ErrorBody](t, body).Error.Kind != kindNotFound {
			t.Errorf("%s: body %s", method, body)
		}
	}
}

func TestDSEBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{Fabrics: []string{"hypercube"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown fabric: status %d body %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{Objective: "fastest"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown objective: status %d body %s", resp.StatusCode, body)
	}
}
