package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"mcpat/internal/chip"
	"mcpat/internal/config"
	"mcpat/internal/guard"
	"mcpat/internal/presets"
)

// maxBodyBytes bounds request bodies; chip descriptions are small.
const maxBodyBytes = 8 << 20

// testEvalHook, when set, runs inside every synchronous evaluation
// before the models are invoked; tests use it to stall requests (for
// admission and drain tests) or to inject guard-classified failures. A
// non-nil return replaces the evaluation's outcome. Atomic because an
// abandoned (timed-out) evaluation goroutine may still be around when a
// test swaps the hook out.
var testEvalHook atomic.Pointer[func(cfg *chip.Config) error]

// handleEvaluate serves POST /v1/evaluate: one synchronous chip
// synthesis plus report. The body is either the native EvaluateRequest
// JSON or, with an XML content type, a McPAT-style XML document.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	// Admission control: never queue synchronous work. A saturated
	// semaphore sheds the request immediately so the client can retry
	// against a less-loaded replica instead of stacking latency here.
	select {
	case s.evalSem <- struct{}{}:
		defer func() { <-s.evalSem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			&APIError{Kind: kindOverloaded, Message: "evaluation capacity saturated; retry"})
		return
	}

	req, aerr := decodeEvaluateRequest(r)
	if aerr != nil {
		writeError(w, http.StatusBadRequest, aerr)
		return
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	// The models are CPU-bound and cannot observe a context, so run the
	// evaluation in a child goroutine and abandon it on deadline - the
	// same containment strategy the DSE engine uses per candidate.
	type out struct {
		resp *EvaluateResponse
		err  error
	}
	ch := make(chan out, 1)
	go func() {
		resp, err := evaluateOnce(req)
		ch <- out{resp, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			writeModelError(w, o.err)
			return
		}
		writeJSON(w, http.StatusOK, o.resp)
	case <-ctx.Done():
		writeModelError(w, ctx.Err())
	}
}

// decodeEvaluateRequest parses the request body in either accepted
// representation.
func decodeEvaluateRequest(r *http.Request) (*EvaluateRequest, *APIError) {
	body := http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "xml") {
		root, err := config.Parse(body)
		if err != nil {
			return nil, &APIError{Kind: kindBadRequest, Message: fmt.Sprintf("parse XML: %v", err)}
		}
		cfg, err := config.ToChipConfig(root)
		if err != nil {
			return nil, &APIError{Kind: kindBadRequest, Message: fmt.Sprintf("map XML: %v", err)}
		}
		return &EvaluateRequest{Config: &cfg, Stats: config.ToStats(root)}, nil
	}
	var req EvaluateRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return nil, &APIError{Kind: kindBadRequest, Message: fmt.Sprintf("parse JSON: %v", err)}
	}
	if req.Preset == "" && req.Config == nil {
		return nil, &APIError{Kind: kindBadRequest, Message: "one of preset or config is required"}
	}
	return &req, nil
}

// evaluateOnce resolves the chip configuration, synthesizes it, and
// builds the response. Every error carries a guard kind.
func evaluateOnce(req *EvaluateRequest) (*EvaluateResponse, error) {
	cfg := req.Config
	if req.Preset != "" {
		p, err := presets.ByName(req.Preset)
		if err != nil {
			return nil, guard.Configf("evaluate", "unknown preset %q", req.Preset)
		}
		cfg = &p.Config
	}
	if hook := testEvalHook.Load(); hook != nil {
		if err := (*hook)(cfg); err != nil {
			return nil, err
		}
	}
	proc, err := chip.New(*cfg)
	if err != nil {
		return nil, err
	}
	rep, ds, err := proc.Check(req.Stats)
	if err != nil {
		return nil, err
	}
	if dErr := ds.Err(); dErr != nil {
		return nil, dErr
	}
	resp := &EvaluateResponse{
		Name:    cfg.Name,
		NM:      cfg.NM,
		ClockHz: cfg.ClockHz,
		TDPW:    rep.Peak(),
		AreaMM2: rep.Area * 1e6,
		Report:  rep,
	}
	if rep.RuntimeDynamic > 0 {
		resp.RuntimeW = rep.Runtime()
	}
	return resp, nil
}

// handleDSESubmit serves POST /v1/dse: validate, enqueue, 202.
func (s *Server) handleDSESubmit(w http.ResponseWriter, r *http.Request) {
	var req DSERequest
	body := http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest,
			&APIError{Kind: kindBadRequest, Message: fmt.Sprintf("parse JSON: %v", err)})
		return
	}
	st, err := s.jobs.submit(&req)
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests,
			&APIError{Kind: kindOverloaded, Message: "job queue full; retry"})
		return
	case err != nil:
		writeError(w, http.StatusBadRequest,
			&APIError{Kind: kindBadRequest, Message: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// handleJobGet serves GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			&APIError{Kind: kindNotFound, Message: fmt.Sprintf("no job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobList serves GET /v1/jobs: summaries, newest first.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

// handleJobCancel serves DELETE /v1/jobs/{id}: request cancellation and
// return the (possibly already terminal) status snapshot. Cancellation
// is asynchronous - poll the job until it reports a terminal state with
// the partial result.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.jobs.requestCancel(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			&APIError{Kind: kindNotFound, Message: fmt.Sprintf("no job %q", id)})
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleHealthz serves GET /healthz. A draining server answers 503 so
// load balancers stop routing to it while in-flight work flushes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves GET /metrics as a JSON snapshot of the
// expvar-style counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.snapshot())
}
