// Package serve is the HTTP evaluation service layered on the modeling
// engine: mcpatd's handlers, job store, admission control, metrics, and
// graceful shutdown. It exposes synchronous single-chip evaluation
// (POST /v1/evaluate, native Config JSON or McPAT-style XML), batched
// evaluation sharing one warm cache generation (POST /v1/batch),
// asynchronous design-space exploration as cancellable jobs
// (POST /v1/dse, GET|DELETE /v1/jobs/{id}), and the operational
// endpoints GET /healthz and GET /metrics. With Config.JournalPath set,
// accepted jobs are journaled and recovered across restarts.
//
// The service reuses the engine's hardening instead of duplicating it:
// the guard error taxonomy maps onto HTTP statuses (config 400,
// infeasible and model-domain 422, internal 500, each with the
// component path in the structured error body), sweeps run on the
// explore worker pool under per-job contexts, and a semaphore plus a
// bounded job queue shed overload with 429 rather than queueing
// unboundedly.
package serve

import (
	"context"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcpat/internal/distrib"
	"mcpat/internal/explore"
)

// Config tunes the server. The zero value selects the documented
// defaults.
type Config struct {
	// MaxInFlight bounds concurrent synchronous evaluations
	// (POST /v1/evaluate); excess requests are shed with 429 and
	// Retry-After rather than queued. <= 0 selects GOMAXPROCS.
	MaxInFlight int

	// RequestTimeout is the per-request deadline of synchronous
	// evaluations; a request exceeding it gets 504 and its evaluation is
	// abandoned. 0 selects 60s; negative disables the deadline.
	RequestTimeout time.Duration

	// JobWorkers bounds concurrently running DSE jobs (each job runs its
	// own candidate-level worker pool). <= 0 selects 2.
	JobWorkers int

	// JobQueueDepth bounds jobs waiting to start; submissions beyond it
	// are shed with 429. <= 0 selects 16.
	JobQueueDepth int

	// JobRetention caps terminal jobs kept for polling before the oldest
	// are evicted. <= 0 selects 64.
	JobRetention int

	// JournalPath, when non-empty, makes accepted DSE jobs durable: each
	// submission is appended (fsynced) to this JSONL file and marked
	// terminal on completion, and New replays the file so jobs that were
	// queued or running when the previous process died are re-run with
	// their original ids. An unusable path degrades to a non-durable
	// server with a logged warning — it never prevents startup.
	JournalPath string

	// WorkerMode enables POST /v1/dse/shard, the coordinator-facing
	// shard evaluation endpoint (mcpatd -worker). Off by default: a
	// public evaluation server should not expose compute that bypasses
	// the job queue.
	WorkerMode bool

	// RemoteWorkers lists mcpatd -worker base URLs. When non-empty,
	// exhaustive DSE jobs are coordinated across them (plus the local
	// engine) by internal/distrib instead of running single-process;
	// coordinator counters appear under "distrib" in GET /metrics.
	RemoteWorkers []string

	// Logf, when non-nil, receives one line per completed request and
	// per lifecycle event (Printf-style).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 16
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the mcpatd HTTP service. Create with New, mount Handler on
// an http.Server, and call Shutdown to drain.
type Server struct {
	cfg     Config
	metrics *metrics
	jobs    *jobStore
	journal *journal
	mux     *http.ServeMux

	// evalSem is the admission semaphore of synchronous evaluations.
	evalSem chan struct{}

	// baseCtx parents every job; cancelBase aborts them all on drain.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	draining atomic.Bool
	inflight sync.WaitGroup
}

// New builds a ready-to-serve Server. When cfg.JournalPath is set, jobs
// journaled as live by a previous process are already re-enqueued when
// New returns — mount the handler afterwards and recovery is invisible
// to clients beyond their jobs still existing.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := newMetrics()

	var jl *journal
	var recovered []recoveredJob
	if cfg.JournalPath != "" {
		var err error
		jl, recovered, err = openJournal(cfg.JournalPath, cfg.Logf)
		if err != nil {
			// Durability is an upgrade, not a precondition: a bad journal
			// path must not keep the evaluation service down.
			cfg.Logf("mcpatd: warning: job journal unavailable, running without durability: %v", err)
			jl = nil
		}
	}

	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		metrics:    m,
		journal:    jl,
		jobs:       newJobStore(baseCtx, cfg.JobWorkers, cfg.JobQueueDepth, cfg.JobRetention, m, jl),
		evalSem:    make(chan struct{}, cfg.MaxInFlight),
		baseCtx:    baseCtx,
		cancelBase: cancel,
	}
	if len(cfg.RemoteWorkers) > 0 {
		// Exhaustive DSE jobs fan out across the configured workers;
		// everything else (pareto search, which is not shardable) keeps
		// the single-process path. The coordinator metrics instance is
		// long-lived so /metrics aggregates across jobs.
		coord := &distrib.Metrics{}
		m.coord = coord
		serial := s.jobs.runSweep
		s.jobs.runSweep = func(ctx context.Context, j *job) (*explore.Result, error) {
			if j.opts.Search != explore.SearchExhaustive {
				return serial(ctx, j)
			}
			return distrib.Run(ctx, j.params, j.space, j.cons, j.obj, &distrib.Options{
				Remotes:          cfg.RemoteWorkers,
				ShardWorkers:     j.opts.Workers,
				SynthWorkers:     j.opts.SynthWorkers,
				CandidateTimeout: j.opts.CandidateTimeout,
				FrontSize:        j.opts.FrontSize,
				OnProgress:       j.opts.OnProgress,
				OnFrontUpdate:    j.opts.OnFrontUpdate,
				Metrics:          coord,
				Logf:             cfg.Logf,
			})
		}
	}
	for _, rj := range recovered {
		s.jobs.resubmit(rj)
	}
	if len(recovered) > 0 {
		cfg.Logf("mcpatd: recovered %d journaled job(s)", len(recovered))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/dse", s.handleDSESubmit)
	mux.HandleFunc("POST /v1/dse/shard", s.handleDSEShard)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the full middleware-wrapped handler chain.
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// Shutdown drains the server: new requests (except /healthz) are
// refused with 503, every queued and running job is canceled, and the
// call blocks until in-flight requests have flushed and the job workers
// have exited, or until ctx expires. The HTTP listener itself is the
// caller's to close (http.Server.Shutdown) - do that first so no new
// connections arrive, then call this.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.cancelBase()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.jobs.wait()
		close(done)
	}()
	select {
	case <-done:
		// Workers have exited, so no further journal appends: close the
		// handle. Jobs canceled by this drain were deliberately not
		// journaled terminal — the next process re-runs them.
		s.journal.close()
		s.cfg.Logf("mcpatd: drain complete")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// routeLabel normalizes a request path to its route pattern for
// metrics, collapsing job ids.
func routeLabel(r *http.Request) string {
	path := r.URL.Path
	if strings.HasPrefix(path, "/v1/jobs/") {
		path = "/v1/jobs/{id}"
	}
	return r.Method + " " + path
}

// statusRecorder captures the response status for metrics/logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument is the outermost middleware: panic recovery, drain
// refusal, in-flight tracking, metrics, and logging.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()

		s.inflight.Add(1)
		s.metrics.inFlight.Add(1)
		defer func() {
			if p := recover(); p != nil {
				// Handlers sit above the guard.Recover boundaries of the
				// models, so a panic here is a service bug; contain it per
				// request all the same.
				s.cfg.Logf("mcpatd: panic serving %s: %v", route, p)
				if rec.status == 0 {
					writeError(rec, http.StatusInternalServerError,
						&APIError{Kind: kindInternal, Message: "internal server error"})
				}
			}
			dur := time.Since(start)
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			s.metrics.observe(route, strconv.Itoa(rec.status), dur)
			s.metrics.inFlight.Add(-1)
			s.inflight.Done()
			s.cfg.Logf("mcpatd: %s -> %d (%s)", route, rec.status, dur.Round(time.Microsecond))
		}()

		// During drain only /healthz stays reachable, so load balancers
		// can watch the server report itself unready.
		if s.draining.Load() && r.URL.Path != "/healthz" {
			writeError(rec, http.StatusServiceUnavailable,
				&APIError{Kind: kindDraining, Message: "server is draining"})
			return
		}
		next.ServeHTTP(rec, r)
	})
}
