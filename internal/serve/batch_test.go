package serve

import (
	"net/http"
	"reflect"
	"testing"

	"mcpat/internal/persist"
)

func TestBatchEvaluate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cfg := tinyChip()
	bad := cfg
	bad.NM = 3 // outside the supported tech range

	resp, body := doJSON(t, "POST", ts.URL+"/v1/batch", BatchRequest{
		Items: []EvaluateRequest{
			{Config: &cfg},
			{Config: &bad},
			{}, // neither preset nor config
			{Config: &cfg},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	br := decode[BatchResponse](t, body)
	if br.Succeeded != 2 || br.Failed != 2 || len(br.Items) != 4 {
		t.Fatalf("succeeded=%d failed=%d items=%d, want 2/2/4", br.Succeeded, br.Failed, len(br.Items))
	}
	for i, item := range br.Items {
		if item.Index != i {
			t.Errorf("item %d carries index %d", i, item.Index)
		}
	}
	if br.Items[0].Result == nil || br.Items[3].Result == nil {
		t.Fatal("good items missing results")
	}
	if !reflect.DeepEqual(br.Items[0].Result, br.Items[3].Result) {
		t.Error("identical items produced different results")
	}
	if br.Items[1].Error == nil || br.Items[2].Error == nil {
		t.Fatal("bad items missing errors")
	}
	if br.Items[2].Error.Kind != kindBadRequest {
		t.Errorf("empty item: want bad_request, got %+v", br.Items[2].Error)
	}

	// The batch result matches a single evaluation of the same config.
	resp, single := doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{Config: &cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single evaluate: %d", resp.StatusCode)
	}
	if !reflect.DeepEqual(*br.Items[0].Result, decode[EvaluateResponse](t, single)) {
		t.Error("batch item result differs from single /v1/evaluate")
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name string
		body any
	}{
		{"empty items", BatchRequest{}},
		{"malformed JSON", "not json"},
	} {
		resp, body := doJSON(t, "POST", ts.URL+"/v1/batch", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", tc.name, resp.StatusCode, body)
		}
	}
}

func TestBatchReportsDiskTier(t *testing.T) {
	store, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	prev := persist.SetDefault(store)
	t.Cleanup(func() {
		persist.SetDefault(prev)
		store.Close()
	})

	_, ts := newTestServer(t, Config{})
	cfg := tinyChip()
	resp, body := doJSON(t, "POST", ts.URL+"/v1/batch", BatchRequest{
		Items: []EvaluateRequest{{Config: &cfg}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	br := decode[BatchResponse](t, body)
	if !br.Disk.Enabled {
		t.Error("batch with a configured store must report disk_cache.enabled")
	}

	// /metrics mirrors the disk tier.
	resp, body = doJSON(t, "GET", ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if snap := decode[MetricsSnapshot](t, body); !snap.Disk.Enabled {
		t.Error("metrics must report the disk tier as enabled")
	}
}
