package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcpat/internal/distrib"
)

func shardBody(t *testing.T, req distrib.ShardRequest) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func shardTestRequest() distrib.ShardRequest {
	return distrib.ShardRequest{
		Cores:       []int{2, 4, 8},
		L2PerCoreKB: []int{64, 128},
		Start:       1,
		End:         4,
	}
}

func TestShardEndpointRequiresWorkerMode(t *testing.T) {
	srv := New(Config{}) // worker mode off
	defer srv.Shutdown(context.Background())
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/v1/dse/shard", shardBody(t, shardTestRequest())))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "worker mode disabled") {
		t.Errorf("body lacks the worker-mode hint: %s", rr.Body.String())
	}
}

func TestShardEndpointRejectsBadRangeBeforeStreaming(t *testing.T) {
	srv := New(Config{WorkerMode: true})
	defer srv.Shutdown(context.Background())
	req := shardTestRequest()
	req.End = 1000 // out of range for a 6-point space
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/v1/dse/shard", shardBody(t, req)))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body: %s)", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); strings.Contains(ct, "ndjson") {
		t.Errorf("setup error must not start the NDJSON stream (Content-Type %s)", ct)
	}
}

func TestShardEndpointStreamsProgressThenResult(t *testing.T) {
	srv := New(Config{WorkerMode: true})
	defer srv.Shutdown(context.Background())
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/v1/dse/shard", shardBody(t, shardTestRequest())))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (body: %s)", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}

	dec := json.NewDecoder(rr.Body)
	var frames []distrib.Frame
	for dec.More() {
		var f distrib.Frame
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("decode frame %d: %v", len(frames), err)
		}
		frames = append(frames, f)
	}
	if len(frames) == 0 {
		t.Fatal("no frames streamed")
	}
	last := frames[len(frames)-1]
	if last.Type != "result" || last.Result == nil {
		t.Fatalf("last frame is %q, want result", last.Type)
	}
	res := last.Result
	if res.Start != 1 || res.End != 4 || len(res.Candidates) != 3 {
		t.Fatalf("result covers [%d,%d) with %d candidates, want [1,4) with 3", res.Start, res.End, len(res.Candidates))
	}
	for i, c := range res.Candidates {
		if c.Index < 1 || c.Index >= 4 {
			t.Errorf("candidate %d has global index %d outside [1,4)", i, c.Index)
		}
	}
	prev := 0
	for _, f := range frames[:len(frames)-1] {
		if f.Type != "progress" {
			t.Fatalf("interior frame is %q, want progress", f.Type)
		}
		if f.Done <= prev || f.Done > f.Total || f.Total != 3 {
			t.Fatalf("progress frame out of order or range: %+v after %d", f, prev)
		}
		prev = f.Done
	}

	snap := srv.metrics.snapshot()
	if snap.Shard.Served != 1 || snap.Shard.Candidates != 3 || snap.Shard.Failed != 0 {
		t.Errorf("shard metrics = %+v, want served=1 candidates=3 failed=0", snap.Shard)
	}
}

// TestDSEJobFansOutToRemoteWorkers wires a worker-mode server behind a
// coordinator-mode server and submits a normal /v1/dse job: the job
// must complete with the coordinator metrics populated in /metrics.
func TestDSEJobFansOutToRemoteWorkers(t *testing.T) {
	workerSrv := New(Config{WorkerMode: true})
	workerTS := httptest.NewServer(workerSrv.Handler())
	defer func() {
		workerTS.Close()
		workerSrv.Shutdown(context.Background())
	}()

	coordSrv := New(Config{RemoteWorkers: []string{workerTS.URL}})
	defer coordSrv.Shutdown(context.Background())

	body := `{"cores":[2,4,8],"l2_per_core_kb":[64,128]}`
	rr := httptest.NewRecorder()
	coordSrv.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/v1/dse", strings.NewReader(body)))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202 (body: %s)", rr.Code, rr.Body.String())
	}
	var st JobStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}

	var final JobStatus
	waitFor(t, 30*time.Second, func() bool {
		rr := httptest.NewRecorder()
		coordSrv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+st.ID, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("poll status %d", rr.Code)
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &final); err != nil {
			t.Fatal(err)
		}
		return final.State.Terminal()
	})
	if final.State != JobDone {
		t.Fatalf("job state %s, want done (error: %+v)", final.State, final.Error)
	}
	if final.Result == nil || len(final.Result.Candidates) != 6 {
		t.Fatalf("job result missing or wrong size: %+v", final.Result)
	}

	snap := coordSrv.metrics.snapshot()
	if snap.Distrib == nil || snap.Distrib.ShardsDispatched == 0 {
		t.Fatalf("coordinator metrics absent from snapshot: %+v", snap.Distrib)
	}
	wsnap := workerSrv.metrics.snapshot()
	if wsnap.Shard.Served == 0 {
		t.Error("worker served no shards")
	}
}
