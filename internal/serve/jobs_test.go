package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mcpat/internal/chip"
	"mcpat/internal/explore"
)

// stubSweep replaces the job store's sweep runner with a script: it
// signals when a sweep starts and blocks until released or canceled,
// returning a partial result with the context error - exactly the
// engine's cancellation contract.
type stubSweep struct {
	started     chan string   // receives the job id as each sweep starts
	release     chan struct{} // releaseAll lets sweeps finish cleanly
	releaseOnce sync.Once
}

func (s *stubSweep) releaseAll() { s.releaseOnce.Do(func() { close(s.release) }) }

func installStubSweep(t *testing.T, s *Server) *stubSweep {
	t.Helper()
	st := &stubSweep{started: make(chan string, 16), release: make(chan struct{})}
	s.jobs.runSweep = func(ctx context.Context, j *job) (*explore.Result, error) {
		st.started <- j.status.ID
		select {
		case <-st.release:
			return &explore.Result{Evaluated: 1, Feasible: 1}, nil
		case <-ctx.Done():
			return &explore.Result{Evaluated: 1}, ctx.Err()
		}
	}
	return st
}

// TestJobCancelViaDelete submits a stalled sweep, cancels it over HTTP,
// and checks it reaches the canceled state with its partial result.
func TestJobCancelViaDelete(t *testing.T) {
	s, ts := newTestServer(t, Config{JobWorkers: 1})
	stub := installStubSweep(t, s)
	defer stub.releaseAll()

	resp, body := doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{Cores: []int{2}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	id := decode[JobStatus](t, body).ID
	<-stub.started // the sweep is running and blocked

	resp, body = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}

	final := pollJob(t, ts.URL, id, 10*time.Second)
	if final.State != JobCanceled {
		t.Fatalf("want canceled, got %+v", final)
	}
	if final.Error == nil || final.Error.Kind != kindCanceled {
		t.Errorf("canceled job must carry a canceled error: %+v", final.Error)
	}
	if final.Result == nil || final.Result.Evaluated != 1 {
		t.Errorf("partial result must survive cancellation: %+v", final.Result)
	}
}

// TestJobCancelWhileQueued cancels a job before any worker picks it up.
func TestJobCancelWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{JobWorkers: 1, JobQueueDepth: 4})
	stub := installStubSweep(t, s)
	defer stub.releaseAll()

	// First job occupies the only worker.
	_, body := doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{Cores: []int{2}})
	blocked := decode[JobStatus](t, body).ID
	<-stub.started

	// Second job sits in the queue.
	_, body = doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{Cores: []int{4}})
	queued := decode[JobStatus](t, body).ID

	resp, body := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+queued, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued: %d %s", resp.StatusCode, body)
	}
	st := decode[JobStatus](t, body)
	if st.State != JobCanceled {
		t.Fatalf("a queued job cancels immediately, got %+v", st)
	}

	// The canceled job must never start; release the worker and make
	// sure only the first job ran.
	stub.releaseAll()
	if final := pollJob(t, ts.URL, blocked, 10*time.Second); final.State != JobDone {
		t.Fatalf("blocked job should finish after release: %+v", final)
	}
	select {
	case id := <-stub.started:
		t.Fatalf("canceled queued job %s must not start", id)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestJobQueueSaturation fills the worker and the queue, then checks
// the next submission is shed with 429 + Retry-After.
func TestJobQueueSaturation(t *testing.T) {
	s, ts := newTestServer(t, Config{JobWorkers: 1, JobQueueDepth: 1})
	stub := installStubSweep(t, s)
	defer stub.releaseAll()

	_, body := doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{Cores: []int{2}})
	running := decode[JobStatus](t, body).ID
	<-stub.started // worker busy

	resp, _ := doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{Cores: []int{4}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue slot should admit the second job: %d", resp.StatusCode)
	}

	resp, body = doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{Cores: []int{8}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue must shed with 429, got %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	if decode[ErrorBody](t, body).Error.Kind != kindOverloaded {
		t.Errorf("want kind overloaded: %s", body)
	}
	// A shed job must not be pollable.
	if resp, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+running, nil); resp.StatusCode != 200 {
		t.Errorf("admitted job must remain pollable: %d", resp.StatusCode)
	}
}

// TestGracefulDrain starts a long request, begins shutdown, and checks
// that (a) new requests are refused, (b) the in-flight request still
// completes successfully, and (c) running jobs are canceled.
func TestGracefulDrain(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	withServeEvalHook(t, func(cfg *chip.Config) error {
		entered <- struct{}{}
		<-release
		return nil
	})

	s := New(Config{MaxInFlight: 2, JobWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	stub := installStubSweep(t, s)
	defer stub.releaseAll()

	// A job is running...
	_, body := doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{Cores: []int{2}})
	jobID := decode[JobStatus](t, body).ID
	<-stub.started

	// ...and an evaluation is in flight.
	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		cfg := tinyChip()
		resp, body := doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{Config: &cfg})
		inflight <- result{resp.StatusCode, body}
	}()
	<-entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Draining: new work is refused, health reports unready.
	waitFor(t, 5*time.Second, s.Draining)
	cfg := tinyChip()
	resp, body := doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{Config: &cfg})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server must refuse new work with 503, got %d: %s", resp.StatusCode, body)
	}
	if decode[ErrorBody](t, body).Error.Kind != kindDraining {
		t.Errorf("want kind draining: %s", body)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz must report draining with 503, got %d", resp.StatusCode)
	}

	// The in-flight request completes once the models return.
	close(release)
	r := <-inflight
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request must flush during drain: %d %s", r.status, r.body)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}

	// The running job was canceled by the drain, its partial state kept.
	st, ok := s.jobs.get(jobID)
	if !ok || st.State != JobCanceled {
		t.Fatalf("drain must cancel running jobs: %+v", st)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsAcrossRequests scripts a request sequence and checks the
// counters move accordingly.
func TestMetricsAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	snap := func() MetricsSnapshot {
		resp, body := doJSON(t, "GET", ts.URL+"/metrics", nil)
		if resp.StatusCode != 200 {
			t.Fatalf("metrics: %d", resp.StatusCode)
		}
		return decode[MetricsSnapshot](t, body)
	}
	before := snap()

	// Script: 2 healthz, 1 good evaluate, 1 bad evaluate, 1 sweep job.
	doJSON(t, "GET", ts.URL+"/healthz", nil)
	doJSON(t, "GET", ts.URL+"/healthz", nil)
	cfg := tinyChip()
	doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{Config: &cfg})
	doJSON(t, "POST", ts.URL+"/v1/evaluate", EvaluateRequest{})
	_, body := doJSON(t, "POST", ts.URL+"/v1/dse", DSERequest{
		Cores: []int{2}, L2PerCoreKB: []int{64}, Fabrics: []string{"crossbar"},
	})
	pollJob(t, ts.URL, decode[JobStatus](t, body).ID, 60*time.Second)

	after := snap()
	delta := func(route, status string) uint64 {
		return after.Requests[route][status] - before.Requests[route][status]
	}
	if got := delta("GET /healthz", "200"); got != 2 {
		t.Errorf("healthz 200 delta = %d, want 2", got)
	}
	if got := delta("POST /v1/evaluate", "200"); got != 1 {
		t.Errorf("evaluate 200 delta = %d, want 1", got)
	}
	if got := delta("POST /v1/evaluate", "400"); got != 1 {
		t.Errorf("evaluate 400 delta = %d, want 1", got)
	}
	if got := delta("POST /v1/dse", "202"); got != 1 {
		t.Errorf("dse 202 delta = %d, want 1", got)
	}
	if after.Jobs.Submitted != before.Jobs.Submitted+1 || after.Jobs.Done != before.Jobs.Done+1 {
		t.Errorf("job counters did not advance: %+v -> %+v", before.Jobs, after.Jobs)
	}
	// The sweep synthesized arrays, so the cache must have seen traffic.
	cacheMoved := after.Cache.Misses > before.Cache.Misses || after.Cache.Hits > before.Cache.Hits
	if !cacheMoved {
		t.Errorf("synthesis cache counters did not move: %+v -> %+v", before.Cache, after.Cache)
	}
	// Latency histograms recorded the script.
	lat := after.Latency["POST /v1/evaluate"]
	if lat.Count < 2 || lat.Buckets["+Inf"] < lat.Count {
		t.Errorf("latency histogram inconsistent: %+v", lat)
	}
	// The /metrics request itself is the only one in flight.
	if after.InFlight != 1 {
		t.Errorf("in-flight gauge = %d, want 1 (the metrics request)", after.InFlight)
	}
}
