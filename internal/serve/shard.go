package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"mcpat/internal/distrib"
	"mcpat/internal/explore"
)

// maxShardBodyBytes bounds POST /v1/dse/shard bodies; a shard request
// is a sweep description plus two integers, so this is generous.
const maxShardBodyBytes = 1 << 20

// handleDSEShard serves POST /v1/dse/shard: evaluate one contiguous
// enumeration range of an exhaustive DSE sweep and stream the outcome
// as NDJSON — interleaved {"type":"progress"} frames while candidates
// evaluate, then exactly one terminal {"type":"result"} or
// {"type":"error"} frame. Setup errors (bad JSON, bad space, range out
// of bounds) arrive as a plain JSON error body with the guard
// classification before any streaming begins.
//
// The endpoint only answers when the server runs in worker mode
// (mcpatd -worker): shard evaluation is a coordinator-facing internal
// protocol, not a public API, and a default server should not expose
// compute that bypasses the job queue.
func (s *Server) handleDSEShard(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.WorkerMode {
		writeError(w, http.StatusNotFound,
			&APIError{Kind: kindBadRequest, Message: "worker mode disabled (start mcpatd -worker)"})
		return
	}

	// Shards run whole sub-sweeps, so they compete with /v1/evaluate
	// for the admission slots; shedding here makes the coordinator
	// retry elsewhere instead of queueing unboundedly.
	select {
	case s.evalSem <- struct{}{}:
		defer func() { <-s.evalSem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			&APIError{Kind: kindOverloaded, Message: "evaluation capacity saturated; retry"})
		return
	}

	var req distrib.ShardRequest
	body := http.MaxBytesReader(nil, r.Body, maxShardBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest,
			&APIError{Kind: kindBadRequest, Message: fmt.Sprintf("parse JSON: %v", err)})
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeModelError(w, err)
		return
	}
	// Validate the range against the space before committing to the
	// stream, so out-of-bounds shards fail with a proper 400 instead of
	// an in-band frame.
	total, err := explore.PlannedEvaluations(spec.Space,
		&explore.Options{Shard: &explore.ShardRange{Start: spec.Start, End: spec.End}})
	if err != nil {
		writeModelError(w, err)
		return
	}

	s.metrics.shardsServed.Add(1)
	// Announce the shard before streaming: the completed-request log
	// line only appears when the stream ends, and an operator watching a
	// worker wants to see what it is working on while it works.
	s.cfg.Logf("mcpatd: shard [%d,%d) accepted (%d candidates)", spec.Start, spec.End, total)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	writeFrame := func(f distrib.Frame) error {
		b, err := json.Marshal(f)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	// Progress frames are paced so a big shard streams ~64 updates
	// rather than one per candidate; the final candidate always
	// reports, so the coordinator's tracker converges exactly.
	stride := total / 64
	if stride < 1 {
		stride = 1
	}
	// Shards are long-lived by design; liveness comes from progress
	// frames and the client connection (r.Context()), not from the
	// synchronous RequestTimeout.
	res, err := distrib.EvalShard(r.Context(), spec, func(done, total int) {
		if done%stride == 0 || done == total {
			_ = writeFrame(distrib.Frame{Type: "progress", Done: done, Total: total})
		}
	})
	if err != nil {
		s.metrics.shardsFailed.Add(1)
		_ = writeFrame(distrib.Frame{Type: "error", Error: distrib.WireError(err)})
		return
	}
	s.metrics.shardCandidates.Add(uint64(len(res.Candidates)))
	_ = writeFrame(distrib.Frame{Type: "result", Result: res})
}
