package serve

// POST /v1/batch: evaluate many chip configurations in one request, so
// they share a single warm cache generation — every array and subsystem
// the first item synthesizes is a memory-cache (and, with -cache-dir, a
// disk) hit for the rest. Items are independent: one bad config yields
// a per-item error, never a failed batch.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"mcpat/internal/persist"
)

// maxBatchItems bounds one batch; larger workloads belong in /v1/dse
// jobs or several batches.
const maxBatchItems = 1024

// BatchRequest is the JSON body of POST /v1/batch.
type BatchRequest struct {
	// Items are evaluated with the same semantics as POST /v1/evaluate.
	Items []EvaluateRequest `json:"items"`
	// Workers bounds concurrent item evaluations within the batch;
	// <= 0 selects the server's MaxInFlight.
	Workers int `json:"workers,omitempty"`
}

// BatchItemResult is one item's outcome, in input order. Exactly one of
// Result and Error is set.
type BatchItemResult struct {
	Index  int               `json:"index"`
	Result *EvaluateResponse `json:"result,omitempty"`
	Error  *APIError         `json:"error,omitempty"`
}

// BatchResponse is the 200 body of POST /v1/batch. The batch succeeds
// as a whole (200) even when individual items fail; inspect Failed.
type BatchResponse struct {
	Items     []BatchItemResult `json:"items"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
	// Disk reports the persistent cache tier's activity during this
	// batch — the warm-sharing the endpoint exists for.
	Disk DiskCacheStatsJSON `json:"disk_cache"`
}

// handleBatch serves POST /v1/batch. Admission takes one synchronous
// evaluation slot up front (shed with 429 when saturated, like
// /v1/evaluate); additional intra-batch workers then acquire further
// slots as they free up, so a batch can use idle capacity but never
// push total evaluation concurrency past MaxInFlight.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	select {
	case s.evalSem <- struct{}{}:
		defer func() { <-s.evalSem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			&APIError{Kind: kindOverloaded, Message: "evaluation capacity saturated; retry"})
		return
	}

	var req BatchRequest
	body := http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest,
			&APIError{Kind: kindBadRequest, Message: fmt.Sprintf("parse JSON: %v", err)})
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest,
			&APIError{Kind: kindBadRequest, Message: "items is required and must be non-empty"})
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest,
			&APIError{Kind: kindBadRequest,
				Message: fmt.Sprintf("batch of %d exceeds the %d-item limit", len(req.Items), maxBatchItems)})
		return
	}

	workers := req.Workers
	if workers <= 0 || workers > s.cfg.MaxInFlight {
		workers = s.cfg.MaxInFlight
	}
	if workers > len(req.Items) {
		workers = len(req.Items)
	}

	diskBefore := persist.DefaultStats()
	resp := &BatchResponse{Items: make([]BatchItemResult, len(req.Items))}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	ctx := r.Context()
	for w := 0; w < workers; w++ {
		first := w == 0 // the admission slot already held above
		wg.Add(1)
		go func(holdsSlot bool) {
			defer wg.Done()
			for i := range idxCh {
				if !holdsSlot {
					select {
					case s.evalSem <- struct{}{}:
					case <-ctx.Done():
						resp.Items[i] = batchCanceled(i)
						continue
					}
				}
				resp.Items[i] = s.evalBatchItem(ctx, i, &req.Items[i])
				if !holdsSlot {
					<-s.evalSem
				}
			}
		}(first)
	}
	for i := range req.Items {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			// Mark the rest canceled; workers finish what they hold.
			for j := i; j < len(req.Items); j++ {
				select {
				case idxCh <- j:
				default:
					resp.Items[j] = batchCanceled(j)
				}
			}
			close(idxCh)
			wg.Wait()
			writeModelError(w, ctx.Err())
			return
		}
	}
	close(idxCh)
	wg.Wait()

	for i := range resp.Items {
		if resp.Items[i].Error == nil {
			resp.Succeeded++
		} else {
			resp.Failed++
		}
	}
	resp.Disk = newDiskCacheStatsJSON(persist.DefaultStats().Delta(diskBefore))
	writeJSON(w, http.StatusOK, resp)
}

func batchCanceled(i int) BatchItemResult {
	return BatchItemResult{Index: i, Error: &APIError{Kind: kindCanceled, Message: "batch canceled"}}
}

// evalBatchItem runs one item under the per-request timeout, reusing
// the single-evaluation containment (abandon on deadline).
func (s *Server) evalBatchItem(ctx context.Context, i int, item *EvaluateRequest) BatchItemResult {
	if item.Preset == "" && item.Config == nil {
		return BatchItemResult{Index: i,
			Error: &APIError{Kind: kindBadRequest, Message: "one of preset or config is required"}}
	}
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	type out struct {
		resp *EvaluateResponse
		err  error
	}
	ch := make(chan out, 1)
	go func() {
		resp, err := evaluateOnce(item)
		ch <- out{resp, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			return BatchItemResult{Index: i, Error: apiError(o.err)}
		}
		return BatchItemResult{Index: i, Result: o.resp}
	case <-ctx.Done():
		return BatchItemResult{Index: i, Error: apiError(ctx.Err())}
	}
}
