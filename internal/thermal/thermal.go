// Package thermal closes the power-temperature feedback loop around the
// chip model. Subthreshold leakage grows exponentially with junction
// temperature, and junction temperature grows with dissipated power
// through the package's thermal resistance - so the true operating point
// is a fixed point of the two models. McPAT takes temperature as an input;
// this package iterates that input until it is self-consistent, the way
// users pair McPAT with a thermal model.
//
// The package model is the standard lumped resistance:
//
//	Tj = Tambient + P * Rtheta(junction->ambient)
//
// which is accurate for steady-state TDP analysis (transient thermal needs
// a grid model and is out of scope).
package thermal

import (
	"fmt"
	"math"

	"mcpat/internal/chip"
)

// PackageSpec describes the cooling solution.
type PackageSpec struct {
	// AmbientK is the ambient (or case) temperature in kelvin.
	AmbientK float64
	// RthetaJA is the junction-to-ambient thermal resistance in K/W.
	// Typical values: ~0.25 K/W for a server heatsink with forced air,
	// ~1.5 K/W for a fanless embedded part.
	RthetaJA float64
	// MaxTjK optionally flags operating points beyond a junction limit
	// (0 disables the check; 378 K = 105 C is a common limit).
	MaxTjK float64
}

// Result is a converged operating point.
type Result struct {
	TjK        float64 // converged junction temperature
	TDP        float64 // W at the converged temperature
	Leakage    float64 // W at the converged temperature
	Iterations int
	Converged  bool
	OverLimit  bool // TjK exceeds PackageSpec.MaxTjK
}

// Solve iterates chip synthesis and the package model to the
// self-consistent junction temperature. The chip configuration's
// Temperature field is overridden each iteration.
func Solve(cfg chip.Config, pkg PackageSpec) (*Result, error) {
	if pkg.AmbientK <= 0 {
		pkg.AmbientK = 318 // 45 C ambient inside a chassis
	}
	if pkg.RthetaJA <= 0 {
		return nil, fmt.Errorf("thermal: RthetaJA must be positive")
	}

	tj := pkg.AmbientK + 20 // initial guess
	res := &Result{}
	for iter := 0; iter < 50; iter++ {
		res.Iterations = iter + 1
		cfg.Temperature = tj
		p, err := chip.New(cfg)
		if err != nil {
			return nil, err
		}
		rep := p.Report(nil)
		power := rep.Peak()
		next := pkg.AmbientK + power*pkg.RthetaJA

		res.TDP = power
		res.Leakage = rep.Leakage()
		if math.Abs(next-tj) < 0.1 {
			res.TjK = next
			res.Converged = true
			break
		}
		// Damped update: leakage(T) is convex, undamped iteration can
		// oscillate near thermal runaway.
		tj = 0.5*tj + 0.5*next
		res.TjK = tj
		// Runaway guard: beyond ~450 K the fixed point does not exist
		// for HP silicon; report divergence instead of looping.
		if tj > 450 {
			res.Converged = false
			break
		}
	}
	if pkg.MaxTjK > 0 && res.TjK > pkg.MaxTjK {
		res.OverLimit = true
	}
	return res, nil
}
