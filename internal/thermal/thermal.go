// Package thermal closes the power-temperature feedback loop around the
// chip model. Subthreshold leakage grows exponentially with junction
// temperature, and junction temperature grows with dissipated power
// through the package's thermal resistance - so the true operating point
// is a fixed point of the two models. McPAT takes temperature as an input;
// this package iterates that input until it is self-consistent, the way
// users pair McPAT with a thermal model.
//
// The package model is the standard lumped resistance:
//
//	Tj = Tambient + P * Rtheta(junction->ambient)
//
// which is accurate for steady-state TDP analysis. For transient traces
// the Model type adds per-block lumped RC nodes (floorplan-derived
// spreading resistances plus a single junction-to-ambient time constant);
// the trace engine steps it once per interval.
//
// Since temperature became a Score-time input (chip.Processor.
// SetScoreTemperature), one thermal analysis costs exactly one chip
// synthesis: every iteration of the fixed point — and every interval of
// a closed-loop trace — is a cheap leakage retune over the same
// synthesized parts.
package thermal

import (
	"fmt"
	"math"

	"mcpat/internal/chip"
)

// Package-model defaults, promoted to named constants so callers (and
// tests) share one source of truth with the solver.
const (
	// DefaultAmbientK is the ambient assumed when PackageSpec.AmbientK is
	// zero: 45 C, a typical inside-chassis temperature.
	DefaultAmbientK = 318.0
	// DefaultMaxIterations bounds the fixed-point iteration when
	// PackageSpec.MaxIterations is zero.
	DefaultMaxIterations = 50
	// DefaultInitialGuessOffsetK is the initial junction-over-ambient
	// guess when PackageSpec.InitialGuessOffsetK is zero.
	DefaultInitialGuessOffsetK = 20.0
	// DefaultConvergenceTolK is the |T_next - T| threshold (K) that
	// declares the fixed point converged when PackageSpec.ConvergenceTolK
	// is zero.
	DefaultConvergenceTolK = 0.1
	// RunawayTjK is the divergence guard: beyond this junction
	// temperature the leakage fixed point does not exist for HP silicon,
	// so the solver reports non-convergence instead of looping.
	RunawayTjK = 450.0
	// dampingFactor mixes the previous iterate into the update:
	// leakage(T) is convex, so an undamped iteration can oscillate near
	// thermal runaway.
	dampingFactor = 0.5
)

// PackageSpec describes the cooling solution.
type PackageSpec struct {
	// AmbientK is the ambient (or case) temperature in kelvin
	// (0 selects DefaultAmbientK).
	AmbientK float64
	// RthetaJA is the junction-to-ambient thermal resistance in K/W.
	// Typical values: ~0.25 K/W for a server heatsink with forced air,
	// ~1.5 K/W for a fanless embedded part.
	RthetaJA float64
	// MaxTjK optionally flags operating points beyond a junction limit
	// (0 disables the check; 378 K = 105 C is a common limit).
	MaxTjK float64

	// MaxIterations bounds the fixed-point iteration
	// (0 selects DefaultMaxIterations).
	MaxIterations int
	// InitialGuessOffsetK is the starting junction-over-ambient guess
	// (0 selects DefaultInitialGuessOffsetK).
	InitialGuessOffsetK float64
	// ConvergenceTolK is the residual below which the fixed point is
	// declared converged (0 selects DefaultConvergenceTolK).
	ConvergenceTolK float64

	// TimeConstS is the lumped junction-to-ambient thermal time constant
	// Rtheta*Ctheta (s) used by transient stepping (Model.Step): block
	// temperatures relax toward their steady state with this first-order
	// lag. 0 means quasi-static — every interval jumps straight to the
	// steady-state temperature, which reproduces the Solve fixed point on
	// constant power.
	TimeConstS float64
}

// withDefaults resolves the zero-valued knobs and validates the spec.
func (pkg PackageSpec) withDefaults() (PackageSpec, error) {
	if pkg.RthetaJA <= 0 {
		return pkg, fmt.Errorf("thermal: RthetaJA must be positive")
	}
	if pkg.AmbientK <= 0 {
		pkg.AmbientK = DefaultAmbientK
	}
	if pkg.MaxIterations <= 0 {
		pkg.MaxIterations = DefaultMaxIterations
	}
	if pkg.InitialGuessOffsetK <= 0 {
		pkg.InitialGuessOffsetK = DefaultInitialGuessOffsetK
	}
	if pkg.ConvergenceTolK <= 0 {
		pkg.ConvergenceTolK = DefaultConvergenceTolK
	}
	return pkg, nil
}

// Result is a converged operating point.
type Result struct {
	TjK        float64 // converged junction temperature
	TDP        float64 // W at the converged temperature
	Leakage    float64 // W at the converged temperature
	Iterations int
	Converged  bool
	OverLimit  bool // TjK exceeds PackageSpec.MaxTjK
	// Residuals records |T_next - T| per iteration — the convergence
	// trajectory, exposed so non-convergence is inspectable rather than
	// silently accepted.
	Residuals []float64
}

// Solve finds the self-consistent junction temperature of a chip's TDP
// operating point. The chip is synthesized exactly once; every iteration
// is a Score-time leakage retune (chip.Processor.SetScoreTemperature)
// over the same synthesized parts — the refactor that turned thermal
// iteration cost from O(full re-synthesis) into O(one cheap Score).
func Solve(cfg chip.Config, pkg PackageSpec) (*Result, error) {
	proc, err := chip.New(cfg)
	if err != nil {
		return nil, err
	}
	return SolveProcessor(proc, nil, pkg)
}

// SolveProcessor runs the fixed point over an already-synthesized chip.
// With nil stats the iteration balances TDP (peak) power against the
// package — the classic Solve; with stats it balances runtime power,
// which is the steady state a closed-loop trace converges to on a
// constant workload. The processor's score temperature is left at the
// final iterate.
func SolveProcessor(proc *chip.Processor, stats *chip.Stats, pkg PackageSpec) (*Result, error) {
	pkg, err := pkg.withDefaults()
	if err != nil {
		return nil, err
	}
	tj := pkg.AmbientK + pkg.InitialGuessOffsetK
	res := &Result{}
	for iter := 0; iter < pkg.MaxIterations; iter++ {
		res.Iterations = iter + 1
		proc.SetScoreTemperature(tj)
		rep, err := proc.ReportE(stats)
		if err != nil {
			return nil, err
		}
		power := rep.Peak()
		if stats != nil {
			power = rep.Runtime()
		}
		next := pkg.AmbientK + power*pkg.RthetaJA

		res.TDP = power
		res.Leakage = rep.Leakage()
		res.Residuals = append(res.Residuals, math.Abs(next-tj))
		if math.Abs(next-tj) < pkg.ConvergenceTolK {
			res.TjK = next
			res.Converged = true
			break
		}
		tj = dampingFactor*tj + (1-dampingFactor)*next
		res.TjK = tj
		if tj > RunawayTjK {
			res.Converged = false
			break
		}
	}
	if pkg.MaxTjK > 0 && res.TjK > pkg.MaxTjK {
		res.OverLimit = true
	}
	return res, nil
}

// Block is one lumped node of the transient model: a named region of the
// die with its own junction-to-ambient spreading resistance.
type Block struct {
	Name string
	// RthetaJA is this block's junction-to-ambient resistance (K/W),
	// derived from its share of the die footprint (see SpreadRtheta).
	RthetaJA float64
}

// SpreadThicknessM is the conduction path length heat from a block
// traverses before reaching the package (die thickness plus thermal
// interface, ~0.5 mm). It sets the lateral 45-degree spreading margin
// that bounds small-block resistances in SpreadRtheta.
const SpreadThicknessM = 5e-4

// SpreadRtheta is the area-ratio spreading rule with lateral conduction:
// a block occupying blockArea of a die of dieArea sees the whole-die
// resistance scaled by the inverse of its effective area share, where
// the effective footprint grows by the 45-degree spreading cone through
// the die (a square block of side w spreads to side w + 2*thickness).
// Without the spreading term a tiny hot block (a bus, the clock spine)
// would see a near-infinite constriction resistance the real laterally
// conducting silicon does not exhibit. The result is clamped to at
// least the whole-die resistance; non-positive areas fall back to it.
func SpreadRtheta(rthetaJA, dieArea, blockArea float64) float64 {
	if dieArea <= 0 || blockArea <= 0 {
		return rthetaJA
	}
	side := math.Sqrt(blockArea) + 2*SpreadThicknessM
	effArea := side * side
	if effArea >= dieArea {
		return rthetaJA
	}
	return rthetaJA * dieArea / effArea
}

// Model is the transient lumped thermal network the trace engine steps
// once per interval: one first-order RC node per block, all sharing the
// package's junction-to-ambient time constant (per-block tau_i =
// Rtheta_i*Ctheta_i is area-invariant under the spreading rule, since
// Rtheta_i ~ 1/A_i and Ctheta_i ~ A_i). A Model is not safe for
// concurrent use.
type Model struct {
	pkg    PackageSpec
	blocks []Block
	temps  []float64
}

// NewModel builds the network. blocks may come from a floorplan (one per
// placed subsystem, resistances via SpreadRtheta) or be a single
// whole-die node (see NewDieModel). Initial block temperatures are
// initialTempK, or ambient when zero.
func NewModel(pkg PackageSpec, blocks []Block, initialTempK float64) (*Model, error) {
	pkg, err := pkg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("thermal: model needs at least one block")
	}
	for _, b := range blocks {
		if b.RthetaJA <= 0 {
			return nil, fmt.Errorf("thermal: block %q needs a positive Rtheta", b.Name)
		}
	}
	if initialTempK <= 0 {
		initialTempK = pkg.AmbientK
	}
	m := &Model{pkg: pkg, blocks: blocks, temps: make([]float64, len(blocks))}
	for i := range m.temps {
		m.temps[i] = initialTempK
	}
	return m, nil
}

// NewDieModel is the whole-die fallback: a single lumped node with the
// package resistance — the Model equivalent of the Solve iteration.
func NewDieModel(pkg PackageSpec, initialTempK float64) (*Model, error) {
	return NewModel(pkg, []Block{{Name: "die", RthetaJA: pkg.RthetaJA}}, initialTempK)
}

// Blocks returns the model's block list (shared slice; do not mutate).
func (m *Model) Blocks() []Block { return m.blocks }

// BlockTemps returns the current per-block temperatures in block order
// (shared slice; valid until the next Step).
func (m *Model) BlockTemps() []float64 { return m.temps }

// Ambient returns the resolved ambient temperature (K).
func (m *Model) Ambient() float64 { return m.pkg.AmbientK }

// Step advances the network by dt seconds with the given per-block
// powers (W, in block order) and returns the hotspot temperature — the
// maximum block temperature after the step, which is what feeds back
// into the next interval's leakage retune and the DVFS governor. With a
// zero TimeConstS (or non-positive dt) the step is quasi-static: blocks
// jump to their steady-state temperatures. Step never allocates.
func (m *Model) Step(powers []float64, dt float64) float64 {
	n := len(m.blocks)
	if len(powers) < n {
		n = len(powers)
	}
	decay := 0.0 // fraction of the gap to steady state that remains
	if m.pkg.TimeConstS > 0 && dt > 0 {
		decay = math.Exp(-dt / m.pkg.TimeConstS)
	}
	hot := m.pkg.AmbientK
	for i := 0; i < n; i++ {
		ss := m.pkg.AmbientK + powers[i]*m.blocks[i].RthetaJA
		t := ss + (m.temps[i]-ss)*decay
		m.temps[i] = t
		if t > hot {
			hot = t
		}
	}
	return hot
}

// Hotspot returns the current maximum block temperature without
// advancing the model.
func (m *Model) Hotspot() float64 {
	hot := m.pkg.AmbientK
	for _, t := range m.temps {
		if t > hot {
			hot = t
		}
	}
	return hot
}
