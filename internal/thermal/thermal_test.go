package thermal

import (
	"math"
	"testing"

	"mcpat/internal/validation"
)

func TestSolveConverges(t *testing.T) {
	cfg := validation.Niagara().Chip
	res, err := Solve(cfg, PackageSpec{AmbientK: 318, RthetaJA: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	t.Logf("Tj = %.1f K (%.1f C), TDP = %.1f W, leakage = %.1f W in %d iterations",
		res.TjK, res.TjK-273, res.TDP, res.Leakage, res.Iterations)
	// Tj must sit above ambient by P*Rtheta.
	want := 318 + res.TDP*0.3
	if diff := res.TjK - want; diff < -0.5 || diff > 0.5 {
		t.Errorf("Tj = %.2f K inconsistent with P*Rtheta (%.2f K)", res.TjK, want)
	}
	if res.TjK < 325 || res.TjK > 360 {
		t.Errorf("Tj = %.1f K implausible for a server heatsink", res.TjK)
	}
}

func TestBetterCoolingLowersLeakage(t *testing.T) {
	cfg := validation.Niagara().Chip
	good, err := Solve(cfg, PackageSpec{AmbientK: 300, RthetaJA: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Solve(cfg, PackageSpec{AmbientK: 318, RthetaJA: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if !good.Converged || !bad.Converged {
		t.Fatal("both packages should converge")
	}
	if good.TjK >= bad.TjK {
		t.Errorf("better cooling must lower Tj: %.1f vs %.1f", good.TjK, bad.TjK)
	}
	if good.Leakage >= bad.Leakage {
		t.Errorf("cooler chip must leak less: %.2f vs %.2f W", good.Leakage, bad.Leakage)
	}
	if good.TDP >= bad.TDP {
		t.Error("the leakage saving must show up in TDP")
	}
}

func TestJunctionLimitFlag(t *testing.T) {
	cfg := validation.XeonTulsa().Chip // 150 W class
	res, err := Solve(cfg, PackageSpec{AmbientK: 318, RthetaJA: 0.5, MaxTjK: 360})
	if err != nil {
		t.Fatal(err)
	}
	// 150 W x 0.5 K/W = +75 K above 318: well over the 360 K limit.
	if !res.OverLimit {
		t.Errorf("Tj = %.1f K should exceed the 360 K limit", res.TjK)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(validation.Niagara().Chip, PackageSpec{}); err == nil {
		t.Error("zero Rtheta must fail")
	}
}

func TestAmbientDefault(t *testing.T) {
	res, err := Solve(validation.Niagara().Chip, PackageSpec{RthetaJA: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TjK <= 318 {
		t.Error("default ambient of 318 K must apply")
	}
}

// TestConvergenceTrajectory is the regression for the fixed-point
// driver's promoted knobs: the residual trajectory must shrink
// monotonically (within the damping's one-step slack) on a well-posed
// package, and a starved iteration budget must report non-convergence
// instead of pretending.
func TestConvergenceTrajectory(t *testing.T) {
	cfg := validation.Niagara().Chip

	res, err := Solve(cfg, PackageSpec{RthetaJA: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("well-posed package must converge: %+v", res)
	}
	if len(res.Residuals) != res.Iterations {
		t.Fatalf("one residual per iteration: %d residuals, %d iterations",
			len(res.Residuals), res.Iterations)
	}
	for i := 1; i < len(res.Residuals); i++ {
		if res.Residuals[i] >= res.Residuals[i-1] {
			t.Errorf("residual must shrink every iteration: r[%d]=%.4f >= r[%d]=%.4f",
				i, res.Residuals[i], i-1, res.Residuals[i-1])
		}
	}
	if last := res.Residuals[len(res.Residuals)-1]; last >= DefaultConvergenceTolK {
		t.Errorf("final residual %.4f should be under the default tolerance %.2f",
			last, DefaultConvergenceTolK)
	}

	// Starve the iteration budget: same package, two iterations.
	starved, err := Solve(cfg, PackageSpec{RthetaJA: 0.3, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if starved.Converged {
		t.Error("a 2-iteration budget must report non-convergence")
	}
	if starved.Iterations != 2 {
		t.Errorf("starved solve ran %d iterations, want 2", starved.Iterations)
	}
	if len(starved.Residuals) != 2 {
		t.Errorf("non-converged solve must still report its residual trajectory, got %d", len(starved.Residuals))
	}
}

// TestPackageSpecOptions pins that the promoted knobs actually steer the
// solver: a tighter tolerance takes at least as many iterations, and the
// initial-guess offset changes the first residual.
func TestPackageSpecOptions(t *testing.T) {
	cfg := validation.Niagara().Chip

	loose, err := Solve(cfg, PackageSpec{RthetaJA: 0.3, ConvergenceTolK: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Solve(cfg, PackageSpec{RthetaJA: 0.3, ConvergenceTolK: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Converged || !tight.Converged {
		t.Fatal("both tolerances should converge")
	}
	if tight.Iterations < loose.Iterations {
		t.Errorf("tighter tolerance cannot take fewer iterations: %d vs %d",
			tight.Iterations, loose.Iterations)
	}

	near, err := Solve(cfg, PackageSpec{RthetaJA: 0.3, InitialGuessOffsetK: 1})
	if err != nil {
		t.Fatal(err)
	}
	far, err := Solve(cfg, PackageSpec{RthetaJA: 0.3, InitialGuessOffsetK: 60})
	if err != nil {
		t.Fatal(err)
	}
	if near.Residuals[0] == far.Residuals[0] {
		t.Error("the initial-guess offset must move the first residual")
	}
	// Wherever the iteration starts, it must land on the same fixed point.
	if d := near.TjK - far.TjK; d < -0.5 || d > 0.5 {
		t.Errorf("fixed point depends on the initial guess: %.2f vs %.2f K", near.TjK, far.TjK)
	}
}

// TestModelQuasiStaticMatchesSteadyState: with a zero time constant each
// Step jumps straight to Tamb + P*Rtheta.
func TestModelQuasiStaticMatchesSteadyState(t *testing.T) {
	pkg := PackageSpec{RthetaJA: 0.5, AmbientK: 300}
	m, err := NewDieModel(pkg, 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := m.Step([]float64{40}, 1e-3)
	if want := 300 + 40*0.5; hot != want {
		t.Errorf("quasi-static step = %.3f K, want %.3f", hot, want)
	}
	// Power off: straight back to ambient.
	if hot := m.Step([]float64{0}, 1e-3); hot != 300 {
		t.Errorf("zero power must return to ambient, got %.3f", hot)
	}
}

// TestModelTransientRelaxation: with a time constant the temperature
// relaxes exponentially — monotonically toward the steady state, about
// 63% of the way after one time constant, and never past it.
func TestModelTransientRelaxation(t *testing.T) {
	pkg := PackageSpec{RthetaJA: 0.5, AmbientK: 300, TimeConstS: 1e-3}
	m, err := NewDieModel(pkg, 0)
	if err != nil {
		t.Fatal(err)
	}
	const ss = 300 + 40*0.5 // 320 K
	prev := 300.0
	for i := 0; i < 50; i++ {
		hot := m.Step([]float64{40}, 1e-4)
		if hot <= prev {
			t.Fatalf("step %d: temperature must rise monotonically toward %v (got %.4f after %.4f)", i, ss, hot, prev)
		}
		if hot > ss {
			t.Fatalf("step %d: temperature overshot steady state: %.4f > %v", i, hot, ss)
		}
		prev = hot
	}
	// One full time constant from cold: 1 - 1/e of the way.
	m2, _ := NewDieModel(pkg, 0)
	hot := m2.Step([]float64{40}, 1e-3)
	want := 300 + 20*(1-math.Exp(-1))
	if d := hot - want; d < -1e-9 || d > 1e-9 {
		t.Errorf("one-tau step = %.6f K, want %.6f", hot, want)
	}
}

// TestSpreadRtheta pins the spreading rule's envelope: large blocks
// approach the whole-die resistance, small blocks are bounded by the
// lateral spreading cone instead of diverging, and degenerate areas fall
// back to the package resistance.
func TestSpreadRtheta(t *testing.T) {
	const rja, die = 0.5, 4e-4 // 400 mm^2 die
	if got := SpreadRtheta(rja, die, die); got != rja {
		t.Errorf("a block covering the die must see RthetaJA, got %g", got)
	}
	if got := SpreadRtheta(rja, die, 0); got != rja {
		t.Errorf("zero area must fall back to RthetaJA, got %g", got)
	}
	half := SpreadRtheta(rja, die, die/2)
	if half <= rja || half > rja*2 {
		t.Errorf("half-die block: want Rtheta in (%g, %g], got %g", rja, 2*rja, half)
	}
	// A micro block must not diverge: the spreading cone floors its
	// effective footprint at ~(2*SpreadThicknessM)^2.
	tiny := SpreadRtheta(rja, die, 1e-12)
	capR := rja * die / (4 * SpreadThicknessM * SpreadThicknessM)
	if tiny > capR*1.01 {
		t.Errorf("tiny block Rtheta %g exceeds the spreading cap %g", tiny, capR)
	}
	// Monotone: smaller blocks never see less resistance.
	if SpreadRtheta(rja, die, die/10) < SpreadRtheta(rja, die, die/2) {
		t.Error("smaller blocks must see at least as much resistance")
	}
}
