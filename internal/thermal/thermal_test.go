package thermal

import (
	"testing"

	"mcpat/internal/validation"
)

func TestSolveConverges(t *testing.T) {
	cfg := validation.Niagara().Chip
	res, err := Solve(cfg, PackageSpec{AmbientK: 318, RthetaJA: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	t.Logf("Tj = %.1f K (%.1f C), TDP = %.1f W, leakage = %.1f W in %d iterations",
		res.TjK, res.TjK-273, res.TDP, res.Leakage, res.Iterations)
	// Tj must sit above ambient by P*Rtheta.
	want := 318 + res.TDP*0.3
	if diff := res.TjK - want; diff < -0.5 || diff > 0.5 {
		t.Errorf("Tj = %.2f K inconsistent with P*Rtheta (%.2f K)", res.TjK, want)
	}
	if res.TjK < 325 || res.TjK > 360 {
		t.Errorf("Tj = %.1f K implausible for a server heatsink", res.TjK)
	}
}

func TestBetterCoolingLowersLeakage(t *testing.T) {
	cfg := validation.Niagara().Chip
	good, err := Solve(cfg, PackageSpec{AmbientK: 300, RthetaJA: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Solve(cfg, PackageSpec{AmbientK: 318, RthetaJA: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if !good.Converged || !bad.Converged {
		t.Fatal("both packages should converge")
	}
	if good.TjK >= bad.TjK {
		t.Errorf("better cooling must lower Tj: %.1f vs %.1f", good.TjK, bad.TjK)
	}
	if good.Leakage >= bad.Leakage {
		t.Errorf("cooler chip must leak less: %.2f vs %.2f W", good.Leakage, bad.Leakage)
	}
	if good.TDP >= bad.TDP {
		t.Error("the leakage saving must show up in TDP")
	}
}

func TestJunctionLimitFlag(t *testing.T) {
	cfg := validation.XeonTulsa().Chip // 150 W class
	res, err := Solve(cfg, PackageSpec{AmbientK: 318, RthetaJA: 0.5, MaxTjK: 360})
	if err != nil {
		t.Fatal(err)
	}
	// 150 W x 0.5 K/W = +75 K above 318: well over the 360 K limit.
	if !res.OverLimit {
		t.Errorf("Tj = %.1f K should exceed the 360 K limit", res.TjK)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(validation.Niagara().Chip, PackageSpec{}); err == nil {
		t.Error("zero Rtheta must fail")
	}
}

func TestAmbientDefault(t *testing.T) {
	res, err := Solve(validation.Niagara().Chip, PackageSpec{RthetaJA: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TjK <= 318 {
		t.Error("default ambient of 318 K must apply")
	}
}
