package tech

import "math"

// Fingerprint returns a 64-bit hash over every synthesis-relevant
// parameter of the node: feature size, cell geometries, all three device
// classes, and all wire classes under both projections. Two nodes with
// equal fingerprints are interchangeable as far as the circuit and array
// models are concerned, which is what makes the fingerprint a sound
// cache-key component for memoized synthesis (see internal/array).
//
// The fingerprint deliberately excludes Name (presentation only) and —
// since the Score-time temperature refactor — the reference Temperature:
// operating temperature no longer participates in synthesis (leakage is
// retuned per Score via LeakScaleAt), so synthesized parts are
// temperature-invariant and a thermal feedback loop that sweeps
// temperature every interval hits the same cache entries throughout.
// Callers must not vary Node.Temperature between synthesis calls; the
// chip layer never does (it threads operating temperature through the
// Score phase instead).
//
// The hash is recomputed from current field values on every call, so
// in-place mutations (OverrideVdd, test poisoning) always change the
// identity a subsequent synthesis sees.
func (n *Node) Fingerprint() uint64 {
	h := uint64(fnvOffset)
	h = hashF(h, n.Feature)
	h = hashF(h, n.SRAMCellArea)
	h = hashF(h, n.CAMCellArea)
	h = hashF(h, n.DFFCellArea)
	h = hashF(h, n.SRAMCellAspect)
	h = hashF(h, n.SRAMCellNMOSWidth)
	h = hashF(h, n.SRAMCellPMOSWidth)
	for i := range n.devices {
		d := &n.devices[i]
		h = hashF(h, d.Vdd)
		h = hashF(h, d.Vth)
		h = hashF(h, d.IonN)
		h = hashF(h, d.IonP)
		h = hashF(h, d.IoffN)
		h = hashF(h, d.IoffP)
		h = hashF(h, d.IgN)
		h = hashF(h, d.CgPerW)
		h = hashF(h, d.CjPerW)
		h = hashF(h, d.Leff)
		if d.LongChannel {
			h = hashU(h, 1)
		} else {
			h = hashU(h, 0)
		}
	}
	for p := range n.wires {
		for w := range n.wires[p] {
			wire := &n.wires[p][w]
			h = hashF(h, wire.ResPerM)
			h = hashF(h, wire.CapPerM)
			h = hashF(h, wire.Pitch)
		}
	}
	return h
}

// FNV-1a over the IEEE-754 bit patterns. Bit patterns (not values) keep
// the hash total: NaNs and signed zeros poisoned into test nodes still
// produce a deterministic, distinguishing identity.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashF(h uint64, v float64) uint64 { return hashU(h, math.Float64bits(v)) }

func hashU(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}
