// Package techtest provides panicking technology-node constructors for
// tests and benchmarks with known-good inputs. It exists so that no
// panicking constructor lives in the production model packages: nothing
// outside _test files may import it, keeping the public API free of
// reachable panics (the no-panic contract documented in DESIGN.md).
package techtest

import "mcpat/internal/tech"

// Node returns the technology node for the given feature size in
// nanometers, panicking on error. Test-only.
func Node(nm float64) *tech.Node {
	n, err := tech.ByFeature(nm)
	if err != nil {
		panic(err)
	}
	return n
}
