package tech

import (
	"math"
	"testing"
)

func mustNode(t *testing.T, nm float64) *Node {
	t.Helper()
	n, err := ByFeature(nm)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFingerprintDeterministic(t *testing.T) {
	a := mustNode(t, 45)
	b := mustNode(t, 45)
	if a == b {
		t.Fatal("ByFeature should return fresh nodes")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal-valued nodes must fingerprint identically")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint must be stable across calls")
	}
}

func TestFingerprintDistinguishesNodes(t *testing.T) {
	seen := map[uint64]float64{}
	for _, nm := range []float64{90, 65, 45, 32, 22} {
		fp := mustNode(t, nm).Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%gnm and %gnm collide", nm, prev)
		}
		seen[fp] = nm
	}
}

func TestFingerprintTracksMutation(t *testing.T) {
	n := mustNode(t, 32)
	base := n.Fingerprint()

	n.OverrideVdd(HP, 0.8)
	afterVdd := n.Fingerprint()
	if afterVdd == base {
		t.Error("OverrideVdd must change the fingerprint")
	}

	// Operating temperature is a Score-time input, not a synthesis
	// input: synthesized parts are temperature-invariant, so the
	// fingerprint must NOT move with the reference temperature (a
	// thermal loop sweeping temperature every interval has to keep
	// hitting the same synthesis cache entries).
	n.Temperature += 15
	if n.Fingerprint() != afterVdd {
		t.Error("temperature must not participate in the synthesis fingerprint")
	}
}

func TestFingerprintHandlesNaN(t *testing.T) {
	a := mustNode(t, 45)
	b := mustNode(t, 45)
	a.SRAMCellArea = math.NaN()
	b.SRAMCellArea = math.NaN()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical NaN bit patterns must fingerprint identically")
	}
	c := mustNode(t, 45)
	if c.Fingerprint() == a.Fingerprint() {
		t.Error("NaN-poisoned node must differ from a clean one")
	}
}
