package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByFeatureExactNodes(t *testing.T) {
	for _, nm := range Nodes() {
		n, err := ByFeature(nm)
		if err != nil {
			t.Fatalf("ByFeature(%v): %v", nm, err)
		}
		if got := n.Feature; math.Abs(got-nm*1e-9) > 1e-15 {
			t.Errorf("node %v: feature = %g, want %g", nm, got, nm*1e-9)
		}
		if n.Name == "" {
			t.Errorf("node %v: empty name", nm)
		}
	}
}

func TestByFeatureOutOfRange(t *testing.T) {
	for _, nm := range []float64{10, 21.9, 180.1, 500, 0, -5} {
		if _, err := ByFeature(nm); err == nil {
			t.Errorf("ByFeature(%v): want error, got nil", nm)
		}
	}
}

func TestByFeatureInterpolation(t *testing.T) {
	n78, err := ByFeature(78)
	if err != nil {
		t.Fatal(err)
	}
	n65 := MustByFeature(65)
	n90 := MustByFeature(90)
	d78 := n78.Device(HP, false)
	d65 := n65.Device(HP, false)
	d90 := n90.Device(HP, false)
	if !(d78.Vdd > d65.Vdd && d78.Vdd < d90.Vdd) {
		t.Errorf("interpolated Vdd %v not between %v and %v", d78.Vdd, d65.Vdd, d90.Vdd)
	}
	if !(d78.IoffN > d90.IoffN && d78.IoffN < d65.IoffN) {
		t.Errorf("interpolated IoffN %v not between bracketing nodes (%v, %v)", d78.IoffN, d90.IoffN, d65.IoffN)
	}
	if !(n78.SRAMCellArea > n65.SRAMCellArea && n78.SRAMCellArea < n90.SRAMCellArea) {
		t.Errorf("interpolated SRAM cell area %v out of range", n78.SRAMCellArea)
	}
}

func TestVddMonotonicWithScaling(t *testing.T) {
	prev := math.Inf(1)
	for _, nm := range []float64{180, 90, 65, 45, 32, 22} {
		v := MustByFeature(nm).Device(HP, false).Vdd
		if v > prev {
			t.Errorf("HP Vdd at %vnm = %v exceeds larger node's %v", nm, v, prev)
		}
		prev = v
	}
}

func TestDeviceClassOrdering(t *testing.T) {
	// At every node: HP is fastest (smallest FO4) and leakiest; LSTP is
	// slowest and least leaky; LOP has the lowest Vdd.
	for _, nm := range Nodes() {
		n := MustByFeature(nm)
		fo4HP := n.FO4(HP, false)
		fo4LOP := n.FO4(LOP, false)
		fo4LSTP := n.FO4(LSTP, false)
		if !(fo4HP < fo4LOP && fo4LOP < fo4LSTP) {
			t.Errorf("%s: FO4 ordering HP(%.3gps) < LOP(%.3gps) < LSTP(%.3gps) violated",
				n.Name, fo4HP*1e12, fo4LOP*1e12, fo4LSTP*1e12)
		}
		hp, lop, lstp := n.Device(HP, false), n.Device(LOP, false), n.Device(LSTP, false)
		if !(hp.IoffN > lop.IoffN && lop.IoffN > lstp.IoffN) {
			t.Errorf("%s: leakage ordering violated", n.Name)
		}
		if !(lop.Vdd < hp.Vdd && hp.Vdd <= lstp.Vdd+0.31) {
			t.Errorf("%s: Vdd ordering unexpected: HP=%v LOP=%v LSTP=%v", n.Name, hp.Vdd, lop.Vdd, lstp.Vdd)
		}
	}
}

func TestFO4PlausibleValues(t *testing.T) {
	// HP FO4 should be roughly 0.25-0.6 ps per nm of feature size.
	for _, nm := range Nodes() {
		n := MustByFeature(nm)
		fo4 := n.FO4(HP, false)
		perNM := fo4 / nm * 1e12 // ps per nm
		if perNM < 0.15 || perNM > 0.8 {
			t.Errorf("%s: FO4 = %.3g ps (%.3g ps/nm) outside plausible band", n.Name, fo4*1e12, perNM)
		}
	}
}

func TestLongChannelVariant(t *testing.T) {
	n := MustByFeature(45)
	std := n.Device(HP, false)
	lc := n.Device(HP, true)
	if lc.IoffN >= std.IoffN*0.2 {
		t.Errorf("long channel IoffN %v not substantially below standard %v", lc.IoffN, std.IoffN)
	}
	if lc.IonN >= std.IonN {
		t.Errorf("long channel IonN %v should be below standard %v", lc.IonN, std.IonN)
	}
	if !lc.LongChannel {
		t.Error("LongChannel flag not set")
	}
	if n.FO4(HP, true) <= n.FO4(HP, false) {
		t.Error("long channel FO4 should be slower")
	}
}

func TestLeakageTemperatureScaling(t *testing.T) {
	d := MustByFeature(65).Device(HP, false)
	cold := d.Ioff(1e-6, 2e-6, 300)
	hot := d.Ioff(1e-6, 2e-6, 360)
	ratio := hot / cold
	if ratio < 3 || ratio > 12 {
		t.Errorf("300K->360K leakage ratio = %.2f, want roughly 3-12x", ratio)
	}
	if hotter := d.Ioff(1e-6, 2e-6, 380); hotter <= hot {
		t.Error("leakage must increase monotonically with temperature")
	}
}

func TestWirePlausibility(t *testing.T) {
	n := MustByFeature(90)
	local := n.Wire(Aggressive, Local)
	global := n.Wire(Aggressive, Global)
	// Local 90nm wires: resistance on the order of 1 ohm/um.
	rLocal := local.ResPerM * 1e-6
	if rLocal < 0.2 || rLocal > 5 {
		t.Errorf("90nm local wire R = %.3g ohm/um outside plausible band", rLocal)
	}
	// Global wires are much less resistive per length.
	if global.ResPerM >= local.ResPerM/4 {
		t.Errorf("global R/m (%.3g) should be well below local (%.3g)", global.ResPerM, local.ResPerM)
	}
	// Capacitance per length roughly 0.1-0.4 fF/um.
	cLocal := local.CapPerM * 1e-6 / 1e-15
	if cLocal < 0.05 || cLocal > 0.6 {
		t.Errorf("90nm local wire C = %.3g fF/um outside plausible band", cLocal)
	}
	// Conservative projection is worse on both R and C.
	cons := n.Wire(Conservative, Global)
	if cons.ResPerM*cons.CapPerM <= global.ResPerM*global.CapPerM {
		t.Error("conservative projection should have a higher RC product")
	}
}

func TestWireRCScalesUpWithShrinking(t *testing.T) {
	// Per-length RC delay of local wires gets worse as feature size
	// shrinks - the motivating trend for McPAT's interconnect study.
	prev := 0.0
	for _, nm := range []float64{180, 90, 65, 45, 32, 22} {
		w := MustByFeature(nm).Wire(Aggressive, Local)
		rc := w.ResPerM * w.CapPerM
		if rc <= prev {
			t.Errorf("local wire RC at %vnm (%.3g) not worse than previous node (%.3g)", nm, rc, prev)
		}
		prev = rc
	}
}

func TestSRAMCellAreaScaling(t *testing.T) {
	a90 := MustByFeature(90).SRAMCellArea
	a45 := MustByFeature(45).SRAMCellArea
	ratio := a90 / a45
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("90->45nm SRAM cell shrink = %.2fx, want ~4x", ratio)
	}
	// 90nm 6T cell should be around 1 um^2.
	um2 := a90 * 1e12
	if um2 < 0.7 || um2 > 1.5 {
		t.Errorf("90nm SRAM cell = %.3g um^2, want ~1", um2)
	}
}

func TestQuickInterpolatedNodesAreOrdered(t *testing.T) {
	// Property: for any nm in range, all area-like quantities are
	// positive and FO4 is positive and finite.
	f := func(raw uint16) bool {
		nm := 22 + float64(raw%158) // [22, 180)
		n, err := ByFeature(nm)
		if err != nil {
			return false
		}
		if n.SRAMCellArea <= 0 || n.CAMCellArea <= n.SRAMCellArea || n.DFFCellArea <= n.CAMCellArea {
			return false
		}
		for _, dt := range []DeviceType{HP, LSTP, LOP} {
			fo4 := n.FO4(dt, false)
			if !(fo4 > 0) || math.IsInf(fo4, 0) {
				return false
			}
			d := n.Device(dt, false)
			if d.Vdd <= 0 || d.IonN <= 0 || d.IoffN <= 0 || d.CgPerW <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickLeakageMonotoneInWidth(t *testing.T) {
	d := MustByFeature(32).Device(HP, false)
	f := func(a, b uint8) bool {
		w1 := 1e-7 * (1 + float64(a))
		w2 := w1 + 1e-7*(1+float64(b))
		return d.Ioff(w2, w2, 350) > d.Ioff(w1, w1, 350)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// MustByFeature is the test-only panicking variant of ByFeature; the
// production constructor returns an error instead.
func MustByFeature(nm float64) *Node {
	n, err := ByFeature(nm)
	if err != nil {
		panic(err)
	}
	return n
}
