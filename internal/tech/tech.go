// Package tech provides the technology-level models of McPAT: MOSFET device
// parameters for the three ITRS device classes (HP, LSTP, LOP) at process
// nodes from 180 nm down to 22 nm, temperature-dependent leakage, the
// optional long-channel device variant used to trade frequency for static
// power, and interconnect (wire) parameters for the aggressive and
// conservative projections.
//
// All quantities are SI: meters, seconds, volts, amperes, farads, ohms.
// Per-width device quantities use A/m and F/m (1 uA/um == 1 A/m,
// 1 fF/um == 1e-9 F/m).
package tech

import (
	"fmt"
	"math"
	"sort"

	"mcpat/internal/guard"
)

// DeviceType selects one of the three ITRS transistor classes McPAT models.
type DeviceType int

const (
	// HP is the high-performance device: lowest delay, highest leakage.
	HP DeviceType = iota
	// LSTP is the low-standby-power device: thick oxide and high Vth give
	// orders of magnitude less leakage at roughly 2-2.5x the delay.
	LSTP
	// LOP is the low-operating-power device: reduced Vdd targets dynamic
	// power; delay and leakage sit between HP and LSTP.
	LOP
	numDeviceTypes
)

func (d DeviceType) String() string {
	switch d {
	case HP:
		return "HP"
	case LSTP:
		return "LSTP"
	case LOP:
		return "LOP"
	}
	return fmt.Sprintf("DeviceType(%d)", int(d))
}

// Projection selects the interconnect scaling assumption.
type Projection int

const (
	// Aggressive assumes optimistic ITRS wire scaling: low-k dielectrics
	// and thin barriers.
	Aggressive Projection = iota
	// Conservative assumes higher-k dielectrics, thicker barriers, and
	// relaxed pitches, as in CACTI's conservative projection.
	Conservative
	numProjections
)

func (p Projection) String() string {
	if p == Aggressive {
		return "aggressive"
	}
	return "conservative"
}

// WireType selects a metal layer class.
type WireType int

const (
	// Local wires run at minimum pitch on the lowest metal layers.
	Local WireType = iota
	// SemiGlobal wires run at twice minimum pitch on intermediate layers.
	SemiGlobal
	// Global wires run at wide pitch on the top layers and are used for
	// cross-chip routes, clock trunks, and NoC links.
	Global
	numWireTypes
)

func (w WireType) String() string {
	switch w {
	case Local:
		return "local"
	case SemiGlobal:
		return "semi-global"
	case Global:
		return "global"
	}
	return fmt.Sprintf("WireType(%d)", int(w))
}

// Device holds the per-width electrical parameters of one transistor class
// at one node. Leakage currents are specified at the reference temperature
// of 300 K; use the Ioff and Ig methods for operating-temperature values.
type Device struct {
	Vdd float64 // supply voltage (V)
	Vth float64 // threshold voltage (V)

	IonN  float64 // NMOS saturation drive current per width (A/m)
	IonP  float64 // PMOS saturation drive current per width (A/m)
	IoffN float64 // NMOS subthreshold leakage per width at 300 K (A/m)
	IoffP float64 // PMOS subthreshold leakage per width at 300 K (A/m)
	IgN   float64 // gate leakage per width (A/m), weak temperature dependence

	CgPerW float64 // gate capacitance per width, incl. overlap+fringe (F/m)
	CjPerW float64 // source/drain junction capacitance per width (F/m)

	Leff float64 // effective channel length (m)

	// LongChannel indicates the long-channel variant: channel length is
	// doubled, cutting subthreshold leakage ~10x at ~10% drive loss.
	LongChannel bool
}

// rEffFactor converts Vdd/Ion into an effective switching resistance. It
// absorbs the difference between the saturation drive current and the
// average current over a full output transition (PMOS/NMOS asymmetry,
// velocity saturation). Calibrated so the computed FO4 delay matches the
// ~0.36 ps/nm rule of thumb for HP devices.
const rEffFactor = 2.6

// subthresholdSlopeK is the temperature coefficient of subthreshold
// leakage: Ioff scales as exp((T-300)/subthresholdSlopeK), roughly a 2x
// increase per 25 K, matching MASTAR-style fits.
const subthresholdSlopeK = 34.0

// REqN returns the effective drive resistance of an NMOS transistor of
// width w (ohms).
func (d Device) REqN(w float64) float64 { return rEffFactor * d.Vdd / (d.IonN * w) }

// REqP returns the effective drive resistance of a PMOS transistor of
// width w (ohms).
func (d Device) REqP(w float64) float64 { return rEffFactor * d.Vdd / (d.IonP * w) }

// Ioff returns the average subthreshold leakage current (A) of a gate with
// total NMOS width wn and PMOS width wp at temperature tempK, assuming
// half the devices leak at any time (standard stacked-gate average).
func (d Device) Ioff(wn, wp, tempK float64) float64 {
	scale := leakTempScale(tempK)
	return 0.5 * (wn*d.IoffN + wp*d.IoffP) * scale
}

// Ig returns the gate leakage current (A) of total gate width w. Gate
// leakage is only weakly temperature dependent and is treated as constant.
func (d Device) Ig(w float64) float64 { return w * d.IgN }

// leakTempScale returns the subthreshold leakage multiplier at tempK
// relative to the 300 K reference.
func leakTempScale(tempK float64) float64 {
	return math.Exp((tempK - 300.0) / subthresholdSlopeK)
}

// Wire holds distributed RC parameters for one metal class.
type Wire struct {
	ResPerM float64 // resistance per length (ohm/m)
	CapPerM float64 // total capacitance per length, ground+coupling (F/m)
	Pitch   float64 // wire pitch (m)
}

// Node bundles everything McPAT needs to know about one process node.
type Node struct {
	Name    string  // e.g. "90nm"
	Feature float64 // feature size F (m)

	// Temperature is the reference junction temperature (K) at which the
	// synthesis-phase leakage numbers are solved; the table default is
	// McPAT's 360 K operating point. Operating-temperature leakage is a
	// Score-time concern: synthesized parts stay temperature-invariant
	// and callers retune them with the multiplier from LeakScaleAt (see
	// chip.Processor.SetScoreTemperature), which is what lets a thermal
	// feedback loop change temperature every interval without busting a
	// single synthesis cache.
	Temperature float64

	devices [numDeviceTypes]Device
	wires   [numProjections][numWireTypes]Wire

	// SRAMCellArea is the area of one 6T SRAM bit cell (m^2).
	SRAMCellArea float64
	// CAMCellArea is the area of one 10T CAM bit cell (m^2).
	CAMCellArea float64
	// DFFCellArea is the area of one flip-flop based storage bit (m^2).
	DFFCellArea float64
	// SRAMCellAspect is height/width of the SRAM cell.
	SRAMCellAspect float64

	// SRAMCellNMOSWidth and SRAMCellPMOSWidth are the summed leaking
	// widths per 6T cell used for cell leakage (m).
	SRAMCellNMOSWidth float64
	SRAMCellPMOSWidth float64
}

// Device returns the parameters of the requested transistor class. If
// longChannel is true the returned device is the long-channel variant:
// ~10x less subthreshold leakage, ~10% less drive, ~10% more gate cap.
func (n *Node) Device(t DeviceType, longChannel bool) Device {
	d := n.devices[t]
	if longChannel {
		d.IoffN *= 0.1
		d.IoffP *= 0.1
		d.IonN *= 0.9
		d.IonP *= 0.9
		d.CgPerW *= 1.1
		d.Leff *= 2
		d.LongChannel = true
	}
	return d
}

// Wire returns the RC parameters for the given projection and metal class.
func (n *Node) Wire(p Projection, t WireType) Wire { return n.wires[p][t] }

// OverrideVdd retunes the given device class to run at supply voltage v,
// the way McPAT honors a user-specified Vdd: drive current scales roughly
// linearly with overdrive, leakage currents and capacitances are kept (a
// first-order treatment consistent with McPAT's voltage knob). Nodes
// returned by ByFeature are private copies, so mutation is safe.
func (n *Node) OverrideVdd(t DeviceType, v float64) {
	if v <= 0 {
		return
	}
	d := &n.devices[t]
	scale := v / d.Vdd
	d.IonN *= scale
	d.IonP *= scale
	d.Vdd = v
}

// MinWidthN returns the minimum NMOS transistor width used by the circuit
// models (3 F, the standard CACTI/McPAT convention).
func (n *Node) MinWidthN() float64 { return 3 * n.Feature }

// MinWidthP returns the minimum PMOS width (2x NMOS for balanced drive).
func (n *Node) MinWidthP() float64 { return 2 * n.MinWidthN() }

// FO4 returns the fanout-of-4 inverter delay (s) of the given device
// class, the basic unit in which logic depth is expressed.
func (n *Node) FO4(t DeviceType, longChannel bool) float64 {
	d := n.Device(t, longChannel)
	wn := n.MinWidthN()
	wp := n.MinWidthP()
	cin := (wn + wp) * d.CgPerW
	cself := (wn + wp) * d.CjPerW
	// PMOS is sized 2x, so pull-up and pull-down resistances match and we
	// can use the NMOS drive resistance for both transitions.
	r := d.REqN(wn)
	return 0.69 * r * (4*cin + cself)
}

// LeakTempScale exposes the subthreshold temperature multiplier so that
// higher layers can report temperature sensitivity.
func LeakTempScale(tempK float64) float64 { return leakTempScale(tempK) }

// LeakScaleAt is the cheap temperature view over an already-tuned node:
// it returns the multiplier that converts the node's synthesized
// subthreshold leakage (solved at the reference Temperature) into the
// leakage at operating temperature tempK. Subthreshold leakage is the
// only temperature-dependent quantity in the model and temperature
// enters it as a pure exponential factor, so retuning a synthesized
// part is one multiply per leakage column instead of a re-synthesis.
// tempK <= 0 selects the reference temperature (scale 1). At
// tempK == n.Temperature the scale is exactly 1.0, which keeps
// default-temperature reports bit-identical to an unretuned Score.
func (n *Node) LeakScaleAt(tempK float64) float64 {
	if tempK <= 0 || tempK == n.Temperature {
		return 1
	}
	return math.Exp((tempK - n.Temperature) / subthresholdSlopeK)
}

// Nodes returns the list of natively supported feature sizes in nm,
// ascending.
func Nodes() []float64 {
	out := make([]float64, 0, len(rawNodes))
	for nm := range rawNodes {
		out = append(out, nm)
	}
	sort.Float64s(out)
	return out
}

// ByFeature returns the technology node for the given feature size in
// nanometers. Exact table entries are returned directly; sizes between two
// table entries are interpolated in log space (the standard MASTAR
// treatment); sizes outside [22, 180] are an error.
func ByFeature(nm float64) (*Node, error) {
	// The NaN comparison traps: NaN fails both range tests below, so it
	// must be rejected explicitly or it would interpolate to garbage.
	if math.IsNaN(nm) || math.IsInf(nm, 0) || nm < 22 || nm > 180 {
		return nil, guard.Configf("tech",
			"feature size %.0f nm outside supported range [22, 180]", nm)
	}
	if raw, ok := rawNodes[nm]; ok {
		n := buildNode(nm, raw)
		return n, nil
	}
	keys := Nodes()
	// Find bracketing nodes.
	lo, hi := keys[0], keys[len(keys)-1]
	for _, k := range keys {
		if k <= nm && k > lo {
			lo = k
		}
		if k >= nm && k < hi {
			hi = k
		}
	}
	if lo > nm {
		lo = keys[0]
	}
	if hi < nm {
		hi = keys[len(keys)-1]
	}
	a := buildNode(lo, rawNodes[lo])
	b := buildNode(hi, rawNodes[hi])
	t := (math.Log(nm) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	n := interpolate(a, b, t)
	n.Name = fmt.Sprintf("%.0fnm", nm)
	n.Feature = nm * 1e-9
	return n, nil
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }

// geomLerp interpolates in log space, appropriate for quantities spanning
// decades (leakage currents, cell areas).
func geomLerp(a, b, t float64) float64 {
	if a <= 0 || b <= 0 {
		return lerp(a, b, t)
	}
	return math.Exp(lerp(math.Log(a), math.Log(b), t))
}

func interpolate(a, b *Node, t float64) *Node {
	n := &Node{
		Temperature:       a.Temperature,
		SRAMCellArea:      geomLerp(a.SRAMCellArea, b.SRAMCellArea, t),
		CAMCellArea:       geomLerp(a.CAMCellArea, b.CAMCellArea, t),
		DFFCellArea:       geomLerp(a.DFFCellArea, b.DFFCellArea, t),
		SRAMCellAspect:    lerp(a.SRAMCellAspect, b.SRAMCellAspect, t),
		SRAMCellNMOSWidth: geomLerp(a.SRAMCellNMOSWidth, b.SRAMCellNMOSWidth, t),
		SRAMCellPMOSWidth: geomLerp(a.SRAMCellPMOSWidth, b.SRAMCellPMOSWidth, t),
	}
	for i := range n.devices {
		da, db := a.devices[i], b.devices[i]
		n.devices[i] = Device{
			Vdd:    lerp(da.Vdd, db.Vdd, t),
			Vth:    lerp(da.Vth, db.Vth, t),
			IonN:   geomLerp(da.IonN, db.IonN, t),
			IonP:   geomLerp(da.IonP, db.IonP, t),
			IoffN:  geomLerp(da.IoffN, db.IoffN, t),
			IoffP:  geomLerp(da.IoffP, db.IoffP, t),
			IgN:    geomLerp(da.IgN, db.IgN, t),
			CgPerW: geomLerp(da.CgPerW, db.CgPerW, t),
			CjPerW: geomLerp(da.CjPerW, db.CjPerW, t),
			Leff:   geomLerp(da.Leff, db.Leff, t),
		}
	}
	for p := range n.wires {
		for w := range n.wires[p] {
			wa, wb := a.wires[p][w], b.wires[p][w]
			n.wires[p][w] = Wire{
				ResPerM: geomLerp(wa.ResPerM, wb.ResPerM, t),
				CapPerM: geomLerp(wa.CapPerM, wb.CapPerM, t),
				Pitch:   geomLerp(wa.Pitch, wb.Pitch, t),
			}
		}
	}
	return n
}
