package tech

// rawDevice holds table values in engineering units: volts, uA/um for
// drive currents, nA/um for leakage, fF/um for capacitances.
type rawDevice struct {
	vdd, vth   float64
	ionN, ionP float64 // uA/um
	ioffN      float64 // nA/um at 300 K (PMOS assumed 0.5x)
	ig         float64 // nA/um
	cg, cj     float64 // fF/um
	leffOverF  float64 // Leff as a fraction of the feature size
}

type rawNode struct {
	dev [numDeviceTypes]rawDevice

	// sramF2 etc. are cell areas in units of F^2.
	sramF2, camF2, dffF2 float64

	// ildK is the relative dielectric constant of the aggressive-
	// projection inter-layer dielectric; the conservative projection adds
	// ildKConsDelta.
	ildK float64
}

const ildKConsDelta = 0.8

// rawNodes is the embedded technology roadmap. The values follow the shape
// of the ITRS/MASTAR data McPAT embeds: HP devices get faster and leakier
// with scaling (until high-k gate stacks arrive at 45 nm and cut gate
// leakage), LSTP devices hold leakage near-constant at ~2.4x the delay,
// and LOP devices trade supply voltage for frequency headroom.
var rawNodes = map[float64]rawNode{
	180: {
		dev: [numDeviceTypes]rawDevice{
			HP:   {vdd: 1.5, vth: 0.40, ionN: 750, ionP: 350, ioffN: 2, ig: 0.05, cg: 1.60, cj: 1.30, leffOverF: 0.7},
			LSTP: {vdd: 1.8, vth: 0.55, ionN: 330, ionP: 155, ioffN: 0.01, ig: 0.001, cg: 1.45, cj: 1.20, leffOverF: 0.8},
			LOP:  {vdd: 1.2, vth: 0.34, ionN: 420, ionP: 200, ioffN: 0.3, ig: 0.01, cg: 1.50, cj: 1.25, leffOverF: 0.75},
		},
		sramF2: 132, camF2: 290, dffF2: 900, ildK: 3.6,
	},
	90: {
		dev: [numDeviceTypes]rawDevice{
			HP:   {vdd: 1.2, vth: 0.24, ionN: 1100, ionP: 550, ioffN: 60, ig: 150, cg: 1.00, cj: 0.80, leffOverF: 0.55},
			LSTP: {vdd: 1.3, vth: 0.52, ionN: 465, ionP: 230, ioffN: 0.02, ig: 0.4, cg: 0.92, cj: 0.75, leffOverF: 0.75},
			LOP:  {vdd: 0.9, vth: 0.30, ionN: 580, ionP: 290, ioffN: 3, ig: 7, cg: 0.95, cj: 0.78, leffOverF: 0.6},
		},
		sramF2: 130, camF2: 285, dffF2: 880, ildK: 3.2,
	},
	65: {
		dev: [numDeviceTypes]rawDevice{
			HP:   {vdd: 1.1, vth: 0.22, ionN: 1200, ionP: 600, ioffN: 200, ig: 250, cg: 0.80, cj: 0.64, leffOverF: 0.5},
			LSTP: {vdd: 1.2, vth: 0.50, ionN: 500, ionP: 250, ioffN: 0.03, ig: 0.7, cg: 0.74, cj: 0.60, leffOverF: 0.7},
			LOP:  {vdd: 0.8, vth: 0.28, ionN: 640, ionP: 320, ioffN: 6, ig: 10, cg: 0.77, cj: 0.62, leffOverF: 0.55},
		},
		sramF2: 128, camF2: 282, dffF2: 860, ildK: 3.0,
	},
	45: {
		dev: [numDeviceTypes]rawDevice{
			HP:   {vdd: 1.0, vth: 0.20, ionN: 1400, ionP: 700, ioffN: 280, ig: 40, cg: 0.65, cj: 0.52, leffOverF: 0.5},
			LSTP: {vdd: 1.1, vth: 0.48, ionN: 550, ionP: 275, ioffN: 0.04, ig: 0.3, cg: 0.60, cj: 0.49, leffOverF: 0.65},
			LOP:  {vdd: 0.7, vth: 0.26, ionN: 720, ionP: 360, ioffN: 10, ig: 3, cg: 0.62, cj: 0.50, leffOverF: 0.55},
		},
		sramF2: 126, camF2: 278, dffF2: 850, ildK: 2.8,
	},
	32: {
		dev: [numDeviceTypes]rawDevice{
			HP:   {vdd: 0.9, vth: 0.18, ionN: 1550, ionP: 775, ioffN: 350, ig: 30, cg: 0.55, cj: 0.44, leffOverF: 0.5},
			LSTP: {vdd: 1.0, vth: 0.45, ionN: 600, ionP: 300, ioffN: 0.05, ig: 0.2, cg: 0.50, cj: 0.41, leffOverF: 0.62},
			LOP:  {vdd: 0.65, vth: 0.24, ionN: 790, ionP: 395, ioffN: 15, ig: 2.5, cg: 0.52, cj: 0.42, leffOverF: 0.55},
		},
		sramF2: 124, camF2: 275, dffF2: 840, ildK: 2.6,
	},
	22: {
		dev: [numDeviceTypes]rawDevice{
			HP:   {vdd: 0.8, vth: 0.16, ionN: 1700, ionP: 850, ioffN: 420, ig: 25, cg: 0.45, cj: 0.36, leffOverF: 0.5},
			LSTP: {vdd: 0.9, vth: 0.43, ionN: 650, ionP: 325, ioffN: 0.06, ig: 0.15, cg: 0.41, cj: 0.34, leffOverF: 0.6},
			LOP:  {vdd: 0.6, vth: 0.22, ionN: 860, ionP: 430, ioffN: 22, ig: 2, cg: 0.43, cj: 0.35, leffOverF: 0.55},
		},
		sramF2: 122, camF2: 272, dffF2: 830, ildK: 2.4,
	},
}

const (
	uAPerUm = 1.0    // 1 uA/um == 1 A/m
	nAPerUm = 1e-3   // 1 nA/um == 1e-3 A/m
	fFPerUm = 1e-9   // 1 fF/um == 1e-9 F/m
	cuRho   = 2.2e-8 // bulk copper resistivity (ohm*m)
	eps0    = 8.854e-12
)

// wireGeometry defines each metal class as multiples of the feature size.
type wireGeometry struct {
	pitchOverF float64 // wire pitch in F
	aspect     float64 // thickness / width
}

var wireGeoms = [numWireTypes]wireGeometry{
	Local:      {pitchOverF: 2.5, aspect: 1.8},
	SemiGlobal: {pitchOverF: 4.0, aspect: 2.0},
	Global:     {pitchOverF: 8.0, aspect: 2.2},
}

// resistivityScale models the size effect: grain-boundary and surface
// scattering plus the barrier layer raise effective resistivity as the
// wire width shrinks toward the electron mean free path (~40 nm in Cu).
func resistivityScale(width float64) float64 {
	const mfp = 40e-9
	return 1.0 + 0.45*mfp/width
}

func buildNode(nm float64, raw rawNode) *Node {
	f := nm * 1e-9
	n := &Node{
		Name:           formatNodeName(nm),
		Feature:        f,
		Temperature:    360, // McPAT default junction temperature (K)
		SRAMCellArea:   raw.sramF2 * f * f,
		CAMCellArea:    raw.camF2 * f * f,
		DFFCellArea:    raw.dffF2 * f * f,
		SRAMCellAspect: 1.46,
		// A 6T cell has two leaking pull-down/access paths; widths are
		// near minimum (access ~1.3x min, pull-down ~2x min in drive
		// strength but minimum length).
		SRAMCellNMOSWidth: 2 * 1.3 * f,
		SRAMCellPMOSWidth: 2 * 1.0 * f,
	}
	for t := DeviceType(0); t < numDeviceTypes; t++ {
		rd := raw.dev[t]
		n.devices[t] = Device{
			Vdd:    rd.vdd,
			Vth:    rd.vth,
			IonN:   rd.ionN * uAPerUm,
			IonP:   rd.ionP * uAPerUm,
			IoffN:  rd.ioffN * nAPerUm,
			IoffP:  0.5 * rd.ioffN * nAPerUm,
			IgN:    rd.ig * nAPerUm,
			CgPerW: rd.cg * fFPerUm,
			CjPerW: rd.cj * fFPerUm,
			Leff:   rd.leffOverF * f,
		}
	}
	for p := Projection(0); p < numProjections; p++ {
		k := raw.ildK
		pitchScale := 1.0
		rhoScale := 1.0
		if p == Conservative {
			// Conservative wires keep the same pitch but assume thicker
			// diffusion barriers (higher effective resistivity) and a
			// higher-k dielectric, so RC per length is strictly worse.
			k += ildKConsDelta
			rhoScale = 1.35
		}
		for wt := WireType(0); wt < numWireTypes; wt++ {
			g := wireGeoms[wt]
			pitch := g.pitchOverF * f * pitchScale
			width := pitch / 2
			thick := g.aspect * width
			rho := cuRho * resistivityScale(width) * rhoScale
			res := rho / (width * thick)
			// Parallel-plate ground + coupling capacitance with a
			// 1.15x fringing correction; spacing equals width and the
			// ILD height is half the wire thickness.
			cap := 2 * eps0 * k * (g.aspect + 1) * 1.15
			n.wires[p][wt] = Wire{ResPerM: res, CapPerM: cap, Pitch: pitch}
		}
	}
	return n
}

func formatNodeName(nm float64) string {
	switch nm {
	case 180:
		return "180nm"
	case 90:
		return "90nm"
	case 65:
		return "65nm"
	case 45:
		return "45nm"
	case 32:
		return "32nm"
	case 22:
		return "22nm"
	}
	return ""
}
