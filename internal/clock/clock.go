// Package clock models the chip-wide clock distribution network: a global
// H-tree feeding a local grid, with buffer insertion, following McPAT's
// treatment of clocking as a first-class power consumer.
//
// The dominant term is the total switched capacitance: distribution wires,
// repeating buffers, and the clock loads (flip-flops, latches, precharge
// devices) of every block on the chip. Sink capacitance is estimated from
// the clocked-element density per unit area, calibrated so that the clock
// network consumes the published ~20-35% of chip dynamic power on the
// validation targets.
package clock

import (
	"fmt"
	"math"

	"mcpat/internal/circuit"
	"mcpat/internal/power"
	"mcpat/internal/tech"
)

// Config describes a clock network.
type Config struct {
	Tech        *tech.Node
	Dev         tech.DeviceType
	LongChannel bool

	ChipArea float64 // m^2 of clocked logic served
	ClockHz  float64

	// SinkCap optionally gives the total clock load (F). When zero it is
	// estimated from ChipArea via the calibrated density model.
	SinkCap float64

	// GatingFactor is the fraction of the clock network still switching
	// under TDP conditions (clock gating shuts off idle subtrees).
	// Zero selects the default of 0.75.
	GatingFactor float64

	// SinkMult scales the clock-load density (default 1); grid-clocked
	// designs run 2-3x the H-tree baseline.
	SinkMult float64
}

// Network is the synthesized clock distribution.
type Network struct {
	power.PAT

	TotalCap   float64 // switched capacitance (F)
	WireCap    float64
	BufferCap  float64
	SinkCap    float64
	PowerPeak  float64 // W at TDP (with gating factor)
	PowerMax   float64 // W fully ungated
	WireLength float64 // total distribution wire (m)
}

// sinkCapPerArea returns the estimated clock-load density (F/m^2).
// Clocked-element count scales with 1/F^2 while per-element load scales
// with F, so density scales as 1/F; calibrated at 90 nm.
func sinkCapPerArea(n *tech.Node) float64 {
	const ref = 2e-5 // F/m^2 at 90 nm (~20 pF/mm^2)
	return ref * (90e-9 / n.Feature)
}

// New synthesizes the clock network.
func New(cfg Config) (*Network, error) {
	if cfg.Tech == nil {
		return nil, fmt.Errorf("clock: technology node required")
	}
	if cfg.ChipArea <= 0 || cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("clock: area (%g) and clock (%g) must be positive", cfg.ChipArea, cfg.ClockHz)
	}
	if cfg.GatingFactor <= 0 {
		cfg.GatingFactor = 0.75
	}
	c := circuit.NewCtx(cfg.Tech, cfg.Dev, cfg.LongChannel)
	n := cfg.Tech

	side := math.Sqrt(cfg.ChipArea)

	// H-tree: total wire length of a k-level H-tree over a side-s square
	// approaches 3*s; the local grid adds wires at gridPitch spacing.
	const gridPitch = 300e-6
	htreeLen := 3 * side
	gridLen := 2 * cfg.ChipArea / gridPitch
	wireLen := htreeLen + gridLen

	wGlobal := n.Wire(tech.Aggressive, tech.Global)
	wireCap := wireLen * wGlobal.CapPerM

	sinkMult := cfg.SinkMult
	if sinkMult <= 0 {
		sinkMult = 1
	}
	sink := cfg.SinkCap
	if sink == 0 {
		sink = sinkCapPerArea(n) * cfg.ChipArea * sinkMult
	}

	// Buffers: repeater insertion along the tree and grid; buffer input
	// cap roughly 30% of the wire+sink load they drive.
	bufCap := 0.3 * (wireCap + sink)

	total := wireCap + sink + bufCap
	vdd := c.Vdd()
	// The clock toggles once per cycle on each node (energy C*V^2*f for
	// a full charge/discharge per cycle).
	pMax := total * vdd * vdd * cfg.ClockHz
	pPeak := pMax * cfg.GatingFactor

	// Buffer leakage: total buffer width from capacitance.
	bufW := bufCap / c.Dev.CgPerW
	sub := c.Dev.Ioff(bufW/2, bufW/2, n.Temperature) * vdd
	gate := c.Dev.Ig(bufW) * vdd

	// PLL + global drivers fixed overhead area; buffers dominate.
	area := bufW*4*n.Feature*2 + 0.05e-6

	return &Network{
		PAT: power.PAT{
			// Energy.Read is per-cycle energy, so that activity =
			// ClockHz reproduces PowerPeak/gating semantics.
			Energy: power.Energy{Read: total * vdd * vdd * cfg.GatingFactor},
			Static: power.Static{Sub: sub, Gate: gate},
			Area:   area,
			Delay:  0,
		},
		TotalCap:   total,
		WireCap:    wireCap,
		BufferCap:  bufCap,
		SinkCap:    sink,
		PowerPeak:  pPeak,
		PowerMax:   pMax,
		WireLength: wireLen,
	}, nil
}
