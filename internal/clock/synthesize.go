package clock

import "mcpat/internal/component"

// synthKey canonically identifies one clock-network synthesis: the raw
// Config (Config has no Name field and no consumed-then-ignored fields)
// with Tech replaced by the node's value fingerprint.
type synthKey struct {
	TechFP uint64
	Cfg    Config
}

// Synthesize is the memoized front of New: repeated synthesis of an
// equivalent clock-network configuration returns the one shared
// *Network instance, which must be treated as immutable. Because the
// key embeds ChipArea, the clock re-synthesizes whenever the chip
// floorplan changes — that is correct and cheap; the cache earns its
// keep on repeated evaluation of the same chip.
func Synthesize(cfg Config) (*Network, error) {
	if cfg.Tech == nil {
		return New(cfg) // surface the constructor's config error
	}
	key := synthKey{TechFP: cfg.Tech.Fingerprint(), Cfg: cfg}
	key.Cfg.Tech = nil
	return component.Memoize(component.KindClock, key, func() (*Network, error) {
		return New(cfg)
	})
}
