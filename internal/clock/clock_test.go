package clock

import (
	"testing"

	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

func TestNiagaraClassClockPower(t *testing.T) {
	// A 379 mm^2 chip at 1.2 GHz / 90 nm should burn several watts in the
	// clock network (published full-chip clocks run ~15-30% of dynamic).
	net, err := New(Config{
		Tech:     techtest.Node(90),
		Dev:      tech.HP,
		ChipArea: 379e-6,
		ClockHz:  1.2e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("379mm^2 @1.2GHz 90nm clock: peak=%.2f W max=%.2f W cap=%.2f nF wire=%.1f m",
		net.PowerPeak, net.PowerMax, net.TotalCap*1e9, net.WireLength)
	if net.PowerPeak < 2 || net.PowerPeak > 20 {
		t.Errorf("clock power = %.2f W, want 2-20 W", net.PowerPeak)
	}
	if net.PowerMax <= net.PowerPeak {
		t.Error("ungated power must exceed gated power")
	}
	if net.SinkCap <= 0 || net.WireCap <= 0 || net.BufferCap <= 0 {
		t.Error("all capacitance components must be positive")
	}
}

func TestClockScalesWithAreaAndFrequency(t *testing.T) {
	mk := func(area, hz float64) *Network {
		n, err := New(Config{Tech: techtest.Node(65), Dev: tech.HP, ChipArea: area, ClockHz: hz})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	small := mk(100e-6, 2e9)
	big := mk(400e-6, 2e9)
	if big.PowerPeak <= small.PowerPeak*2 {
		t.Errorf("4x area should give >2x clock power: %.2f vs %.2f", big.PowerPeak, small.PowerPeak)
	}
	fast := mk(100e-6, 4e9)
	ratio := fast.PowerPeak / small.PowerPeak
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("2x frequency should double clock power, ratio = %.2f", ratio)
	}
}

func TestExplicitSinkCap(t *testing.T) {
	cfg := Config{Tech: techtest.Node(45), Dev: tech.HP, ChipArea: 100e-6, ClockHz: 3e9, SinkCap: 2e-9}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.SinkCap != 2e-9 {
		t.Errorf("explicit sink cap ignored: %v", n.SinkCap)
	}
}

func TestGatingFactor(t *testing.T) {
	base := Config{Tech: techtest.Node(45), Dev: tech.HP, ChipArea: 100e-6, ClockHz: 3e9}
	def, _ := New(base)
	base.GatingFactor = 1.0
	ungated, _ := New(base)
	if ungated.PowerPeak <= def.PowerPeak {
		t.Error("gating factor 1.0 must exceed default 0.75")
	}
}

func TestClockValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil tech must fail")
	}
	if _, err := New(Config{Tech: techtest.Node(90), ChipArea: 0, ClockHz: 1e9}); err == nil {
		t.Error("zero area must fail")
	}
	if _, err := New(Config{Tech: techtest.Node(90), ChipArea: 1e-6, ClockHz: 0}); err == nil {
		t.Error("zero clock must fail")
	}
}
