// Package config implements McPAT's XML interface: hierarchical
// <component> elements carrying <param> (static configuration) and <stat>
// (runtime statistics) entries. The same file format both configures the
// modeled chip and delivers the per-component activity statistics an
// external performance simulator produces, decoupling performance
// simulation from power/area/timing modeling exactly as the paper
// describes.
package config

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mcpat/internal/guard"
)

// Component is one node of the XML configuration tree.
type Component struct {
	XMLName  xml.Name     `xml:"component"`
	ID       string       `xml:"id,attr"`
	Type     string       `xml:"type,attr"`
	Params   []Entry      `xml:"param"`
	Stats    []Entry      `xml:"stat"`
	Children []*Component `xml:"component"`
}

// Entry is a name/value pair.
type Entry struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// Parse reads an XML configuration document.
func Parse(r io.Reader) (*Component, error) {
	var root Component
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&root); err != nil {
		return nil, guard.Wrap(guard.ErrConfig, "config", err)
	}
	if root.ID == "" {
		return nil, guard.Configf("config", "root component has no id")
	}
	return &root, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Component, error) { return Parse(strings.NewReader(s)) }

// Write serializes the component tree as indented XML.
func (c *Component) Write(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(c); err != nil {
		return err
	}
	enc.Flush()
	_, err := io.WriteString(w, "\n")
	return err
}

// String renders the tree as XML.
func (c *Component) String() string {
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		return fmt.Sprintf("<error: %v>", err)
	}
	return b.String()
}

// Child returns the direct child with the given id suffix (the part after
// the last dot) or full id, or nil.
func (c *Component) Child(id string) *Component {
	for _, ch := range c.Children {
		if ch.ID == id {
			return ch
		}
		if i := strings.LastIndex(ch.ID, "."); i >= 0 && ch.ID[i+1:] == id {
			return ch
		}
	}
	return nil
}

// SetParam adds or replaces a parameter.
func (c *Component) SetParam(name, value string) {
	for i := range c.Params {
		if c.Params[i].Name == name {
			c.Params[i].Value = value
			return
		}
	}
	c.Params = append(c.Params, Entry{Name: name, Value: value})
}

// SetStat adds or replaces a statistic.
func (c *Component) SetStat(name, value string) {
	for i := range c.Stats {
		if c.Stats[i].Name == name {
			c.Stats[i].Value = value
			return
		}
	}
	c.Stats = append(c.Stats, Entry{Name: name, Value: value})
}

func lookup(entries []Entry, name string) (string, bool) {
	for _, e := range entries {
		if e.Name == name {
			return e.Value, true
		}
	}
	return "", false
}

// Param returns a parameter value and whether it was present.
func (c *Component) Param(name string) (string, bool) { return lookup(c.Params, name) }

// Stat returns a statistic value and whether it was present.
func (c *Component) Stat(name string) (string, bool) { return lookup(c.Stats, name) }

// ParamInt returns an integer parameter, or def when absent.
func (c *Component) ParamInt(name string, def int) int {
	if v, ok := c.Param(name); ok {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
			return n
		}
	}
	return def
}

// ParamFloat returns a float parameter, or def when absent.
func (c *Component) ParamFloat(name string, def float64) float64 {
	if v, ok := c.Param(name); ok {
		if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
			return f
		}
	}
	return def
}

// ParamBool returns a boolean parameter ("1"/"true"/"yes"), or def.
func (c *Component) ParamBool(name string, def bool) bool {
	if v, ok := c.Param(name); ok {
		switch strings.ToLower(strings.TrimSpace(v)) {
		case "1", "true", "yes":
			return true
		case "0", "false", "no":
			return false
		}
	}
	return def
}

// ParamString returns a string parameter, or def when absent.
func (c *Component) ParamString(name, def string) string {
	if v, ok := c.Param(name); ok {
		return strings.TrimSpace(v)
	}
	return def
}

// StatFloat returns a float statistic, or def when absent.
func (c *Component) StatFloat(name string, def float64) float64 {
	if v, ok := c.Stat(name); ok {
		if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
			return f
		}
	}
	return def
}
