package config

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mcpat/internal/presets"
)

// FuzzConfigParse asserts the no-panic contract of the XML front door:
// arbitrary input either fails with an error or yields a chip
// configuration and statistics vector whose numeric fields are all
// finite. The seed corpus covers the test fixture plus every bundled
// preset serialized through FromChipConfig, so mutation starts from
// realistic documents.
func FuzzConfigParse(f *testing.F) {
	f.Add(sampleXML)
	f.Add("")
	f.Add("<component id=\"system\" type=\"System\"></component>")
	f.Add(`<component id="system" type="System"><param name="tech_node_nm" value="nan"/></component>`)
	f.Add(`<component id="system" type="System"><stat name="noc_flits_per_sec" value="inf"/></component>`)
	for _, p := range presets.All() {
		var sb strings.Builder
		if err := FromChipConfig(p.Config).Write(&sb); err != nil {
			f.Fatalf("preset %s did not serialize: %v", p.Name, err)
		}
		f.Add(sb.String())
	}

	f.Fuzz(func(t *testing.T, doc string) {
		root, err := ParseString(doc)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		cfg, err := ToChipConfig(root)
		if err != nil {
			return
		}
		if bad := nonFinitePath(reflect.ValueOf(cfg), "cfg"); bad != "" {
			t.Fatalf("accepted config carries non-finite %s", bad)
		}
		if stats := ToStats(root); stats != nil {
			if bad := nonFinitePath(reflect.ValueOf(*stats), "stats"); bad != "" {
				t.Fatalf("accepted stats carry non-finite %s", bad)
			}
		}
		// The accepted document must survive re-serialization.
		if err := FromChipConfig(cfg).Write(&strings.Builder{}); err != nil {
			t.Fatalf("accepted config did not re-serialize: %v", err)
		}
	})
}

// nonFinitePath walks structs, pointers, and slices looking for the
// first NaN/Inf float64 and returns its field path ("" if none).
func nonFinitePath(v reflect.Value, path string) string {
	switch v.Kind() {
	case reflect.Float64:
		if f := v.Float(); math.IsNaN(f) || math.IsInf(f, 0) {
			return path
		}
	case reflect.Pointer:
		if !v.IsNil() {
			return nonFinitePath(v.Elem(), path)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if bad := nonFinitePath(v.Field(i), path+"."+v.Type().Field(i).Name); bad != "" {
				return bad
			}
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if bad := nonFinitePath(v.Index(i), path); bad != "" {
				return bad
			}
		}
	}
	return ""
}
