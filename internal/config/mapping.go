package config

import (
	"strconv"

	"mcpat/internal/cache"
	"mcpat/internal/chip"
	"mcpat/internal/core"
	"mcpat/internal/guard"
	"mcpat/internal/mc"
	"mcpat/internal/tech"
)

// The XML schema understood by this package (McPAT-style):
//
//	<component id="system" type="System">
//	  <param name="tech_node_nm"    value="90"/>
//	  <param name="clock_mhz"       value="1200"/>
//	  <param name="vdd"             value="1.2"/>        (optional)
//	  <param name="temperature_k"   value="360"/>        (optional)
//	  <param name="device_type"     value="HP"/>         (HP|LSTP|LOP)
//	  <param name="long_channel"    value="0"/>
//	  <param name="num_cores"       value="8"/>
//	  <param name="interconnect"    value="crossbar"/>   (none|bus|crossbar|mesh)
//	  <param name="flit_bits"       value="128"/>
//	  <param name="mesh_x"          value="4"/> <param name="mesh_y" value="2"/>
//	  <param name="other_area_mm2"  value="75"/>
//	  <component id="system.core" type="Core"> ... </component>
//	  <component id="system.L2"   type="CacheUnit"> ... </component>
//	  <component id="system.L3"   type="CacheUnit"> ... </component>
//	  <component id="system.mc"   type="MemoryController"> ... </component>
//	  <component id="system.niu"  type="NIU"> ... </component>
//	  <component id="system.pcie" type="PCIe"> ... </component>
//	</component>
//
// <stat> entries on the same components carry runtime statistics (see
// ToStats). Unknown parameters are ignored; absent ones take defaults.

// ToChipConfig converts a parsed XML tree into a chip configuration.
func ToChipConfig(root *Component) (chip.Config, error) {
	var cfg chip.Config
	if root == nil {
		return cfg, guard.Configf("config", "nil root")
	}
	cfg.Name = root.ParamString("name", root.ID)
	cfg.NM = root.ParamFloat("tech_node_nm", 0)
	if cfg.NM == 0 {
		return cfg, guard.Configf("config", "tech_node_nm is required")
	}
	cfg.ClockHz = root.ParamFloat("clock_mhz", 0) * 1e6
	if cfg.ClockHz == 0 {
		return cfg, guard.Configf("config", "clock_mhz is required")
	}
	cfg.Vdd = root.ParamFloat("vdd", 0)
	cfg.Temperature = root.ParamFloat("temperature_k", 0)
	dev, err := parseDevice(root.ParamString("device_type", "HP"))
	if err != nil {
		return cfg, err
	}
	cfg.Dev = dev
	cfg.LongChannel = root.ParamBool("long_channel", false)
	if root.ParamString("wire_projection", "aggressive") == "conservative" {
		cfg.WireProjection = tech.Conservative
	}
	cfg.NumCores = root.ParamInt("num_cores", 1)
	cfg.SharedFPUs = root.ParamInt("shared_fpus", 0)
	cfg.L2PeakDuty = root.ParamFloat("l2_peak_duty", 0)
	cfg.L3PeakDuty = root.ParamFloat("l3_peak_duty", 0)
	cfg.MCPeakUtil = root.ParamFloat("mc_peak_util", 0)
	cfg.ClockGating = root.ParamFloat("clock_gating", 0)
	cfg.ClockSinkMult = root.ParamFloat("clock_sink_mult", 0)
	cfg.OtherArea = root.ParamFloat("other_area_mm2", 0) * 1e-6

	switch root.ParamString("interconnect", "none") {
	case "none":
		cfg.NoC.Kind = chip.NoneIC
	case "bus":
		cfg.NoC.Kind = chip.Bus
	case "crossbar":
		cfg.NoC.Kind = chip.Crossbar
	case "mesh":
		cfg.NoC.Kind = chip.Mesh
	case "ring":
		cfg.NoC.Kind = chip.Ring
	default:
		return cfg, guard.Configf("config", "unknown interconnect %q", root.ParamString("interconnect", ""))
	}
	cfg.NoC.FlitBits = root.ParamInt("flit_bits", 128)
	cfg.NoC.MeshX = root.ParamInt("mesh_x", 0)
	cfg.NoC.MeshY = root.ParamInt("mesh_y", 0)
	cfg.NoC.VirtualChannels = root.ParamInt("noc_vcs", 2)
	cfg.NoC.BuffersPerVC = root.ParamInt("noc_buffers_per_vc", 4)

	if c := root.Child("core"); c != nil {
		cfg.Core = toCoreConfig(c)
	}
	if c := root.Child("L2"); c != nil {
		l2 := toCacheConfig(c, "L2")
		cfg.L2 = &l2
	}
	if c := root.Child("L3"); c != nil {
		l3 := toCacheConfig(c, "L3")
		cfg.L3 = &l3
	}
	if c := root.Child("mc"); c != nil {
		m := toMCConfig(c)
		cfg.MC = &m
	}
	if c := root.Child("niu"); c != nil {
		cfg.NIU = &mc.NIUConfig{
			Bandwidth: c.ParamFloat("bandwidth_gbps", 10) * 1e9,
			Count:     c.ParamInt("count", 1),
			PJPerBit:  c.ParamFloat("pj_per_bit", 0) * 1e-12,
		}
	}
	if c := root.Child("pcie"); c != nil {
		cfg.PCIe = &mc.PCIeConfig{
			Lanes:       c.ParamInt("lanes", 8),
			GbpsPerLane: c.ParamFloat("gbps_per_lane", 2.5),
		}
	}
	return cfg, nil
}

func parseDevice(s string) (tech.DeviceType, error) {
	switch s {
	case "HP", "hp":
		return tech.HP, nil
	case "LSTP", "lstp":
		return tech.LSTP, nil
	case "LOP", "lop":
		return tech.LOP, nil
	}
	return tech.HP, guard.Configf("config", "unknown device_type %q", s)
}

func toCoreConfig(c *Component) core.Config {
	cc := core.Config{
		Name:              c.ParamString("name", "core"),
		OoO:               c.ParamBool("ooo", false),
		X86:               c.ParamBool("x86", false),
		Threads:           c.ParamInt("threads", 1),
		FetchWidth:        c.ParamInt("fetch_width", 0),
		DecodeWidth:       c.ParamInt("decode_width", 0),
		IssueWidth:        c.ParamInt("issue_width", 0),
		CommitWidth:       c.ParamInt("commit_width", 0),
		PipelineDepth:     c.ParamInt("pipeline_depth", 0),
		ROBEntries:        c.ParamInt("rob_entries", 0),
		IQEntries:         c.ParamInt("iq_entries", 0),
		FPIQEntries:       c.ParamInt("fp_iq_entries", 0),
		PhysIntRegs:       c.ParamInt("phys_int_regs", 0),
		PhysFPRegs:        c.ParamInt("phys_fp_regs", 0),
		ArchIntRegs:       c.ParamInt("arch_int_regs", 0),
		ArchFPRegs:        c.ParamInt("arch_fp_regs", 0),
		BTBEntries:        c.ParamInt("btb_entries", 0),
		LocalPredEntries:  c.ParamInt("local_pred_entries", 0),
		GlobalPredEntries: c.ParamInt("global_pred_entries", 0),
		ChooserEntries:    c.ParamInt("chooser_entries", 0),
		RASEntries:        c.ParamInt("ras_entries", 0),
		ITLBEntries:       c.ParamInt("itlb_entries", 0),
		DTLBEntries:       c.ParamInt("dtlb_entries", 0),
		IntALUs:           c.ParamInt("int_alus", 0),
		FPUs:              c.ParamInt("fpus", 0),
		MulDivs:           c.ParamInt("muldivs", 0),
		LQEntries:         c.ParamInt("lq_entries", 0),
		SQEntries:         c.ParamInt("sq_entries", 0),
		GlueGates:         c.ParamInt("glue_gates", 0),
		GlueActivity:      c.ParamFloat("glue_activity", 0),
		RenameCAM:         c.ParamBool("rename_cam", false),
		PowerGating:       c.ParamBool("power_gating", false),
	}
	cc.ICache = core.CacheParams{
		Bytes:      c.ParamInt("icache_bytes", 0),
		BlockBytes: c.ParamInt("icache_block_bytes", 0),
		Assoc:      c.ParamInt("icache_assoc", 0),
		Banks:      c.ParamInt("icache_banks", 0),
		Ports:      c.ParamInt("icache_ports", 0),
	}
	cc.DCache = core.CacheParams{
		Bytes:      c.ParamInt("dcache_bytes", 0),
		BlockBytes: c.ParamInt("dcache_block_bytes", 0),
		Assoc:      c.ParamInt("dcache_assoc", 0),
		Banks:      c.ParamInt("dcache_banks", 0),
		Ports:      c.ParamInt("dcache_ports", 0),
	}
	return cc
}

func toCacheConfig(c *Component, name string) cache.Config {
	return cache.Config{
		Name:       c.ParamString("name", name),
		Bytes:      c.ParamInt("bytes", 0),
		BlockBytes: c.ParamInt("block_bytes", 0),
		Assoc:      c.ParamInt("assoc", 0),
		Banks:      c.ParamInt("banks", 0),
		Ports:      c.ParamInt("ports", 0),
		MSHRs:      c.ParamInt("mshrs", 0),
		WBDepth:    c.ParamInt("wb_depth", 0),
		Directory:  c.ParamBool("directory", false),
		Sharers:    c.ParamInt("sharers", 0),
		CellHP:     c.ParamBool("cell_hp", false),
		EDRAM:      c.ParamBool("edram", false),
	}
}

func toMCConfig(c *Component) mc.Config {
	return mc.Config{
		Channels:      c.ParamInt("channels", 1),
		DataBusBits:   c.ParamInt("data_bus_bits", 64),
		PeakBandwidth: c.ParamFloat("peak_bandwidth_gbs", 0) * 1e9,
		RequestDepth:  c.ParamInt("request_depth", 0),
		ReadDepth:     c.ParamInt("read_depth", 0),
		WriteDepth:    c.ParamInt("write_depth", 0),
		LVDS:          c.ParamBool("lvds", true),
		PHYPJPerBit:   c.ParamFloat("phy_pj_per_bit", 0) * 1e-12,
	}
}

// ToStats extracts runtime statistics from the XML tree. All statistics
// are optional; absent ones default to zero. Core statistics are given in
// events per cycle, chip-level traffic in events per second.
func ToStats(root *Component) *chip.Stats {
	s := &chip.Stats{}
	if root == nil {
		return s
	}
	if c := root.Child("core"); c != nil {
		s.CoreRun = core.Activity{
			ICacheAccess: c.StatFloat("icache_access_per_cycle", 0),
			BTBAccess:    c.StatFloat("btb_access_per_cycle", 0),
			PredAccess:   c.StatFloat("pred_access_per_cycle", 0),
			Decode:       c.StatFloat("decode_per_cycle", 0),
			Rename:       c.StatFloat("rename_per_cycle", 0),
			IQWakeup:     c.StatFloat("iq_wakeup_per_cycle", 0),
			IQIssue:      c.StatFloat("iq_issue_per_cycle", 0),
			IQWrite:      c.StatFloat("iq_write_per_cycle", 0),
			ROBAcc:       c.StatFloat("rob_access_per_cycle", 0),
			RFRead:       c.StatFloat("rf_read_per_cycle", 0),
			RFWrite:      c.StatFloat("rf_write_per_cycle", 0),
			FPRFRead:     c.StatFloat("fprf_read_per_cycle", 0),
			FPRFWrite:    c.StatFloat("fprf_write_per_cycle", 0),
			IntOp:        c.StatFloat("int_ops_per_cycle", 0),
			MulOp:        c.StatFloat("mul_ops_per_cycle", 0),
			FPOp:         c.StatFloat("fp_ops_per_cycle", 0),
			Bypass:       c.StatFloat("bypass_per_cycle", 0),
			DCacheRead:   c.StatFloat("dcache_read_per_cycle", 0),
			DCacheWrite:  c.StatFloat("dcache_write_per_cycle", 0),
			CacheMiss:    c.StatFloat("cache_miss_per_cycle", 0),
			LSQSearch:    c.StatFloat("lsq_search_per_cycle", 0),
			LSQAccess:    c.StatFloat("lsq_access_per_cycle", 0),
			ITLBAccess:   c.StatFloat("itlb_access_per_cycle", 0),
			DTLBAccess:   c.StatFloat("dtlb_access_per_cycle", 0),
			PipelineDuty: c.StatFloat("pipeline_duty", 0),
		}
	}
	if c := root.Child("L2"); c != nil {
		s.L2Reads = c.StatFloat("reads_per_sec", 0)
		s.L2Writes = c.StatFloat("writes_per_sec", 0)
	}
	if c := root.Child("L3"); c != nil {
		s.L3Reads = c.StatFloat("reads_per_sec", 0)
		s.L3Writes = c.StatFloat("writes_per_sec", 0)
	}
	s.NoCFlits = root.StatFloat("noc_flits_per_sec", 0)
	if c := root.Child("mc"); c != nil {
		s.MCAccesses = c.StatFloat("accesses_per_sec", 0)
	}
	if c := root.Child("niu"); c != nil {
		s.NIUBitsPerSec = c.StatFloat("bits_per_sec", 0)
	}
	if c := root.Child("pcie"); c != nil {
		s.PCIeBitsPerSec = c.StatFloat("bits_per_sec", 0)
	}
	s.FPOpsPerSec = root.StatFloat("shared_fp_ops_per_sec", 0)
	return s
}

// FromChipConfig builds the XML tree describing cfg, suitable for
// Write. It inverts ToChipConfig (round-trip safe for the mapped fields).
func FromChipConfig(cfg chip.Config) *Component {
	root := &Component{ID: "system", Type: "System"}
	root.SetParam("name", cfg.Name)
	root.SetParam("tech_node_nm", ftoa(cfg.NM))
	root.SetParam("clock_mhz", ftoa(cfg.ClockHz/1e6))
	if cfg.Vdd > 0 {
		root.SetParam("vdd", ftoa(cfg.Vdd))
	}
	if cfg.Temperature > 0 {
		root.SetParam("temperature_k", ftoa(cfg.Temperature))
	}
	root.SetParam("device_type", cfg.Dev.String())
	root.SetParam("long_channel", boolStr(cfg.LongChannel))
	root.SetParam("num_cores", itoa(cfg.NumCores))
	if cfg.SharedFPUs > 0 {
		root.SetParam("shared_fpus", itoa(cfg.SharedFPUs))
	}
	if cfg.OtherArea > 0 {
		root.SetParam("other_area_mm2", ftoa(cfg.OtherArea*1e6))
	}
	if cfg.L2PeakDuty > 0 {
		root.SetParam("l2_peak_duty", ftoa(cfg.L2PeakDuty))
	}
	if cfg.L3PeakDuty > 0 {
		root.SetParam("l3_peak_duty", ftoa(cfg.L3PeakDuty))
	}
	if cfg.ClockGating > 0 {
		root.SetParam("clock_gating", ftoa(cfg.ClockGating))
	}
	if cfg.ClockSinkMult > 0 {
		root.SetParam("clock_sink_mult", ftoa(cfg.ClockSinkMult))
	}
	if cfg.WireProjection == tech.Conservative {
		root.SetParam("wire_projection", "conservative")
	}
	root.SetParam("interconnect", cfg.NoC.Kind.String())
	root.SetParam("flit_bits", itoa(cfg.NoC.FlitBits))
	if cfg.NoC.Kind == chip.Mesh {
		root.SetParam("mesh_x", itoa(cfg.NoC.MeshX))
		root.SetParam("mesh_y", itoa(cfg.NoC.MeshY))
	}
	if cfg.NoC.VirtualChannels > 0 {
		root.SetParam("noc_vcs", itoa(cfg.NoC.VirtualChannels))
	}
	if cfg.NoC.BuffersPerVC > 0 {
		root.SetParam("noc_buffers_per_vc", itoa(cfg.NoC.BuffersPerVC))
	}

	root.Children = append(root.Children, fromCoreConfig(cfg.Core))
	if cfg.L2 != nil {
		root.Children = append(root.Children, fromCacheConfig(*cfg.L2, "system.L2"))
	}
	if cfg.L3 != nil {
		root.Children = append(root.Children, fromCacheConfig(*cfg.L3, "system.L3"))
	}
	if cfg.MC != nil {
		m := &Component{ID: "system.mc", Type: "MemoryController"}
		m.SetParam("channels", itoa(cfg.MC.Channels))
		m.SetParam("data_bus_bits", itoa(cfg.MC.DataBusBits))
		m.SetParam("peak_bandwidth_gbs", ftoa(cfg.MC.PeakBandwidth/1e9))
		m.SetParam("lvds", boolStr(cfg.MC.LVDS))
		if cfg.MC.PHYPJPerBit > 0 {
			m.SetParam("phy_pj_per_bit", ftoa(cfg.MC.PHYPJPerBit*1e12))
		}
		root.Children = append(root.Children, m)
	}
	if cfg.NIU != nil {
		n := &Component{ID: "system.niu", Type: "NIU"}
		n.SetParam("bandwidth_gbps", ftoa(cfg.NIU.Bandwidth/1e9))
		n.SetParam("count", itoa(cfg.NIU.Count))
		if cfg.NIU.PJPerBit > 0 {
			n.SetParam("pj_per_bit", ftoa(cfg.NIU.PJPerBit*1e12))
		}
		root.Children = append(root.Children, n)
	}
	if cfg.PCIe != nil {
		n := &Component{ID: "system.pcie", Type: "PCIe"}
		n.SetParam("lanes", itoa(cfg.PCIe.Lanes))
		n.SetParam("gbps_per_lane", ftoa(cfg.PCIe.GbpsPerLane))
		root.Children = append(root.Children, n)
	}
	return root
}

func fromCoreConfig(cc core.Config) *Component {
	c := &Component{ID: "system.core", Type: "Core"}
	set := func(name string, v int) {
		if v > 0 {
			c.SetParam(name, itoa(v))
		}
	}
	if cc.Name != "" {
		c.SetParam("name", cc.Name)
	}
	c.SetParam("ooo", boolStr(cc.OoO))
	c.SetParam("x86", boolStr(cc.X86))
	set("threads", cc.Threads)
	set("fetch_width", cc.FetchWidth)
	set("decode_width", cc.DecodeWidth)
	set("issue_width", cc.IssueWidth)
	set("commit_width", cc.CommitWidth)
	set("pipeline_depth", cc.PipelineDepth)
	set("rob_entries", cc.ROBEntries)
	set("iq_entries", cc.IQEntries)
	set("fp_iq_entries", cc.FPIQEntries)
	set("phys_int_regs", cc.PhysIntRegs)
	set("phys_fp_regs", cc.PhysFPRegs)
	set("arch_int_regs", cc.ArchIntRegs)
	set("arch_fp_regs", cc.ArchFPRegs)
	set("btb_entries", cc.BTBEntries)
	set("local_pred_entries", cc.LocalPredEntries)
	set("global_pred_entries", cc.GlobalPredEntries)
	set("chooser_entries", cc.ChooserEntries)
	set("ras_entries", cc.RASEntries)
	set("itlb_entries", cc.ITLBEntries)
	set("dtlb_entries", cc.DTLBEntries)
	set("int_alus", cc.IntALUs)
	set("fpus", cc.FPUs)
	set("muldivs", cc.MulDivs)
	set("lq_entries", cc.LQEntries)
	set("sq_entries", cc.SQEntries)
	set("glue_gates", cc.GlueGates)
	if cc.GlueActivity > 0 {
		c.SetParam("glue_activity", ftoa(cc.GlueActivity))
	}
	if cc.RenameCAM {
		c.SetParam("rename_cam", "1")
	}
	if cc.PowerGating {
		c.SetParam("power_gating", "1")
	}
	set("icache_bytes", cc.ICache.Bytes)
	set("icache_block_bytes", cc.ICache.BlockBytes)
	set("icache_assoc", cc.ICache.Assoc)
	set("icache_banks", cc.ICache.Banks)
	set("icache_ports", cc.ICache.Ports)
	set("dcache_bytes", cc.DCache.Bytes)
	set("dcache_block_bytes", cc.DCache.BlockBytes)
	set("dcache_assoc", cc.DCache.Assoc)
	set("dcache_banks", cc.DCache.Banks)
	set("dcache_ports", cc.DCache.Ports)
	return c
}

func fromCacheConfig(cc cache.Config, id string) *Component {
	c := &Component{ID: id, Type: "CacheUnit"}
	c.SetParam("name", cc.Name)
	c.SetParam("bytes", itoa(cc.Bytes))
	if cc.BlockBytes > 0 {
		c.SetParam("block_bytes", itoa(cc.BlockBytes))
	}
	if cc.Assoc > 0 {
		c.SetParam("assoc", itoa(cc.Assoc))
	}
	if cc.Banks > 0 {
		c.SetParam("banks", itoa(cc.Banks))
	}
	if cc.Ports > 0 {
		c.SetParam("ports", itoa(cc.Ports))
	}
	c.SetParam("directory", boolStr(cc.Directory))
	if cc.Sharers > 0 {
		c.SetParam("sharers", itoa(cc.Sharers))
	}
	if cc.CellHP {
		c.SetParam("cell_hp", "1")
	}
	if cc.EDRAM {
		c.SetParam("edram", "1")
	}
	return c
}

func itoa(i int) string { return strconv.Itoa(i) }

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// FromStats attaches runtime statistics to an existing configuration tree
// as <stat> entries, inverting ToStats: a performance simulator can build
// the combined configuration+statistics document this way, the workflow
// the original tool's scripts implement.
func FromStats(root *Component, s *chip.Stats) {
	if root == nil || s == nil {
		return
	}
	setStat := func(child *Component, name string, v float64) {
		if v != 0 {
			child.SetStat(name, ftoa(v))
		}
	}
	if c := root.Child("core"); c != nil {
		a := s.CoreRun
		setStat(c, "icache_access_per_cycle", a.ICacheAccess)
		setStat(c, "btb_access_per_cycle", a.BTBAccess)
		setStat(c, "pred_access_per_cycle", a.PredAccess)
		setStat(c, "decode_per_cycle", a.Decode)
		setStat(c, "rename_per_cycle", a.Rename)
		setStat(c, "iq_wakeup_per_cycle", a.IQWakeup)
		setStat(c, "iq_issue_per_cycle", a.IQIssue)
		setStat(c, "iq_write_per_cycle", a.IQWrite)
		setStat(c, "rob_access_per_cycle", a.ROBAcc)
		setStat(c, "rf_read_per_cycle", a.RFRead)
		setStat(c, "rf_write_per_cycle", a.RFWrite)
		setStat(c, "fprf_read_per_cycle", a.FPRFRead)
		setStat(c, "fprf_write_per_cycle", a.FPRFWrite)
		setStat(c, "int_ops_per_cycle", a.IntOp)
		setStat(c, "mul_ops_per_cycle", a.MulOp)
		setStat(c, "fp_ops_per_cycle", a.FPOp)
		setStat(c, "bypass_per_cycle", a.Bypass)
		setStat(c, "dcache_read_per_cycle", a.DCacheRead)
		setStat(c, "dcache_write_per_cycle", a.DCacheWrite)
		setStat(c, "cache_miss_per_cycle", a.CacheMiss)
		setStat(c, "lsq_search_per_cycle", a.LSQSearch)
		setStat(c, "lsq_access_per_cycle", a.LSQAccess)
		setStat(c, "itlb_access_per_cycle", a.ITLBAccess)
		setStat(c, "dtlb_access_per_cycle", a.DTLBAccess)
		setStat(c, "pipeline_duty", a.PipelineDuty)
	}
	if c := root.Child("L2"); c != nil {
		setStat(c, "reads_per_sec", s.L2Reads)
		setStat(c, "writes_per_sec", s.L2Writes)
	}
	if c := root.Child("L3"); c != nil {
		setStat(c, "reads_per_sec", s.L3Reads)
		setStat(c, "writes_per_sec", s.L3Writes)
	}
	if s.NoCFlits != 0 {
		root.SetStat("noc_flits_per_sec", ftoa(s.NoCFlits))
	}
	if c := root.Child("mc"); c != nil {
		setStat(c, "accesses_per_sec", s.MCAccesses)
	}
	if c := root.Child("niu"); c != nil {
		setStat(c, "bits_per_sec", s.NIUBitsPerSec)
	}
	if c := root.Child("pcie"); c != nil {
		setStat(c, "bits_per_sec", s.PCIeBitsPerSec)
	}
	if s.FPOpsPerSec != 0 {
		root.SetStat("shared_fp_ops_per_sec", ftoa(s.FPOpsPerSec))
	}
}
