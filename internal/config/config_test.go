package config

import (
	"strings"
	"testing"

	"mcpat/internal/chip"
	"mcpat/internal/core"

	"mcpat/internal/validation"
)

const sampleXML = `<?xml version="1.0"?>
<component id="system" type="System">
  <param name="name" value="testchip"/>
  <param name="tech_node_nm" value="45"/>
  <param name="clock_mhz" value="2000"/>
  <param name="vdd" value="1.0"/>
  <param name="device_type" value="HP"/>
  <param name="num_cores" value="4"/>
  <param name="interconnect" value="mesh"/>
  <param name="flit_bits" value="128"/>
  <param name="mesh_x" value="2"/>
  <param name="mesh_y" value="2"/>
  <stat name="noc_flits_per_sec" value="1e9"/>
  <component id="system.core" type="Core">
    <param name="threads" value="2"/>
    <param name="ooo" value="1"/>
    <param name="issue_width" value="4"/>
    <param name="icache_bytes" value="32768"/>
    <param name="dcache_bytes" value="32768"/>
    <param name="int_alus" value="3"/>
    <stat name="int_ops_per_cycle" value="1.7"/>
    <stat name="pipeline_duty" value="0.8"/>
  </component>
  <component id="system.L2" type="CacheUnit">
    <param name="bytes" value="2097152"/>
    <param name="banks" value="4"/>
    <stat name="reads_per_sec" value="2e9"/>
    <stat name="writes_per_sec" value="1e9"/>
  </component>
  <component id="system.mc" type="MemoryController">
    <param name="channels" value="2"/>
    <param name="peak_bandwidth_gbs" value="25"/>
    <stat name="accesses_per_sec" value="3e8"/>
  </component>
</component>`

func TestParseAndAccessors(t *testing.T) {
	root, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	if root.ID != "system" || root.Type != "System" {
		t.Fatalf("root = %s/%s", root.ID, root.Type)
	}
	if got := root.ParamInt("num_cores", 0); got != 4 {
		t.Errorf("num_cores = %d", got)
	}
	if got := root.ParamFloat("clock_mhz", 0); got != 2000 {
		t.Errorf("clock_mhz = %v", got)
	}
	if got := root.ParamString("device_type", ""); got != "HP" {
		t.Errorf("device_type = %q", got)
	}
	if !root.Child("core").ParamBool("ooo", false) {
		t.Error("ooo = false, want true")
	}
	if got := root.Child("core").StatFloat("int_ops_per_cycle", 0); got != 1.7 {
		t.Errorf("int_ops stat = %v", got)
	}
	// Defaults for absent entries.
	if got := root.ParamInt("missing", 42); got != 42 {
		t.Errorf("missing default = %d", got)
	}
}

func TestToChipConfig(t *testing.T) {
	root, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ToChipConfig(root)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NM != 45 || cfg.ClockHz != 2e9 || cfg.Vdd != 1.0 {
		t.Errorf("system params wrong: %+v", cfg)
	}
	if cfg.NoC.Kind != chip.Mesh || cfg.NoC.MeshX != 2 || cfg.NoC.MeshY != 2 {
		t.Errorf("NoC spec wrong: %+v", cfg.NoC)
	}
	if !cfg.Core.OoO || cfg.Core.IssueWidth != 4 || cfg.Core.ICache.Bytes != 32768 {
		t.Errorf("core config wrong: %+v", cfg.Core)
	}
	if cfg.L2 == nil || cfg.L2.Bytes != 2097152 || cfg.L2.Banks != 4 {
		t.Errorf("L2 config wrong: %+v", cfg.L2)
	}
	if cfg.MC == nil || cfg.MC.PeakBandwidth != 25e9 {
		t.Errorf("MC config wrong: %+v", cfg.MC)
	}
	// The parsed config must actually synthesize.
	if _, err := chip.New(cfg); err != nil {
		t.Fatalf("synthesizing parsed config: %v", err)
	}
}

func TestToStats(t *testing.T) {
	root, _ := ParseString(sampleXML)
	s := ToStats(root)
	if s.CoreRun.IntOp != 1.7 || s.CoreRun.PipelineDuty != 0.8 {
		t.Errorf("core stats wrong: %+v", s.CoreRun)
	}
	if s.L2Reads != 2e9 || s.L2Writes != 1e9 {
		t.Errorf("L2 stats wrong: %v/%v", s.L2Reads, s.L2Writes)
	}
	if s.MCAccesses != 3e8 || s.NoCFlits != 1e9 {
		t.Errorf("traffic stats wrong: %+v", s)
	}
}

func TestRoundTripValidationTargets(t *testing.T) {
	// Every validation descriptor must survive config -> XML -> config.
	for _, target := range validation.All() {
		xmlTree := FromChipConfig(target.Chip)
		text := xmlTree.String()
		parsed, err := ParseString(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v", target.Ref.Name, err)
		}
		got, err := ToChipConfig(parsed)
		if err != nil {
			t.Fatalf("%s: remap: %v", target.Ref.Name, err)
		}
		want := target.Chip
		// Compare the synthesized chips' totals: the round trip must not
		// change the model.
		pw, err := chip.New(want)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := chip.New(got)
		if err != nil {
			t.Fatalf("%s: synthesizing round-tripped config: %v", target.Ref.Name, err)
		}
		if w, g := pw.TDP(), pg.TDP(); !close(w, g, 1e-9) {
			t.Errorf("%s: TDP changed across round trip: %v -> %v", target.Ref.Name, w, g)
		}
		if w, g := pw.Area(), pg.Area(); !close(w, g, 1e-9) {
			t.Errorf("%s: area changed across round trip: %v -> %v", target.Ref.Name, w, g)
		}
	}
}

func close(a, b, rel float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= rel*(abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestWriteProducesValidXML(t *testing.T) {
	xmlTree := FromChipConfig(validation.Niagara().Chip)
	text := xmlTree.String()
	if !strings.Contains(text, `<component id="system" type="System">`) {
		t.Error("missing system component")
	}
	if !strings.Contains(text, "tech_node_nm") {
		t.Error("missing tech node param")
	}
	if _, err := ParseString(text); err != nil {
		t.Fatalf("generated XML does not parse: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("not xml"); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := ParseString("<component type='System'></component>"); err == nil {
		t.Error("missing id must fail")
	}
	root, _ := ParseString(sampleXML)
	root.SetParam("device_type", "QUANTUM")
	if _, err := ToChipConfig(root); err == nil {
		t.Error("unknown device type must fail")
	}
	root, _ = ParseString(sampleXML)
	root.SetParam("interconnect", "teleport")
	if _, err := ToChipConfig(root); err == nil {
		t.Error("unknown interconnect must fail")
	}
}

func TestExtendedParamsRoundTrip(t *testing.T) {
	// The newer knobs (ring fabric, eDRAM cells, CAM RAT, power gating,
	// conservative wires) must survive config -> XML -> config.
	cfg, err := ToChipConfig(must(t, `<component id="system" type="System">
	  <param name="tech_node_nm" value="32"/>
	  <param name="clock_mhz" value="2000"/>
	  <param name="num_cores" value="4"/>
	  <param name="interconnect" value="ring"/>
	  <param name="wire_projection" value="conservative"/>
	  <component id="system.core" type="Core">
	    <param name="ooo" value="1"/>
	    <param name="rename_cam" value="1"/>
	    <param name="power_gating" value="1"/>
	  </component>
	  <component id="system.L2" type="CacheUnit">
	    <param name="bytes" value="4194304"/>
	    <param name="edram" value="1"/>
	  </component>
	</component>`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NoC.Kind != chip.Ring {
		t.Error("ring fabric lost")
	}
	if !cfg.Core.RenameCAM || !cfg.Core.PowerGating {
		t.Error("core knobs lost")
	}
	if !cfg.L2.EDRAM {
		t.Error("eDRAM knob lost")
	}
	// Round trip.
	back, err := ToChipConfig(mustParse(t, FromChipConfig(cfg).String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NoC.Kind != chip.Ring || !back.Core.RenameCAM || !back.Core.PowerGating || !back.L2.EDRAM {
		t.Error("extended knobs lost in round trip")
	}
	if back.WireProjection != cfg.WireProjection {
		t.Error("wire projection lost in round trip")
	}
}

func must(t *testing.T, s string) *Component {
	t.Helper()
	return mustParse(t, s)
}

func mustParse(t *testing.T, s string) *Component {
	t.Helper()
	c, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetParamReplaces(t *testing.T) {
	c := &Component{ID: "x"}
	c.SetParam("a", "1")
	c.SetParam("a", "2")
	if len(c.Params) != 1 || c.Params[0].Value != "2" {
		t.Errorf("SetParam did not replace: %+v", c.Params)
	}
	c.SetStat("s", "1")
	c.SetStat("s", "3")
	if len(c.Stats) != 1 || c.Stats[0].Value != "3" {
		t.Errorf("SetStat did not replace: %+v", c.Stats)
	}
}

func TestFromStatsRoundTrip(t *testing.T) {
	cfg := validation.Niagara().Chip
	root := FromChipConfig(cfg)
	want := &chip.Stats{
		CoreRun: core.Activity{
			ICacheAccess: 0.9, Decode: 0.8, IntOp: 0.7,
			DCacheRead: 0.2, DCacheWrite: 0.1, PipelineDuty: 0.85,
		},
		L2Reads: 1.5e9, L2Writes: 0.5e9,
		NoCFlits:   2e9,
		MCAccesses: 3e8,
	}
	FromStats(root, want)
	parsed, err := ParseString(root.String())
	if err != nil {
		t.Fatal(err)
	}
	got := ToStats(parsed)
	if got.CoreRun.ICacheAccess != 0.9 || got.CoreRun.PipelineDuty != 0.85 {
		t.Errorf("core stats lost: %+v", got.CoreRun)
	}
	if got.L2Reads != 1.5e9 || got.L2Writes != 0.5e9 {
		t.Errorf("L2 stats lost: %v/%v", got.L2Reads, got.L2Writes)
	}
	if got.NoCFlits != 2e9 || got.MCAccesses != 3e8 {
		t.Errorf("traffic stats lost: %+v", got)
	}
}

func TestFromStatsNilSafe(t *testing.T) {
	FromStats(nil, &chip.Stats{})
	FromStats(&Component{ID: "x"}, nil) // must not panic
}
