package core

import "mcpat/internal/component"

// ActivityPair is the Score-phase payload of a core component, carried
// in component.Assignment.Vec: the TDP activity vector plus the measured
// runtime vector (events/cycle each).
type ActivityPair struct {
	Peak, Run Activity
}

// synthKey canonically identifies one core synthesis. The embedded
// Config is normalized (every default applied) with Tech replaced by the
// node's value fingerprint and Name cleared — Name only labels reports
// and errors, it never affects geometry or energy.
type synthKey struct {
	TechFP uint64
	Cfg    Config
}

// Synthesize is the memoized front of New: repeated synthesis of an
// equivalent core configuration returns the one shared *Core instance.
// The result must be treated as immutable (Report and Timings already
// are pure). Errors are never cached and carry the caller's Name.
func Synthesize(cfg Config) (*Core, error) {
	norm := cfg
	if err := norm.applyDefaults(); err != nil {
		return nil, err
	}
	key := synthKey{TechFP: norm.Tech.Fingerprint(), Cfg: norm}
	key.Cfg.Tech = nil
	key.Cfg.Name = ""
	return component.Memoize(component.KindCore, key, func() (*Core, error) {
		return New(cfg)
	})
}
