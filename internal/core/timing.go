package core

// Timing reports one core component's latency.
type Timing struct {
	Name  string
	Delay float64 // s, full access latency
	Cycle float64 // s, minimum pipelined cycle time
}

// Timings lists the latency of every timed component in the core, feeding
// the chip-level timing report that locates the hardware critical path.
func (c *Core) Timings() []Timing {
	var out []Timing
	add := func(name string, delay, cycle float64) {
		if delay > 0 {
			out = append(out, Timing{Name: name, Delay: delay, Cycle: cycle})
		}
	}
	add("icache", c.icache.AccessTime, c.icache.CycleTime)
	add("dcache", c.dcache.AccessTime, c.dcache.CycleTime)
	if c.btb != nil {
		add("btb", c.btb.AccessTime, c.btb.CycleTime)
	}
	add("decoder", c.decoder.Delay, c.decoder.Delay)
	add("rf.int", c.intRF.AccessTime, c.intRF.CycleTime)
	if c.fpRF != nil {
		add("rf.fp", c.fpRF.AccessTime, c.fpRF.CycleTime)
	}
	if c.Cfg.OoO {
		add("rat.int", c.intRAT.AccessTime, c.intRAT.CycleTime)
		add("iq.int", c.intIQ.AccessTime, c.intIQ.CycleTime)
		add("rob", c.rob.AccessTime, c.rob.CycleTime)
		add("select", c.sel.Delay, c.sel.Delay)
	}
	add("alu", c.alu.Delay, c.alu.Delay)
	if c.Cfg.FPUs > 0 {
		add("fpu-stage", c.fpu.Delay, c.fpu.Delay)
	}
	if c.Cfg.MulDivs > 0 {
		add("muldiv-stage", c.mul.Delay, c.mul.Delay)
	}
	add("bypass", c.bypassPAT.Delay, c.bypassPAT.Delay)
	add("lsq", c.lsq.AccessTime, c.lsq.CycleTime)
	add("itlb", c.itlb.AccessTime, c.itlb.CycleTime)
	add("dtlb", c.dtlb.AccessTime, c.dtlb.CycleTime)
	return out
}
