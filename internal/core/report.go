package core

import (
	"mcpat/internal/power"
)

// Activity gives average events per clock cycle for each micro-architectural
// event stream McPAT charges energy to. Peak (TDP) activity vectors use the
// maximum sustainable rates; runtime vectors come from a performance
// simulator's statistics.
type Activity struct {
	ICacheAccess float64
	BTBAccess    float64
	PredAccess   float64

	Decode float64 // instructions decoded per cycle
	Rename float64 // instructions renamed per cycle (OoO)

	IQWakeup float64 // issue-window tag broadcasts per cycle
	IQIssue  float64 // instructions issued from windows per cycle
	IQWrite  float64 // instructions inserted per cycle
	ROBAcc   float64 // ROB reads+writes per cycle

	RFRead    float64
	RFWrite   float64
	FPRFRead  float64
	FPRFWrite float64

	IntOp float64 // integer ALU ops per cycle
	MulOp float64
	FPOp  float64

	Bypass float64 // operands moved on the result/bypass bus per cycle

	DCacheRead  float64
	DCacheWrite float64
	CacheMiss   float64 // L1 misses per cycle (MSHR activity)

	LSQSearch float64
	LSQAccess float64

	ITLBAccess float64
	DTLBAccess float64

	PipelineDuty float64 // fraction of cycles the pipeline advances
}

// Scale returns the activity multiplied by k (e.g. a utilization factor).
func (a Activity) Scale(k float64) Activity {
	return Activity{
		ICacheAccess: a.ICacheAccess * k, BTBAccess: a.BTBAccess * k, PredAccess: a.PredAccess * k,
		Decode: a.Decode * k, Rename: a.Rename * k,
		IQWakeup: a.IQWakeup * k, IQIssue: a.IQIssue * k, IQWrite: a.IQWrite * k, ROBAcc: a.ROBAcc * k,
		RFRead: a.RFRead * k, RFWrite: a.RFWrite * k, FPRFRead: a.FPRFRead * k, FPRFWrite: a.FPRFWrite * k,
		IntOp: a.IntOp * k, MulOp: a.MulOp * k, FPOp: a.FPOp * k, Bypass: a.Bypass * k,
		DCacheRead: a.DCacheRead * k, DCacheWrite: a.DCacheWrite * k, CacheMiss: a.CacheMiss * k,
		LSQSearch: a.LSQSearch * k, LSQAccess: a.LSQAccess * k,
		ITLBAccess: a.ITLBAccess * k, DTLBAccess: a.DTLBAccess * k,
		PipelineDuty: a.PipelineDuty * k,
	}
}

// PeakActivity returns the TDP-condition activity vector for a core with
// the given configuration: every unit running at its maximum sustainable
// duty, following McPAT's TDP conventions (front end saturated, integer
// units near-saturated, FP units partially active under an integer-heavy
// thermal workload).
func PeakActivity(cfg Config) Activity {
	_ = cfg.applyDefaults()
	dw := float64(cfg.DecodeWidth)
	iw := float64(cfg.IssueWidth)
	intOps := 0.9 * float64(cfg.IntALUs)
	if intOps > iw {
		intOps = iw
	}
	a := Activity{
		ICacheAccess: 1.0,
		BTBAccess:    0.2 * dw,
		PredAccess:   0.2 * dw,
		Decode:       0.8 * dw,
		IntOp:        intOps,
		MulOp:        0.3 * float64(cfg.MulDivs),
		FPOp:         0.5 * float64(cfg.FPUs),
		DCacheRead:   0.25 * iw,
		DCacheWrite:  0.10 * iw,
		CacheMiss:    0.01,
		ITLBAccess:   1.0,
		PipelineDuty: 0.9,
	}
	a.DTLBAccess = a.DCacheRead + a.DCacheWrite
	a.LSQSearch = a.DCacheWrite
	a.LSQAccess = a.DCacheRead + a.DCacheWrite
	a.RFRead = 1.6 * (a.IntOp + a.MulOp)
	a.RFWrite = 0.8 * (a.IntOp + a.MulOp)
	a.FPRFRead = 1.6 * a.FPOp
	a.FPRFWrite = 0.8 * a.FPOp
	a.Bypass = a.IntOp + a.MulOp + a.FPOp + a.DCacheRead
	if cfg.OoO {
		a.Rename = a.Decode
		a.IQWrite = a.Decode
		a.IQIssue = 0.8 * iw
		a.IQWakeup = a.IQIssue
		a.ROBAcc = a.Decode + 0.8*float64(cfg.CommitWidth)
	}
	return a
}

// rate converts events/cycle into events/second.
func (c *Core) rate(perCycle float64) float64 { return perCycle * c.Cfg.ClockHz }

// leafRW builds a report leaf for an array accessed with the given
// read/write/search rates under peak and runtime activity.
func (c *Core) leaf(ar *power.Arena, name string, p power.PAT, peak, run power.Activity) *power.Item {
	return ar.FromPAT(name, p, peak, run)
}

func rw(reads, writes, searches float64) power.Activity {
	return power.Activity{Reads: reads, Writes: writes, Searches: searches}
}

// Report builds the hierarchical power/area report of the core. peak gives
// the TDP activity; run may be the zero Activity when no runtime
// statistics are available.
func (c *Core) Report(peak, run Activity) *power.Item {
	return c.ReportIn(nil, peak, run)
}

// ReportIn is Report with the result tree bump-allocated from ar (nil
// falls back to the heap — both paths run the identical arithmetic, so
// arena and heap reports are bit-identical by construction). Items are
// valid until ar is reset; see power.Arena for the lifetime contract.
func (c *Core) ReportIn(ar *power.Arena, peak, run Activity) *power.Item {
	cfg := &c.Cfg
	hz := cfg.ClockHz

	item := ar.NewItemN(cfg.Name, 6)

	// ------------- IFU -------------------------------------------------
	ifu := ar.NewItemN("IFU", 6)
	ifu.Add(c.leaf(ar, "icache", c.icache.PAT,
		rw(peak.ICacheAccess*hz, peak.CacheMiss*hz*0.3, 0),
		rw(run.ICacheAccess*hz, run.CacheMiss*hz*0.3, 0)))
	ifu.Add(c.leaf(ar, "icache.mshr", c.icacheMSH.PAT,
		rw(peak.CacheMiss*hz*0.3, peak.CacheMiss*hz*0.3, peak.CacheMiss*hz*0.3),
		rw(run.CacheMiss*hz*0.3, run.CacheMiss*hz*0.3, run.CacheMiss*hz*0.3)))
	if c.btb != nil {
		ifu.Add(c.leaf(ar, "btb", c.btb.PAT,
			rw(peak.BTBAccess*hz, peak.BTBAccess*hz*0.1, 0),
			rw(run.BTBAccess*hz, run.BTBAccess*hz*0.1, 0)))
	}
	pred := ar.NewItemN("predictor", 4)
	if c.localPred != nil {
		pred.Add(c.leaf(ar, "local", c.localPred.PAT,
			rw(peak.PredAccess*hz, peak.PredAccess*hz, 0),
			rw(run.PredAccess*hz, run.PredAccess*hz, 0)))
	}
	if c.globPred != nil {
		pred.Add(c.leaf(ar, "global", c.globPred.PAT,
			rw(peak.PredAccess*hz, peak.PredAccess*hz, 0),
			rw(run.PredAccess*hz, run.PredAccess*hz, 0)))
	}
	if c.chooser != nil {
		pred.Add(c.leaf(ar, "chooser", c.chooser.PAT,
			rw(peak.PredAccess*hz, peak.PredAccess*hz, 0),
			rw(run.PredAccess*hz, run.PredAccess*hz, 0)))
	}
	if c.ras != nil {
		pred.Add(c.leaf(ar, "ras", c.ras.PAT,
			rw(peak.PredAccess*hz*0.3, peak.PredAccess*hz*0.3, 0),
			rw(run.PredAccess*hz*0.3, run.PredAccess*hz*0.3, 0)))
	}
	if len(pred.Children) > 0 {
		ifu.Add(pred)
	}
	ifu.Add(c.leaf(ar, "fetchbuffer", c.fetchBuf.PAT,
		rw(peak.Decode*hz, peak.ICacheAccess*hz, 0),
		rw(run.Decode*hz, run.ICacheAccess*hz, 0)))
	ifu.Add(c.leaf(ar, "decoder", c.decoder,
		rw(peak.Decode*hz, 0, 0), rw(run.Decode*hz, 0, 0)))
	item.Add(ifu)

	// ------------- RNU -------------------------------------------------
	if cfg.OoO {
		rnu := ar.NewItemN("RenameUnit", 4)
		if cfg.RenameCAM {
			rnu.Add(c.leaf(ar, "rat.int", c.intRAT.PAT,
				rw(0, peak.Rename*hz, 2*peak.Rename*hz),
				rw(0, run.Rename*hz, 2*run.Rename*hz)))
			rnu.Add(c.leaf(ar, "rat.fp", c.fpRAT.PAT,
				rw(0, 0.25*peak.Rename*hz, 0.5*peak.Rename*hz),
				rw(0, 0.25*run.Rename*hz, 0.5*run.Rename*hz)))
		} else {
			rnu.Add(c.leaf(ar, "rat.int", c.intRAT.PAT,
				rw(2*peak.Rename*hz, peak.Rename*hz, 0),
				rw(2*run.Rename*hz, run.Rename*hz, 0)))
			rnu.Add(c.leaf(ar, "rat.fp", c.fpRAT.PAT,
				rw(0.5*peak.Rename*hz, 0.25*peak.Rename*hz, 0),
				rw(0.5*run.Rename*hz, 0.25*run.Rename*hz, 0)))
		}
		rnu.Add(c.leaf(ar, "freelist", c.freeList.PAT,
			rw(peak.Rename*hz, peak.Rename*hz, 0),
			rw(run.Rename*hz, run.Rename*hz, 0)))
		rnu.Add(c.leaf(ar, "depcheck", c.depCheck,
			rw(peak.Rename*hz/float64(maxInt(cfg.DecodeWidth, 1)), 0, 0),
			rw(run.Rename*hz/float64(maxInt(cfg.DecodeWidth, 1)), 0, 0)))
		item.Add(rnu)

		sched := ar.NewItemN("Scheduler", 4)
		sched.Add(c.leaf(ar, "iq.int", c.intIQ.PAT,
			rw(peak.IQIssue*hz, peak.IQWrite*hz, peak.IQWakeup*hz),
			rw(run.IQIssue*hz, run.IQWrite*hz, run.IQWakeup*hz)))
		sched.Add(c.leaf(ar, "iq.fp", c.fpIQ.PAT,
			rw(peak.FPOp*hz, peak.FPOp*hz, peak.FPOp*hz),
			rw(run.FPOp*hz, run.FPOp*hz, run.FPOp*hz)))
		sched.Add(c.leaf(ar, "rob", c.rob.PAT,
			rw(peak.ROBAcc*hz*0.5, peak.ROBAcc*hz*0.5, 0),
			rw(run.ROBAcc*hz*0.5, run.ROBAcc*hz*0.5, 0)))
		sched.Add(c.leaf(ar, "select", c.sel,
			rw(peak.IQIssue*hz, 0, 0), rw(run.IQIssue*hz, 0, 0)))
		item.Add(sched)
	} else {
		sched := ar.NewItemN("InstQueue", 1)
		sched.Add(c.leaf(ar, "instq", c.intIQ.PAT,
			rw(peak.Decode*hz, peak.Decode*hz, 0),
			rw(run.Decode*hz, run.Decode*hz, 0)))
		item.Add(sched)
	}

	// ------------- EXU -------------------------------------------------
	exu := ar.NewItemN("EXU", 8)
	exu.Add(c.leaf(ar, "rf.int", c.intRF.PAT,
		rw(peak.RFRead*hz, peak.RFWrite*hz, 0),
		rw(run.RFRead*hz, run.RFWrite*hz, 0)))
	if c.fpRF != nil {
		exu.Add(c.leaf(ar, "rf.fp", c.fpRF.PAT,
			rw(peak.FPRFRead*hz, peak.FPRFWrite*hz, 0),
			rw(run.FPRFRead*hz, run.FPRFWrite*hz, 0)))
	}
	alus := c.leaf(ar, "alus", c.alu, rw(peak.IntOp*hz, 0, 0), rw(run.IntOp*hz, 0, 0))
	alus.Area = c.alu.Area * float64(cfg.IntALUs)
	alus.SubLeak = c.alu.Static.Sub * float64(cfg.IntALUs)
	alus.GateLeak = c.alu.Static.Gate * float64(cfg.IntALUs)
	exu.Add(alus)
	if cfg.FPUs > 0 {
		fpus := c.leaf(ar, "fpus", c.fpu, rw(peak.FPOp*hz, 0, 0), rw(run.FPOp*hz, 0, 0))
		fpus.Area = c.fpu.Area * float64(cfg.FPUs)
		fpus.SubLeak = c.fpu.Static.Sub * float64(cfg.FPUs)
		fpus.GateLeak = c.fpu.Static.Gate * float64(cfg.FPUs)
		exu.Add(fpus)
	}
	if cfg.MulDivs > 0 {
		muls := c.leaf(ar, "muldiv", c.mul, rw(peak.MulOp*hz, 0, 0), rw(run.MulOp*hz, 0, 0))
		muls.Area = c.mul.Area * float64(cfg.MulDivs)
		muls.SubLeak = c.mul.Static.Sub * float64(cfg.MulDivs)
		muls.GateLeak = c.mul.Static.Gate * float64(cfg.MulDivs)
		exu.Add(muls)
	}
	bypass := ar.FromPAT("bypass", power.PAT{
		Energy: power.Energy{Read: c.bypassE},
		Static: c.bypassPAT.Static,
		Area:   c.bypassPAT.Area,
	}, rw(peak.Bypass*hz, 0, 0), rw(run.Bypass*hz, 0, 0))
	exu.Add(bypass)
	plPeak := c.pipeline.ePerCyc*peak.PipelineDuty + c.pipeline.ePerIdle*(1-peak.PipelineDuty)
	plRun := 0.0
	if run.PipelineDuty > 0 {
		plRun = c.pipeline.ePerCyc*run.PipelineDuty + c.pipeline.ePerIdle*(1-run.PipelineDuty)
	}
	pl := ar.NewItem("pipeline")
	pl.Area = c.pipeline.area
	pl.PeakDynamic = plPeak * hz
	pl.RuntimeDynamic = plRun * hz
	pl.SubLeak = c.pipeline.leak.Sub
	pl.GateLeak = c.pipeline.leak.Gate
	exu.Add(pl)
	glue := ar.NewItem("glue")
	glue.Area = c.glue.area
	glue.PeakDynamic = c.glue.ePerCyc * peak.PipelineDuty * hz
	glue.RuntimeDynamic = c.glue.ePerCyc * run.PipelineDuty * hz
	glue.SubLeak = c.glue.leak.Sub
	glue.GateLeak = c.glue.leak.Gate
	exu.Add(glue)
	item.Add(exu)

	// ------------- LSU -------------------------------------------------
	lsu := ar.NewItemN("LSU", 3)
	lsu.Add(c.leaf(ar, "dcache", c.dcache.PAT,
		rw(peak.DCacheRead*hz, peak.DCacheWrite*hz, 0),
		rw(run.DCacheRead*hz, run.DCacheWrite*hz, 0)))
	lsu.Add(c.leaf(ar, "dcache.mshr", c.dcacheMSH.PAT,
		rw(peak.CacheMiss*hz, peak.CacheMiss*hz, peak.CacheMiss*hz),
		rw(run.CacheMiss*hz, run.CacheMiss*hz, run.CacheMiss*hz)))
	lsu.Add(c.leaf(ar, "lsq", c.lsq.PAT,
		rw(peak.LSQAccess*hz, peak.LSQAccess*hz, peak.LSQSearch*hz),
		rw(run.LSQAccess*hz, run.LSQAccess*hz, run.LSQSearch*hz)))
	item.Add(lsu)

	// ------------- MMU -------------------------------------------------
	mmu := ar.NewItemN("MMU", 2)
	mmu.Add(c.leaf(ar, "itlb", c.itlb.PAT,
		rw(0, peak.CacheMiss*hz*0.01, peak.ITLBAccess*hz),
		rw(0, run.CacheMiss*hz*0.01, run.ITLBAccess*hz)))
	mmu.Add(c.leaf(ar, "dtlb", c.dtlb.PAT,
		rw(0, peak.CacheMiss*hz*0.01, peak.DTLBAccess*hz),
		rw(0, run.CacheMiss*hz*0.01, run.DTLBAccess*hz)))
	item.Add(mmu)

	item.Rollup()
	// Layout overhead: routing channels and white space within the core.
	item.Area *= 1.25
	if cfg.PowerGating {
		// Sleep transistors: ~5% area overhead; when runtime statistics
		// are present, the leakage of idle pipeline intervals is cut to
		// ~30% of nominal.
		item.Area *= 1.05
		if run.PipelineDuty > 0 {
			idle := 1 - run.PipelineDuty
			item.LeakSaved = 0.7 * idle * item.SubLeak
		}
	}
	return item
}

// Area returns the core area (m^2) including layout overhead.
func (c *Core) Area() float64 {
	rep := c.Report(Activity{}, Activity{})
	return rep.Area
}
