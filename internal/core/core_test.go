package core

import (
	"math"
	"testing"
	"testing/quick"

	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

// niagaraCfg is a Sun Niagara (UltraSPARC T1) style in-order core: 4
// threads, single issue, 16KB I$ / 8KB D$, shared FPU (not in the core).
func niagaraCfg() Config {
	return Config{
		Name:       "niagara-core",
		Tech:       techtest.Node(90),
		Dev:        tech.HP,
		ClockHz:    1.2e9,
		Threads:    4,
		FetchWidth: 1, DecodeWidth: 1, IssueWidth: 1, CommitWidth: 1,
		PipelineDepth: 6,
		ICache:        CacheParams{Bytes: 16 * 1024, BlockBytes: 32, Assoc: 4},
		DCache:        CacheParams{Bytes: 8 * 1024, BlockBytes: 16, Assoc: 4},
		ITLBEntries:   64, DTLBEntries: 64,
		IntALUs: 1, MulDivs: 1,
		LQEntries: 8, SQEntries: 8,
	}
}

// alphaCfg is an Alpha 21264/21364-class out-of-order core.
func alphaCfg() Config {
	return Config{
		Name:       "alpha-core",
		Tech:       techtest.Node(180),
		Dev:        tech.HP,
		ClockHz:    1.2e9,
		OoO:        true,
		FetchWidth: 4, DecodeWidth: 4, IssueWidth: 6, CommitWidth: 4,
		PipelineDepth: 7,
		ROBEntries:    80, IQEntries: 20, FPIQEntries: 15,
		PhysIntRegs: 80, PhysFPRegs: 72,
		ICache:            CacheParams{Bytes: 64 * 1024, BlockBytes: 64, Assoc: 2},
		DCache:            CacheParams{Bytes: 64 * 1024, BlockBytes: 64, Assoc: 2},
		BTBEntries:        512,
		LocalPredEntries:  1024,
		GlobalPredEntries: 4096,
		ChooserEntries:    4096,
		RASEntries:        32,
		ITLBEntries:       128, DTLBEntries: 128,
		IntALUs: 4, FPUs: 2, MulDivs: 1,
		LQEntries: 32, SQEntries: 32,
	}
}

func TestNiagaraCorePlausible(t *testing.T) {
	c, err := New(niagaraCfg())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report(PeakActivity(c.Cfg), Activity{})
	t.Logf("Niagara-like core @90nm 1.2GHz: area=%.2f mm^2 peakDyn=%.2f W leak=%.3f W total=%.2f W",
		rep.Area*1e6, rep.PeakDynamic, rep.Leakage(), rep.Peak())
	if mm2 := rep.Area * 1e6; mm2 < 3 || mm2 > 20 {
		t.Errorf("core area = %.2f mm^2, want 3-20 (published ~12)", mm2)
	}
	if w := rep.Peak(); w < 1 || w > 8 {
		t.Errorf("core peak power = %.2f W, want 1-8 (published ~4)", w)
	}
	for _, unit := range []string{"IFU", "EXU", "LSU", "MMU", "InstQueue"} {
		if rep.Find(unit) == nil {
			t.Errorf("missing unit %s in report", unit)
		}
	}
	if rep.Find("RenameUnit") != nil {
		t.Error("in-order core must not have a rename unit")
	}
}

func TestAlphaCorePlausible(t *testing.T) {
	c, err := New(alphaCfg())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report(PeakActivity(c.Cfg), Activity{})
	t.Logf("Alpha-like OoO core @180nm 1.2GHz: area=%.1f mm^2 peakDyn=%.1f W leak=%.2f W total=%.1f W",
		rep.Area*1e6, rep.PeakDynamic, rep.Leakage(), rep.Peak())
	// 21364's EV68 core was ~115 mm^2 at 180 nm including L1s; power
	// budget ~60-70 W of the 125 W chip.
	if mm2 := rep.Area * 1e6; mm2 < 30 || mm2 > 160 {
		t.Errorf("OoO core area = %.1f mm^2, want 30-160", mm2)
	}
	if w := rep.Peak(); w < 15 || w > 100 {
		t.Errorf("OoO core peak = %.1f W, want 15-100", w)
	}
	for _, unit := range []string{"RenameUnit", "Scheduler"} {
		if rep.Find(unit) == nil {
			t.Errorf("missing OoO unit %s", unit)
		}
	}
}

func TestOoOCostsMoreThanInOrder(t *testing.T) {
	n := techtest.Node(65)
	mk := func(ooo bool) float64 {
		cfg := niagaraCfg()
		cfg.Tech = n
		cfg.OoO = ooo
		if ooo {
			cfg.FetchWidth, cfg.DecodeWidth, cfg.IssueWidth, cfg.CommitWidth = 4, 4, 4, 4
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c.Report(PeakActivity(c.Cfg), Activity{}).Peak()
	}
	inorder, ooo := mk(false), mk(true)
	if ooo <= inorder*1.5 {
		t.Errorf("OoO core (%.2f W) should cost well over an in-order core (%.2f W)", ooo, inorder)
	}
}

func TestRuntimeBelowPeak(t *testing.T) {
	c, err := New(niagaraCfg())
	if err != nil {
		t.Fatal(err)
	}
	peak := PeakActivity(c.Cfg)
	run := peak.Scale(0.5)
	rep := c.Report(peak, run)
	if rep.RuntimeDynamic <= 0 {
		t.Fatal("runtime dynamic power missing")
	}
	if rep.RuntimeDynamic >= rep.PeakDynamic {
		t.Errorf("runtime (%.2f) must be below peak (%.2f) at half activity", rep.RuntimeDynamic, rep.PeakDynamic)
	}
	ratio := rep.RuntimeDynamic / rep.PeakDynamic
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("half activity should give roughly half power, got ratio %.2f", ratio)
	}
}

func TestMultithreadingGrowsCore(t *testing.T) {
	mk := func(threads int) float64 {
		cfg := niagaraCfg()
		cfg.Threads = threads
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c.Report(PeakActivity(c.Cfg), Activity{}).Area
	}
	if mk(4) <= mk(1) {
		t.Error("4-thread core must be larger than 1-thread core")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing tech must fail")
	}
	if _, err := New(Config{Tech: techtest.Node(90)}); err == nil {
		t.Error("missing clock must fail")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{Name: "d", Tech: techtest.Node(45), ClockHz: 2e9, OoO: true}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cfg.ROBEntries == 0 || c.Cfg.PhysIntRegs == 0 || c.Cfg.ICache.Bytes == 0 {
		t.Errorf("OoO defaults not applied: %+v", c.Cfg)
	}
	if c.Cfg.PipelineDepth != 14 {
		t.Errorf("OoO default pipeline = %d, want 14", c.Cfg.PipelineDepth)
	}
}

func TestPeakActivityShape(t *testing.T) {
	a := PeakActivity(niagaraCfg())
	if a.ICacheAccess != 1.0 {
		t.Errorf("TDP icache duty = %v, want 1.0", a.ICacheAccess)
	}
	if a.Rename != 0 || a.IQWakeup != 0 {
		t.Error("in-order TDP must not have rename/wakeup activity")
	}
	ao := PeakActivity(alphaCfg())
	if ao.Rename <= 0 || ao.IQIssue <= 0 || ao.ROBAcc <= 0 {
		t.Error("OoO TDP must include rename/issue/ROB activity")
	}
	if ao.IntOp > float64(alphaCfg().IssueWidth) {
		t.Error("TDP IntOps cannot exceed issue width")
	}
}

func TestActivityScale(t *testing.T) {
	a := PeakActivity(niagaraCfg())
	h := a.Scale(0.5)
	if math.Abs(h.ICacheAccess-0.5*a.ICacheAccess) > 1e-12 ||
		math.Abs(h.DCacheRead-0.5*a.DCacheRead) > 1e-12 {
		t.Error("Scale must multiply every field")
	}
}

func TestQuickCoreScalesWithWidth(t *testing.T) {
	n := techtest.Node(32)
	f := func(w uint8) bool {
		width := int(w%6) + 1
		cfg := Config{
			Name: "q", Tech: n, ClockHz: 2e9, OoO: true,
			FetchWidth: width, DecodeWidth: width, IssueWidth: width, CommitWidth: width,
			IntALUs: width, FPUs: 1, MulDivs: 1,
		}
		c, err := New(cfg)
		if err != nil {
			return false
		}
		rep := c.Report(PeakActivity(c.Cfg), Activity{})
		return rep.Area > 0 && rep.PeakDynamic > 0 && rep.Leakage() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestRenameCAMAlternative(t *testing.T) {
	ram := alphaCfg()
	cam := alphaCfg()
	cam.RenameCAM = true
	cr, err := New(ram)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := New(cam)
	if err != nil {
		t.Fatal(err)
	}
	pr := cr.Report(PeakActivity(ram), Activity{})
	pc := cc.Report(PeakActivity(cam), Activity{})
	ratRAM := pr.Find("rat.int")
	ratCAM := pc.Find("rat.int")
	if ratRAM == nil || ratCAM == nil {
		t.Fatal("missing RAT in report")
	}
	if ratCAM.PeakDynamic <= 0 || ratRAM.PeakDynamic <= 0 {
		t.Fatal("both RAT styles must report power")
	}

	// The trade-off McPAT exposes: CAM RAT energy scales with the
	// physical register count (search over all entries), RAM RAT with
	// the architectural count - so growing the physical file hurts the
	// CAM organization much more.
	grow := func(camStyle bool) float64 {
		cfg := alphaCfg()
		cfg.RenameCAM = camStyle
		cfg.PhysIntRegs = 320
		cfg.PhysFPRegs = 320
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c.Report(PeakActivity(cfg), Activity{}).Find("rat.int").PeakDynamic
	}
	camGrowth := grow(true) / ratCAM.PeakDynamic
	ramGrowth := grow(false) / ratRAM.PeakDynamic
	if camGrowth <= ramGrowth {
		t.Errorf("quadrupling physical registers should hurt CAM RAT (%.2fx) more than RAM RAT (%.2fx)",
			camGrowth, ramGrowth)
	}
}

func TestPowerGating(t *testing.T) {
	plain := niagaraCfg()
	gated := niagaraCfg()
	gated.PowerGating = true
	cp, err := New(plain)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := New(gated)
	if err != nil {
		t.Fatal(err)
	}
	peak := PeakActivity(plain)
	halfIdle := peak.Scale(0.5) // PipelineDuty 0.45

	rp := cp.Report(peak, halfIdle)
	rg := cg.Report(peak, halfIdle)

	// Sleep transistors cost area.
	if rg.Area <= rp.Area {
		t.Error("power gating must add area")
	}
	// Peak (TDP) unchanged in leakage terms: gates awake.
	if rg.Peak() < rp.Peak()*0.99 {
		t.Error("power gating must not reduce TDP")
	}
	// Runtime power drops: idle leakage is gated off.
	if rg.Runtime() >= rp.Runtime() {
		t.Errorf("gated runtime (%.2f W) must beat ungated (%.2f W)", rg.Runtime(), rp.Runtime())
	}
	if rg.LeakSaved <= 0 {
		t.Error("gated core must report leakage savings")
	}
	// No savings reported without runtime statistics.
	r0 := cg.Report(peak, Activity{})
	if r0.LeakSaved != 0 {
		t.Error("no runtime stats -> no gating savings to report")
	}
}

func TestCoreTimings(t *testing.T) {
	c, err := New(alphaCfg())
	if err != nil {
		t.Fatal(err)
	}
	ts := c.Timings()
	if len(ts) < 10 {
		t.Fatalf("OoO core should report many timed components, got %d", len(ts))
	}
	seen := map[string]bool{}
	for _, x := range ts {
		seen[x.Name] = true
		if x.Delay <= 0 {
			t.Errorf("%s: non-positive delay", x.Name)
		}
	}
	for _, want := range []string{"icache", "rat.int", "iq.int", "rob", "alu", "fpu-stage"} {
		if !seen[want] {
			t.Errorf("missing timing for %s", want)
		}
	}
	inorder, _ := New(niagaraCfg())
	for _, x := range inorder.Timings() {
		if x.Name == "rob" || x.Name == "rat.int" {
			t.Error("in-order core must not report OoO structures")
		}
	}
}
