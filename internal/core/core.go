// Package core implements McPAT's processor-core model. A core is
// decomposed the way the McPAT paper does:
//
//   - Instruction Fetch Unit (IFU): instruction cache, branch target
//     buffer, tournament branch predictor, return address stacks, fetch
//     buffer, and instruction decoders;
//   - Renaming Unit (RNU, out-of-order only): register alias tables, free
//     lists, and inter-instruction dependency-check logic;
//   - Scheduler (out-of-order only): integer/FP issue windows (CAM-based
//     wakeup), reorder buffer, and selection logic; in-order cores carry a
//     simple instruction queue instead;
//   - Execution Unit (EXU): integer/FP register files, ALUs, FPUs,
//     multiplier/dividers, the result-bus/bypass network, and pipeline
//     registers;
//   - Load/Store Unit (LSU): data cache and load/store queue CAMs;
//   - Memory Management Unit (MMU): instruction and data TLBs.
//
// Every storage structure is synthesized through the array model, logic
// through the logic models, and the bypass network through the wire
// models, so a core is a pure composition of the circuit-level substrates.
package core

import (
	"fmt"
	"math"

	"mcpat/internal/array"
	"mcpat/internal/circuit"
	"mcpat/internal/logic"
	"mcpat/internal/power"
	"mcpat/internal/tech"
)

// CacheParams configures a private L1 cache.
type CacheParams struct {
	Bytes      int
	BlockBytes int
	Assoc      int
	Banks      int
	MSHRs      int // miss-status holding registers
	Ports      int // read/write ports (1 = single RW port)
}

func (c *CacheParams) defaults(bytes int) {
	if c.Bytes == 0 {
		c.Bytes = bytes
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 32
	}
	if c.Assoc == 0 {
		c.Assoc = 4
	}
	if c.Banks == 0 {
		c.Banks = 1
	}
	if c.MSHRs == 0 {
		c.MSHRs = 8
	}
	if c.Ports == 0 {
		c.Ports = 1
	}
}

// Config describes one processor core.
type Config struct {
	Name string

	Tech        *tech.Node
	Dev         tech.DeviceType
	LongChannel bool
	ClockHz     float64

	OoO bool // out-of-order (Alpha/Xeon class) vs in-order (Niagara class)
	X86 bool // CISC front end

	Threads int // hardware thread contexts (1 = single-threaded)

	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	CommitWidth int

	PipelineDepth int
	DatapathBits  int // 64 for all validation targets

	// Out-of-order structures.
	ROBEntries  int
	IQEntries   int // integer issue window
	FPIQEntries int
	PhysIntRegs int
	PhysFPRegs  int

	// Architectural registers per thread.
	ArchIntRegs int
	ArchFPRegs  int

	ICache CacheParams
	DCache CacheParams

	// Branch prediction (zero values disable the predictor).
	BTBEntries        int
	LocalPredEntries  int
	GlobalPredEntries int
	ChooserEntries    int
	RASEntries        int

	ITLBEntries int
	DTLBEntries int

	IntALUs int
	FPUs    int
	MulDivs int

	LQEntries int
	SQEntries int

	// GlueGates is the size (in 2-input-gate equivalents) of the core's
	// execution-control and datapath glue logic: thread pick/steering,
	// operand muxing, stall/replay control, trap logic - everything McPAT
	// inventories outside the regular arrays and functional units. Zero
	// selects a heuristic derived from issue width and thread count,
	// calibrated against published core transistor budgets (Niagara ~2M
	// gate equivalents, Alpha 21264-class ~4M).
	GlueGates int

	// GlueActivity is the fraction of glue gates toggling per active
	// cycle. Zero selects 0.10; deeply pipelined speculative designs
	// (NetBurst class) run much hotter (~0.25) due to replay and
	// double-pumped datapaths.
	GlueActivity float64

	// RenameCAM selects a CAM-based register alias table (one entry per
	// physical register, searched on every rename and walked on
	// recovery) instead of the default RAM-based RAT - the alternative
	// renaming organization McPAT models.
	RenameCAM bool

	// PowerGating adds sleep transistors to the core: runtime leakage
	// scales down with pipeline idleness at a ~5% core area cost.
	PowerGating bool
}

func (cfg *Config) applyDefaults() error {
	if cfg.Tech == nil {
		return fmt.Errorf("core %q: technology node required", cfg.Name)
	}
	if cfg.ClockHz <= 0 {
		return fmt.Errorf("core %q: clock frequency required", cfg.Name)
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.FetchWidth <= 0 {
		cfg.FetchWidth = 1
	}
	if cfg.DecodeWidth <= 0 {
		cfg.DecodeWidth = cfg.FetchWidth
	}
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = cfg.DecodeWidth
	}
	if cfg.CommitWidth <= 0 {
		cfg.CommitWidth = cfg.IssueWidth
	}
	if cfg.PipelineDepth <= 0 {
		if cfg.OoO {
			cfg.PipelineDepth = 14
		} else {
			cfg.PipelineDepth = 6
		}
	}
	if cfg.DatapathBits <= 0 {
		cfg.DatapathBits = 64
	}
	if cfg.ArchIntRegs <= 0 {
		cfg.ArchIntRegs = 32
	}
	if cfg.ArchFPRegs <= 0 {
		cfg.ArchFPRegs = 32
	}
	if cfg.OoO {
		if cfg.ROBEntries <= 0 {
			cfg.ROBEntries = 80
		}
		if cfg.IQEntries <= 0 {
			cfg.IQEntries = 20
		}
		if cfg.FPIQEntries <= 0 {
			cfg.FPIQEntries = 15
		}
		if cfg.PhysIntRegs <= 0 {
			cfg.PhysIntRegs = 80
		}
		if cfg.PhysFPRegs <= 0 {
			cfg.PhysFPRegs = 72
		}
	}
	cfg.ICache.defaults(16 * 1024)
	cfg.DCache.defaults(8 * 1024)
	if cfg.ITLBEntries <= 0 {
		cfg.ITLBEntries = 48
	}
	if cfg.DTLBEntries <= 0 {
		cfg.DTLBEntries = 64
	}
	if cfg.IntALUs <= 0 {
		cfg.IntALUs = 1
	}
	if cfg.LQEntries <= 0 {
		cfg.LQEntries = 16
	}
	if cfg.SQEntries <= 0 {
		cfg.SQEntries = 16
	}
	if cfg.GlueGates <= 0 {
		if cfg.OoO {
			cfg.GlueGates = 650e3*cfg.IssueWidth + 200e3*cfg.Threads
		} else {
			cfg.GlueGates = 400e3*cfg.IssueWidth + 350e3*cfg.Threads
		}
	}
	if cfg.GlueActivity <= 0 {
		cfg.GlueActivity = 0.10
	}
	return nil
}

// Core is a synthesized processor core.
type Core struct {
	Cfg Config

	// IFU
	icache    *array.Result
	icacheMSH *array.Result
	btb       *array.Result
	localPred *array.Result
	globPred  *array.Result
	chooser   *array.Result
	ras       *array.Result
	fetchBuf  *array.Result
	decoder   power.PAT

	// RNU (OoO)
	intRAT   *array.Result
	fpRAT    *array.Result
	freeList *array.Result
	depCheck power.PAT

	// Scheduler
	intIQ *array.Result // CAM window (OoO) or simple queue (in-order)
	fpIQ  *array.Result
	rob   *array.Result
	sel   power.PAT

	// EXU
	intRF     *array.Result
	fpRF      *array.Result
	alu       power.PAT
	fpu       power.PAT
	mul       power.PAT
	bypassE   float64 // J per operand transported on the bypass/result bus
	bypassPAT power.PAT
	pipeline  pipelineRegs
	glue      glueLogic

	// LSU
	dcache    *array.Result
	dcacheMSH *array.Result
	lsq       *array.Result

	// MMU
	itlb *array.Result
	dtlb *array.Result
}

// glueLogic models the non-array, non-FU control and datapath logic of
// the core as a synthesized standard-cell population.
type glueLogic struct {
	gates   float64
	ePerCyc float64 // J per fully active cycle (10% of gates toggle)
	leak    power.Static
	area    float64
}

// pipelineRegs tracks the latch overhead of the core pipeline.
type pipelineRegs struct {
	bits     float64 // total pipeline register bits
	ff       circuit.DFF
	leak     power.Static
	area     float64
	ePerCyc  float64 // J per cycle at full activity (clk + data toggles)
	ePerIdle float64 // J per cycle when stalled (clock only, gated fraction)
}

// New synthesizes the core.
func New(cfg Config) (*Core, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	c := &Core{Cfg: cfg}
	n := cfg.Tech
	cycle := 1 / cfg.ClockHz

	mk := func(a array.Config) (*array.Result, error) {
		a.Tech = n
		a.Periph = cfg.Dev
		a.Cell = cfg.Dev
		a.LongChannel = cfg.LongChannel
		if a.TargetCycle == 0 {
			a.TargetCycle = cycle
		}
		return array.New(a)
	}

	var err error
	// ---------------- IFU ----------------------------------------------
	if c.icache, err = mk(array.Config{
		Name:  cfg.Name + ".icache",
		Bytes: cfg.ICache.Bytes, BlockBits: cfg.ICache.BlockBytes * 8,
		Assoc: cfg.ICache.Assoc, Banks: cfg.ICache.Banks,
		RWPorts: cfg.ICache.Ports,
	}); err != nil {
		return nil, err
	}
	if c.icacheMSH, err = mk(array.Config{
		Name:    cfg.Name + ".icache.mshr",
		Entries: cfg.ICache.MSHRs, EntryBits: physAddrBits,
		CellKind: array.CAM, SearchPorts: 1, RWPorts: 1,
	}); err != nil {
		return nil, err
	}
	if cfg.BTBEntries > 0 {
		if c.btb, err = mk(array.Config{
			Name:    cfg.Name + ".btb",
			Entries: cfg.BTBEntries, EntryBits: 24 + 32, // tag + target
			RWPorts: 1,
		}); err != nil {
			return nil, err
		}
	}
	mkPred := func(name string, entries, bits int) (*array.Result, error) {
		if entries <= 0 {
			return nil, nil
		}
		return mk(array.Config{
			Name:    cfg.Name + "." + name,
			Entries: entries, EntryBits: bits,
			RdPorts: 1, WrPorts: 1,
		})
	}
	if c.localPred, err = mkPred("bpred.local", cfg.LocalPredEntries, 2+10); err != nil {
		return nil, err
	}
	if c.globPred, err = mkPred("bpred.global", cfg.GlobalPredEntries, 2); err != nil {
		return nil, err
	}
	if c.chooser, err = mkPred("bpred.chooser", cfg.ChooserEntries, 2); err != nil {
		return nil, err
	}
	if cfg.RASEntries > 0 {
		if c.ras, err = mk(array.Config{
			Name:    cfg.Name + ".ras",
			Entries: cfg.RASEntries * cfg.Threads, EntryBits: 64,
			CellKind: array.DFF, RdPorts: 1, WrPorts: 1,
		}); err != nil {
			return nil, err
		}
	}
	instBits := 32
	if cfg.X86 {
		instBits = 16 * 8 // x86 fetch buffer holds raw byte stream
	}
	if c.fetchBuf, err = mk(array.Config{
		Name:    cfg.Name + ".fetchbuf",
		Entries: 2 * cfg.FetchWidth * cfg.Threads, EntryBits: instBits,
		CellKind: array.DFF, RdPorts: 1, WrPorts: 1,
	}); err != nil {
		return nil, err
	}
	c.decoder = logic.Decoder(n, cfg.Dev, cfg.LongChannel, logic.DecoderConfig{
		Width: cfg.DecodeWidth, OpcodeBits: 8, X86: cfg.X86,
	})

	// ---------------- RNU (OoO only) ------------------------------------
	if cfg.OoO {
		physBits := ceilLog2(cfg.PhysIntRegs)
		archBits := ceilLog2(cfg.ArchIntRegs*cfg.Threads) + 1
		if cfg.RenameCAM {
			// CAM RAT: one entry per physical register holding the
			// architectural tag; renames search, recovery flash-clears.
			if c.intRAT, err = mk(array.Config{
				Name:    cfg.Name + ".rat.int",
				Entries: cfg.PhysIntRegs, EntryBits: 4, TagBits: archBits,
				CellKind: array.CAM, SearchPorts: 2 * cfg.DecodeWidth,
				RdPorts: cfg.DecodeWidth, WrPorts: cfg.DecodeWidth,
			}); err != nil {
				return nil, err
			}
			if c.fpRAT, err = mk(array.Config{
				Name:    cfg.Name + ".rat.fp",
				Entries: cfg.PhysFPRegs, EntryBits: 4, TagBits: archBits,
				CellKind: array.CAM, SearchPorts: 2 * cfg.DecodeWidth,
				RdPorts: cfg.DecodeWidth, WrPorts: cfg.DecodeWidth,
			}); err != nil {
				return nil, err
			}
		} else {
			if c.intRAT, err = mk(array.Config{
				Name:    cfg.Name + ".rat.int",
				Entries: cfg.ArchIntRegs * cfg.Threads, EntryBits: physBits,
				RdPorts: 2 * cfg.DecodeWidth, WrPorts: cfg.DecodeWidth,
			}); err != nil {
				return nil, err
			}
			if c.fpRAT, err = mk(array.Config{
				Name:    cfg.Name + ".rat.fp",
				Entries: cfg.ArchFPRegs * cfg.Threads, EntryBits: ceilLog2(cfg.PhysFPRegs),
				RdPorts: 2 * cfg.DecodeWidth, WrPorts: cfg.DecodeWidth,
			}); err != nil {
				return nil, err
			}
		}
		if c.freeList, err = mk(array.Config{
			Name:    cfg.Name + ".freelist",
			Entries: cfg.PhysIntRegs + cfg.PhysFPRegs, EntryBits: physBits,
			RdPorts: cfg.DecodeWidth, WrPorts: cfg.CommitWidth,
		}); err != nil {
			return nil, err
		}
		c.depCheck = logic.DependencyCheck(n, cfg.Dev, cfg.LongChannel, cfg.DecodeWidth, physBits)

		// ---------------- Scheduler --------------------------------------
		if c.intIQ, err = mk(array.Config{
			Name:    cfg.Name + ".iq.int",
			Entries: cfg.IQEntries, EntryBits: 40, TagBits: 2 * physBits,
			CellKind: array.CAM, SearchPorts: cfg.IssueWidth,
			RdPorts: cfg.IssueWidth, WrPorts: cfg.DecodeWidth,
		}); err != nil {
			return nil, err
		}
		if c.fpIQ, err = mk(array.Config{
			Name:    cfg.Name + ".iq.fp",
			Entries: cfg.FPIQEntries, EntryBits: 40, TagBits: 2 * ceilLog2(cfg.PhysFPRegs),
			CellKind: array.CAM, SearchPorts: cfg.IssueWidth,
			RdPorts: cfg.IssueWidth, WrPorts: cfg.DecodeWidth,
		}); err != nil {
			return nil, err
		}
		if c.rob, err = mk(array.Config{
			Name:    cfg.Name + ".rob",
			Entries: cfg.ROBEntries, EntryBits: 76,
			RdPorts: cfg.CommitWidth, WrPorts: cfg.DecodeWidth,
		}); err != nil {
			return nil, err
		}
		c.sel = logic.Selection(n, cfg.Dev, cfg.LongChannel, cfg.IQEntries, cfg.IssueWidth)
	} else {
		// In-order: a small instruction queue per thread.
		if c.intIQ, err = mk(array.Config{
			Name:    cfg.Name + ".instq",
			Entries: 8 * cfg.Threads, EntryBits: 32,
			CellKind: array.DFF, RdPorts: 1, WrPorts: 1,
		}); err != nil {
			return nil, err
		}
	}

	// ---------------- EXU -----------------------------------------------
	intRFEntries := cfg.ArchIntRegs * cfg.Threads
	fpRFEntries := cfg.ArchFPRegs * cfg.Threads
	if cfg.OoO {
		intRFEntries = cfg.PhysIntRegs
		fpRFEntries = cfg.PhysFPRegs
	}
	if c.intRF, err = mk(array.Config{
		Name:    cfg.Name + ".rf.int",
		Entries: intRFEntries, EntryBits: cfg.DatapathBits,
		RdPorts: 2 * cfg.IssueWidth, WrPorts: cfg.IssueWidth,
	}); err != nil {
		return nil, err
	}
	if cfg.FPUs > 0 || fpRFEntries > 0 {
		if c.fpRF, err = mk(array.Config{
			Name:    cfg.Name + ".rf.fp",
			Entries: fpRFEntries, EntryBits: cfg.DatapathBits,
			RdPorts: 2 * maxInt(cfg.FPUs, 1), WrPorts: maxInt(cfg.FPUs, 1),
		}); err != nil {
			return nil, err
		}
	}
	if c.alu, err = logic.FunctionalUnit(n, cfg.Dev, cfg.LongChannel, logic.IntALU); err != nil {
		return nil, err
	}
	if cfg.FPUs > 0 {
		if c.fpu, err = logic.FunctionalUnit(n, cfg.Dev, cfg.LongChannel, logic.FPU); err != nil {
			return nil, err
		}
	}
	if cfg.MulDivs > 0 {
		if c.mul, err = logic.FunctionalUnit(n, cfg.Dev, cfg.LongChannel, logic.MulDiv); err != nil {
			return nil, err
		}
	}

	// ---------------- LSU -----------------------------------------------
	if c.dcache, err = mk(array.Config{
		Name:  cfg.Name + ".dcache",
		Bytes: cfg.DCache.Bytes, BlockBits: cfg.DCache.BlockBytes * 8,
		Assoc: cfg.DCache.Assoc, Banks: cfg.DCache.Banks,
		RWPorts: cfg.DCache.Ports,
	}); err != nil {
		return nil, err
	}
	if c.dcacheMSH, err = mk(array.Config{
		Name:    cfg.Name + ".dcache.mshr",
		Entries: cfg.DCache.MSHRs, EntryBits: physAddrBits,
		CellKind: array.CAM, SearchPorts: 1, RWPorts: 1,
	}); err != nil {
		return nil, err
	}
	if c.lsq, err = mk(array.Config{
		Name:    cfg.Name + ".lsq",
		Entries: cfg.LQEntries + cfg.SQEntries, EntryBits: cfg.DatapathBits,
		TagBits:  physAddrBits,
		CellKind: array.CAM, SearchPorts: 1, RdPorts: 1, WrPorts: 1,
	}); err != nil {
		return nil, err
	}

	// ---------------- MMU -----------------------------------------------
	if c.itlb, err = mk(array.Config{
		Name:    cfg.Name + ".itlb",
		Entries: cfg.ITLBEntries, EntryBits: 30, TagBits: 45,
		CellKind: array.CAM, SearchPorts: 1, RWPorts: 1,
	}); err != nil {
		return nil, err
	}
	if c.dtlb, err = mk(array.Config{
		Name:    cfg.Name + ".dtlb",
		Entries: cfg.DTLBEntries, EntryBits: 30, TagBits: 45,
		CellKind: array.CAM, SearchPorts: cfg.DCache.Ports, RWPorts: 1,
	}); err != nil {
		return nil, err
	}

	// ---------------- Bypass network and pipeline registers -------------
	c.buildBypassAndPipeline()
	return c, nil
}

const physAddrBits = 42

// buildBypassAndPipeline sizes the result-bus/bypass wires over the
// execution-unit span and the pipeline latch population.
func (c *Core) buildBypassAndPipeline() {
	cfg := &c.Cfg
	n := cfg.Tech
	cc := circuit.NewCtx(n, cfg.Dev, cfg.LongChannel)

	// EXU span estimate: RFs + FUs laid out in a row.
	exuArea := c.intRF.Area + float64(cfg.IntALUs)*c.alu.Area +
		float64(cfg.FPUs)*c.fpu.Area + float64(cfg.MulDivs)*c.mul.Area
	if c.fpRF != nil {
		exuArea += c.fpRF.Area
	}
	span := 2 * math.Sqrt(exuArea)

	wire := n.Wire(tech.Aggressive, tech.SemiGlobal)
	res := cc.RepeatedWire(wire, span)
	// One operand transported = DatapathBits wires toggling at 50%.
	c.bypassE = float64(cfg.DatapathBits) * 0.5 * res.EnergyPerBit
	busCount := float64(cfg.IssueWidth + cfg.IntALUs + cfg.FPUs + cfg.MulDivs)
	c.bypassPAT = power.PAT{
		Static: power.Static{
			Sub:  res.SubLeak * float64(cfg.DatapathBits) * busCount,
			Gate: res.GateLeak * float64(cfg.DatapathBits) * busCount,
		},
		Area:  res.Area * float64(cfg.DatapathBits) * busCount,
		Delay: res.Delay,
	}

	// Pipeline registers: stages x issue width x (data + control) bits,
	// replicated per thread for the front end.
	ff := cc.NewDFF()
	bitsPerStage := float64(cfg.IssueWidth) * (2.2 * float64(cfg.DatapathBits))
	frontEndStages := float64(cfg.PipelineDepth) * 0.4
	backEndStages := float64(cfg.PipelineDepth) * 0.6
	bits := bitsPerStage * (frontEndStages*float64(cfg.Threads)*0.5 + backEndStages)
	c.pipeline = pipelineRegs{
		bits: bits,
		ff:   ff,
		leak: power.Static{
			Sub:  ff.SubLeak * bits,
			Gate: ff.GateLeak * bits,
		},
		area:     ff.Area * bits,
		ePerCyc:  bits * (ff.EnergyClk + 0.3*ff.EnergyData),
		ePerIdle: bits * ff.EnergyClk * 0.3, // gated clock residue
	}

	// Glue logic: a standard-cell population with ~10% of gates toggling
	// per active cycle into a fanout-of-4-class load, occupying ~600 F^2
	// of routed cell area per gate (2005-era standard-cell density).
	gates := float64(cfg.GlueGates)
	wmin := n.MinWidthN()
	load := 4 * cc.InvCin(2*wmin)
	glueW := gates * 6 * wmin
	c.glue = glueLogic{
		gates:   gates,
		ePerCyc: gates * cfg.GlueActivity * cc.SwitchE(load),
		leak: power.Static{
			Sub:  cc.Dev.Ioff(glueW/2, glueW/2, n.Temperature) * cc.Vdd(),
			Gate: cc.Dev.Ig(glueW) * cc.Vdd(),
		},
		area: gates * 600 * n.Feature * n.Feature,
	}
}

func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(x))))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
