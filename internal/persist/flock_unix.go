//go:build unix

package persist

import (
	"os"
	"syscall"
)

// dirLock is an advisory lock on the cache directory's lock file. A
// shared lock is held for the store's lifetime (it proves the directory
// is lockable and keeps concurrent mcpatd + CLI processes cooperating);
// the eviction sweep upgrades to a separate exclusive try-lock so two
// processes never scan and delete concurrently.
type dirLock struct {
	f *os.File
}

func acquireDirLock(path string) (*dirLock, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_SH); err != nil {
		f.Close()
		return nil, err
	}
	return &dirLock{f: f}, nil
}

func (l *dirLock) release() {
	if l == nil || l.f == nil {
		return
	}
	syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	l.f.Close()
	l.f = nil
}

// tryExclusive takes a non-blocking exclusive lock on a second lock
// file, returning false when another process holds it (the caller skips
// its eviction sweep — the holder is already doing one).
func tryExclusive(path string) (release func(), ok bool) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, false
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, true
}
