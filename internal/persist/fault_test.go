package persist_test

// Fault-injection tests of the store itself: every armed disk fault
// must degrade to a miss (plus a counted quarantine or dropped write),
// never to a wrong payload and never to an error reaching the caller.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mcpat/internal/persist"
	"mcpat/internal/persist/faultfs"
)

func openFaulty(t *testing.T) (*persist.Store, *faultfs.Plan, string) {
	t.Helper()
	dir := t.TempDir()
	ffs, plan := faultfs.New()
	s, err := persist.Open(persist.Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(s.Close)
	return s, plan, dir
}

func TestFaultShortWritePublishesTornEntry(t *testing.T) {
	s, plan, _ := openFaulty(t)
	key := []byte("torn")
	payload := bytes.Repeat([]byte("p"), 4096)

	// The write silently truncates: the entry publishes torn, exactly
	// like a rename that beat the data blocks to stable storage before
	// power loss.
	plan.Arm(func(p *faultfs.Plan) { p.ShortWriteLen = 100 })
	s.Put("ns.v1", key, payload)
	if plan.InjectedCount() == 0 {
		t.Fatal("short-write fault never fired")
	}
	plan.Reset()

	if _, ok := s.Get("ns.v1", key); ok {
		t.Fatal("torn entry was served")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("torn entry not quarantined: %+v", st)
	}
	// Recovery: republish works and round-trips.
	s.Put("ns.v1", key, payload)
	if got, ok := s.Get("ns.v1", key); !ok || !bytes.Equal(got, payload) {
		t.Fatal("republish after torn write failed")
	}
}

func TestFaultENOSPCDropsWrite(t *testing.T) {
	s, plan, dir := openFaulty(t)
	plan.Arm(func(p *faultfs.Plan) { p.WriteErr = faultfs.ErrNoSpace })
	s.Put("ns.v1", []byte("k"), []byte("v"))
	if got := s.Stats().WriteErrors; got != 1 {
		t.Fatalf("WriteErrors = %d, want 1", got)
	}
	plan.Reset()
	if _, ok := s.Get("ns.v1", []byte("k")); ok {
		t.Fatal("entry exists despite ENOSPC during write")
	}
	// No temp-file debris.
	ents, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("temp debris after failed write: %v", ents)
	}
}

func TestFaultCreateErrDropsWrite(t *testing.T) {
	s, plan, _ := openFaulty(t)
	plan.Arm(func(p *faultfs.Plan) { p.CreateErr = faultfs.ErrIO })
	s.Put("ns.v1", []byte("k"), []byte("v"))
	if got := s.Stats().WriteErrors; got != 1 {
		t.Fatalf("WriteErrors = %d, want 1", got)
	}
}

func TestFaultCrashBeforeRename(t *testing.T) {
	s, plan, dir := openFaulty(t)
	plan.Arm(func(p *faultfs.Plan) { p.CrashBeforeRename = true })
	s.Put("ns.v1", []byte("k"), []byte("v"))
	plan.Reset()

	// The publish never happened; the fully-written temp file is the
	// only residue, and the entry reads as a miss.
	if _, ok := s.Get("ns.v1", []byte("k")); ok {
		t.Fatal("entry visible despite crash before rename")
	}
	// A restart (fresh Open on the same directory) sweeps the debris.
	s2, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s2.Close()
	ents, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("crash debris survived reopen: %v", ents)
	}
	if _, ok := s2.Get("ns.v1", []byte("k")); ok {
		t.Fatal("reopened store served an entry that never published")
	}
	// And the store still works.
	s2.Put("ns.v1", []byte("k"), []byte("v"))
	if got, ok := s2.Get("ns.v1", []byte("k")); !ok || string(got) != "v" {
		t.Fatal("store broken after crash recovery")
	}
}

func TestFaultBitFlipOnRead(t *testing.T) {
	s, plan, _ := openFaulty(t)
	key := []byte("flip")
	s.Put("ns.v1", key, []byte("precious payload"))

	plan.Arm(func(p *faultfs.Plan) { p.FlipBitOnRead = true })
	if _, ok := s.Get("ns.v1", key); ok {
		t.Fatal("bit-flipped entry was served")
	}
	if plan.InjectedCount() == 0 {
		t.Fatal("bit-flip fault never fired")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("flip not counted as corrupt: %+v", st)
	}
}

func TestFaultUnreadableEntry(t *testing.T) {
	s, plan, _ := openFaulty(t)
	key := []byte("eio")
	s.Put("ns.v1", key, []byte("v"))
	plan.Arm(func(p *faultfs.Plan) { p.OpenErr = faultfs.ErrIO })
	if _, ok := s.Get("ns.v1", key); ok {
		t.Fatal("unreadable entry was served")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("unreadable entry not quarantined: %+v", st)
	}
}

func TestFaultOpenUnwritableDirectoryFails(t *testing.T) {
	// Create fails from the start: Open must report the directory as
	// unusable so the caller can degrade to memory-only (this covers
	// read-only mounts and permission errors, which cannot be simulated
	// with chmod when tests run as root).
	dir := t.TempDir()
	ffs, plan := faultfs.New()
	plan.Arm(func(p *faultfs.Plan) { p.CreateErr = faultfs.ErrIO })
	if _, err := persist.Open(persist.Options{Dir: dir, FS: ffs}); err == nil {
		t.Fatal("Open succeeded with an unwritable directory")
	}
}

func TestOnDiskCorruptionHelpers(t *testing.T) {
	dir := t.TempDir()
	s, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, key := range []string{"a", "b", "c"} {
		s.Put("ns.v1", []byte(key), bytes.Repeat([]byte{byte(i)}, 256))
	}
	paths, err := faultfs.Entries(dir)
	if err != nil || len(paths) != 3 {
		t.Fatalf("Entries = %v (%v), want 3", paths, err)
	}
	if err := faultfs.FlipBit(paths[0]); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.Truncate(paths[1]); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.Scribble(paths[2]); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a", "b", "c"} {
		if _, ok := s.Get("ns.v1", []byte(key)); ok {
			t.Errorf("corrupted entry %q was served", key)
		}
	}
	if st := s.Stats(); st.Corrupt != 3 {
		t.Fatalf("Corrupt = %d, want 3", st.Corrupt)
	}
}
