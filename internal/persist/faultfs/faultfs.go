// Package faultfs is the fault-injection harness for the persistent
// cache tier: a persist.FS wrapper that forces the disk failures a
// production deployment will eventually meet — short (torn) writes,
// ENOSPC, read-side bit flips, unreadable files, and crashes between
// the temp write and the rename that publishes an entry.
//
// Tests arm faults on a Plan and assert the engine's invariant: every
// injected fault degrades to a cache miss plus cold synthesis with
// bit-identical results, never a wrong answer and never a process
// failure. The package also provides direct on-disk corruption helpers
// (truncate, flip a bit) for end-to-end tests running on the real
// filesystem.
package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mcpat/internal/persist"
)

// ErrNoSpace is the injected "disk full" error.
var ErrNoSpace = errors.New("faultfs: no space left on device (injected)")

// ErrIO is the injected generic I/O error.
var ErrIO = errors.New("faultfs: input/output error (injected)")

// ErrCrashed marks operations suppressed by a simulated crash: the
// process "died" before the operation took effect.
var ErrCrashed = errors.New("faultfs: process crashed before operation (injected)")

// Plan arms the faults. The zero value injects nothing. All fields are
// guarded by an internal mutex, so tests may re-arm concurrently with
// store traffic.
type Plan struct {
	mu sync.Mutex

	// ShortWriteLen truncates every file write after this many bytes
	// (silently — the write "succeeds" short, like a torn write at
	// power loss). <= 0 disables.
	ShortWriteLen int

	// WriteErr, when non-nil, is returned by every Write and Sync
	// (ENOSPC simulation: arm with ErrNoSpace).
	WriteErr error

	// CreateErr, when non-nil, fails file creation.
	CreateErr error

	// CrashBeforeRename makes Rename fail with ErrCrashed while leaving
	// the temp file in place — the publish never happened, exactly the
	// state a SIGKILL between write and rename leaves behind.
	CrashBeforeRename bool

	// FlipBitOnRead XORs bit 0 of the first byte of every read, turning
	// good entries into checksum mismatches.
	FlipBitOnRead bool

	// OpenErr, when non-nil, fails opening existing files for read.
	OpenErr error

	// Injected counts faults actually delivered, so tests can assert a
	// fault fired rather than silently not triggering.
	Injected int
}

func (p *Plan) hit() {
	p.Injected++
}

// Reset disarms every fault.
func (p *Plan) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ShortWriteLen = 0
	p.WriteErr = nil
	p.CreateErr = nil
	p.CrashBeforeRename = false
	p.FlipBitOnRead = false
	p.OpenErr = nil
}

// Arm applies mut under the plan's lock.
func (p *Plan) Arm(mut func(*Plan)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	mut(p)
}

// InjectedCount returns how many faults have fired.
func (p *Plan) InjectedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Injected
}

// FS wraps an inner persist.FS with the plan's faults. Directory
// operations pass through untouched; files gain the armed failure
// modes.
type FS struct {
	Inner persist.FS
	Plan  *Plan
}

// New wraps the real filesystem with a fresh plan.
func New() (*FS, *Plan) {
	p := &Plan{}
	return &FS{Inner: persist.OSFS(), Plan: p}, p
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.Inner.MkdirAll(path, perm) }

func (f *FS) Open(name string) (persist.File, error) {
	f.Plan.mu.Lock()
	openErr := f.Plan.OpenErr
	flip := f.Plan.FlipBitOnRead
	if openErr != nil {
		f.Plan.hit()
	}
	f.Plan.mu.Unlock()
	if openErr != nil {
		return nil, openErr
	}
	inner, err := f.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	if flip {
		return &flippingFile{File: inner, plan: f.Plan}, nil
	}
	return inner, nil
}

func (f *FS) Create(name string) (persist.File, error) {
	f.Plan.mu.Lock()
	createErr := f.Plan.CreateErr
	if createErr != nil {
		f.Plan.hit()
	}
	f.Plan.mu.Unlock()
	if createErr != nil {
		return nil, createErr
	}
	inner, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyWriteFile{File: inner, plan: f.Plan}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	f.Plan.mu.Lock()
	crash := f.Plan.CrashBeforeRename
	if crash {
		f.Plan.hit()
	}
	f.Plan.mu.Unlock()
	if crash {
		// The temp file stays behind, as after a real crash.
		return ErrCrashed
	}
	return f.Inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error                   { return f.Inner.Remove(name) }
func (f *FS) Stat(name string) (fs.FileInfo, error)      { return f.Inner.Stat(name) }
func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) { return f.Inner.ReadDir(name) }
func (f *FS) Chtimes(name string, atime, mtime time.Time) error {
	return f.Inner.Chtimes(name, atime, mtime)
}

// faultyWriteFile injects write-side faults.
type faultyWriteFile struct {
	persist.File
	plan    *Plan
	written int
}

func (w *faultyWriteFile) Write(b []byte) (int, error) {
	w.plan.mu.Lock()
	werr := w.plan.WriteErr
	shortLen := w.plan.ShortWriteLen
	if werr != nil {
		w.plan.hit()
	}
	w.plan.mu.Unlock()
	if werr != nil {
		return 0, werr
	}
	if shortLen > 0 {
		remain := shortLen - w.written
		if remain <= 0 {
			// Silently swallow the bytes: the caller believes the write
			// succeeded, as with a torn write that power loss never
			// flushed. The file on disk stays short.
			w.plan.mu.Lock()
			w.plan.hit()
			w.plan.mu.Unlock()
			return len(b), nil
		}
		if len(b) > remain {
			n, err := w.File.Write(b[:remain])
			w.written += n
			w.plan.mu.Lock()
			w.plan.hit()
			w.plan.mu.Unlock()
			if err != nil {
				return n, err
			}
			return len(b), nil // lie: short write reported as full
		}
	}
	n, err := w.File.Write(b)
	w.written += n
	return n, err
}

func (w *faultyWriteFile) Sync() error {
	w.plan.mu.Lock()
	werr := w.plan.WriteErr
	if werr != nil {
		w.plan.hit()
	}
	w.plan.mu.Unlock()
	if werr != nil {
		return werr
	}
	return w.File.Sync()
}

// flippingFile flips one bit of the first byte read.
type flippingFile struct {
	persist.File
	plan    *Plan
	flipped bool
}

func (r *flippingFile) Read(b []byte) (int, error) {
	n, err := r.File.Read(b)
	if n > 0 && !r.flipped {
		b[0] ^= 0x01
		r.flipped = true
		r.plan.mu.Lock()
		r.plan.hit()
		r.plan.mu.Unlock()
	}
	return n, err
}

// --- direct on-disk corruption helpers (real filesystem) ---

// Entries returns the published entry files under dir, sorted, so
// tests can corrupt a deterministic subset.
func Entries(dir string) ([]string, error) {
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.Mode().IsRegular() && strings.HasSuffix(path, ".mcpe") {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FlipBit XORs one bit in the middle of the file — an undetected media
// error the checksum must catch.
func FlipBit(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return errors.New("faultfs: empty file")
	}
	data[len(data)/2] ^= 0x10
	return os.WriteFile(path, data, 0o644)
}

// Truncate cuts the file to half its length — a torn write or
// interrupted copy.
func Truncate(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, info.Size()/2)
}

// Scribble overwrites the file with garbage of the same length.
func Scribble(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	junk := make([]byte, info.Size())
	for i := range junk {
		junk[i] = byte(i*131 + 7)
	}
	return os.WriteFile(path, junk, 0o644)
}
