// Package persist is the disk tier of the synthesis caches: a
// content-addressed, crash-safe store of serialized synthesis results
// shared by every mcpat process pointed at the same cache directory.
//
// The in-memory memo layers (internal/array, internal/component) die
// with the process, so every CLI run and every mcpatd restart used to
// pay full cold synthesis cost. This package gives those layers a third
// tier: memory -> disk -> synthesize, with the single-flight discipline
// preserved (the owner of an in-memory flight is the only goroutine
// that consults disk or synthesizes for its key).
//
// Crash safety is the design center, not an afterthought:
//
//   - Publication is atomic: entries are written to a temp file in the
//     same directory tree, fsynced, then renamed into place. A reader
//     never observes a partially written entry; a crash mid-publish
//     leaves only a stale temp file, swept at the next Open.
//
//   - Every entry carries a magic header, explicit lengths, the full
//     cache key, and a checksum over key+payload, all verified on load.
//     A corrupt, truncated, or bit-flipped entry — or a hash collision,
//     since the stored key is compared byte-for-byte — is quarantined
//     and reported as a miss, never served and never fatal: the caller
//     falls back to cold synthesis and republishes.
//
//   - Disk errors of any kind (ENOSPC, EIO, permission) degrade the
//     operation to a miss or a dropped write, counted but never
//     propagated: a broken disk makes the process slower, not wrong.
//
// Concurrent processes may share one directory: atomic rename makes
// publication safe without coordination, and an advisory flock
// serializes only the eviction sweep. A size budget (Options.MaxBytes)
// bounds the directory; oldest entries (by access time) are evicted
// first.
//
// Entries are namespaced and versioned by their callers ("array.v1",
// "subsys.cache.v1", ...), so a codec change simply strands the old
// namespace, which ages out via eviction.
package persist

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// entryMagic begins every entry file; a file without it is quarantined.
const entryMagic = "MCPE1\n"

// entrySuffix names complete, published entries. Temp files live under
// tmp/ and never carry the suffix, so a scan can tell them apart.
const entrySuffix = ".mcpe"

// DefaultMaxBytes is the eviction budget when Options.MaxBytes is 0.
const DefaultMaxBytes = 1 << 30 // 1 GiB

// evictTarget is the fraction of MaxBytes an eviction sweep shrinks to,
// so sweeps run in batches instead of once per Put at the boundary.
const evictTarget = 0.9

// Options configures Open.
type Options struct {
	// Dir is the cache directory; created if missing.
	Dir string
	// MaxBytes is the eviction budget; 0 selects DefaultMaxBytes,
	// negative disables eviction.
	MaxBytes int64
	// Logf, when non-nil, receives one line per quarantine, eviction
	// sweep, and degraded write (Printf-style).
	Logf func(format string, args ...any)
	// FS substitutes the filesystem; nil selects the real one. Tests use
	// faultfs here. With a non-nil FS the advisory flock is skipped (the
	// injected filesystem owns the directory's semantics).
	FS FS
}

// Store is one open cache directory. All methods are safe for
// concurrent use by multiple goroutines, and multiple processes may
// share the directory.
type Store struct {
	dir  string
	fs   FS
	max  int64
	logf func(string, ...any)
	lock *dirLock

	tmpSeq atomic.Uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	corrupt   atomic.Uint64
	evicted   atomic.Uint64
	writeErrs atomic.Uint64
	bytes     atomic.Int64
	entries   atomic.Int64
}

// Stats is a snapshot of one store's counters. Bytes and Entries are
// this process's view of the resident set (approximate when several
// processes share the directory; eviction sweeps re-measure).
type Stats struct {
	// Hits counts loads served from disk (verified entries).
	Hits uint64 `json:"hits"`
	// Misses counts lookups that found no entry.
	Misses uint64 `json:"misses"`
	// Corrupt counts entries that failed verification (bad magic,
	// truncation, checksum or key mismatch) and were quarantined.
	Corrupt uint64 `json:"corrupt"`
	// Evicted counts entries removed by the size-budget sweep.
	Evicted uint64 `json:"evicted"`
	// WriteErrors counts publications dropped because of disk errors
	// (ENOSPC, EIO, ...); the result stayed usable in memory.
	WriteErrors uint64 `json:"write_errors"`
	// Bytes and Entries describe the resident set.
	Bytes   int64 `json:"bytes"`
	Entries int64 `json:"entries"`
	// Enabled reports whether a disk tier is active at all (false in the
	// zero Stats returned when no store is configured).
	Enabled bool `json:"enabled"`
}

// HitRate returns the fraction of lookups served from disk.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Corrupt
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Delta returns the counter difference s - prev for reporting one
// sweep's disk activity. Bytes/Entries/Enabled carry the newer values.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Hits:        s.Hits - prev.Hits,
		Misses:      s.Misses - prev.Misses,
		Corrupt:     s.Corrupt - prev.Corrupt,
		Evicted:     s.Evicted - prev.Evicted,
		WriteErrors: s.WriteErrors - prev.WriteErrors,
		Bytes:       s.Bytes,
		Entries:     s.Entries,
		Enabled:     s.Enabled,
	}
}

// Open opens (creating if needed) a cache directory and verifies it is
// usable: the directory must be creatable and writable, or Open returns
// an error and the caller degrades to in-memory operation.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persist: empty cache directory")
	}
	fsImpl := opts.FS
	useLock := false
	if fsImpl == nil {
		fsImpl = OSFS()
		useLock = true
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	max := opts.MaxBytes
	if max == 0 {
		max = DefaultMaxBytes
	}
	s := &Store{dir: opts.Dir, fs: fsImpl, max: max, logf: logf}

	if err := fsImpl.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create cache dir: %w", err)
	}
	if err := fsImpl.MkdirAll(filepath.Join(opts.Dir, "tmp"), 0o755); err != nil {
		return nil, fmt.Errorf("persist: create tmp dir: %w", err)
	}
	// Probe writability explicitly so a read-only or mis-owned directory
	// fails here, at configuration time, instead of silently dropping
	// every Put later.
	probe := filepath.Join(opts.Dir, "tmp", fmt.Sprintf(".probe-%d", os.Getpid()))
	f, err := fsImpl.Create(probe)
	if err != nil {
		return nil, fmt.Errorf("persist: cache dir not writable: %w", err)
	}
	f.Close()
	fsImpl.Remove(probe)

	if useLock {
		lock, err := acquireDirLock(filepath.Join(opts.Dir, ".lock"))
		if err != nil {
			return nil, fmt.Errorf("persist: lock cache dir: %w", err)
		}
		s.lock = lock
	}

	s.sweepTmp()
	s.measure()
	return s, nil
}

// Close releases the directory lock. The store must not be used after.
func (s *Store) Close() {
	if s == nil {
		return
	}
	s.lock.release()
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the current counters. A nil store returns the zero
// Stats (Enabled false), so callers can report unconditionally.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Corrupt:     s.corrupt.Load(),
		Evicted:     s.evicted.Load(),
		WriteErrors: s.writeErrs.Load(),
		Bytes:       s.bytes.Load(),
		Entries:     s.entries.Load(),
		Enabled:     true,
	}
}

// sanitizeNS restricts namespaces to path-safe characters and keeps
// them clear of the store's own subdirectories.
func sanitizeNS(ns string) string {
	var b strings.Builder
	for _, r := range ns {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	out := b.String()
	if out == "" || out == "tmp" || out == "quarantine" {
		out = "ns_" + out
	}
	return out
}

// entryPath content-addresses a key within a namespace. The first hash
// byte fans entries out over 256 subdirectories so no single directory
// grows unboundedly.
func (s *Store) entryPath(ns string, key []byte) string {
	sum := sha256.Sum256(key)
	hexsum := fmt.Sprintf("%x", sum)
	return filepath.Join(s.dir, sanitizeNS(ns), hexsum[:2], hexsum+entrySuffix)
}

// encodeEntry frames key+payload with magic, lengths, and checksum.
func encodeEntry(key, payload []byte) []byte {
	buf := make([]byte, 0, len(entryMagic)+12+len(key)+len(payload)+8)
	buf = append(buf, entryMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, key...)
	buf = append(buf, payload...)
	h := fnv.New64a()
	h.Write(buf[len(entryMagic):]) // lengths + key + payload
	buf = binary.LittleEndian.AppendUint64(buf, h.Sum64())
	return buf
}

// decodeEntry verifies framing and checksum, returning the payload.
func decodeEntry(data, wantKey []byte) ([]byte, error) {
	if len(data) < len(entryMagic)+12+8 {
		return nil, fmt.Errorf("truncated entry (%d bytes)", len(data))
	}
	if string(data[:len(entryMagic)]) != entryMagic {
		return nil, fmt.Errorf("bad magic")
	}
	body := data[len(entryMagic):]
	keyLen := binary.LittleEndian.Uint32(body[0:4])
	payLen := binary.LittleEndian.Uint64(body[4:12])
	want := len(entryMagic) + 12 + int(keyLen) + int(payLen) + 8
	if uint64(keyLen) > uint64(len(data)) || payLen > uint64(len(data)) || len(data) != want {
		return nil, fmt.Errorf("length mismatch (header %d+%d, file %d)", keyLen, payLen, len(data))
	}
	sumOff := len(data) - 8
	h := fnv.New64a()
	h.Write(data[len(entryMagic):sumOff])
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(data[sumOff:]); got != want {
		return nil, fmt.Errorf("checksum mismatch")
	}
	key := body[12 : 12+int(keyLen)]
	if string(key) != string(wantKey) {
		return nil, fmt.Errorf("key mismatch (hash collision or cross-namespace file)")
	}
	return body[12+int(keyLen) : 12+int(keyLen)+int(payLen)], nil
}

// Get loads and verifies the entry for key. ok is false on any miss,
// corruption, or disk error — the caller synthesizes cold. Get never
// fails the process.
func (s *Store) Get(ns string, key []byte) (payload []byte, ok bool) {
	if s == nil {
		return nil, false
	}
	path := s.entryPath(ns, key)
	f, err := s.fs.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
		} else {
			// An unreadable entry is as good as a corrupt one.
			s.quarantine(path, fmt.Errorf("open: %w", err), 0)
		}
		return nil, false
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		s.quarantine(path, fmt.Errorf("read: %w", err), int64(len(data)))
		return nil, false
	}
	payload, err = decodeEntry(data, key)
	if err != nil {
		s.quarantine(path, err, int64(len(data)))
		return nil, false
	}
	s.hits.Add(1)
	// Refresh mtime so the eviction sweep approximates LRU. Best effort.
	now := time.Now()
	s.fs.Chtimes(path, now, now)
	return payload, true
}

// quarantine removes an unusable entry so it is resynthesized, never
// served again, and never refails. Removal failing is itself ignored —
// the entry will fail verification again next time, still a miss.
func (s *Store) quarantine(path string, cause error, size int64) {
	s.corrupt.Add(1)
	s.logf("persist: quarantining %s: %v", path, cause)
	if err := s.fs.Remove(path); err == nil {
		s.bytes.Add(-size)
		s.entries.Add(-1)
	}
}

// Put publishes payload under key with write-temp-then-rename. Failures
// are counted and logged but never returned: a failed publication only
// means the next process pays a cold synthesis.
func (s *Store) Put(ns string, key, payload []byte) {
	if s == nil {
		return
	}
	final := s.entryPath(ns, key)
	if err := s.fs.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		s.dropWrite("mkdir", err)
		return
	}
	entry := encodeEntry(key, payload)
	tmp := filepath.Join(s.dir, "tmp", fmt.Sprintf("put-%d-%d.tmp", os.Getpid(), s.tmpSeq.Add(1)))
	f, err := s.fs.Create(tmp)
	if err != nil {
		s.dropWrite("create temp", err)
		return
	}
	n, err := f.Write(entry)
	if err == nil && n != len(entry) {
		err = io.ErrShortWrite
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		s.fs.Remove(tmp)
		s.dropWrite("write temp", err)
		return
	}
	fresh := true
	if _, err := s.fs.Stat(final); err == nil {
		fresh = false // replacing an existing (identical) entry
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.fs.Remove(tmp)
		s.dropWrite("publish", err)
		return
	}
	if fresh {
		s.bytes.Add(int64(len(entry)))
		s.entries.Add(1)
	}
	s.maybeEvict()
}

func (s *Store) dropWrite(stage string, err error) {
	s.writeErrs.Add(1)
	s.logf("persist: dropped cache write (%s): %v", stage, err)
}

// sweepTmp removes temp files left by crashed publications.
func (s *Store) sweepTmp() {
	tmpDir := filepath.Join(s.dir, "tmp")
	ents, err := s.fs.ReadDir(tmpDir)
	if err != nil {
		return
	}
	for _, e := range ents {
		s.fs.Remove(filepath.Join(tmpDir, e.Name()))
	}
}

// measure walks the directory to initialize the resident-set gauges.
func (s *Store) measure() {
	var bytes int64
	var entries int64
	s.walkEntries(func(path string, info os.FileInfo) {
		bytes += info.Size()
		entries++
	})
	s.bytes.Store(bytes)
	s.entries.Store(entries)
}

// walkEntries visits every published entry (ns/xx/hash.mcpe).
func (s *Store) walkEntries(visit func(path string, info os.FileInfo)) {
	nsEnts, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, nsEnt := range nsEnts {
		if !nsEnt.IsDir() || nsEnt.Name() == "tmp" || nsEnt.Name() == "quarantine" {
			continue
		}
		nsDir := filepath.Join(s.dir, nsEnt.Name())
		fanEnts, err := s.fs.ReadDir(nsDir)
		if err != nil {
			continue
		}
		for _, fanEnt := range fanEnts {
			if !fanEnt.IsDir() {
				continue
			}
			fanDir := filepath.Join(nsDir, fanEnt.Name())
			files, err := s.fs.ReadDir(fanDir)
			if err != nil {
				continue
			}
			for _, fe := range files {
				if fe.IsDir() || !strings.HasSuffix(fe.Name(), entrySuffix) {
					continue
				}
				path := filepath.Join(fanDir, fe.Name())
				info, err := s.fs.Stat(path)
				if err != nil {
					continue
				}
				visit(path, info)
			}
		}
	}
}

// maybeEvict runs a sweep when the resident set exceeds the budget.
// The sweep is serialized across processes by an exclusive try-lock;
// if another process is sweeping, this one skips.
func (s *Store) maybeEvict() {
	if s.max < 0 || s.bytes.Load() <= s.max {
		return
	}
	release, ok := tryExclusive(filepath.Join(s.dir, ".evict.lock"))
	if !ok {
		return
	}
	defer release()

	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var all []entry
	var total int64
	s.walkEntries(func(path string, info os.FileInfo) {
		all = append(all, entry{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
	})
	// Re-measure first: another process may have evicted already.
	s.bytes.Store(total)
	s.entries.Store(int64(len(all)))
	target := int64(evictTarget * float64(s.max))
	if total <= s.max {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })
	var removed uint64
	for _, e := range all {
		if total <= target {
			break
		}
		if err := s.fs.Remove(e.path); err != nil {
			continue
		}
		total -= e.size
		removed++
		s.bytes.Add(-e.size)
		s.entries.Add(-1)
	}
	if removed > 0 {
		s.evicted.Add(removed)
		s.logf("persist: evicted %d entries (resident now %d bytes, budget %d)", removed, total, s.max)
	}
}
