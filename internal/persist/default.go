package persist

import "sync/atomic"

// The process-wide default store is the wiring point between the
// synthesis memo layers and disk: internal/array and internal/component
// consult Default() on every memory miss. No default (the zero state)
// means no disk tier — exactly the pre-persistence behavior.

var defaultStore atomic.Pointer[Store]

// SetDefault installs s as the process-wide disk tier (nil disables
// it) and returns the previous store, which the caller owns (Close it
// if it is being replaced rather than kept).
func SetDefault(s *Store) *Store {
	return defaultStore.Swap(s)
}

// Default returns the process-wide disk tier, or nil when none is
// configured. All Store methods are nil-safe, so callers may use the
// result unconditionally.
func Default() *Store { return defaultStore.Load() }

// DefaultStats returns the default store's counters (the zero Stats,
// Enabled=false, when no disk tier is configured).
func DefaultStats() Stats { return Default().Stats() }
