package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTemp(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestRoundTrip(t *testing.T) {
	s := openTemp(t, Options{})
	key := []byte("the-key")
	payload := []byte("the-payload-bytes")

	if _, ok := s.Get("ns.v1", key); ok {
		t.Fatal("Get before Put should miss")
	}
	s.Put("ns.v1", key, payload)
	got, ok := s.Get("ns.v1", key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 0 corrupt", st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("resident set = %d entries / %d bytes, want 1 / >0", st.Entries, st.Bytes)
	}
	if !st.Enabled {
		t.Fatal("Stats().Enabled should be true for an open store")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	s.Put("ns", []byte("k"), []byte("v"))
	if _, ok := s.Get("ns", []byte("k")); ok {
		t.Fatal("nil store Get returned ok")
	}
	if st := s.Stats(); st.Enabled {
		t.Fatalf("nil store stats = %+v, want zero", st)
	}
	s.Close()
}

func TestNamespaceIsolation(t *testing.T) {
	s := openTemp(t, Options{})
	key := []byte("shared-key")
	s.Put("a.v1", key, []byte("A"))
	s.Put("b.v1", key, []byte("B"))
	if got, ok := s.Get("a.v1", key); !ok || string(got) != "A" {
		t.Fatalf("ns a = %q/%v, want A", got, ok)
	}
	if got, ok := s.Get("b.v1", key); !ok || string(got) != "B" {
		t.Fatalf("ns b = %q/%v, want B", got, ok)
	}
}

func TestDecodeEntryRejectsDamage(t *testing.T) {
	key := []byte("k1")
	payload := []byte("some payload")
	good := encodeEntry(key, payload)

	if got, err := decodeEntry(good, key); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("good entry failed to decode: %v", err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      good[:len(good)/2],
		"bad magic":      append([]byte("XXXX1\n"), good[6:]...),
		"one byte short": good[:len(good)-1],
	}
	// Bit flip in the payload region.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bit flip"] = flipped
	// Entry for a different key stored at this key's path (hash
	// collision or cross-linked file).
	cases["key mismatch"] = encodeEntry([]byte("other"), payload)

	for name, data := range cases {
		if _, err := decodeEntry(data, key); err == nil {
			t.Errorf("%s: decodeEntry accepted damaged entry", name)
		}
	}
}

func TestCorruptEntryQuarantinedNotServed(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir})
	key := []byte("k")
	s.Put("ns.v1", key, []byte("payload"))

	// Scribble over the published entry on disk.
	path := s.entryPath("ns.v1", key)
	if err := os.WriteFile(path, []byte("garbage garbage garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("ns.v1", key); ok {
		t.Fatal("corrupt entry was served")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
	// Quarantined: the file is gone, the next Get is a clean miss, and a
	// republish works.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still on disk (err=%v)", err)
	}
	if _, ok := s.Get("ns.v1", key); ok {
		t.Fatal("quarantined entry resurrected")
	}
	s.Put("ns.v1", key, []byte("payload"))
	if got, ok := s.Get("ns.v1", key); !ok || string(got) != "payload" {
		t.Fatalf("republish after quarantine failed: %q/%v", got, ok)
	}
}

func TestEviction(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 1024)
	// Budget fits ~4 entries; write 12.
	s := openTemp(t, Options{MaxBytes: 4 * 1200})
	for i := 0; i < 12; i++ {
		s.Put("ns.v1", []byte(fmt.Sprintf("key-%02d", i)), payload)
	}
	st := s.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no evictions with %d bytes resident over a %d budget", st.Bytes, s.max)
	}
	if st.Bytes > s.max {
		t.Fatalf("resident %d bytes still over budget %d after eviction", st.Bytes, s.max)
	}
	if st.Entries <= 0 {
		t.Fatal("eviction removed everything")
	}
}

func TestEvictionDisabled(t *testing.T) {
	s := openTemp(t, Options{MaxBytes: -1})
	payload := bytes.Repeat([]byte("y"), 2048)
	for i := 0; i < 8; i++ {
		s.Put("ns.v1", []byte(fmt.Sprintf("key-%d", i)), payload)
	}
	if st := s.Stats(); st.Evicted != 0 || st.Entries != 8 {
		t.Fatalf("negative MaxBytes must disable eviction, got %+v", st)
	}
}

func TestTwoStoresShareOneDirectory(t *testing.T) {
	// A CLI and a daemon pointed at the same -cache-dir: entries
	// published by one are visible to the other, and both hold their
	// shared flocks without conflict.
	dir := t.TempDir()
	a := openTemp(t, Options{Dir: dir})
	b := openTemp(t, Options{Dir: dir})
	key := []byte("cross-process")
	a.Put("ns.v1", key, []byte("hello"))
	if got, ok := b.Get("ns.v1", key); !ok || string(got) != "hello" {
		t.Fatalf("second store missed entry published by first: %q/%v", got, ok)
	}
}

func TestOpenRejectsFilePath(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: file}); err == nil {
		t.Fatal("Open on a plain file should fail so callers can degrade")
	}
}

func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "tmp", "put-1234-1.tmp")
	if err := os.WriteFile(stale, []byte("half an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	openTemp(t, Options{Dir: dir})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived Open (err=%v)", err)
	}
}

func TestMeasureOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir})
	for i := 0; i < 5; i++ {
		s.Put("ns.v1", []byte(fmt.Sprintf("k%d", i)), []byte("payload"))
	}
	want := s.Stats()
	s2 := openTemp(t, Options{Dir: dir})
	got := s2.Stats()
	if got.Entries != want.Entries || got.Bytes != want.Bytes {
		t.Fatalf("reopened store measured %d/%d, want %d/%d",
			got.Entries, got.Bytes, want.Entries, want.Bytes)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := openTemp(t, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := []byte(fmt.Sprintf("key-%d", i%10))
				payload := []byte(fmt.Sprintf("payload-%d", i%10))
				s.Put("ns.v1", key, payload)
				if got, ok := s.Get("ns.v1", key); ok && string(got) != string(payload) {
					t.Errorf("got wrong payload %q for %q", got, key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDefaultStoreRegistry(t *testing.T) {
	if Default() != nil {
		t.Fatal("default store should start nil in tests")
	}
	s := openTemp(t, Options{})
	prev := SetDefault(s)
	defer SetDefault(prev)
	if Default() != s {
		t.Fatal("SetDefault did not install the store")
	}
	if !DefaultStats().Enabled {
		t.Fatal("DefaultStats should be enabled with a store installed")
	}
	if got := SetDefault(nil); got != s {
		t.Fatalf("SetDefault returned %v, want the previous store", got)
	}
	if DefaultStats().Enabled {
		t.Fatal("DefaultStats should be disabled after SetDefault(nil)")
	}
}

func TestSanitizeNS(t *testing.T) {
	for in, want := range map[string]string{
		"array.v1":    "array.v1",
		"tmp":         "ns_tmp",
		"quarantine":  "ns_quarantine",
		"":            "ns_",
		"weird/ns !":  "weird_ns__",
		"subsys-mc.1": "subsys-mc.1",
	} {
		if got := sanitizeNS(in); got != want {
			t.Errorf("sanitizeNS(%q) = %q, want %q", in, got, want)
		}
	}
}
