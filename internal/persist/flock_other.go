//go:build !unix

package persist

// Non-unix fallbacks: no advisory locking. The store still works —
// publication stays atomic via rename — but concurrent eviction sweeps
// are not serialized across processes.

type dirLock struct{}

func acquireDirLock(string) (*dirLock, error) { return &dirLock{}, nil }
func (l *dirLock) release()                   {}

func tryExclusive(string) (release func(), ok bool) { return func() {}, true }
