package persist

import (
	"io"
	"io/fs"
	"os"
	"time"
)

// FS is the narrow filesystem surface the store uses. Production code
// runs on osFS; the faultfs test harness wraps an FS to inject short
// writes, ENOSPC, bit flips, and mid-publish crashes without touching
// the store's logic. Every store operation must go through this
// interface so a fault injected here exercises the same code paths a
// real disk fault would.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create truncates/creates a file for writing.
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Chtimes(name string, atime, mtime time.Time) error
}

// File is the per-file surface: sequential read or write plus the Sync
// the publish protocol requires before rename.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// osFS is the production FS.
type osFS struct{}

// OSFS returns the real-filesystem implementation used by default.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error) {
	return os.Stat(name)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}
