package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"mcpat/internal/component"
)

// fixtureEngine builds the engine and intervals from the checked-in gem5
// pair.
func fixtureEngine(t *testing.T) (*Engine, []Interval) {
	t.Helper()
	cfgF, err := os.Open("testdata/config.json")
	if err != nil {
		t.Fatal(err)
	}
	defer cfgF.Close()
	statsF, err := os.Open("testdata/stats.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer statsF.Close()
	eng, ivs, res, err := FromGem5(cfgF, statsF)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 3 {
		t.Fatalf("parsed %d intervals, want 3", len(ivs))
	}
	if res.CPUType != "DerivO3CPU" {
		t.Fatalf("cpu type %q", res.CPUType)
	}
	return eng, ivs
}

// TestRunSynthesizesOnce pins the headline contract: a full trace run
// performs zero synthesis work beyond what NewEngine already paid. The
// synthesis-cache miss counters must not move while intervals score.
func TestRunSynthesizesOnce(t *testing.T) {
	eng, ivs := fixtureEngine(t)
	before := component.Stats()
	tr, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := component.Stats().Delta(before).Total()
	if d.Misses != 0 || d.Hits != 0 || d.Bypassed != 0 {
		t.Fatalf("scoring intervals touched the synthesis layer: %+v", d)
	}
	if len(tr.Samples) != 3 {
		t.Fatalf("trace has %d samples", len(tr.Samples))
	}
}

// TestSamplesBitIdenticalToReport pins per-interval fidelity: each
// sample equals a standalone chip.Report over the same statistics, down
// to the last bit, including the subsystem breakdown.
func TestSamplesBitIdenticalToReport(t *testing.T) {
	eng, ivs := fixtureEngine(t)
	tr, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, iv := range ivs {
		rep, rerr := eng.Processor().ReportE(iv.Stats)
		if rerr != nil {
			t.Fatal(rerr)
		}
		s := tr.Samples[i]
		if s.DynamicW != rep.RuntimeDynamic || s.TotalW != rep.Runtime() ||
			s.LeakageW != rep.Leakage()-rep.LeakSaved {
			t.Fatalf("interval %d: sample %+v vs report dyn=%v total=%v", i, s, rep.RuntimeDynamic, rep.Runtime())
		}
		if len(s.Subsystems) != len(rep.Children) {
			t.Fatalf("interval %d: %d subsystems vs %d children", i, len(s.Subsystems), len(rep.Children))
		}
		for j, c := range rep.Children {
			sp := s.Subsystems[j]
			if sp.Name != c.Name || sp.TotalW != c.Runtime() || sp.DynamicW != c.RuntimeDynamic {
				t.Fatalf("interval %d subsystem %s: %+v vs runtime %v", i, c.Name, sp, c.Runtime())
			}
		}
		if s.TotalW <= 0 || math.IsNaN(s.TotalW) {
			t.Fatalf("interval %d: degenerate power %v", i, s.TotalW)
		}
	}
}

// TestSummaryIntegrals pins the trace aggregates: energy is the sum of
// per-interval integrals, average power is energy over simulated time,
// and the peak interval is identified. The fixture's middle interval is
// memory-bound (lowest IPC), the short final burst is the hottest.
func TestSummaryIntegrals(t *testing.T) {
	eng, ivs := fixtureEngine(t)
	tr, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary
	if sum.Intervals != 3 {
		t.Fatalf("summary intervals = %d", sum.Intervals)
	}
	var energy, secs float64
	for _, s := range tr.Samples {
		if s.EnergyJ != s.TotalW*s.DurationS {
			t.Fatalf("interval %d: energy %v != %v x %v", s.Index, s.EnergyJ, s.TotalW, s.DurationS)
		}
		energy += s.EnergyJ
		secs += s.DurationS
	}
	if sum.EnergyJ != energy || sum.SimSeconds != secs {
		t.Fatalf("summary %+v vs folded energy %v over %v s", sum, energy, secs)
	}
	if sum.AvgW != energy/secs {
		t.Fatalf("avg %v != %v", sum.AvgW, energy/secs)
	}
	if sum.PeakIndex != 2 || sum.PeakW != tr.Samples[2].TotalW {
		t.Fatalf("peak at %d (%v W); fixture interval 2 is the hottest", sum.PeakIndex, sum.PeakW)
	}
	if sum.MinW != tr.Samples[1].TotalW {
		t.Fatalf("min %v; fixture interval 1 is memory-bound", sum.MinW)
	}
	// Start times accumulate interval durations.
	if tr.Samples[1].StartS != ivs[0].Duration || tr.Samples[2].StartS != ivs[0].Duration+ivs[1].Duration {
		t.Fatalf("start times %v/%v", tr.Samples[1].StartS, tr.Samples[2].StartS)
	}
}

// TestRunCancel pins cancellation: a context canceled mid-stream stops
// the run with a context error and the engine stays usable.
func TestRunCancel(t *testing.T) {
	eng, ivs := fixtureEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	var seen int
	_, err := eng.Run(ctx, ivs, func(Sample) error {
		seen++
		cancel()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("err = %v", err)
	}
	if seen != 1 {
		t.Fatalf("scored %d intervals after cancel", seen)
	}
	// The engine survives: a fresh run completes.
	if _, err := eng.Run(context.Background(), ivs, nil); err != nil {
		t.Fatalf("engine unusable after cancel: %v", err)
	}
}

// TestOnSampleErrorStopsRun pins the streaming hook contract: an error
// from the sink aborts the run and propagates.
func TestOnSampleErrorStopsRun(t *testing.T) {
	eng, ivs := fixtureEngine(t)
	want := context.DeadlineExceeded
	_, err := eng.Run(context.Background(), ivs, func(Sample) error { return want })
	if err != want {
		t.Fatalf("err = %v", err)
	}
}

// TestWriteNDJSON pins the framing: one chip record, one per sample, one
// summary, each a standalone JSON line that round-trips.
func TestWriteNDJSON(t *testing.T) {
	eng, ivs := fixtureEngine(t)
	tr, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var types []string
	var samples int
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		types = append(types, rec.Type)
		if rec.Type == "sample" {
			if rec.Sample == nil || rec.Sample.Index != samples {
				t.Fatalf("sample record %d: %+v", samples, rec.Sample)
			}
			samples++
		}
	}
	want := []string{"chip", "sample", "sample", "sample", "summary"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("frame sequence %v", types)
	}
}

// TestWriteCSV pins the tabular shape: a header with per-subsystem
// columns and one row per interval.
func TestWriteCSV(t *testing.T) {
	eng, ivs := fixtureEngine(t)
	tr, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(tr.Samples) {
		t.Fatalf("%d csv lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "index,start_s,duration_s,dynamic_w,leakage_w,total_w,energy_j,") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[0], "cores_w") {
		t.Fatalf("header lacks subsystem columns: %q", lines[0])
	}
	wantCols := len(strings.Split(lines[0], ","))
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != wantCols {
			t.Fatalf("ragged row %q", l)
		}
	}
}
