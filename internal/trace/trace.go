// Package trace turns a sequence of simulator statistics intervals into
// a time-series power trace. It is the workload the synthesize/score
// split was built for: the chip is synthesized exactly once (the
// expensive phase), then every interval dump runs one cheap, pure Score
// pass over the already-synthesized components — with report Items
// bump-allocated from a reused arena, so a warm interval costs no
// synthesis and almost no garbage.
//
// The per-interval reports are produced by the same single code path as
// chip.Report, so every Sample is bit-identical to what a standalone
// Report call over that interval's statistics would return.
package trace

import (
	"context"
	"fmt"
	"io"
	"math"

	"mcpat/internal/chip"
	"mcpat/internal/gem5"
	"mcpat/internal/guard"
	"mcpat/internal/m5compat"
	"mcpat/internal/power"
)

// Interval is one statistics window: the runtime vector the simulator
// dumped plus the simulated seconds it covers.
type Interval struct {
	Stats    *chip.Stats
	Duration float64 // simulated seconds in this window
}

// SubsystemPower is the per-top-level-subsystem runtime breakdown of one
// interval (Cores, L2, NoC, MemoryController, ...).
type SubsystemPower struct {
	Name     string  `json:"name"`
	DynamicW float64 `json:"dynamic_w"`
	LeakageW float64 `json:"leakage_w"` // net of power gating
	TotalW   float64 `json:"total_w"`
}

// Sample is the scored power of one interval. The thermal/DVFS fields
// are populated only when the closed loop is enabled (see EnableLoop):
// TemperatureK is the hotspot junction temperature at the end of the
// interval (the temperature the next interval's leakage is scored at),
// FreqHz the clock the interval ran at, and Throttled whether the
// governor derated it below nominal.
type Sample struct {
	Index        int              `json:"index"`
	StartS       float64          `json:"start_s"`    // simulated start time
	DurationS    float64          `json:"duration_s"` // simulated window length
	DynamicW     float64          `json:"dynamic_w"`
	LeakageW     float64          `json:"leakage_w"` // net of power gating
	TotalW       float64          `json:"total_w"`
	EnergyJ      float64          `json:"energy_j"` // TotalW x DurationS
	TemperatureK float64          `json:"temperature_k,omitempty"`
	FreqHz       float64          `json:"freq_hz,omitempty"`
	Throttled    bool             `json:"throttled,omitempty"`
	Subsystems   []SubsystemPower `json:"subsystems,omitempty"`
}

// Header describes the chip a trace was scored against.
type Header struct {
	Name      string  `json:"name"`
	NM        float64 `json:"nm"`
	ClockHz   float64 `json:"clock_hz"`
	NumCores  int     `json:"num_cores"`
	TDPW      float64 `json:"tdp_w"`
	AreaMM2   float64 `json:"area_mm2"`
	Intervals int     `json:"intervals,omitempty"` // 0 when unknown up front (streaming)
}

// Summary aggregates a finished trace. The thermal/DVFS fields are
// populated only for closed-loop runs.
type Summary struct {
	Intervals  int     `json:"intervals"`
	SimSeconds float64 `json:"sim_seconds"`
	EnergyJ    float64 `json:"energy_j"`
	AvgW       float64 `json:"avg_w"` // energy over simulated time
	PeakW      float64 `json:"peak_w"`
	PeakIndex  int     `json:"peak_index"`
	MinW       float64 `json:"min_w"`

	MaxTempK           float64 `json:"max_temp_k,omitempty"`
	FinalTempK         float64 `json:"final_temp_k,omitempty"`
	ThrottledIntervals int     `json:"throttled_intervals,omitempty"`
}

// Trace is a fully materialized power trace.
type Trace struct {
	Chip    Header   `json:"chip"`
	Samples []Sample `json:"samples"`
	Summary Summary  `json:"summary"`
}

// Record is one NDJSON frame of a streamed trace: exactly one of Chip,
// Sample, or Summary is set, discriminated by Type ("chip", "sample",
// "summary").
type Record struct {
	Type    string   `json:"type"`
	Chip    *Header  `json:"chip,omitempty"`
	Sample  *Sample  `json:"sample,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
}

// Engine scores intervals against one synthesized chip. It is not safe
// for concurrent use (the arena is shared across Score calls); build one
// engine per stream.
type Engine struct {
	proc    *chip.Processor
	arena   power.Arena
	tdpW    float64
	areaMM2 float64

	// loop, when non-nil, closes the power/thermal/DVFS feedback around
	// Run (see EnableLoop in loop.go).
	loop *loopState
}

// NewEngine synthesizes the chip once and pre-computes the TDP columns.
// Every subsequent Score call is a pure pass over the synthesized
// components; chip synthesis cost is paid here and never again.
func NewEngine(cfg chip.Config) (*Engine, error) {
	proc, err := chip.New(cfg)
	if err != nil {
		return nil, err
	}
	tdp := proc.Report(nil)
	return &Engine{
		proc:    proc,
		tdpW:    tdp.Peak(),
		areaMM2: tdp.Area * 1e6,
	}, nil
}

// Processor exposes the synthesized chip (for callers that want a full
// report of one interval, or chip metadata beyond the header).
func (e *Engine) Processor() *chip.Processor { return e.proc }

// Header describes the synthesized chip.
func (e *Engine) Header(intervals int) Header {
	return Header{
		Name:      e.proc.Cfg.Name,
		NM:        e.proc.Cfg.NM,
		ClockHz:   e.proc.Cfg.ClockHz,
		NumCores:  e.proc.Cfg.NumCores,
		TDPW:      e.tdpW,
		AreaMM2:   e.areaMM2,
		Intervals: intervals,
	}
}

// Score scores one interval: a single arena-backed Report pass over the
// synthesized chip, reduced to a Sample. start is the simulated time at
// which the interval begins.
func (e *Engine) Score(i int, start float64, iv Interval) (Sample, error) {
	e.arena.Reset()
	rep, err := e.proc.ReportArena(iv.Stats, &e.arena)
	if err != nil {
		return Sample{}, guard.At(err, fmt.Sprintf("interval[%d]", i))
	}
	s := Sample{
		Index:      i,
		StartS:     start,
		DurationS:  iv.Duration,
		DynamicW:   rep.RuntimeDynamic,
		LeakageW:   rep.Leakage() - rep.LeakSaved,
		TotalW:     rep.Runtime(),
		Subsystems: make([]SubsystemPower, 0, len(rep.Children)),
	}
	s.EnergyJ = s.TotalW * iv.Duration
	for _, c := range rep.Children {
		s.Subsystems = append(s.Subsystems, SubsystemPower{
			Name:     c.Name,
			DynamicW: c.RuntimeDynamic,
			LeakageW: c.Leakage() - c.LeakSaved,
			TotalW:   c.Runtime(),
		})
	}
	for _, v := range [...]float64{s.DynamicW, s.LeakageW, s.TotalW, s.EnergyJ, s.DurationS} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Sample{}, guard.Domainf(fmt.Sprintf("trace.interval[%d]", i), "non-finite power in scored interval")
		}
	}
	return s, nil
}

// Run scores every interval in order, invoking onSample (may be nil)
// after each one — the streaming hook — and returns the materialized
// trace. The context is honored between intervals, so a canceled stream
// stops promptly without tearing down the engine.
func (e *Engine) Run(ctx context.Context, intervals []Interval, onSample func(Sample) error) (*Trace, error) {
	tr := &Trace{
		Chip:    e.Header(len(intervals)),
		Samples: make([]Sample, 0, len(intervals)),
	}
	start := 0.0
	for i, iv := range intervals {
		if err := ctx.Err(); err != nil {
			return nil, guard.At(err, fmt.Sprintf("trace.interval[%d]", i))
		}
		ff := 1.0
		if e.loop != nil {
			iv, ff = e.loopBegin(i, iv)
		}
		s, err := e.Score(i, start, iv)
		if err != nil {
			return nil, err
		}
		if e.loop != nil {
			if err := e.loopEnd(&s, ff); err != nil {
				return nil, err
			}
		}
		tr.Samples = append(tr.Samples, s)
		start += iv.Duration
		if onSample != nil {
			if err := onSample(s); err != nil {
				return nil, err
			}
		}
	}
	tr.Summary = summarize(tr.Samples)
	return tr, nil
}

// summarize folds the samples into the trace summary.
func summarize(samples []Sample) Summary {
	sum := Summary{Intervals: len(samples)}
	if len(samples) == 0 {
		return sum
	}
	sum.MinW = math.Inf(1)
	for _, s := range samples {
		sum.SimSeconds += s.DurationS
		sum.EnergyJ += s.EnergyJ
		if s.TotalW > sum.PeakW {
			sum.PeakW = s.TotalW
			sum.PeakIndex = s.Index
		}
		if s.TotalW < sum.MinW {
			sum.MinW = s.TotalW
		}
		if s.TemperatureK > sum.MaxTempK {
			sum.MaxTempK = s.TemperatureK
		}
		sum.FinalTempK = s.TemperatureK
		if s.Throttled {
			sum.ThrottledIntervals++
		}
	}
	if sum.SimSeconds > 0 {
		sum.AvgW = sum.EnergyJ / sum.SimSeconds
	}
	return sum
}

// IntervalsFromDumps converts parsed gem5 statistics dumps into trace
// intervals for a chip with the given clock and core count.
func IntervalsFromDumps(dumps []m5compat.Dump, clockHz float64, numCores int) ([]Interval, error) {
	out := make([]Interval, 0, len(dumps))
	for i := range dumps {
		stats, err := m5compat.ToChipStatsAt(dumps, i, clockHz, numCores)
		if err != nil {
			return nil, guard.Wrap(guard.ErrConfig, fmt.Sprintf("trace.stats.interval[%d]", i), err)
		}
		secs, err := m5compat.SimSeconds(dumps[i], clockHz)
		if err != nil {
			return nil, guard.Wrap(guard.ErrConfig, fmt.Sprintf("trace.stats.interval[%d]", i), err)
		}
		out = append(out, Interval{Stats: stats, Duration: secs})
	}
	return out, nil
}

// FromGem5 wires the whole native pipeline: map config.json to a chip,
// synthesize it once, and convert every dump in stats.txt to an
// interval. The returned gem5.Result carries the mapping provenance.
func FromGem5(configJSON, statsTxt io.Reader) (*Engine, []Interval, *gem5.Result, error) {
	res, err := gem5.Map(configJSON)
	if err != nil {
		return nil, nil, nil, err
	}
	eng, err := NewEngine(res.Config)
	if err != nil {
		return nil, nil, nil, err
	}
	dumps, err := m5compat.Parse(statsTxt)
	if err != nil {
		return nil, nil, nil, guard.Wrap(guard.ErrConfig, "trace.stats", err)
	}
	ivs, err := IntervalsFromDumps(dumps, res.Config.ClockHz, res.Config.NumCores)
	if err != nil {
		return nil, nil, nil, err
	}
	return eng, ivs, res, nil
}
