package trace

import (
	"fmt"

	"mcpat/internal/thermal"
)

// This file closes the power→thermal→DVFS feedback loop around the trace
// engine. With the loop enabled, each interval runs:
//
//	governor (frequency/voltage for this interval, from the hotspot
//	        temperature entering it)
//	  → Score-time retune (chip.SetScoreTemperature / SetScoreDVFS)
//	  → one arena Score pass (no synthesis — the same single synthesized
//	        chip serves the whole trace)
//	  → thermal step (per-block lumped RC network, floorplan-derived
//	        spreading resistances) producing the hotspot that feeds the
//	        next interval
//
// so temperature-dependent leakage and thermally-driven throttling emerge
// from the trace instead of being assumed constant inputs.

// GovernorInput is the state a DVFS governor decides from at the start of
// an interval.
type GovernorInput struct {
	Index     int     // interval index
	TempK     float64 // hotspot junction temperature entering the interval
	AmbientK  float64 // package ambient
	MaxTjK    float64 // junction limit from the PackageSpec (0 = none)
	NominalHz float64 // the chip's synthesis clock
	FreqFrac  float64 // fraction applied on the previous interval (1 on the first)
}

// GovernorDecision is a governor's operating point for one interval, as
// fractions of the nominal clock and supply. Values outside (0, 1] are
// clamped; a zero VddFrac means "derive from FreqFrac by the linear V-f
// rule" (see VddForFreq).
type GovernorDecision struct {
	FreqFrac float64
	VddFrac  float64
}

// Governor picks the DVFS operating point for each interval. Decide is
// called once per interval on the trace goroutine; implementations should
// not allocate (the loop's per-interval path is allocation-free).
type Governor interface {
	Decide(in GovernorInput) GovernorDecision
}

// DefaultVddFloorFrac is the supply fraction the linear V-f rule
// approaches at zero frequency: the retention floor below which SRAM
// cells lose state, so practical DVFS never scales Vdd below ~85% even
// at the lowest frequency step.
const DefaultVddFloorFrac = 0.85

// VddForFreq maps a frequency fraction to a supply fraction by the
// first-order linear V-f rule with a retention floor: full supply at full
// frequency, shrinking proportionally toward floorFrac (0 selects
// DefaultVddFloorFrac) as frequency drops.
func VddForFreq(freqFrac, floorFrac float64) float64 {
	if floorFrac <= 0 || floorFrac > 1 {
		floorFrac = DefaultVddFloorFrac
	}
	if freqFrac >= 1 {
		return 1
	}
	if freqFrac <= 0 {
		return floorFrac
	}
	return floorFrac + (1-floorFrac)*freqFrac
}

// ThermalHeadroom is a proportional thermal-headroom governor: it runs at
// full frequency while the hotspot is below the throttle setpoint and
// sheds GainPerK of frequency per kelvin above it, down to MinFreqFrac.
// Supply follows frequency by the linear V-f rule. The zero value is
// usable: it targets 5 K under the package's junction limit.
type ThermalHeadroom struct {
	// TargetK is the throttle setpoint (K); 0 targets
	// GovernorInput.MaxTjK - 5, and with no junction limit either the
	// governor never throttles.
	TargetK float64
	// GainPerK is the frequency fraction shed per kelvin over the
	// setpoint (0 selects 0.05: full-range throttle over a 10 K band).
	GainPerK float64
	// MinFreqFrac floors the throttle (0 selects 0.5).
	MinFreqFrac float64
	// VddFloorFrac is the supply retention floor for VddForFreq
	// (0 selects DefaultVddFloorFrac).
	VddFloorFrac float64
}

// Decide implements Governor.
func (g ThermalHeadroom) Decide(in GovernorInput) GovernorDecision {
	target := g.TargetK
	if target <= 0 {
		if in.MaxTjK <= 0 {
			return GovernorDecision{FreqFrac: 1, VddFrac: 1}
		}
		target = in.MaxTjK - 5
	}
	over := in.TempK - target
	if over <= 0 {
		return GovernorDecision{FreqFrac: 1, VddFrac: 1}
	}
	gain := g.GainPerK
	if gain <= 0 {
		gain = 0.05
	}
	min := g.MinFreqFrac
	if min <= 0 {
		min = 0.5
	}
	ff := 1 - gain*over
	if ff < min {
		ff = min
	}
	return GovernorDecision{FreqFrac: ff, VddFrac: VddForFreq(ff, g.VddFloorFrac)}
}

// Schedule is a fixed-playback governor: interval i runs at FreqFrac[i]
// (the last entry holds beyond the end; an empty schedule means full
// frequency). VddFrac, if non-empty, plays back in parallel; otherwise
// supply follows frequency by the linear V-f rule. Use it to replay a
// measured DVFS trace or to sweep operating points.
type Schedule struct {
	FreqFrac     []float64
	VddFrac      []float64
	VddFloorFrac float64 // retention floor for the derived supply (0 = default)
}

// Decide implements Governor.
func (g Schedule) Decide(in GovernorInput) GovernorDecision {
	at := func(s []float64) (float64, bool) {
		if len(s) == 0 {
			return 1, false
		}
		i := in.Index
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i], true
	}
	ff, _ := at(g.FreqFrac)
	if vf, ok := at(g.VddFrac); ok {
		return GovernorDecision{FreqFrac: ff, VddFrac: vf}
	}
	return GovernorDecision{FreqFrac: ff, VddFrac: VddForFreq(ff, g.VddFloorFrac)}
}

// NewGovernor resolves a governor by policy name — the shared mapping
// behind the CLI -governor flag and the service's trace options.
// "" and "none" mean no DVFS (nil governor: thermal feedback only),
// "headroom" is the proportional ThermalHeadroom throttle (targetK
// optionally overrides its setpoint), and "schedule" plays back the
// given per-interval frequency fractions.
func NewGovernor(name string, targetK float64, freqSchedule []float64) (Governor, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "headroom":
		return ThermalHeadroom{TargetK: targetK}, nil
	case "schedule":
		if len(freqSchedule) == 0 {
			return nil, fmt.Errorf("trace: governor %q needs a frequency schedule", name)
		}
		for i, f := range freqSchedule {
			if f <= 0 || f > 1 {
				return nil, fmt.Errorf("trace: schedule entry %d (%g) outside (0, 1]", i, f)
			}
		}
		return Schedule{FreqFrac: freqSchedule}, nil
	}
	return nil, fmt.Errorf("trace: unknown governor %q (want none, headroom, or schedule)", name)
}

// LoopOptions configures the closed power/thermal/DVFS loop of a trace
// run.
type LoopOptions struct {
	// Package describes the cooling solution (RthetaJA required). Its
	// TimeConstS selects quasi-static (0) or transient stepping, and its
	// MaxTjK feeds the governor's default setpoint.
	Package thermal.PackageSpec
	// UseFloorplan derives one thermal block per top-level subsystem with
	// floorplan-based spreading resistances (Rtheta_i scaled by the die /
	// block area ratio, die geometry from Processor.Floorplan), so dense
	// hot blocks run hotter than the die average. False uses the
	// whole-die lumped fallback: one block at the package resistance.
	UseFloorplan bool
	// Governor picks per-interval frequency/voltage; nil runs the thermal
	// feedback with no DVFS (frequency stays nominal).
	Governor Governor
	// InitialTempK seeds the block temperatures (0 = ambient).
	InitialTempK float64
}

// loopState is the engine's per-run feedback state.
type loopState struct {
	model    *thermal.Model
	gov      Governor
	maxTjK   float64
	powers   []float64 // per-block scratch, reused every interval
	wholeDie bool      // powers[0] = chip total instead of per-subsystem
	tempK    float64   // hotspot entering the next interval
	freqFrac float64   // fraction applied on the previous interval
}

// EnableLoop arms the closed loop for subsequent Run calls. It costs one
// heap report (block geometry) and, with UseFloorplan, one floorplan —
// no additional synthesis. Thermal state persists across Run calls on
// the same engine (so a trace streamed in chunks stays continuous);
// re-invoke EnableLoop to restart from the initial temperature.
func (e *Engine) EnableLoop(opts LoopOptions) error {
	rep, err := e.proc.ReportE(nil)
	if err != nil {
		return err
	}
	st := &loopState{gov: opts.Governor, maxTjK: opts.Package.MaxTjK}
	if opts.UseFloorplan {
		plan, err := e.proc.Floorplan()
		if err != nil {
			return err
		}
		dieArea := plan.Width * plan.Height
		// Children's areas exclude the top-level overhead the die area
		// includes; the ratio of the report's die area to the child sum
		// recovers the placed-area scale without reaching into chip
		// internals.
		var childSum float64
		for _, c := range rep.Children {
			childSum += c.Area
		}
		scale := 1.0
		if childSum > 0 {
			scale = rep.Area / childSum
		}
		blocks := make([]thermal.Block, 0, len(rep.Children))
		for _, c := range rep.Children {
			blocks = append(blocks, thermal.Block{
				Name:     c.Name,
				RthetaJA: thermal.SpreadRtheta(opts.Package.RthetaJA, dieArea, c.Area*scale),
			})
		}
		st.model, err = thermal.NewModel(opts.Package, blocks, opts.InitialTempK)
		if err != nil {
			return err
		}
		st.powers = make([]float64, len(blocks))
	} else {
		st.model, err = thermal.NewDieModel(opts.Package, opts.InitialTempK)
		if err != nil {
			return err
		}
		st.powers = make([]float64, 1)
		st.wholeDie = true
	}
	st.tempK = st.model.Hotspot()
	st.freqFrac = 1
	e.loop = st
	return nil
}

// DisableLoop disarms the loop and restores the engine's nominal
// Score-time operating point.
func (e *Engine) DisableLoop() {
	e.loop = nil
	e.proc.SetScoreTemperature(0)
	e.proc.SetScoreDVFS(0, 0)
}

// LoopEnabled reports whether the closed loop is armed.
func (e *Engine) LoopEnabled() bool { return e.loop != nil }

// loopBegin applies the governor decision and the feedback temperature
// for interval i, returning the (possibly stretched) interval and the
// applied frequency fraction. The same number of core cycles at a lower
// clock takes proportionally longer, so throttled intervals stretch by
// the inverse frequency fraction.
func (e *Engine) loopBegin(i int, iv Interval) (Interval, float64) {
	l := e.loop
	ff, vf := 1.0, 1.0
	if l.gov != nil {
		d := l.gov.Decide(GovernorInput{
			Index:     i,
			TempK:     l.tempK,
			AmbientK:  l.model.Ambient(),
			MaxTjK:    l.maxTjK,
			NominalHz: e.proc.Cfg.ClockHz,
			FreqFrac:  l.freqFrac,
		})
		ff = clampFrac(d.FreqFrac)
		vf = clampFrac(d.VddFrac)
	}
	// Score leakage no hotter than the runaway guard: past it the
	// exponential retune overflows to useless infinities, while the
	// sample's reported temperature still shows the excursion.
	scoreT := l.tempK
	if scoreT > thermal.RunawayTjK {
		scoreT = thermal.RunawayTjK
	}
	e.proc.SetScoreTemperature(scoreT)
	e.proc.SetScoreDVFS(ff, vf)
	if ff != 1 {
		iv.Duration /= ff
	}
	return iv, ff
}

// loopEnd steps the thermal model over the scored interval and stamps the
// sample's thermal/DVFS columns. The hotspot after the step becomes the
// temperature the next interval is scored at.
func (e *Engine) loopEnd(s *Sample, ff float64) error {
	l := e.loop
	if l.wholeDie {
		l.powers[0] = s.TotalW
	} else {
		if len(s.Subsystems) != len(l.powers) {
			return fmt.Errorf("trace: loop block count %d does not match %d scored subsystems",
				len(l.powers), len(s.Subsystems))
		}
		for j, sp := range s.Subsystems {
			l.powers[j] = sp.TotalW
		}
	}
	hot := l.model.Step(l.powers, s.DurationS)
	l.tempK = hot
	l.freqFrac = ff
	s.TemperatureK = hot
	s.FreqHz = ff * e.proc.Cfg.ClockHz
	s.Throttled = ff != 1
	return nil
}

// clampFrac normalizes a governor fraction into (0, 1].
func clampFrac(f float64) float64 {
	if f <= 0 || f > 1 {
		return 1
	}
	return f
}
