package trace

import (
	"bytes"
	"context"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcpat/internal/component"
	"mcpat/internal/thermal"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// loopFixture arms the fixture engine with a deterministic closed loop:
// whole-die package, quasi-static steps, fixed-schedule governor.
func loopFixture(t *testing.T) (*Engine, []Interval) {
	t.Helper()
	eng, ivs := fixtureEngine(t)
	if err := eng.EnableLoop(LoopOptions{
		Package:  thermal.PackageSpec{RthetaJA: 0.8, AmbientK: 318},
		Governor: Schedule{FreqFrac: []float64{1, 0.8, 1}},
	}); err != nil {
		t.Fatal(err)
	}
	return eng, ivs
}

// TestLoopThermalFeedback pins the loop's observable behavior: every
// closed-loop sample carries a positive hotspot temperature and an
// applied frequency, the scheduled interval is flagged throttled with
// its duration stretched by the inverse frequency fraction, and the
// summary aggregates the thermal columns.
func TestLoopThermalFeedback(t *testing.T) {
	eng, ivs := loopFixture(t)
	tr, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	nominal := eng.Processor().Cfg.ClockHz
	for i, s := range tr.Samples {
		if s.TemperatureK <= 0 {
			t.Fatalf("sample %d: no temperature", i)
		}
		if s.FreqHz <= 0 {
			t.Fatalf("sample %d: no frequency", i)
		}
	}
	if tr.Samples[0].Throttled || tr.Samples[2].Throttled {
		t.Error("full-frequency intervals must not be flagged throttled")
	}
	s1 := tr.Samples[1]
	if !s1.Throttled || s1.FreqHz != 0.8*nominal {
		t.Fatalf("interval 1 should run at 0.8x nominal: %+v", s1)
	}
	if want := ivs[1].Duration / 0.8; math.Abs(s1.DurationS-want) > want*1e-12 {
		t.Errorf("throttled duration %.9e, want %.9e (stretched by 1/0.8)", s1.DurationS, want)
	}
	sum := tr.Summary
	if sum.ThrottledIntervals != 1 {
		t.Errorf("summary counts %d throttled intervals, want 1", sum.ThrottledIntervals)
	}
	if sum.FinalTempK != tr.Samples[2].TemperatureK {
		t.Error("summary final temperature must be the last sample's")
	}
	maxT := 0.0
	for _, s := range tr.Samples {
		if s.TemperatureK > maxT {
			maxT = s.TemperatureK
		}
	}
	if sum.MaxTempK != maxT {
		t.Errorf("summary max temperature %.3f, want %.3f", sum.MaxTempK, maxT)
	}
}

// TestLoopTemperatureFeedsLeakage pins the feedback itself: the same
// interval scored via the loop at an elevated temperature must leak more
// than the open-loop score of identical statistics.
func TestLoopTemperatureFeedsLeakage(t *testing.T) {
	eng, ivs := fixtureEngine(t)
	open, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A hot start (well above the 360 K reference) with thermal feedback.
	if err := eng.EnableLoop(LoopOptions{
		Package:      thermal.PackageSpec{RthetaJA: 0.8, AmbientK: 318, TimeConstS: 1},
		InitialTempK: 400,
	}); err != nil {
		t.Fatal(err)
	}
	closed, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if closed.Samples[0].LeakageW <= open.Samples[0].LeakageW {
		t.Errorf("400 K leakage %.3f W must exceed reference-temperature leakage %.3f W",
			closed.Samples[0].LeakageW, open.Samples[0].LeakageW)
	}
	// Dynamic power is temperature-independent: identical bits.
	if closed.Samples[0].DynamicW != open.Samples[0].DynamicW {
		t.Error("dynamic power must not move with temperature")
	}
	// Disarming restores the open-loop bits exactly.
	eng.DisableLoop()
	again, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range open.Samples {
		if again.Samples[i].TotalW != open.Samples[i].TotalW {
			t.Fatalf("interval %d: DisableLoop did not restore open-loop scoring", i)
		}
	}
}

// TestLoopSynthesizesOnce extends the headline trace contract to the
// closed loop: arming the loop (a heap report plus a floorplan) and
// running the whole feedback trace must cause zero synthesis-layer
// activity beyond the engine build.
func TestLoopSynthesizesOnce(t *testing.T) {
	eng, ivs := fixtureEngine(t)
	before := component.Stats()
	if err := eng.EnableLoop(LoopOptions{
		Package:      thermal.PackageSpec{RthetaJA: 0.8, MaxTjK: 360, TimeConstS: 5e-4},
		UseFloorplan: true,
		Governor:     ThermalHeadroom{},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), ivs, nil); err != nil {
		t.Fatal(err)
	}
	d := component.Stats().Delta(before).Total()
	if d.Misses != 0 || d.Hits != 0 || d.Bypassed != 0 {
		t.Fatalf("closed loop touched the synthesis layer: %+v", d)
	}
}

// TestLoopFloorplanHotspot: with floorplan-derived per-block resistances
// the hotspot must run at or above the whole-die temperature for the
// same trace — a dense block concentrates its power in less area.
func TestLoopFloorplanHotspot(t *testing.T) {
	pkg := thermal.PackageSpec{RthetaJA: 0.8, AmbientK: 318}

	whole, ivs := fixtureEngine(t)
	if err := whole.EnableLoop(LoopOptions{Package: pkg}); err != nil {
		t.Fatal(err)
	}
	trWhole, err := whole.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}

	planned, ivs2 := fixtureEngine(t)
	if err := planned.EnableLoop(LoopOptions{Package: pkg, UseFloorplan: true}); err != nil {
		t.Fatal(err)
	}
	trPlan, err := planned.Run(context.Background(), ivs2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trWhole.Samples {
		if trPlan.Samples[i].TemperatureK < trWhole.Samples[i].TemperatureK-1e-9 {
			t.Errorf("interval %d: floorplan hotspot %.3f K below whole-die %.3f K",
				i, trPlan.Samples[i].TemperatureK, trWhole.Samples[i].TemperatureK)
		}
	}
}

// TestGovernorHeadroom pins the proportional throttle's envelope.
func TestGovernorHeadroom(t *testing.T) {
	g := ThermalHeadroom{}
	in := GovernorInput{MaxTjK: 360, NominalHz: 2e9}

	in.TempK = 340 // well under the 355 K default setpoint
	if d := g.Decide(in); d.FreqFrac != 1 || d.VddFrac != 1 {
		t.Errorf("cool chip must run at nominal: %+v", d)
	}
	in.TempK = 357 // 2 K over: shed 0.1
	d := g.Decide(in)
	if math.Abs(d.FreqFrac-0.9) > 1e-12 {
		t.Errorf("2 K over setpoint: freq %.4f, want 0.90", d.FreqFrac)
	}
	if d.VddFrac >= 1 || d.VddFrac < DefaultVddFloorFrac {
		t.Errorf("derived supply %.4f outside (floor, 1)", d.VddFrac)
	}
	in.TempK = 420 // far over: clamp at the floor
	if d := g.Decide(in); d.FreqFrac != 0.5 {
		t.Errorf("deep overtemperature must clamp at the 0.5 floor: %+v", d)
	}
	// No junction limit and no explicit target: never throttles.
	free := GovernorInput{TempK: 500}
	if d := g.Decide(free); d.FreqFrac != 1 {
		t.Errorf("no limit, no setpoint: must stay nominal, got %+v", d)
	}
	// Explicit setpoint works without a junction limit.
	g2 := ThermalHeadroom{TargetK: 350}
	if d := g2.Decide(GovernorInput{TempK: 352}); d.FreqFrac >= 1 {
		t.Error("explicit setpoint must throttle without a junction limit")
	}
}

// TestGovernorSchedule pins playback: indexed entries, last-value hold,
// and supply derivation.
func TestGovernorSchedule(t *testing.T) {
	g := Schedule{FreqFrac: []float64{1, 0.6}}
	if d := g.Decide(GovernorInput{Index: 0}); d.FreqFrac != 1 {
		t.Errorf("interval 0: %+v", d)
	}
	d := g.Decide(GovernorInput{Index: 1})
	if d.FreqFrac != 0.6 {
		t.Errorf("interval 1: %+v", d)
	}
	if want := VddForFreq(0.6, 0); d.VddFrac != want {
		t.Errorf("derived supply %.4f, want %.4f", d.VddFrac, want)
	}
	if d := g.Decide(GovernorInput{Index: 7}); d.FreqFrac != 0.6 {
		t.Errorf("past the end the last entry holds: %+v", d)
	}
	explicit := Schedule{FreqFrac: []float64{0.5}, VddFrac: []float64{0.9}}
	if d := explicit.Decide(GovernorInput{Index: 0}); d.VddFrac != 0.9 {
		t.Errorf("explicit supply schedule ignored: %+v", d)
	}
}

// TestNewGovernor pins the shared policy-name mapping.
func TestNewGovernor(t *testing.T) {
	for _, name := range []string{"", "none"} {
		if g, err := NewGovernor(name, 0, nil); err != nil || g != nil {
			t.Errorf("%q: want nil governor, got %v, %v", name, g, err)
		}
	}
	if g, err := NewGovernor("headroom", 350, nil); err != nil {
		t.Fatal(err)
	} else if g.(ThermalHeadroom).TargetK != 350 {
		t.Error("headroom setpoint not threaded")
	}
	if _, err := NewGovernor("schedule", 0, nil); err == nil {
		t.Error("schedule without entries must fail")
	}
	if _, err := NewGovernor("schedule", 0, []float64{1.5}); err == nil {
		t.Error("out-of-range schedule entry must fail")
	}
	if g, err := NewGovernor("schedule", 0, []float64{0.7}); err != nil || g == nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if _, err := NewGovernor("ondemand", 0, nil); err == nil {
		t.Error("unknown policy must fail")
	}
}

// TestWriterGolden pins the CSV output byte-for-byte in both modes: the
// open-loop table must not change shape (no thermal columns), and the
// closed-loop table must carry temperature_k/freq_hz/throttled between
// the fixed and per-subsystem columns. Regenerate with -update.
func TestWriterGolden(t *testing.T) {
	run := func(t *testing.T, closed bool) string {
		eng, ivs := fixtureEngine(t)
		if closed {
			if err := eng.EnableLoop(LoopOptions{
				Package:  thermal.PackageSpec{RthetaJA: 0.8, AmbientK: 318},
				Governor: Schedule{FreqFrac: []float64{1, 0.8, 1}},
			}); err != nil {
				t.Fatal(err)
			}
		}
		tr, err := eng.Run(context.Background(), ivs, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, tc := range []struct {
		name, file string
		closed     bool
	}{
		{"open", "golden_open.csv", false},
		{"closed", "golden_closed.csv", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := run(t, tc.closed)
			path := filepath.Join("testdata", tc.file)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("%s differs from golden (run with -update to regenerate):\n%s", tc.file, got)
			}
			header := strings.SplitN(got, "\n", 2)[0]
			if tc.closed != strings.Contains(header, "temperature_k") {
				t.Errorf("thermal columns present=%v, want %v: %q", !tc.closed, tc.closed, header)
			}
		})
	}
}

// TestNDJSONThermalFields: closed-loop NDJSON samples carry the thermal
// fields, open-loop samples omit them entirely.
func TestNDJSONThermalFields(t *testing.T) {
	openEng, ivs := fixtureEngine(t)
	openTr, err := openEng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := openTr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "temperature_k") {
		t.Error("open-loop NDJSON must omit thermal fields")
	}

	closedEng, ivs2 := loopFixture(t)
	closedTr, err := closedEng.Run(context.Background(), ivs2, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := closedTr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"temperature_k"`) || !strings.Contains(out, `"freq_hz"`) ||
		!strings.Contains(out, `"throttled":true`) {
		t.Errorf("closed-loop NDJSON lacks thermal fields:\n%s", out)
	}
	if !strings.Contains(out, `"max_temp_k"`) || !strings.Contains(out, `"throttled_intervals":1`) {
		t.Errorf("closed-loop summary lacks thermal aggregates:\n%s", out)
	}
}

// TestLoopAllocBudget enforces the acceptance bound: the closed-loop
// per-interval path (governor, retune, score, thermal step, sample
// stamping) may cost at most two allocations more than the open-loop
// arena path.
func TestLoopAllocBudget(t *testing.T) {
	openEng, ivs := fixtureEngine(t)
	iv := ivs[0]
	openAllocs := testing.AllocsPerRun(200, func() {
		if _, err := openEng.Score(0, 0, iv); err != nil {
			t.Fatal(err)
		}
	})

	closedEng, _ := loopFixture(t)
	closedAllocs := testing.AllocsPerRun(200, func() {
		iv2, ff := closedEng.loopBegin(0, iv)
		s, err := closedEng.Score(0, 0, iv2)
		if err != nil {
			t.Fatal(err)
		}
		if err := closedEng.loopEnd(&s, ff); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/interval: open %.1f, closed %.1f", openAllocs, closedAllocs)
	if closedAllocs > openAllocs+2 {
		t.Errorf("closed-loop interval costs %.1f allocs, budget is open-loop %.1f + 2", closedAllocs, openAllocs)
	}
}
