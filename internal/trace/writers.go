package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteRecord writes one NDJSON frame (a single line of JSON).
func WriteRecord(w io.Writer, rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteNDJSON streams the materialized trace in the same framing the
// service emits: one chip record, one record per sample, one summary.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	h := t.Chip
	if err := WriteRecord(w, Record{Type: "chip", Chip: &h}); err != nil {
		return err
	}
	for i := range t.Samples {
		if err := WriteRecord(w, Record{Type: "sample", Sample: &t.Samples[i]}); err != nil {
			return err
		}
	}
	s := t.Summary
	return WriteRecord(w, Record{Type: "summary", Summary: &s})
}

// WriteCSV writes the trace as a spreadsheet-friendly table: one row per
// interval, fixed power/energy columns, then — only for closed-loop
// traces — the thermal/DVFS columns (temperature_k, freq_hz, throttled),
// then one total-watts column per top-level subsystem (taken from the
// first sample's breakdown). Open-loop traces keep the original column
// set exactly, so existing consumers see no change.
func (t *Trace) WriteCSV(w io.Writer) error {
	cols := []string{"index", "start_s", "duration_s", "dynamic_w", "leakage_w", "total_w", "energy_j"}
	thermal := t.hasThermal()
	if thermal {
		cols = append(cols, "temperature_k", "freq_hz", "throttled")
	}
	var subs []string
	if len(t.Samples) > 0 {
		for _, sp := range t.Samples[0].Subsystems {
			subs = append(subs, sp.Name)
			cols = append(cols, csvName(sp.Name)+"_w")
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, s := range t.Samples {
		row := fmt.Sprintf("%d,%g,%g,%g,%g,%g,%g",
			s.Index, s.StartS, s.DurationS, s.DynamicW, s.LeakageW, s.TotalW, s.EnergyJ)
		if thermal {
			throttled := 0
			if s.Throttled {
				throttled = 1
			}
			row += fmt.Sprintf(",%g,%g,%d", s.TemperatureK, s.FreqHz, throttled)
		}
		byName := make(map[string]float64, len(s.Subsystems))
		for _, sp := range s.Subsystems {
			byName[sp.Name] = sp.TotalW
		}
		for _, name := range subs {
			row += fmt.Sprintf(",%g", byName[name])
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// hasThermal reports whether the trace was produced by a closed-loop run
// (every closed-loop sample carries a positive hotspot temperature).
func (t *Trace) hasThermal() bool {
	return len(t.Samples) > 0 && t.Samples[0].TemperatureK > 0
}

// csvName lowercases a subsystem name into a column-safe slug.
func csvName(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
