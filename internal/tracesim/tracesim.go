// Package tracesim is a trace-driven multicore cache-hierarchy simulator
// with MSI coherence. It complements the analytical model in package
// perfsim: instead of taking L1/L2 miss rates as workload parameters, it
// *measures* them by running synthetic (deterministically generated)
// address traces through set-associative LRU caches with a directory-based
// MSI protocol, counting hits, misses, write-backs, invalidations, and
// cache-to-cache transfers.
//
// The measured rates convert into a perfsim.Workload (ToWorkload) and the
// absolute event counts into the chip statistics vector (ToStats), closing
// the loop: synthetic program behavior -> real cache mechanics ->
// contention-aware performance -> McPAT power. This is the fidelity rung
// between pure parameters and a full-system simulator like M5.
package tracesim

import (
	"fmt"
	"math/rand"

	"mcpat/internal/perfsim"
)

// TraceConfig describes the synthetic memory behavior of one parallel
// program, in the spirit of a SPLASH-2 kernel: a hot working set that
// mostly hits in L1, a warm set that exercises L2, streaming accesses
// that always miss, and a shared region that generates coherence traffic.
type TraceConfig struct {
	Name string
	Seed int64

	Threads           int
	AccessesPerThread int

	// Instruction mix (fractions of all instructions; the remainder is
	// non-memory work used only for the derived workload descriptor).
	LoadFrac, StoreFrac float64
	BranchFrac          float64
	FPFrac, MulFrac     float64

	// Memory behavior. Fractions are of memory accesses.
	HotSetBytes  int     // per-thread private hot set
	WarmSetBytes int     // per-thread private warm set
	SharedBytes  int     // globally shared region
	SharedFrac   float64 // accesses to the shared region
	WarmFrac     float64 // accesses to the warm set
	StreamFrac   float64 // streaming (non-reusable) accesses

	// SharedWriteFrac is the write probability of shared-region accesses.
	// Most shared data is read-mostly; a high value models producer/
	// consumer ping-pong. Negative selects the overall write ratio.
	SharedWriteFrac float64

	BaseCPI float64 // no-stall CPI for the derived workload
}

func (c *TraceConfig) defaults() error {
	if c.Threads <= 0 {
		return fmt.Errorf("tracesim %q: Threads must be positive", c.Name)
	}
	if c.AccessesPerThread <= 0 {
		c.AccessesPerThread = 200_000
	}
	if c.LoadFrac == 0 && c.StoreFrac == 0 {
		c.LoadFrac, c.StoreFrac = 0.25, 0.12
	}
	if c.HotSetBytes <= 0 {
		c.HotSetBytes = 16 << 10
	}
	if c.WarmSetBytes <= 0 {
		c.WarmSetBytes = 512 << 10
	}
	if c.SharedBytes <= 0 {
		c.SharedBytes = 256 << 10
	}
	if c.BaseCPI <= 0 {
		c.BaseCPI = 1.1
	}
	if c.SharedWriteFrac == 0 {
		c.SharedWriteFrac = 0.08 // read-mostly sharing by default
	}
	frac := c.SharedFrac + c.WarmFrac + c.StreamFrac
	if frac > 1 {
		return fmt.Errorf("tracesim %q: access fractions sum to %.2f > 1", c.Name, frac)
	}
	if c.WarmSetBytes+c.HotSetBytes > 0x400000 {
		return fmt.Errorf("tracesim %q: per-thread sets (%d bytes) exceed the 4MB thread stride", c.Name, c.WarmSetBytes+c.HotSetBytes)
	}
	return nil
}

// Access is one memory reference of the trace.
type Access struct {
	Thread int
	Addr   uint64
	Write  bool
}

// Hierarchy describes the simulated cache hierarchy.
type Hierarchy struct {
	L1Bytes, L1Assoc, BlockBytes int
	L2Bytes, L2Assoc             int
	L2Banks                      int // addresses interleave across banks
	Cores                        int // one private L1 per core
	ThreadsPerCore               int // threads map round-robin to cores
}

func (h *Hierarchy) defaults() error {
	if h.Cores <= 0 {
		return fmt.Errorf("tracesim: Cores must be positive")
	}
	if h.ThreadsPerCore <= 0 {
		h.ThreadsPerCore = 1
	}
	if h.BlockBytes <= 0 {
		h.BlockBytes = 64
	}
	if h.L1Bytes <= 0 {
		h.L1Bytes = 32 << 10
	}
	if h.L1Assoc <= 0 {
		h.L1Assoc = 4
	}
	if h.L2Bytes <= 0 {
		h.L2Bytes = 4 << 20
	}
	if h.L2Assoc <= 0 {
		h.L2Assoc = 8
	}
	if h.L2Banks <= 0 {
		h.L2Banks = 1
	}
	return nil
}

// Result carries the measured statistics.
type Result struct {
	Config    TraceConfig
	Hierarchy Hierarchy

	Accesses uint64 // memory accesses simulated
	L1Hits   uint64
	L1Misses uint64
	L2Hits   uint64
	L2Misses uint64 // go to memory

	WriteBacks        uint64 // dirty L1 evictions
	Invalidations     uint64 // MSI invalidates of remote copies (coherence)
	BackInvalidations uint64 // inclusion victims: L2 eviction clears L1 copies
	C2CTransfers      uint64 // cache-to-cache (remote M) transfers
	UpgradeMisses     uint64 // S->M upgrades (permission misses)

	L1MissRate float64 // per access
	L2MissRate float64 // per L2 access
	ShareRate  float64 // coherence events per L2 access
}

// coherence states.
const (
	invalid = iota
	shared
	modified
)

// line is one cache line in an L1.
type line struct {
	tag   uint64
	state uint8
	lru   uint32
}

// l2line tracks the L2 copy plus its directory (sharer bit-vector).
type l2line struct {
	tag     uint64
	valid   bool
	dirty   bool
	sharers uint64 // bit per core; ownerM marks a modified owner
	ownerM  int8   // core holding the line Modified, -1 if none
	lru     uint32
}

// Simulate runs the trace through the hierarchy.
func Simulate(h Hierarchy, tc TraceConfig) (*Result, error) {
	if err := h.defaults(); err != nil {
		return nil, err
	}
	if err := tc.defaults(); err != nil {
		return nil, err
	}
	if h.Cores > 64 {
		return nil, fmt.Errorf("tracesim: directory bit-vector supports up to 64 cores, got %d", h.Cores)
	}

	block := uint64(h.BlockBytes)
	l1Sets := uint64(h.L1Bytes / (h.L1Assoc * h.BlockBytes))
	l2Sets := uint64(h.L2Bytes / (h.L2Assoc * h.BlockBytes))
	if l1Sets == 0 || l2Sets == 0 {
		return nil, fmt.Errorf("tracesim: cache too small for its associativity")
	}

	// l1[core][set][way], l2[set][way].
	l1 := make([][][]line, h.Cores)
	for c := range l1 {
		sets := make([][]line, l1Sets)
		for s := range sets {
			sets[s] = make([]line, h.L1Assoc)
		}
		l1[c] = sets
	}
	l2 := make([][]l2line, l2Sets)
	for s := range l2 {
		ways := make([]l2line, h.L2Assoc)
		for w := range ways {
			ways[w].ownerM = -1
		}
		l2[s] = ways
	}

	res := &Result{Config: tc, Hierarchy: h}
	var clock uint32

	findL1 := func(core int, blk uint64) *line {
		set := l1[core][blk%l1Sets]
		for i := range set {
			if set[i].state != invalid && set[i].tag == blk {
				return &set[i]
			}
		}
		return nil
	}
	victimL1 := func(core int, blk uint64) *line {
		set := l1[core][blk%l1Sets]
		v := &set[0]
		for i := range set {
			if set[i].state == invalid {
				return &set[i]
			}
			if set[i].lru < v.lru {
				v = &set[i]
			}
		}
		return v
	}
	findL2 := func(blk uint64) *l2line {
		set := l2[blk%l2Sets]
		for i := range set {
			if set[i].valid && set[i].tag == blk {
				return &set[i]
			}
		}
		return nil
	}
	victimL2 := func(blk uint64) *l2line {
		set := l2[blk%l2Sets]
		v := &set[0]
		for i := range set {
			if !set[i].valid {
				return &set[i]
			}
			if set[i].lru < v.lru {
				v = &set[i]
			}
		}
		return v
	}
	// invalidateL1 removes blk from every L1 named in the sharer vector
	// except keep. Coherence invalidations (a writer exists: keep >= 0)
	// and inclusion back-invalidations (L2 eviction: keep < 0) are
	// counted separately.
	invalidateL1 := func(le *l2line, blk uint64, keep int) {
		for c := 0; c < h.Cores; c++ {
			if c == keep || le.sharers&(1<<uint(c)) == 0 {
				continue
			}
			if ln := findL1(c, blk); ln != nil {
				if ln.state == modified {
					le.dirty = true
					res.WriteBacks++
				}
				ln.state = invalid
				if keep >= 0 {
					res.Invalidations++
				} else {
					res.BackInvalidations++
				}
			}
		}
		le.sharers = 0
		if keep >= 0 {
			le.sharers = 1 << uint(keep)
		}
		le.ownerM = -1
	}

	access := func(core int, addr uint64, write bool) {
		clock++
		blk := addr / block
		res.Accesses++

		if ln := findL1(core, blk); ln != nil {
			if !write || ln.state == modified {
				ln.lru = clock
				res.L1Hits++
				return
			}
			// Write to a Shared line: upgrade miss - invalidate peers.
			res.UpgradeMisses++
			le := findL2(blk)
			if le != nil {
				invalidateL1(le, blk, core)
				le.ownerM = int8(core)
			}
			ln.state = modified
			ln.lru = clock
			res.L1Hits++ // data was present; only permission was missing
			return
		}

		// L1 miss.
		res.L1Misses++
		le := findL2(blk)
		if le == nil {
			// L2 miss: fetch from memory, possibly evicting.
			res.L2Misses++
			v := victimL2(blk)
			if v.valid {
				invalidateL1(v, v.tag, -1) // inclusive L2: back-invalidate
				if v.dirty {
					res.WriteBacks++
				}
			}
			*v = l2line{tag: blk, valid: true, lru: clock, ownerM: -1}
			le = v
		} else {
			res.L2Hits++
			if le.ownerM >= 0 && int(le.ownerM) != core {
				// Remote Modified: cache-to-cache transfer + downgrade.
				res.C2CTransfers++
				if owner := findL1(int(le.ownerM), blk); owner != nil {
					owner.state = shared
				}
				le.dirty = true
				le.ownerM = -1
			}
		}
		le.lru = clock

		// Install in L1.
		v := victimL1(core, blk)
		if v.state == modified {
			res.WriteBacks++
			if old := findL2(v.tag); old != nil {
				old.dirty = true
				old.sharers &^= 1 << uint(core)
			}
		} else if v.state == shared {
			if old := findL2(v.tag); old != nil {
				old.sharers &^= 1 << uint(core)
			}
		}
		st := uint8(shared)
		if write {
			invalidateL1(le, blk, core)
			le.ownerM = int8(core)
			st = modified
		} else {
			le.sharers |= 1 << uint(core)
		}
		*v = line{tag: blk, state: st, lru: clock}
	}

	// --- Drive the generated trace --------------------------------------
	rng := rand.New(rand.NewSource(tc.Seed))
	memFrac := tc.LoadFrac + tc.StoreFrac
	writeProb := tc.StoreFrac / memFrac

	const (
		privateBase = 0x1000_0000
		sharedBase  = 0x8000_0000
		streamBase  = 0xC000_0000
		// threadStride separates per-thread private regions. It is NOT a
		// power of two: a 2^k stride would alias every thread's region
		// onto the same L2 sets (stride % sets == 0) and manufacture
		// conflict thrashing that real heaps do not exhibit.
		threadStride = 0x413000
	)
	streamPtr := make([]uint64, tc.Threads)

	// Warm and shared accesses exhibit phased locality, like blocked
	// kernels: most references land in a window that slides through the
	// set, so reuse distance is short within a phase but the full set
	// still cycles through the caches.
	const (
		windowBytes = 4 << 10
		phaseLen    = 2000 // accesses per window position
	)
	warmWindows := maxI(tc.WarmSetBytes/windowBytes, 1)
	sharedWindows := maxI(tc.SharedBytes/windowBytes, 1)

	for i := 0; i < tc.AccessesPerThread; i++ {
		phase := i / phaseLen
		for t := 0; t < tc.Threads; t++ {
			core := t % h.Cores
			r := rng.Float64()
			var addr uint64
			isShared := false
			switch {
			case r < tc.SharedFrac:
				// All threads walk the shared region in the same phase
				// order, maximizing constructive sharing (and conflict).
				isShared = true
				win := uint64(phase%sharedWindows) * windowBytes
				addr = sharedBase + win + uint64(rng.Intn(windowBytes))
			case r < tc.SharedFrac+tc.StreamFrac:
				addr = streamBase + uint64(t)<<28 + streamPtr[t]
				streamPtr[t] += block
			case r < tc.SharedFrac+tc.StreamFrac+tc.WarmFrac:
				win := uint64((phase+t)%warmWindows) * windowBytes
				addr = privateBase + uint64(t)*threadStride + win + uint64(rng.Intn(windowBytes))
			default:
				addr = privateBase + uint64(t)*threadStride + uint64(rng.Intn(tc.HotSetBytes))
			}
			wp := writeProb
			if isShared {
				wp = tc.SharedWriteFrac
				if wp < 0 {
					wp = writeProb
				}
			}
			write := rng.Float64() < wp
			access(core, addr, write)
		}
	}

	if res.Accesses > 0 {
		res.L1MissRate = float64(res.L1Misses) / float64(res.Accesses)
	}
	l2Acc := res.L2Hits + res.L2Misses
	if l2Acc > 0 {
		res.L2MissRate = float64(res.L2Misses) / float64(l2Acc)
		res.ShareRate = float64(res.Invalidations+res.C2CTransfers) / float64(l2Acc)
	}
	return res, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ToWorkload converts measured rates into the analytical performance
// model's workload descriptor, replacing its assumed miss parameters with
// simulated ones.
func (r *Result) ToWorkload(instructions float64) perfsim.Workload {
	tc := r.Config
	share := r.ShareRate
	if share > 1 {
		share = 1
	}
	return perfsim.Workload{
		Name:         tc.Name + "(traced)",
		Instructions: instructions,
		LoadFrac:     tc.LoadFrac,
		StoreFrac:    tc.StoreFrac,
		BranchFrac:   tc.BranchFrac,
		FPFrac:       tc.FPFrac,
		MulFrac:      tc.MulFrac,
		L1IMissRate:  0.002, // instruction side not traced; typical value
		L1DMissRate:  r.L1MissRate,
		L2MissRate:   r.L2MissRate,
		SharingFrac:  share,
		BaseCPI:      tc.BaseCPI,
	}
}
