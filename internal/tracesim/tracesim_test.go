package tracesim

import (
	"math"
	"testing"
	"testing/quick"
)

func hier(cores int) Hierarchy {
	return Hierarchy{
		Cores: cores, ThreadsPerCore: 1,
		L1Bytes: 32 << 10, L1Assoc: 4, BlockBytes: 64,
		L2Bytes: 2 << 20, L2Assoc: 8, L2Banks: 4,
	}
}

func trace(threads int) TraceConfig {
	return TraceConfig{
		Name: "t", Seed: 42, Threads: threads,
		AccessesPerThread: 50_000,
		LoadFrac:          0.25, StoreFrac: 0.12,
		HotSetBytes: 16 << 10, WarmSetBytes: 512 << 10, SharedBytes: 256 << 10,
		SharedFrac: 0.15, WarmFrac: 0.20, StreamFrac: 0.05,
	}
}

func TestSimulateBasics(t *testing.T) {
	r, err := Simulate(hier(4), trace(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("L1 miss %.3f  L2 miss %.3f  share %.3f  inval %d  c2c %d  wb %d",
		r.L1MissRate, r.L2MissRate, r.ShareRate, r.Invalidations, r.C2CTransfers, r.WriteBacks)
	if r.Accesses != 4*50_000 {
		t.Fatalf("accesses = %d", r.Accesses)
	}
	if r.L1Hits+r.L1Misses != r.Accesses {
		t.Error("L1 hits+misses must equal accesses")
	}
	if r.L2Hits+r.L2Misses != r.L1Misses {
		t.Error("L2 traffic must equal L1 misses")
	}
	// Hot set (16KB) fits in L1 (32KB) and warm/shared phases mostly
	// reuse their window; the remaining misses are streaming plus
	// write-sharing ping-pong on the shared window (4 threads invalidate
	// each other), so the rate is modest but well above the cold floor.
	if r.L1MissRate < 0.01 || r.L1MissRate > 0.30 {
		t.Errorf("L1 miss rate %.3f implausible for a phased workload", r.L1MissRate)
	}
	if r.L2MissRate <= 0 || r.L2MissRate >= 1 {
		t.Errorf("L2 miss rate %.3f out of range", r.L2MissRate)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Simulate(hier(4), trace(4))
	b, _ := Simulate(hier(4), trace(4))
	if *a != *b {
		t.Error("same seed must reproduce identical results")
	}
	c2 := trace(4)
	c2.Seed = 43
	c, _ := Simulate(hier(4), c2)
	if a.L1Misses == c.L1Misses && a.Invalidations == c.Invalidations {
		t.Error("different seed should perturb the counts")
	}
}

func TestBiggerL1CutsMisses(t *testing.T) {
	small := hier(4)
	small.L1Bytes = 8 << 10
	big := hier(4)
	big.L1Bytes = 64 << 10
	rs, _ := Simulate(small, trace(4))
	rb, _ := Simulate(big, trace(4))
	if rb.L1MissRate >= rs.L1MissRate {
		t.Errorf("bigger L1 must reduce miss rate: %.4f vs %.4f", rb.L1MissRate, rs.L1MissRate)
	}
}

func TestBiggerL2CutsMemoryTraffic(t *testing.T) {
	small := hier(4)
	small.L2Bytes = 256 << 10
	big := hier(4)
	big.L2Bytes = 8 << 20
	rs, _ := Simulate(small, trace(4))
	rb, _ := Simulate(big, trace(4))
	if rb.L2Misses >= rs.L2Misses {
		t.Errorf("bigger L2 must reduce memory traffic: %d vs %d", rb.L2Misses, rs.L2Misses)
	}
}

func TestSharingDrivesCoherence(t *testing.T) {
	none := trace(8)
	none.SharedFrac = 0
	lots := trace(8)
	lots.SharedFrac = 0.4
	rn, _ := Simulate(hier(8), none)
	rl, _ := Simulate(hier(8), lots)
	if rn.Invalidations+rn.C2CTransfers >= rl.Invalidations+rl.C2CTransfers {
		t.Errorf("shared accesses must drive coherence: %d vs %d",
			rn.Invalidations+rn.C2CTransfers, rl.Invalidations+rl.C2CTransfers)
	}
	if rl.Invalidations == 0 {
		t.Error("write sharing must produce invalidations")
	}
	if rl.C2CTransfers == 0 {
		t.Error("read-after-remote-write must produce cache-to-cache transfers")
	}
}

func TestSingleCoreHasNoCoherenceTraffic(t *testing.T) {
	tc := trace(1)
	tc.SharedFrac = 0.3 // shared region exists but only one core touches it
	r, err := Simulate(hier(1), tc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Invalidations != 0 || r.C2CTransfers != 0 {
		t.Errorf("single core cannot have coherence traffic: inval=%d c2c=%d",
			r.Invalidations, r.C2CTransfers)
	}
}

func TestStreamingMissesInBothLevels(t *testing.T) {
	tc := trace(2)
	tc.SharedFrac, tc.WarmFrac = 0, 0
	tc.StreamFrac = 0.5
	tc.HotSetBytes = 4 << 10
	r, _ := Simulate(hier(2), tc)
	// Streaming accesses never reuse blocks (one miss per block touched),
	// so L2 miss rate must be high.
	if r.L2MissRate < 0.3 {
		t.Errorf("streaming-heavy trace should thrash L2, miss rate %.3f", r.L2MissRate)
	}
}

func TestToWorkloadBridging(t *testing.T) {
	r, err := Simulate(hier(4), trace(4))
	if err != nil {
		t.Fatal(err)
	}
	w := r.ToWorkload(1e9)
	if w.L1DMissRate != r.L1MissRate || w.L2MissRate != r.L2MissRate {
		t.Error("workload must carry the measured miss rates")
	}
	if w.Instructions != 1e9 || w.BaseCPI <= 0 {
		t.Error("workload descriptor incomplete")
	}
	if w.SharingFrac > 1 {
		t.Error("sharing fraction must be clamped to 1")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Simulate(Hierarchy{}, trace(2)); err == nil {
		t.Error("zero cores must fail")
	}
	if _, err := Simulate(hier(128), trace(2)); err == nil {
		t.Error(">64 cores must fail (directory vector)")
	}
	bad := trace(2)
	bad.SharedFrac, bad.WarmFrac, bad.StreamFrac = 0.6, 0.5, 0.2
	if _, err := Simulate(hier(2), bad); err == nil {
		t.Error("fraction sum > 1 must fail")
	}
	if _, err := Simulate(hier(2), TraceConfig{Name: "nothreads"}); err == nil {
		t.Error("zero threads must fail")
	}
	tiny := hier(2)
	tiny.L1Bytes = 64
	tiny.L1Assoc = 4
	if _, err := Simulate(tiny, trace(2)); err == nil {
		t.Error("cache smaller than one set must fail")
	}
	huge := trace(2)
	huge.WarmSetBytes = 8 << 20
	if _, err := Simulate(hier(2), huge); err == nil {
		t.Error("per-thread set larger than the thread stride must fail")
	}
}

func TestQuickConservation(t *testing.T) {
	// Property: for any small configuration, the hit/miss accounting
	// identities hold and rates stay in [0,1].
	f := func(seed int64, sf, wf uint8) bool {
		tc := trace(4)
		tc.Seed = seed
		tc.AccessesPerThread = 5_000
		tc.SharedFrac = float64(sf%40) / 100
		tc.WarmFrac = float64(wf%40) / 100
		r, err := Simulate(hier(4), tc)
		if err != nil {
			return false
		}
		if r.L1Hits+r.L1Misses != r.Accesses || r.L2Hits+r.L2Misses != r.L1Misses {
			return false
		}
		return r.L1MissRate >= 0 && r.L1MissRate <= 1 &&
			r.L2MissRate >= 0 && r.L2MissRate <= 1 &&
			!math.IsNaN(r.ShareRate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
