package chip

import (
	"fmt"
	"math"
	"sort"

	"mcpat/internal/tech"
)

// TimingEntry reports one component's critical-path timing against the
// chip's cycle budget - McPAT's "help the user find the hardware critical
// path" output.
type TimingEntry struct {
	Component string
	Delay     float64 // s, full access/operation latency
	Cycle     float64 // s, minimum pipelined cycle time
	Cycles    float64 // Delay in units of the chip clock period
	Met       bool    // Cycle <= clock period
}

// TimingReport lists every timed component sorted by how many clock
// cycles its full latency spans, flagging any whose minimum cycle time
// cannot keep up with the configured clock.
func (p *Processor) TimingReport() []TimingEntry {
	period := 1 / p.Cfg.ClockHz
	var out []TimingEntry
	add := func(name string, delay, cycle float64) {
		if delay <= 0 {
			return
		}
		if cycle <= 0 {
			cycle = delay
		}
		out = append(out, TimingEntry{
			Component: name,
			Delay:     delay,
			Cycle:     cycle,
			Cycles:    delay / period,
			Met:       cycle <= period*1.0001,
		})
	}

	for _, ct := range p.CoreModel.Timings() {
		add("core."+ct.Name, ct.Delay, ct.Cycle)
	}
	if p.L2 != nil {
		add("L2", p.L2.Data.AccessTime, p.L2.Data.CycleTime)
	}
	if p.L3 != nil {
		add("L3", p.L3.Data.AccessTime, p.L3.Data.CycleTime)
	}
	if p.router != nil {
		add("noc.router", p.router.Delay, p.router.CycleTime())
	}
	if p.link != nil {
		add("noc.link", p.link.Delay, p.link.Delay/math.Max(float64(p.link.Stages), 1))
	}
	if p.clusterBus != nil {
		add("noc.clusterbus", p.clusterBus.Delay, p.clusterBus.Delay)
	}
	if p.mcCtl != nil {
		add("mc.frontend", p.mcCtl.Delay, p.mcCtl.Delay)
	}

	sort.Slice(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	return out
}

// VFPoint is one operating point of a voltage-frequency scan.
type VFPoint struct {
	Vdd     float64 // V
	ClockHz float64
	TDP     float64 // W
	Dynamic float64 // W
	Leakage float64 // W
	// EnergyPerCycle folds TDP over the clock: the DVFS figure of merit.
	EnergyPerCycle float64 // J
}

// VFScan sweeps supply voltage around the configuration's nominal point
// and rebuilds the chip at each (V, f) pair, with frequency following the
// alpha-power law f ~ (V-Vth)^1.3 / V relative to nominal - McPAT's
// voltage-scaling capability for DVFS studies. scales are relative Vdd
// multipliers (nil selects 0.7..1.1 in steps of 0.1).
func VFScan(cfg Config, scales []float64) ([]VFPoint, error) {
	if len(scales) == 0 {
		scales = []float64{0.7, 0.8, 0.9, 1.0, 1.1}
	}
	node, err := tech.ByFeature(cfg.NM)
	if err != nil {
		return nil, err
	}
	dev := node.Device(cfg.Dev, cfg.LongChannel)
	v0 := cfg.Vdd
	if v0 == 0 {
		v0 = dev.Vdd
	}
	f0 := cfg.ClockHz
	vth := dev.Vth

	const alpha = 1.3
	speed := func(v float64) float64 {
		if v <= vth*1.05 {
			return 0
		}
		num := math.Pow(v-vth, alpha) / v
		den := math.Pow(v0-vth, alpha) / v0
		return num / den
	}

	var out []VFPoint
	for _, s := range scales {
		v := v0 * s
		sp := speed(v)
		if sp <= 0 {
			return nil, fmt.Errorf("chip: Vdd %.2f V too close to Vth %.2f V for operation", v, vth)
		}
		c := cfg
		c.Vdd = v
		c.ClockHz = f0 * sp
		proc, err := New(c)
		if err != nil {
			return nil, err
		}
		rep := proc.Report(nil)
		out = append(out, VFPoint{
			Vdd:            v,
			ClockHz:        c.ClockHz,
			TDP:            rep.Peak(),
			Dynamic:        rep.PeakDynamic,
			Leakage:        rep.Leakage(),
			EnergyPerCycle: rep.Peak() / c.ClockHz,
		})
	}
	return out, nil
}
