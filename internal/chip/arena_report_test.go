package chip

import (
	"testing"

	"mcpat/internal/core"
	"mcpat/internal/power"
)

// sameTree compares two report trees field by field with exact float
// equality — the bit-identity contract between the heap Report and the
// arena ReportArena paths.
func sameTree(t *testing.T, path string, a, b *power.Item) {
	t.Helper()
	if a.Name != b.Name {
		t.Fatalf("%s: name %q vs %q", path, a.Name, b.Name)
	}
	if a.Area != b.Area || a.PeakDynamic != b.PeakDynamic ||
		a.RuntimeDynamic != b.RuntimeDynamic || a.SubLeak != b.SubLeak ||
		a.GateLeak != b.GateLeak || a.LeakSaved != b.LeakSaved {
		t.Fatalf("%s/%s: values differ:\n  heap  %+v\n  arena %+v", path, a.Name, *a, *b)
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("%s/%s: child count %d vs %d", path, a.Name, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		sameTree(t, path+"/"+a.Name, a.Children[i], b.Children[i])
	}
}

// runStats is a representative runtime statistics vector so the
// identity check covers the runtime columns (and power gating) too.
func runStats() *Stats {
	return &Stats{
		CoreRun: core.Activity{
			ICacheAccess: 0.8, Decode: 1.2, IntOp: 0.9, FPOp: 0.1,
			DCacheRead: 0.3, DCacheWrite: 0.12, CacheMiss: 0.02,
			BTBAccess: 0.2, PredAccess: 0.2, ITLBAccess: 0.8,
			DTLBAccess: 0.42, LSQAccess: 0.42, LSQSearch: 0.12,
			Bypass: 1.3, PipelineDuty: 0.77,
		},
		L2Reads: 2.1e8, L2Writes: 0.9e8,
		NoCFlits:   3.3e8,
		MCAccesses: 1.2e8,
	}
}

// TestReportArenaBitIdentical pins the acceptance contract of the
// trace fast path: a report scored through an arena is bit-identical
// to the plain heap Report, for TDP-only and runtime-stats passes,
// across fabric kinds, and across arena reuse (Reset between passes).
func TestReportArenaBitIdentical(t *testing.T) {
	for _, kind := range []InterconnectKind{Mesh, Ring, Bus, Crossbar} {
		p, err := New(manycoreCfg(8, kind))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		var ar power.Arena
		for pass := 0; pass < 3; pass++ {
			for _, stats := range []*Stats{nil, runStats()} {
				want := p.Report(stats)
				ar.Reset()
				got, err := p.ReportArena(stats, &ar)
				if err != nil {
					t.Fatalf("%v pass %d: %v", kind, pass, err)
				}
				sameTree(t, kind.String(), want, got)
			}
		}
	}
}

// TestReportArenaNilArena pins the degraded mode: a nil arena behaves
// exactly like ReportE.
func TestReportArenaNilArena(t *testing.T) {
	p, err := New(manycoreCfg(4, Bus))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.ReportArena(runStats(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sameTree(t, "nil-arena", p.Report(runStats()), got)
}

// TestReportArenaSteadyStateAllocs pins the point of the arena: after
// warm-up, a full per-interval Score pass over a synthesized chip
// allocates (almost) nothing. The bound is deliberately loose — a few
// stray allocations are tolerated, a regression to per-Item heap
// allocation (hundreds per pass) is not.
func TestReportArenaSteadyStateAllocs(t *testing.T) {
	p, err := New(manycoreCfg(8, Mesh))
	if err != nil {
		t.Fatal(err)
	}
	stats := runStats()
	var ar power.Arena
	if _, err := p.ReportArena(stats, &ar); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		ar.Reset()
		if _, err := p.ReportArena(stats, &ar); err != nil {
			t.Fatal(err)
		}
	})
	heap := testing.AllocsPerRun(20, func() {
		_ = p.Report(stats)
	})
	if allocs > heap/4 {
		t.Fatalf("arena pass allocates %.0f/op, heap pass %.0f/op — want <= 25%%", allocs, heap)
	}
}
