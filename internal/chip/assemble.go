package chip

import (
	"math"
	"sync"

	"mcpat/internal/cache"
	"mcpat/internal/clock"
	"mcpat/internal/component"
	"mcpat/internal/core"
	"mcpat/internal/guard"
	"mcpat/internal/interconnect"
	"mcpat/internal/logic"
	"mcpat/internal/mc"
	"mcpat/internal/power"
	"mcpat/internal/tech"
)

// Chip assembly as a staged registry fold.
//
// New walks the subsystems table in dependency order: every builder
// synthesizes its subsystem through the memoized component layer
// (core.Synthesize, cache.Synthesize, ...) and registers a part — the
// synthesized component plus the closure mapping chip-level Stats to its
// activity assignment — at a fixed report position. Dependency order and
// report order differ (the fabric and clock size themselves from the
// area accumulated by everything built before them, but report before
// the off-chip interfaces), which is why parts carry positions instead
// of relying on build sequence.
//
// Stages encode the data dependencies: stage-0 subsystems are mutually
// independent (each writes only its own Processor field, its own part
// slot, and returns its area contribution), so the driver may run them
// concurrently on a bounded worker pool. The fabric (stage 1) reads the
// area accumulated by stage 0, and the clock network (stage 2) reads
// the area including the fabric, so those run serially. Area
// contributions are folded into builder.base in registry order
// regardless of completion order, keeping the floating-point
// accumulation — and therefore every downstream number — bit-identical
// to a fully serial build.

// Report positions. The order fixes the chip report's child sequence
// and therefore the floating-point accumulation order of the rollup —
// bit-identical to the pre-registry assembly.
const (
	posCores = iota
	posL2
	posL3
	posFPU
	posFabric
	posMC
	posNIU
	posPCIe
	posClock
	posOther
	numPos
)

// subsystems is the assembly registry. Adding a subsystem to the chip
// means adding a row here (and a position above), not editing New.
// Builders return their component-area contribution; stage >= 1
// builders that need finer-grained accumulation (the fabric adds router,
// link, and cluster-bus areas as separate terms) fold into builder.base
// directly and return 0 — they run serially with exclusive access.
var subsystems = []struct {
	name  string
	stage int // 0: independent; 1: reads stage-0 area; 2: reads stage-1 area
	build func(*builder) (float64, error)
}{
	{"cores", 0, buildCores},
	{"l2", 0, buildL2},
	{"l3", 0, buildL3},
	{"fpu", 0, buildFPU},
	{"mc", 0, buildMC},
	{"niu", 0, buildNIU},
	{"pcie", 0, buildPCIe},
	{"fabric", 1, buildFabric},
	{"clock", 2, buildClock},
	{"other", 0, buildOther},
}

// builder is the transient assembly state threaded through the registry.
// During the concurrent stage each builder touches only its own part
// slot, its own Processor field, and the shared read-only cfg/node, so
// no locking is needed.
type builder struct {
	p    *Processor
	node *tech.Node
	path string  // guard path prefix for error attribution
	base float64 // accumulated component area (m^2), pre-overhead
	part [numPos]part
	has  [numPos]bool
}

func (b *builder) add(pos int, comp component.Component, assign func(*Stats) component.Assignment) {
	b.part[pos] = part{comp: comp, assign: assign}
	b.has[pos] = true
}

// finish compacts the registered parts into report order, sized exactly
// so the report's child fold never regrows the slice.
func (b *builder) finish() {
	n := 0
	for _, ok := range b.has {
		if ok {
			n++
		}
	}
	parts := make([]part, 0, n)
	for i := range b.part {
		if b.has[i] {
			parts = append(parts, b.part[i])
		}
	}
	b.p.parts = parts
	b.p.baseArea = b.base
}

// runSubsystem invokes one registry builder behind its own
// panic-containment boundary (a model fault inside a pooled worker
// goroutine must surface as an error, not crash the process) and keeps
// the in-flight gauge honest. The recovery path matches chip.New's, so
// fault attribution is identical in serial and parallel builds.
func runSubsystem(b *builder, i int) (area float64, err error) {
	defer guard.Recover(&err, b.path)
	synthInflight.Add(1)
	defer synthInflight.Add(-1)
	return subsystems[i].build(b)
}

// assemble drives the registry. workers bounds the stage-0 synthesis
// parallelism; 1 reproduces the fully serial walk (including its
// stop-at-first-error behavior). With several workers every stage-0
// subsystem is built, results are folded and errors selected in
// registry order, so both the report bits and the returned error match
// the serial build; only wall-clock differs.
func assemble(b *builder, workers int) error {
	if workers < 2 {
		for i := range subsystems {
			area, err := runSubsystem(b, i)
			if err != nil {
				return err
			}
			if area != 0 {
				b.base += area
			}
		}
		return nil
	}

	type outcome struct {
		area float64
		err  error
	}
	outs := make([]outcome, len(subsystems))
	stage0 := 0
	for _, sub := range subsystems {
		if sub.stage == 0 {
			stage0++
		}
	}
	if workers > stage0 {
		workers = stage0
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				area, err := runSubsystem(b, i)
				outs[i] = outcome{area: area, err: err}
			}
		}()
	}
	for i, sub := range subsystems {
		if sub.stage == 0 {
			jobs <- i
		}
	}
	close(jobs)
	wg.Wait()

	// Fold stage-0 areas and pick the first error in registry order —
	// the same error a serial walk would have stopped at.
	for i, sub := range subsystems {
		if sub.stage != 0 {
			continue
		}
		if outs[i].err != nil {
			return outs[i].err
		}
		if outs[i].area != 0 {
			b.base += outs[i].area
		}
	}
	// Dependent stages run serially in registry order (fabric before
	// clock) with exclusive access to the accumulated area.
	for i, sub := range subsystems {
		if sub.stage == 0 {
			continue
		}
		area, err := runSubsystem(b, i)
		if err != nil {
			return err
		}
		if area != 0 {
			b.base += area
		}
	}
	return nil
}

// Shared-cache TDP traffic mix: at saturation, roughly 70% of shared
// cache accesses are reads (demand fetches and fills) and 30% writes
// (write-backs and upgrades) — the traffic mix assumed when deriving
// cache TDP from the per-bank duty factor.
const (
	cachePeakReadFrac  = 0.7
	cachePeakWriteFrac = 0.3
)

func buildCores(b *builder) (float64, error) {
	cfg := &b.p.Cfg
	ccfg := cfg.Core
	ccfg.Tech = b.node
	ccfg.Dev = cfg.Dev
	ccfg.LongChannel = cfg.LongChannel
	ccfg.ClockHz = cfg.ClockHz
	if ccfg.Name == "" {
		ccfg.Name = "core"
	}
	cm, err := core.Synthesize(ccfg)
	if err != nil {
		return 0, guard.Wrap(guard.ErrConfig, b.path+".core", err)
	}
	b.p.CoreModel = cm
	if cfg.CorePeak != nil {
		b.p.corePeak = *cfg.CorePeak
	} else {
		b.p.corePeak = core.PeakActivity(ccfg)
	}
	area := cm.Area() * float64(cfg.NumCores)

	peak := b.p.corePeak
	b.add(posCores,
		&coreComponent{name: ccfg.Name, n: float64(cfg.NumCores), core: cm},
		func(s *Stats) component.Assignment {
			return component.Assignment{Vec: core.ActivityPair{Peak: peak, Run: s.CoreRun}}
		})
	return area, nil
}

// chipCacheCfg completes a shared-cache template with the chip-wide
// technology parameters.
func chipCacheCfg(cfg *Config, cc *cache.Config, node *tech.Node) cache.Config {
	c := *cc
	c.Tech = node
	c.Dev = cfg.Dev
	if c.CellDev == 0 && cfg.Dev != tech.HP {
		c.CellDev = cfg.Dev
	}
	c.LongChannel = cfg.LongChannel
	if c.TargetHz == 0 {
		c.TargetHz = cfg.ClockHz
	}
	return c
}

func buildL2(b *builder) (float64, error) {
	cfg := &b.p.Cfg
	if cfg.L2 == nil {
		return 0, nil
	}
	c, err := cache.Synthesize(chipCacheCfg(cfg, cfg.L2, b.node))
	if err != nil {
		return 0, guard.Wrap(guard.ErrConfig, b.path+".l2", err)
	}
	b.p.L2 = c

	// TDP access rate: limited both by the bank count and by the
	// miss/traffic rate the cores can generate (~2 L2 accesses per core
	// per cycle at saturation).
	acc := cfg.L2PeakDuty * float64(minInt(c.Cfg().Banks, 2*cfg.NumCores)) * cfg.ClockHz
	b.add(posL2,
		&cacheComponent{name: cfg.L2.Name, cache: c},
		func(s *Stats) component.Assignment {
			return component.Assignment{
				Peak: power.Activity{Reads: acc * cachePeakReadFrac, Writes: acc * cachePeakWriteFrac},
				Run:  power.Activity{Reads: s.L2Reads, Writes: s.L2Writes},
			}
		})
	return c.Area, nil
}

func buildL3(b *builder) (float64, error) {
	cfg := &b.p.Cfg
	if cfg.L3 == nil {
		return 0, nil
	}
	c, err := cache.Synthesize(chipCacheCfg(cfg, cfg.L3, b.node))
	if err != nil {
		return 0, guard.Wrap(guard.ErrConfig, b.path+".l3", err)
	}
	b.p.L3 = c

	acc := cfg.L3PeakDuty * float64(minInt(c.Cfg().Banks, 2*cfg.NumCores)) * cfg.ClockHz
	b.add(posL3,
		&cacheComponent{name: cfg.L3.Name, cache: c},
		func(s *Stats) component.Assignment {
			return component.Assignment{
				Peak: power.Activity{Reads: acc * cachePeakReadFrac, Writes: acc * cachePeakWriteFrac},
				Run:  power.Activity{Reads: s.L3Reads, Writes: s.L3Writes},
			}
		})
	return c.Area, nil
}

func buildFPU(b *builder) (float64, error) {
	cfg := &b.p.Cfg
	if cfg.SharedFPUs <= 0 {
		return 0, nil
	}
	pat, err := logic.FunctionalUnit(b.node, cfg.Dev, cfg.LongChannel, logic.FPU)
	if err != nil {
		return 0, guard.At(err, b.path)
	}
	b.p.fpu = pat
	n := float64(cfg.SharedFPUs)

	hz := cfg.ClockHz
	b.add(posFPU,
		&fpuComponent{pat: pat, n: n},
		func(s *Stats) component.Assignment {
			return component.Assignment{
				Peak: power.Activity{Reads: 0.5 * n * hz},
				Run:  power.Activity{Reads: s.FPOpsPerSec},
			}
		})
	return pat.Area * n, nil
}

func buildMC(b *builder) (float64, error) {
	cfg := &b.p.Cfg
	if cfg.MC == nil {
		return 0, nil
	}
	m := *cfg.MC
	m.Tech = b.node
	m.Dev = cfg.Dev
	m.LongChannel = cfg.LongChannel
	ctl, err := mc.Synthesize(m)
	if err != nil {
		return 0, guard.Wrap(guard.ErrConfig, b.path+".mc", err)
	}
	b.p.mcCtl = ctl

	peakTxn := 0.0
	if cfg.MC.PeakBandwidth > 0 {
		peakTxn = cfg.MCPeakUtil * cfg.MC.PeakBandwidth / 64
	}
	b.add(posMC,
		&mcComponent{ctl: ctl},
		func(s *Stats) component.Assignment {
			return component.Assignment{
				Peak: power.Activity{Reads: peakTxn * 0.6, Writes: peakTxn * 0.4},
				Run:  power.Activity{Reads: s.MCAccesses * 0.6, Writes: s.MCAccesses * 0.4},
			}
		})
	return ctl.Area, nil
}

func buildNIU(b *builder) (float64, error) {
	cfg := &b.p.Cfg
	if cfg.NIU == nil {
		return 0, nil
	}
	n := *cfg.NIU
	n.Tech = b.node
	n.Dev = cfg.Dev
	n.LongChannel = cfg.LongChannel
	pat, err := mc.SynthesizeNIU(n)
	if err != nil {
		return 0, guard.Wrap(guard.ErrConfig, b.path+".niu", err)
	}
	b.p.niu = &pat

	peakBits := 2 * cfg.NIU.Bandwidth * float64(maxInt(cfg.NIU.Count, 1))
	b.add(posNIU,
		&ioComponent{name: "NIU", pat: pat},
		func(s *Stats) component.Assignment {
			return component.Assignment{
				Peak: power.Activity{Reads: peakBits},
				Run:  power.Activity{Reads: s.NIUBitsPerSec},
			}
		})
	return pat.Area, nil
}

func buildPCIe(b *builder) (float64, error) {
	cfg := &b.p.Cfg
	if cfg.PCIe == nil {
		return 0, nil
	}
	n := *cfg.PCIe
	n.Tech = b.node
	n.Dev = cfg.Dev
	n.LongChannel = cfg.LongChannel
	pat, err := mc.SynthesizePCIe(n)
	if err != nil {
		return 0, guard.Wrap(guard.ErrConfig, b.path+".pcie", err)
	}
	b.p.pcie = &pat

	lanes := float64(maxInt(cfg.PCIe.Lanes, 1))
	gbps := cfg.PCIe.GbpsPerLane
	if gbps <= 0 {
		gbps = 2.5
	}
	peakBits := lanes * gbps * 1e9
	b.add(posPCIe,
		&ioComponent{name: "PCIe", pat: pat},
		func(s *Stats) component.Assignment {
			return component.Assignment{
				Peak: power.Activity{Reads: peakBits},
				Run:  power.Activity{Reads: s.PCIeBitsPerSec},
			}
		})
	return pat.Area, nil
}

func buildFabric(b *builder) (float64, error) {
	cfg := &b.p.Cfg
	p := b.p
	node := b.node
	hz := cfg.ClockHz
	chipSide := math.Sqrt(b.base * 1.1)
	var err error
	switch cfg.NoC.Kind {
	case Mesh:
		mx, my := cfg.NoC.MeshX, cfg.NoC.MeshY
		if mx <= 0 || my <= 0 {
			return 0, guard.Configf(b.path+".noc", "mesh NoC requires MeshX/MeshY")
		}
		// The router's local port fans out to the whole cluster: with
		// clustering the router serves ClusterSize cores plus the L2
		// slice, so give it one extra port beyond the 4 mesh directions.
		ports := 5
		if cfg.NoC.ClusterSize > 1 {
			ports = 6
		}
		if p.router, err = interconnect.SynthesizeRouter(interconnect.RouterConfig{
			Tech: node, Dev: cfg.Dev, LongChannel: cfg.LongChannel,
			FlitBits: cfg.NoC.FlitBits, Ports: ports,
			VirtualChannels: cfg.NoC.VirtualChannels, BuffersPerVC: cfg.NoC.BuffersPerVC,
			Clock: cfg.ClockHz,
		}); err != nil {
			return 0, err
		}
		if p.link, err = interconnect.SynthesizeLink(interconnect.LinkConfig{
			Tech: node, Dev: cfg.Dev, LongChannel: cfg.LongChannel,
			Projection: cfg.WireProjection,
			FlitBits:   cfg.NoC.FlitBits, Length: chipSide / float64(mx), Clock: cfg.ClockHz,
		}); err != nil {
			return 0, err
		}
		if cfg.NoC.ClusterSize > 1 {
			// Intra-cluster bus spanning one mesh tile, connecting the
			// cluster's cores and its L2 slice to the router.
			if p.clusterBus, err = interconnect.SynthesizeBus(interconnect.BusConfig{
				Tech: node, Dev: cfg.Dev, LongChannel: cfg.LongChannel,
				Bits: cfg.NoC.FlitBits, Length: chipSide / float64(mx),
				Agents: cfg.NoC.ClusterSize + 2, Clock: cfg.ClockHz,
			}); err != nil {
				return 0, err
			}
		}
		nr := float64(mx * my)
		nl := float64(linkCount(mx, my))
		clustered := p.clusterBus != nil
		const peakDuty = 0.4 // flits per router per cycle at TDP
		b.add(posFabric,
			&fabricComponent{kind: Mesh, router: p.router, link: p.link,
				clusterBus: p.clusterBus, routers: nr, links: nl},
			func(s *Stats) component.Assignment {
				a := component.Assignment{
					Peak: power.Activity{Reads: peakDuty * hz},
					Run:  power.Activity{Reads: s.NoCFlits},
				}
				if clustered {
					a.AuxPeak = power.Activity{Reads: 0.6 * hz}
					a.AuxRun = power.Activity{Reads: s.ClusterBusTransfers}
				}
				return a
			})
	case Ring:
		stations := cfg.NumCores + banksOf(cfg.L2)
		if p.router, err = interconnect.SynthesizeRouter(interconnect.RouterConfig{
			Tech: node, Dev: cfg.Dev, LongChannel: cfg.LongChannel,
			FlitBits: cfg.NoC.FlitBits, Ports: 3,
			VirtualChannels: cfg.NoC.VirtualChannels, BuffersPerVC: cfg.NoC.BuffersPerVC,
			Clock: cfg.ClockHz,
		}); err != nil {
			return 0, err
		}
		// The ring snakes through the floorplan: total length ~2 chip
		// perimeters, split evenly between stations.
		ringLen := 4 * chipSide
		if p.link, err = interconnect.SynthesizeLink(interconnect.LinkConfig{
			Tech: node, Dev: cfg.Dev, LongChannel: cfg.LongChannel,
			Projection: cfg.WireProjection,
			FlitBits:   cfg.NoC.FlitBits, Length: ringLen / float64(stations), Clock: cfg.ClockHz,
		}); err != nil {
			return 0, err
		}
		// Every flit traverses ~stations/4 hops on average, so per-router
		// forwarding duty runs high at TDP.
		const peakDuty = 0.5
		ns := float64(stations)
		b.add(posFabric,
			&fabricComponent{kind: Ring, router: p.router, link: p.link, routers: ns, links: ns},
			func(s *Stats) component.Assignment {
				return component.Assignment{
					Peak: power.Activity{Reads: peakDuty * hz},
					Run:  power.Activity{Reads: s.NoCFlits},
				}
			})
	case Bus:
		if p.link, err = interconnect.SynthesizeBus(interconnect.BusConfig{
			Tech: node, Dev: cfg.Dev, LongChannel: cfg.LongChannel,
			Bits: cfg.NoC.FlitBits, Length: chipSide,
			Agents: cfg.NumCores + maxInt(1, banksOf(cfg.L2)), Clock: cfg.ClockHz,
		}); err != nil {
			return 0, err
		}
		const peakDuty = 0.8
		b.add(posFabric,
			&fabricComponent{kind: Bus, link: p.link},
			func(s *Stats) component.Assignment {
				return component.Assignment{
					Peak: power.Activity{Reads: peakDuty * hz},
					Run:  power.Activity{Reads: s.NoCFlits},
				}
			})
	case Crossbar:
		if p.link, err = interconnect.SynthesizeCrossbar(interconnect.CrossbarConfig{
			Tech: node, Dev: cfg.Dev, LongChannel: cfg.LongChannel,
			InPorts: cfg.NumCores + 1, OutPorts: maxInt(1, banksOf(cfg.L2)) + 1,
			Bits: cfg.NoC.FlitBits, SpanLength: 0.35 * chipSide,
		}); err != nil {
			return 0, err
		}
		peakDuty := 0.5 * float64(cfg.NumCores) // port pairs busy at TDP
		b.add(posFabric,
			&fabricComponent{kind: Crossbar, link: p.link},
			func(s *Stats) component.Assignment {
				return component.Assignment{
					Peak: power.Activity{Reads: peakDuty * hz},
					Run:  power.Activity{Reads: s.NoCFlits},
				}
			})
	}
	switch {
	case cfg.NoC.Kind == Ring:
		stations := float64(cfg.NumCores + banksOf(cfg.L2))
		b.base += (p.router.Area + p.link.Area) * stations
	case p.router != nil:
		b.base += p.router.Area*float64(cfg.NoC.MeshX*cfg.NoC.MeshY) +
			p.link.Area*float64(linkCount(cfg.NoC.MeshX, cfg.NoC.MeshY))
		if p.clusterBus != nil {
			b.base += p.clusterBus.Area * float64(cfg.NoC.MeshX*cfg.NoC.MeshY)
		}
	case p.link != nil:
		b.base += p.link.Area
	}
	return 0, nil
}

func buildClock(b *builder) (float64, error) {
	cfg := &b.p.Cfg
	sinkMult := cfg.ClockSinkMult
	if sinkMult <= 0 {
		sinkMult = 1
	}
	net, err := clock.Synthesize(clock.Config{
		Tech: b.node, Dev: cfg.Dev, LongChannel: cfg.LongChannel,
		ChipArea: b.base, ClockHz: cfg.ClockHz, GatingFactor: cfg.ClockGating,
		SinkMult: sinkMult,
	})
	if err != nil {
		return 0, err
	}
	b.p.clk = net

	b.add(posClock,
		&clockComponent{net: net, gating: cfg.ClockGating},
		func(s *Stats) component.Assignment {
			var a component.Assignment
			if s.CoreRun.PipelineDuty > 0 || s.L2Reads > 0 || s.NoCFlits > 0 {
				util := s.CoreRun.PipelineDuty
				if util <= 0 {
					util = 0.5
				}
				a.Run.Reads = util
			}
			return a
		})
	return 0, nil
}

func buildOther(b *builder) (float64, error) {
	cfg := &b.p.Cfg
	if cfg.OtherArea <= 0 {
		return 0, nil
	}
	b.add(posOther,
		&staticComponent{item: power.Item{Name: "Other(unmodeled)", Area: cfg.OtherArea}},
		func(*Stats) component.Assignment { return component.Assignment{} })
	return 0, nil
}
