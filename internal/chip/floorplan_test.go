package chip

import (
	"math"
	"strings"
	"testing"
)

// TestFloorplanAreaMatchesReport pins the adapter's conservation law
// across tile counts: the total placed area (tiles plus edge strip)
// must equal the report's die area — which includes the top-level
// overhead — to floating-point tolerance, for 1 through 64 tiles.
func TestFloorplanAreaMatchesReport(t *testing.T) {
	for _, cores := range []int{1, 2, 4, 8, 16, 64} {
		p, err := New(manycoreCfg(cores, Mesh))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		plan, err := p.Floorplan()
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		var placed float64
		for _, it := range plan.Items {
			placed += it.W * it.H
		}
		die := p.Report(nil).Area
		if rel := math.Abs(placed-die) / die; rel > 1e-9 {
			t.Errorf("%d cores: placed %.6e m^2 vs die %.6e m^2 (rel %.2e)",
				cores, placed, die, rel)
		}
		// The grid may carry slack rows; the die outline is never smaller
		// than the placed area.
		if outline := plan.Width * plan.Height; outline < placed*(1-1e-9) {
			t.Errorf("%d cores: outline %.6e smaller than placed %.6e", cores, outline, placed)
		}
	}
}

// TestFloorplanEdgeBlocksOnBoundary: every pad-bound subsystem the chip
// instantiates must land with at least one face on the die boundary, for
// 1 through 64 tiles.
func TestFloorplanEdgeBlocksOnBoundary(t *testing.T) {
	for _, cores := range []int{1, 2, 4, 8, 16, 64} {
		p, err := New(manycoreCfg(cores, Mesh))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		plan, err := p.Floorplan()
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		const eps = 1e-12
		sawEdge := false
		for _, it := range plan.Items {
			if !it.OnEdge {
				continue
			}
			sawEdge = true
			onBoundary := it.X <= eps || it.Y <= eps ||
				math.Abs(it.X+it.W-plan.Width) <= plan.Width*1e-9 ||
				math.Abs(it.Y+it.H-plan.Height) <= plan.Height*1e-9
			if !onBoundary {
				t.Errorf("%d cores: pad-bound block %s at (%.2e,%.2e) not on the die boundary",
					cores, it.Name, it.X, it.Y)
			}
			if !padBoundSubsystems[it.Name] {
				t.Errorf("%d cores: unexpected edge block %s", cores, it.Name)
			}
		}
		if !sawEdge {
			t.Errorf("%d cores: the memory controller must be placed on the edge", cores)
		}
		// Tiles replicate once per core.
		tiles := 0
		for _, it := range plan.Items {
			if strings.HasPrefix(it.Name, "tile[") {
				tiles++
			}
		}
		if tiles != cores {
			t.Errorf("%d cores: %d tiles placed", cores, tiles)
		}
	}
}
