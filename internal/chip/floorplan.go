package chip

import (
	"mcpat/internal/floorplan"
	"mcpat/internal/power"
)

// padBoundSubsystems names the report children whose silicon must sit on
// the die boundary: their pads (DRAM PHY, SerDes, PCIe lanes) connect to
// the package, so the floorplanner places them in the edge strip.
var padBoundSubsystems = map[string]bool{
	"MemoryController": true,
	"NIU":              true,
	"PCIe":             true,
}

// Floorplan lays the synthesized chip out on the die: the replicated
// per-core slice of all core-side area (cores, shared cache banks,
// fabric, clock, shared FPUs, unmodeled blocks) becomes the tile of a
// near-square grid, and the pad-bound subsystems line the bottom edge.
// Every block's area carries its share of the top-level overhead (the
// routing/power-grid/pad factor the report applies to the die), so the
// total placed area equals the report's die area exactly.
func (p *Processor) Floorplan() (*floorplan.Plan, error) {
	rep, err := p.ReportE(nil)
	if err != nil {
		return nil, err
	}
	return floorplanOf(rep, p.Cfg.NumCores)
}

// floorplanOf derives the plan from an existing TDP report, so callers
// that already hold one (the trace engine's thermal setup) avoid a
// second report pass.
func floorplanOf(rep *power.Item, numCores int) (*floorplan.Plan, error) {
	var tileArea float64
	var periph []floorplan.Block
	for _, c := range rep.Children {
		// The root's Area includes topLevelOverhead but the children's do
		// not; spread the overhead uniformly so placed area sums to the
		// die area the report states.
		a := c.Area * topLevelOverhead
		if padBoundSubsystems[c.Name] {
			periph = append(periph, floorplan.Block{Name: c.Name, Area: a, OnEdge: true})
			continue
		}
		tileArea += a
	}
	tile := floorplan.Block{Name: "tile", Area: tileArea / float64(numCores)}
	return floorplan.Grid(tile, numCores, periph, 1)
}
