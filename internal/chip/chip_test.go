package chip

import (
	"strings"
	"testing"

	"mcpat/internal/cache"
	"mcpat/internal/core"
	"mcpat/internal/mc"
	"mcpat/internal/tech"
)

func manycoreCfg(cores int, kind InterconnectKind) Config {
	mx, my := 1, 1
	for mx*my < cores {
		if mx < my {
			mx *= 2
		} else {
			my *= 2
		}
	}
	return Config{
		Name:     "cmp",
		NM:       45,
		ClockHz:  2e9,
		NumCores: cores,
		Core: core.Config{
			Threads: 2,
			ICache:  core.CacheParams{Bytes: 16 * 1024},
			DCache:  core.CacheParams{Bytes: 16 * 1024},
			IntALUs: 1, MulDivs: 1, FPUs: 1,
		},
		L2: &cache.Config{Name: "L2", Bytes: cores * 512 * 1024, Banks: cores, Assoc: 8},
		NoC: NoCSpec{
			Kind: kind, FlitBits: 128, MeshX: mx, MeshY: my,
			VirtualChannels: 2, BuffersPerVC: 4,
		},
		MC: &mc.Config{Channels: 2, PeakBandwidth: 25e9, LVDS: true},
	}
}

func TestChipBuildAndReport(t *testing.T) {
	p, err := New(manycoreCfg(8, Mesh))
	if err != nil {
		t.Fatal(err)
	}
	rep := p.Report(nil)
	for _, name := range []string{"Cores", "L2", "NoC", "MemoryController", "ClockNetwork"} {
		if rep.Find(name) == nil {
			t.Errorf("report missing %s", name)
		}
	}
	if rep.Peak() <= 0 || rep.Area <= 0 {
		t.Fatal("chip totals must be positive")
	}
	if p.TDP() != rep.Peak() {
		t.Error("TDP() must match the report total")
	}
	out := rep.Format(1)
	if !strings.Contains(out, "Cores") || !strings.Contains(out, "mm^2") {
		t.Error("formatted report incomplete")
	}
}

func TestInterconnectKinds(t *testing.T) {
	for _, kind := range []InterconnectKind{NoneIC, Bus, Crossbar, Mesh} {
		p, err := New(manycoreCfg(4, kind))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		rep := p.Report(nil)
		switch kind {
		case NoneIC:
			if rep.Find("NoC") != nil || rep.Find("Bus") != nil || rep.Find("Crossbar") != nil {
				t.Errorf("%v: unexpected fabric in report", kind)
			}
		case Bus:
			if rep.Find("Bus") == nil {
				t.Errorf("%v: missing fabric", kind)
			}
		case Crossbar:
			if rep.Find("Crossbar") == nil {
				t.Errorf("%v: missing fabric", kind)
			}
		case Mesh:
			if rep.Find("NoC") == nil {
				t.Errorf("%v: missing fabric", kind)
			}
		}
	}
}

func TestMeshRequiresTopology(t *testing.T) {
	cfg := manycoreCfg(8, Mesh)
	cfg.NoC.MeshX, cfg.NoC.MeshY = 0, 0
	if _, err := New(cfg); err == nil {
		t.Error("mesh without topology must fail")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero cores must fail")
	}
	if _, err := New(Config{NumCores: 1}); err == nil {
		t.Error("zero clock must fail")
	}
	if _, err := New(Config{NumCores: 1, ClockHz: 1e9, NM: 5}); err == nil {
		t.Error("unsupported node must fail")
	}
}

func TestVddOverrideChangesPower(t *testing.T) {
	lo := manycoreCfg(4, NoneIC)
	lo.Vdd = 0.9
	hi := manycoreCfg(4, NoneIC)
	hi.Vdd = 1.1
	pl, err := New(lo)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := New(hi)
	if err != nil {
		t.Fatal(err)
	}
	if ph.TDP() <= pl.TDP() {
		t.Errorf("higher Vdd must raise TDP: %.1f <= %.1f", ph.TDP(), pl.TDP())
	}
}

func TestTemperatureRaisesLeakage(t *testing.T) {
	cold := manycoreCfg(4, NoneIC)
	cold.Temperature = 320
	hot := manycoreCfg(4, NoneIC)
	hot.Temperature = 380
	pc, _ := New(cold)
	ph, _ := New(hot)
	if ph.Leakage() <= pc.Leakage() {
		t.Errorf("380K leakage (%.1f W) must exceed 320K (%.1f W)", ph.Leakage(), pc.Leakage())
	}
}

func TestLongChannelCutsLeakage(t *testing.T) {
	std := manycoreCfg(4, NoneIC)
	lc := manycoreCfg(4, NoneIC)
	lc.LongChannel = true
	ps, _ := New(std)
	pl, _ := New(lc)
	if pl.Leakage() >= ps.Leakage() {
		t.Errorf("long-channel leakage (%.1f W) must be below standard (%.1f W)", pl.Leakage(), ps.Leakage())
	}
}

func TestDeviceTypeTradeoff(t *testing.T) {
	hp := manycoreCfg(4, NoneIC)
	lstp := manycoreCfg(4, NoneIC)
	lstp.Dev = tech.LSTP
	ph, _ := New(hp)
	pl, err := New(lstp)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Leakage() >= ph.Leakage() {
		t.Error("LSTP chip must leak less than HP chip")
	}
}

func TestMeshScalingGrowsNoCShare(t *testing.T) {
	share := func(cores int) float64 {
		p, err := New(manycoreCfg(cores, Mesh))
		if err != nil {
			t.Fatal(err)
		}
		rep := p.Report(nil)
		return rep.Find("NoC").Peak() / rep.Peak()
	}
	s4, s16 := share(4), share(16)
	if s16 <= s4 {
		t.Errorf("NoC power share must grow with core count: %.3f <= %.3f", s16, s4)
	}
}

func TestRuntimeStats(t *testing.T) {
	p, err := New(manycoreCfg(8, Mesh))
	if err != nil {
		t.Fatal(err)
	}
	stats := &Stats{
		CoreRun:    p.CorePeakActivity().Scale(0.6),
		L2Reads:    2e9,
		L2Writes:   1e9,
		NoCFlits:   1e9,
		MCAccesses: 2e8,
	}
	rep := p.Report(stats)
	if rep.RuntimeDynamic <= 0 || rep.RuntimeDynamic >= rep.PeakDynamic {
		t.Errorf("runtime dynamic %.2f W out of range (peak %.2f W)", rep.RuntimeDynamic, rep.PeakDynamic)
	}
}

func TestRingInterconnect(t *testing.T) {
	p, err := New(manycoreCfg(8, Ring))
	if err != nil {
		t.Fatal(err)
	}
	rep := p.Report(nil)
	ring := rep.Find("Ring")
	if ring == nil {
		t.Fatal("missing Ring in report")
	}
	if ring.Find("routers") == nil || ring.Find("links") == nil {
		t.Error("ring must break down into routers and links")
	}
	if ring.Peak() <= 0 || ring.Area <= 0 {
		t.Error("ring must carry power and area")
	}
	// A ring's 3-port routers are cheaper than mesh 5-port routers, but
	// it has more stations; both fabrics must be same order of magnitude.
	mesh, _ := New(manycoreCfg(8, Mesh))
	meshNoC := mesh.Report(nil).Find("NoC")
	ratio := ring.Peak() / meshNoC.Peak()
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("ring/mesh power ratio %.2f implausible", ratio)
	}
}

func TestClusteredMeshFabric(t *testing.T) {
	cfg := manycoreCfg(16, Mesh)
	cfg.NoC.ClusterSize = 4
	cfg.NoC.MeshX, cfg.NoC.MeshY = 2, 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := p.Report(nil)
	noc := rep.Find("NoC")
	if noc.Find("clusterbus") == nil {
		t.Fatal("clustered mesh must include cluster buses")
	}
	// Flat mesh of 16 routers must burn more fabric power than 4 routers
	// + 4 buses.
	flat := manycoreCfg(16, Mesh)
	pf, _ := New(flat)
	if noc.Peak() >= pf.Report(nil).Find("NoC").Peak() {
		t.Error("clustering must reduce fabric power")
	}
}

func TestTimingReport(t *testing.T) {
	p, err := New(manycoreCfg(4, Mesh))
	if err != nil {
		t.Fatal(err)
	}
	entries := p.TimingReport()
	if len(entries) < 8 {
		t.Fatalf("timing report too short: %d entries", len(entries))
	}
	// Sorted by descending cycle count.
	for i := 1; i < len(entries); i++ {
		if entries[i].Cycles > entries[i-1].Cycles+1e-12 {
			t.Fatal("timing report must be sorted by cycles, descending")
		}
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Component] = true
		if e.Delay <= 0 || e.Cycle <= 0 {
			t.Errorf("%s: non-positive timing", e.Component)
		}
	}
	for _, want := range []string{"L2", "core.icache", "core.rf.int", "noc.router"} {
		if !names[want] {
			t.Errorf("timing report missing %s", want)
		}
	}
}

func TestVFScan(t *testing.T) {
	cfg := manycoreCfg(4, NoneIC)
	pts, err := VFScan(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("expected 5 default points, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Vdd <= pts[i-1].Vdd {
			t.Error("Vdd must increase along the scan")
		}
		if pts[i].ClockHz <= pts[i-1].ClockHz {
			t.Error("frequency must increase with voltage")
		}
		if pts[i].TDP <= pts[i-1].TDP {
			t.Error("TDP must increase with voltage")
		}
	}
	// Energy per cycle improves at lower voltage (the DVFS rationale).
	if pts[0].EnergyPerCycle >= pts[len(pts)-1].EnergyPerCycle {
		t.Error("low-voltage points should win energy per cycle")
	}
	// Scanning below Vth must fail cleanly.
	if _, err := VFScan(cfg, []float64{0.05}); err == nil {
		t.Error("near-Vth scan must fail")
	}
}

func TestEDRAMChipIntegration(t *testing.T) {
	cfg := manycoreCfg(4, NoneIC)
	cfg.L2.EDRAM = true
	pe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sr := manycoreCfg(4, NoneIC)
	ps, _ := New(sr)
	if pe.Report(nil).Find("L2").Area >= ps.Report(nil).Find("L2").Area {
		t.Error("eDRAM L2 must be smaller than SRAM L2")
	}
}

// TestPeakDutyDefaults pins the documented TDP duty-cycle defaults. The
// validation descriptors are calibrated against these exact values: the
// L2 duty default is 1.0 (a doc comment once claimed 0.8 — an explicit
// 0.8 produces a measurably different report, as asserted below), and
// the L3 default is 0.4.
func TestPeakDutyDefaults(t *testing.T) {
	base := manycoreCfg(4, Mesh)
	p, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cfg.L2PeakDuty != 1.0 {
		t.Errorf("L2PeakDuty default = %v, want 1.0", p.Cfg.L2PeakDuty)
	}
	if p.Cfg.L3PeakDuty != 0.4 {
		t.Errorf("L3PeakDuty default = %v, want 0.4", p.Cfg.L3PeakDuty)
	}
	if p.Cfg.MCPeakUtil != 0.8 {
		t.Errorf("MCPeakUtil default = %v, want 0.8", p.Cfg.MCPeakUtil)
	}
	if p.Cfg.ClockGating != 0.75 {
		t.Errorf("ClockGating default = %v, want 0.75", p.Cfg.ClockGating)
	}

	// The default must be equivalent to an explicit 1.0 ...
	explicit := manycoreCfg(4, Mesh)
	explicit.L2PeakDuty = 1.0
	pe, err := New(explicit)
	if err != nil {
		t.Fatal(err)
	}
	defL2 := p.Report(nil).Find("L2").PeakDynamic
	if got := pe.Report(nil).Find("L2").PeakDynamic; got != defL2 {
		t.Errorf("explicit L2PeakDuty=1.0 gives L2 peak %v, default gives %v", got, defL2)
	}

	// ... and distinguishable from the historically mis-documented 0.8.
	low := manycoreCfg(4, Mesh)
	low.L2PeakDuty = 0.8
	pl, err := New(low)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Report(nil).Find("L2").PeakDynamic; got >= defL2 {
		t.Errorf("L2PeakDuty=0.8 L2 peak %v should be below the 1.0 default's %v", got, defL2)
	}
}
