// Package chip assembles McPAT's full multicore processor model: cores,
// shared cache levels, the on-chip interconnect (shared bus, flat
// crossbar, or 2D-mesh NoC), memory controllers, I/O controllers (NIU,
// PCIe), and the chip-wide clock network, producing hierarchical
// power/area reports for both TDP (peak) and runtime conditions.
package chip

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"mcpat/internal/cache"
	"mcpat/internal/clock"
	"mcpat/internal/core"
	"mcpat/internal/guard"
	"mcpat/internal/interconnect"
	"mcpat/internal/mc"
	"mcpat/internal/power"
	"mcpat/internal/tech"
)

// InterconnectKind selects the chip-level fabric.
type InterconnectKind int

const (
	// NoneIC means cores connect to the shared cache directly (single
	// core or private hierarchies).
	NoneIC InterconnectKind = iota
	// Bus is a shared multi-drop bus.
	Bus
	// Crossbar is a flat crossbar (Niagara PCX/CPX style).
	Crossbar
	// Mesh is a 2D-mesh NoC with one router per core/tile.
	Mesh
	// Ring is a unidirectional ring of 3-port routers, one station per
	// core plus one per L2 bank.
	Ring
)

func (k InterconnectKind) String() string {
	switch k {
	case NoneIC:
		return "none"
	case Bus:
		return "bus"
	case Crossbar:
		return "crossbar"
	case Mesh:
		return "mesh"
	case Ring:
		return "ring"
	}
	return fmt.Sprintf("InterconnectKind(%d)", int(k))
}

// NoCSpec configures the chip fabric.
type NoCSpec struct {
	Kind            InterconnectKind
	FlitBits        int // link/bus width
	MeshX, MeshY    int // mesh topology (Kind == Mesh)
	VirtualChannels int
	BuffersPerVC    int

	// ClusterSize groups cores into clusters of this many cores; each
	// cluster shares one local bus (to its L2 slice) and one mesh
	// router, so MeshX*MeshY should equal NumCores/ClusterSize. 0 or 1
	// means one router per core with no local bus - the hierarchical
	// interconnect organization of the manycore case study.
	ClusterSize int
}

// Config describes a full processor chip.
type Config struct {
	Name string

	NM          float64 // feature size in nanometers
	Dev         tech.DeviceType
	LongChannel bool
	// Temperature is the junction temperature reports are scored at (K);
	// 0 keeps the node default (360 K). It is a Score-time input: it
	// retunes leakage on the finished report and never participates in
	// synthesis, so chips differing only in temperature share every
	// synthesized part (see Processor.SetScoreTemperature).
	Temperature float64
	ClockHz     float64
	Vdd         float64 // V; 0 keeps the roadmap voltage of the device class

	// WireProjection selects the interconnect scaling assumption for the
	// chip-level fabric links (aggressive by default, the McPAT input).
	WireProjection tech.Projection

	NumCores int
	Core     core.Config // template; Tech/Dev/Clock are filled in

	// CorePeak optionally overrides the TDP activity vector used for the
	// cores (validation descriptors use this to reproduce vendor TDP
	// conditions).
	CorePeak *core.Activity

	L2 *cache.Config // shared L2 (nil = none); Tech/TargetHz filled in
	L3 *cache.Config

	// L2PeakDuty is the TDP access rate per L2 bank in accesses/cycle
	// (default 1.0); likewise for L3 (default 0.4). The validation
	// descriptors are calibrated against these defaults (see the
	// regression test pinning them).
	L2PeakDuty float64
	L3PeakDuty float64

	// SharedFPUs adds chip-level floating point units outside the cores
	// (Niagara's single shared FPU).
	SharedFPUs int

	NoC NoCSpec

	MC   *mc.Config
	NIU  *mc.NIUConfig
	PCIe *mc.PCIeConfig

	// MCPeakUtil is the TDP utilization of the memory interface
	// bandwidth (default 0.8); I/O controllers run at full rate at TDP.
	MCPeakUtil float64

	// ClockGating is the fraction of the clock network active at TDP
	// (default 0.75).
	ClockGating float64

	// ClockSinkMult scales the clock-load density estimate (default 1).
	// Grid-clocked designs (Alpha EV6/EV7 class) run 2-3x the H-tree
	// baseline.
	ClockSinkMult float64

	// OtherArea accounts for known-but-unmodeled blocks (test logic,
	// fuses, analog, I/O pad ring beyond the modeled controllers), in
	// m^2. Validation descriptors set it from die photos; it carries no
	// power.
	OtherArea float64
}

// Stats carries runtime statistics from a performance simulator.
type Stats struct {
	// CoreRun is the average per-core activity vector (events/cycle).
	CoreRun core.Activity

	// Shared cache accesses per second, chip-wide.
	L2Reads, L2Writes float64
	L3Reads, L3Writes float64

	// NoCFlits is flits/s per router for meshes, or transfers/s for
	// bus/crossbar fabrics.
	NoCFlits float64

	// ClusterBusTransfers is transfers/s per intra-cluster bus (clustered
	// mesh fabrics only).
	ClusterBusTransfers float64

	// MCAccesses is 64-byte memory transactions per second.
	MCAccesses float64

	NIUBitsPerSec  float64
	PCIeBitsPerSec float64

	// FPOpsPerSec drives the shared FPUs.
	FPOpsPerSec float64
}

// Processor is a synthesized chip.
type Processor struct {
	Cfg  Config
	Tech *tech.Node

	CoreModel *core.Core
	L2, L3    *cache.Cache

	router     *interconnect.Router
	link       *interconnect.Link // mesh link, bus, or crossbar
	clusterBus *interconnect.Link // intra-cluster bus (clustered meshes)
	fpu        power.PAT
	mcCtl      *mc.Controller
	niu        *power.PAT
	pcie       *power.PAT
	clk        *clock.Network

	corePeak core.Activity
	baseArea float64 // component area before top-level overheads

	// parts is the scored component list in report order: each entry
	// pairs a synthesized (possibly shared, memoized) component with the
	// closure deriving its activity assignment from runtime Stats.
	parts []part

	// Score-time operating point. Synthesis is temperature-invariant
	// (parts are solved at the node's reference temperature and the tech
	// fingerprint excludes temperature), so the operating temperature and
	// any DVFS derating are applied as cheap multiplicative retunes over
	// the scored report instead of participating in synthesis. Mutating
	// these between Score passes is how the thermal/DVFS feedback loop
	// runs a whole transient trace against one synthesized chip.
	scoreTempK float64 // junction temperature reports are scored at (K)
	leakScale  float64 // subthreshold-leakage multiplier vs the reference temperature
	freqFrac   float64 // score-time frequency as a fraction of Cfg.ClockHz
	vddFrac    float64 // score-time supply as a fraction of the synthesis Vdd
}

// Process-wide synthesis-parallelism knobs. The worker setting is the
// default stage-0 fan-out of every New call (0 = GOMAXPROCS at build
// time); the in-flight gauge counts subsystem builders currently
// executing, across all concurrent New calls.
var (
	defaultSynthWorkers atomic.Int32
	synthInflight       atomic.Int64
)

// SetSynthWorkers sets the process-wide default for the number of
// concurrent subsystem builders per chip assembly and returns the
// previous raw setting. 0 (the initial value) selects
// runtime.GOMAXPROCS(0) at build time; 1 forces fully serial assembly.
func SetSynthWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultSynthWorkers.Swap(int32(n)))
}

// SynthWorkers reports the resolved process-wide default parallelism a
// New call will use right now.
func SynthWorkers() int {
	if n := int(defaultSynthWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SynthInflight reports how many subsystem builders are executing at
// this instant (an observability gauge, not a limit).
func SynthInflight() int64 { return synthInflight.Load() }

// New synthesizes the processor by folding over the subsystem registry
// (see assemble.go); subsystem synthesis is memoized process-wide, so a
// chip that shares a subsystem configuration with a previously built one
// reuses the synthesized model. Independent subsystems build
// concurrently on a bounded worker pool sized by SetSynthWorkers;
// results fold in pinned registry order, so reports are bit-identical
// to a serial build. New is a panic-containment boundary: a fault
// anywhere in the model internals surfaces as an ErrInternal, and
// malformed configurations surface as ErrConfig - never as a crash of
// the host process.
func New(cfg Config) (*Processor, error) {
	return NewWithWorkers(cfg, 0)
}

// NewWithWorkers is New with an explicit per-call synthesis parallelism:
// 1 forces serial assembly, 0 selects the process default (see
// SetSynthWorkers). Serial and parallel builds produce bit-identical
// processors; only wall-clock differs.
func NewWithWorkers(cfg Config, workers int) (p *Processor, err error) {
	path := cfg.Name
	if path == "" {
		path = "chip"
	}
	defer guard.Recover(&err, path)
	if cfg.NumCores <= 0 {
		return nil, guard.Configf(path, "NumCores must be positive")
	}
	if cfg.ClockHz <= 0 {
		return nil, guard.Configf(path, "clock frequency required")
	}
	node, err := tech.ByFeature(cfg.NM)
	if err != nil {
		return nil, guard.At(err, path)
	}
	// Temperature deliberately does NOT touch the node: synthesis runs at
	// the reference temperature so synthesized parts are shared across
	// operating temperatures, and the configured temperature becomes the
	// initial Score-time retune (see SetScoreTemperature).
	if cfg.Vdd > 0 {
		node.OverrideVdd(cfg.Dev, cfg.Vdd)
	}
	if cfg.L2PeakDuty <= 0 {
		cfg.L2PeakDuty = 1.0
	}
	if cfg.L3PeakDuty <= 0 {
		cfg.L3PeakDuty = 0.4
	}
	if cfg.MCPeakUtil <= 0 {
		cfg.MCPeakUtil = 0.8
	}
	if cfg.ClockGating <= 0 {
		cfg.ClockGating = 0.75
	}

	if workers <= 0 {
		workers = SynthWorkers()
	}
	p = &Processor{Cfg: cfg, Tech: node, freqFrac: 1, vddFrac: 1}
	p.scoreTempK = node.Temperature
	p.leakScale = 1
	if cfg.Temperature > 0 {
		p.scoreTempK = cfg.Temperature
		p.leakScale = node.LeakScaleAt(cfg.Temperature)
	}
	b := &builder{p: p, node: node, path: path}
	if err := assemble(b, workers); err != nil {
		return nil, err
	}
	b.finish()
	return p, nil
}

func banksOf(c *cache.Config) int {
	if c == nil {
		return 0
	}
	if c.Banks <= 0 {
		return 1
	}
	return c.Banks
}

// linkCount returns the number of bidirectional links in an x-by-y mesh.
func linkCount(x, y int) int {
	if x <= 0 || y <= 0 {
		return 0
	}
	return x*(y-1) + y*(x-1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
