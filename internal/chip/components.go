package chip

import (
	"mcpat/internal/cache"
	"mcpat/internal/clock"
	"mcpat/internal/component"
	"mcpat/internal/core"
	"mcpat/internal/interconnect"
	"mcpat/internal/mc"
	"mcpat/internal/power"
)

// This file adapts the synthesized subsystem models onto the
// component.Component contract. Each adapter's Score is pure: it reads
// the shared (possibly memoized) model and the activity assignment,
// allocates fresh Items, and never mutates either — so one synthesized
// subsystem can back any number of chips concurrently. Where a model's
// report roots itself in the configuration Name it was first synthesized
// under, the adapter rebinds the root to this chip's name (child names
// are constants, so only the root needs rebinding).

// part pairs one synthesized component with the closure that derives its
// activity assignment from chip-level runtime statistics. buildReport is
// a fold over the parts list.
type part struct {
	comp   component.Component
	assign func(stats *Stats) component.Assignment
}

// coreComponent scores the replicated processor cores. Assignment.Vec
// carries a core.ActivityPair.
type coreComponent struct {
	name string
	n    float64 // replication count across the chip
	core *core.Core
}

func (c *coreComponent) Score(a component.Assignment) *power.Item {
	pair := a.Vec.(core.ActivityPair)
	rep := c.core.ReportIn(a.Arena, pair.Peak, pair.Run)
	rep.Name = c.name
	group := a.Arena.NewItemN("Cores", 1)
	group.Add(rep)
	group.Rollup()
	group.Scale(c.n)
	return group
}

// cacheComponent scores one shared cache level: Peak/Run carry the
// read/write access rates.
type cacheComponent struct {
	name  string
	cache *cache.Cache
}

func (c *cacheComponent) Score(a component.Assignment) *power.Item {
	item := c.cache.ReportIn(a.Arena, a.Peak.Reads, a.Peak.Writes, a.Run.Reads, a.Run.Writes)
	item.Name = c.name
	return item
}

// fpuComponent scores the chip-level shared floating-point units:
// Peak/Run.Reads carry the FP operation rates.
type fpuComponent struct {
	pat power.PAT
	n   float64
}

func (c *fpuComponent) Score(a component.Assignment) *power.Item {
	fpu := a.Arena.FromPAT("SharedFPU", c.pat, a.Peak, a.Run)
	fpu.Area = c.pat.Area * c.n
	fpu.SubLeak = c.pat.Static.Sub * c.n
	fpu.GateLeak = c.pat.Static.Gate * c.n
	return fpu
}

// fabricComponent scores the chip fabric. Peak/Run.Reads carry the
// flit/transfer rates; AuxPeak/AuxRun carry the intra-cluster bus rates
// of a clustered mesh.
type fabricComponent struct {
	kind       InterconnectKind
	router     *interconnect.Router
	link       *interconnect.Link // mesh link, ring link, bus, or crossbar
	clusterBus *interconnect.Link
	routers    float64 // router replication (mesh tiles or ring stations)
	links      float64 // link replication
}

func (f *fabricComponent) Score(a component.Assignment) *power.Item {
	switch f.kind {
	case Mesh:
		ic := a.Arena.NewItemN("NoC", 3)
		routers := a.Arena.FromPAT("routers", f.router.PAT, a.Peak, a.Run)
		routers.Scale(f.routers)
		links := a.Arena.FromPAT("links", f.link.PAT, a.Peak, a.Run)
		links.Scale(f.links)
		ic.Add(routers, links)
		if f.clusterBus != nil {
			buses := a.Arena.FromPAT("clusterbus", f.clusterBus.PAT, a.AuxPeak, a.AuxRun)
			buses.Scale(f.routers)
			ic.Add(buses)
		}
		return ic
	case Ring:
		ic := a.Arena.NewItemN("Ring", 2)
		routers := a.Arena.FromPAT("routers", f.router.PAT, a.Peak, a.Run)
		routers.Scale(f.routers)
		links := a.Arena.FromPAT("links", f.link.PAT, a.Peak, a.Run)
		links.Scale(f.links)
		ic.Add(routers, links)
		return ic
	case Bus:
		ic := a.Arena.NewItemN("Bus", 1)
		ic.Add(a.Arena.FromPAT("bus", f.link.PAT, a.Peak, a.Run))
		return ic
	case Crossbar:
		ic := a.Arena.NewItemN("Crossbar", 1)
		ic.Add(a.Arena.FromPAT("crossbar", f.link.PAT, a.Peak, a.Run))
		return ic
	}
	return nil
}

// mcComponent scores the memory controller: Peak/Run carry the
// read/write transaction rates, applied uniformly to the front end,
// transaction engine, and PHY.
type mcComponent struct {
	ctl *mc.Controller
}

func (c *mcComponent) Score(a component.Assignment) *power.Item {
	rep := a.Arena.NewItemN("MemoryController", 3)
	rep.Add(
		a.Arena.FromPAT("frontend", c.ctl.FrontEnd, a.Peak, a.Run),
		a.Arena.FromPAT("backend", c.ctl.Backend, a.Peak, a.Run),
		a.Arena.FromPAT("phy", c.ctl.PHY, a.Peak, a.Run),
	)
	return rep
}

// ioComponent scores a flat I/O controller (NIU, PCIe): Peak/Run.Reads
// carry the bit rates.
type ioComponent struct {
	name string
	pat  power.PAT
}

func (c *ioComponent) Score(a component.Assignment) *power.Item {
	return a.Arena.FromPAT(c.name, c.pat, a.Peak, a.Run)
}

// clockComponent scores the clock distribution network. Run.Reads
// carries the runtime utilization (pipeline duty, floored at 0.5 by the
// assignment closure), or zero when no runtime statistics exist, in
// which case only the TDP column is populated.
type clockComponent struct {
	net    *clock.Network
	gating float64
}

func (c *clockComponent) Score(a component.Assignment) *power.Item {
	clk := a.Arena.NewItem("ClockNetwork")
	clk.Area = c.net.Area
	clk.PeakDynamic = c.net.PowerPeak
	clk.SubLeak = c.net.Static.Sub
	clk.GateLeak = c.net.Static.Gate
	if util := a.Run.Reads; util > 0 {
		// Runtime clock power: same network, gated down with activity.
		clk.RuntimeDynamic = c.net.PowerMax * (0.35 + 0.65*util) * c.gating
	}
	return clk
}

// staticComponent scores a fixed report leaf (the unmodeled-area entry).
// It copies the template so the parent rollup never mutates shared
// state.
type staticComponent struct {
	item power.Item
}

func (c *staticComponent) Score(a component.Assignment) *power.Item {
	it := a.Arena.NewItem(c.item.Name)
	*it = c.item
	return it
}
