package chip

import (
	"mcpat/internal/core"
	"mcpat/internal/guard"
	"mcpat/internal/power"
)

// topLevelOverhead multiplies summed component area for top-level routing
// channels, power grid, and the I/O pad ring.
const topLevelOverhead = 1.12

// Report builds the hierarchical power/area report of the whole chip.
// stats may be nil, in which case only TDP columns are populated.
//
// Report never panics: a fault inside the models is contained and an
// empty report (zero power and area) named after the chip is returned so
// a host process survives. Callers that need the fault itself, or the
// output sanity diagnostics, should use ReportE or Check.
func (p *Processor) Report(stats *Stats) *power.Item {
	rep, err := p.ReportE(stats)
	if err != nil {
		return power.NewItem(p.Cfg.Name)
	}
	return rep
}

// ReportE is Report with the panic-containment boundary exposed: a fault
// inside the models surfaces as an ErrInternal instead of a crash or a
// silently empty report.
func (p *Processor) ReportE(stats *Stats) (rep *power.Item, err error) {
	path := p.Cfg.Name
	if path == "" {
		path = "chip"
	}
	defer guard.Recover(&err, path+".Report")
	return p.buildReport(stats), nil
}

// Check synthesizes the report and runs the output sanity guard over it:
// every power/area value finite and non-negative, component trees summing
// to their parents, runtime power within a sane multiple of TDP. It
// returns the report together with the typed diagnostic list; err is
// non-nil only when the report could not be built at all.
func (p *Processor) Check(stats *Stats) (*power.Item, guard.Diagnostics, error) {
	rep, err := p.ReportE(stats)
	if err != nil {
		return nil, nil, err
	}
	return rep, guard.CheckReport(rep, nil), nil
}

func (p *Processor) buildReport(stats *Stats) *power.Item {
	cfg := &p.Cfg
	hz := cfg.ClockHz
	if stats == nil {
		stats = &Stats{}
	}

	item := power.NewItemN(cfg.Name, 10)

	// ---- Cores ---------------------------------------------------------
	coreRep := p.CoreModel.Report(p.corePeak, stats.CoreRun)
	cores := power.NewItemN("Cores", 1)
	cores.Add(coreRep)
	cores.Rollup()
	cores.Scale(float64(cfg.NumCores))
	cores.Name = "Cores"
	item.Add(cores)

	// ---- Shared caches ---------------------------------------------------
	if p.L2 != nil {
		// TDP access rate: limited both by the bank count and by the
		// miss/traffic rate the cores can generate (~2 L2 accesses per
		// core per cycle at saturation).
		acc := cfg.L2PeakDuty * float64(minInt(p.L2.Cfg().Banks, 2*cfg.NumCores)) * hz
		item.Add(p.L2.Report(acc*0.7, acc*0.3, stats.L2Reads, stats.L2Writes))
	}
	if p.L3 != nil {
		acc := cfg.L3PeakDuty * float64(minInt(p.L3.Cfg().Banks, 2*cfg.NumCores)) * hz
		item.Add(p.L3.Report(acc*0.7, acc*0.3, stats.L3Reads, stats.L3Writes))
	}

	// ---- Shared FPUs -----------------------------------------------------
	if cfg.SharedFPUs > 0 {
		n := float64(cfg.SharedFPUs)
		fpu := power.FromPAT("SharedFPU", p.fpu,
			power.Activity{Reads: 0.5 * n * hz},
			power.Activity{Reads: stats.FPOpsPerSec})
		fpu.Area = p.fpu.Area * n
		fpu.SubLeak = p.fpu.Static.Sub * n
		fpu.GateLeak = p.fpu.Static.Gate * n
		item.Add(fpu)
	}

	// ---- Interconnect -----------------------------------------------------
	if ic := p.interconnectReport(stats); ic != nil {
		item.Add(ic)
	}

	// ---- Memory controller -------------------------------------------------
	if p.mcCtl != nil {
		peakTxn := 0.0
		if cfg.MC.PeakBandwidth > 0 {
			peakTxn = cfg.MCPeakUtil * cfg.MC.PeakBandwidth / 64
		}
		mcRep := power.NewItemN("MemoryController", 3)
		mcRep.Add(
			power.FromPAT("frontend", p.mcCtl.FrontEnd,
				power.Activity{Reads: peakTxn * 0.6, Writes: peakTxn * 0.4},
				power.Activity{Reads: stats.MCAccesses * 0.6, Writes: stats.MCAccesses * 0.4}),
			power.FromPAT("backend", p.mcCtl.Backend,
				power.Activity{Reads: peakTxn * 0.6, Writes: peakTxn * 0.4},
				power.Activity{Reads: stats.MCAccesses * 0.6, Writes: stats.MCAccesses * 0.4}),
			power.FromPAT("phy", p.mcCtl.PHY,
				power.Activity{Reads: peakTxn * 0.6, Writes: peakTxn * 0.4},
				power.Activity{Reads: stats.MCAccesses * 0.6, Writes: stats.MCAccesses * 0.4}),
		)
		item.Add(mcRep)
	}

	// ---- I/O controllers ------------------------------------------------------
	if p.niu != nil {
		peakBits := 2 * cfg.NIU.Bandwidth * float64(maxInt(cfg.NIU.Count, 1))
		item.Add(power.FromPAT("NIU", *p.niu,
			power.Activity{Reads: peakBits},
			power.Activity{Reads: stats.NIUBitsPerSec}))
	}
	if p.pcie != nil {
		lanes := float64(maxInt(cfg.PCIe.Lanes, 1))
		gbps := cfg.PCIe.GbpsPerLane
		if gbps <= 0 {
			gbps = 2.5
		}
		peakBits := lanes * gbps * 1e9
		item.Add(power.FromPAT("PCIe", *p.pcie,
			power.Activity{Reads: peakBits},
			power.Activity{Reads: stats.PCIeBitsPerSec}))
	}

	// ---- Clock network -----------------------------------------------------
	clk := &power.Item{
		Name:        "ClockNetwork",
		Area:        p.clk.Area,
		PeakDynamic: p.clk.PowerPeak,
		SubLeak:     p.clk.Static.Sub,
		GateLeak:    p.clk.Static.Gate,
	}
	if stats.CoreRun.PipelineDuty > 0 || stats.L2Reads > 0 || stats.NoCFlits > 0 {
		// Runtime clock power: same network, gated down with activity.
		util := stats.CoreRun.PipelineDuty
		if util <= 0 {
			util = 0.5
		}
		clk.RuntimeDynamic = p.clk.PowerMax * (0.35 + 0.65*util) * cfg.ClockGating
	}
	item.Add(clk)

	if cfg.OtherArea > 0 {
		item.Add(&power.Item{Name: "Other(unmodeled)", Area: cfg.OtherArea})
	}

	item.Rollup()
	item.Area *= topLevelOverhead
	return item
}

func (p *Processor) interconnectReport(stats *Stats) *power.Item {
	cfg := &p.Cfg
	hz := cfg.ClockHz
	switch cfg.NoC.Kind {
	case Mesh:
		nr := float64(cfg.NoC.MeshX * cfg.NoC.MeshY)
		nl := float64(linkCount(cfg.NoC.MeshX, cfg.NoC.MeshY))
		const peakDuty = 0.4 // flits per router per cycle at TDP
		ic := power.NewItemN("NoC", 3)
		routers := power.FromPAT("routers", p.router.PAT,
			power.Activity{Reads: peakDuty * hz},
			power.Activity{Reads: stats.NoCFlits})
		routers.Scale(nr)
		links := power.FromPAT("links", p.link.PAT,
			power.Activity{Reads: peakDuty * hz},
			power.Activity{Reads: stats.NoCFlits})
		links.Scale(nl)
		ic.Add(routers, links)
		if p.clusterBus != nil {
			buses := power.FromPAT("clusterbus", p.clusterBus.PAT,
				power.Activity{Reads: 0.6 * hz},
				power.Activity{Reads: stats.ClusterBusTransfers})
			buses.Scale(nr)
			ic.Add(buses)
		}
		return ic
	case Ring:
		stations := float64(cfg.NumCores + banksOf(cfg.L2))
		// Every flit traverses ~stations/4 hops on average, so per-router
		// forwarding duty runs high at TDP.
		const peakDuty = 0.5
		ic := power.NewItemN("Ring", 2)
		routers := power.FromPAT("routers", p.router.PAT,
			power.Activity{Reads: peakDuty * hz},
			power.Activity{Reads: stats.NoCFlits})
		routers.Scale(stations)
		links := power.FromPAT("links", p.link.PAT,
			power.Activity{Reads: peakDuty * hz},
			power.Activity{Reads: stats.NoCFlits})
		links.Scale(stations)
		ic.Add(routers, links)
		return ic
	case Bus:
		const peakDuty = 0.8
		ic := power.NewItemN("Bus", 1)
		ic.Add(power.FromPAT("bus", p.link.PAT,
			power.Activity{Reads: peakDuty * hz},
			power.Activity{Reads: stats.NoCFlits}))
		return ic
	case Crossbar:
		peakDuty := 0.5 * float64(cfg.NumCores) // port pairs busy at TDP
		ic := power.NewItemN("Crossbar", 1)
		ic.Add(power.FromPAT("crossbar", p.link.PAT,
			power.Activity{Reads: peakDuty * hz},
			power.Activity{Reads: stats.NoCFlits}))
		return ic
	}
	return nil
}

// TDP returns the chip thermal design power in watts (peak dynamic plus
// leakage at the configured temperature).
func (p *Processor) TDP() float64 { return p.Report(nil).Peak() }

// Area returns the chip area in m^2 including top-level overheads.
func (p *Processor) Area() float64 { return p.Report(nil).Area }

// Leakage returns total chip leakage power (W).
func (p *Processor) Leakage() float64 {
	r := p.Report(nil)
	return r.Leakage()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CorePeakActivity exposes the TDP activity vector in use for the cores.
func (p *Processor) CorePeakActivity() core.Activity { return p.corePeak }
