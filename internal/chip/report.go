package chip

import (
	"mcpat/internal/core"
	"mcpat/internal/guard"
	"mcpat/internal/power"
)

// topLevelOverhead multiplies summed component area for top-level routing
// channels, power grid, and the I/O pad ring.
const topLevelOverhead = 1.12

// Report builds the hierarchical power/area report of the whole chip.
// stats may be nil, in which case only TDP columns are populated.
//
// Report never panics: a fault inside the models is contained and an
// empty report (zero power and area) named after the chip is returned so
// a host process survives. Callers that need the fault itself, or the
// output sanity diagnostics, should use ReportE or Check.
func (p *Processor) Report(stats *Stats) *power.Item {
	rep, err := p.ReportE(stats)
	if err != nil {
		return power.NewItem(p.Cfg.Name)
	}
	return rep
}

// ReportE is Report with the panic-containment boundary exposed: a fault
// inside the models surfaces as an ErrInternal instead of a crash or a
// silently empty report.
func (p *Processor) ReportE(stats *Stats) (rep *power.Item, err error) {
	path := p.Cfg.Name
	if path == "" {
		path = "chip"
	}
	defer guard.Recover(&err, path+".Report")
	return p.buildReport(stats), nil
}

// Check synthesizes the report and runs the output sanity guard over it:
// every power/area value finite and non-negative, component trees summing
// to their parents, runtime power within a sane multiple of TDP. It
// returns the report together with the typed diagnostic list; err is
// non-nil only when the report could not be built at all.
func (p *Processor) Check(stats *Stats) (*power.Item, guard.Diagnostics, error) {
	rep, err := p.ReportE(stats)
	if err != nil {
		return nil, nil, err
	}
	return rep, guard.CheckReport(rep, nil), nil
}

// ReportArena is ReportE with the report tree bump-allocated from ar:
// the per-interval fast path of the trace engine, which scores the same
// synthesized chip once per statistics interval and resets the arena
// between intervals. Arena and heap reports run through the single
// buildReport code path, so they are bit-identical; the returned tree
// is valid only until ar.Reset (see power.Arena). A nil ar degrades to
// plain heap allocation.
func (p *Processor) ReportArena(stats *Stats, ar *power.Arena) (rep *power.Item, err error) {
	path := p.Cfg.Name
	if path == "" {
		path = "chip"
	}
	defer guard.Recover(&err, path+".Report")
	return p.buildReportIn(ar, stats), nil
}

// buildReport folds the scored parts list (fixed in report order at
// assembly time) into the chip's hierarchical report: every part maps
// the runtime statistics through its assignment closure and scores its
// synthesized component; the rollup then sums children in list order,
// preserving the pre-registry floating-point accumulation exactly.
func (p *Processor) buildReport(stats *Stats) *power.Item {
	return p.buildReportIn(nil, stats)
}

// buildReportIn is buildReport with every Item drawn from ar (nil =
// heap). The arena is threaded to each part through its Assignment, so
// all subsystem Score adapters share one slab per pass.
func (p *Processor) buildReportIn(ar *power.Arena, stats *Stats) *power.Item {
	if stats == nil {
		stats = &Stats{}
	}
	item := ar.NewItemN(p.Cfg.Name, len(p.parts))
	for i := range p.parts {
		pt := &p.parts[i]
		a := pt.assign(stats)
		a.Arena = ar
		item.Add(pt.comp.Score(a))
	}
	item.Rollup()
	item.Area *= topLevelOverhead
	// Score-time operating point: leakage follows temperature (and, to
	// first order, supply voltage); runtime dynamic follows the DVFS
	// f·V² derate. At the nominal point both factors are exactly 1 and
	// the report bits match an unretuned build, which is the
	// default-temperature equivalence pin.
	if ls, ds := p.leakScale*p.vddFrac, p.freqFrac*p.vddFrac*p.vddFrac; ls != 1 || ds != 1 {
		item.Retune(ls, ds)
	}
	return item
}

// SetScoreTemperature moves the Score-time junction temperature: every
// subsequent Report/ReportArena pass retunes subthreshold leakage to
// tempK (a single multiplier — see tech.Node.LeakScaleAt) without any
// re-synthesis. tempK <= 0 restores the node's reference temperature.
// This is the per-interval entry point of the thermal feedback loop; it
// is not safe to call concurrently with Report on the same Processor.
func (p *Processor) SetScoreTemperature(tempK float64) {
	if tempK <= 0 {
		tempK = p.Tech.Temperature
	}
	p.scoreTempK = tempK
	p.leakScale = p.Tech.LeakScaleAt(tempK)
}

// ScoreTemperature reports the junction temperature reports are
// currently scored at.
func (p *Processor) ScoreTemperature() float64 { return p.scoreTempK }

// SetScoreDVFS moves the Score-time DVFS operating point as fractions of
// the nominal clock and supply: runtime dynamic power scales by
// freqFrac·vddFrac² (same per-cycle activity, fewer cycles per second,
// quadratic supply sensitivity) and leakage scales linearly with
// vddFrac, the first-order McPAT treatment. Fractions <= 0 reset to 1.
// Like SetScoreTemperature this is a pure Score-phase retune — the DVFS
// governor in the trace engine calls it every interval against one
// synthesized chip.
func (p *Processor) SetScoreDVFS(freqFrac, vddFrac float64) {
	if freqFrac <= 0 {
		freqFrac = 1
	}
	if vddFrac <= 0 {
		vddFrac = 1
	}
	p.freqFrac, p.vddFrac = freqFrac, vddFrac
}

// ScoreDVFS reports the current score-time frequency and voltage
// fractions.
func (p *Processor) ScoreDVFS() (freqFrac, vddFrac float64) { return p.freqFrac, p.vddFrac }

// TDP returns the chip thermal design power in watts (peak dynamic plus
// leakage at the configured temperature).
func (p *Processor) TDP() float64 { return p.Report(nil).Peak() }

// Area returns the chip area in m^2 including top-level overheads.
func (p *Processor) Area() float64 { return p.Report(nil).Area }

// Leakage returns total chip leakage power (W).
func (p *Processor) Leakage() float64 {
	r := p.Report(nil)
	return r.Leakage()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CorePeakActivity exposes the TDP activity vector in use for the cores.
func (p *Processor) CorePeakActivity() core.Activity { return p.corePeak }
