package guard

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"mcpat/internal/power"
)

func TestErrorKindsClassify(t *testing.T) {
	cases := []struct {
		err  error
		kind error
	}{
		{Configf("core[2].ifu.btb", "bad entries %d", -1), ErrConfig},
		{Infeasiblef("l2", "no organization"), ErrInfeasible},
		{Domainf("chip", "NaN area"), ErrModelDomain},
		{Internalf("chip", "boom"), ErrInternal},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.kind) {
			t.Errorf("%v should match kind %v", c.err, c.kind)
		}
		for _, other := range []error{ErrConfig, ErrInfeasible, ErrModelDomain, ErrInternal} {
			if other != c.kind && errors.Is(c.err, other) {
				t.Errorf("%v should not match kind %v", c.err, other)
			}
		}
	}
}

func TestErrorMessageCarriesPathAndDetail(t *testing.T) {
	err := Configf("core[2].ifu.btb", "bad entries %d", -1)
	msg := err.Error()
	for _, want := range []string{"invalid configuration", "core[2].ifu.btb", "bad entries -1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestAtPrependsPathSegments(t *testing.T) {
	err := Configf("btb", "bad")
	err = At(err, "ifu")
	err = At(err, "core[2]")
	if got := PathOf(err); got != "core[2].ifu.btb" {
		t.Fatalf("path = %q, want core[2].ifu.btb", got)
	}
	if !errors.Is(err, ErrConfig) {
		t.Fatal("kind lost while prefixing path")
	}
	if At(nil, "x") != nil {
		t.Fatal("At(nil) must stay nil")
	}
}

func TestWrapPreservesInnerClassification(t *testing.T) {
	inner := Infeasiblef("l2", "no organization")
	wrapped := Wrap(ErrConfig, "chip", inner)
	if !errors.Is(wrapped, ErrInfeasible) {
		t.Fatal("inner kind must win")
	}
	if errors.Is(wrapped, ErrConfig) {
		t.Fatal("outer kind must not override the inner one")
	}
	if got := PathOf(wrapped); got != "chip.l2" {
		t.Fatalf("path = %q, want chip.l2", got)
	}

	plain := Wrap(ErrConfig, "chip", fmt.Errorf("strconv: bad"))
	if !errors.Is(plain, ErrConfig) {
		t.Fatal("plain errors take the supplied kind")
	}
	if Wrap(ErrConfig, "chip", nil) != nil {
		t.Fatal("Wrap(nil) must stay nil")
	}
}

func TestRecoverConvertsPanicToErrInternal(t *testing.T) {
	f := func() (err error) {
		defer Recover(&err, "mcpat.New")
		panic("index out of range [3] with length 2")
	}
	err := f()
	if err == nil {
		t.Fatal("panic not converted to error")
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("recovered panic should be ErrInternal, got %v", err)
	}
	if !strings.Contains(err.Error(), "index out of range") {
		t.Errorf("recovered value lost: %v", err)
	}
	if PathOf(err) != "mcpat.New" {
		t.Errorf("path = %q, want mcpat.New", PathOf(err))
	}
}

func TestRecoverNoPanicKeepsError(t *testing.T) {
	f := func() (err error) {
		defer Recover(&err, "x")
		return errors.New("original")
	}
	if err := f(); err == nil || err.Error() != "original" {
		t.Fatalf("Recover must not disturb a normal return, got %v", err)
	}
}

func okTree() *power.Item {
	root := power.NewItem("chip")
	a := &power.Item{Name: "cores", Area: 2, PeakDynamic: 10, SubLeak: 1, GateLeak: 0.5}
	b := &power.Item{Name: "l2", Area: 1, PeakDynamic: 3, SubLeak: 0.5, GateLeak: 0.25}
	root.Add(a, b)
	root.Rollup()
	return root
}

func TestCheckReportAcceptsHealthyTree(t *testing.T) {
	if ds := CheckReport(okTree(), nil); len(ds) != 0 {
		t.Fatalf("healthy tree flagged: %v", ds)
	}
}

func TestCheckReportFlagsNaNInfNegative(t *testing.T) {
	tree := okTree()
	tree.Children[0].Area = math.NaN()
	tree.Children[1].PeakDynamic = math.Inf(1)
	tree.Children[1].SubLeak = -1
	ds := CheckReport(tree, nil)
	if len(ds) < 3 {
		t.Fatalf("want >=3 diagnostics, got %v", ds)
	}
	var sawNaN, sawInf, sawNeg bool
	for _, d := range ds {
		switch d.Msg {
		case "NaN":
			sawNaN = true
		case "infinite":
			sawInf = true
		case "negative":
			sawNeg = true
		}
	}
	if !sawNaN || !sawInf || !sawNeg {
		t.Fatalf("missing categories in %v", ds)
	}
	if err := ds.Err(); err == nil || !errors.Is(err, ErrModelDomain) {
		t.Fatalf("diagnostics must convert to ErrModelDomain, got %v", err)
	}
}

func TestCheckReportFlagsChildrenExceedingParent(t *testing.T) {
	tree := okTree()
	tree.PeakDynamic = 1 // children sum to 13
	ds := CheckReport(tree, nil)
	found := false
	for _, d := range ds {
		if d.Field == "PeakDynamic" && strings.Contains(d.Msg, "children sum") {
			found = true
		}
	}
	if !found {
		t.Fatalf("children-exceed-parent not flagged: %v", ds)
	}
	// The legitimate direction - parent bigger than children (self
	// contributions, top-level overheads) - must pass.
	tree2 := okTree()
	tree2.Area *= 1.12
	if ds := CheckReport(tree2, nil); len(ds) != 0 {
		t.Fatalf("parent>children wrongly flagged: %v", ds)
	}
}

func TestCheckReportFlagsRuntimeBeyondTDP(t *testing.T) {
	tree := okTree()
	tree.RuntimeDynamic = 1000 // TDP is ~15.25 W
	ds := CheckReport(tree, nil)
	found := false
	for _, d := range ds {
		if d.Field == "Runtime" {
			found = true
		}
	}
	if !found {
		t.Fatalf("runtime >> TDP not flagged: %v", ds)
	}
	// A generous multiplier admits it.
	if ds := CheckReport(tree, &CheckOptions{RuntimeTDPMult: 1000}); len(ds) != 0 {
		t.Fatalf("custom multiplier not honored: %v", ds)
	}
}

func TestCheckReportFlagsExcessLeakSaved(t *testing.T) {
	tree := okTree()
	tree.Children[0].LeakSaved = 5 // leakage there is 1.5 W
	ds := CheckReport(tree, nil)
	found := false
	for _, d := range ds {
		if d.Field == "LeakSaved" && strings.Contains(d.Msg, "exceed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("excess LeakSaved not flagged: %v", ds)
	}
}

func TestCheckReportNil(t *testing.T) {
	if ds := CheckReport(nil, nil); len(ds) != 1 {
		t.Fatalf("nil report must yield one diagnostic, got %v", ds)
	}
}
