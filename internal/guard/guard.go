// Package guard hardens the model evaluation pipeline. It defines the
// structured error taxonomy shared by every layer (configuration errors,
// infeasible designs, model-domain violations, and internal faults), each
// carrying a component path such as "core[2].ifu.btb"; a Recover boundary
// that converts panics escaping the model internals into ErrInternal
// values so no caller-supplied configuration can crash a host process;
// and an output sanity pass (CheckReport) that verifies a synthesized
// chip's numbers are physical before they are handed to a caller.
package guard

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
)

// The four error kinds of the evaluation pipeline. Use errors.Is against
// these sentinels to classify any error returned by the public API.
var (
	// ErrConfig marks a malformed or out-of-range caller configuration.
	ErrConfig = errors.New("invalid configuration")
	// ErrInfeasible marks a well-formed design the models cannot realize
	// (no circuit organization meets the constraints).
	ErrInfeasible = errors.New("infeasible design")
	// ErrModelDomain marks model outputs that left the physical domain
	// (NaN/Inf, negative power or area, inconsistent totals).
	ErrModelDomain = errors.New("model domain violation")
	// ErrInternal marks a fault inside the models themselves, including
	// recovered panics. These indicate a bug, not a bad input.
	ErrInternal = errors.New("internal model error")
)

// Error is a structured model error: a kind from the taxonomy above plus
// the path of the component being synthesized when it occurred.
type Error struct {
	Kind error  // one of ErrConfig/ErrInfeasible/ErrModelDomain/ErrInternal
	Path string // component path, e.g. "core[2].ifu.btb"; may be empty
	Err  error  // underlying cause; may be nil when Msg carries the detail
	Msg  string // human-readable detail when there is no underlying cause
}

func (e *Error) Error() string {
	var b strings.Builder
	if e.Kind != nil {
		b.WriteString(e.Kind.Error())
	}
	if e.Path != "" {
		if b.Len() > 0 {
			b.WriteString(" at ")
		}
		b.WriteString(e.Path)
	}
	detail := e.Msg
	if detail == "" && e.Err != nil {
		detail = e.Err.Error()
	}
	if detail != "" {
		if b.Len() > 0 {
			b.WriteString(": ")
		}
		b.WriteString(detail)
	}
	return b.String()
}

// Unwrap exposes both the kind sentinel and the underlying cause, so
// errors.Is works against either.
func (e *Error) Unwrap() []error {
	var out []error
	if e.Kind != nil {
		out = append(out, e.Kind)
	}
	if e.Err != nil {
		out = append(out, e.Err)
	}
	return out
}

// Configf returns an ErrConfig at the given component path.
func Configf(path, format string, args ...any) error {
	return &Error{Kind: ErrConfig, Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Infeasiblef returns an ErrInfeasible at the given component path.
func Infeasiblef(path, format string, args ...any) error {
	return &Error{Kind: ErrInfeasible, Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Domainf returns an ErrModelDomain at the given component path.
func Domainf(path, format string, args ...any) error {
	return &Error{Kind: ErrModelDomain, Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Internalf returns an ErrInternal at the given component path.
func Internalf(path, format string, args ...any) error {
	return &Error{Kind: ErrInternal, Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Wrap attaches a kind and component path to an underlying error. A nil
// err returns nil. If err is already a guard Error it is left as-is
// except that a missing path is filled in, so the innermost (most
// specific) classification wins.
func Wrap(kind error, path string, err error) error {
	if err == nil {
		return nil
	}
	var ge *Error
	if errors.As(err, &ge) {
		return At(err, path)
	}
	return &Error{Kind: kind, Path: path, Err: err}
}

// At prefixes a component-path segment onto an error, building paths like
// "core[2].ifu.btb" as errors propagate up the component tree. Non-guard
// errors are wrapped without assigning a kind.
func At(err error, segment string) error {
	if err == nil {
		return nil
	}
	if segment == "" {
		return err
	}
	var ge *Error
	if errors.As(err, &ge) {
		cp := *ge
		switch {
		case cp.Path == "":
			cp.Path = segment
		default:
			cp.Path = segment + "." + cp.Path
		}
		return &cp
	}
	return &Error{Path: segment, Err: err}
}

// PathOf returns the component path carried by err, or "".
func PathOf(err error) string {
	var ge *Error
	if errors.As(err, &ge) {
		return ge.Path
	}
	return ""
}

// Recover is the panic-containment boundary of the public API. Deferred
// at the top of an exported constructor or evaluation entry point, it
// converts an in-flight panic into an ErrInternal assigned through errp:
//
//	func New(cfg Config) (p *Processor, err error) {
//	    defer guard.Recover(&err, "mcpat.New")
//	    ...
//	}
//
// The recovered value and a trimmed stack trace are preserved in the
// error message so the fault stays diagnosable.
func Recover(errp *error, path string) {
	r := recover()
	if r == nil {
		return
	}
	err := &Error{
		Kind: ErrInternal,
		Path: path,
		Msg:  fmt.Sprintf("recovered panic: %v\n%s", r, trimStack(debug.Stack())),
	}
	if errp != nil {
		*errp = err
	}
}

// trimStack drops the goroutine header and the frames of the panic/
// recover machinery itself, keeping the trace focused on model code.
func trimStack(stack []byte) string {
	lines := strings.Split(string(stack), "\n")
	// Line 0 is "goroutine N [running]:". Frames follow as pairs of a
	// function line and an indented location line; the leading frames are
	// debug.Stack, Recover, and the runtime panic machinery.
	start := 0
	if len(lines) > 0 && strings.HasPrefix(lines[0], "goroutine ") {
		start = 1
	}
	for start+1 < len(lines) {
		l := lines[start]
		if strings.Contains(l, "debug.Stack") ||
			strings.Contains(l, "guard.Recover") ||
			strings.HasPrefix(l, "panic(") {
			start += 2
			continue
		}
		break
	}
	const maxLines = 16
	if start >= len(lines) {
		start = 0
	}
	out := lines[start:]
	if len(out) > maxLines {
		out = out[:maxLines]
	}
	return strings.TrimRight(strings.Join(out, "\n"), "\n")
}
