package guard

import (
	"fmt"
	"math"
	"strings"

	"mcpat/internal/power"
)

// Diagnostic is one sanity-check finding about a report tree.
type Diagnostic struct {
	Path  string  // report-tree path, e.g. "chip.Cores.core.ifu"
	Field string  // offending quantity ("Area", "PeakDynamic", ...)
	Value float64 // the offending value
	Msg   string  // what is wrong with it
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s.%s = %g: %s", d.Path, d.Field, d.Value, d.Msg)
}

// Diagnostics is the typed finding list CheckReport returns.
type Diagnostics []Diagnostic

func (ds Diagnostics) String() string {
	if len(ds) == 0 {
		return "ok"
	}
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = d.String()
	}
	return strings.Join(parts, "; ")
}

// Err converts a non-empty diagnostic list into an ErrModelDomain; an
// empty list yields nil.
func (ds Diagnostics) Err() error {
	if len(ds) == 0 {
		return nil
	}
	return Domainf("", "%d sanity violations: %s", len(ds), ds.String())
}

// CheckOptions tunes the report sanity pass. The zero value selects the
// defaults documented on each field.
type CheckOptions struct {
	// SumTolerance is the relative slack allowed when comparing the sum
	// of a node's children against the node's own stored total. Parents
	// may legitimately exceed their children (self contributions, area
	// overheads), so only children-exceed-parent is flagged.
	// Default 1e-6.
	SumTolerance float64

	// RuntimeTDPMult bounds root runtime power at this multiple of peak
	// (TDP) power; runtime beyond it means the activity vector or the
	// model left the physical regime. Default 3.
	RuntimeTDPMult float64
}

func (o *CheckOptions) defaults() CheckOptions {
	out := CheckOptions{SumTolerance: 1e-6, RuntimeTDPMult: 3}
	if o != nil {
		if o.SumTolerance > 0 {
			out.SumTolerance = o.SumTolerance
		}
		if o.RuntimeTDPMult > 0 {
			out.RuntimeTDPMult = o.RuntimeTDPMult
		}
	}
	return out
}

// CheckReport verifies that a synthesized chip report is physical: every
// power/area quantity is finite and non-negative, component subtrees sum
// to no more than their parents (within tolerance), power-gating savings
// never exceed the leakage they gate, and runtime power stays within a
// sane multiple of TDP. It returns every violation found rather than
// stopping at the first, so a caller can log the full picture.
func CheckReport(rep *power.Item, opts *CheckOptions) Diagnostics {
	if rep == nil {
		return Diagnostics{{Path: "", Field: "report", Msg: "nil report"}}
	}
	o := opts.defaults()
	var ds Diagnostics
	checkItem(rep, rep.Name, o, &ds)

	// Root-level runtime-vs-TDP bound; only meaningful when runtime
	// statistics were applied.
	if rep.RuntimeDynamic > 0 {
		peak := rep.Peak()
		if run := rep.Runtime(); peak > 0 && run > o.RuntimeTDPMult*peak {
			ds = append(ds, Diagnostic{
				Path: rep.Name, Field: "Runtime", Value: run,
				Msg: fmt.Sprintf("runtime power %.3g W exceeds %g x TDP (%.3g W)",
					run, o.RuntimeTDPMult, peak),
			})
		}
	}
	return ds
}

// fieldsOf enumerates the checked quantities of one node.
func fieldsOf(it *power.Item) [6]struct {
	name string
	val  float64
} {
	return [6]struct {
		name string
		val  float64
	}{
		{"Area", it.Area},
		{"PeakDynamic", it.PeakDynamic},
		{"RuntimeDynamic", it.RuntimeDynamic},
		{"SubLeak", it.SubLeak},
		{"GateLeak", it.GateLeak},
		{"LeakSaved", it.LeakSaved},
	}
}

func checkItem(it *power.Item, path string, o CheckOptions, ds *Diagnostics) {
	for _, f := range fieldsOf(it) {
		switch {
		case math.IsNaN(f.val):
			*ds = append(*ds, Diagnostic{Path: path, Field: f.name, Value: f.val, Msg: "NaN"})
		case math.IsInf(f.val, 0):
			*ds = append(*ds, Diagnostic{Path: path, Field: f.name, Value: f.val, Msg: "infinite"})
		case f.val < 0:
			*ds = append(*ds, Diagnostic{Path: path, Field: f.name, Value: f.val, Msg: "negative"})
		}
	}
	if it.LeakSaved > 0 {
		if leak := it.SubLeak + it.GateLeak; it.LeakSaved > leak*(1+o.SumTolerance) {
			*ds = append(*ds, Diagnostic{
				Path: path, Field: "LeakSaved", Value: it.LeakSaved,
				Msg: fmt.Sprintf("power-gating savings exceed total leakage %.3g W", leak),
			})
		}
	}
	if len(it.Children) > 0 {
		var sums [6]float64
		for _, c := range it.Children {
			for i, f := range fieldsOf(c) {
				sums[i] += f.val
			}
		}
		for i, f := range fieldsOf(it) {
			sum := sums[i]
			if !isFinite(sum) || !isFinite(f.val) {
				continue // the per-node checks above already flagged these
			}
			// Absolute slack keeps near-zero quantities from tripping on
			// float rounding.
			if sum > f.val*(1+o.SumTolerance)+1e-12 {
				*ds = append(*ds, Diagnostic{
					Path: path, Field: f.name, Value: f.val,
					Msg: fmt.Sprintf("children sum to %.6g, exceeding the parent total", sum),
				})
			}
		}
	}
	for _, c := range it.Children {
		checkItem(c, path+"."+c.Name, o, ds)
	}
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
