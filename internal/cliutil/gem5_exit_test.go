package cliutil

import (
	"testing"

	"mcpat/internal/gem5"
	"mcpat/internal/guard"
)

// TestGem5ErrorsExitParity pins the cross-face error contract of the
// native ingestion pipeline: every malformed-config.json error from the
// gem5 mapper is guard.ErrConfig, so mcpat-trace exits 2 and mcpatd
// answers 400 with the same component path — the parity the shared
// cliutil/serve classification provides for free.
func TestGem5ErrorsExitParity(t *testing.T) {
	docs := []string{
		`{`,
		`{"system":{}}`,
		`{"system":{"cpu":[]}}`,
		`{"system":{"cpu":{"type":"DerivO3CPU","clk_domain":{"clock":[0]}}}}`,
	}
	for _, doc := range docs {
		_, err := gem5.MapBytes([]byte(doc))
		if err == nil {
			t.Fatalf("doc %q: no error", doc)
		}
		if got := ExitCode(err); got != ExitConfig {
			t.Errorf("doc %q: exit %d, want %d (config)", doc, got, ExitConfig)
		}
		if guard.PathOf(err) == "" {
			t.Errorf("doc %q: error carries no component path: %v", doc, err)
		}
	}
}
