package cliutil

import (
	"errors"
	"fmt"
	"testing"

	"mcpat/internal/guard"
)

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{guard.Configf("chip", "bad core count"), ExitConfig},
		{guard.Infeasiblef("L2", "no organization meets clock"), ExitInfeasible},
		{guard.Domainf("chip", "negative power"), ExitInfeasible},
		{guard.Internalf("core[0]", "recovered panic"), ExitInternal},
		{errors.New("plain I/O error"), ExitInternal},
		// Wrapping must not change the classification.
		{fmt.Errorf("outer: %w", guard.Configf("chip", "bad")), ExitConfig},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestFirstLine(t *testing.T) {
	if got := FirstLine("head\ntail"); got != "head" {
		t.Errorf("FirstLine = %q", got)
	}
	if got := FirstLine("single"); got != "single" {
		t.Errorf("FirstLine = %q", got)
	}
}
