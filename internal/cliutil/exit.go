// Package cliutil centralizes the exit-code convention of the cmd/*
// binaries. Every tool maps the guard error taxonomy onto the same
// codes, so scripts can distinguish caller mistakes from physical
// infeasibility from framework bugs without parsing stderr:
//
//	0  success
//	1  internal fault (contained panic, I/O error, anything unclassified)
//	2  configuration / usage error (guard.ErrConfig, bad flags)
//	3  infeasible design or model-domain violation
package cliutil

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"mcpat/internal/guard"
)

// The shared exit codes.
const (
	ExitOK         = 0
	ExitInternal   = 1
	ExitConfig     = 2
	ExitInfeasible = 3
)

// ExitCode maps an error onto the shared convention via the guard
// taxonomy.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, guard.ErrConfig):
		return ExitConfig
	case errors.Is(err, guard.ErrInfeasible), errors.Is(err, guard.ErrModelDomain):
		return ExitInfeasible
	}
	return ExitInternal
}

// Fatal prints "tool: message" to stderr - guard errors already lead
// with their kind and component path - and exits with the mapped code.
// Multi-line details (recovered panic stacks) are trimmed to their
// headline.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, FirstLine(err.Error()))
	os.Exit(ExitCode(err))
}

// Usagef prints a usage complaint and exits with ExitConfig - flag
// misuse is a configuration error under the shared convention.
func Usagef(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
	os.Exit(ExitConfig)
}

// FirstLine trims a message to its first line.
func FirstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
