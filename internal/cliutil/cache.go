package cliutil

// Shared -cache-dir / -cache-size handling for the cmd/* binaries.
// Every tool accepts the same pair of flags, opens the persistent
// synthesis cache the same way, and degrades identically: a directory
// that cannot be used is a one-line warning and an in-memory run, never
// a failed invocation. mcpatd and the CLIs can point at the same
// directory concurrently — the store coordinates through atomic renames
// and advisory file locks.

import (
	"flag"
	"fmt"
	"os"

	"mcpat/internal/persist"
)

// CacheFlags registers the shared persistent-cache flags on fs and
// returns the destinations. Call EnablePersistentCache with them after
// flag parsing.
func CacheFlags(fs *flag.FlagSet) (dir *string, sizeMB *int64) {
	dir = fs.String("cache-dir", "",
		"directory for the persistent synthesis cache (empty = in-memory only)")
	sizeMB = fs.Int64("cache-size", persist.DefaultMaxBytes>>20,
		"persistent cache size budget in MiB (0 = unlimited)")
	return dir, sizeMB
}

// EnablePersistentCache opens the disk cache at dir and installs it as
// the process default, so every later synthesis reads through and
// publishes to it. An empty dir is a no-op. An unusable dir (no
// permission, path is a file, disk gone) warns on stderr and returns
// nil: the run proceeds in-memory. The returned closer releases the
// store (flushes nothing — writes are already durable) and may be nil.
func EnablePersistentCache(dir string, sizeMB int64) func() {
	if dir == "" {
		return nil
	}
	maxBytes := sizeMB << 20
	if sizeMB <= 0 {
		maxBytes = -1 // unlimited
	}
	store, err := persist.Open(persist.Options{
		Dir:      dir,
		MaxBytes: maxBytes,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "warning: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr,
			"warning: persistent cache disabled (running in-memory): %v\n", err)
		return nil
	}
	prev := persist.SetDefault(store)
	return func() {
		persist.SetDefault(prev)
		store.Close()
	}
}
