package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcpat/internal/persist"
)

func TestCacheFlagsRegistered(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	dir, sizeMB := CacheFlags(fs)
	if err := fs.Parse([]string{"-cache-dir", "/tmp/c", "-cache-size", "64"}); err != nil {
		t.Fatal(err)
	}
	if *dir != "/tmp/c" || *sizeMB != 64 {
		t.Fatalf("parsed dir=%q size=%d", *dir, *sizeMB)
	}
	// Defaults: no dir, 1 GiB budget.
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	dir2, size2 := CacheFlags(fs2)
	fs2.Parse(nil)
	if *dir2 != "" || *size2 != persist.DefaultMaxBytes>>20 {
		t.Fatalf("defaults dir=%q size=%d", *dir2, *size2)
	}
}

func TestEnablePersistentCacheEmptyDirNoop(t *testing.T) {
	if closer := EnablePersistentCache("", 0); closer != nil {
		t.Fatal("empty dir must be a no-op")
	}
	if persist.DefaultStats().Enabled {
		t.Fatal("no store should be installed")
	}
}

func TestEnablePersistentCacheInstallsDefault(t *testing.T) {
	closer := EnablePersistentCache(t.TempDir(), 16)
	if closer == nil {
		t.Fatal("usable dir must install a store")
	}
	defer closer()
	if !persist.DefaultStats().Enabled {
		t.Fatal("store not installed as process default")
	}
	closer()
	if persist.DefaultStats().Enabled {
		t.Fatal("closer must uninstall the store")
	}
}

// TestEnablePersistentCacheDegradesOnMisconfiguration: a cache path
// that is a regular file must warn on stderr and return nil — the run
// proceeds in-memory, it never fails.
func TestEnablePersistentCacheDegradesOnMisconfiguration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	os.Stderr = w
	closer := EnablePersistentCache(path, 0)
	w.Close()
	os.Stderr = oldStderr

	buf := make([]byte, 4096)
	n, _ := r.Read(buf)
	r.Close()
	warning := string(buf[:n])

	if closer != nil {
		closer()
		t.Fatal("misconfigured dir must not install a store")
	}
	if !strings.Contains(warning, "warning") || !strings.Contains(warning, "in-memory") {
		t.Fatalf("expected an in-memory degradation warning on stderr, got %q", warning)
	}
	if persist.DefaultStats().Enabled {
		t.Fatal("degraded run must stay in-memory")
	}
}

// TestPersistentCacheSharedBetweenProcesses: two stores (standing in
// for mcpatd and a CLI) on one directory — writes from one are reads
// for the other, with the flock coordinating eviction only.
func TestPersistentCacheSharedBetweenProcesses(t *testing.T) {
	dir := t.TempDir()
	closeA := EnablePersistentCache(dir, 16)
	if closeA == nil {
		t.Fatal("store A failed to open")
	}
	a := persist.Default()
	a.Put("shared", []byte("key"), []byte("value"))
	closeA()

	closeB := EnablePersistentCache(dir, 16)
	if closeB == nil {
		t.Fatal("store B failed to open")
	}
	defer closeB()
	got, ok := persist.Default().Get("shared", []byte("key"))
	if !ok || string(got) != "value" {
		t.Fatalf("store B missed store A's entry: %q %v", got, ok)
	}
}
