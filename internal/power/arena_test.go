package power

import "testing"

// sameLeaf compares two leaf Items field by field (exact equality).
func sameLeaf(a, b *Item) bool {
	return a.Name == b.Name && a.Area == b.Area &&
		a.PeakDynamic == b.PeakDynamic && a.RuntimeDynamic == b.RuntimeDynamic &&
		a.SubLeak == b.SubLeak && a.GateLeak == b.GateLeak &&
		a.LeakSaved == b.LeakSaved && len(a.Children) == len(b.Children)
}

// TestArenaNilFallback pins the nil-receiver contract: a nil *Arena
// must behave exactly like the package-level constructors.
func TestArenaNilFallback(t *testing.T) {
	var ar *Arena
	it := ar.NewItem("x")
	if it == nil || it.Name != "x" {
		t.Fatalf("nil arena NewItem = %+v", it)
	}
	itn := ar.NewItemN("y", 3)
	if cap(itn.Children) != 3 || len(itn.Children) != 0 {
		t.Fatalf("nil arena NewItemN children len/cap = %d/%d", len(itn.Children), cap(itn.Children))
	}
	pat := PAT{Energy: Energy{Read: 2, Write: 3}, Static: Static{Sub: 1, Gate: 0.5}, Area: 7}
	peak := Activity{Reads: 10, Writes: 5}
	run := Activity{Reads: 1}
	a := ar.FromPAT("leaf", pat, peak, run)
	b := FromPAT("leaf", pat, peak, run)
	if !sameLeaf(a, b) {
		t.Fatalf("nil arena FromPAT mismatch: %+v vs %+v", a, b)
	}
}

// TestArenaFromPATMatchesHeap pins bit-identity of the arena leaf
// constructor against the heap one for a non-trivial activity mix.
func TestArenaFromPATMatchesHeap(t *testing.T) {
	var ar Arena
	pat := PAT{Energy: Energy{Read: 1.5e-12, Write: 2.5e-12, Search: 0.5e-12},
		Static: Static{Sub: 0.033, Gate: 0.011}, Area: 1.25e-6}
	peak := Activity{Reads: 3.2e9, Writes: 1.1e9, Searches: 4.4e8}
	run := Activity{Reads: 0.7e9, Writes: 0.2e9, Searches: 1.1e8}
	got := ar.FromPAT("leaf", pat, peak, run)
	want := FromPAT("leaf", pat, peak, run)
	if !sameLeaf(got, want) {
		t.Fatalf("arena FromPAT differs from heap: %+v vs %+v", got, want)
	}
}

// TestArenaReuse pins the reuse contract: after a Reset, allocation
// serves the same backing memory again (no growth), and every Item
// comes back fully zeroed even if the previous pass dirtied it.
func TestArenaReuse(t *testing.T) {
	var ar Arena
	first := make([]*Item, 0, 600) // spans multiple chunks
	for i := 0; i < 600; i++ {
		it := ar.NewItemN("n", 4)
		it.Area = 42
		it.LeakSaved = 7
		it.Children = append(it.Children, ar.NewItem("c"))
		it.Rollup()
		first = append(first, it)
	}
	ar.Reset()
	for i := 0; i < 600; i++ {
		it := ar.NewItem("again")
		if it.Area != 0 || it.LeakSaved != 0 || it.Children != nil || it.rolled {
			t.Fatalf("item %d not zeroed after reset: %+v", i, it)
		}
	}
	ar.Reset()
	// Steady state: a full pass after warm-up must not allocate.
	allocs := testing.AllocsPerRun(10, func() {
		ar.Reset()
		for i := 0; i < 600; i++ {
			parent := ar.NewItemN("p", 2)
			parent.Add(ar.FromPAT("l", PAT{}, Activity{}, Activity{}))
			parent.Rollup()
		}
	})
	if allocs > 0 {
		t.Fatalf("warm arena pass allocated %v times per run", allocs)
	}
	_ = first
}

// TestArenaChildrenOverflow pins the safety valve: a Children slice
// that outgrows its arena window must spill to the heap via append
// without corrupting neighbouring windows.
func TestArenaChildrenOverflow(t *testing.T) {
	var ar Arena
	a := ar.NewItemN("a", 1)
	b := ar.NewItemN("b", 1)
	for i := 0; i < 8; i++ {
		a.Add(ar.NewItem("child"))
	}
	b.Add(ar.NewItem("only"))
	if len(a.Children) != 8 {
		t.Fatalf("overflowed slice has %d children", len(a.Children))
	}
	if len(b.Children) != 1 || b.Children[0].Name != "only" {
		t.Fatalf("neighbour window corrupted: %+v", b.Children)
	}
	// Oversized request falls back to a heap slice outright.
	big := ar.NewItemN("big", arenaPtrChunk+1)
	if cap(big.Children) != arenaPtrChunk+1 {
		t.Fatalf("oversized children cap = %d", cap(big.Children))
	}
}
