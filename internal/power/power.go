// Package power defines the common power/area/timing accounting types that
// every McPAT model returns, and the hierarchical report tree the chip
// assembles. Keeping one uniform result shape is what lets McPAT compose
// wires, arrays, logic and full cores into a single chip-level breakdown.
package power

import (
	"fmt"
	"sort"
	"strings"
)

// Energy holds per-operation dynamic energies in joules. Search applies
// only to CAM-like structures.
type Energy struct {
	Read   float64
	Write  float64
	Search float64
}

// Static holds leakage power in watts, split the way McPAT reports it:
// subthreshold conduction and gate (tunneling) leakage.
type Static struct {
	Sub  float64
	Gate float64
}

// Total returns combined leakage power (W).
func (s Static) Total() float64 { return s.Sub + s.Gate }

// Add returns the sum of two static-power records.
func (s Static) Add(o Static) Static { return Static{s.Sub + o.Sub, s.Gate + o.Gate} }

// Scale returns the record multiplied by k.
func (s Static) Scale(k float64) Static { return Static{s.Sub * k, s.Gate * k} }

// PAT is the uniform power/area/timing triple returned by every circuit
// and architecture model.
type PAT struct {
	Energy Energy  // dynamic energy per operation (J)
	Static Static  // leakage power (W)
	Area   float64 // silicon area (m^2)
	Delay  float64 // critical-path delay of one operation (s)
	Cycle  float64 // minimum cycle time if internally pipelined (s); 0 = Delay
}

// CycleTime returns the effective minimum cycle time.
func (p PAT) CycleTime() float64 {
	if p.Cycle > 0 {
		return p.Cycle
	}
	return p.Delay
}

// Activity is an access-rate vector in operations per second. Multiplying
// an Activity against a PAT's per-op energies yields dynamic power.
type Activity struct {
	Reads    float64
	Writes   float64
	Searches float64
}

// DynamicPower returns the dynamic power (W) of a block with per-op
// energies e driven at rates a.
func (e Energy) DynamicPower(a Activity) float64 {
	return e.Read*a.Reads + e.Write*a.Writes + e.Search*a.Searches
}

// Item is one node of the hierarchical power/area report. Leaf items are
// filled in by component models; interior items aggregate children via
// Rollup.
type Item struct {
	Name           string
	Area           float64 // m^2
	PeakDynamic    float64 // W at TDP activity
	RuntimeDynamic float64 // W at measured activity (0 if no stats given)
	SubLeak        float64 // W
	GateLeak       float64 // W
	// LeakSaved is runtime leakage recovered by power gating (W): it is
	// subtracted from Runtime() but never from Peak(), since TDP assumes
	// the gates are awake.
	LeakSaved float64
	Children  []*Item

	// rolled marks nodes whose stored totals already include their
	// children, making Rollup idempotent across nested report builders.
	rolled bool
}

// NewItem returns a named, empty report node.
func NewItem(name string) *Item { return &Item{Name: name} }

// NewItemN returns a named report node with capacity preallocated for n
// children, so report builders that know their fan-out avoid the
// append-regrowth garbage in hot evaluation loops.
func NewItemN(name string, n int) *Item {
	return &Item{Name: name, Children: make([]*Item, 0, n)}
}

// Add appends children and returns the receiver for chaining.
func (it *Item) Add(children ...*Item) *Item {
	for _, c := range children {
		if c != nil {
			it.Children = append(it.Children, c)
		}
	}
	return it
}

// Leakage returns total leakage power (W) of this node only.
func (it *Item) Leakage() float64 { return it.SubLeak + it.GateLeak }

// Peak returns peak total power (W) of this node only.
func (it *Item) Peak() float64 { return it.PeakDynamic + it.Leakage() }

// Runtime returns runtime total power (W) of this node only, net of any
// power-gating savings.
func (it *Item) Runtime() float64 { return it.RuntimeDynamic + it.Leakage() - it.LeakSaved }

// Rollup recomputes this node's totals as the sum of its (recursively
// rolled-up) children plus any amounts already stored on the node itself
// ("self" contributions such as glue logic). Rollup is idempotent: a node
// whose totals already include its children is left untouched, so report
// builders at different levels can each call it safely. It returns the
// receiver.
func (it *Item) Rollup() *Item {
	if it.rolled {
		return it
	}
	for _, c := range it.Children {
		c.Rollup()
		it.Area += c.Area
		it.PeakDynamic += c.PeakDynamic
		it.RuntimeDynamic += c.RuntimeDynamic
		it.SubLeak += c.SubLeak
		it.GateLeak += c.GateLeak
		it.LeakSaved += c.LeakSaved
	}
	it.rolled = true
	return it
}

// Scale multiplies every quantity in the subtree by k (used to replicate a
// modeled-once component n times). Returns the receiver.
func (it *Item) Scale(k float64) *Item {
	it.Area *= k
	it.PeakDynamic *= k
	it.RuntimeDynamic *= k
	it.SubLeak *= k
	it.GateLeak *= k
	it.LeakSaved *= k
	for _, c := range it.Children {
		c.Scale(k)
	}
	return it
}

// Retune applies score-time operating-point factors across the subtree:
// subthreshold leakage — and the power-gating savings derived from it —
// scales by leakScale (the temperature/voltage leakage retune), and the
// runtime dynamic column scales by dynScale (the DVFS frequency/voltage
// derate). Gate leakage is only weakly temperature dependent and the
// peak-dynamic TDP column describes the nominal operating point, so both
// are left untouched. Retune is linear, so it is safe on rolled-up trees:
// parent totals and child sums scale together. Returns the receiver.
func (it *Item) Retune(leakScale, dynScale float64) *Item {
	it.SubLeak *= leakScale
	it.LeakSaved *= leakScale
	it.RuntimeDynamic *= dynScale
	for _, c := range it.Children {
		c.Retune(leakScale, dynScale)
	}
	return it
}

// Clone returns a deep copy of the subtree.
func (it *Item) Clone() *Item {
	cp := *it
	cp.Children = make([]*Item, len(it.Children))
	for i, c := range it.Children {
		cp.Children[i] = c.Clone()
	}
	return &cp
}

// Find returns the first descendant (depth-first, including the receiver)
// whose name matches, or nil.
func (it *Item) Find(name string) *Item {
	if it.Name == name {
		return it
	}
	for _, c := range it.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// FromPAT converts a component model result into a leaf report item.
// peak and runtime give the activity vectors for the two power columns;
// pass a zero Activity for runtime when no statistics are available.
func FromPAT(name string, p PAT, peak, runtime Activity) *Item {
	return &Item{
		Name:           name,
		Area:           p.Area,
		PeakDynamic:    p.Energy.DynamicPower(peak),
		RuntimeDynamic: p.Energy.DynamicPower(runtime),
		SubLeak:        p.Static.Sub,
		GateLeak:       p.Static.Gate,
	}
}

// String renders the full tree.
func (it *Item) String() string {
	var b strings.Builder
	it.write(&b, 0, -1)
	return b.String()
}

// Format renders the tree down to maxDepth levels (0 = just this node,
// negative = unlimited), in the indented style of McPAT's console output.
func (it *Item) Format(maxDepth int) string {
	var b strings.Builder
	it.write(&b, 0, maxDepth)
	return b.String()
}

func (it *Item) write(b *strings.Builder, depth, maxDepth int) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s:\n", ind, it.Name)
	fmt.Fprintf(b, "%s  Area = %.4f mm^2\n", ind, it.Area*1e6)
	fmt.Fprintf(b, "%s  Peak Dynamic = %.4f W\n", ind, it.PeakDynamic)
	fmt.Fprintf(b, "%s  Subthreshold Leakage = %.4f W\n", ind, it.SubLeak)
	fmt.Fprintf(b, "%s  Gate Leakage = %.4f W\n", ind, it.GateLeak)
	if it.RuntimeDynamic > 0 {
		fmt.Fprintf(b, "%s  Runtime Dynamic = %.4f W\n", ind, it.RuntimeDynamic)
	}
	if maxDepth >= 0 && depth >= maxDepth {
		return
	}
	for _, c := range it.Children {
		c.write(b, depth+1, maxDepth)
	}
}

// SortChildrenByPeak orders children by descending peak power, for
// readable breakdowns.
func (it *Item) SortChildrenByPeak() {
	sort.SliceStable(it.Children, func(i, j int) bool {
		return it.Children[i].Peak() > it.Children[j].Peak()
	})
}
