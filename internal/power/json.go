package power

import (
	"encoding/json"
	"io"
)

// jsonItem is the serialized form of a report node. Power is in watts and
// area in mm^2, the units external tooling expects.
type jsonItem struct {
	Name          string     `json:"name"`
	AreaMM2       float64    `json:"area_mm2"`
	PeakDynamicW  float64    `json:"peak_dynamic_w"`
	RuntimeDynW   float64    `json:"runtime_dynamic_w,omitempty"`
	SubLeakW      float64    `json:"subthreshold_leakage_w"`
	GateLeakW     float64    `json:"gate_leakage_w"`
	LeakSavedW    float64    `json:"gated_leakage_w,omitempty"`
	PeakTotalW    float64    `json:"peak_total_w"`
	RuntimeTotalW float64    `json:"runtime_total_w,omitempty"`
	Children      []jsonItem `json:"children,omitempty"`
}

func (it *Item) toJSON() jsonItem {
	j := jsonItem{
		Name:         it.Name,
		AreaMM2:      it.Area * 1e6,
		PeakDynamicW: it.PeakDynamic,
		RuntimeDynW:  it.RuntimeDynamic,
		SubLeakW:     it.SubLeak,
		GateLeakW:    it.GateLeak,
		LeakSavedW:   it.LeakSaved,
		PeakTotalW:   it.Peak(),
	}
	if it.RuntimeDynamic > 0 {
		j.RuntimeTotalW = it.Runtime()
	}
	for _, c := range it.Children {
		j.Children = append(j.Children, c.toJSON())
	}
	return j
}

// MarshalJSON serializes the report tree with engineering units (watts,
// mm^2), so downstream tooling does not need to know the internal SI
// conventions.
func (it *Item) MarshalJSON() ([]byte, error) {
	return json.Marshal(it.toJSON())
}

// WriteJSON writes the indented JSON form of the subtree.
func (it *Item) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(it)
}
