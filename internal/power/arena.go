package power

// Arena is a bump allocator for report Items, built for callers that
// score the same synthesized chip many times in a row (the time-series
// trace engine scores one report tree per statistics interval). A Score
// pass allocates a few hundred Items and child slices; with an arena
// those come from reusable chunks instead of the heap, so a long trace
// produces near-zero garbage after the first interval.
//
// Lifetime contract: every Item and Children slice handed out by an
// arena is valid only until the next Reset. Callers must extract the
// numbers they need (or Clone the tree) before resetting. The zero
// Arena is ready to use; a nil *Arena falls back to ordinary heap
// allocation, so one code path serves both the arena-backed trace loop
// and the regular heap-backed Report — which is what keeps the two
// bit-identical by construction.
//
// An Arena is not safe for concurrent use.
type Arena struct {
	chunks [][]Item // item slabs, each of length arenaItemChunk
	ci, iu int      // current chunk index and items used within it

	pchunks [][]*Item // pointer slabs backing Children slices
	pi, pu  int       // current pointer chunk index and slots used
}

const (
	arenaItemChunk = 256
	arenaPtrChunk  = 1024
)

// Reset makes every previously allocated Item and Children slice
// available for reuse. Retained chunks keep their capacity, so a
// steady-state caller stops allocating entirely.
func (a *Arena) Reset() {
	a.ci, a.iu, a.pi, a.pu = 0, 0, 0, 0
}

// alloc returns one zeroed Item from the slab.
func (a *Arena) alloc() *Item {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Item, arenaItemChunk))
	}
	it := &a.chunks[a.ci][a.iu]
	a.iu++
	if a.iu == arenaItemChunk {
		a.ci++
		a.iu = 0
	}
	*it = Item{}
	return it
}

// children returns a zero-length slice with capacity n backed by the
// pointer slab. Appending beyond n safely spills to the heap (append
// reallocates), so a builder that underestimates its fan-out stays
// correct — it just loses the reuse for that one slice.
func (a *Arena) children(n int) []*Item {
	if n <= 0 {
		return nil
	}
	if n > arenaPtrChunk {
		return make([]*Item, 0, n)
	}
	if a.pi < len(a.pchunks) && a.pu+n > arenaPtrChunk {
		a.pi++
		a.pu = 0
	}
	if a.pi == len(a.pchunks) {
		a.pchunks = append(a.pchunks, make([]*Item, arenaPtrChunk))
	}
	s := a.pchunks[a.pi][a.pu : a.pu : a.pu+n]
	a.pu += n
	return s
}

// NewItem returns a named, empty report node from the arena; a nil
// receiver allocates on the heap exactly like the package-level NewItem.
func (a *Arena) NewItem(name string) *Item {
	if a == nil {
		return NewItem(name)
	}
	it := a.alloc()
	it.Name = name
	return it
}

// NewItemN returns a named report node with capacity for n children,
// the arena counterpart of the package-level NewItemN.
func (a *Arena) NewItemN(name string, n int) *Item {
	if a == nil {
		return NewItemN(name, n)
	}
	it := a.alloc()
	it.Name = name
	it.Children = a.children(n)
	return it
}

// FromPAT converts a component model result into a leaf report item,
// the arena counterpart of the package-level FromPAT.
func (a *Arena) FromPAT(name string, p PAT, peak, runtime Activity) *Item {
	if a == nil {
		return FromPAT(name, p, peak, runtime)
	}
	it := a.alloc()
	it.Name = name
	it.Area = p.Area
	it.PeakDynamic = p.Energy.DynamicPower(peak)
	it.RuntimeDynamic = p.Energy.DynamicPower(runtime)
	it.SubLeak = p.Static.Sub
	it.GateLeak = p.Static.Gate
	return it
}
