package power

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStaticAddScaleTotal(t *testing.T) {
	s := Static{Sub: 1, Gate: 2}
	if got := s.Total(); got != 3 {
		t.Errorf("Total = %v, want 3", got)
	}
	sum := s.Add(Static{Sub: 0.5, Gate: 0.25})
	if sum.Sub != 1.5 || sum.Gate != 2.25 {
		t.Errorf("Add = %+v", sum)
	}
	sc := s.Scale(2)
	if sc.Sub != 2 || sc.Gate != 4 {
		t.Errorf("Scale = %+v", sc)
	}
}

func TestEnergyDynamicPower(t *testing.T) {
	e := Energy{Read: 1e-12, Write: 2e-12, Search: 4e-12}
	a := Activity{Reads: 1e9, Writes: 0.5e9, Searches: 0.25e9}
	got := e.DynamicPower(a)
	want := 1e-3 + 1e-3 + 1e-3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("DynamicPower = %v, want %v", got, want)
	}
}

func TestPATCycleTime(t *testing.T) {
	p := PAT{Delay: 2e-9}
	if p.CycleTime() != 2e-9 {
		t.Errorf("CycleTime fallback = %v", p.CycleTime())
	}
	p.Cycle = 1e-9
	if p.CycleTime() != 1e-9 {
		t.Errorf("CycleTime explicit = %v", p.CycleTime())
	}
}

func buildTree() *Item {
	root := NewItem("chip")
	core := NewItem("core")
	core.Add(
		&Item{Name: "ifu", Area: 1, PeakDynamic: 2, SubLeak: 0.5, GateLeak: 0.1},
		&Item{Name: "exu", Area: 2, PeakDynamic: 3, SubLeak: 0.7, GateLeak: 0.2, RuntimeDynamic: 1.5},
	)
	root.Add(core, &Item{Name: "l2", Area: 4, PeakDynamic: 1, SubLeak: 1.0, GateLeak: 0.3})
	return root
}

func TestRollup(t *testing.T) {
	root := buildTree().Rollup()
	if root.Area != 7 {
		t.Errorf("Area = %v, want 7", root.Area)
	}
	if root.PeakDynamic != 6 {
		t.Errorf("PeakDynamic = %v, want 6", root.PeakDynamic)
	}
	if math.Abs(root.SubLeak-2.2) > 1e-12 || math.Abs(root.GateLeak-0.6) > 1e-12 {
		t.Errorf("leakage = %v/%v", root.SubLeak, root.GateLeak)
	}
	if root.RuntimeDynamic != 1.5 {
		t.Errorf("RuntimeDynamic = %v", root.RuntimeDynamic)
	}
	if got, want := root.Peak(), 6+2.2+0.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("Peak = %v, want %v", got, want)
	}
}

func TestRollupKeepsSelfContribution(t *testing.T) {
	root := NewItem("x")
	root.PeakDynamic = 1 // self / glue power
	root.Add(&Item{Name: "c", PeakDynamic: 2})
	root.Rollup()
	if root.PeakDynamic != 3 {
		t.Errorf("self contribution lost: %v", root.PeakDynamic)
	}
}

func TestFindAndClone(t *testing.T) {
	root := buildTree()
	if root.Find("exu") == nil {
		t.Fatal("Find(exu) = nil")
	}
	if root.Find("missing") != nil {
		t.Fatal("Find(missing) != nil")
	}
	cp := root.Clone()
	cp.Find("exu").PeakDynamic = 99
	if root.Find("exu").PeakDynamic == 99 {
		t.Error("Clone is not deep")
	}
}

func TestScale(t *testing.T) {
	root := buildTree().Rollup()
	peak := root.PeakDynamic
	root.Scale(3)
	if math.Abs(root.PeakDynamic-3*peak) > 1e-12 {
		t.Errorf("Scale: got %v want %v", root.PeakDynamic, 3*peak)
	}
	if got := root.Find("ifu").Area; got != 3 {
		t.Errorf("Scale not recursive: ifu area %v", got)
	}
}

func TestFromPAT(t *testing.T) {
	p := PAT{
		Energy: Energy{Read: 1e-12, Write: 2e-12},
		Static: Static{Sub: 0.1, Gate: 0.05},
		Area:   1e-6,
	}
	it := FromPAT("buf", p, Activity{Reads: 1e9}, Activity{Reads: 5e8})
	if math.Abs(it.PeakDynamic-1e-3) > 1e-15 {
		t.Errorf("PeakDynamic = %v", it.PeakDynamic)
	}
	if math.Abs(it.RuntimeDynamic-0.5e-3) > 1e-15 {
		t.Errorf("RuntimeDynamic = %v", it.RuntimeDynamic)
	}
	if it.SubLeak != 0.1 || it.GateLeak != 0.05 || it.Area != 1e-6 {
		t.Errorf("leaf fields wrong: %+v", it)
	}
}

func TestFormatDepthLimit(t *testing.T) {
	root := buildTree().Rollup()
	top := root.Format(0)
	if strings.Contains(top, "ifu") {
		t.Error("depth 0 should not include grandchildren")
	}
	full := root.Format(-1)
	for _, name := range []string{"chip", "core", "ifu", "exu", "l2"} {
		if !strings.Contains(full, name) {
			t.Errorf("full format missing %q", name)
		}
	}
	if !strings.Contains(full, "mm^2") {
		t.Error("format should report area in mm^2")
	}
}

func TestSortChildrenByPeak(t *testing.T) {
	root := buildTree()
	for _, c := range root.Children {
		c.Rollup()
	}
	root.SortChildrenByPeak()
	if root.Children[0].Name != "core" {
		t.Errorf("expected core first, got %s", root.Children[0].Name)
	}
}

func TestQuickRollupAdditive(t *testing.T) {
	// Property: rollup total equals sum of leaf values regardless of the
	// tree shape (here: a root with n leaves).
	f := func(vals []float64) bool {
		root := NewItem("r")
		var want float64
		for _, v := range vals {
			v = math.Abs(v)
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return true
			}
			v = math.Mod(v, 1e6) // keep sums finite
			root.Add(&Item{Name: "leaf", PeakDynamic: v})
			want += v
		}
		root.Rollup()
		return math.Abs(root.PeakDynamic-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJSONExport(t *testing.T) {
	root := buildTree().Rollup()
	var buf strings.Builder
	if err := root.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["name"] != "chip" {
		t.Errorf("name = %v", decoded["name"])
	}
	// Area serialized in mm^2: 7 m^2 -> 7e6 mm^2.
	if got := decoded["area_mm2"].(float64); got != 7e6 {
		t.Errorf("area_mm2 = %v", got)
	}
	if got := decoded["peak_total_w"].(float64); got <= 0 {
		t.Errorf("peak_total_w = %v", got)
	}
	kids := decoded["children"].([]any)
	if len(kids) != 2 {
		t.Errorf("children = %d", len(kids))
	}
}

func TestJSONOmitsRuntimeWhenAbsent(t *testing.T) {
	leaf := &Item{Name: "x", PeakDynamic: 1}
	b, err := json.Marshal(leaf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "runtime_total_w") {
		t.Error("runtime fields must be omitted without statistics")
	}
}
