// Package circuit implements McPAT's circuit-level building blocks: CMOS
// gate delay (Horowitz approximation and Elmore RC), logical-effort buffer
// chains, optimally repeated global wires, flip-flops, and switching-energy
// helpers. All architecture-level models reduce to compositions of these
// primitives plus the memory arrays in package array.
package circuit

import (
	"math"

	"mcpat/internal/tech"
)

// Ctx binds a technology node to one device class so circuit formulas can
// be written against a single parameter set.
type Ctx struct {
	Node *tech.Node
	Dev  tech.Device
}

// NewCtx builds a circuit context for the given node/device class.
func NewCtx(n *tech.Node, dt tech.DeviceType, longChannel bool) Ctx {
	return Ctx{Node: n, Dev: n.Device(dt, longChannel)}
}

// Vdd returns the context supply voltage.
func (c *Ctx) Vdd() float64 { return c.Dev.Vdd }

// SwitchE returns the energy drawn from the supply to switch capacitance
// cap through a full output transition: 1/2 C V^2. Callers account for the
// number of transitions per operation.
func (c *Ctx) SwitchE(cap float64) float64 { return 0.5 * cap * c.Dev.Vdd * c.Dev.Vdd }

// FullSwingE returns C*V^2, the energy of a complete charge/discharge
// cycle (e.g. a precharged bitline pair accessed every operation).
func (c *Ctx) FullSwingE(cap float64) float64 { return cap * c.Dev.Vdd * c.Dev.Vdd }

// InvCin returns the input capacitance of an inverter with NMOS width wn
// and the standard 2:1 P:N ratio.
func (c *Ctx) InvCin(wn float64) float64 { return 3 * wn * c.Dev.CgPerW }

// InvCself returns the parasitic drain capacitance of the same inverter.
func (c *Ctx) InvCself(wn float64) float64 { return 3 * wn * c.Dev.CjPerW }

// InvDelay returns the Elmore delay of an inverter of NMOS width wn
// driving load cload (s).
func (c *Ctx) InvDelay(wn, cload float64) float64 {
	r := c.Dev.REqN(wn)
	return 0.69 * r * (cload + c.InvCself(wn))
}

// InvLeak returns the static power of one inverter of NMOS width wn at the
// node temperature.
func (c *Ctx) InvLeak(wn float64) (subW, gateW float64) {
	wp := 2 * wn
	isub := c.Dev.Ioff(wn, wp, c.Node.Temperature)
	ig := c.Dev.Ig(wn + wp)
	return isub * c.Dev.Vdd, ig * c.Dev.Vdd
}

// FO4 is the fanout-of-4 delay of this context.
func (c *Ctx) FO4() float64 {
	wn := c.Node.MinWidthN()
	return 0.69 * c.Dev.REqN(wn) * (4*c.InvCin(wn) + c.InvCself(wn))
}

// Horowitz computes gate delay including the input slope effect.
// inputRamp is the 10-90% transition time of the input, tf the intrinsic
// RC time constant of the gate, vs the switching threshold as a fraction
// of Vdd.
func Horowitz(inputRamp, tf, vs float64) float64 {
	if inputRamp <= 0 {
		return tf * math.Sqrt(math.Log(vs)*math.Log(vs))
	}
	a := inputRamp / tf
	return tf * math.Sqrt(math.Log(vs)*math.Log(vs)+2*a*0.5*(1-vs))
}

// Chain describes a logical-effort buffer chain driving a large load.
type Chain struct {
	Stages   int
	Delay    float64 // s
	Energy   float64 // J per output transition (all stages)
	SubLeak  float64 // W
	GateLeak float64
	Area     float64 // m^2
	Cin      float64 // input capacitance presented to the driver (F)
}

// transistorArea approximates layout area of a transistor of width w:
// width times a 4F channel+contact pitch, doubled for wiring overhead.
func (c *Ctx) transistorArea(w float64) float64 {
	return 2 * w * 4 * c.Node.Feature
}

// BufferChain sizes a chain of inverters with stage effort ~4 to drive
// cload starting from a minimum-size first stage, the standard driver
// model for wordlines, predecoders, and output drivers.
func (c *Ctx) BufferChain(cload float64) Chain {
	wmin := c.Node.MinWidthN()
	cin := c.InvCin(wmin)
	if cload <= cin {
		sub, gate := c.InvLeak(wmin)
		return Chain{
			Stages: 1, Delay: c.InvDelay(wmin, cload),
			Energy:  c.SwitchE(cload + c.InvCself(wmin)),
			SubLeak: sub, GateLeak: gate,
			Area: c.transistorArea(3 * wmin), Cin: cin,
		}
	}
	f := cload / cin
	n := int(math.Max(1, math.Round(math.Log(f)/math.Log(4))))
	stageF := math.Pow(f, 1/float64(n))
	ch := Chain{Stages: n, Cin: cin}
	w := wmin
	for i := 0; i < n; i++ {
		next := cload
		if i < n-1 {
			next = c.InvCin(w * stageF)
		}
		ch.Delay += c.InvDelay(w, next)
		ch.Energy += c.SwitchE(next + c.InvCself(w))
		sub, gate := c.InvLeak(w)
		ch.SubLeak += sub
		ch.GateLeak += gate
		ch.Area += c.transistorArea(3 * w)
		w *= stageF
	}
	return ch
}

// WireResult describes a (possibly repeated) wire of a concrete length.
type WireResult struct {
	Delay        float64 // s end to end
	EnergyPerBit float64 // J per transition of one bit line
	SubLeak      float64 // W (repeaters)
	GateLeak     float64 // W
	Area         float64 // m^2 (repeater area; wire itself is over-cell routing)
	Repeaters    int
	RepeaterSize float64 // NMOS width multiple of minimum
}

// RepeatedWire inserts delay-optimal repeaters into a wire of the given
// class and length and returns its delay/energy/leakage. For very short
// wires (shorter than one optimal segment) the wire is driven directly by
// a single buffer.
func (c *Ctx) RepeatedWire(w tech.Wire, length float64) WireResult {
	if length <= 0 {
		return WireResult{}
	}
	wmin := c.Node.MinWidthN()
	r0 := c.Dev.REqN(wmin)
	c0 := c.InvCin(wmin)
	cp := c.InvCself(wmin)
	// Classic Bakoglu optimal repeater insertion.
	lopt := math.Sqrt(2 * r0 * (c0 + cp) / (w.ResPerM * w.CapPerM))
	hopt := math.Sqrt(r0 * w.CapPerM / (w.ResPerM * c0))
	n := int(math.Max(1, math.Round(length/lopt)))
	seg := length / float64(n)
	rw, cw := w.ResPerM*seg, w.CapPerM*seg
	rd := r0 / hopt
	cd := c0 * hopt
	cpd := cp * hopt
	segDelay := 0.69*(rd*(cpd+cw+cd)) + 0.69*rw*(cw/2+cd)
	energy := float64(n) * c.SwitchE(cw+cd+cpd)
	sub, gate := c.InvLeak(wmin * hopt)
	return WireResult{
		Delay:        float64(n) * segDelay,
		EnergyPerBit: energy,
		SubLeak:      float64(n) * sub,
		GateLeak:     float64(n) * gate,
		Area:         float64(n) * c.transistorArea(3*wmin*hopt),
		Repeaters:    n,
		RepeaterSize: hopt,
	}
}

// UnrepeatedWireDelay returns the Elmore delay of a plain RC wire of the
// given class and length driven by resistance rdrive into load cload.
func UnrepeatedWireDelay(w tech.Wire, length, rdrive, cload float64) float64 {
	rw, cw := w.ResPerM*length, w.CapPerM*length
	return 0.69 * (rdrive*(cw+cload) + rw*(cw/2+cload))
}

// DFF describes a single edge-triggered flip-flop bit.
type DFF struct {
	EnergyClk  float64 // J per clock transition (clock load of one FF)
	EnergyData float64 // J per data transition
	SubLeak    float64 // W
	GateLeak   float64 // W
	Area       float64 // m^2
	ClkCap     float64 // F presented to the clock network
}

// NewDFF returns the flip-flop model of this context: a standard
// transmission-gate master/slave FF of roughly 20 minimum transistors.
func (c *Ctx) NewDFF() DFF {
	wmin := c.Node.MinWidthN()
	// Clock drives 4 transmission gates + 2 local inverters: ~8 min widths.
	clkCap := 8 * wmin * c.Dev.CgPerW
	// A data toggle switches ~6 internal nodes of ~min inverter size.
	dataCap := 6 * (c.InvCin(wmin)/3 + c.InvCself(wmin)/3)
	sub := c.Dev.Ioff(8*wmin, 8*wmin, c.Node.Temperature) * c.Dev.Vdd
	gate := c.Dev.Ig(16*wmin) * c.Dev.Vdd
	return DFF{
		EnergyClk:  c.SwitchE(clkCap),
		EnergyData: c.SwitchE(dataCap),
		SubLeak:    sub,
		GateLeak:   gate,
		Area:       c.Node.DFFCellArea,
		ClkCap:     clkCap,
	}
}

// PipelineWire pipelines a long repeated wire so each stage fits in the
// given cycle time, returning the wire result plus the flip-flop overhead
// per bit and the number of pipeline stages.
func (c *Ctx) PipelineWire(w tech.Wire, length, cycle float64) (WireResult, DFF, int) {
	res := c.RepeatedWire(w, length)
	stages := 1
	if cycle > 0 && res.Delay > cycle {
		stages = int(math.Ceil(res.Delay / cycle))
	}
	return res, c.NewDFF(), stages
}

// LowSwingWire models a differential low-swing interconnect: the driver
// swings the wire pair by only ~100 mV around a common mode and a
// sense-amplifier receiver restores full swing. Energy drops by roughly
// Vdd/Vswing versus a full-swing repeated wire at the cost of receiver
// latency and the inability to insert repeaters (the line is a single RC
// span), which limits practical length. This is CACTI's low-swing wire
// option, which McPAT applies to long, wide buses.
func (c *Ctx) LowSwingWire(w tech.Wire, length float64) WireResult {
	if length <= 0 {
		return WireResult{}
	}
	const vSwing = 0.1 // V differential swing

	wmin := c.Node.MinWidthN()
	// Large driver for the long unrepeated line.
	drvW := 40 * wmin
	rDrv := c.Dev.REqN(drvW)
	// Differential pair: two wires, each at the given class's RC.
	cw := w.CapPerM * length
	rw := w.ResPerM * length

	// Delay: RC flight of the unrepeated span plus sense-amp resolution
	// (~3 FO4). The 0.38 factor is the distributed-RC constant to 50%.
	delay := 0.69*rDrv*cw + 0.38*rw*cw + 3*c.FO4()

	// Energy: the pair is charged by vSwing from Vdd-referenced drivers:
	// E = C * Vdd * Vswing per transition per wire, both wires of the
	// pair move, plus the sense amp's full-swing internal nodes.
	cSA := 10 * wmin * c.Dev.CgPerW
	energy := 2*cw*c.Dev.Vdd*vSwing + c.FullSwingE(cSA)

	sub, gate := c.InvLeak(drvW)
	subSA, gateSA := c.InvLeak(4 * wmin)
	return WireResult{
		Delay:        delay,
		EnergyPerBit: energy,
		SubLeak:      sub + subSA,
		GateLeak:     gate + gateSA,
		Area:         c.transistorArea(3*drvW) + c.transistorArea(12*wmin),
		Repeaters:    0,
		RepeaterSize: float64(drvW / wmin),
	}
}
