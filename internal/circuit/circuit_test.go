package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

func ctx90() Ctx { return NewCtx(techtest.Node(90), tech.HP, false) }

func TestFO4MatchesNode(t *testing.T) {
	c := ctx90()
	want := c.Node.FO4(tech.HP, false)
	if got := c.FO4(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("Ctx.FO4 = %v, node FO4 = %v", got, want)
	}
}

func TestSwitchEnergy(t *testing.T) {
	c := ctx90()
	cap := 1e-15
	want := 0.5 * cap * c.Vdd() * c.Vdd()
	if got := c.SwitchE(cap); math.Abs(got-want) > 1e-24 {
		t.Errorf("SwitchE = %v, want %v", got, want)
	}
	if got := c.FullSwingE(cap); math.Abs(got-2*want) > 1e-24 {
		t.Errorf("FullSwingE = %v, want %v", got, 2*want)
	}
}

func TestHorowitz(t *testing.T) {
	tf := 10e-12
	d0 := Horowitz(0, tf, 0.5)
	d1 := Horowitz(20e-12, tf, 0.5)
	if d1 <= d0 {
		t.Errorf("slow input ramp must increase delay: %v <= %v", d1, d0)
	}
	if d0 <= 0 {
		t.Errorf("zero-ramp delay must be positive: %v", d0)
	}
}

func TestBufferChainSmallLoad(t *testing.T) {
	c := ctx90()
	ch := c.BufferChain(c.InvCin(c.Node.MinWidthN()) / 2)
	if ch.Stages != 1 {
		t.Errorf("small load should need 1 stage, got %d", ch.Stages)
	}
	if ch.Delay <= 0 || ch.Energy <= 0 || ch.Area <= 0 {
		t.Errorf("non-positive chain outputs: %+v", ch)
	}
}

func TestBufferChainLargeLoad(t *testing.T) {
	c := ctx90()
	cin := c.InvCin(c.Node.MinWidthN())
	small := c.BufferChain(10 * cin)
	big := c.BufferChain(10000 * cin)
	if big.Stages <= small.Stages {
		t.Errorf("stages should grow with load: %d <= %d", big.Stages, small.Stages)
	}
	if big.Delay <= small.Delay || big.Energy <= small.Energy {
		t.Errorf("delay/energy should grow with load")
	}
	// Logical effort: delay per stage should be a handful of FO4.
	perStage := big.Delay / float64(big.Stages)
	if perStage > 3*c.FO4() || perStage < 0.3*c.FO4() {
		t.Errorf("per-stage delay %v outside [0.3, 3] FO4 (%v)", perStage, c.FO4())
	}
}

func TestRepeatedWireLinearDelayInLength(t *testing.T) {
	c := ctx90()
	w := c.Node.Wire(tech.Aggressive, tech.Global)
	d1 := c.RepeatedWire(w, 1e-3)  // 1 mm
	d10 := c.RepeatedWire(w, 1e-2) // 10 mm
	ratio := d10.Delay / d1.Delay
	if ratio < 8 || ratio > 12.5 {
		t.Errorf("repeated wire delay should be ~linear in length, ratio = %v", ratio)
	}
	// Sane magnitude: ~50-500 ps/mm for 90nm global repeated wire.
	psPerMM := d1.Delay * 1e12
	if psPerMM < 20 || psPerMM > 700 {
		t.Errorf("1mm repeated wire delay = %v ps, implausible", psPerMM)
	}
	if d10.Repeaters <= d1.Repeaters {
		t.Error("longer wire needs more repeaters")
	}
	if d1.EnergyPerBit <= 0 {
		t.Error("wire energy must be positive")
	}
}

func TestRepeatedWireZeroLength(t *testing.T) {
	c := ctx90()
	w := c.Node.Wire(tech.Aggressive, tech.Global)
	res := c.RepeatedWire(w, 0)
	if res.Delay != 0 || res.EnergyPerBit != 0 {
		t.Errorf("zero-length wire should be free: %+v", res)
	}
}

func TestRepeatedWireBeatsUnrepeated(t *testing.T) {
	c := ctx90()
	w := c.Node.Wire(tech.Aggressive, tech.Global)
	length := 5e-3
	rep := c.RepeatedWire(w, length)
	wmin := c.Node.MinWidthN()
	unrep := UnrepeatedWireDelay(w, length, c.Dev.REqN(16*wmin), c.InvCin(wmin))
	if rep.Delay >= unrep {
		t.Errorf("repeated wire (%v) should beat plain RC wire (%v) at 5mm", rep.Delay, unrep)
	}
}

func TestDFFPlausible(t *testing.T) {
	c := ctx90()
	ff := c.NewDFF()
	if ff.EnergyClk <= 0 || ff.EnergyData <= 0 || ff.Area <= 0 || ff.ClkCap <= 0 {
		t.Fatalf("non-positive DFF fields: %+v", ff)
	}
	// 90nm FF switching energy should be on the order of 0.1-10 fJ.
	fj := ff.EnergyClk / 1e-15
	if fj < 0.05 || fj > 20 {
		t.Errorf("DFF clock energy = %v fJ, implausible", fj)
	}
}

func TestPipelineWire(t *testing.T) {
	c := ctx90()
	w := c.Node.Wire(tech.Aggressive, tech.Global)
	res, ff, stages := c.PipelineWire(w, 2e-2, 0.5e-9) // 20mm at 2GHz
	if stages < 2 {
		t.Errorf("20mm wire at 2 GHz must be pipelined, stages = %d", stages)
	}
	if ff.Area <= 0 || res.Delay <= 0 {
		t.Error("pipeline wire outputs must be positive")
	}
	_, _, one := c.PipelineWire(w, 1e-4, 0.5e-9)
	if one != 1 {
		t.Errorf("0.1mm wire should not be pipelined, stages = %d", one)
	}
}

func TestWireDelayImprovesWithBetterDevices(t *testing.T) {
	n := techtest.Node(45)
	w := n.Wire(tech.Aggressive, tech.Global)
	hpCtx := NewCtx(n, tech.HP, false)
	lstpCtx := NewCtx(n, tech.LSTP, false)
	hp := hpCtx.RepeatedWire(w, 5e-3)
	lstp := lstpCtx.RepeatedWire(w, 5e-3)
	if hp.Delay >= lstp.Delay {
		t.Errorf("HP repeaters (%v) should be faster than LSTP (%v)", hp.Delay, lstp.Delay)
	}
}

func TestQuickBufferChainMonotoneInLoad(t *testing.T) {
	c := ctx90()
	cin := c.InvCin(c.Node.MinWidthN())
	f := func(a, b uint16) bool {
		l1 := cin * (1 + float64(a))
		l2 := l1 + cin*(1+float64(b))
		c1, c2 := c.BufferChain(l1), c.BufferChain(l2)
		return c2.Energy >= c1.Energy*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickRepeatedWirePositive(t *testing.T) {
	c := ctx90()
	w := c.Node.Wire(tech.Conservative, tech.SemiGlobal)
	f := func(mm uint8) bool {
		l := float64(mm%50+1) * 1e-3
		r := c.RepeatedWire(w, l)
		return r.Delay > 0 && r.EnergyPerBit > 0 && r.SubLeak > 0 && r.Area > 0 && r.Repeaters >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLowSwingWireSavesEnergy(t *testing.T) {
	c := ctx90()
	w := c.Node.Wire(tech.Aggressive, tech.Global)
	length := 5e-3
	full := c.RepeatedWire(w, length)
	low := c.LowSwingWire(w, length)
	t.Logf("5mm @90nm: full-swing %.1f fJ/bit %.0f ps | low-swing %.1f fJ/bit %.0f ps",
		full.EnergyPerBit*1e15, full.Delay*1e12, low.EnergyPerBit*1e15, low.Delay*1e12)
	// The headline trade: several-fold energy saving...
	if low.EnergyPerBit >= full.EnergyPerBit/2 {
		t.Errorf("low swing (%.3g) should save >2x over full swing (%.3g)",
			low.EnergyPerBit, full.EnergyPerBit)
	}
	// ...at a latency cost (no repeaters on the span).
	if low.Delay <= full.Delay {
		t.Errorf("low swing (%.3g) should be slower than repeated full swing (%.3g)",
			low.Delay, full.Delay)
	}
	if low.Repeaters != 0 {
		t.Error("low-swing spans carry no repeaters")
	}
}

func TestLowSwingWireZeroLength(t *testing.T) {
	c := ctx90()
	w := c.Node.Wire(tech.Aggressive, tech.Global)
	if r := c.LowSwingWire(w, 0); r.Delay != 0 || r.EnergyPerBit != 0 {
		t.Errorf("zero-length low-swing wire must be free: %+v", r)
	}
}
