// Package gem5 maps a native gem5 configuration dump (config.json) onto
// the chip model, template-free: the fields gem5 records — CPU count and
// clock domain, O3 pipeline widths and buffer depths, branch predictor
// tables, TLBs, private cache geometry, the shared L2, memory
// controllers — are read straight from the JSON object tree, and every
// remaining knob falls back to a processor-class preset matched to the
// CPU type. The mapper keeps per-field provenance notes so a user can
// see exactly which parameters came from the simulation and which were
// defaulted.
//
// The reader is fuzz-hardened: malformed JSON, missing subtrees, and
// non-finite or absurd numeric values surface as guard.ErrConfig with a
// dotted path into the document — never as a panic.
package gem5

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"mcpat/internal/cache"
	"mcpat/internal/chip"
	"mcpat/internal/core"
	"mcpat/internal/guard"
	"mcpat/internal/presets"
)

// Note records where one mapped configuration field came from: the
// config.json path that supplied it, or the preset that defaulted it.
type Note struct {
	Field  string `json:"field"`  // chip.Config field, dotted (e.g. "Core.ROBEntries")
	Value  string `json:"value"`  // the value in effect
	Source string `json:"source"` // "config.json <path>" or "default (preset <name>)"
}

// Result is a mapped gem5 configuration: the native chip description
// plus the provenance trail.
type Result struct {
	Config chip.Config
	Notes  []Note

	// CPUType is the gem5 CPU class the mapping keyed off ("DerivO3CPU",
	// "TimingSimpleCPU", ...); empty when the dump does not record one.
	CPUType string
	// Preset is the processor-class preset that supplied the defaults.
	Preset string
}

// Map reads a gem5 config.json from r and maps it to a chip.Config.
func Map(r io.Reader) (*Result, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, guard.Wrap(guard.ErrConfig, "gem5.config", err)
	}
	return MapBytes(b)
}

// MapBytes is Map over an in-memory document.
func MapBytes(b []byte) (res *Result, err error) {
	defer guard.Recover(&err, "gem5.config")
	var root map[string]any
	dec := json.NewDecoder(bytes.NewReader(b))
	if err := dec.Decode(&root); err != nil {
		return nil, guard.Wrap(guard.ErrConfig, "gem5.config", err)
	}
	m := &mapper{root: root}
	return m.run()
}

type obj = map[string]any

type mapper struct {
	root   obj
	notes  []Note
	defSrc string // "default (preset <name>)"
}

func (m *mapper) note(field string, value any, source string) {
	m.notes = append(m.notes, Note{Field: field, Value: fmt.Sprint(value), Source: source})
}

func (m *mapper) run() (*Result, error) {
	sys, ok := asObj(m.root["system"])
	if !ok {
		return nil, guard.Configf("gem5.config.system", "no \"system\" object in config.json")
	}
	cpus, cpuPath := cpuList(sys)
	if len(cpus) == 0 {
		return nil, guard.Configf("gem5.config.system.cpu", "no CPU objects under system (looked for cpu, cpus, switch_cpus)")
	}
	cpu0, ok := asObj(cpus[0])
	if !ok {
		return nil, guard.Configf("gem5.config.system."+cpuPath, "CPU entry is not an object")
	}
	ctype, _ := asStr(cpu0["type"])

	// Pick the defaults preset from the CPU class: an out-of-order gem5
	// CPU maps onto the OoO x86-class template, anything else onto the
	// in-order one.
	ooo := strings.Contains(ctype, "O3")
	var pre presets.Preset
	if ooo {
		pre = presets.PenrynClass()
	} else {
		pre = presets.AtomClass()
	}
	m.defSrc = "default (preset " + pre.Name + ")"
	cfg := pre.Config
	cfg.Name = "gem5-import"
	cfg.Core.OoO = ooo
	cfg.NumCores = len(cpus)
	m.note("NumCores", len(cpus), "config.json system."+cpuPath)
	m.note("NM", cfg.NM, m.defSrc)
	m.note("Core.OoO", ooo, "config.json system."+cpuPath+".type="+ctype)

	hz, err := m.clockHz(cpu0, sys, "system."+cpuPath)
	if err != nil {
		return nil, err
	}
	if hz > 0 {
		cfg.ClockHz = hz
		m.note("ClockHz", hz, "config.json clk_domain.clock")
	} else {
		m.note("ClockHz", cfg.ClockHz, m.defSrc)
	}

	cp := "system." + cpuPath
	m.setInt(&cfg.Core.Threads, cpu0, "numThreads", cp, "Core.Threads")
	if ooo {
		m.setInt(&cfg.Core.FetchWidth, cpu0, "fetchWidth", cp, "Core.FetchWidth")
		m.setInt(&cfg.Core.DecodeWidth, cpu0, "decodeWidth", cp, "Core.DecodeWidth")
		m.setInt(&cfg.Core.IssueWidth, cpu0, "issueWidth", cp, "Core.IssueWidth")
		m.setInt(&cfg.Core.CommitWidth, cpu0, "commitWidth", cp, "Core.CommitWidth")
		m.setInt(&cfg.Core.ROBEntries, cpu0, "numROBEntries", cp, "Core.ROBEntries")
		m.setInt(&cfg.Core.IQEntries, cpu0, "numIQEntries", cp, "Core.IQEntries")
		m.setInt(&cfg.Core.PhysIntRegs, cpu0, "numPhysIntRegs", cp, "Core.PhysIntRegs")
		m.setInt(&cfg.Core.PhysFPRegs, cpu0, "numPhysFloatRegs", cp, "Core.PhysFPRegs")
		m.setInt(&cfg.Core.LQEntries, cpu0, "LQEntries", cp, "Core.LQEntries")
		m.setInt(&cfg.Core.SQEntries, cpu0, "SQEntries", cp, "Core.SQEntries")
	}
	if bp, ok := asObj(cpu0["branchPred"]); ok {
		bpPath := cp + ".branchPred"
		m.setInt(&cfg.Core.BTBEntries, bp, "BTBEntries", bpPath, "Core.BTBEntries")
		m.setInt(&cfg.Core.RASEntries, bp, "RASSize", bpPath, "Core.RASEntries")
		m.setInt(&cfg.Core.LocalPredEntries, bp, "localPredictorSize", bpPath, "Core.LocalPredEntries")
		m.setInt(&cfg.Core.GlobalPredEntries, bp, "globalPredictorSize", bpPath, "Core.GlobalPredEntries")
		m.setInt(&cfg.Core.ChooserEntries, bp, "choicePredictorSize", bpPath, "Core.ChooserEntries")
	}
	m.setTLB(&cfg.Core.ITLBEntries, cpu0, "itb", cp, "Core.ITLBEntries")
	m.setTLB(&cfg.Core.DTLBEntries, cpu0, "dtb", cp, "Core.DTLBEntries")
	m.setCache(&cfg.Core.ICache, cpu0, "icache", cp, "Core.ICache")
	m.setCache(&cfg.Core.DCache, cpu0, "dcache", cp, "Core.DCache")

	m.mapL2(&cfg, sys)
	m.mapMC(&cfg, sys)

	if err := validate(&cfg); err != nil {
		return nil, err
	}
	return &Result{Config: cfg, Notes: m.notes, CPUType: ctype, Preset: pre.Name}, nil
}

// setInt maps one positive-integer parameter, falling back (with a
// provenance note either way) to whatever *dst already holds.
func (m *mapper) setInt(dst *int, o obj, key, jsonPath, field string) {
	if v, ok := posInt(o[key]); ok {
		*dst = v
		m.note(field, v, "config.json "+jsonPath+"."+key)
		return
	}
	m.note(field, *dst, m.defSrc)
}

// setTLB maps a TLB entry count from cpu.<key>.size, following either an
// embedded object or (for gem5's MMU-era dumps) cpu.mmu.<key>.
func (m *mapper) setTLB(dst *int, cpu obj, key, cpuPath, field string) {
	tlb, ok := asObj(cpu[key])
	path := cpuPath + "." + key
	if !ok {
		if mmu, mok := asObj(cpu["mmu"]); mok {
			tlb, ok = asObj(mmu[key])
			path = cpuPath + ".mmu." + key
		}
	}
	if ok {
		if v, vok := posInt(tlb["size"]); vok {
			*dst = v
			m.note(field, v, "config.json "+path+".size")
			return
		}
	}
	m.note(field, *dst, m.defSrc)
}

// setCache maps a private cache's size/assoc/block geometry from an
// embedded cache object (or a dotted reference to one).
func (m *mapper) setCache(dst *core.CacheParams, cpu obj, key, cpuPath, field string) {
	c, path := m.deref(cpu[key], cpuPath+"."+key)
	if c == nil {
		m.note(field, fmt.Sprintf("%dB/%d-way", dst.Bytes, dst.Assoc), m.defSrc)
		return
	}
	if v, ok := posInt(c["size"]); ok {
		dst.Bytes = v
		m.note(field+".Bytes", v, "config.json "+path+".size")
	} else {
		m.note(field+".Bytes", dst.Bytes, m.defSrc)
	}
	if v, ok := posInt(c["assoc"]); ok {
		dst.Assoc = v
		m.note(field+".Assoc", v, "config.json "+path+".assoc")
	}
	if tags, ok := asObj(c["tags"]); ok {
		if v, ok := posInt(tags["block_size"]); ok {
			dst.BlockBytes = v
			m.note(field+".BlockBytes", v, "config.json "+path+".tags.block_size")
		}
	}
}

// mapL2 maps the shared L2 from the first of system.{l2,l2cache,l2_cache,
// l2caches}; without one, the preset L2 is kept.
func (m *mapper) mapL2(cfg *chip.Config, sys obj) {
	for _, key := range []string{"l2", "l2cache", "l2_cache", "l2caches"} {
		v := sys[key]
		if l, ok := v.([]any); ok && len(l) > 0 {
			v = l[0]
		}
		c, path := m.deref(v, "system."+key)
		if c == nil {
			continue
		}
		if cfg.L2 == nil {
			cfg.L2 = &cache.Config{Name: "L2", BlockBytes: 64, Assoc: 8, Banks: 1}
		}
		if v, ok := posInt(c["size"]); ok {
			cfg.L2.Bytes = v
			m.note("L2.Bytes", v, "config.json "+path+".size")
		}
		if v, ok := posInt(c["assoc"]); ok {
			cfg.L2.Assoc = v
			m.note("L2.Assoc", v, "config.json "+path+".assoc")
		}
		if tags, ok := asObj(c["tags"]); ok {
			if v, ok := posInt(tags["block_size"]); ok {
				cfg.L2.BlockBytes = v
				m.note("L2.BlockBytes", v, "config.json "+path+".tags.block_size")
			}
		}
		return
	}
	if cfg.L2 != nil {
		m.note("L2", fmt.Sprintf("%dB/%d-way", cfg.L2.Bytes, cfg.L2.Assoc), m.defSrc)
	}
}

// mapMC maps the memory-controller channel count from the length of
// system.mem_ctrls (object = one channel).
func (m *mapper) mapMC(cfg *chip.Config, sys obj) {
	v, ok := sys["mem_ctrls"]
	if !ok {
		v, ok = sys["mem_ctrl"]
	}
	if !ok {
		if cfg.MC != nil {
			m.note("MC.Channels", cfg.MC.Channels, m.defSrc)
		}
		return
	}
	n := 1
	if l, lok := v.([]any); lok {
		n = len(l)
	}
	if n > 0 && cfg.MC != nil {
		cfg.MC.Channels = n
		m.note("MC.Channels", n, "config.json system.mem_ctrls")
	}
}

// clockHz resolves the CPU clock: the cpu's clk_domain (embedded object
// or dotted reference), then the system's. gem5 records the period in
// ticks (1 tick = 1 ps), possibly wrapped in a one-element list. A
// present-but-degenerate period (zero, negative, or non-finite) is a
// configuration error; an absent one returns 0 so the preset default
// applies.
func (m *mapper) clockHz(cpu, sys obj, cpuPath string) (float64, error) {
	type owner struct {
		o    obj
		path string
	}
	for _, ow := range []owner{{cpu, cpuPath}, {sys, "system"}} {
		dom, dpath := m.deref(ow.o["clk_domain"], ow.path+".clk_domain")
		if dom == nil {
			continue
		}
		cv := dom["clock"]
		if l, ok := cv.([]any); ok {
			if len(l) == 0 {
				continue
			}
			cv = l[0]
		}
		ticks, ok := f64(cv)
		if !ok {
			if cv == nil {
				continue
			}
			return 0, guard.Configf("gem5.config."+dpath+".clock", "clock period %v is not numeric", cv)
		}
		if !(ticks > 0) || math.IsInf(ticks, 0) || math.IsNaN(ticks) {
			return 0, guard.Configf("gem5.config."+dpath+".clock", "clock period %v ticks is not a positive finite number", ticks)
		}
		hz := 1e12 / ticks // gem5 simulates at picosecond ticks
		if math.IsNaN(hz) || math.IsInf(hz, 0) || hz <= 0 {
			return 0, guard.Configf("gem5.config."+dpath+".clock", "clock period %v ticks maps to a non-finite frequency", ticks)
		}
		return hz, nil
	}
	return 0, nil
}

// deref follows a value that is either an embedded object or a dotted
// path string referencing one elsewhere in the document (gem5 writes
// cross-references as "system.cpu_clk_domain" strings).
func (m *mapper) deref(v any, path string) (obj, string) {
	switch t := v.(type) {
	case map[string]any:
		return t, path
	case string:
		if o, ok := asObj(resolve(m.root, t)); ok {
			return o, t
		}
	}
	return nil, path
}

// resolve walks a dotted path ("system.cpu_clk_domain") from the
// document root, indexing lists by numeric segments.
func resolve(root obj, path string) any {
	var cur any = root
	for _, seg := range strings.Split(path, ".") {
		switch t := cur.(type) {
		case map[string]any:
			cur = t[seg]
		case []any:
			i, err := strconv.Atoi(seg)
			if err != nil || i < 0 || i >= len(t) {
				return nil
			}
			cur = t[i]
		default:
			return nil
		}
	}
	return cur
}

// cpuList gathers the CPU objects under system, accepting both the
// single-object and the list spellings gem5 emits.
func cpuList(sys obj) ([]any, string) {
	for _, key := range []string{"cpu", "cpus", "switch_cpus"} {
		switch t := sys[key].(type) {
		case map[string]any:
			return []any{t}, key
		case []any:
			if len(t) > 0 {
				return t, key
			}
		}
	}
	return nil, ""
}

func asObj(v any) (obj, bool) {
	o, ok := v.(map[string]any)
	return o, ok
}

func asStr(v any) (string, bool) {
	s, ok := v.(string)
	return s, ok
}

// f64 reads a JSON number, accepting the numeric-string spelling some
// gem5 versions use. String forms that parse to NaN/Inf are rejected.
func f64(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case json.Number:
		f, err := t.Float64()
		return f, err == nil
	case string:
		f, err := strconv.ParseFloat(t, 64)
		if err != nil {
			return 0, false
		}
		return f, true
	}
	return 0, false
}

// posInt reads a positive integer parameter, rejecting fractional,
// non-finite, and absurdly large values (a fuzz guard: a 1e300 "cache
// size" must not fold into the config).
func posInt(v any) (int, bool) {
	f, ok := f64(v)
	if !ok || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, false
	}
	if f <= 0 || f > 1e12 || f != math.Trunc(f) {
		return 0, false
	}
	return int(f), true
}

// validate is the final gate: every float the mapper may have written
// must be finite and positive before the config is handed to chip.New.
func validate(cfg *chip.Config) error {
	if math.IsNaN(cfg.ClockHz) || math.IsInf(cfg.ClockHz, 0) || cfg.ClockHz <= 0 {
		return guard.Configf("gem5.config.clk_domain.clock", "mapped clock %v Hz is not positive and finite", cfg.ClockHz)
	}
	if cfg.NumCores <= 0 || cfg.NumCores > 1<<16 {
		return guard.Configf("gem5.config.system.cpu", "mapped core count %d out of range", cfg.NumCores)
	}
	return nil
}
