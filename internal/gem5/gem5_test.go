package gem5

import (
	"errors"
	"os"
	"strings"
	"testing"

	"mcpat/internal/chip"
	"mcpat/internal/guard"
)

func mapFile(t *testing.T) *Result {
	t.Helper()
	f, err := os.Open("testdata/config.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := Map(f)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMapO3Config pins the core of the template-free mapping: every
// field gem5 records lands in the chip config verbatim, with the clock
// resolved through the dotted clk_domain reference.
func TestMapO3Config(t *testing.T) {
	res := mapFile(t)
	cfg := res.Config
	if res.CPUType != "DerivO3CPU" || res.Preset != "penryn-class" {
		t.Fatalf("cpu type %q preset %q", res.CPUType, res.Preset)
	}
	if cfg.NumCores != 2 {
		t.Fatalf("NumCores = %d", cfg.NumCores)
	}
	if cfg.ClockHz != 1e12/400 {
		t.Fatalf("ClockHz = %v, want 2.5 GHz from the 400-tick cpu_clk_domain", cfg.ClockHz)
	}
	c := cfg.Core
	if !c.OoO {
		t.Fatal("O3 CPU must map to an out-of-order core")
	}
	if c.FetchWidth != 4 || c.IssueWidth != 4 || c.ROBEntries != 128 || c.IQEntries != 48 {
		t.Fatalf("pipeline mapping: %+v", c)
	}
	if c.PhysIntRegs != 160 || c.PhysFPRegs != 160 || c.LQEntries != 32 || c.SQEntries != 24 {
		t.Fatalf("buffer mapping: %+v", c)
	}
	if c.BTBEntries != 2048 || c.RASEntries != 16 || c.LocalPredEntries != 1024 ||
		c.GlobalPredEntries != 4096 || c.ChooserEntries != 4096 {
		t.Fatalf("branch predictor mapping: %+v", c)
	}
	if c.ITLBEntries != 64 || c.DTLBEntries != 64 {
		t.Fatalf("TLB mapping: %d/%d", c.ITLBEntries, c.DTLBEntries)
	}
	if c.ICache.Bytes != 32768 || c.ICache.Assoc != 4 || c.ICache.BlockBytes != 64 {
		t.Fatalf("icache mapping: %+v", c.ICache)
	}
	if c.DCache.Bytes != 65536 || c.DCache.Assoc != 8 {
		t.Fatalf("dcache mapping: %+v", c.DCache)
	}
	if cfg.L2 == nil || cfg.L2.Bytes != 2097152 || cfg.L2.Assoc != 16 {
		t.Fatalf("L2 mapping: %+v", cfg.L2)
	}
	if cfg.MC == nil || cfg.MC.Channels != 2 {
		t.Fatalf("MC mapping: %+v", cfg.MC)
	}
	// A mapped config must synthesize out of the box.
	if _, err := chip.New(cfg); err != nil {
		t.Fatalf("mapped config does not synthesize: %v", err)
	}
}

// TestMapProvenance pins the provenance trail: mapped fields cite their
// config.json path, defaulted fields cite the preset.
func TestMapProvenance(t *testing.T) {
	res := mapFile(t)
	bySrc := map[string]string{}
	for _, n := range res.Notes {
		bySrc[n.Field] = n.Source
	}
	if src := bySrc["Core.ROBEntries"]; !strings.Contains(src, "config.json system.cpu.numROBEntries") {
		t.Fatalf("ROBEntries source = %q", src)
	}
	if src := bySrc["NM"]; !strings.Contains(src, "default (preset penryn-class)") {
		t.Fatalf("NM source = %q", src)
	}
	if src := bySrc["MC.Channels"]; !strings.Contains(src, "config.json system.mem_ctrls") {
		t.Fatalf("MC.Channels source = %q", src)
	}
}

// TestMapInOrderPreset pins the preset selection: a non-O3 CPU keys the
// in-order template.
func TestMapInOrderPreset(t *testing.T) {
	res, err := MapBytes([]byte(`{"system":{"cpu":{"type":"TimingSimpleCPU"}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preset != "atom-class" || res.Config.Core.OoO {
		t.Fatalf("preset %q OoO %v", res.Preset, res.Config.Core.OoO)
	}
	if res.Config.NumCores != 1 {
		t.Fatalf("NumCores = %d", res.Config.NumCores)
	}
}

// TestMapErrors pins the error taxonomy: malformed documents are
// ErrConfig with a path into the JSON, never a panic.
func TestMapErrors(t *testing.T) {
	cases := []struct {
		name, doc, path string
	}{
		{"not json", `{`, "gem5.config"},
		{"no system", `{"foo":1}`, "gem5.config.system"},
		{"no cpus", `{"system":{}}`, "gem5.config.system.cpu"},
		{"empty cpu list", `{"system":{"cpu":[]}}`, "gem5.config.system.cpu"},
		{"cpu not object", `{"system":{"cpu":[42]}}`, "gem5.config.system.cpu"},
		{"zero clock", `{"system":{"cpu":{"type":"DerivO3CPU","clk_domain":{"clock":[0]}}}}`, ".clock"},
		{"negative clock", `{"system":{"cpu":{"type":"DerivO3CPU","clk_domain":{"clock":-5}}}}`, ".clock"},
		{"nan clock", `{"system":{"cpu":{"type":"DerivO3CPU","clk_domain":{"clock":"NaN"}}}}`, ".clock"},
		{"inf clock", `{"system":{"cpu":{"type":"DerivO3CPU","clk_domain":{"clock":"+Inf"}}}}`, ".clock"},
	}
	for _, tc := range cases {
		_, err := MapBytes([]byte(tc.doc))
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !errors.Is(err, guard.ErrConfig) {
			t.Fatalf("%s: %v is not ErrConfig", tc.name, err)
		}
		if p := guard.PathOf(err); !strings.Contains(p, tc.path) && !strings.Contains(err.Error(), tc.path) {
			t.Fatalf("%s: path %q (err %v) does not mention %q", tc.name, p, err, tc.path)
		}
	}
}

// TestMapDanglingReference pins graceful degradation: a clk_domain
// reference pointing nowhere falls back to the preset clock rather than
// erroring.
func TestMapDanglingReference(t *testing.T) {
	res, err := MapBytes([]byte(`{"system":{"cpu":{"type":"DerivO3CPU","clk_domain":"system.no_such_domain"}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.ClockHz != 2.4e9 {
		t.Fatalf("ClockHz = %v, want the penryn-class default", res.Config.ClockHz)
	}
}
