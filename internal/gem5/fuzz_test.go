package gem5

import (
	"math"
	"os"
	"testing"

	"mcpat/internal/guard"
)

// FuzzMapBytes pins the reader-hardening contract: for arbitrary input
// the mapper either returns an error (always a classified guard error)
// or a config whose float fields are finite — it never panics and never
// emits NaN/Inf into the model.
func FuzzMapBytes(f *testing.F) {
	f.Add([]byte(`{`))
	f.Add([]byte(`{"system":{}}`))
	f.Add([]byte(`{"system":{"cpu":[{"type":"DerivO3CPU"}]}}`))
	f.Add([]byte(`{"system":{"cpu":{"type":"DerivO3CPU","clk_domain":{"clock":[0]}}}}`))
	f.Add([]byte(`{"system":{"cpu":{"clk_domain":{"clock":"NaN"}}}}`))
	f.Add([]byte(`{"system":{"cpu":{"clk_domain":"system.cpu"},"mem_ctrls":[{}]}}`))
	f.Add([]byte(`{"system":{"cpu":{"icache":{"size":1e300},"l2":{"size":-4}}}}`))
	if seed, err := os.ReadFile("testdata/config.json"); err == nil {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := MapBytes(data)
		if err != nil {
			if guard.PathOf(err) == "" {
				t.Fatalf("unclassified error: %v", err)
			}
			return
		}
		cfg := res.Config
		for name, v := range map[string]float64{
			"ClockHz":     cfg.ClockHz,
			"NM":          cfg.NM,
			"Temperature": cfg.Temperature,
			"Vdd":         cfg.Vdd,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s = %v is not finite", name, v)
			}
		}
		if cfg.ClockHz <= 0 || cfg.NumCores <= 0 {
			t.Fatalf("degenerate accepted config: clock %v, cores %d", cfg.ClockHz, cfg.NumCores)
		}
	})
}
