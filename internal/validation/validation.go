// Package validation carries the four processor descriptions McPAT
// validates against - Sun Niagara (UltraSPARC T1, 90 nm), Sun Niagara2
// (UltraSPARC T2, 65 nm), Alpha 21364 (EV7, 180 nm), and Intel Xeon Tulsa
// (65 nm) - together with published reference power/area data and a
// comparison harness that reproduces the paper's validation tables.
//
// PROVENANCE NOTE: the exact per-component numbers of the original paper's
// tables were unavailable when this reproduction was built; the reference
// values below are reconstructed from the public record of these
// processors (ISSCC/Hot Chips disclosures, vendor datasheets) and are
// therefore approximate. Totals (TDP, die area) are well documented; the
// component splits carry an explicitly wider uncertainty. The validation
// criterion mirrors the paper's own: modeled totals within the 10-25%
// error band McPAT reports, with sensible component-level splits.
package validation

import (
	"fmt"
	"math"

	"mcpat/internal/cache"
	"mcpat/internal/chip"
	"mcpat/internal/core"
	"mcpat/internal/mc"
	"mcpat/internal/power"
)

// ComponentRef is one row of published reference data.
type ComponentRef struct {
	Name  string
	Power float64 // W (0 = unpublished)
	// ReportPath names the matching node(s) in the modeled report tree.
	ReportPath []string
}

// Reference holds the published numbers for one processor.
type Reference struct {
	Name       string
	TechNM     float64
	ClockHz    float64
	Vdd        float64
	TDP        float64 // published thermal design / max power (W)
	AreaMM2    float64 // published die area (mm^2)
	Components []ComponentRef
}

// Target couples a chip configuration with its reference data.
type Target struct {
	Ref  Reference
	Chip chip.Config
}

// Niagara returns the Sun UltraSPARC T1 validation target: 8 in-order
// 4-thread cores at 1.2 GHz, 3MB 12-way 4-bank L2, a flat crossbar, 4
// DDR2 channels, one shared FPU; 90 nm, 1.2 V, 379 mm^2, 72 W max
// (63 W typical).
func Niagara() Target {
	cfg := chip.Config{
		Name:    "Niagara(T1)",
		NM:      90,
		ClockHz: 1.2e9,
		Vdd:     1.2,

		NumCores: 8,
		Core: core.Config{
			Name:       "sparc-core",
			Threads:    4,
			FetchWidth: 1, DecodeWidth: 1, IssueWidth: 1, CommitWidth: 1,
			PipelineDepth: 6,
			// SPARC register windows: 4 threads x ~136 visible+windowed
			// registers each.
			ArchIntRegs: 136, ArchFPRegs: 32,
			ICache:      core.CacheParams{Bytes: 16 * 1024, BlockBytes: 32, Assoc: 4},
			DCache:      core.CacheParams{Bytes: 8 * 1024, BlockBytes: 16, Assoc: 4},
			ITLBEntries: 64, DTLBEntries: 64,
			IntALUs: 1, MulDivs: 1,
			LQEntries: 8, SQEntries: 8,
		},

		L2: &cache.Config{
			Name: "L2", Bytes: 3 * 1024 * 1024, BlockBytes: 64,
			Assoc: 12, Banks: 4, Directory: true, Sharers: 8,
		},

		SharedFPUs: 1,

		NoC: chip.NoCSpec{Kind: chip.Crossbar, FlitBits: 128},

		// T1 L2 banks sustain back-to-back pipelined accesses at TDP.
		L2PeakDuty: 1.2,

		MC: &mc.Config{
			Channels: 4, DataBusBits: 64,
			PeakBandwidth: 25e9, LVDS: true, PHYPJPerBit: 25e-12,
		},
		// JBUS (128-bit @ 200 MHz DDR) + SSI modeled as a wide
		// full-swing serial interface.
		PCIe: &mc.PCIeConfig{Lanes: 16, GbpsPerLane: 3.2},

		// Test structures, fuses, clock spine, pad ring beyond modeled
		// controllers (from the T1 die photo).
		OtherArea: 75e-6,
	}
	return Target{
		Ref: Reference{
			Name: "Niagara (UltraSPARC T1)", TechNM: 90, ClockHz: 1.2e9, Vdd: 1.2,
			// 63 W is Sun's published typical power at nominal conditions
			// (72 W max); McPAT's TDP conditions match the typical point.
			TDP: 63, AreaMM2: 379,
			Components: []ComponentRef{
				{Name: "8 SPARC cores", Power: 26, ReportPath: []string{"Cores"}},
				{Name: "L2 cache", Power: 13, ReportPath: []string{"L2"}},
				{Name: "Crossbar", Power: 2, ReportPath: []string{"Crossbar"}},
				{Name: "Memory controllers", Power: 6, ReportPath: []string{"MemoryController"}},
				{Name: "I/O + FPU", Power: 8, ReportPath: []string{"PCIe", "SharedFPU"}},
				{Name: "Clock + global", Power: 9, ReportPath: []string{"ClockNetwork"}},
			},
		},
		Chip: cfg,
	}
}

// Niagara2 returns the Sun UltraSPARC T2 target: 8 in-order cores, 8
// threads and 2 pipelines each, per-core FPU, 4MB 16-way 8-bank L2,
// crossbar, 4 FB-DIMM channels, 2x10GbE NIU and PCIe x8 on die; 65 nm,
// 1.1 V, 1.4 GHz, 342 mm^2, 84 W.
func Niagara2() Target {
	cfg := chip.Config{
		Name:    "Niagara2(T2)",
		NM:      65,
		ClockHz: 1.4e9,
		Vdd:     1.1,
		// Sun rates the T2 at a cooler junction point than McPAT's 360 K
		// default (server-class heatsinks; published leakage is modest).
		Temperature: 340,

		NumCores: 8,
		Core: core.Config{
			Name:       "sparc2-core",
			Threads:    8,
			FetchWidth: 2, DecodeWidth: 2, IssueWidth: 2, CommitWidth: 2,
			PipelineDepth: 8,
			ArchIntRegs:   136, ArchFPRegs: 32,
			ICache:      core.CacheParams{Bytes: 16 * 1024, BlockBytes: 32, Assoc: 8},
			DCache:      core.CacheParams{Bytes: 8 * 1024, BlockBytes: 16, Assoc: 4},
			ITLBEntries: 64, DTLBEntries: 128,
			IntALUs: 2, MulDivs: 1, FPUs: 1,
			LQEntries: 8, SQEntries: 8,
			// T2 core: ~2 pipelines of simple in-order logic; die photos
			// put the core at ~12 mm^2 at 65 nm.
			GlueGates: 1.6e6,
		},

		L2: &cache.Config{
			Name: "L2", Bytes: 4 * 1024 * 1024, BlockBytes: 64,
			Assoc: 16, Banks: 8, Directory: true, Sharers: 8,
		},

		NoC: chip.NoCSpec{Kind: chip.Crossbar, FlitBits: 128},

		MC: &mc.Config{
			Channels: 4, DataBusBits: 64,
			// FB-DIMM: serial SerDes lanes per channel, hotter than DDR.
			PeakBandwidth: 42e9, LVDS: true, PHYPJPerBit: 35e-12,
		},
		NIU:  &mc.NIUConfig{Bandwidth: 10e9, Count: 2, PJPerBit: 180e-12},
		PCIe: &mc.PCIeConfig{Lanes: 8, GbpsPerLane: 2.5},

		// FB-DIMM SerDes ring (4 channels x 14 lanes), 10GbE SerDes, test
		// logic, pad ring.
		OtherArea: 110e-6,
	}
	return Target{
		Ref: Reference{
			Name: "Niagara2 (UltraSPARC T2)", TechNM: 65, ClockHz: 1.4e9, Vdd: 1.1,
			TDP: 84, AreaMM2: 342,
			Components: []ComponentRef{
				{Name: "8 SPARC cores", Power: 34, ReportPath: []string{"Cores"}},
				{Name: "L2 cache", Power: 14, ReportPath: []string{"L2"}},
				{Name: "Crossbar", Power: 4, ReportPath: []string{"Crossbar"}},
				{Name: "Memory controllers", Power: 10, ReportPath: []string{"MemoryController"}},
				{Name: "NIU + PCIe", Power: 8, ReportPath: []string{"NIU", "PCIe"}},
				{Name: "Clock + global", Power: 10, ReportPath: []string{"ClockNetwork"}},
			},
		},
		Chip: cfg,
	}
}

// Alpha21364 returns the Alpha 21364 (EV7) target: one EV68-class
// out-of-order core, 1.75MB 7-way on-die L2, two RDRAM memory
// controllers, and the inter-processor router; 180 nm, 1.5 V, 1.2 GHz,
// 397 mm^2, 125 W.
func Alpha21364() Target {
	cfg := chip.Config{
		Name:    "Alpha21364(EV7)",
		NM:      180,
		ClockHz: 1.2e9,
		Vdd:     1.5,

		NumCores: 1,
		Core: core.Config{
			Name:       "ev68-core",
			OoO:        true,
			FetchWidth: 4, DecodeWidth: 4, IssueWidth: 6, CommitWidth: 11,
			PipelineDepth: 7,
			ROBEntries:    80, IQEntries: 20, FPIQEntries: 15,
			PhysIntRegs: 80, PhysFPRegs: 72,
			ICache:            core.CacheParams{Bytes: 64 * 1024, BlockBytes: 64, Assoc: 2},
			DCache:            core.CacheParams{Bytes: 64 * 1024, BlockBytes: 64, Assoc: 2, Ports: 2},
			BTBEntries:        0,
			LocalPredEntries:  1024,
			GlobalPredEntries: 4096,
			ChooserEntries:    4096,
			RASEntries:        32,
			ITLBEntries:       128, DTLBEntries: 128,
			IntALUs: 4, FPUs: 2, MulDivs: 1,
			LQEntries: 32, SQEntries: 32,
			// EV68 core: ~15M transistors of custom logic outside the
			// arrays, with aggressive dynamic-logic activity.
			GlueGates:    3.8e6,
			GlueActivity: 0.35,
		},

		L2: &cache.Config{
			Name: "L2", Bytes: 1792 * 1024, BlockBytes: 64,
			Assoc: 7, Banks: 8,
		},

		NoC: chip.NoCSpec{Kind: chip.NoneIC},

		MC: &mc.Config{
			Channels: 2, DataBusBits: 64,
			PeakBandwidth: 12.8e9, LVDS: true, // dual RDRAM
		},
		// The EV7 interprocessor router: 4 links, modeled as SerDes-class
		// I/O at the sustained coherence-traffic rate.
		NIU: &mc.NIUConfig{Bandwidth: 9e9, Count: 4},

		// EV7 uses a gridded clock (EV6 heritage): ~2.5x the H-tree
		// baseline load density, essentially ungated.
		ClockSinkMult: 2.2,
		ClockGating:   0.95,

		OtherArea: 15e-6,
	}
	return Target{
		Ref: Reference{
			Name: "Alpha 21364 (EV7)", TechNM: 180, ClockHz: 1.2e9, Vdd: 1.5,
			TDP: 125, AreaMM2: 397,
			Components: []ComponentRef{
				{Name: "EV68 core", Power: 45, ReportPath: []string{"Cores"}},
				{Name: "L2 cache", Power: 8, ReportPath: []string{"L2"}},
				{Name: "Router (4 links)", Power: 18, ReportPath: []string{"NIU"}},
				{Name: "Memory controllers", Power: 8, ReportPath: []string{"MemoryController"}},
				{Name: "Clock + global", Power: 30, ReportPath: []string{"ClockNetwork"}},
			},
		},
		Chip: cfg,
	}
}

// XeonTulsa returns the Intel Xeon 7100 (Tulsa) target: two NetBurst
// out-of-order SMT cores at 3.4 GHz with 1MB private L2s, a 16MB shared
// L3, and the front-side bus interface; 65 nm, 1.25 V, 435 mm^2, 150 W.
func XeonTulsa() Target {
	cfg := chip.Config{
		Name:    "XeonTulsa",
		NM:      65,
		ClockHz: 3.4e9,
		Vdd:     1.25,

		NumCores: 2,
		Core: core.Config{
			Name:       "netburst-core",
			OoO:        true,
			X86:        true,
			Threads:    2,
			FetchWidth: 3, DecodeWidth: 3, IssueWidth: 6, CommitWidth: 3,
			PipelineDepth: 31,
			ROBEntries:    126, IQEntries: 32, FPIQEntries: 32,
			PhysIntRegs: 128, PhysFPRegs: 128,
			// Trace cache modeled as the instruction cache.
			ICache:            core.CacheParams{Bytes: 96 * 1024, BlockBytes: 64, Assoc: 8},
			DCache:            core.CacheParams{Bytes: 16 * 1024, BlockBytes: 64, Assoc: 8, Ports: 2},
			BTBEntries:        4096,
			LocalPredEntries:  4096,
			GlobalPredEntries: 4096,
			ChooserEntries:    4096,
			RASEntries:        32,
			ITLBEntries:       128, DTLBEntries: 128,
			IntALUs: 4, FPUs: 2, MulDivs: 1,
			LQEntries: 48, SQEntries: 32,
			// NetBurst: replay queues, double-pumped ALUs, deep
			// speculation - a large, hot logic population.
			GlueGates:    9e6,
			GlueActivity: 0.23,
		},

		// Private per-core L2s folded into one 2-bank shared-model L2.
		L2: &cache.Config{
			Name: "L2", Bytes: 2 * 1024 * 1024, BlockBytes: 64,
			Assoc: 8, Banks: 2,
		},
		L3: &cache.Config{
			Name: "L3", Bytes: 16 * 1024 * 1024, BlockBytes: 64,
			Assoc: 16, Banks: 8, Directory: false,
		},

		NoC: chip.NoCSpec{Kind: chip.Bus, FlitBits: 64},

		// L3 sees only L2 miss traffic; its saturated duty is well below
		// the bank-limited ceiling.
		L3PeakDuty: 0.1,

		// FSB interface modeled as a full-swing memory interface.
		MC: &mc.Config{
			Channels: 1, DataBusBits: 64,
			PeakBandwidth: 12.8e9, LVDS: false,
		},

		// Tulsa shipped aggressive dynamic clock gating ("Foxton"-class
		// power management) over a plain H-tree.
		ClockGating:   0.5,
		ClockSinkMult: 0.75,

		OtherArea: 50e-6,
	}
	return Target{
		Ref: Reference{
			Name: "Xeon Tulsa (7100)", TechNM: 65, ClockHz: 3.4e9, Vdd: 1.25,
			TDP: 150, AreaMM2: 435,
			Components: []ComponentRef{
				{Name: "2 NetBurst cores + L2", Power: 90, ReportPath: []string{"Cores", "L2"}},
				{Name: "L3 cache", Power: 16, ReportPath: []string{"L3"}},
				{Name: "FSB interface", Power: 8, ReportPath: []string{"MemoryController", "Bus"}},
				{Name: "Clock + global", Power: 25, ReportPath: []string{"ClockNetwork"}},
			},
		},
		Chip: cfg,
	}
}

// All returns every validation target in paper order.
func All() []Target {
	return []Target{Niagara(), Niagara2(), Alpha21364(), XeonTulsa()}
}

// Row is one line of a validation table.
type Row struct {
	Component string
	Published float64 // W (0 = unpublished)
	Modeled   float64 // W
	ErrPct    float64 // percent; NaN if unpublished
}

// Result is a full validation comparison.
type Result struct {
	Target  Target
	Report  *power.Item
	Rows    []Row
	TDPMod  float64
	TDPPub  float64
	TDPErr  float64 // percent
	AreaMod float64 // mm^2
	AreaPub float64
	AreaErr float64 // percent
}

// Compare synthesizes the target chip and compares it with the published
// reference data.
func Compare(t Target) (*Result, error) {
	p, err := chip.New(t.Chip)
	if err != nil {
		return nil, fmt.Errorf("validation %s: %w", t.Ref.Name, err)
	}
	rep := p.Report(nil)

	res := &Result{Target: t, Report: rep}
	for _, c := range t.Ref.Components {
		var mod float64
		for _, path := range c.ReportPath {
			if node := rep.Find(path); node != nil {
				mod += node.Peak()
			}
		}
		row := Row{Component: c.Name, Published: c.Power, Modeled: mod}
		if c.Power > 0 {
			row.ErrPct = 100 * (mod - c.Power) / c.Power
		} else {
			row.ErrPct = math.NaN()
		}
		res.Rows = append(res.Rows, row)
	}
	res.TDPMod = rep.Peak()
	res.TDPPub = t.Ref.TDP
	res.TDPErr = 100 * (res.TDPMod - res.TDPPub) / res.TDPPub
	res.AreaMod = rep.Area * 1e6
	res.AreaPub = t.Ref.AreaMM2
	res.AreaErr = 100 * (res.AreaMod - res.AreaPub) / res.AreaPub
	return res, nil
}
