package validation

import (
	"math"
	"testing"

	"mcpat/internal/chip"
)

// TestValidationTotals reproduces the paper's headline validation result:
// modeled TDP and die area of all four target processors land within the
// error band McPAT reports (roughly 10-25%).
func TestValidationTotals(t *testing.T) {
	for _, target := range All() {
		r, err := Compare(target)
		if err != nil {
			t.Fatalf("%s: %v", target.Ref.Name, err)
		}
		t.Logf("%-26s TDP %6.1f W (pub %5.1f, %+5.1f%%)  area %6.1f mm2 (pub %5.1f, %+5.1f%%)",
			target.Ref.Name, r.TDPMod, r.TDPPub, r.TDPErr, r.AreaMod, r.AreaPub, r.AreaErr)
		if math.Abs(r.TDPErr) > 20 {
			t.Errorf("%s: TDP error %+.1f%% exceeds 20%%", target.Ref.Name, r.TDPErr)
		}
		if math.Abs(r.AreaErr) > 25 {
			t.Errorf("%s: area error %+.1f%% exceeds 25%%", target.Ref.Name, r.AreaErr)
		}
	}
}

// TestValidationComponents checks the per-component splits stay within a
// wide band. The published splits are reconstructions (see the package
// comment), so the tolerance is deliberately loose: the shape matters.
func TestValidationComponents(t *testing.T) {
	for _, target := range All() {
		r, err := Compare(target)
		if err != nil {
			t.Fatalf("%s: %v", target.Ref.Name, err)
		}
		for _, row := range r.Rows {
			if math.IsNaN(row.ErrPct) {
				continue
			}
			if math.Abs(row.ErrPct) > 70 {
				t.Errorf("%s / %s: error %+.1f%% exceeds 70%% (pub %.1f, mod %.1f)",
					target.Ref.Name, row.Component, row.ErrPct, row.Published, row.Modeled)
			}
			if row.Modeled <= 0 {
				t.Errorf("%s / %s: modeled power must be positive", target.Ref.Name, row.Component)
			}
		}
	}
}

// TestLeakageTrendAcrossNodes verifies a central McPAT observation: the
// leakage fraction of total power grows dramatically from 180 nm to the
// 90/65 nm generations.
func TestLeakageTrendAcrossNodes(t *testing.T) {
	frac := func(target Target) float64 {
		p, err := chip.New(target.Chip)
		if err != nil {
			t.Fatal(err)
		}
		rep := p.Report(nil)
		return rep.Leakage() / rep.Peak()
	}
	alpha := frac(Alpha21364()) // 180 nm
	t1 := frac(Niagara())       // 90 nm
	t.Logf("leakage fraction: Alpha(180nm)=%.3f  Niagara(90nm)=%.3f", alpha, t1)
	if alpha >= t1 {
		t.Errorf("leakage fraction must grow with scaling: 180nm %.3f >= 90nm %.3f", alpha, t1)
	}
	if alpha > 0.05 {
		t.Errorf("180nm leakage fraction %.3f should be small (<5%%)", alpha)
	}
	if t1 < 0.10 {
		t.Errorf("90nm leakage fraction %.3f should be substantial (>10%%)", t1)
	}
}

// TestRuntimeStatsProduceLowerPower drives the Niagara model with
// half-saturation runtime statistics and checks runtime power lands below
// the TDP, the way McPAT separates peak from runtime analysis.
func TestRuntimeStatsProduceLowerPower(t *testing.T) {
	target := Niagara()
	p, err := chip.New(target.Chip)
	if err != nil {
		t.Fatal(err)
	}
	run := p.CorePeakActivity().Scale(0.5)
	stats := &chip.Stats{
		CoreRun:    run,
		L2Reads:    1.0e9,
		L2Writes:   0.4e9,
		NoCFlits:   1.5e9,
		MCAccesses: 0.1e9,
	}
	rep := p.Report(stats)
	if rep.RuntimeDynamic <= 0 {
		t.Fatal("runtime dynamic power missing")
	}
	if rep.RuntimeDynamic >= rep.PeakDynamic {
		t.Errorf("runtime dynamic %.1f W must be below peak %.1f W", rep.RuntimeDynamic, rep.PeakDynamic)
	}
	total := rep.RuntimeDynamic + rep.Leakage()
	if total >= rep.Peak() {
		t.Errorf("runtime total %.1f W must be below TDP %.1f W", total, rep.Peak())
	}
}

// TestCoreCountScaling doubles Niagara's core count and checks power and
// area respond superlinearly in total but sublinearly per core (shared
// components amortize).
func TestCoreCountScaling(t *testing.T) {
	mk := func(n int) (tdp, area float64) {
		cfg := Niagara().Chip
		cfg.NumCores = n
		p, err := chip.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := p.Report(nil)
		return rep.Peak(), rep.Area
	}
	t4, a4 := mk(4)
	t8, a8 := mk(8)
	if t8 <= t4 || a8 <= a4 {
		t.Fatal("more cores must cost more power and area")
	}
	if t8 >= 2*t4 {
		t.Errorf("doubling cores should less than double TDP (shared L2/IO): %0.1f vs %0.1f", t8, t4)
	}
}

// TestTargetSpecsMatchReferences keeps the descriptor table and reference
// metadata in sync.
func TestTargetSpecsMatchReferences(t *testing.T) {
	for _, target := range All() {
		if target.Chip.NM != target.Ref.TechNM {
			t.Errorf("%s: chip NM %v != ref %v", target.Ref.Name, target.Chip.NM, target.Ref.TechNM)
		}
		if target.Chip.ClockHz != target.Ref.ClockHz {
			t.Errorf("%s: clock mismatch", target.Ref.Name)
		}
		if target.Chip.Vdd != target.Ref.Vdd {
			t.Errorf("%s: Vdd mismatch", target.Ref.Name)
		}
		if target.Ref.TDP <= 0 || target.Ref.AreaMM2 <= 0 {
			t.Errorf("%s: reference totals missing", target.Ref.Name)
		}
	}
}

// TestInOrderVsOoOValidationShape checks the cross-target trend the paper
// highlights: per-core power of the OoO targets far exceeds the in-order
// multithreaded targets.
func TestInOrderVsOoOValidationShape(t *testing.T) {
	perCore := func(target Target) float64 {
		p, err := chip.New(target.Chip)
		if err != nil {
			t.Fatal(err)
		}
		rep := p.Report(nil)
		return rep.Find("Cores").Peak() / float64(target.Chip.NumCores)
	}
	niagara := perCore(Niagara())
	alpha := perCore(Alpha21364())
	tulsa := perCore(XeonTulsa())
	if alpha <= 3*niagara {
		t.Errorf("Alpha core (%.1f W) should be >>3x a Niagara core (%.1f W)", alpha, niagara)
	}
	// Both OoO cores are ~40W-class: NetBurst trades its 65nm voltage
	// headroom for 2.8x the clock of the 180nm Alpha.
	if tulsa < 0.8*alpha {
		t.Errorf("3.4GHz NetBurst core (%.1f W) should be in the same class as the Alpha core (%.1f W)", tulsa, alpha)
	}
}
