// Package tables renders every table and figure of the paper's evaluation
// (see DESIGN.md section 3) as text. cmd/mcpat-tables is a thin wrapper
// around this package; keeping the rendering here makes every artifact
// golden-testable, so any drift in the models shows up as a test failure.
package tables

import (
	"fmt"
	"io"
	"math"
	"strings"

	"mcpat/internal/study"
	"mcpat/internal/validation"
)

// TableNames lists the table artifacts in paper order.
var TableNames = []string{"specs", "niagara", "niagara2", "alpha21364", "xeon", "area"}

// FigureNames lists the figure artifacts in paper order.
var FigureNames = []string{"devices", "perf", "power", "area", "metrics", "scaling"}

// Table renders the named table artifact.
func Table(w io.Writer, name string) error {
	switch name {
	case "specs":
		return Specs(w)
	case "niagara", "niagara2", "alpha21364", "xeon":
		return Validation(w, name)
	case "area":
		return AreaValidation(w)
	}
	return fmt.Errorf("tables: unknown table %q", name)
}

// Figure renders the named figure artifact.
func Figure(w io.Writer, name string) error {
	switch name {
	case "devices":
		return Devices(w)
	case "perf", "power", "area", "metrics":
		return Cluster(w, name)
	case "scaling":
		return Scaling(w)
	}
	return fmt.Errorf("tables: unknown figure %q", name)
}

func header(w io.Writer, s string) {
	fmt.Fprintf(w, "\n================ %s ================\n", s)
}

// Specs renders T1.
func Specs(w io.Writer) error {
	header(w, "T1: Target processors modeled for validation")
	fmt.Fprintf(w, "%-28s %6s %8s %6s %10s %10s\n", "Processor", "Node", "Clock", "Vdd", "TDP (pub)", "Area (pub)")
	for _, t := range validation.All() {
		fmt.Fprintf(w, "%-28s %4gnm %5.2fGHz %5.2fV %8.1f W %7.1f mm2\n",
			t.Ref.Name, t.Ref.TechNM, t.Ref.ClockHz/1e9, t.Ref.Vdd, t.Ref.TDP, t.Ref.AreaMM2)
	}
	return nil
}

// Validation renders one of T2-T5.
func Validation(w io.Writer, key string) error {
	match := key
	switch key {
	case "alpha21364":
		match = "alpha"
	case "xeon":
		match = "tulsa"
	}
	for _, t := range validation.All() {
		lower := strings.ToLower(t.Ref.Name)
		if key == "niagara" && strings.Contains(lower, "niagara2") {
			continue
		}
		if !strings.Contains(lower, match) {
			continue
		}
		r, err := validation.Compare(t)
		if err != nil {
			return err
		}
		header(w, fmt.Sprintf("Validation: %s", t.Ref.Name))
		fmt.Fprintf(w, "%-28s %12s %12s %8s\n", "Component", "Published W", "Modeled W", "Error")
		for _, row := range r.Rows {
			errStr := "   -"
			if !math.IsNaN(row.ErrPct) {
				errStr = fmt.Sprintf("%+6.1f%%", row.ErrPct)
			}
			fmt.Fprintf(w, "%-28s %12.1f %12.1f %8s\n", row.Component, row.Published, row.Modeled, errStr)
		}
		fmt.Fprintf(w, "%-28s %12.1f %12.1f %+6.1f%%\n", "TOTAL (TDP)", r.TDPPub, r.TDPMod, r.TDPErr)
		return nil
	}
	return fmt.Errorf("tables: no validation target matches %q", key)
}

// AreaValidation renders T6.
func AreaValidation(w io.Writer) error {
	header(w, "T6: Die-area validation")
	fmt.Fprintf(w, "%-28s %14s %14s %8s\n", "Processor", "Published mm2", "Modeled mm2", "Error")
	for _, t := range validation.All() {
		r, err := validation.Compare(t)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s %14.1f %14.1f %+6.1f%%\n", t.Ref.Name, r.AreaPub, r.AreaMod, r.AreaErr)
	}
	return nil
}

// Devices renders F1.
func Devices(w io.Writer) error {
	header(w, "F1: Device-type study (8-core Niagara-class chip, architecture fixed)")
	rows, err := study.DeviceStudy(nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s %-8s %8s %10s %10s %10s %10s\n",
		"Node", "Device", "Fmax", "TDP W", "Dynamic W", "Leakage W", "Area mm2")
	for _, r := range rows {
		dev := r.Device.String()
		if r.LongCh {
			dev += "+LC"
		}
		fmt.Fprintf(w, "%4gnm %-8s %5.2fGHz %10.1f %10.1f %10.2f %10.1f\n",
			r.NM, dev, r.FMaxGHz, r.TDP, r.Dynamic, r.Leakage, r.Area)
	}
	return nil
}

// clusterResults caches the expensive sweep for the four figure variants.
var clusterCache []study.ClusterResult

func clusterResults() ([]study.ClusterResult, error) {
	if clusterCache != nil {
		return clusterCache, nil
	}
	rs, err := study.RunClusterSweep(study.DefaultParams(), nil)
	if err != nil {
		return nil, err
	}
	clusterCache = rs
	return rs, nil
}

// Cluster renders F2-F5.
func Cluster(w io.Writer, which string) error {
	rs, err := clusterResults()
	if err != nil {
		return err
	}
	switch which {
	case "perf":
		header(w, "F2: Performance vs clustering (64 cores @ 22nm, SPLASH-2-like)")
		fmt.Fprintf(w, "%8s %8s", "Cluster", "Mesh")
		for _, run := range rs[0].Runs {
			fmt.Fprintf(w, " %12s", run.Workload)
		}
		fmt.Fprintf(w, " %12s %10s\n", "mean (GIPS)", "rel.")
		for _, r := range rs {
			fmt.Fprintf(w, "%8d %5dx%-2d", r.ClusterSize, r.MeshX, r.MeshY)
			for _, run := range r.Runs {
				fmt.Fprintf(w, " %12.1f", run.Throughput/1e9)
			}
			fmt.Fprintf(w, " %12.1f %9.3fx\n", r.Perf/1e9, r.Perf/rs[0].Perf)
		}
	case "power":
		header(w, "F3: Runtime power breakdown vs clustering (W, workload average)")
		comps := []string{"Cores", "L2", "NoC", "MemoryController", "ClockNetwork"}
		fmt.Fprintf(w, "%8s", "Cluster")
		for _, c := range comps {
			fmt.Fprintf(w, " %12s", c)
		}
		fmt.Fprintf(w, " %12s\n", "Total")
		for _, r := range rs {
			fmt.Fprintf(w, "%8d", r.ClusterSize)
			for _, c := range comps {
				fmt.Fprintf(w, " %12.1f", r.RuntimeBreakdown[c])
			}
			fmt.Fprintf(w, " %12.1f\n", r.AvgPower)
		}
	case "area":
		header(w, "F4: Area breakdown vs clustering (mm^2)")
		comps := []string{"Cores", "L2", "NoC", "MemoryController"}
		fmt.Fprintf(w, "%8s", "Cluster")
		for _, c := range comps {
			fmt.Fprintf(w, " %12s", c)
		}
		fmt.Fprintf(w, " %12s\n", "Total")
		for _, r := range rs {
			fmt.Fprintf(w, "%8d", r.ClusterSize)
			for _, c := range comps {
				fmt.Fprintf(w, " %12.2f", r.AreaBreakdown[c])
			}
			fmt.Fprintf(w, " %12.1f\n", r.Area)
		}
	case "metrics":
		header(w, "F5: Combined metrics vs clustering (normalized to cluster=1; lower is better)")
		fmt.Fprintf(w, "%8s %10s %10s %10s %10s\n", "Cluster", "EDP", "ED2P", "EDAP", "ED2AP")
		base := rs[0]
		for _, r := range rs {
			fmt.Fprintf(w, "%8d %10.3f %10.3f %10.3f %10.3f\n", r.ClusterSize,
				r.EDP/base.EDP, r.ED2P/base.ED2P, r.EDAP/base.EDAP, r.ED2AP/base.ED2AP)
		}
		best := rs[0]
		for _, r := range rs[1:] {
			if r.ED2AP < best.ED2AP {
				best = r
			}
		}
		fmt.Fprintf(w, "-> best ED2AP design: %d cores per cluster\n", best.ClusterSize)
	default:
		return fmt.Errorf("tables: unknown cluster figure %q", which)
	}
	return nil
}

// Scaling renders F6.
func Scaling(w io.Writer) error {
	header(w, "F6: Best clustering across technology nodes (ED2AP-optimal)")
	rows, err := study.RunTechSweep(nil, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s %14s %14s %16s\n", "Node", "Best cluster", "TDP @best W", "NoC power cl1->cl8")
	for _, row := range rows {
		var best study.ClusterResult
		for _, r := range row.Results {
			if r.ClusterSize == row.BestCluster {
				best = r
			}
		}
		first := row.Results[0]
		last := row.Results[len(row.Results)-1]
		fmt.Fprintf(w, "%4gnm %14d %14.1f %8.1f -> %5.1f\n",
			row.NM, row.BestCluster, best.TDP,
			first.PowerBreakdown["NoC"], last.PowerBreakdown["NoC"])
	}
	return nil
}

// All renders every table and figure in order.
func All(w io.Writer) error {
	for _, t := range TableNames {
		if err := Table(w, t); err != nil {
			return err
		}
	}
	for _, f := range FigureNames {
		if err := Figure(w, f); err != nil {
			return err
		}
	}
	return nil
}
