package tables

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden renders through fn and compares against testdata/<name>.golden.
// Run `go test ./internal/tables -update` after intentional model changes.
func golden(t *testing.T, name string, fn func(w *strings.Builder) error) {
	t.Helper()
	var buf strings.Builder
	if err := fn(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its golden output.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, string(want))
	}
}

func TestGoldenTables(t *testing.T) {
	for _, name := range TableNames {
		name := name
		t.Run(name, func(t *testing.T) {
			golden(t, "table_"+name, func(w *strings.Builder) error { return Table(w, name) })
		})
	}
}

func TestGoldenFigures(t *testing.T) {
	for _, name := range FigureNames {
		name := name
		t.Run(name, func(t *testing.T) {
			golden(t, "fig_"+name, func(w *strings.Builder) error { return Figure(w, name) })
		})
	}
}

func TestUnknownNames(t *testing.T) {
	var b strings.Builder
	if err := Table(&b, "bogus"); err == nil {
		t.Error("unknown table must fail")
	}
	if err := Figure(&b, "bogus"); err == nil {
		t.Error("unknown figure must fail")
	}
}

func TestAllRendersEverything(t *testing.T) {
	var b strings.Builder
	if err := All(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, marker := range []string{"T1:", "T6:", "F1:", "F2:", "F3:", "F4:", "F5:", "F6:"} {
		if !strings.Contains(out, marker) {
			t.Errorf("All() output missing %s", marker)
		}
	}
}
