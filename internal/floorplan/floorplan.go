// Package floorplan places the chip's top-level blocks on the die and
// derives the geometric quantities the power/timing models consume:
// die dimensions, block positions, Manhattan distances between connected
// blocks, and total interconnect wire length. The chip model uses
// sqrt-of-area estimates internally; this package provides the explicit
// layout view for floorplan-sensitive analyses (link-length distributions,
// worst-case routes, edge placement of pad-bound blocks).
//
// The planner is deliberately simple and deterministic: tiles (replicated
// core+cache slices) fill a near-square grid, and peripheral blocks
// (memory controllers, I/O) line the die edges where their pads must sit.
package floorplan

import (
	"fmt"
	"math"
	"sort"
)

// Block is one top-level component to place.
type Block struct {
	Name string
	Area float64 // m^2
	// OnEdge pins the block to the die boundary (pad-bound: MC PHYs,
	// SerDes, PCIe).
	OnEdge bool
}

// Placement is a placed block.
type Placement struct {
	Block
	X, Y float64 // lower-left corner (m)
	W, H float64 // dimensions (m)
}

// CenterX returns the block-center abscissa.
func (p Placement) CenterX() float64 { return p.X + p.W/2 }

// CenterY returns the block-center ordinate.
func (p Placement) CenterY() float64 { return p.Y + p.H/2 }

// Plan is a completed floorplan.
type Plan struct {
	Width, Height float64 // die dimensions (m)
	Items         []Placement

	// TilePitchX/Y is the spacing of the tile grid (m); zero if no tiles.
	TilePitchX, TilePitchY float64
	// Rows and Cols describe the tile grid.
	Rows, Cols int
}

// Grid builds a floorplan: count copies of the tile block arranged in a
// near-square grid, with the peripheral blocks stacked along the bottom
// edge. aspect is the desired tile aspect ratio (height/width, 1 = square
// tiles).
func Grid(tile Block, count int, periph []Block, aspect float64) (*Plan, error) {
	if count <= 0 {
		return nil, fmt.Errorf("floorplan: tile count must be positive")
	}
	if tile.Area <= 0 {
		return nil, fmt.Errorf("floorplan: tile %q needs a positive area", tile.Name)
	}
	if aspect <= 0 {
		aspect = 1
	}

	cols := int(math.Ceil(math.Sqrt(float64(count))))
	rows := (count + cols - 1) / cols

	tileW := math.Sqrt(tile.Area / aspect)
	tileH := aspect * tileW

	coreW := float64(cols) * tileW
	coreH := float64(rows) * tileH

	// Peripheral strip along the bottom: full core width, height from the
	// summed peripheral area.
	var periphArea float64
	for _, b := range periph {
		if b.Area < 0 {
			return nil, fmt.Errorf("floorplan: block %q has negative area", b.Name)
		}
		periphArea += b.Area
	}
	stripH := 0.0
	if periphArea > 0 {
		stripH = periphArea / coreW
	}

	plan := &Plan{
		Width:      coreW,
		Height:     coreH + stripH,
		TilePitchX: tileW,
		TilePitchY: tileH,
		Rows:       rows,
		Cols:       cols,
	}

	// Tiles: row-major from the top of the peripheral strip.
	for i := 0; i < count; i++ {
		r, c := i/cols, i%cols
		plan.Items = append(plan.Items, Placement{
			Block: Block{Name: fmt.Sprintf("%s[%d]", tile.Name, i), Area: tile.Area},
			X:     float64(c) * tileW,
			Y:     stripH + float64(r)*tileH,
			W:     tileW, H: tileH,
		})
	}
	// Peripherals: side by side along the bottom edge, widths in
	// proportion to their areas.
	x := 0.0
	for _, b := range periph {
		if b.Area == 0 {
			continue
		}
		w := b.Area / math.Max(stripH, 1e-12)
		plan.Items = append(plan.Items, Placement{
			Block: b,
			X:     x, Y: 0, W: w, H: stripH,
		})
		x += w
	}
	return plan, nil
}

// Find returns the placement of the named block.
func (p *Plan) Find(name string) (Placement, bool) {
	for _, it := range p.Items {
		if it.Name == name {
			return it, true
		}
	}
	return Placement{}, false
}

// Distance returns the Manhattan distance between two blocks' centers.
func (p *Plan) Distance(a, b string) (float64, error) {
	pa, ok := p.Find(a)
	if !ok {
		return 0, fmt.Errorf("floorplan: unknown block %q", a)
	}
	pb, ok := p.Find(b)
	if !ok {
		return 0, fmt.Errorf("floorplan: unknown block %q", b)
	}
	return math.Abs(pa.CenterX()-pb.CenterX()) + math.Abs(pa.CenterY()-pb.CenterY()), nil
}

// MeshWireLength returns the total length of nearest-neighbor mesh links
// over the tile grid (each adjacent tile pair one link).
func (p *Plan) MeshWireLength() float64 {
	if p.Rows == 0 || p.Cols == 0 {
		return 0
	}
	horizontal := float64(p.Rows*(p.Cols-1)) * p.TilePitchX
	vertical := float64(p.Cols*(p.Rows-1)) * p.TilePitchY
	return horizontal + vertical
}

// AverageTileDistance returns the mean Manhattan distance between all
// distinct tile pairs - the expected flight distance of uniform-random
// traffic.
func (p *Plan) AverageTileDistance() float64 {
	var tiles []Placement
	for _, it := range p.Items {
		if it.OnEdge {
			continue
		}
		tiles = append(tiles, it)
	}
	n := len(tiles)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += math.Abs(tiles[i].CenterX()-tiles[j].CenterX()) +
				math.Abs(tiles[i].CenterY()-tiles[j].CenterY())
		}
	}
	return sum / float64(n*(n-1)/2)
}

// MaxRouteLength returns the longest Manhattan route between any two
// placed blocks (the worst-case global wire).
func (p *Plan) MaxRouteLength() float64 {
	var max float64
	for i := range p.Items {
		for j := i + 1; j < len(p.Items); j++ {
			d := math.Abs(p.Items[i].CenterX()-p.Items[j].CenterX()) +
				math.Abs(p.Items[i].CenterY()-p.Items[j].CenterY())
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Utilization returns placed area over die area (1.0 = perfectly packed).
func (p *Plan) Utilization() float64 {
	die := p.Width * p.Height
	if die <= 0 {
		return 0
	}
	var placed float64
	for _, it := range p.Items {
		placed += it.W * it.H
	}
	return placed / die
}

// String renders a compact textual floorplan summary.
func (p *Plan) String() string {
	s := fmt.Sprintf("die %.2f x %.2f mm (%d x %d tiles, %.0f%% utilized)\n",
		p.Width*1e3, p.Height*1e3, p.Cols, p.Rows, 100*p.Utilization())
	items := make([]Placement, len(p.Items))
	copy(items, p.Items)
	sort.Slice(items, func(i, j int) bool { return items[i].Name < items[j].Name })
	for _, it := range items {
		s += fmt.Sprintf("  %-16s @ (%.2f, %.2f) mm  %.2f x %.2f mm\n",
			it.Name, it.X*1e3, it.Y*1e3, it.W*1e3, it.H*1e3)
	}
	return s
}
