package floorplan

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func plan16(t *testing.T) *Plan {
	t.Helper()
	p, err := Grid(
		Block{Name: "tile", Area: 4e-6}, 16,
		[]Block{
			{Name: "mc0", Area: 3e-6, OnEdge: true},
			{Name: "mc1", Area: 3e-6, OnEdge: true},
			{Name: "pcie", Area: 2e-6, OnEdge: true},
		}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGridGeometry(t *testing.T) {
	p := plan16(t)
	if p.Rows != 4 || p.Cols != 4 {
		t.Fatalf("16 tiles should form a 4x4 grid, got %dx%d", p.Cols, p.Rows)
	}
	// 16 x 4mm^2 tiles = 64mm^2 core + 8mm^2 periphery = 72mm^2 die.
	die := p.Width * p.Height * 1e6
	if die < 71.9 || die > 72.1 {
		t.Errorf("die area = %.2f mm^2, want 72", die)
	}
	if u := p.Utilization(); u < 0.999 || u > 1.001 {
		t.Errorf("grid plan should be fully packed, utilization %.3f", u)
	}
	// Tiles must not overlap the peripheral strip.
	tile, _ := p.Find("tile[0]")
	mc, _ := p.Find("mc0")
	if tile.Y < mc.Y+mc.H-1e-12 {
		t.Error("tiles must sit above the peripheral strip")
	}
}

func TestDistances(t *testing.T) {
	p := plan16(t)
	// Adjacent tiles: one pitch apart.
	d, err := p.Distance("tile[0]", "tile[1]")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-p.TilePitchX) > 1e-12 {
		t.Errorf("adjacent tile distance %.4g != pitch %.4g", d, p.TilePitchX)
	}
	// Diagonal corners: 3 pitches in each dimension.
	d, _ = p.Distance("tile[0]", "tile[15]")
	want := 3*p.TilePitchX + 3*p.TilePitchY
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("corner distance %.4g != %.4g", d, want)
	}
	if _, err := p.Distance("tile[0]", "nonexistent"); err == nil {
		t.Error("unknown block must fail")
	}
}

func TestMeshWireLength(t *testing.T) {
	p := plan16(t)
	// 4x4 mesh: 4 rows x 3 horizontal + 4 cols x 3 vertical = 24 links.
	want := 12*p.TilePitchX + 12*p.TilePitchY
	if got := p.MeshWireLength(); math.Abs(got-want) > 1e-12 {
		t.Errorf("mesh wire length %.4g != %.4g", got, want)
	}
}

func TestAverageTileDistance(t *testing.T) {
	p := plan16(t)
	avg := p.AverageTileDistance()
	// For a 4x4 grid with unit pitch: the sum of |dx|+|dy| over all 256
	// ordered pairs is 640 pitches; over the 240 ordered distinct pairs
	// the mean is 640/240 = 8/3 pitches.
	want := 8.0 / 3.0 * p.TilePitchX
	if math.Abs(avg-want)/want > 0.01 {
		t.Errorf("average tile distance %.4g, want %.4g", avg, want)
	}
	if p.MaxRouteLength() <= avg {
		t.Error("max route must exceed the average")
	}
}

func TestStringSummary(t *testing.T) {
	s := plan16(t).String()
	for _, frag := range []string{"4 x 4 tiles", "tile[0]", "mc1", "pcie"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q", frag)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Grid(Block{Name: "t", Area: 1e-6}, 0, nil, 1); err == nil {
		t.Error("zero tiles must fail")
	}
	if _, err := Grid(Block{Name: "t"}, 4, nil, 1); err == nil {
		t.Error("zero tile area must fail")
	}
	if _, err := Grid(Block{Name: "t", Area: 1e-6}, 4,
		[]Block{{Name: "bad", Area: -1}}, 1); err == nil {
		t.Error("negative peripheral area must fail")
	}
}

func TestNoPeripherals(t *testing.T) {
	p, err := Grid(Block{Name: "tile", Area: 1e-6}, 4, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Height != p.Width {
		t.Errorf("4 square tiles should make a square die: %.4g x %.4g", p.Width, p.Height)
	}
}

func TestQuickConservation(t *testing.T) {
	// Property: for any tile count, total placed area equals the sum of
	// the block areas and nothing falls outside the die.
	f := func(n uint8, a uint8) bool {
		count := int(n%63) + 1
		area := (1 + float64(a%50)) * 1e-7
		p, err := Grid(Block{Name: "t", Area: area}, count,
			[]Block{{Name: "mc", Area: area * 2, OnEdge: true}}, 1)
		if err != nil {
			return false
		}
		var placed float64
		for _, it := range p.Items {
			if it.X < -1e-12 || it.Y < -1e-12 ||
				it.X+it.W > p.Width+1e-9 || it.Y+it.H > p.Height+1e-9 {
				return false
			}
			placed += it.W * it.H
		}
		want := float64(count)*area + area*2
		return math.Abs(placed-want) <= 1e-6*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
