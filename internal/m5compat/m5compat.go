// Package m5compat reads M5/gem5-style statistics dumps (the format the
// original McPAT consumed through its XML generation scripts) and converts
// them into this framework's runtime-statistics vector.
//
// A stats.txt file is a sequence of dumps delimited by
// "---------- Begin Simulation Statistics ----------" lines; each line is
//
//	<name>  <value>  # <description>
//
// Parse keeps one selected dump as a flat name->value map; ToChipStats
// maps the well-known counter names onto per-cycle core activity and
// chip-level traffic rates, averaging across cores (system.cpu0..N or
// system.switch_cpus0..N prefixes both work).
package m5compat

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"reflect"
	"strconv"
	"strings"

	"mcpat/internal/chip"
	"mcpat/internal/core"
)

// Dump is one parsed statistics dump.
type Dump map[string]float64

const dumpDelimiter = "---------- Begin Simulation Statistics ----------"

// Parse reads every dump in the stream and returns them in order. Lines
// that do not parse as statistics (histogram rows, comments) are skipped.
func Parse(r io.Reader) ([]Dump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var dumps []Dump
	var cur Dump
	for sc.Scan() {
		lineText := sc.Text()
		if strings.Contains(lineText, dumpDelimiter) {
			cur = Dump{}
			dumps = append(dumps, cur)
			continue
		}
		fields := strings.Fields(lineText)
		if len(fields) < 2 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			// Histogram buckets don't parse; ParseFloat does accept
			// "nan"/"inf" spellings, which gem5 emits for undefined
			// ratios - neither may poison the counter map.
			continue
		}
		if cur == nil {
			// Tolerate files without the delimiter header.
			cur = Dump{}
			dumps = append(dumps, cur)
		}
		cur[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("m5compat: %w", err)
	}
	if len(dumps) == 0 {
		return nil, fmt.Errorf("m5compat: no statistics found")
	}
	return dumps, nil
}

// ParseLast returns the final dump of the stream (the usual choice: the
// region of interest is dumped last).
func ParseLast(r io.Reader) (Dump, error) {
	dumps, err := Parse(r)
	if err != nil {
		return nil, err
	}
	return dumps[len(dumps)-1], nil
}

// get sums a per-CPU statistic across all core prefixes and reports how
// many cores carried it.
func (d Dump) perCPU(suffix string) (sum float64, cores int) {
	for _, prefix := range []string{"system.cpu", "system.switch_cpus"} {
		for name, v := range d {
			if !strings.HasPrefix(name, prefix) {
				continue
			}
			rest := name[len(prefix):]
			// Accept "0.suffix", "5.suffix", or ".suffix" (single core).
			i := 0
			for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
				i++
			}
			if rest[i:] == "."+suffix {
				sum += v
				cores++
			}
		}
		if cores > 0 {
			return sum, cores
		}
	}
	return 0, 0
}

// first returns the first present statistic among names.
func (d Dump) first(names ...string) (float64, bool) {
	for _, n := range names {
		if v, ok := d[n]; ok {
			return v, true
		}
	}
	return 0, false
}

// ToChipStats converts a dump into the chip statistics vector for a chip
// with the given core count and clock. Cycle counts come from the dump
// itself (numCycles / sim_seconds x clock). Missing counters simply leave
// their activity at zero - the same graceful degradation the original
// scripts exhibit.
func ToChipStats(d Dump, clockHz float64, numCores int) (*chip.Stats, error) {
	if clockHz <= 0 || numCores <= 0 {
		return nil, fmt.Errorf("m5compat: clock and core count required")
	}
	cycles, nc := d.perCPU("numCycles")
	if nc > 0 {
		cycles /= float64(nc) // average per core
	} else if secs, ok := d.first("sim_seconds", "simSeconds"); ok {
		cycles = secs * clockHz
	}
	if cycles <= 0 {
		return nil, fmt.Errorf("m5compat: no cycle count (numCycles or sim_seconds) in dump")
	}
	seconds := cycles / clockHz

	perCycle := func(suffix string) float64 {
		v, n := d.perCPU(suffix)
		if n == 0 {
			return 0
		}
		return v / float64(n) / cycles
	}

	act := core.Activity{
		ICacheAccess: perCycle("icache.overall_accesses::total"),
		Decode:       perCycle("committedInsts"),
		Rename:       perCycle("rename.RenamedOperands"),
		IQIssue:      perCycle("iq.iqInstsIssued"),
		IQWakeup:     perCycle("iq.iqInstsIssued"),
		IQWrite:      perCycle("iq.iqInstsAdded"),
		ROBAcc:       perCycle("rob.rob_reads") + perCycle("rob.rob_writes"),
		RFRead:       perCycle("int_regfile_reads"),
		RFWrite:      perCycle("int_regfile_writes"),
		FPRFRead:     perCycle("fp_regfile_reads"),
		FPRFWrite:    perCycle("fp_regfile_writes"),
		IntOp:        perCycle("num_int_alu_accesses"),
		FPOp:         perCycle("num_fp_alu_accesses"),
		DCacheRead:   perCycle("dcache.ReadReq_accesses::total"),
		DCacheWrite:  perCycle("dcache.WriteReq_accesses::total"),
		CacheMiss:    perCycle("dcache.overall_misses::total") + perCycle("icache.overall_misses::total"),
		BTBAccess:    perCycle("branchPred.BTBLookups"),
		PredAccess:   perCycle("branchPred.lookups"),
	}
	if act.Decode == 0 {
		act.Decode = perCycle("commit.committedInsts")
	}
	if act.IntOp == 0 {
		act.IntOp = act.Decode * 0.5 // mix fallback
	}
	act.ITLBAccess = act.ICacheAccess
	act.DTLBAccess = act.DCacheRead + act.DCacheWrite
	act.LSQAccess = act.DTLBAccess
	act.LSQSearch = act.DCacheWrite
	act.Bypass = act.IntOp + act.FPOp + act.DCacheRead
	ipc := act.Decode
	if ipc > 1 {
		ipc = 1
	}
	act.PipelineDuty = ipc

	stats := &chip.Stats{CoreRun: act}
	if v, ok := d.first("system.l2.overall_accesses::total", "system.l2cache.overall_accesses::total"); ok {
		// Split reads/writes with the common 70/30 ratio unless explicit.
		rd, rok := d.first("system.l2.ReadReq_accesses::total")
		wr, wok := d.first("system.l2.WriteReq_accesses::total")
		if rok || wok {
			stats.L2Reads = rd / seconds
			stats.L2Writes = wr / seconds
		} else {
			stats.L2Reads = 0.7 * v / seconds
			stats.L2Writes = 0.3 * v / seconds
		}
	}
	if v, ok := d.first("system.mem_ctrls.num_reads::total", "system.physmem.num_reads::total"); ok {
		w, _ := d.first("system.mem_ctrls.num_writes::total", "system.physmem.num_writes::total")
		stats.MCAccesses = (v + w) / seconds
	}
	if v, ok := d.first("system.tol2bus.pkt_count::total"); ok {
		stats.NoCFlits = v / seconds
	}
	if f := firstNonFinite(reflect.ValueOf(stats).Elem(), ""); f != "" {
		// Extreme but individually-finite counters can still overflow a
		// rate division (huge count over a denormal cycle time); such a
		// dump is rejected rather than fed to the power models.
		return nil, fmt.Errorf("m5compat: non-finite statistic %s", strings.TrimPrefix(f, "."))
	}
	return stats, nil
}

// firstNonFinite walks the float64 fields of a statistics struct (depth
// first) and returns the path of the first NaN/Inf, or "" if all finite.
func firstNonFinite(v reflect.Value, path string) string {
	switch v.Kind() {
	case reflect.Float64:
		if f := v.Float(); math.IsNaN(f) || math.IsInf(f, 0) {
			return path
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := firstNonFinite(v.Field(i), path+"."+v.Type().Field(i).Name); f != "" {
				return f
			}
		}
	}
	return ""
}
