package m5compat

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// FuzzM5Parse asserts the no-panic contract of the gem5 statistics
// reader: arbitrary input either fails with an error or parses into
// dumps whose values are finite, and any statistics vector accepted by
// ToChipStats is finite in every field.
func FuzzM5Parse(f *testing.F) {
	f.Add(sampleStats)
	f.Add("")
	f.Add(dumpDelimiter + "\n")
	f.Add("system.cpu0.numCycles nan # undefined ratio\nsim_seconds inf # bad\n")
	f.Add("sim_seconds 1e-320 # denormal\nsystem.l2.overall_accesses::total 1e308 # huge\n")
	f.Add("system.cpu.numCycles 1000 # single-core prefix\nsystem.cpu.committedInsts 900 # n\n")

	f.Fuzz(func(t *testing.T, doc string) {
		dumps, err := Parse(strings.NewReader(doc))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		for _, d := range dumps {
			for name, v := range d {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("Parse let non-finite %q = %v into the counter map", name, v)
				}
			}
		}
		stats, err := ToChipStats(dumps[len(dumps)-1], 2e9, 4)
		if err != nil {
			return
		}
		if bad := firstNonFinite(reflect.ValueOf(stats).Elem(), ""); bad != "" {
			t.Fatalf("accepted stats carry non-finite field %s", bad)
		}
	})
}
