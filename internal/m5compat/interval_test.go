package m5compat

import (
	"strings"
	"testing"
)

// threeDumps is a minimal multi-dump stream with distinct activity per
// interval and a shorter final interval.
const threeDumps = `
---------- Begin Simulation Statistics ----------
sim_seconds 0.002 # seconds
system.cpu0.numCycles 4000000 #
system.cpu1.numCycles 4000000 #
system.cpu0.committedInsts 4000000 #
system.cpu1.committedInsts 4000000 #
---------- Begin Simulation Statistics ----------
sim_seconds 0.001 # seconds
system.cpu0.numCycles 2000000 #
system.cpu1.numCycles 2000000 #
system.cpu0.committedInsts 1000000 #
system.cpu1.committedInsts 1000000 #
---------- Begin Simulation Statistics ----------
system.cpu0.numCycles 1000000 #
system.cpu1.numCycles 1000000 #
system.cpu0.committedInsts 1500000 #
system.cpu1.committedInsts 1500000 #
`

// TestToChipStatsAt pins per-interval selection: each dump converts
// independently, with per-dump cycle counts as the rate denominator.
func TestToChipStatsAt(t *testing.T) {
	dumps, err := Parse(strings.NewReader(threeDumps))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 3 {
		t.Fatalf("parsed %d dumps, want 3", len(dumps))
	}
	const hz = 2e9
	wantIPC := []float64{1.0, 0.5, 1.5}
	for i, want := range wantIPC {
		s, err := ToChipStatsAt(dumps, i, hz, 2)
		if err != nil {
			t.Fatalf("dump %d: %v", i, err)
		}
		if s.CoreRun.Decode != want {
			t.Fatalf("dump %d: committed/cycle = %v, want %v", i, s.CoreRun.Decode, want)
		}
	}
	// The last-dump shortcut and the indexed path agree.
	last, err := ToChipStats(dumps[2], hz, 2)
	if err != nil {
		t.Fatal(err)
	}
	at, err := ToChipStatsAt(dumps, 2, hz, 2)
	if err != nil {
		t.Fatal(err)
	}
	if *last != *at {
		t.Fatalf("indexed conversion differs from direct: %+v vs %+v", last, at)
	}
	if _, err := ToChipStatsAt(dumps, 3, hz, 2); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := ToChipStatsAt(dumps, -1, hz, 2); err == nil {
		t.Fatal("negative index accepted")
	}
}

// TestSimSeconds pins the interval-duration helper: sim_seconds wins
// when present, cycles/clock otherwise, error when neither exists.
func TestSimSeconds(t *testing.T) {
	dumps, err := Parse(strings.NewReader(threeDumps))
	if err != nil {
		t.Fatal(err)
	}
	const hz = 2e9
	if s, err := SimSeconds(dumps[0], hz); err != nil || s != 0.002 {
		t.Fatalf("dump 0: %v, %v", s, err)
	}
	// Dump 2 has no sim_seconds: 1e6 cycles at 2 GHz = 0.5 ms.
	if s, err := SimSeconds(dumps[2], hz); err != nil || s != 0.0005 {
		t.Fatalf("dump 2: %v, %v", s, err)
	}
	if _, err := SimSeconds(Dump{}, hz); err == nil {
		t.Fatal("empty dump accepted")
	}
	if _, err := SimSeconds(dumps[2], 0); err == nil {
		t.Fatal("zero clock accepted for cycle-derived duration")
	}
}
