package m5compat

import (
	"strings"
	"testing"
)

const sampleStats = `
---------- Begin Simulation Statistics ----------
sim_seconds                                  0.001000   # Number of seconds simulated
system.cpu0.numCycles                         2000000   # number of cpu cycles simulated
system.cpu1.numCycles                         2000000   # number of cpu cycles simulated
system.cpu0.committedInsts                    1500000   # Number of instructions committed
system.cpu1.committedInsts                    1300000   # Number of instructions committed
system.cpu0.icache.overall_accesses::total    1800000   # number of overall accesses
system.cpu1.icache.overall_accesses::total    1700000   # number of overall accesses
system.cpu0.icache.overall_misses::total         9000   # number of overall misses
system.cpu1.icache.overall_misses::total         8000   # number of overall misses
system.cpu0.dcache.ReadReq_accesses::total     400000   # number of read accesses
system.cpu1.dcache.ReadReq_accesses::total     380000   # number of read accesses
system.cpu0.dcache.WriteReq_accesses::total    180000   # number of write accesses
system.cpu1.dcache.WriteReq_accesses::total    170000   # number of write accesses
system.cpu0.dcache.overall_misses::total        22000   # misses
system.cpu1.dcache.overall_misses::total        21000   # misses
system.cpu0.num_int_alu_accesses              1100000   # integer alu ops
system.cpu1.num_int_alu_accesses              1000000   # integer alu ops
system.cpu0.num_fp_alu_accesses                 90000   # fp alu ops
system.cpu1.num_fp_alu_accesses                 80000   # fp alu ops
system.cpu0.branchPred.lookups                 300000   # predictor lookups
system.cpu1.branchPred.lookups                 280000   # predictor lookups
system.cpu0.branchPred.BTBLookups              250000   # btb lookups
system.cpu1.branchPred.BTBLookups              240000   # btb lookups
system.l2.overall_accesses::total               80000   # l2 accesses
system.mem_ctrls.num_reads::total               15000   # memory reads
system.mem_ctrls.num_writes::total               7000   # memory writes
system.cpu0.iq.iqInstsIssued                  1600000   # issued
system.cpu1.iq.iqInstsIssued                  1450000   # issued
some.histogram::bucket                        garbage   # non-numeric is skipped
`

func TestParse(t *testing.T) {
	dumps, err := Parse(strings.NewReader(sampleStats))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps", len(dumps))
	}
	d := dumps[0]
	if d["system.cpu0.committedInsts"] != 1500000 {
		t.Errorf("committedInsts = %v", d["system.cpu0.committedInsts"])
	}
	if _, ok := d["some.histogram::bucket"]; ok {
		t.Error("non-numeric lines must be skipped")
	}
}

func TestParseMultipleDumps(t *testing.T) {
	two := sampleStats + "\n" + dumpDelimiter + "\nsim_seconds 0.002 # s\nsystem.cpu0.numCycles 4000000 # c\nsystem.cpu0.committedInsts 99 # n\n"
	dumps, err := Parse(strings.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 2 {
		t.Fatalf("got %d dumps, want 2", len(dumps))
	}
	last, err := ParseLast(strings.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	if last["system.cpu0.committedInsts"] != 99 {
		t.Error("ParseLast must return the final dump")
	}
}

func TestToChipStats(t *testing.T) {
	d, err := ParseLast(strings.NewReader(sampleStats))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ToChipStats(d, 2e9, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := stats.CoreRun
	// committedInsts averaged: (1.5M+1.3M)/2 over 2M cycles = 0.7/cycle.
	if a.Decode < 0.69 || a.Decode > 0.71 {
		t.Errorf("Decode = %v, want ~0.7", a.Decode)
	}
	if a.ICacheAccess < 0.86 || a.ICacheAccess > 0.89 {
		t.Errorf("ICacheAccess = %v, want ~0.875", a.ICacheAccess)
	}
	if a.DCacheRead <= 0 || a.DCacheWrite <= 0 || a.IntOp <= 0 {
		t.Errorf("missing activity: %+v", a)
	}
	if a.PipelineDuty <= 0 || a.PipelineDuty > 1 {
		t.Errorf("PipelineDuty = %v", a.PipelineDuty)
	}
	// L2: 80000 accesses over 1ms (2M cycles at 2GHz) = 80M/s.
	total := stats.L2Reads + stats.L2Writes
	if total < 79e6 || total > 81e6 {
		t.Errorf("L2 rate = %v, want ~80e6", total)
	}
	// Memory: 22000 over 1ms = 22M/s.
	if stats.MCAccesses < 21.9e6 || stats.MCAccesses > 22.1e6 {
		t.Errorf("MC rate = %v", stats.MCAccesses)
	}
}

func TestToChipStatsErrors(t *testing.T) {
	d := Dump{"unrelated": 1}
	if _, err := ToChipStats(d, 2e9, 2); err == nil {
		t.Error("missing cycle counts must fail")
	}
	if _, err := ToChipStats(Dump{}, 0, 2); err == nil {
		t.Error("zero clock must fail")
	}
}

func TestSimSecondsFallback(t *testing.T) {
	d := Dump{
		"sim_seconds":                0.001,
		"system.cpu0.committedInsts": 1e6,
	}
	stats, err := ToChipStats(d, 1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1e6 insts over 1e6 cycles = 1.0/cycle.
	if stats.CoreRun.Decode < 0.99 || stats.CoreRun.Decode > 1.01 {
		t.Errorf("Decode = %v", stats.CoreRun.Decode)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Error("empty stream must fail")
	}
}

func TestSingleCoreDotPrefix(t *testing.T) {
	// gem5 single-core configs name the CPU "system.cpu" with no index.
	text := `
system.cpu.numCycles 1000000 # c
system.cpu.committedInsts 800000 # n
`
	d, err := ParseLast(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ToChipStats(d, 1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CoreRun.Decode < 0.79 || stats.CoreRun.Decode > 0.81 {
		t.Errorf("Decode = %v, want 0.8", stats.CoreRun.Decode)
	}
}
