package m5compat

import (
	"fmt"

	"mcpat/internal/chip"
)

// ToChipStatsAt converts the i-th dump of a multi-dump stats stream into
// the chip statistics vector — the per-interval entry point of the trace
// engine, which walks every dump in order rather than keeping only the
// last one.
func ToChipStatsAt(dumps []Dump, i int, clockHz float64, numCores int) (*chip.Stats, error) {
	if i < 0 || i >= len(dumps) {
		return nil, fmt.Errorf("m5compat: dump index %d out of range [0,%d)", i, len(dumps))
	}
	return ToChipStats(dumps[i], clockHz, numCores)
}

// SimSeconds reports the simulated wall-clock duration of one dump:
// sim_seconds/simSeconds when the dump carries it, otherwise the average
// per-core cycle count over the clock. gem5 resets these counters at
// every dump, so the value is the interval duration, not a cumulative
// time.
func SimSeconds(d Dump, clockHz float64) (float64, error) {
	if secs, ok := d.first("sim_seconds", "simSeconds"); ok && secs > 0 {
		return secs, nil
	}
	if clockHz <= 0 {
		return 0, fmt.Errorf("m5compat: clock required to derive interval duration from cycles")
	}
	if cycles, n := d.perCPU("numCycles"); n > 0 {
		return cycles / float64(n) / clockHz, nil
	}
	return 0, fmt.Errorf("m5compat: no duration (sim_seconds or numCycles) in dump")
}
