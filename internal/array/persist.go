package array

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math"

	"mcpat/internal/persist"
)

// Disk tier of the array synthesis cache.
//
// The in-memory memo (memo.go) consults persist.Default() on every
// miss, inside the single-flight owner path: memory -> disk ->
// synthesize, with exactly one goroutine per key walking the tiers.
// Disk entries are keyed by the canonical Key's explicit binary
// encoding (the same identity the memory tier uses: normalized config
// plus tech-node value fingerprint) and carry the gob-serialized
// Result. Gob preserves float64 bit patterns exactly, so a
// disk-hydrated Result is bit-identical to the Result the publishing
// process synthesized — the equivalence tests pin this at the array,
// chip, and validation-target levels.
//
// The namespace carries a version; changing Key or Result shape must
// bump it so stale entries from older binaries strand (and age out via
// eviction) instead of decoding wrongly.

// arrayNS is the disk namespace of array synthesis results.
const arrayNS = "array.v1"

// encodeKey serializes the canonical Key deterministically. Explicit
// field-by-field binary encoding (not gob, not fmt) so the on-disk
// identity never depends on reflection ordering or printf formatting.
func (k *Key) encodeKey() []byte {
	buf := make([]byte, 0, 26*8)
	u := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	i := func(v int) { u(uint64(int64(v))) }
	b := func(v bool) {
		if v {
			u(1)
		} else {
			u(0)
		}
	}
	u(k.TechFP)
	u(uint64(k.Periph))
	u(uint64(k.Cell))
	b(k.LongChannel)
	i(k.Bytes)
	i(k.Entries)
	i(k.EntryBits)
	i(k.WordBits)
	i(k.Assoc)
	i(k.TagBits)
	i(k.Banks)
	i(k.RWPorts)
	i(k.RdPorts)
	i(k.WrPorts)
	i(k.SearchPorts)
	u(uint64(k.CellKind))
	u(math.Float64bits(k.TargetCycle))
	u(uint64(k.Obj))
	b(k.Sequential)
	return buf
}

// encodeResult serializes a synthesized Result for the disk tier.
func encodeResult(res *Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeResult deserializes a disk entry's payload. The store already
// verified framing and checksum; a decode error here means codec skew
// and is treated as a miss by the caller.
func decodeResult(data []byte) (*Result, error) {
	var res Result
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// diskLoad returns the disk tier's Result for key, or nil. Called only
// by the single-flight owner of a memory miss.
func diskLoad(key *Key) *Result {
	store := persist.Default()
	if store == nil {
		return nil
	}
	data, ok := store.Get(arrayNS, key.encodeKey())
	if !ok {
		return nil
	}
	res, err := decodeResult(data)
	if err != nil {
		// Framing was valid but the payload does not decode: a codec
		// version skew that slipped past the namespace version. Treat as
		// a miss; cold synthesis will republish the current shape.
		return nil
	}
	return res
}

// diskStore publishes a freshly synthesized Result to the disk tier.
// Never fails the caller: a dropped write only costs a future process
// one cold synthesis.
func diskStore(key *Key, res *Result) {
	store := persist.Default()
	if store == nil {
		return
	}
	data, err := encodeResult(res)
	if err != nil {
		return
	}
	store.Put(arrayNS, key.encodeKey(), data)
}
