package array

import (
	"math"

	"mcpat/internal/circuit"
	"mcpat/internal/power"
	"mcpat/internal/tech"
)

func newPeriphCtx(cfg *Config) circuit.Ctx {
	return circuit.NewCtx(cfg.Tech, cfg.Periph, cfg.LongChannel)
}

// newCAM synthesizes a content-addressable array: TLBs, fully associative
// cache tags, issue-queue wakeup logic, LSQ address search. Each entry has
// tag (searchable) bits plus optional payload bits read out on a match.
//
// Search energy dominates: every search drives all searchlines and
// precharges/discharges all matchlines. Reads/writes behave like a small
// RAM row access.
func newCAM(cfg Config, totalBits, wordBits int) (*Result, error) {
	n := cfg.Tech
	per := newPeriphCtx(&cfg)
	cellDev := n.Device(cfg.Cell, false)

	entries := cfg.Entries
	entryBits := cfg.EntryBits
	if entries == 0 { // byte-sized fully associative cache
		blockBytes := wordBits / 8
		if blockBytes == 0 {
			blockBytes = 64
		}
		entries = cfg.Bytes / blockBytes
		entryBits = wordBits
	}
	tagBits := cfg.TagBits
	if tagBits == 0 {
		tagBits = physAddrBits - ceilLog2(maxInt(entryBits/8, 1)) + tagStatusBits
	}

	searchPorts := cfg.SearchPorts
	if searchPorts == 0 {
		searchPorts = 1
	}
	ports := cfg.ports() + searchPorts

	cellW, cellH := cellGeometry(n, CAM, ports-1)
	local := n.Wire(tech.Aggressive, tech.Local)
	wmin := n.MinWidthN()
	f := n.Feature

	rows := entries
	tagCols := tagBits
	dataCols := entryBits

	// --- Searchlines: one differential pair per tag bit, spanning all rows.
	cSLbit := float64(rows)*(2*1.3*f*per.Dev.CgPerW) + float64(rows)*cellH*local.CapPerM
	slChain := per.BufferChain(cSLbit)
	eSearchLines := float64(tagCols) * (slChain.Energy + per.SwitchE(cSLbit))
	tSearchLines := slChain.Delay + 0.69*local.ResPerM*float64(rows)*cellH*cSLbit/2

	// --- Matchlines: one per row, spanning the tag columns; precharged
	// high, almost all discharge every search.
	cML := float64(tagCols)*(2*1.3*f*per.Dev.CjPerW) + float64(tagCols)*cellW*local.CapPerM
	eMatchLines := float64(rows) * per.FullSwingE(cML)
	iML := 0.5 * per.Dev.IonN * (2 * f)
	tMatchLine := cML * per.Vdd() * 0.5 / math.Max(iML, 1e-12)

	// Priority encoder / match OR: ~log2(rows) levels.
	tEncode := float64(ceilLog2(rows)) * per.FO4()
	eEncode := float64(rows) * per.SwitchE(4*wmin*per.Dev.CgPerW) * 0.25

	eSearch := eSearchLines + eMatchLines + eEncode
	tSearch := tSearchLines + tMatchLine + tEncode

	// --- RAM-mode read/write of the payload (and tag write).
	cBL := float64(rows)*(1.3*f*per.Dev.CjPerW) + float64(rows)*cellH*local.CapPerM
	vSwing := 0.15 * per.Vdd()
	eRead := float64(dataCols)*cBL*per.Vdd()*vSwing + eEncode
	eWrite := float64(dataCols+tagCols) * cBL * per.Vdd() * per.Vdd() * 0.5
	iCell := 0.5 * cellDev.IonN * (2 * f)
	tRead := tEncode + cBL*vSwing/math.Max(iCell, 1e-12) + 2*per.FO4()

	// --- Geometry -----------------------------------------------------
	width := float64(tagCols+dataCols)*cellW + 60*f
	height := float64(rows)*cellH + 60*f
	area := width * height * 1.15

	// --- Leakage --------------------------------------------------------
	bits := float64(rows * (tagCols + dataCols))
	// CAM cells leak ~1.5x an SRAM cell (extra match transistors).
	cellLeakSub := 1.5 * cellDev.Ioff(n.SRAMCellNMOSWidth, n.SRAMCellPMOSWidth, n.Temperature) * cellDev.Vdd * bits
	cellLeakGate := 1.5 * cellDev.Ig(n.SRAMCellNMOSWidth+n.SRAMCellPMOSWidth) * cellDev.Vdd * bits
	periphW := float64(rows)*6*wmin + float64(tagCols+dataCols)*6*wmin
	periphLeakSub := per.Dev.Ioff(periphW, periphW, n.Temperature) * per.Vdd()
	periphLeakGate := per.Dev.Ig(2*periphW) * per.Vdd()

	access := math.Max(tSearch, tRead)
	cycle := access * 0.9
	if mn := 6 * per.FO4(); cycle < mn {
		cycle = mn
	}

	res := &Result{
		PAT: power.PAT{
			Energy: power.Energy{Read: eRead, Write: eWrite, Search: eSearch},
			Static: power.Static{Sub: cellLeakSub + periphLeakSub, Gate: cellLeakGate + periphLeakGate},
			Area:   area,
			Delay:  access,
			Cycle:  cycle,
		},
		AccessTime: access,
		CycleTime:  cycle,
		Height:     height,
		Width:      width,
		Rows:       rows,
		Cols:       tagCols + dataCols,
		Subarrays:  1,
		ColMux:     1,
		Banks:      1,
	}
	return res, nil
}

// newDFFArray models flip-flop based storage: small, latency-critical,
// heavily multiported structures (fetch/instruction buffers, rename
// checkpoint storage, NoC FIFOs). Reads go through a mux tree; writes
// clock one entry's flip-flops.
func newDFFArray(cfg Config, totalBits, wordBits int) (*Result, error) {
	n := cfg.Tech
	per := newPeriphCtx(&cfg)
	ff := per.NewDFF()

	entries := cfg.Entries
	if entries == 0 {
		entries = maxInt(totalBits/maxInt(wordBits, 1), 1)
	}
	ports := cfg.ports()

	// Read: mux tree over entries for each output bit, plus output driver.
	muxLevels := ceilLog2(entries)
	wmin := n.MinWidthN()
	cMuxPerLevel := 2 * wmin * per.Dev.CjPerW
	eReadBit := float64(muxLevels)*per.SwitchE(cMuxPerLevel)*0.5 + per.SwitchE(per.InvCin(2*wmin))
	eRead := float64(wordBits) * eReadBit
	tRead := float64(muxLevels)*0.7*per.FO4() + per.FO4()

	// Write: clock one entry (always) + toggle ~50% of its data bits.
	eWrite := float64(wordBits) * (ff.EnergyClk + 0.5*ff.EnergyData)

	// Idle clocking of the whole structure is charged to the clock
	// network model, not here; we expose the clock load via area/leak.
	bits := float64(totalBits)
	leakSub := ff.SubLeak * bits
	leakGate := ff.GateLeak * bits
	portFactor := 1 + 0.25*float64(ports-1)
	area := bits*ff.Area*portFactor + bits*float64(muxLevels)*2*wmin*4*n.Feature

	access := tRead
	cycle := access
	if mn := 4 * per.FO4(); cycle < mn {
		cycle = mn
	}

	res := &Result{
		PAT: power.PAT{
			Energy: power.Energy{Read: eRead, Write: eWrite},
			Static: power.Static{Sub: leakSub, Gate: leakGate},
			Area:   area,
			Delay:  access,
			Cycle:  cycle,
		},
		AccessTime: access,
		CycleTime:  cycle,
		Height:     math.Sqrt(area),
		Width:      math.Sqrt(area),
		Rows:       entries,
		Cols:       maxInt(totalBits/maxInt(entries, 1), 1),
		Subarrays:  1,
		ColMux:     1,
		Banks:      1,
	}
	return res, nil
}

// eDRAM modeling. The SRAM machinery synthesizes the organization; this
// adjustment converts cells to 1T1C: ~3.6x denser bit cells, destructive
// reads that pay a restore (write-back) on every access, slower sensing,
// and a refresh power floor proportional to capacity.
const (
	// edramCellAreaRatio is the 1T1C cell area relative to a 6T SRAM cell.
	edramCellAreaRatio = 1.0 / 3.6
	// edramRetentionTime is the refresh interval at the default 360 K
	// junction temperature (retention degrades ~2x per 10 K above that).
	edramRetentionTime = 40e-6
)

func applyEDRAM(cfg *Config, res *Result, totalBits int) {
	per := newPeriphCtx(cfg)
	n := cfg.Tech

	// Density: shrink the cell-dominated part of the area. The periphery
	// fraction (~35% of the macro) does not shrink.
	const periphFrac = 0.35
	res.Area = res.Area * (periphFrac + (1-periphFrac)*edramCellAreaRatio)
	res.Height *= 0.6
	res.Width *= 0.6

	// Destructive read: every read includes a restore (≈ a write).
	res.Energy.Read += res.Energy.Write * 0.8

	// Sensing a 1T1C cell is slower than a 6T differential read.
	res.AccessTime *= 1.5
	res.CycleTime *= 1.8
	res.Delay = res.AccessTime
	res.Cycle = res.CycleTime

	// Cell leakage: no subthreshold path through the storage cell, but
	// refresh sweeps the whole array every retention interval. Refresh
	// energy per bit ≈ one full bitline write at cell granularity.
	cellDev := n.Device(cfg.Cell, false)
	cellSub := cellDev.Ioff(n.SRAMCellNMOSWidth, n.SRAMCellPMOSWidth, n.Temperature) *
		cellDev.Vdd * float64(totalBits)
	res.Static.Sub -= cellSub * 0.9 // storage cells stop leaking
	if res.Static.Sub < 0 {
		res.Static.Sub = 0
	}
	refreshEnergyPerBit := per.FullSwingE(2e-15) // ~2 fF restored per cell
	res.RefreshPower = refreshEnergyPerBit * float64(totalBits) / edramRetentionTime
	res.Static.Sub += res.RefreshPower
}
