package array

import "mcpat/internal/tech"

// Canonical cache keys for array synthesis.
//
// Two Configs that the synthesis engine cannot tell apart must map to the
// same Key, and two Configs that can produce different Results must map
// to different Keys. The normalization rules below encode exactly what
// each synthesis path reads:
//
//   - Name is excluded: it only decorates error messages and has no
//     effect on the synthesized numbers.
//   - The technology node enters by value fingerprint, not pointer
//     identity: every chip build materializes its own *tech.Node, and a
//     DSE sweep must share solves across candidates that use equal nodes.
//   - validate()'s defaulting runs first, so zero-valued optional fields
//     (Banks, ports, BlockBits) key identically to their explicit
//     defaults.
//   - Fields the selected synthesis path never reads are forced to fixed
//     values (see normalize), so e.g. a CAM with a stray Obj setting or a
//     plain RAM with a leftover TagBits keys the same as its clean twin.
//   - The tri-state Sequential option is resolved to the concrete bool
//     the cache path would use, so nil and an explicit default-matching
//     value are equal.
type Key struct {
	TechFP      uint64
	Periph      tech.DeviceType
	Cell        tech.DeviceType
	LongChannel bool

	Bytes, Entries, EntryBits int
	WordBits                  int // effective output width from validate()

	Assoc   int
	TagBits int
	Banks   int

	RWPorts, RdPorts, WrPorts, SearchPorts int

	CellKind    CellType
	TargetCycle float64
	Obj         Objective
	Sequential  bool
}

// canonicalKey builds the cache key for a validated config. cfg must
// already have been passed through validate() (defaults applied);
// wordBits is validate()'s effective output width.
func canonicalKey(cfg *Config, wordBits int) Key {
	k := Key{
		TechFP:      cfg.Tech.Fingerprint(),
		Periph:      cfg.Periph,
		Cell:        cfg.Cell,
		LongChannel: cfg.LongChannel,
		Bytes:       cfg.Bytes,
		Entries:     cfg.Entries,
		EntryBits:   cfg.EntryBits,
		WordBits:    wordBits,
		Assoc:       cfg.Assoc,
		TagBits:     cfg.TagBits,
		Banks:       cfg.Banks,
		RWPorts:     cfg.RWPorts,
		RdPorts:     cfg.RdPorts,
		WrPorts:     cfg.WrPorts,
		SearchPorts: cfg.SearchPorts,
		CellKind:    cfg.CellKind,
		TargetCycle: cfg.TargetCycle,
		Obj:         cfg.Obj,
	}
	switch {
	case cfg.FullyAssoc || cfg.CellKind == CAM:
		// newCAM: single fixed organization; no optimizer, no banking, no
		// way split. FullyAssoc and CellKind==CAM dispatch identically.
		k.CellKind = CAM
		k.Assoc = 0
		k.Banks = 1
		k.TargetCycle = 0
		k.Obj = 0
		if k.SearchPorts == 0 {
			k.SearchPorts = 1 // newCAM's own default
		}
	case cfg.CellKind == DFF:
		// newDFFArray: entries x wordBits mux/FF structure.
		k.Assoc = 0
		k.TagBits = 0
		k.Banks = 1
		k.SearchPorts = 0
		k.TargetCycle = 0
		k.Obj = 0
	case cfg.Assoc > 0:
		// newCache: data + tag arrays. Resolve the tri-state way-access
		// policy to the concrete value the synthesis uses.
		parallel := cfg.Bytes <= 64*1024
		if cfg.Sequential != nil {
			parallel = !*cfg.Sequential
		}
		k.Sequential = !parallel
		k.SearchPorts = 0
	default:
		// newRAM (SRAM or EDRAM): no tags, no search, no way policy.
		k.TagBits = 0
		k.SearchPorts = 0
	}
	return k
}

// shard maps the key onto a cache shard with a cheap mix of the fields
// most likely to differ between concurrently solved structures.
func (k *Key) shard() uint64 {
	h := k.TechFP
	h = h*31 + uint64(k.Bytes)
	h = h*31 + uint64(k.Entries)
	h = h*31 + uint64(k.EntryBits)
	h = h*31 + uint64(k.WordBits)
	h = h*31 + uint64(k.Assoc)
	h = h*31 + uint64(k.Banks)
	h = h*31 + uint64(k.RWPorts+k.RdPorts<<8+k.WrPorts<<16+k.SearchPorts<<24)
	h = h*31 + uint64(k.CellKind)
	h ^= h >> 33
	return h
}
