package array

import (
	"sync"
	"sync/atomic"
)

// Memoized synthesis with single-flight deduplication.
//
// The internal optimizer enumerates every (rows, column-mux, sub-word)
// organization of a structure per solve, and chip-level sweeps re-solve
// byte-identical structures hundreds of times (every DSE candidate
// rebuilds the same L1s, TLBs, ROBs, MSHRs...). The package keeps one
// process-wide result cache keyed by the canonical Key: a repeated solve
// returns a copy of the cached Result, and concurrent solves of the same
// structure share one in-flight computation instead of racing N copies.
//
// Correctness properties:
//   - Cached results are bit-identical to uncached ones: hits return what
//     the one real solve produced, copied so callers may mutate freely.
//   - Only successful solves are cached. Errors carry the structure's
//     Name, which is excluded from the key, so error values are never
//     shared across callers; a waiter that joined a failing solve re-runs
//     the synthesis itself to get an error with its own name in it.
//   - A panic inside a solve (contained further up by chip-level
//     recovery) unblocks all waiters and leaves no entry behind.
//   - Technology-node mutations invalidate naturally: the key embeds the
//     node's value fingerprint, recomputed per call, so a node that was
//     retuned (OverrideVdd, temperature) simply keys differently.

// memoShards bounds lock contention between parallel DSE workers; 32 is
// comfortably above any sane GOMAXPROCS share for this workload.
const memoShards = 32

type memoEntry struct {
	done chan struct{} // closed when res/err are final
	res  *Result       // immutable once done is closed
	err  error
}

type memoShard struct {
	mu      sync.Mutex
	entries map[Key]*memoEntry
}

type memoCache struct {
	disabled atomic.Bool
	hits     atomic.Uint64
	misses   atomic.Uint64
	shared   atomic.Uint64
	bypassed atomic.Uint64
	shards   [memoShards]memoShard
}

var memo memoCache

// CacheStats is a snapshot of the synthesis-cache counters.
type CacheStats struct {
	// Hits counts solves served from the cache (including Shared).
	Hits uint64
	// Misses counts memory-tier misses that populated the cache: real
	// synthesis runs, plus loads hydrated from the disk tier when a
	// persistent cache directory is configured (the disk tier keeps its
	// own hit/miss counters; see internal/persist).
	Misses uint64
	// Shared counts hits that joined an in-flight solve started by a
	// concurrent caller instead of waiting on a completed entry - the
	// single-flight deduplications.
	Shared uint64
	// Bypassed counts solves that ran uncached: caching disabled, or a
	// waiter re-running a solve whose shared computation failed.
	Bypassed uint64
	// Entries is the number of resident cached results (a gauge, not a
	// counter; Delta keeps the newer snapshot's value).
	Entries int
}

// HitRate returns the fraction of cache-served solves among all solves
// that consulted the cache.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Delta returns the counter difference s - prev, for reporting one
// sweep's cache behavior. Entries is carried from s unchanged.
func (s CacheStats) Delta(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:     s.Hits - prev.Hits,
		Misses:   s.Misses - prev.Misses,
		Shared:   s.Shared - prev.Shared,
		Bypassed: s.Bypassed - prev.Bypassed,
		Entries:  s.Entries,
	}
}

// Stats returns the current global cache counters.
func Stats() CacheStats {
	s := CacheStats{
		Hits:     memo.hits.Load(),
		Misses:   memo.misses.Load(),
		Shared:   memo.shared.Load(),
		Bypassed: memo.bypassed.Load(),
	}
	for i := range memo.shards {
		sh := &memo.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}

// ResetCache drops every cached result and zeroes the counters. In-flight
// solves complete normally but repopulate a fresh table.
func ResetCache() {
	for i := range memo.shards {
		sh := &memo.shards[i]
		sh.mu.Lock()
		sh.entries = nil
		sh.mu.Unlock()
	}
	memo.hits.Store(0)
	memo.misses.Store(0)
	memo.shared.Store(0)
	memo.bypassed.Store(0)
}

// SetCacheEnabled turns result caching on or off (it is on by default)
// and returns the previous setting. Disabling does not drop resident
// entries; combine with ResetCache for a cold, cache-free run.
func SetCacheEnabled(enabled bool) bool {
	return !memo.disabled.Swap(!enabled)
}

// CacheEnabled reports whether synthesis results are being cached.
func CacheEnabled() bool { return !memo.disabled.Load() }

// clone returns a copy of the result safe to hand to a caller that may
// mutate it. Tag is the only pointer field, and tag arrays never nest.
func (r *Result) clone() *Result {
	cp := *r
	if r.Tag != nil {
		tag := *r.Tag
		cp.Tag = &tag
	}
	return &cp
}

// cachedSynthesize is the single-flight front of synthesize. cfg must be
// validated; totalBits/wordBits are validate()'s outputs.
func cachedSynthesize(cfg Config, totalBits, wordBits int) (*Result, error) {
	key := canonicalKey(&cfg, wordBits)
	sh := &memo.shards[key.shard()%memoShards]

	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		select {
		case <-e.done:
		default:
			// Joining a solve started by a concurrent caller.
			memo.shared.Add(1)
			<-e.done
		}
		if e.err != nil {
			// The shared solve failed. Error text embeds the *other*
			// caller's structure name, so re-run locally for a correctly
			// attributed error (failures are rare and not hot).
			memo.bypassed.Add(1)
			return synthesize(cfg, totalBits, wordBits)
		}
		memo.hits.Add(1)
		return e.res.clone(), nil
	}
	e := &memoEntry{done: make(chan struct{})}
	if sh.entries == nil {
		sh.entries = make(map[Key]*memoEntry)
	}
	sh.entries[key] = e
	sh.mu.Unlock()

	// This goroutine owns the solve. The deferred cleanup also covers a
	// panicking model (contained at the chip boundary): waiters are
	// unblocked with an error entry and the key is removed so later
	// callers retry rather than deadlock.
	completed := false
	defer func() {
		if completed {
			return
		}
		e.err = errSolvePanicked
		sh.mu.Lock()
		delete(sh.entries, key)
		sh.mu.Unlock()
		close(e.done)
	}()

	// Disk tier: only the flight owner consults it, preserving
	// single-flight across memory -> disk -> synthesize. A verified disk
	// entry hydrates the memory cache exactly like a synthesis would
	// (counted as a memory-tier miss; the disk tier keeps its own hit
	// counters); any disk problem is a miss and falls through to the
	// cold solve below.
	if res := diskLoad(&key); res != nil {
		completed = true
		memo.misses.Add(1)
		e.res = res
		close(e.done)
		return res.clone(), nil
	}

	res, err := synthesize(cfg, totalBits, wordBits)
	completed = true
	if err != nil {
		e.err = err
		sh.mu.Lock()
		delete(sh.entries, key)
		sh.mu.Unlock()
		close(e.done)
		return nil, err
	}
	memo.misses.Add(1)
	e.res = res
	close(e.done)
	// Publish to the disk tier so future processes warm-start. Runs
	// after waiters are released; failures are counted by the store and
	// never surface here.
	diskStore(&key, res)
	return res.clone(), nil
}

// errSolvePanicked marks entries whose owning solve unwound via panic.
// Waiters never surface it; they re-synthesize (and re-panic) themselves.
var errSolvePanicked = &panickedError{}

type panickedError struct{}

func (*panickedError) Error() string { return "array: shared synthesis panicked" }
