package array

import (
	"testing"

	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

// keyOf validates a copy of cfg and returns its canonical cache key,
// mirroring exactly what New does before consulting the cache.
func keyOf(t *testing.T, cfg Config) Key {
	t.Helper()
	_, wordBits, err := cfg.validate()
	if err != nil {
		t.Fatalf("validate %s: %v", cfg.Name, err)
	}
	return canonicalKey(&cfg, wordBits)
}

// TestKeyNormalizationDefaults pins rule one: zero-valued optional fields
// key identically to their explicit defaults, because validate()'s
// defaulting runs before the key is built.
func TestKeyNormalizationDefaults(t *testing.T) {
	base := Config{Name: "a", Tech: techtest.Node(45), Periph: tech.HP,
		Bytes: 64 * 1024, Assoc: 4}

	explicit := base
	explicit.Banks = 1       // validate default
	explicit.RWPorts = 1     // validate default when no ports given
	explicit.BlockBits = 512 // validate default for byte-sized arrays
	if keyOf(t, base) != keyOf(t, explicit) {
		t.Error("zero-valued Banks/RWPorts/BlockBits should key as their defaults")
	}

	differentBlock := base
	differentBlock.BlockBits = 256
	if keyOf(t, base) == keyOf(t, differentBlock) {
		t.Error("a non-default BlockBits must key differently")
	}
}

// TestKeyNormalizationName pins rule two: Name never affects the key.
func TestKeyNormalizationName(t *testing.T) {
	a := Config{Name: "dcache", Tech: techtest.Node(45), Periph: tech.HP,
		Bytes: 32 * 1024, Assoc: 4, RWPorts: 2}
	b := a
	b.Name = "completely different"
	if keyOf(t, a) != keyOf(t, b) {
		t.Error("Name must be excluded from the key")
	}
}

// TestKeyNormalizationSequential pins rule three: the tri-state
// Sequential option resolves to the concrete policy the synthesis uses,
// so nil and an explicit default-matching value are equal — and an
// explicit non-default value is not.
func TestKeyNormalizationSequential(t *testing.T) {
	small := Config{Name: "l1", Tech: techtest.Node(45), Periph: tech.HP,
		Bytes: 32 * 1024, Assoc: 4, RWPorts: 1} // <=64KB: parallel by default
	f, tr := false, true

	explicitParallel := small
	explicitParallel.Sequential = &f
	if keyOf(t, small) != keyOf(t, explicitParallel) {
		t.Error("nil Sequential should equal explicit default (parallel) for a small cache")
	}
	explicitSequential := small
	explicitSequential.Sequential = &tr
	if keyOf(t, small) == keyOf(t, explicitSequential) {
		t.Error("overriding the way-access policy must change the key")
	}

	big := small
	big.Bytes = 512 * 1024 // >64KB: sequential by default
	explicitSeqBig := big
	explicitSeqBig.Sequential = &tr
	if keyOf(t, big) != keyOf(t, explicitSeqBig) {
		t.Error("nil Sequential should equal explicit default (sequential) for a large cache")
	}
}

// TestKeyNormalizationUnreadFields pins rule four: fields the dispatched
// synthesis path never reads are forced to fixed values, so semantically
// equal configs with stray leftovers share an entry.
func TestKeyNormalizationUnreadFields(t *testing.T) {
	n := techtest.Node(45)

	// CAM path ignores the optimizer knobs, banking, and associativity,
	// and FullyAssoc / CellKind=CAM dispatch identically.
	cam := Config{Name: "tlb", Tech: n, Periph: tech.HP,
		Entries: 64, EntryBits: 52, FullyAssoc: true}
	stray := cam
	stray.Obj = OptArea
	stray.TargetCycle = 1e-9
	stray.Banks = 4
	stray.CellKind = CAM
	stray.FullyAssoc = false
	if keyOf(t, cam) != keyOf(t, stray) {
		t.Error("CAM path: optimizer knobs/banks/dispatch spelling must not affect the key")
	}
	camDefaultSearch := cam
	camDefaultSearch.SearchPorts = 1 // newCAM's own default
	if keyOf(t, cam) != keyOf(t, camDefaultSearch) {
		t.Error("CAM path: SearchPorts 0 should key as the default 1")
	}

	// DFF path ignores tags, banking, search ports, optimizer knobs.
	dff := Config{Name: "buf", Tech: n, Periph: tech.HP,
		Entries: 16, EntryBits: 128, CellKind: DFF, RdPorts: 2, WrPorts: 1}
	strayDFF := dff
	strayDFF.TagBits = 30
	strayDFF.Banks = 2
	strayDFF.Obj = OptDelay
	if keyOf(t, dff) != keyOf(t, strayDFF) {
		t.Error("DFF path: TagBits/Banks/Obj must not affect the key")
	}

	// Plain RAM ignores TagBits and SearchPorts.
	ram := Config{Name: "ram", Tech: n, Periph: tech.HP, Bytes: 8192, RWPorts: 1}
	strayRAM := ram
	strayRAM.TagBits = 25
	if keyOf(t, ram) != keyOf(t, strayRAM) {
		t.Error("RAM path: TagBits must not affect the key")
	}
}

// TestKeyDistinguishesRealDifferences is the other direction of the
// contract: configs the synthesis can tell apart must key apart.
func TestKeyDistinguishesRealDifferences(t *testing.T) {
	n := techtest.Node(45)
	base := Config{Name: "x", Tech: n, Periph: tech.HP,
		Bytes: 32 * 1024, Assoc: 4, RWPorts: 1}

	vary := []func(*Config){
		func(c *Config) { c.Bytes *= 2 },
		func(c *Config) { c.Assoc = 8 },
		func(c *Config) { c.Banks = 4 },
		func(c *Config) { c.RdPorts = 2 },
		func(c *Config) { c.Cell = tech.LSTP },
		func(c *Config) { c.LongChannel = true },
		func(c *Config) { c.Obj = OptArea },
		func(c *Config) { c.TargetCycle = 2e-9 },
		func(c *Config) { c.CellKind = EDRAM },
	}
	baseKey := keyOf(t, base)
	for i, mut := range vary {
		c := base
		mut(&c)
		if keyOf(t, c) == baseKey {
			t.Errorf("variation %d should produce a distinct key", i)
		}
	}
}

// TestKeyTechFingerprint: the key embeds the node's value fingerprint, so
// equal-valued fresh nodes share keys and retuned nodes do not.
func TestKeyTechFingerprint(t *testing.T) {
	cfg := Config{Name: "x", Tech: techtest.Node(32), Periph: tech.HP,
		Bytes: 8192, RWPorts: 1}
	k1 := keyOf(t, cfg)

	cfg.Tech = techtest.Node(32)
	if keyOf(t, cfg) != k1 {
		t.Error("fresh node with equal values should share the key")
	}

	cfg.Tech = techtest.Node(32)
	cfg.Tech.OverrideVdd(tech.HP, 0.85)
	if keyOf(t, cfg) == k1 {
		t.Error("retuned Vdd must change the key")
	}

	// Temperature is retuned at Score time (tech.LeakScaleAt), so it is
	// deliberately absent from the synthesis identity: parts synthesized
	// at any operating temperature are interchangeable.
	cfg.Tech = techtest.Node(32)
	cfg.Tech.Temperature += 20
	if keyOf(t, cfg) != k1 {
		t.Error("reference temperature must not change the synthesis key")
	}

	cfg.Tech = techtest.Node(22)
	if keyOf(t, cfg) == k1 {
		t.Error("a different node must change the key")
	}
}
