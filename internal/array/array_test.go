package array

import (
	"math"
	"testing"
	"testing/quick"

	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

func l1Cfg(bytes int) Config {
	return Config{
		Name:      "l1",
		Tech:      techtest.Node(90),
		Periph:    tech.HP,
		Cell:      tech.HP,
		Bytes:     bytes,
		BlockBits: 64 * 8,
		Assoc:     4,
		RWPorts:   1,
	}
}

func TestL1CachePlausible(t *testing.T) {
	r, err := New(l1Cfg(32 * 1024))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("32KB 4-way L1 @90nm: area=%.3f mm^2 access=%.2f ns Eread=%.1f pJ leak=%.3f W",
		r.Area*1e6, r.AccessTime*1e9, r.Energy.Read*1e12, r.Static.Total())
	if mm2 := r.Area * 1e6; mm2 < 0.3 || mm2 > 6 {
		t.Errorf("area = %.3f mm^2, want 0.3-6", mm2)
	}
	if ns := r.AccessTime * 1e9; ns < 0.2 || ns > 3 {
		t.Errorf("access = %.3f ns, want 0.2-3", ns)
	}
	if pj := r.Energy.Read * 1e12; pj < 10 || pj > 800 {
		t.Errorf("read energy = %.1f pJ, want 10-800", pj)
	}
	if r.Tag == nil {
		t.Error("set-associative cache must have a tag array")
	}
	if r.Static.Total() <= 0 {
		t.Error("leakage must be positive")
	}
}

func TestL2CachePlausible(t *testing.T) {
	cfg := Config{
		Name:      "l2",
		Tech:      techtest.Node(90),
		Periph:    tech.HP,
		Cell:      tech.HP,
		Bytes:     3 * 1024 * 1024,
		BlockBits: 64 * 8,
		Assoc:     12,
		RWPorts:   1,
		Banks:     4,
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("3MB 12-way L2 @90nm 4 banks: area=%.1f mm^2 access=%.2f ns Eread=%.1f pJ leak=%.2f W",
		r.Area*1e6, r.AccessTime*1e9, r.Energy.Read*1e12, r.Static.Total())
	if mm2 := r.Area * 1e6; mm2 < 25 || mm2 > 160 {
		t.Errorf("area = %.1f mm^2, want 25-160 (Niagara's 3MB L2 is ~100)", mm2)
	}
	if ns := r.AccessTime * 1e9; ns < 1 || ns > 15 {
		t.Errorf("access = %.2f ns, want 1-15", ns)
	}
	if w := r.Static.Total(); w < 0.3 || w > 12 {
		t.Errorf("leakage = %.2f W, want 0.3-12 for HP cells at 360K", w)
	}
}

func TestCacheAreaMonotoneInCapacity(t *testing.T) {
	prev := 0.0
	for _, kb := range []int{8, 16, 32, 64, 128} {
		r := MustNew(l1Cfg(kb * 1024))
		if r.Area <= prev {
			t.Errorf("%dKB cache area %.3g not larger than previous", kb, r.Area)
		}
		prev = r.Area
	}
}

func TestCacheEnergyGrowsWithCapacity(t *testing.T) {
	small := MustNew(l1Cfg(8 * 1024))
	big := MustNew(l1Cfg(256 * 1024))
	if big.Energy.Read <= small.Energy.Read {
		t.Errorf("256KB read energy (%.3g) should exceed 8KB (%.3g)", big.Energy.Read, small.Energy.Read)
	}
	if big.AccessTime <= small.AccessTime {
		t.Errorf("256KB access (%.3g) should be slower than 8KB (%.3g)", big.AccessTime, small.AccessTime)
	}
}

func TestTechnologyScalingShrinksArrays(t *testing.T) {
	mk := func(nm float64) *Result {
		cfg := l1Cfg(32 * 1024)
		cfg.Tech = techtest.Node(nm)
		return MustNew(cfg)
	}
	a90, a45 := mk(90), mk(45)
	ratio := a90.Area / a45.Area
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("90->45nm area ratio = %.2f, want ~4", ratio)
	}
	if a45.Energy.Read >= a90.Energy.Read {
		t.Error("scaling should reduce read energy")
	}
}

func TestTimingConstraintRespected(t *testing.T) {
	cfg := l1Cfg(64 * 1024)
	cfg.TargetCycle = 1e-9 // 1 GHz
	r := MustNew(cfg)
	if r.CycleTime > cfg.TargetCycle*1.001 {
		t.Errorf("optimizer returned cycle %.3g ns > target 1 ns", r.CycleTime*1e9)
	}
	// A much tighter (unreachable) constraint falls back to the fastest
	// configuration instead of failing.
	cfg.TargetCycle = 1e-12
	r2 := MustNew(cfg)
	if r2.CycleTime <= 0 {
		t.Error("fallback config must still be valid")
	}
}

func TestObjectiveTradeoffs(t *testing.T) {
	base := l1Cfg(128 * 1024)
	base.Obj = OptDelay
	fast := MustNew(base)
	base.Obj = OptArea
	small := MustNew(base)
	if fast.AccessTime > small.AccessTime {
		t.Errorf("delay-optimized (%.3g) slower than area-optimized (%.3g)", fast.AccessTime, small.AccessTime)
	}
	if small.Area > fast.Area*1.001 {
		t.Errorf("area-optimized (%.3g) larger than delay-optimized (%.3g)", small.Area, fast.Area)
	}
}

func TestRegisterFile(t *testing.T) {
	cfg := Config{
		Name:      "intRF",
		Tech:      techtest.Node(90),
		Periph:    tech.HP,
		Cell:      tech.HP,
		Entries:   128,
		EntryBits: 64,
		RdPorts:   4,
		WrPorts:   2,
	}
	r := MustNew(cfg)
	t.Logf("128x64b RF 4r2w @90nm: area=%.4f mm^2 access=%.3f ns Eread=%.2f pJ",
		r.Area*1e6, r.AccessTime*1e9, r.Energy.Read*1e12)
	if mm2 := r.Area * 1e6; mm2 < 0.005 || mm2 > 0.8 {
		t.Errorf("RF area = %.4f mm^2, implausible", mm2)
	}
	if pj := r.Energy.Read * 1e12; pj < 0.2 || pj > 60 {
		t.Errorf("RF read = %.2f pJ, implausible", pj)
	}
	// More ports must cost area.
	cfg.RdPorts = 8
	cfg.WrPorts = 4
	wide := MustNew(cfg)
	if wide.Area <= r.Area {
		t.Error("extra ports must grow area")
	}
}

func TestCAMTLB(t *testing.T) {
	cfg := Config{
		Name:        "dtlb",
		Tech:        techtest.Node(90),
		Periph:      tech.HP,
		Cell:        tech.HP,
		Entries:     64,
		EntryBits:   28, // PPN + flags payload
		TagBits:     45,
		CellKind:    CAM,
		SearchPorts: 2,
		RWPorts:     1,
	}
	r := MustNew(cfg)
	t.Logf("64-entry TLB CAM: area=%.4f mm^2 search=%.2f pJ tsearch=%.3f ns",
		r.Area*1e6, r.Energy.Search*1e12, r.AccessTime*1e9)
	if r.Energy.Search <= 0 {
		t.Fatal("CAM must report search energy")
	}
	if r.Energy.Search <= r.Energy.Read {
		t.Error("CAM search should cost more than a payload read")
	}
	if mm2 := r.Area * 1e6; mm2 < 0.001 || mm2 > 0.5 {
		t.Errorf("TLB area = %.4f mm^2, implausible", mm2)
	}
	// Search energy grows with entry count.
	cfg.Entries = 512
	big := MustNew(cfg)
	if big.Energy.Search <= r.Energy.Search {
		t.Error("larger CAM must have larger search energy")
	}
}

func TestDFFArray(t *testing.T) {
	cfg := Config{
		Name:      "fetchbuf",
		Tech:      techtest.Node(65),
		Periph:    tech.HP,
		Cell:      tech.HP,
		Entries:   16,
		EntryBits: 128,
		CellKind:  DFF,
		RdPorts:   2,
		WrPorts:   2,
	}
	r := MustNew(cfg)
	if r.Energy.Read <= 0 || r.Energy.Write <= 0 || r.Area <= 0 {
		t.Fatalf("invalid DFF array result: %+v", r.PAT)
	}
	// DFF storage is much less dense than SRAM.
	sram := MustNew(Config{
		Name: "sram-equiv", Tech: cfg.Tech, Periph: tech.HP, Cell: tech.HP,
		Entries: 64, EntryBits: 128, RdPorts: 2, WrPorts: 2,
	})
	dffPerBit := r.Area / float64(16*128)
	sramPerBit := sram.Area / float64(64*128)
	if dffPerBit <= sramPerBit {
		t.Errorf("DFF per-bit area (%.3g) should exceed SRAM per-bit (%.3g)", dffPerBit, sramPerBit)
	}
}

func TestConfigValidation(t *testing.T) {
	n := techtest.Node(90)
	cases := []Config{
		{},        // no tech
		{Tech: n}, // no capacity
		{Tech: n, Bytes: 64, Entries: 4, EntryBits: 8}, // both forms
		{Tech: n, Entries: 8},                          // entries without bits
		{Tech: n, Bytes: 1024, Assoc: -1},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected error, got nil", i)
		}
	}
}

func TestBankingReducesCycleTime(t *testing.T) {
	mk := func(banks int) *Result {
		cfg := Config{
			Name: "big", Tech: techtest.Node(65), Periph: tech.HP, Cell: tech.HP,
			Bytes: 4 * 1024 * 1024, BlockBits: 512, Banks: banks,
		}
		return MustNew(cfg)
	}
	one, eight := mk(1), mk(8)
	if eight.CycleTime >= one.CycleTime {
		t.Errorf("8-bank cycle (%.3g) should beat 1-bank (%.3g)", eight.CycleTime, one.CycleTime)
	}
}

func TestSequentialVsParallelAccess(t *testing.T) {
	cfg := l1Cfg(32 * 1024)
	seq := true
	cfg.Sequential = &seq
	s := MustNew(cfg)
	par := false
	cfg.Sequential = &par
	p := MustNew(cfg)
	if p.AccessTime >= s.AccessTime {
		t.Errorf("parallel access (%.3g) should be faster than sequential (%.3g)", p.AccessTime, s.AccessTime)
	}
	if p.Energy.Read <= s.Energy.Read {
		t.Errorf("parallel access (%.3g J) should burn more than sequential (%.3g J)", p.Energy.Read, s.Energy.Read)
	}
}

func TestQuickArrayInvariants(t *testing.T) {
	n := techtest.Node(45)
	f := func(kbExp, assocExp uint8) bool {
		kb := 4 << (kbExp % 7)       // 4..256 KB
		assoc := 1 << (assocExp % 4) // 1..8
		r, err := New(Config{
			Name: "q", Tech: n, Periph: tech.HP, Cell: tech.HP,
			Bytes: kb * 1024, BlockBits: 512, Assoc: assoc,
		})
		if err != nil {
			return false
		}
		return r.Area > 0 && r.AccessTime > 0 && r.CycleTime > 0 &&
			r.Energy.Read > 0 && r.Energy.Write > 0 &&
			r.Static.Sub > 0 && r.Static.Gate > 0 &&
			!math.IsNaN(r.Energy.Read) && !math.IsInf(r.Area, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEDRAMCharacteristics(t *testing.T) {
	n := techtest.Node(32)
	mk := func(kind CellType) *Result {
		return MustNew(Config{
			Name: "llc-slice", Tech: n, Periph: tech.HP, Cell: tech.LSTP,
			Bytes: 8 * 1024 * 1024, BlockBits: 512, CellKind: kind,
		})
	}
	sram := mk(SRAM)
	edram := mk(EDRAM)
	t.Logf("8MB @32nm: SRAM %.1f mm^2 / %.2f ns | eDRAM %.1f mm^2 / %.2f ns / refresh %.3f W",
		sram.Area*1e6, sram.AccessTime*1e9, edram.Area*1e6, edram.AccessTime*1e9, edram.RefreshPower)
	if edram.Area >= sram.Area*0.7 {
		t.Errorf("eDRAM (%.3g) must be much denser than SRAM (%.3g)", edram.Area, sram.Area)
	}
	if edram.AccessTime <= sram.AccessTime {
		t.Error("eDRAM must be slower than SRAM")
	}
	if edram.RefreshPower <= 0 {
		t.Error("eDRAM must report refresh power")
	}
	if edram.Energy.Read <= sram.Energy.Read {
		t.Error("destructive reads must cost more energy")
	}
	if sram.RefreshPower != 0 {
		t.Error("SRAM must not report refresh power")
	}
}

func TestEDRAMRefreshScalesWithCapacity(t *testing.T) {
	n := techtest.Node(32)
	mk := func(mb int) *Result {
		return MustNew(Config{
			Name: "e", Tech: n, Periph: tech.HP, Cell: tech.LSTP,
			Bytes: mb * 1024 * 1024, BlockBits: 512, CellKind: EDRAM,
		})
	}
	r1, r4 := mk(2), mk(8)
	ratio := r4.RefreshPower / r1.RefreshPower
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("refresh power should scale ~linearly with capacity, got %.2fx for 4x", ratio)
	}
}

func TestEDRAMAssociativeCache(t *testing.T) {
	n := techtest.Node(32)
	r := MustNew(Config{
		Name: "l3", Tech: n, Periph: tech.HP, Cell: tech.LSTP,
		Bytes: 16 * 1024 * 1024, BlockBits: 512, Assoc: 16, Banks: 4,
		CellKind: EDRAM,
	})
	if r.Tag == nil {
		t.Fatal("associative eDRAM cache needs tags")
	}
	sram := MustNew(Config{
		Name: "l3s", Tech: n, Periph: tech.HP, Cell: tech.LSTP,
		Bytes: 16 * 1024 * 1024, BlockBits: 512, Assoc: 16, Banks: 4,
	})
	if r.Area >= sram.Area {
		t.Error("eDRAM cache must be smaller than SRAM cache")
	}
}

// MustNew is the test-only panicking variant of New; the production
// constructor returns an error instead.
func MustNew(cfg Config) *Result {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
