package array

// Disk-tier equivalence and fault-injection contract at the array
// level: a Result hydrated from the persistent cache must be
// bit-identical to the Result cold synthesis produces, and every kind
// of disk damage — corrupt entries, truncation, failed writes — must
// degrade to cold synthesis, never to a wrong Result or an error.

import (
	"reflect"
	"testing"

	"mcpat/internal/persist"
	"mcpat/internal/persist/faultfs"
)

// withStore installs a fresh disk tier for the test and removes it
// after, leaving the memory cache reset on both sides.
func withStore(t *testing.T, opts persist.Options) *persist.Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := persist.Open(opts)
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	prev := persist.SetDefault(s)
	ResetCache()
	t.Cleanup(func() {
		persist.SetDefault(prev)
		s.Close()
		ResetCache()
	})
	return s
}

// coldResults synthesizes the grid with no caches at all — ground truth.
func coldResults(t *testing.T, grid []Config) []*Result {
	t.Helper()
	SetCacheEnabled(false)
	defer SetCacheEnabled(true)
	out := make([]*Result, len(grid))
	for i, cfg := range grid {
		res, err := New(cfg)
		if err != nil {
			t.Fatalf("%s cold: %v", cfg.Name, err)
		}
		out[i] = res
	}
	return out
}

func TestResultCodecRoundTripsBitIdentical(t *testing.T) {
	for _, cfg := range memoGrid(32) {
		SetCacheEnabled(false)
		res, err := New(cfg)
		SetCacheEnabled(true)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		data, err := encodeResult(res)
		if err != nil {
			t.Fatalf("%s encode: %v", cfg.Name, err)
		}
		back, err := decodeResult(data)
		if err != nil {
			t.Fatalf("%s decode: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(res, back) {
			t.Errorf("%s: decoded Result differs from original", cfg.Name)
		}
	}
}

func TestKeyEncodingDistinguishesKeys(t *testing.T) {
	grid := memoGrid(22)
	seen := make(map[string]string)
	for _, cfg := range grid {
		c := cfg
		_, wordBits, err := c.validate()
		if err != nil {
			t.Fatal(err)
		}
		k := canonicalKey(&c, wordBits)
		enc := string(k.encodeKey())
		if prev, dup := seen[enc]; dup {
			t.Errorf("configs %s and %s share a disk key", prev, cfg.Name)
		}
		seen[enc] = cfg.Name
	}
}

func TestDiskHydratedResultsBitIdentical(t *testing.T) {
	grid := memoGrid(28)
	ref := coldResults(t, grid)
	store := withStore(t, persist.Options{})

	// Pass 1: cold synthesis populates both tiers.
	for i, cfg := range grid {
		res, err := New(cfg)
		if err != nil {
			t.Fatalf("%s populate: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(res, ref[i]) {
			t.Fatalf("%s: populated result differs from cold reference", cfg.Name)
		}
	}
	putBase := store.Stats()
	if putBase.Entries == 0 {
		t.Fatal("population pass published no disk entries")
	}

	// Pass 2: memory dropped, disk warm — every solve hydrates from disk
	// and must be bit-identical to cold synthesis.
	ResetCache()
	for i, cfg := range grid {
		res, err := New(cfg)
		if err != nil {
			t.Fatalf("%s hydrate: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(res, ref[i]) {
			t.Errorf("%s: disk-hydrated result differs from cold synthesis", cfg.Name)
		}
	}
	st := store.Stats().Delta(putBase)
	if st.Hits == 0 {
		t.Fatal("hydration pass hit the disk tier zero times")
	}
	if st.Corrupt != 0 {
		t.Fatalf("hydration pass quarantined %d entries unexpectedly", st.Corrupt)
	}

	// Pass 3: memory warm — disk is not consulted again.
	preHits := store.Stats().Hits
	for _, cfg := range grid {
		if _, err := New(cfg); err != nil {
			t.Fatalf("%s warm: %v", cfg.Name, err)
		}
	}
	if got := store.Stats().Hits; got != preHits {
		t.Errorf("memory-warm pass touched disk (%d extra hits)", got-preHits)
	}
}

func TestDiskCorruptionDegradesToColdSynthesis(t *testing.T) {
	grid := memoGrid(22)
	ref := coldResults(t, grid)
	store := withStore(t, persist.Options{})
	for _, cfg := range grid {
		if _, err := New(cfg); err != nil {
			t.Fatalf("%s populate: %v", cfg.Name, err)
		}
	}

	// Damage every published entry three different ways.
	paths, err := faultfs.Entries(store.Dir())
	if err != nil || len(paths) == 0 {
		t.Fatalf("no entries to corrupt (%v)", err)
	}
	for i, p := range paths {
		var err error
		switch i % 3 {
		case 0:
			err = faultfs.FlipBit(p)
		case 1:
			err = faultfs.Truncate(p)
		default:
			err = faultfs.Scribble(p)
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every solve must fall back to cold synthesis with bit-identical
	// results; the corrupt entries are quarantined, never served.
	ResetCache()
	for i, cfg := range grid {
		res, err := New(cfg)
		if err != nil {
			t.Fatalf("%s with corrupt disk: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(res, ref[i]) {
			t.Errorf("%s: result after disk corruption differs from cold synthesis", cfg.Name)
		}
	}
	st := store.Stats()
	if st.Corrupt == 0 {
		t.Fatal("no corrupt entries detected despite damaging every file")
	}

	// The fallback republished fresh entries: a fourth pass hydrates
	// cleanly again.
	ResetCache()
	preCorrupt := store.Stats().Corrupt
	for i, cfg := range grid {
		res, err := New(cfg)
		if err != nil {
			t.Fatalf("%s rehydrate: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(res, ref[i]) {
			t.Errorf("%s: rehydrated result differs", cfg.Name)
		}
	}
	if got := store.Stats().Corrupt; got != preCorrupt {
		t.Errorf("republished entries still corrupt (%d new quarantines)", got-preCorrupt)
	}
}

func TestDiskWriteFaultsNeverFailSynthesis(t *testing.T) {
	grid := memoGrid(90)
	ref := coldResults(t, grid)

	ffs, plan := faultfs.New()
	store := withStore(t, persist.Options{Dir: t.TempDir(), FS: ffs})
	plan.Arm(func(p *faultfs.Plan) { p.WriteErr = faultfs.ErrNoSpace })

	for i, cfg := range grid {
		res, err := New(cfg)
		if err != nil {
			t.Fatalf("%s with ENOSPC: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(res, ref[i]) {
			t.Errorf("%s: result with failing disk differs from cold synthesis", cfg.Name)
		}
	}
	if store.Stats().WriteErrors == 0 {
		t.Fatal("ENOSPC faults armed but no writes were dropped")
	}
	// Nothing was published; a fresh pass after reset is all cold.
	plan.Reset()
	ResetCache()
	preMiss := store.Stats().Misses
	if _, err := New(grid[0]); err != nil {
		t.Fatal(err)
	}
	if got := store.Stats().Misses; got == preMiss {
		t.Error("expected a disk miss after dropped writes")
	}
}

func TestDiskDisabledWithCacheOff(t *testing.T) {
	store := withStore(t, persist.Options{})
	SetCacheEnabled(false)
	defer SetCacheEnabled(true)
	cfg := memoGrid(22)[0]
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Hits+st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("-no-cache run touched the disk tier: %+v", st)
	}
}
