package array

import (
	"fmt"
	"math"

	"mcpat/internal/power"
)

// physAddrBits is the physical address width assumed when deriving tag
// widths (McPAT's default machine model).
const physAddrBits = 42

// tagStatusBits covers valid/dirty/coherence state per tag entry.
const tagStatusBits = 3

// newCache synthesizes a set-associative cache as a data array plus a tag
// array and merges their power/area/timing.
func newCache(cfg Config, totalBits, wordBits int) (*Result, error) {
	if cfg.Bytes == 0 {
		return nil, fmt.Errorf("array %q: associative caches must be byte-sized", cfg.Name)
	}
	blockBytes := wordBits / 8
	if blockBytes == 0 {
		blockBytes = 64
	}
	blocks := cfg.Bytes / blockBytes
	if blocks < cfg.Assoc {
		return nil, fmt.Errorf("array %q: %d blocks < associativity %d", cfg.Name, blocks, cfg.Assoc)
	}
	sets := blocks / cfg.Assoc

	// Parallel (fast, power-hungry) vs sequential (tag-then-data) way
	// access: small L1-class caches read all ways in parallel.
	parallel := cfg.Bytes <= 64*1024
	if cfg.Sequential != nil {
		parallel = !*cfg.Sequential
	}

	// The enumeration-invariant environment depends only on the node,
	// device classes, and port count, all shared by the data and tag
	// arrays - build it once for both optimizer runs.
	env := newSRAMEnv(&cfg)

	// --- Data array ---------------------------------------------------
	dataCfg := cfg
	dataCfg.Assoc = 0
	dataCfg.Name = cfg.Name + ".data"
	dataWord := wordBits
	if parallel {
		dataWord = wordBits * cfg.Assoc
	}
	dataCfg.BlockBits = dataWord
	data, err := optimizeEnv(env, dataCfg, totalBits, dataWord)
	if err != nil {
		return nil, err
	}
	if cfg.CellKind == EDRAM {
		applyEDRAM(&dataCfg, data, totalBits)
	}

	// --- Tag array ------------------------------------------------------
	tagBits := cfg.TagBits
	if tagBits == 0 {
		offsetBits := ceilLog2(blockBytes)
		indexBits := ceilLog2(sets)
		tagBits = physAddrBits - offsetBits - indexBits + tagStatusBits
		if tagBits < 8 {
			tagBits = 8
		}
	}
	tagCfg := cfg
	tagCfg.Assoc = 0
	tagCfg.Bytes = 0
	tagCfg.Name = cfg.Name + ".tag"
	tagCfg.Entries = sets
	tagCfg.EntryBits = tagBits * cfg.Assoc // all ways checked together
	tagCfg.BlockBits = tagBits * cfg.Assoc
	tag, err := optimizeEnv(env, tagCfg, sets*tagBits*cfg.Assoc, tagBits*cfg.Assoc)
	if err != nil {
		return nil, err
	}

	// Way comparators: Assoc comparators of tagBits each per access.
	per := newPeriphCtx(&cfg)
	wmin := cfg.Tech.MinWidthN()
	cCmpBit := 4 * wmin * per.Dev.CgPerW // XOR + match chain per bit
	eCompare := float64(cfg.Assoc) * float64(tagBits) * per.SwitchE(cCmpBit) * 0.5
	tCompare := 3 * per.FO4()

	res := &Result{Tag: tag}
	res.Energy = power.Energy{
		Read:  data.Energy.Read + tag.Energy.Read + eCompare,
		Write: data.Energy.Write + tag.Energy.Write + eCompare,
	}
	res.Static = data.Static.Add(tag.Static)
	res.Area = data.Area + tag.Area
	if parallel {
		// Tag and data proceed in parallel; way select at the end.
		res.AccessTime = math.Max(data.AccessTime, tag.AccessTime+tCompare) + per.FO4()
	} else {
		res.AccessTime = tag.AccessTime + tCompare + data.AccessTime
	}
	res.CycleTime = math.Max(data.CycleTime, tag.CycleTime)
	res.Delay = res.AccessTime
	res.Cycle = res.CycleTime
	res.Height = math.Sqrt(res.Area)
	res.Width = res.Height
	res.Rows, res.Cols, res.Subarrays, res.ColMux, res.Banks =
		data.Rows, data.Cols, data.Subarrays, data.ColMux, data.Banks
	res.Pruned = data.Pruned + tag.Pruned
	return res, nil
}
