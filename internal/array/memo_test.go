package array

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

// memoGrid is a spread of configs covering every synthesis path (RAM,
// eDRAM, set-associative cache, CAM, DFF) and several organizations per
// path, used by the equivalence and concurrency tests.
func memoGrid(nm float64) []Config {
	n := techtest.Node(nm)
	var grid []Config
	for _, bytes := range []int{8 * 1024, 32 * 1024, 256 * 1024} {
		for _, assoc := range []int{0, 2, 8} {
			grid = append(grid, Config{
				Name: "ram", Tech: n, Periph: tech.HP, Cell: tech.HP,
				Bytes: bytes, BlockBits: 512, Assoc: assoc, RWPorts: 1,
			})
		}
	}
	grid = append(grid,
		Config{Name: "edram-llc", Tech: n, Periph: tech.HP, Cell: tech.LSTP,
			Bytes: 1 << 20, BlockBits: 512, CellKind: EDRAM, RWPorts: 1},
		Config{Name: "tlb", Tech: n, Periph: tech.HP, Cell: tech.HP,
			Entries: 64, EntryBits: 52, FullyAssoc: true, RWPorts: 1, SearchPorts: 1},
		Config{Name: "fetch-buf", Tech: n, Periph: tech.HP, Cell: tech.HP,
			Entries: 16, EntryBits: 128, CellKind: DFF, RWPorts: 1, RdPorts: 2},
		Config{Name: "rf", Tech: n, Periph: tech.HP, Cell: tech.HP,
			Entries: 128, EntryBits: 64, RdPorts: 4, WrPorts: 2, Obj: OptDelay},
	)
	return grid
}

// TestCachedEquivalence is the bit-identity contract: for every config in
// the grid, the result served through the cache must be byte-for-byte
// equal to a direct uncached synthesis.
func TestCachedEquivalence(t *testing.T) {
	defer SetCacheEnabled(SetCacheEnabled(true))
	ResetCache()

	for _, cfg := range memoGrid(45) {
		cold, err := New(cfg) // populates the cache (miss)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		warm, err := New(cfg) // served from the cache (hit)
		if err != nil {
			t.Fatalf("%s cached: %v", cfg.Name, err)
		}
		SetCacheEnabled(false)
		direct, err := New(cfg) // real synthesis, cache bypassed
		SetCacheEnabled(true)
		if err != nil {
			t.Fatalf("%s uncached: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(cold, direct) {
			t.Errorf("%s: first (caching) result differs from uncached synthesis", cfg.Name)
		}
		if !reflect.DeepEqual(warm, direct) {
			t.Errorf("%s: cache hit differs from uncached synthesis\n hit: %+v\n raw: %+v",
				cfg.Name, warm, direct)
		}
	}
	if s := Stats(); s.Hits == 0 || s.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", s)
	}
}

// TestCachedEquivalenceFreshNodes checks that separately constructed
// technology nodes with equal parameters share cache entries — the DSE
// situation, where every candidate chip materializes its own *tech.Node.
func TestCachedEquivalenceFreshNodes(t *testing.T) {
	defer SetCacheEnabled(SetCacheEnabled(true))
	ResetCache()

	cfg := Config{Name: "l2", Tech: techtest.Node(32), Periph: tech.HP,
		Cell: tech.LSTP, Bytes: 256 * 1024, BlockBits: 512, Assoc: 8, RWPorts: 1}
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tech = techtest.Node(32) // fresh pointer, identical values
	second, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("equal-valued fresh nodes produced different results")
	}
	if s := Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("fresh node should hit the existing entry: %+v", s)
	}

	// A retuned node must key differently (natural invalidation).
	cfg.Tech = techtest.Node(32)
	cfg.Tech.OverrideVdd(tech.HP, 0.8)
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
	if s := Stats(); s.Misses != 2 {
		t.Errorf("retuned node should miss: %+v", s)
	}
}

// TestCachedHitsAreIsolated verifies a caller mutating a returned Result
// cannot corrupt what later callers receive.
func TestCachedHitsAreIsolated(t *testing.T) {
	defer SetCacheEnabled(SetCacheEnabled(true))
	ResetCache()

	cfg := l1Cfg(32 * 1024)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Area
	a.Area = -1
	a.Tag.Area = -1
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Area != want || b.Tag.Area < 0 {
		t.Error("mutating a cache hit leaked into a later hit")
	}
}

// TestConcurrentCachedEquivalence hammers the cache from parallel workers
// (the explore.SearchContext pattern) and checks every worker observes
// results identical to a serial uncached reference. Run under -race this
// also proves the single-flight path is data-race free.
func TestConcurrentCachedEquivalence(t *testing.T) {
	defer SetCacheEnabled(SetCacheEnabled(true))

	grid := memoGrid(65)
	SetCacheEnabled(false)
	ref := make([]*Result, len(grid))
	for i, cfg := range grid {
		r, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		ref[i] = r
	}
	SetCacheEnabled(true)
	ResetCache()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i, cfg := range grid {
					got, err := New(cfg)
					if err != nil {
						errs <- cfg.Name + ": " + err.Error()
						return
					}
					if !reflect.DeepEqual(got, ref[i]) {
						errs <- cfg.Name + ": concurrent cached result differs from serial uncached"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}

	s := Stats()
	if want := uint64(len(grid)); s.Misses != want {
		t.Errorf("every distinct config should be solved exactly once: misses=%d want=%d", s.Misses, want)
	}
	if s.Entries != len(grid) {
		t.Errorf("resident entries=%d want=%d", s.Entries, len(grid))
	}
	if got, want := s.Hits+s.Misses, uint64(workers*3*len(grid)); got != want {
		t.Errorf("hits+misses=%d want=%d", got, want)
	}
}

// TestCacheFailedSolvesNotCached: a config that fails synthesis must not
// leave an entry behind, and the error must carry the caller's own Name.
func TestCacheFailedSolvesNotCached(t *testing.T) {
	defer SetCacheEnabled(SetCacheEnabled(true))
	ResetCache()

	// Associative caches must be byte-sized: entry-capacity + Assoc passes
	// validate() but fails inside the synthesis the cache fronts.
	bad := Config{Name: "first", Tech: techtest.Node(45), Periph: tech.HP,
		Entries: 64, EntryBits: 64, Assoc: 2, RWPorts: 1}
	if _, err := New(bad); err == nil {
		t.Fatal("expected synthesis error")
	}
	if s := Stats(); s.Entries != 0 {
		t.Errorf("failed solve left %d cache entries", s.Entries)
	}
	bad.Name = "second"
	_, err := New(bad)
	if err == nil {
		t.Fatal("expected error on retry")
	}
	if got := err.Error(); !strings.Contains(got, "second") || strings.Contains(got, "first") {
		t.Errorf("error not attributed to the retrying caller: %q", got)
	}
}

// TestResetCacheAndDisable pins the control-surface semantics: Reset
// zeroes counters and drops entries; disabling counts bypasses and does
// not populate the table.
func TestResetCacheAndDisable(t *testing.T) {
	defer SetCacheEnabled(SetCacheEnabled(true))
	ResetCache()

	cfg := l1Cfg(16 * 1024)
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
	if s := Stats(); s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after one solve: %+v", s)
	}
	ResetCache()
	if s := Stats(); s != (CacheStats{}) {
		t.Fatalf("after reset: %+v", s)
	}

	if prev := SetCacheEnabled(false); !prev {
		t.Error("cache should have been enabled before")
	}
	if CacheEnabled() {
		t.Error("CacheEnabled() true after disabling")
	}
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
	if s := Stats(); s.Bypassed != 1 || s.Entries != 0 || s.Hits+s.Misses != 0 {
		t.Errorf("disabled solve should only bypass: %+v", s)
	}
	SetCacheEnabled(true)
}

func TestCacheStatsDeltaAndHitRate(t *testing.T) {
	prev := CacheStats{Hits: 10, Misses: 5, Shared: 2, Bypassed: 1, Entries: 5}
	now := CacheStats{Hits: 40, Misses: 15, Shared: 4, Bypassed: 1, Entries: 15}
	d := now.Delta(prev)
	want := CacheStats{Hits: 30, Misses: 10, Shared: 2, Bypassed: 0, Entries: 15}
	if d != want {
		t.Errorf("Delta = %+v, want %+v", d, want)
	}
	if got := d.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
	if got := (CacheStats{}).HitRate(); got != 0 {
		t.Errorf("empty HitRate = %v, want 0", got)
	}
}
