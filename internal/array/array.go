// Package array implements McPAT's memory-array circuit model, the
// CACTI-derived engine used for every storage structure on the chip:
// caches (data + tag), register files, instruction/issue queues, ROBs,
// branch predictors, TLBs (CAM), load/store queues, NoC buffers, and
// memory-controller buffers.
//
// An array is organized as banks, each split into subarrays of R rows by C
// columns. The model computes access/cycle time from the decoder, wordline,
// bitline, sense-amplifier and output H-tree path (Elmore RC + logical
// effort), dynamic energy per read/write/search, subthreshold and gate
// leakage, and layout area including multiport cell growth. An internal
// optimizer enumerates (R, C, column-mux) organizations, rejects those
// that miss the timing target, and picks the best remaining one under the
// requested objective - exactly the role of McPAT's internal optimizer.
package array

import (
	"fmt"
	"math"

	"mcpat/internal/circuit"
	"mcpat/internal/guard"
	"mcpat/internal/power"
	"mcpat/internal/tech"
)

// CellType selects the storage cell family.
type CellType int

const (
	// SRAM is the standard 6T cell, used for caches and large RAMs.
	SRAM CellType = iota
	// DFF models flip-flop based storage, used for small, heavily
	// multiported structures (fetch buffers, pipeline queues).
	DFF
	// CAM is a content-addressable cell with match logic, used for TLBs,
	// fully associative caches, issue-queue wakeup, and LSQ search.
	CAM
	// EDRAM is a 1T1C embedded-DRAM cell: ~3x denser than SRAM with
	// destructive reads (every read pays a write-back) and a periodic
	// refresh power floor, used for very large last-level caches.
	EDRAM
)

func (c CellType) String() string {
	switch c {
	case SRAM:
		return "SRAM"
	case DFF:
		return "DFF"
	case CAM:
		return "CAM"
	case EDRAM:
		return "EDRAM"
	}
	return fmt.Sprintf("CellType(%d)", int(c))
}

// Objective selects what the optimizer minimizes among configurations
// that satisfy the timing constraint.
type Objective int

const (
	// OptED2 minimizes read-energy x delay^2, McPAT's default balance.
	OptED2 Objective = iota
	// OptEnergyDelay minimizes energy x delay.
	OptEnergyDelay
	// OptArea minimizes area.
	OptArea
	// OptDelay minimizes access time.
	OptDelay
)

// Config describes a storage structure to be synthesized.
type Config struct {
	Name string

	Tech        *tech.Node
	Periph      tech.DeviceType // periphery transistors (usually HP)
	Cell        tech.DeviceType // cell transistors (often LSTP for big caches)
	LongChannel bool            // use long-channel periphery devices

	// Capacity: either Bytes or (Entries, EntryBits). Exactly one form.
	Bytes     int
	Entries   int
	EntryBits int

	// BlockBits is the number of data bits delivered per access. For
	// byte-capacity arrays it defaults to 8*BlockBytes=512; for
	// entry-based arrays it defaults to EntryBits.
	BlockBits int

	// Assoc: 0 = plain RAM (no tags); >0 = set-associative cache with a
	// tag array; FullyAssoc replaces the tag array with a CAM.
	Assoc      int
	FullyAssoc bool
	TagBits    int // 0 = derived from a 42-bit physical address

	Banks int // >=1; one bank active per access

	// Ports. A structure must have at least one of RW/Rd ports.
	RWPorts, RdPorts, WrPorts, SearchPorts int

	CellKind CellType

	// TargetCycle is the required cycle time in seconds (0 = best effort).
	TargetCycle float64
	Obj         Objective

	// Sequential forces reading a single way (tag-then-data) for
	// set-associative arrays; default reads all ways in parallel when
	// the array is small (<=64KB) and sequentially otherwise.
	Sequential *bool
}

// Result is the synthesized array.
type Result struct {
	power.PAT

	AccessTime float64 // s
	CycleTime  float64 // s

	Height, Width float64 // m (total, all banks)

	// Organization of the winning configuration (data array).
	Rows, Cols, Subarrays, ColMux, Banks int

	// Tag holds the synthesized tag array of a set-associative cache,
	// nil for plain RAMs. Its PAT is already included in the totals.
	Tag *Result

	// RefreshPower is the eDRAM refresh floor (W), already included in
	// Static.Sub; zero for SRAM/DFF/CAM arrays.
	RefreshPower float64
}

// validate normalizes the config, returning total bits and output width.
func (cfg *Config) validate() (totalBits, wordBits int, err error) {
	if cfg.Tech == nil {
		return 0, 0, guard.Configf(cfg.Name, "nil technology node")
	}
	switch {
	case cfg.Bytes > 0 && cfg.Entries > 0:
		return 0, 0, guard.Configf(cfg.Name, "specify Bytes or Entries, not both")
	case cfg.Bytes > 0:
		totalBits = cfg.Bytes * 8
		wordBits = cfg.BlockBits
		if wordBits == 0 {
			wordBits = 512
		}
	case cfg.Entries > 0:
		if cfg.EntryBits <= 0 {
			return 0, 0, guard.Configf(cfg.Name, "Entries given without EntryBits")
		}
		totalBits = cfg.Entries * cfg.EntryBits
		wordBits = cfg.BlockBits
		if wordBits == 0 {
			wordBits = cfg.EntryBits
		}
	default:
		return 0, 0, guard.Configf(cfg.Name, "no capacity given")
	}
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.RWPorts+cfg.RdPorts == 0 && cfg.WrPorts == 0 {
		cfg.RWPorts = 1
	}
	if totalBits < wordBits {
		wordBits = totalBits
	}
	if cfg.Assoc < 0 {
		return 0, 0, guard.Configf(cfg.Name, "negative associativity")
	}
	return totalBits, wordBits, nil
}

// New synthesizes the array described by cfg.
//
// Successful solves are memoized in a process-wide, concurrency-safe
// cache keyed by the canonical form of cfg plus the technology node's
// value fingerprint (see memo.go); repeated and concurrent solves of the
// same structure share one synthesis. Cached results are bit-identical
// to uncached ones. Stats/ResetCache/SetCacheEnabled control the cache.
func New(cfg Config) (*Result, error) {
	totalBits, wordBits, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	if !CacheEnabled() {
		memo.bypassed.Add(1)
		return synthesize(cfg, totalBits, wordBits)
	}
	return cachedSynthesize(cfg, totalBits, wordBits)
}

// synthesize dispatches one real (uncached) synthesis of a validated
// config.
func synthesize(cfg Config, totalBits, wordBits int) (*Result, error) {
	if cfg.FullyAssoc || cfg.CellKind == CAM {
		return newCAM(cfg, totalBits, wordBits)
	}
	if cfg.CellKind == DFF {
		return newDFFArray(cfg, totalBits, wordBits)
	}

	// Set-associative caches: synthesize data and tag separately.
	if cfg.Assoc > 0 {
		return newCache(cfg, totalBits, wordBits)
	}
	res, err := newRAM(cfg, totalBits, wordBits)
	if err != nil {
		return nil, err
	}
	if cfg.CellKind == EDRAM {
		applyEDRAM(&cfg, res, totalBits)
	}
	return res, nil
}

// ports returns the total cell port count (CAM search ports handled by
// the CAM model separately).
func (cfg *Config) ports() int {
	p := cfg.RWPorts + cfg.RdPorts + cfg.WrPorts
	if p < 1 {
		p = 1
	}
	return p
}

// cellGeometry returns the width/height of one cell including multiport
// growth: each port beyond the first adds one wordline track vertically
// and two bitline tracks horizontally.
func cellGeometry(n *tech.Node, kind CellType, extraPorts int) (w, h float64) {
	var area float64
	switch kind {
	case CAM:
		area = n.CAMCellArea
	case DFF:
		area = n.DFFCellArea
	default:
		area = n.SRAMCellArea
	}
	w = math.Sqrt(area / n.SRAMCellAspect)
	h = n.SRAMCellAspect * w
	pitch := n.Wire(tech.Aggressive, tech.Local).Pitch
	w += 2 * pitch * float64(extraPorts)
	h += pitch * float64(extraPorts)
	return w, h
}

// newRAM synthesizes a plain (non-associative) SRAM array.
func newRAM(cfg Config, totalBits, wordBits int) (*Result, error) {
	best, err := optimize(cfg, totalBits, wordBits)
	if err != nil {
		return nil, err
	}
	return best, nil
}

func objective(cfg *Config, r *Result) float64 {
	switch cfg.Obj {
	case OptEnergyDelay:
		return r.Energy.Read * r.AccessTime
	case OptArea:
		return r.Area
	case OptDelay:
		return r.AccessTime
	default:
		return r.Energy.Read * r.AccessTime * r.AccessTime
	}
}

// sramEnv holds every derived quantity of the SRAM evaluation that is
// invariant across the (rows, column-mux, sub-word) enumeration: device
// parameters, wire classes, cell geometry, FO4, and per-unit leakage
// rates (whose temperature scaling costs an exp() each). Hoisting them
// out of evalSRAM keeps the optimizer's inner loop free of repeated
// device-table lookups and transcendental math.
type sramEnv struct {
	n       *tech.Node
	per     circuit.Ctx
	cellDev tech.Device

	f, wmin      float64
	cellW, cellH float64
	localWire    tech.Wire
	semiWire     tech.Wire
	globalWire   tech.Wire
	fo4          float64
	vdd          float64

	accessW float64 // access transistor width
	vSwing  float64 // bitline read swing (V)
	iCell   float64 // cell read current (A)
	eSense1 float64 // sense-amp energy per sensed bit (J)

	cellSubPerBit  float64 // subthreshold leakage per stored bit (W)
	cellGatePerBit float64 // gate leakage per stored bit (W)
	periphSubPerW  float64 // subthreshold leakage per meter of periphery width (W/m)
	periphGatePerW float64 // gate leakage per meter of periphery width (W/m)
}

func newSRAMEnv(cfg *Config) *sramEnv {
	n := cfg.Tech
	e := &sramEnv{
		n:       n,
		per:     circuit.NewCtx(n, cfg.Periph, cfg.LongChannel),
		cellDev: n.Device(cfg.Cell, false),
	}
	e.f = n.Feature
	e.wmin = n.MinWidthN()
	e.cellW, e.cellH = cellGeometry(n, SRAM, cfg.ports()-1)
	e.localWire = n.Wire(tech.Aggressive, tech.Local)
	e.semiWire = n.Wire(tech.Aggressive, tech.SemiGlobal)
	e.globalWire = n.Wire(tech.Aggressive, tech.Global)
	e.fo4 = e.per.FO4()
	e.vdd = e.per.Vdd()
	e.accessW = 1.3 * e.f
	e.vSwing = 0.15 * e.vdd
	e.iCell = 0.5 * e.cellDev.IonN * (2 * e.f)
	e.eSense1 = e.per.FullSwingE(10 * e.wmin * e.per.Dev.CgPerW)
	e.cellSubPerBit = e.cellDev.Ioff(n.SRAMCellNMOSWidth, n.SRAMCellPMOSWidth, n.Temperature) * e.cellDev.Vdd
	e.cellGatePerBit = e.cellDev.Ig(n.SRAMCellNMOSWidth+n.SRAMCellPMOSWidth) * e.cellDev.Vdd
	e.periphSubPerW = e.per.Dev.Ioff(1, 1, n.Temperature) * e.vdd
	e.periphGatePerW = e.per.Dev.Ig(2) * e.vdd
	return e
}

// optimize enumerates subarray organizations and returns the best feasible
// one. If nothing meets the timing target, the fastest configuration is
// returned with its (longer) actual cycle time, mirroring McPAT's warning
// behavior rather than failing hard.
func optimize(cfg Config, totalBits, wordBits int) (*Result, error) {
	return optimizeEnv(newSRAMEnv(&cfg), cfg, totalBits, wordBits)
}

// optimizeEnv is optimize with a caller-provided invariant environment,
// letting multi-array synthesis (data + tag of a cache) share one env.
func optimizeEnv(env *sramEnv, cfg Config, totalBits, wordBits int) (*Result, error) {
	var best *Result
	var bestObj float64
	var fastest *Result
	subWords := subWordChoices(wordBits)

	for rows := 16; rows <= 1024; rows *= 2 {
		for colMux := 1; colMux <= 32; colMux *= 2 {
			for _, subWord := range subWords {
				cols := subWord * colMux
				if cols < 16 || cols > 8192 {
					continue
				}
				r, ok := evalSRAM(env, &cfg, totalBits, wordBits, rows, cols, colMux)
				if !ok {
					continue
				}
				if fastest == nil || r.AccessTime < fastest.AccessTime {
					cp := r
					fastest = &cp
				}
				if cfg.TargetCycle > 0 && r.CycleTime > cfg.TargetCycle {
					continue
				}
				o := objective(&cfg, &r)
				if best == nil || o < bestObj {
					cp := r
					best, bestObj = &cp, o
				}
			}
		}
	}
	if best == nil {
		if fastest == nil {
			return nil, guard.Infeasiblef(cfg.Name, "no feasible organization for %d bits", totalBits)
		}
		best = fastest
	}
	return best, nil
}

// subWordChoices yields the per-subarray output widths to consider: the
// full word and power-of-two fractions of it (the word is then spread
// across several active subarrays).
func subWordChoices(wordBits int) []int {
	choices := []int{wordBits}
	for d := 2; d <= 8; d *= 2 {
		if wordBits%d == 0 && wordBits/d >= 8 {
			choices = append(choices, wordBits/d)
		}
	}
	// Also allow wider subarrays than the word for very small words.
	for m := 2; m <= 4; m *= 2 {
		choices = append(choices, wordBits*m)
	}
	return choices
}

// evalSRAM computes PAT for one organization of a plain SRAM array.
// cols = subWord*colMux columns per subarray; subWord bits leave each
// active subarray per access. env carries the enumeration-invariant
// derived parameters (see sramEnv).
func evalSRAM(env *sramEnv, cfg *Config, totalBits, wordBits, rows, cols, colMux int) (Result, bool) {
	per := &env.per

	bankBits := (totalBits + cfg.Banks - 1) / cfg.Banks
	bitsPerSub := rows * cols
	subarrays := (bankBits + bitsPerSub - 1) / bitsPerSub
	if subarrays < 1 {
		return Result{}, false
	}
	subWord := cols / colMux
	activeSubs := (wordBits + subWord - 1) / subWord
	if activeSubs > subarrays {
		return Result{}, false
	}
	// Keep silly organizations out: don't allow more than 4x
	// over-provisioned cells.
	if float64(subarrays*bitsPerSub) > 4*float64(bankBits) {
		return Result{}, false
	}

	cellW, cellH := env.cellW, env.cellH
	localWire := env.localWire

	f := env.f
	wmin := env.wmin

	// --- Wordline ---------------------------------------------------
	cWL := float64(cols)*(2*env.accessW*per.Dev.CgPerW) + float64(cols)*cellW*localWire.CapPerM
	wlChain := per.BufferChain(cWL)
	// Distributed RC of the wordline itself: 0.69 * R_total * C_total/2.
	wlWireDelay := 0.69 * (localWire.ResPerM * float64(cols) * cellW) * cWL / 2
	tWordline := wlChain.Delay + wlWireDelay

	// --- Decoder ----------------------------------------------------
	addrBits := ceilLog2(rows)
	// Predecode + final decode: ~2 + log4(rows) logic levels of FO4.
	tDecode := (2 + float64(addrBits)/2) * env.fo4
	// Energy: predecoders plus one fired row driver; approximated as a
	// wire spanning the subarray height plus gate loads.
	cDecode := float64(rows)*0.5*wmin*per.Dev.CgPerW + float64(rows)*cellH*localWire.CapPerM*0.5
	eDecode := per.SwitchE(cDecode) + wlChain.Energy

	// --- Bitline ----------------------------------------------------
	cBLcell := env.accessW * per.Dev.CjPerW // drain of one access device
	cBL := float64(rows)*cBLcell + float64(rows)*cellH*localWire.CapPerM
	tBitline := cBL * env.vSwing / math.Max(env.iCell, 1e-12)
	// Read energy: all columns of active subarrays swing by vSwing.
	eBitlineRead := float64(cols) * cBL * env.vdd * env.vSwing
	// Write: full differential swing on written columns only.
	eBitlineWrite := float64(subWord) * cBL * env.vdd * env.vdd * 2 * 0.5

	// --- Sense amps + column mux -------------------------------------
	tSense := 2 * env.fo4
	eSense := float64(subWord) * env.eSense1
	tMux := float64(ceilLog2(colMux)) * 0.5 * env.fo4

	// --- Subarray and bank geometry ----------------------------------
	subW := float64(cols)*cellW + 40*f + float64(addrBits)*8*f // row decoder strip
	subH := float64(rows)*cellH + 60*f                         // sense amp + write driver strip
	subArea := subW * subH
	// Real memory macros land near 45% array efficiency once ECC bits,
	// row/column redundancy, BIST, and inter-subarray routing channels
	// are accounted for; arrayOverhead calibrates modeled macro area to
	// published cache footprints (e.g. Niagara's 3MB L2 at ~90 mm^2).
	const arrayOverhead = 2.2
	bankArea := float64(subarrays) * subArea * arrayOverhead
	bankW := math.Sqrt(bankArea)
	bankH := bankArea / bankW

	// --- H-tree within the bank --------------------------------------
	htreeLen := 0.5 * (bankW + bankH)
	htreeIn := per.RepeatedWire(env.semiWire, htreeLen)
	addrInBits := float64(ceilLog2(maxInt(2, bankBits/wordBits)))
	eHtree := (float64(wordBits) + addrInBits) * htreeIn.EnergyPerBit
	tHtree := htreeIn.Delay

	// --- Inter-bank routing -------------------------------------------
	var eBankRoute, tBankRoute float64
	var bankRouteLeakSub, bankRouteLeakGate, bankRouteArea float64
	if cfg.Banks > 1 {
		chipSide := math.Sqrt(bankArea * float64(cfg.Banks))
		route := per.RepeatedWire(env.globalWire, 0.5*chipSide)
		eBankRoute = (float64(wordBits) + addrInBits) * route.EnergyPerBit
		tBankRoute = route.Delay
		bankRouteLeakSub = route.SubLeak * (float64(wordBits) + addrInBits)
		bankRouteLeakGate = route.GateLeak * (float64(wordBits) + addrInBits)
		bankRouteArea = route.Area * (float64(wordBits) + addrInBits)
	}

	access := tHtree + tDecode + tWordline + tBitline + tSense + tMux + tHtree + tBankRoute
	// Cycle limited by decode+read+precharge of one subarray.
	cycle := tDecode + tWordline + tBitline + tSense + tBitline*0.8
	if mn := 6 * env.fo4; cycle < mn {
		cycle = mn
	}

	// --- Energy totals per access -------------------------------------
	a := float64(activeSubs)
	eRead := a*(eDecode+eBitlineRead+eSense) + eHtree + eBankRoute
	eWrite := a*(eDecode+eBitlineWrite) + eHtree + eBankRoute

	// --- Leakage -------------------------------------------------------
	allBits := float64(cfg.Banks) * float64(subarrays) * float64(bitsPerSub)
	cellLeakSub := env.cellSubPerBit * allBits
	cellLeakGate := env.cellGatePerBit * allBits
	// Periphery: one wordline driver per row, sense amps and write
	// drivers per column, decoders.
	periphW := float64(rows)*4*wmin + float64(cols)*8*wmin + float64(addrBits)*20*wmin
	periphW *= float64(subarrays * cfg.Banks)
	periphLeakSub := env.periphSubPerW * periphW
	periphLeakGate := env.periphGatePerW * periphW

	totalArea := bankArea*float64(cfg.Banks) + bankRouteArea

	res := Result{
		PAT: power.PAT{
			Energy: power.Energy{Read: eRead, Write: eWrite},
			Static: power.Static{
				Sub:  cellLeakSub + periphLeakSub + htreeIn.SubLeak + bankRouteLeakSub,
				Gate: cellLeakGate + periphLeakGate + htreeIn.GateLeak + bankRouteLeakGate,
			},
			Area:  totalArea,
			Delay: access,
			Cycle: cycle,
		},
		AccessTime: access,
		CycleTime:  cycle,
		Height:     bankH * math.Sqrt(float64(cfg.Banks)),
		Width:      bankW * math.Sqrt(float64(cfg.Banks)),
		Rows:       rows,
		Cols:       cols,
		Subarrays:  subarrays,
		ColMux:     colMux,
		Banks:      cfg.Banks,
	}
	return res, true
}

func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(x))))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
