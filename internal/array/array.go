// Package array implements McPAT's memory-array circuit model, the
// CACTI-derived engine used for every storage structure on the chip:
// caches (data + tag), register files, instruction/issue queues, ROBs,
// branch predictors, TLBs (CAM), load/store queues, NoC buffers, and
// memory-controller buffers.
//
// An array is organized as banks, each split into subarrays of R rows by C
// columns. The model computes access/cycle time from the decoder, wordline,
// bitline, sense-amplifier and output H-tree path (Elmore RC + logical
// effort), dynamic energy per read/write/search, subthreshold and gate
// leakage, and layout area including multiport cell growth. An internal
// optimizer enumerates (R, C, column-mux) organizations, rejects those
// that miss the timing target, and picks the best remaining one under the
// requested objective - exactly the role of McPAT's internal optimizer.
package array

import (
	"fmt"
	"math"
	"math/bits"

	"mcpat/internal/circuit"
	"mcpat/internal/guard"
	"mcpat/internal/power"
	"mcpat/internal/tech"
)

// CellType selects the storage cell family.
type CellType int

const (
	// SRAM is the standard 6T cell, used for caches and large RAMs.
	SRAM CellType = iota
	// DFF models flip-flop based storage, used for small, heavily
	// multiported structures (fetch buffers, pipeline queues).
	DFF
	// CAM is a content-addressable cell with match logic, used for TLBs,
	// fully associative caches, issue-queue wakeup, and LSQ search.
	CAM
	// EDRAM is a 1T1C embedded-DRAM cell: ~3x denser than SRAM with
	// destructive reads (every read pays a write-back) and a periodic
	// refresh power floor, used for very large last-level caches.
	EDRAM
)

func (c CellType) String() string {
	switch c {
	case SRAM:
		return "SRAM"
	case DFF:
		return "DFF"
	case CAM:
		return "CAM"
	case EDRAM:
		return "EDRAM"
	}
	return fmt.Sprintf("CellType(%d)", int(c))
}

// Objective selects what the optimizer minimizes among configurations
// that satisfy the timing constraint.
type Objective int

const (
	// OptED2 minimizes read-energy x delay^2, McPAT's default balance.
	OptED2 Objective = iota
	// OptEnergyDelay minimizes energy x delay.
	OptEnergyDelay
	// OptArea minimizes area.
	OptArea
	// OptDelay minimizes access time.
	OptDelay
)

// Config describes a storage structure to be synthesized.
type Config struct {
	Name string

	Tech        *tech.Node
	Periph      tech.DeviceType // periphery transistors (usually HP)
	Cell        tech.DeviceType // cell transistors (often LSTP for big caches)
	LongChannel bool            // use long-channel periphery devices

	// Capacity: either Bytes or (Entries, EntryBits). Exactly one form.
	Bytes     int
	Entries   int
	EntryBits int

	// BlockBits is the number of data bits delivered per access. For
	// byte-capacity arrays it defaults to 8*BlockBytes=512; for
	// entry-based arrays it defaults to EntryBits.
	BlockBits int

	// Assoc: 0 = plain RAM (no tags); >0 = set-associative cache with a
	// tag array; FullyAssoc replaces the tag array with a CAM.
	Assoc      int
	FullyAssoc bool
	TagBits    int // 0 = derived from a 42-bit physical address

	Banks int // >=1; one bank active per access

	// Ports. A structure must have at least one of RW/Rd ports.
	RWPorts, RdPorts, WrPorts, SearchPorts int

	CellKind CellType

	// TargetCycle is the required cycle time in seconds (0 = best effort).
	TargetCycle float64
	Obj         Objective

	// Sequential forces reading a single way (tag-then-data) for
	// set-associative arrays; default reads all ways in parallel when
	// the array is small (<=64KB) and sequentially otherwise.
	Sequential *bool
}

// Result is the synthesized array.
type Result struct {
	power.PAT

	AccessTime float64 // s
	CycleTime  float64 // s

	Height, Width float64 // m (total, all banks)

	// Organization of the winning configuration (data array).
	Rows, Cols, Subarrays, ColMux, Banks int

	// Tag holds the synthesized tag array of a set-associative cache,
	// nil for plain RAMs. Its PAT is already included in the totals.
	Tag *Result

	// RefreshPower is the eDRAM refresh floor (W), already included in
	// Static.Sub; zero for SRAM/DFF/CAM arrays.
	RefreshPower float64

	// Pruned counts candidate organizations the optimizer skipped via
	// its lower-bound test during this synthesis (data + tag for
	// associative caches). Pruning never changes the winner - this
	// counter exists so tests and sweep stats can observe that the
	// branch-and-bound search is actually cutting work.
	Pruned int
}

// validate normalizes the config, returning total bits and output width.
func (cfg *Config) validate() (totalBits, wordBits int, err error) {
	if cfg.Tech == nil {
		return 0, 0, guard.Configf(cfg.Name, "nil technology node")
	}
	switch {
	case cfg.Bytes > 0 && cfg.Entries > 0:
		return 0, 0, guard.Configf(cfg.Name, "specify Bytes or Entries, not both")
	case cfg.Bytes > 0:
		totalBits = cfg.Bytes * 8
		wordBits = cfg.BlockBits
		if wordBits == 0 {
			wordBits = 512
		}
	case cfg.Entries > 0:
		if cfg.EntryBits <= 0 {
			return 0, 0, guard.Configf(cfg.Name, "Entries given without EntryBits")
		}
		totalBits = cfg.Entries * cfg.EntryBits
		wordBits = cfg.BlockBits
		if wordBits == 0 {
			wordBits = cfg.EntryBits
		}
	default:
		return 0, 0, guard.Configf(cfg.Name, "no capacity given")
	}
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.RWPorts+cfg.RdPorts == 0 && cfg.WrPorts == 0 {
		cfg.RWPorts = 1
	}
	if totalBits < wordBits {
		wordBits = totalBits
	}
	if cfg.Assoc < 0 {
		return 0, 0, guard.Configf(cfg.Name, "negative associativity")
	}
	return totalBits, wordBits, nil
}

// New synthesizes the array described by cfg.
//
// Successful solves are memoized in a process-wide, concurrency-safe
// cache keyed by the canonical form of cfg plus the technology node's
// value fingerprint (see memo.go); repeated and concurrent solves of the
// same structure share one synthesis. Cached results are bit-identical
// to uncached ones. Stats/ResetCache/SetCacheEnabled control the cache.
func New(cfg Config) (*Result, error) {
	totalBits, wordBits, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	if !CacheEnabled() {
		memo.bypassed.Add(1)
		return synthesize(cfg, totalBits, wordBits)
	}
	return cachedSynthesize(cfg, totalBits, wordBits)
}

// synthesize dispatches one real (uncached) synthesis of a validated
// config.
func synthesize(cfg Config, totalBits, wordBits int) (*Result, error) {
	if cfg.FullyAssoc || cfg.CellKind == CAM {
		return newCAM(cfg, totalBits, wordBits)
	}
	if cfg.CellKind == DFF {
		return newDFFArray(cfg, totalBits, wordBits)
	}

	// Set-associative caches: synthesize data and tag separately.
	if cfg.Assoc > 0 {
		return newCache(cfg, totalBits, wordBits)
	}
	res, err := newRAM(cfg, totalBits, wordBits)
	if err != nil {
		return nil, err
	}
	if cfg.CellKind == EDRAM {
		applyEDRAM(&cfg, res, totalBits)
	}
	return res, nil
}

// ports returns the total cell port count (CAM search ports handled by
// the CAM model separately).
func (cfg *Config) ports() int {
	p := cfg.RWPorts + cfg.RdPorts + cfg.WrPorts
	if p < 1 {
		p = 1
	}
	return p
}

// cellGeometry returns the width/height of one cell including multiport
// growth: each port beyond the first adds one wordline track vertically
// and two bitline tracks horizontally.
func cellGeometry(n *tech.Node, kind CellType, extraPorts int) (w, h float64) {
	var area float64
	switch kind {
	case CAM:
		area = n.CAMCellArea
	case DFF:
		area = n.DFFCellArea
	default:
		area = n.SRAMCellArea
	}
	w = math.Sqrt(area / n.SRAMCellAspect)
	h = n.SRAMCellAspect * w
	pitch := n.Wire(tech.Aggressive, tech.Local).Pitch
	w += 2 * pitch * float64(extraPorts)
	h += pitch * float64(extraPorts)
	return w, h
}

// newRAM synthesizes a plain (non-associative) SRAM array.
func newRAM(cfg Config, totalBits, wordBits int) (*Result, error) {
	best, err := optimize(cfg, totalBits, wordBits)
	if err != nil {
		return nil, err
	}
	return best, nil
}

func objective(cfg *Config, r *Result) float64 {
	switch cfg.Obj {
	case OptEnergyDelay:
		return r.Energy.Read * r.AccessTime
	case OptArea:
		return r.Area
	case OptDelay:
		return r.AccessTime
	default:
		return r.Energy.Read * r.AccessTime * r.AccessTime
	}
}

// sramEnv holds every derived quantity of the SRAM evaluation that is
// invariant across the (rows, column-mux, sub-word) enumeration: device
// parameters, wire classes, cell geometry, FO4, and per-unit leakage
// rates (whose temperature scaling costs an exp() each). Hoisting them
// out of evalSRAM keeps the optimizer's inner loop free of repeated
// device-table lookups and transcendental math.
type sramEnv struct {
	n       *tech.Node
	per     circuit.Ctx
	cellDev tech.Device

	f, wmin      float64
	cellW, cellH float64
	localWire    tech.Wire
	semiWire     tech.Wire
	globalWire   tech.Wire
	fo4          float64
	vdd          float64

	accessW float64 // access transistor width
	vSwing  float64 // bitline read swing (V)
	iCell   float64 // cell read current (A)
	eSense1 float64 // sense-amp energy per sensed bit (J)
	tSense  float64 // sense-amp resolve time (s)

	cellSubPerBit  float64 // subthreshold leakage per stored bit (W)
	cellGatePerBit float64 // gate leakage per stored bit (W)
	periphSubPerW  float64 // subthreshold leakage per meter of periphery width (W/m)
	periphGatePerW float64 // gate leakage per meter of periphery width (W/m)
}

func newSRAMEnv(cfg *Config) *sramEnv {
	n := cfg.Tech
	e := &sramEnv{
		n:       n,
		per:     circuit.NewCtx(n, cfg.Periph, cfg.LongChannel),
		cellDev: n.Device(cfg.Cell, false),
	}
	e.f = n.Feature
	e.wmin = n.MinWidthN()
	e.cellW, e.cellH = cellGeometry(n, SRAM, cfg.ports()-1)
	e.localWire = n.Wire(tech.Aggressive, tech.Local)
	e.semiWire = n.Wire(tech.Aggressive, tech.SemiGlobal)
	e.globalWire = n.Wire(tech.Aggressive, tech.Global)
	e.fo4 = e.per.FO4()
	e.vdd = e.per.Vdd()
	e.accessW = 1.3 * e.f
	e.vSwing = 0.15 * e.vdd
	e.iCell = 0.5 * e.cellDev.IonN * (2 * e.f)
	e.eSense1 = e.per.FullSwingE(10 * e.wmin * e.per.Dev.CgPerW)
	e.tSense = 2 * e.fo4
	e.cellSubPerBit = e.cellDev.Ioff(n.SRAMCellNMOSWidth, n.SRAMCellPMOSWidth, n.Temperature) * e.cellDev.Vdd
	e.cellGatePerBit = e.cellDev.Ig(n.SRAMCellNMOSWidth+n.SRAMCellPMOSWidth) * e.cellDev.Vdd
	e.periphSubPerW = e.per.Dev.Ioff(1, 1, n.Temperature) * e.vdd
	e.periphGatePerW = e.per.Dev.Ig(2) * e.vdd
	return e
}

// optimize enumerates subarray organizations and returns the best feasible
// one. If nothing meets the timing target, the fastest configuration is
// returned with its (longer) actual cycle time, mirroring McPAT's warning
// behavior rather than failing hard.
func optimize(cfg Config, totalBits, wordBits int) (*Result, error) {
	return optimizeEnv(newSRAMEnv(&cfg), cfg, totalBits, wordBits)
}

// optimizeEnv is optimize with a caller-provided invariant environment,
// letting multi-array synthesis (data + tag of a cache) share one env.
func optimizeEnv(env *sramEnv, cfg Config, totalBits, wordBits int) (*Result, error) {
	return optimizeEnvMode(env, cfg, totalBits, wordBits, true)
}

// optimizeEnvMode is the enumeration engine with branch-and-bound
// pruning switchable (the property tests run it both ways and assert the
// same winner). Once a feasible best exists, each remaining organization
// is first screened by a cheap admissible lower bound on its objective
// (and on its cycle time when a TargetCycle is set): every bound term is
// a subset of the non-negative terms the full evaluation sums, computed
// from the same hoisted sub-expressions, so a candidate whose bound
// already exceeds the incumbent cannot win and is skipped without paying
// the buffer-chain / repeated-wire / leakage math. The margin guards
// against the float additions the bound omits re-associating the
// comparison by a few ulps; the selection comparison is strict (<), so
// skipped ties can never have replaced the incumbent either.
func optimizeEnvMode(env *sramEnv, cfg Config, totalBits, wordBits int, prune bool) (*Result, error) {
	var (
		best, fastest, cur Result
		haveBest, haveFast bool
		bestObj            float64
		evaluated, pruned  int
	)
	subWords, nSub := subWordChoices(wordBits)
	// The wordline load and its driver chain depend only on the column
	// count, which recurs across every row count of the enumeration;
	// memoize the (expensive, pure) buffer-chain sizing per cols.
	wlCache := make(map[int]wlEval, 16)

	for rows := 16; rows <= 1024; rows *= 2 {
		row := newRowEnv(env, rows)
		for colMux := 1; colMux <= 32; colMux *= 2 {
			for _, subWord := range subWords[:nSub] {
				cols := subWord * colMux
				if cols < 16 || cols > 8192 {
					continue
				}
				org, ok := planOrg(&cfg, totalBits, wordBits, rows, cols, colMux)
				if !ok {
					continue
				}
				if prune && haveBest && boundExceedsBest(env, &row, &cfg, &org, bestObj) {
					pruned++
					continue
				}
				evalSRAM(env, &row, &cfg, wordBits, &org, wlCache, &cur)
				evaluated++
				if !haveFast || cur.AccessTime < fastest.AccessTime {
					fastest, haveFast = cur, true
				}
				if cfg.TargetCycle > 0 && cur.CycleTime > cfg.TargetCycle {
					continue
				}
				o := objective(&cfg, &cur)
				if !haveBest || o < bestObj {
					best, bestObj, haveBest = cur, o, true
				}
			}
		}
	}
	optOrgsEvaluated.Add(uint64(evaluated))
	optOrgsPruned.Add(uint64(pruned))
	if !haveBest {
		if !haveFast {
			return nil, guard.Infeasiblef(cfg.Name, "no feasible organization for %d bits", totalBits)
		}
		best = fastest
	}
	best.Pruned = pruned
	out := best
	return &out, nil
}

// pruneMargin pads the lower-bound comparisons: the bound sums a subset
// of the evaluation's terms with slightly different association, so it
// may sit a few ulps above the exact value. 1e-9 relative is ~6 orders
// of magnitude above double-rounding noise and far below any real
// objective gap between organizations.
const pruneMargin = 1e-9

// boundExceedsBest reports whether org provably cannot beat the
// incumbent objective (or meet the timing target): its admissible
// objective lower bound exceeds bestObj with margin.
func boundExceedsBest(env *sramEnv, row *rowEnv, cfg *Config, org *orgPlan, bestObj float64) bool {
	// Delay floor: decode + bitline + sense + column mux; omits the
	// wordline, both H-tree traversals, and inter-bank routing.
	delayLB := row.tDecode + row.tBitline + env.tSense + float64(ceilLog2(org.colMux))*0.5*env.fo4
	if cfg.TargetCycle > 0 {
		// Cycle floor: decode + read + sense (omits wordline and the
		// 0.8*tBitline precharge term). An organization whose floor
		// already misses the target can only ever serve as "fastest",
		// which is moot once a feasible best exists.
		if row.tDecode+row.tBitline+env.tSense > cfg.TargetCycle*(1+pruneMargin) {
			return true
		}
	}
	var objLB float64
	switch cfg.Obj {
	case OptEnergyDelay:
		objLB = energyLB(env, row, org) * delayLB
	case OptArea:
		subW := float64(org.cols)*env.cellW + 40*env.f + float64(row.addrBits)*8*env.f
		objLB = float64(org.subarrays) * (subW * row.subH) * arrayOverhead * float64(cfg.Banks)
	case OptDelay:
		objLB = delayLB
	default: // OptED2
		objLB = energyLB(env, row, org) * delayLB * delayLB
	}
	return objLB > bestObj*(1+pruneMargin)
}

// energyLB is the read-energy floor of an organization: bitline swing
// plus sense energy of the active subarrays, omitting decode, H-tree,
// and bank routing. The terms mirror evalSRAM's expressions exactly.
func energyLB(env *sramEnv, row *rowEnv, org *orgPlan) float64 {
	eBitlineRead := float64(org.cols) * row.cBL * env.vdd * env.vSwing
	eSense := float64(org.subWord) * env.eSense1
	return float64(org.activeSubs) * (eBitlineRead + eSense)
}

// subWordChoices yields the per-subarray output widths to consider: the
// full word and power-of-two fractions of it (the word is then spread
// across several active subarrays). The fixed-size return keeps the
// enumeration allocation-free on the cold path.
func subWordChoices(wordBits int) (choices [6]int, n int) {
	choices[0] = wordBits
	n = 1
	for d := 2; d <= 8; d *= 2 {
		if wordBits%d == 0 && wordBits/d >= 8 {
			choices[n] = wordBits / d
			n++
		}
	}
	// Also allow wider subarrays than the word for very small words.
	for m := 2; m <= 4; m *= 2 {
		choices[n] = wordBits * m
		n++
	}
	return choices, n
}

// orgPlan is the integer skeleton of one candidate organization: the
// feasibility screen (subarray count, active-subarray fit, the 4x
// over-provisioning cap) needs no float math, so it runs before any
// circuit evaluation or bound check.
type orgPlan struct {
	rows, cols, colMux    int
	subWord, activeSubs   int
	bitsPerSub, subarrays int
	bankBits              int
}

func planOrg(cfg *Config, totalBits, wordBits, rows, cols, colMux int) (orgPlan, bool) {
	bankBits := (totalBits + cfg.Banks - 1) / cfg.Banks
	bitsPerSub := rows * cols
	subarrays := (bankBits + bitsPerSub - 1) / bitsPerSub
	if subarrays < 1 {
		return orgPlan{}, false
	}
	subWord := cols / colMux
	activeSubs := (wordBits + subWord - 1) / subWord
	if activeSubs > subarrays {
		return orgPlan{}, false
	}
	// Keep silly organizations out: don't allow more than 4x
	// over-provisioned cells.
	if float64(subarrays*bitsPerSub) > 4*float64(bankBits) {
		return orgPlan{}, false
	}
	return orgPlan{
		rows: rows, cols: cols, colMux: colMux,
		subWord: subWord, activeSubs: activeSubs,
		bitsPerSub: bitsPerSub, subarrays: subarrays,
		bankBits: bankBits,
	}, true
}

// rowEnv carries the evaluation terms that depend only on the row count
// (and the shared env): decoder timing/energy, bitline RC, subarray
// height, and the per-row periphery width terms. One rowEnv serves the
// whole (colMux, subWord) inner enumeration for its row count, keeping
// repeated transcendental and RC math out of the inner loop. Every field
// is computed with exactly the expression evalSRAM previously inlined,
// so hoisting cannot move a single bit.
type rowEnv struct {
	addrBits int
	tDecode  float64 // predecode + final decode levels of FO4
	eDecode0 float64 // decoder switching energy before the wordline chain
	cBL      float64 // bitline capacitance
	tBitline float64 // bitline swing time
	subH     float64 // subarray height (sense amp + write driver strip)
	wRowPeri float64 // wordline-driver periphery width term
	wDecPeri float64 // decoder periphery width term
}

func newRowEnv(env *sramEnv, rows int) rowEnv {
	per := &env.per
	// Predecode + final decode: ~2 + log4(rows) logic levels of FO4.
	addrBits := ceilLog2(rows)
	// Energy: predecoders plus one fired row driver; approximated as a
	// wire spanning the subarray height plus gate loads.
	cDecode := float64(rows)*0.5*env.wmin*per.Dev.CgPerW + float64(rows)*env.cellH*env.localWire.CapPerM*0.5
	cBLcell := env.accessW * per.Dev.CjPerW // drain of one access device
	cBL := float64(rows)*cBLcell + float64(rows)*env.cellH*env.localWire.CapPerM
	return rowEnv{
		addrBits: addrBits,
		tDecode:  (2 + float64(addrBits)/2) * env.fo4,
		eDecode0: per.SwitchE(cDecode),
		cBL:      cBL,
		tBitline: cBL * env.vSwing / math.Max(env.iCell, 1e-12),
		subH:     float64(rows)*env.cellH + 60*env.f, // sense amp + write driver strip
		wRowPeri: float64(rows) * 4 * env.wmin,
		wDecPeri: float64(addrBits) * 20 * env.wmin,
	}
}

// arrayOverhead calibrates modeled macro area to published cache
// footprints (e.g. Niagara's 3MB L2 at ~90 mm^2): real memory macros
// land near 45% array efficiency once ECC bits, row/column redundancy,
// BIST, and inter-subarray routing channels are accounted for.
const arrayOverhead = 2.2

// wlEval is one memoized wordline evaluation: load, driver chain, and
// distributed-RC delay, all pure functions of the column count.
type wlEval struct {
	chain       circuit.Chain
	wlWireDelay float64
}

// evalSRAM computes PAT for one feasible organization of a plain SRAM
// array (org passed planOrg). cols = subWord*colMux columns per
// subarray; subWord bits leave each active subarray per access. env and
// row carry the enumeration-invariant and row-invariant derived
// parameters; the result is written into *out so the enumeration loop
// reuses one scratch value instead of copying the full struct per
// candidate.
func evalSRAM(env *sramEnv, row *rowEnv, cfg *Config, wordBits int, org *orgPlan, wlCache map[int]wlEval, out *Result) {
	per := &env.per

	rows, cols, colMux := org.rows, org.cols, org.colMux
	subWord, activeSubs := org.subWord, org.activeSubs
	bankBits, bitsPerSub, subarrays := org.bankBits, org.bitsPerSub, org.subarrays

	cellW := env.cellW
	localWire := env.localWire

	f := env.f
	wmin := env.wmin

	// --- Wordline ---------------------------------------------------
	wl, cached := wlCache[cols]
	if !cached {
		cWL := float64(cols)*(2*env.accessW*per.Dev.CgPerW) + float64(cols)*cellW*localWire.CapPerM
		wl.chain = per.BufferChain(cWL)
		// Distributed RC of the wordline itself: 0.69 * R_total * C_total/2.
		wl.wlWireDelay = 0.69 * (localWire.ResPerM * float64(cols) * cellW) * cWL / 2
		wlCache[cols] = wl
	}
	wlChain := wl.chain
	tWordline := wlChain.Delay + wl.wlWireDelay

	// --- Decoder ----------------------------------------------------
	addrBits := row.addrBits
	tDecode := row.tDecode
	eDecode := row.eDecode0 + wlChain.Energy

	// --- Bitline ----------------------------------------------------
	cBL := row.cBL
	tBitline := row.tBitline
	// Read energy: all columns of active subarrays swing by vSwing.
	eBitlineRead := float64(cols) * cBL * env.vdd * env.vSwing
	// Write: full differential swing on written columns only.
	eBitlineWrite := float64(subWord) * cBL * env.vdd * env.vdd * 2 * 0.5

	// --- Sense amps + column mux -------------------------------------
	tSense := env.tSense
	eSense := float64(subWord) * env.eSense1
	tMux := float64(ceilLog2(colMux)) * 0.5 * env.fo4

	// --- Subarray and bank geometry ----------------------------------
	subW := float64(cols)*cellW + 40*f + float64(addrBits)*8*f // row decoder strip
	subH := row.subH
	subArea := subW * subH
	bankArea := float64(subarrays) * subArea * arrayOverhead
	bankW := math.Sqrt(bankArea)
	bankH := bankArea / bankW

	// --- H-tree within the bank --------------------------------------
	htreeLen := 0.5 * (bankW + bankH)
	htreeIn := per.RepeatedWire(env.semiWire, htreeLen)
	addrInBits := float64(ceilLog2(maxInt(2, bankBits/wordBits)))
	eHtree := (float64(wordBits) + addrInBits) * htreeIn.EnergyPerBit
	tHtree := htreeIn.Delay

	// --- Inter-bank routing -------------------------------------------
	var eBankRoute, tBankRoute float64
	var bankRouteLeakSub, bankRouteLeakGate, bankRouteArea float64
	if cfg.Banks > 1 {
		chipSide := math.Sqrt(bankArea * float64(cfg.Banks))
		route := per.RepeatedWire(env.globalWire, 0.5*chipSide)
		eBankRoute = (float64(wordBits) + addrInBits) * route.EnergyPerBit
		tBankRoute = route.Delay
		bankRouteLeakSub = route.SubLeak * (float64(wordBits) + addrInBits)
		bankRouteLeakGate = route.GateLeak * (float64(wordBits) + addrInBits)
		bankRouteArea = route.Area * (float64(wordBits) + addrInBits)
	}

	access := tHtree + tDecode + tWordline + tBitline + tSense + tMux + tHtree + tBankRoute
	// Cycle limited by decode+read+precharge of one subarray.
	cycle := tDecode + tWordline + tBitline + tSense + tBitline*0.8
	if mn := 6 * env.fo4; cycle < mn {
		cycle = mn
	}

	// --- Energy totals per access -------------------------------------
	a := float64(activeSubs)
	eRead := a*(eDecode+eBitlineRead+eSense) + eHtree + eBankRoute
	eWrite := a*(eDecode+eBitlineWrite) + eHtree + eBankRoute

	// --- Leakage -------------------------------------------------------
	allBits := float64(cfg.Banks) * float64(subarrays) * float64(bitsPerSub)
	cellLeakSub := env.cellSubPerBit * allBits
	cellLeakGate := env.cellGatePerBit * allBits
	// Periphery: one wordline driver per row, sense amps and write
	// drivers per column, decoders.
	periphW := row.wRowPeri + float64(cols)*8*wmin + row.wDecPeri
	periphW *= float64(subarrays * cfg.Banks)
	periphLeakSub := env.periphSubPerW * periphW
	periphLeakGate := env.periphGatePerW * periphW

	totalArea := bankArea*float64(cfg.Banks) + bankRouteArea

	*out = Result{
		PAT: power.PAT{
			Energy: power.Energy{Read: eRead, Write: eWrite},
			Static: power.Static{
				Sub:  cellLeakSub + periphLeakSub + htreeIn.SubLeak + bankRouteLeakSub,
				Gate: cellLeakGate + periphLeakGate + htreeIn.GateLeak + bankRouteLeakGate,
			},
			Area:  totalArea,
			Delay: access,
			Cycle: cycle,
		},
		AccessTime: access,
		CycleTime:  cycle,
		Height:     bankH * math.Sqrt(float64(cfg.Banks)),
		Width:      bankW * math.Sqrt(float64(cfg.Banks)),
		Rows:       rows,
		Cols:       cols,
		Subarrays:  subarrays,
		ColMux:     colMux,
		Banks:      cfg.Banks,
	}
}

// ceilLog2 is ceil(log2(x)) over non-negative ints: bits.Len(x-1) for
// x >= 2. The integer form is exactly equal to the previous
// math.Ceil(math.Log2(...)) for every enumerable input and keeps a
// transcendental call out of the optimizer's inner loop.
func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
