package array

import "sync/atomic"

// Process-wide counters of the organization optimizer's enumeration
// work. They only move on real (uncached) syntheses - a memoized result
// re-runs nothing - so the pair measures actual cold-path effort, and
// their delta over a sweep shows how much of the CACTI-style search the
// branch-and-bound pruning is cutting.
var (
	optOrgsEvaluated atomic.Uint64
	optOrgsPruned    atomic.Uint64
)

// OptimizerStats is a snapshot of the optimizer's enumeration counters.
type OptimizerStats struct {
	// Evaluated counts organizations that paid the full circuit
	// evaluation (wordline chain, H-tree, leakage math).
	Evaluated uint64
	// Pruned counts organizations skipped by the admissible lower-bound
	// test against the incumbent best.
	Pruned uint64
}

// OptStats returns the current process-wide optimizer counters.
func OptStats() OptimizerStats {
	return OptimizerStats{
		Evaluated: optOrgsEvaluated.Load(),
		Pruned:    optOrgsPruned.Load(),
	}
}

// Delta returns the counter movement since a previous snapshot,
// attributing enumeration work to one sweep or serving window.
func (s OptimizerStats) Delta(prev OptimizerStats) OptimizerStats {
	return OptimizerStats{
		Evaluated: s.Evaluated - prev.Evaluated,
		Pruned:    s.Pruned - prev.Pruned,
	}
}

// PruneRate is the fraction of enumerated organizations the bound
// skipped (0 when nothing was enumerated).
func (s OptimizerStats) PruneRate() float64 {
	total := s.Evaluated + s.Pruned
	if total == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(total)
}
