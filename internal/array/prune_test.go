package array

// Property tests for the optimizer's branch-and-bound pruning: over a
// seeded randomized corpus of array configurations, the pruned
// enumeration must pick exactly the organization the exhaustive loop
// picks — same geometry and bit-identical power/area/timing. The bound
// is admissible by construction (it sums a subset of the evaluation's
// non-negative terms), and these tests pin that property against
// regressions in either the bound or the evaluation it mirrors.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

// runBothModes validates cfg and runs the enumeration with pruning on
// and off, returning the two results.
func runBothModes(t *testing.T, cfg Config) (pruned, exhaustive *Result) {
	t.Helper()
	prunedCfg := cfg
	totalBits, wordBits, err := prunedCfg.validate()
	if err != nil {
		t.Fatalf("%s: validate: %v", cfg.Name, err)
	}
	env := newSRAMEnv(&prunedCfg)
	pruned, prunedErr := optimizeEnvMode(env, prunedCfg, totalBits, wordBits, true)
	exhaustive, exhaustiveErr := optimizeEnvMode(env, prunedCfg, totalBits, wordBits, false)
	if (prunedErr == nil) != (exhaustiveErr == nil) {
		t.Fatalf("%s: error disagreement: pruned=%v exhaustive=%v", cfg.Name, prunedErr, exhaustiveErr)
	}
	return pruned, exhaustive
}

// assertSameWinner checks both modes selected the same organization with
// bit-identical numbers (the Pruned counter is bookkeeping, not part of
// the winner, and is normalized out).
func assertSameWinner(t *testing.T, name string, pruned, exhaustive *Result) {
	t.Helper()
	if pruned == nil || exhaustive == nil {
		return // both infeasible; runBothModes already checked agreement
	}
	a, b := *pruned, *exhaustive
	a.Pruned, b.Pruned = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: pruned optimizer picked a different winner:\n  pruned:     rows=%d cols=%d mux=%d subarrays=%d obj-relevant E.Read=%v Access=%v Area=%v\n  exhaustive: rows=%d cols=%d mux=%d subarrays=%d obj-relevant E.Read=%v Access=%v Area=%v",
			name,
			a.Rows, a.Cols, a.ColMux, a.Subarrays, a.Energy.Read, a.AccessTime, a.Area,
			b.Rows, b.Cols, b.ColMux, b.Subarrays, b.Energy.Read, b.AccessTime, b.Area)
	}
}

// TestPrunedOptimizerMatchesExhaustiveTable covers the deliberate corner
// cases: every objective, banked arrays, tight and absent timing
// targets, and the fastest-fallback path where nothing meets the target
// (pruning must stay inert there: no incumbent, no bound).
func TestPrunedOptimizerMatchesExhaustiveTable(t *testing.T) {
	n32 := techtest.Node(32)
	n22 := techtest.Node(22)
	cases := []Config{
		{Name: "l2-ed2", Tech: n32, Periph: tech.HP, Cell: tech.LSTP,
			Bytes: 256 << 10, Banks: 4, TargetCycle: 1 / 2.0e9, Obj: OptED2},
		{Name: "l1-delay", Tech: n22, Periph: tech.HP,
			Bytes: 32 << 10, BlockBits: 256, Banks: 1, TargetCycle: 1 / 3.0e9, Obj: OptDelay},
		{Name: "rf-area", Tech: n22, Periph: tech.HP,
			Entries: 128, EntryBits: 64, RdPorts: 4, WrPorts: 2, Obj: OptArea},
		{Name: "buf-ed", Tech: n32, Periph: tech.HP,
			Entries: 64, EntryBits: 128, Obj: OptEnergyDelay},
		{Name: "no-target", Tech: n32, Periph: tech.HP, Cell: tech.LSTP,
			Bytes: 1 << 20, Banks: 8, Obj: OptED2},
		{Name: "impossible-target", Tech: n32, Periph: tech.HP,
			Bytes: 512 << 10, Banks: 2, TargetCycle: 1e-12, Obj: OptED2},
	}
	for _, cfg := range cases {
		pruned, exhaustive := runBothModes(t, cfg)
		assertSameWinner(t, cfg.Name, pruned, exhaustive)
	}
}

// TestPrunedOptimizerMatchesExhaustiveRandom fuzzes the same property
// over a seeded random corpus spanning nodes, capacities, port mixes,
// bankings, objectives, and clock targets.
func TestPrunedOptimizerMatchesExhaustiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(0xA11CE))
	nodes := []*tech.Node{techtest.Node(45), techtest.Node(32), techtest.Node(22)}
	for i := 0; i < 80; i++ {
		cfg := Config{
			Name:   fmt.Sprintf("rand-%d", i),
			Tech:   nodes[r.Intn(len(nodes))],
			Periph: tech.HP,
			Obj:    Objective(r.Intn(4)),
			Banks:  1 << r.Intn(4),
		}
		if r.Intn(2) == 0 {
			cfg.Cell = tech.LSTP
		}
		if r.Intn(2) == 0 {
			cfg.Bytes = 1024 << r.Intn(11) // 1KB .. 1MB
			if r.Intn(2) == 0 {
				cfg.BlockBits = 128 << r.Intn(3)
			}
		} else {
			cfg.Entries = 16 << r.Intn(6)
			cfg.EntryBits = 8 * (1 + r.Intn(16))
		}
		switch r.Intn(3) {
		case 0:
			cfg.RWPorts = 1
		case 1:
			cfg.RdPorts = 1 + r.Intn(3)
			cfg.WrPorts = 1 + r.Intn(2)
		case 2:
			cfg.RWPorts = 2
		}
		if r.Intn(3) > 0 {
			cfg.TargetCycle = 1 / ((1 + 2*r.Float64()) * 1e9)
		}
		pruned, exhaustive := runBothModes(t, cfg)
		assertSameWinner(t, cfg.Name, pruned, exhaustive)
	}
}

// TestPruningActuallyPrunes pins that the bound does real work on a
// representative cache-shaped config and that the process-wide counters
// observe it: a perf optimization whose counter stays at zero has
// silently regressed to exhaustive search.
func TestPruningActuallyPrunes(t *testing.T) {
	before := OptStats()
	cfg := Config{Name: "llc", Tech: techtest.Node(22), Periph: tech.HP, Cell: tech.LSTP,
		Bytes: 2 << 20, Banks: 4, TargetCycle: 1 / 2.5e9, Obj: OptED2}
	totalBits, wordBits, err := cfg.validate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimizeEnvMode(newSRAMEnv(&cfg), cfg, totalBits, wordBits, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned == 0 {
		t.Error("expected the lower bound to prune at least one organization on a 2MB cache sweep")
	}
	d := OptStats().Delta(before)
	if d.Pruned != uint64(res.Pruned) {
		t.Errorf("process counter delta %d != Result.Pruned %d", d.Pruned, res.Pruned)
	}
	if d.Evaluated == 0 {
		t.Error("evaluated counter did not move")
	}
	if rate := d.PruneRate(); rate <= 0 || rate >= 1 {
		t.Errorf("prune rate %v out of (0,1)", rate)
	}
}
