package study

import (
	"testing"

	"mcpat/internal/perfsim"
	"mcpat/internal/tech/techtest"
)

func sweep(t *testing.T) []ClusterResult {
	t.Helper()
	rs, err := RunClusterSweep(DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(ClusterSizes) {
		t.Fatalf("got %d results, want %d", len(rs), len(ClusterSizes))
	}
	return rs
}

// TestClusterSweepShape checks the case study's headline conclusions:
// clustering cuts interconnect and shared-cache power sharply while
// performance degrades only mildly, so a moderately clustered design wins
// the combined efficiency metrics.
func TestClusterSweepShape(t *testing.T) {
	rs := sweep(t)
	first, last := rs[0], rs[len(rs)-1]

	// TDP decreases monotonically with clustering.
	for i := 1; i < len(rs); i++ {
		if rs[i].TDP >= rs[i-1].TDP {
			t.Errorf("TDP must fall with clustering: cl=%d %.1f >= cl=%d %.1f",
				rs[i].ClusterSize, rs[i].TDP, rs[i-1].ClusterSize, rs[i-1].TDP)
		}
	}
	// NoC power falls sharply (more than 2x from cl=1 to cl=8).
	if last.PowerBreakdown["NoC"] >= first.PowerBreakdown["NoC"]/2 {
		t.Errorf("NoC power should fall >2x: %.2f -> %.2f",
			first.PowerBreakdown["NoC"], last.PowerBreakdown["NoC"])
	}
	// Core power stays ~constant (same cores everywhere).
	if rel := last.PowerBreakdown["Cores"] / first.PowerBreakdown["Cores"]; rel < 0.95 || rel > 1.05 {
		t.Errorf("core power should be flat across clustering, ratio = %.3f", rel)
	}
	// Performance: flat-ish until the cluster bus saturates; cl=8 loses
	// no more than 25%.
	if drop := 1 - last.Perf/first.Perf; drop < 0 || drop > 0.25 {
		t.Errorf("cl=8 performance drop = %.1f%%, want 0-25%%", drop*100)
	}
	// The efficiency-optimal point is a clustered configuration - not the
	// flat (cl=1) design.
	best := rs[0]
	for _, r := range rs[1:] {
		if r.ED2AP < best.ED2AP {
			best = r
		}
	}
	if best.ClusterSize == 1 {
		t.Error("a clustered design must win ED2AP over the flat mesh")
	}
	t.Logf("best ED2AP at cluster=%d (perf %.3g vs flat %.3g)", best.ClusterSize, best.Perf, first.Perf)
}

func TestClusterSweepMetricsConsistent(t *testing.T) {
	for _, r := range sweep(t) {
		if r.EDP <= 0 || r.ED2P <= 0 || r.EDAP <= 0 || r.ED2AP <= 0 {
			t.Fatalf("cl=%d: non-positive metrics %+v", r.ClusterSize, r)
		}
		d := 1 / r.Perf
		if rel := r.ED2P / (r.EDP * d); rel < 0.999 || rel > 1.001 {
			t.Errorf("cl=%d: ED2P != EDP*D (rel %.4f)", r.ClusterSize, rel)
		}
		if rel := r.EDAP / (r.EDP * r.Area); rel < 0.999 || rel > 1.001 {
			t.Errorf("cl=%d: EDAP != EDP*A (rel %.4f)", r.ClusterSize, rel)
		}
		if len(r.Runs) != 3 {
			t.Errorf("cl=%d: expected 3 workload runs, got %d", r.ClusterSize, len(r.Runs))
		}
		for _, run := range r.Runs {
			if run.Power <= 0 || run.Power > r.TDP*1.05 {
				t.Errorf("cl=%d/%s: runtime power %.1f W outside (0, TDP=%.1f]",
					r.ClusterSize, run.Workload, run.Power, r.TDP)
			}
		}
		// Runtime breakdown must be populated and below peak.
		for _, name := range breakdownComponents {
			if r.RuntimeBreakdown[name] <= 0 {
				t.Errorf("cl=%d: missing runtime breakdown for %s", r.ClusterSize, name)
			}
			if r.RuntimeBreakdown[name] > r.PowerBreakdown[name]*1.05 {
				t.Errorf("cl=%d: runtime %s power %.1f exceeds peak %.1f",
					r.ClusterSize, name, r.RuntimeBreakdown[name], r.PowerBreakdown[name])
			}
		}
	}
}

func TestManycoreChipValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := ManycoreChip(p, 3); err == nil {
		t.Error("non-divisor cluster size must fail")
	}
	cfg, err := ManycoreChip(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NoC.MeshX*cfg.NoC.MeshY != p.Cores/4 {
		t.Errorf("mesh %dx%d != %d clusters", cfg.NoC.MeshX, cfg.NoC.MeshY, p.Cores/4)
	}
	if cfg.L2.Banks != p.Cores/4 {
		t.Errorf("L2 banks %d != clusters", cfg.L2.Banks)
	}
}

// TestDeviceStudyShape verifies the technology-exploration figure: HP is
// fastest but leakiest, LSTP is slowest with near-zero leakage, LOP and
// long-channel HP sit between, and HP leakage grows with scaling.
func TestDeviceStudyShape(t *testing.T) {
	rows, err := DeviceStudy([]float64{90, 45, 22})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]DeviceRow{}
	for _, r := range rows {
		key := r.Device.String()
		if r.LongCh {
			key += "+LC"
		}
		byKey[key+r.deviceNodeKey()] = r
	}
	get := func(nm float64, dev string) DeviceRow {
		r, ok := byKey[dev+nodeKey(nm)]
		if !ok {
			t.Fatalf("missing row %s@%gnm", dev, nm)
		}
		return r
	}
	for _, nm := range []float64{90, 45, 22} {
		hp := get(nm, "HP")
		lstp := get(nm, "LSTP")
		lop := get(nm, "LOP")
		lc := get(nm, "HP+LC")
		if !(hp.FMaxGHz > lop.FMaxGHz && lop.FMaxGHz > lstp.FMaxGHz) {
			t.Errorf("%gnm: fmax ordering violated: HP %.2f, LOP %.2f, LSTP %.2f",
				nm, hp.FMaxGHz, lop.FMaxGHz, lstp.FMaxGHz)
		}
		if !(hp.Leakage > lop.Leakage && lop.Leakage > lstp.Leakage) {
			t.Errorf("%gnm: leakage ordering violated", nm)
		}
		// Long-channel devices apply to logic and periphery but not the
		// SRAM cells themselves, so the chip-level saving is a solid
		// fraction rather than the per-device 10x.
		if lc.Leakage >= hp.Leakage*0.75 {
			t.Errorf("%gnm: long-channel should cut HP leakage substantially (%.2f vs %.2f)",
				nm, lc.Leakage, hp.Leakage)
		}
	}
	// HP leakage fraction grows with scaling.
	f90 := get(90, "HP")
	f22 := get(22, "HP")
	if f22.Leakage/f22.TDP <= f90.Leakage/f90.TDP {
		t.Error("HP leakage fraction must grow from 90nm to 22nm")
	}
}

func (r DeviceRow) deviceNodeKey() string { return nodeKey(r.NM) }

func nodeKey(nm float64) string { return "@" + techtest.Node(nm).Name }

// TestTechSweep checks the cross-node sweep runs and prefers clustered
// designs at every node.
func TestTechSweep(t *testing.T) {
	short := []perfsim.Workload{perfsim.SPLASH2Like()[0]}
	rows, err := RunTechSweep([]float64{45, 22}, short)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.BestCluster < 2 {
			t.Errorf("%gnm: best cluster %d, expected a clustered design", row.NM, row.BestCluster)
		}
		if len(row.Results) != len(ClusterSizes) {
			t.Errorf("%gnm: incomplete sweep", row.NM)
		}
	}
}
