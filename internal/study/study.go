// Package study implements the paper's case study: exploring the
// interconnect organization of future manycore processors. A 64-core
// Niagara-style CMP at 22 nm is swept over cluster sizes {1, 2, 4, 8} -
// cores in a cluster share an L2 slice over a local bus, and clusters are
// joined by a 2D-mesh NoC. For every configuration the study combines the
// performance substrate (package perfsim) with the power/area/timing
// models (package chip) to produce performance, power and area breakdowns,
// and the combined metrics (EDP, ED^2P, EDAP, ED^2AP) the paper uses to
// compare design points.
//
// The package also implements the device-type study: the same chip
// synthesized with HP, LSTP, LOP, and long-channel HP transistors across
// technology generations, exposing the leakage/frequency trade-off.
package study

import (
	"fmt"
	"math"

	"mcpat/internal/cache"
	"mcpat/internal/chip"
	"mcpat/internal/core"
	"mcpat/internal/mc"
	"mcpat/internal/perfsim"
	"mcpat/internal/tech"
)

// ClusterSizes are the sweep points of the case study.
var ClusterSizes = []int{1, 2, 4, 8}

// Params bundles the fixed parameters of the manycore study.
type Params struct {
	NM       float64 // technology node (nm)
	Cores    int
	ClockHz  float64
	Threads  int
	L2Total  int // bytes, distributed across clusters
	FlitBits int
	MemBW    float64 // bytes/s
}

// DefaultParams returns the paper-style 22 nm setup: 64 four-thread
// in-order cores, 16MB of distributed L2, 128-bit flits, 4 memory
// channels.
func DefaultParams() Params {
	return Params{
		NM:       22,
		Cores:    64,
		ClockHz:  2.5e9,
		Threads:  4,
		L2Total:  16 * 1024 * 1024,
		FlitBits: 128,
		MemBW:    200e9,
	}
}

// meshDims returns near-square power-of-two mesh dimensions for n nodes.
func meshDims(n int) (int, int) {
	x, y := 1, 1
	for x*y < n {
		if x <= y {
			x *= 2
		} else {
			y *= 2
		}
	}
	return x, y
}

// ManycoreChip builds the chip configuration of one clustering design
// point.
func ManycoreChip(p Params, clusterSize int) (chip.Config, error) {
	if clusterSize < 1 || p.Cores%clusterSize != 0 {
		return chip.Config{}, fmt.Errorf("study: cluster size %d does not divide %d cores", clusterSize, p.Cores)
	}
	clusters := p.Cores / clusterSize
	mx, my := meshDims(clusters)
	cfg := chip.Config{
		Name:     fmt.Sprintf("manycore-%dc-cl%d", p.Cores, clusterSize),
		NM:       p.NM,
		ClockHz:  p.ClockHz,
		NumCores: p.Cores,
		Core: core.Config{
			Name:    "inorder-core",
			Threads: p.Threads,
			ICache:  core.CacheParams{Bytes: 16 * 1024, BlockBytes: 32, Assoc: 4},
			DCache:  core.CacheParams{Bytes: 8 * 1024, BlockBytes: 16, Assoc: 4},
			IntALUs: 1, MulDivs: 1, FPUs: 1,
			LQEntries: 8, SQEntries: 8,
		},
		L2: &cache.Config{
			Name:  "L2",
			Bytes: p.L2Total, BlockBytes: 64, Assoc: 8,
			Banks: clusters, Directory: true, Sharers: p.Cores,
		},
		NoC: chip.NoCSpec{
			Kind:     chip.Mesh,
			FlitBits: p.FlitBits,
			MeshX:    mx, MeshY: my,
			VirtualChannels: 2, BuffersPerVC: 4,
			ClusterSize: clusterSize,
		},
		MC: &mc.Config{
			Channels: 4, DataBusBits: 64,
			PeakBandwidth: p.MemBW, LVDS: true,
		},
	}
	return cfg, nil
}

// WorkloadRun is the outcome of one (configuration, workload) pair.
type WorkloadRun struct {
	Workload   string
	Runtime    float64 // s
	Throughput float64 // instructions/s
	Power      float64 // runtime power (W)
	Energy     float64 // J for the whole problem
	CoreUtil   float64
}

// ClusterResult aggregates one clustering design point.
type ClusterResult struct {
	ClusterSize  int
	MeshX, MeshY int

	TDP  float64 // W
	Area float64 // mm^2

	// Peak-power and area breakdowns by top-level component, plus the
	// runtime-power breakdown averaged across workloads (what the
	// power-breakdown figure reports).
	PowerBreakdown   map[string]float64
	RuntimeBreakdown map[string]float64
	AreaBreakdown    map[string]float64

	Runs []WorkloadRun

	// Aggregates across workloads: arithmetic-mean throughput,
	// geometric-mean power/energy (they are ratios of the same problem).
	Perf     float64 // instructions/s
	AvgPower float64 // W
	Energy   float64 // J (geomean)

	// Combined metrics (absolute; callers normalize for figures).
	EDP, ED2P, EDAP, ED2AP float64
}

// breakdownComponents are the top-level report nodes the figures track.
var breakdownComponents = []string{"Cores", "L2", "NoC", "MemoryController", "ClockNetwork"}

// RunClusterSweep evaluates every cluster size against every workload and
// returns one result per design point (figures F2-F5).
func RunClusterSweep(p Params, workloads []perfsim.Workload) ([]ClusterResult, error) {
	if len(workloads) == 0 {
		workloads = perfsim.SPLASH2Like()
	}
	var out []ClusterResult
	for _, cs := range ClusterSizes {
		cfg, err := ManycoreChip(p, cs)
		if err != nil {
			return nil, err
		}
		proc, err := chip.New(cfg)
		if err != nil {
			return nil, err
		}
		peakRep := proc.Report(nil)

		res := ClusterResult{
			ClusterSize:      cs,
			MeshX:            cfg.NoC.MeshX,
			MeshY:            cfg.NoC.MeshY,
			TDP:              peakRep.Peak(),
			Area:             peakRep.Area * 1e6,
			PowerBreakdown:   map[string]float64{},
			RuntimeBreakdown: map[string]float64{},
			AreaBreakdown:    map[string]float64{},
		}
		for _, name := range breakdownComponents {
			if n := peakRep.Find(name); n != nil {
				res.PowerBreakdown[name] = n.Peak()
				res.AreaBreakdown[name] = n.Area * 1e6
			}
		}

		m := machineFor(p, cs, proc)
		var sumThroughput float64
		logPower, logEnergy := 0.0, 0.0
		for _, w := range workloads {
			sim, err := perfsim.Run(m, w)
			if err != nil {
				return nil, err
			}
			stats := statsFrom(sim)
			runRep := proc.Report(stats)
			pw := runRep.RuntimeDynamic + runRep.Leakage()
			for _, name := range breakdownComponents {
				if n := runRep.Find(name); n != nil {
					res.RuntimeBreakdown[name] += (n.RuntimeDynamic + n.Leakage()) / float64(len(workloads))
				}
			}
			run := WorkloadRun{
				Workload:   w.Name,
				Runtime:    sim.Runtime,
				Throughput: sim.Throughput,
				Power:      pw,
				Energy:     pw * sim.Runtime,
				CoreUtil:   sim.CoreUtil,
			}
			res.Runs = append(res.Runs, run)
			sumThroughput += sim.Throughput
			logPower += math.Log(pw)
			logEnergy += math.Log(run.Energy)
		}
		n := float64(len(workloads))
		res.Perf = sumThroughput / n
		res.AvgPower = math.Exp(logPower / n)
		res.Energy = math.Exp(logEnergy / n)

		d := 1 / res.Perf // mean time per instruction: the delay metric
		a := res.Area
		res.EDP = res.Energy * d
		res.ED2P = res.Energy * d * d
		res.EDAP = res.Energy * d * a
		res.ED2AP = res.Energy * d * d * a
		out = append(out, res)
	}
	return out, nil
}

// machineFor derives the performance-model parameters from the
// synthesized chip: L2 latency from the cache model's access time, hop
// latency from the router pipeline, memory parameters from the MC config.
func machineFor(p Params, clusterSize int, proc *chip.Processor) perfsim.Machine {
	l2CycleLat := 12.0
	if proc.L2 != nil {
		l2CycleLat = math.Ceil(proc.L2.AccessTime()*p.ClockHz) + 4 // +controller
	}
	clusters := p.Cores / clusterSize
	dim, _ := meshDims(clusters)
	return perfsim.Machine{
		Cores:          p.Cores,
		ThreadsPerCore: p.Threads,
		IssueWidth:     1,
		ClockHz:        p.ClockHz,
		ClusterSize:    clusterSize,
		L2Latency:      l2CycleLat,
		FabricHopLat:   4, // 3-stage router + link
		MemLatency:     60e-9 * p.ClockHz,
		MeshDim:        dim,
		MemBandwidth:   p.MemBW,
		BusBytes:       p.FlitBits / 8,
	}
}

// statsFrom converts a simulation result into the chip statistics vector.
func statsFrom(sim *perfsim.Result) *chip.Stats {
	clusters := sim.Machine.Cores / sim.Machine.ClusterSize
	return &chip.Stats{
		CoreRun:             sim.CoreActivity,
		L2Reads:             sim.L2ReadsSec,
		L2Writes:            sim.L2WritesSec,
		NoCFlits:            sim.FabricFlits,
		ClusterBusTransfers: sim.L2AccessesSec / math.Max(float64(clusters), 1),
		MCAccesses:          sim.MemAccessesS,
	}
}

// DeviceRow is one point of the device-type study (figure F1).
type DeviceRow struct {
	NM      float64
	Device  tech.DeviceType
	LongCh  bool
	TDP     float64 // W
	Dynamic float64 // W
	Leakage float64 // W
	FMaxGHz float64 // pipeline-limited max clock for this device class
	Area    float64 // mm^2
}

// DeviceStudy synthesizes an 8-core Niagara-class chip across technology
// nodes for each device class, holding the architecture fixed, and
// reports how dynamic power, leakage, and achievable frequency trade off
// - the technology-exploration capability the paper demonstrates.
func DeviceStudy(nodes []float64) ([]DeviceRow, error) {
	if len(nodes) == 0 {
		nodes = []float64{90, 65, 45, 32, 22}
	}
	type variant struct {
		dev    tech.DeviceType
		longCh bool
	}
	variants := []variant{{tech.HP, false}, {tech.HP, true}, {tech.LOP, false}, {tech.LSTP, false}}
	const stageFO4 = 18 // logic depth per pipeline stage

	var rows []DeviceRow
	for _, nm := range nodes {
		node, err := tech.ByFeature(nm)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			fmax := 1 / (float64(stageFO4) * node.FO4(v.dev, v.longCh))
			clock := math.Min(fmax, 4e9)
			cfg := chip.Config{
				Name:        fmt.Sprintf("devstudy-%gnm-%v", nm, v.dev),
				NM:          nm,
				ClockHz:     clock,
				Dev:         v.dev,
				LongChannel: v.longCh,
				NumCores:    8,
				Core: core.Config{
					Threads: 4,
					ICache:  core.CacheParams{Bytes: 16 * 1024, BlockBytes: 32, Assoc: 4},
					DCache:  core.CacheParams{Bytes: 8 * 1024, BlockBytes: 16, Assoc: 4},
					IntALUs: 1, MulDivs: 1,
				},
				L2: &cache.Config{
					Name: "L2", Bytes: 4 * 1024 * 1024, BlockBytes: 64, Assoc: 8, Banks: 4,
				},
				NoC: chip.NoCSpec{Kind: chip.Crossbar, FlitBits: 128},
				MC:  &mc.Config{Channels: 2, PeakBandwidth: 25e9, LVDS: true},
			}
			proc, err := chip.New(cfg)
			if err != nil {
				return nil, err
			}
			rep := proc.Report(nil)
			rows = append(rows, DeviceRow{
				NM:      nm,
				Device:  v.dev,
				LongCh:  v.longCh,
				TDP:     rep.Peak(),
				Dynamic: rep.PeakDynamic,
				Leakage: rep.Leakage(),
				FMaxGHz: fmax / 1e9,
				Area:    rep.Area * 1e6,
			})
		}
	}
	return rows, nil
}

// TechRow is one point of the technology-scaling sweep of the case study
// (figure F6): the best cluster size per node under the ED^2AP metric.
type TechRow struct {
	NM          float64
	BestCluster int
	Results     []ClusterResult
}

// RunTechSweep repeats the clustering sweep across nodes.
func RunTechSweep(nodes []float64, workloads []perfsim.Workload) ([]TechRow, error) {
	if len(nodes) == 0 {
		nodes = []float64{45, 32, 22}
	}
	var rows []TechRow
	for _, nm := range nodes {
		p := DefaultParams()
		p.NM = nm
		results, err := RunClusterSweep(p, workloads)
		if err != nil {
			return nil, err
		}
		best := results[0]
		for _, r := range results[1:] {
			if r.ED2AP < best.ED2AP {
				best = r
			}
		}
		rows = append(rows, TechRow{NM: nm, BestCluster: best.ClusterSize, Results: results})
	}
	return rows, nil
}
