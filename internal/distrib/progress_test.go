package distrib

import "testing"

// TestProgressMonotonicUnderOutOfOrderUpdates is the satellite fix's
// contract: the aggregated (done, total) stream never regresses no
// matter how shard updates interleave, and it converges to exactly
// total when every range completes.
func TestProgressMonotonicUnderOutOfOrderUpdates(t *testing.T) {
	const total = 100
	var reports []int
	tr := newProgressTracker(total, func(done, tot int) {
		if tot != total {
			t.Fatalf("total changed mid-sweep: %d", tot)
		}
		reports = append(reports, done)
	})

	// Three shards report interleaved and out of order.
	tr.update(0, 40, 10)
	tr.update(40, 70, 5)
	tr.update(0, 40, 30)
	tr.update(70, 100, 25)
	tr.update(40, 70, 2) // stale report, must not regress
	tr.complete(40, 70)
	tr.update(0, 40, 40)
	tr.complete(0, 40)
	tr.complete(70, 100)

	for i := 1; i < len(reports); i++ {
		if reports[i] <= reports[i-1] {
			t.Fatalf("progress regressed: %v", reports)
		}
	}
	if last := reports[len(reports)-1]; last != total {
		t.Fatalf("final progress %d, want %d", last, total)
	}
}

// TestProgressRequeueNeverRegressesOrDoubleCounts covers the failure
// path: a shard that dies mid-range is forgotten (so its re-dispatch
// does not double-count), yet the aggregate view stays monotonic, and
// the re-run still converges to exactly total.
func TestProgressRequeueNeverRegressesOrDoubleCounts(t *testing.T) {
	const total = 60
	var reports []int
	tr := newProgressTracker(total, func(done, tot int) { reports = append(reports, done) })

	tr.update(0, 30, 20)
	tr.update(30, 60, 10)
	tr.requeue(0, 30) // worker died 20 candidates in

	// The re-dispatch restarts from zero; early reports are below the
	// high-water mark and must be swallowed, not emitted as regressions.
	tr.update(0, 30, 5)
	tr.update(0, 30, 12)
	if done, _ := tr.value(); done != 30 {
		t.Fatalf("high-water mark after requeue: got %d, want 30", done)
	}
	tr.update(0, 30, 30)
	tr.complete(0, 30)
	tr.update(30, 60, 30)
	tr.complete(30, 60)

	for i := 1; i < len(reports); i++ {
		if reports[i] <= reports[i-1] {
			t.Fatalf("progress regressed: %v", reports)
		}
	}
	if last := reports[len(reports)-1]; last != total {
		t.Fatalf("final progress %d, want %d", last, total)
	}
	// A sweep whose every range completed must never report beyond the
	// space size, even transiently (the clamp).
	for _, r := range reports {
		if r > total {
			t.Fatalf("progress exceeded total: %v", reports)
		}
	}
}
