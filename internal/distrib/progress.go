package distrib

import "sync"

// progressTracker aggregates shard-local progress reports into one
// monotonic cross-shard (done, total) stream. Shards report out of
// order and can be re-dispatched after a worker dies, so the naive sum
// of reports would regress; the tracker instead keeps a high-water mark
// per live range, folds a range's count into the completed tally when
// it finishes, discards the live entry when the range is requeued, and
// clamps the reported value so it never moves backwards.
type progressTracker struct {
	mu         sync.Mutex
	total      int
	completed  int            // candidates in ranges that finished
	live       map[[2]int]int // in-flight range -> its last done count
	reported   int            // high-water mark handed to onProgress
	onProgress func(done, total int)
}

func newProgressTracker(total int, onProgress func(done, total int)) *progressTracker {
	return &progressTracker{
		total:      total,
		live:       make(map[[2]int]int),
		onProgress: onProgress,
	}
}

// update records a shard-local progress report for range [start, end).
func (t *progressTracker) update(start, end, done int) {
	t.mu.Lock()
	key := [2]int{start, end}
	if done > t.live[key] {
		t.live[key] = done
	}
	t.emitLocked()
	t.mu.Unlock()
}

// complete folds a finished range's candidate count into the tally.
func (t *progressTracker) complete(start, end int) {
	t.mu.Lock()
	delete(t.live, [2]int{start, end})
	t.completed += end - start
	t.emitLocked()
	t.mu.Unlock()
}

// requeue forgets a failed range's partial progress so its re-dispatch
// does not double-count. The reported high-water mark is kept — the
// aggregate view stays monotonic even though the work is redone.
func (t *progressTracker) requeue(start, end int) {
	t.mu.Lock()
	delete(t.live, [2]int{start, end})
	t.mu.Unlock()
}

func (t *progressTracker) emitLocked() {
	done := t.completed
	for _, d := range t.live {
		done += d
	}
	if done > t.total {
		done = t.total
	}
	if done <= t.reported {
		return
	}
	t.reported = done
	if t.onProgress != nil {
		t.onProgress(done, t.total)
	}
}

// value returns the current monotonic (done, total) view.
func (t *progressTracker) value() (done, total int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reported, t.total
}
