// End-to-end coordinator/worker tests: real serve.Server workers behind
// httptest listeners, exercised over the actual NDJSON shard protocol.
// The external test package lets these import serve without a cycle
// (serve imports distrib for the wire types).
package distrib_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mcpat/internal/chip"
	"mcpat/internal/distrib"
	"mcpat/internal/explore"
	"mcpat/internal/serve"
)

func e2eSpace() (explore.Space, explore.Constraints) {
	return explore.Space{
		Cores:        []int{2, 4, 8, 16, 32, 64, 128},
		L2PerCoreKB:  []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384},
		Fabrics:      []chip.InterconnectKind{chip.Ring, chip.Crossbar},
		ClusterSizes: []int{1},
	}, explore.Constraints{MaxAreaMM2: 400, MaxTDP: 300}
}

// newWorker starts a worker-mode server on an httptest listener and
// returns its base URL.
func newWorker(t *testing.T) string {
	t.Helper()
	srv := serve.New(serve.Config{WorkerMode: true})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	return ts.URL
}

func serialResult(t *testing.T, obj explore.Objective) *explore.Result {
	t.Helper()
	space, cons := e2eSpace()
	res, err := explore.SearchContext(context.Background(), explore.Params{}, space, cons, obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertSameSweep(t *testing.T, serial, dist *explore.Result) {
	t.Helper()
	if (dist.Best == nil) != (serial.Best == nil) {
		t.Fatalf("best presence differs")
	}
	if dist.Best != nil && *dist.Best != *serial.Best {
		t.Fatalf("best differs:\ndistributed %+v\nserial %+v", *dist.Best, *serial.Best)
	}
	if !reflect.DeepEqual(dist.Front, serial.Front) {
		t.Fatalf("front differs:\ndistributed %+v\nserial %+v", dist.Front, serial.Front)
	}
	if !reflect.DeepEqual(dist.Candidates, serial.Candidates) {
		t.Fatalf("candidate ranking differs (%d vs %d entries)",
			len(dist.Candidates), len(serial.Candidates))
	}
	if dist.Evaluated != serial.Evaluated || dist.Feasible != serial.Feasible {
		t.Fatalf("counts differ: distributed eval=%d feas=%d, serial eval=%d feas=%d",
			dist.Evaluated, dist.Feasible, serial.Evaluated, serial.Feasible)
	}
}

// TestDistributedSweepBitIdentical is the tentpole acceptance test: a
// sweep sharded across two real HTTP workers (plus the local engine)
// returns bit-identical winners, ranking, and front to the serial
// engine, with monotonic progress that converges to the space size.
func TestDistributedSweepBitIdentical(t *testing.T) {
	serial := serialResult(t, explore.MaxThroughput)
	space, cons := e2eSpace()

	m := &distrib.Metrics{}
	var lastDone atomic.Int64
	var regressed atomic.Bool
	dist, err := distrib.Run(context.Background(), explore.Params{}, space, cons,
		explore.MaxThroughput, &distrib.Options{
			Remotes: []string{newWorker(t), newWorker(t)},
			Metrics: m,
			OnProgress: func(done, total int) {
				if int64(done) <= lastDone.Load() {
					regressed.Store(true)
				}
				lastDone.Store(int64(done))
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSweep(t, serial, dist)
	if regressed.Load() {
		t.Error("cross-shard progress regressed")
	}
	if got := lastDone.Load(); got != int64(serial.SpaceSize) {
		t.Errorf("final progress %d, want %d", got, serial.SpaceSize)
	}
	st := m.Snapshot()
	if st.ShardsDispatched == 0 {
		t.Error("no shards dispatched")
	}
	if len(st.Workers) == 0 {
		t.Error("no per-worker stats recorded")
	}
}

// TestWorkerDeathNeverLosesCandidates kills a worker's connections
// mid-sweep: its range is requeued (shards_retried >= 1) and the sweep
// still completes with results bit-identical to the serial engine.
func TestWorkerDeathNeverLosesCandidates(t *testing.T) {
	serial := serialResult(t, explore.MaxThroughput)
	space, cons := e2eSpace()

	good := newWorker(t)
	// The flaky worker drops the TCP connection on its first two shard
	// requests — from the coordinator's side this is exactly a worker
	// process dying mid-shard — then recovers (proxying to a healthy
	// worker), like a restarted host rejoining the pool.
	healthy, _ := url.Parse(newWorker(t))
	proxy := httputil.NewSingleHostReverseProxy(healthy)
	proxy.FlushInterval = -1
	var hits atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			http.Error(w, "dying", http.StatusInternalServerError)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	m := &distrib.Metrics{}
	dist, err := distrib.Run(context.Background(), explore.Params{}, space, cons,
		explore.MaxThroughput, &distrib.Options{
			Remotes: []string{good, flaky.URL},
			Metrics: m,
			// Keep the failure backoff short so the test stays fast.
			Backoff:    5 * time.Millisecond,
			MaxBackoff: 50 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSweep(t, serial, dist)
	st := m.Snapshot()
	if st.ShardsRetried < 1 {
		t.Errorf("shards_retried = %d, want >= 1", st.ShardsRetried)
	}
}

// TestDeadWorkerIsEjectedAfterRepeatedFailures pins the kill -9 story:
// a worker that dies and NEVER comes back (every dispatch to it is
// connection-refused) must not exhaust any range's retry budget — after
// MaxRetries consecutive failures it is retired from the pool and the
// surviving workers finish the sweep bit-identical to the serial engine.
func TestDeadWorkerIsEjectedAfterRepeatedFailures(t *testing.T) {
	serial := serialResult(t, explore.MaxThroughput)
	space, cons := e2eSpace()

	// A listener that is already closed: dials fail instantly, forever.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	m := &distrib.Metrics{}
	dist, err := distrib.Run(context.Background(), explore.Params{}, space, cons,
		explore.MaxThroughput, &distrib.Options{
			Remotes:    []string{newWorker(t), deadURL},
			Metrics:    m,
			Backoff:    time.Millisecond,
			MaxBackoff: 5 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSweep(t, serial, dist)
	st := m.Snapshot()
	if st.ShardsRetried < 1 {
		t.Errorf("shards_retried = %d, want >= 1", st.ShardsRetried)
	}
}

// TestPermanentErrorAbortsInsteadOfRetrying pins the guard-taxonomy
// mapping: a remote that rejects the shard outright (here an mcpatd
// running without -worker, answering 404) is an operator error that
// re-dispatching cannot fix, so the sweep fails fast with the
// classified message instead of burning the retry budget.
func TestPermanentErrorAbortsInsteadOfRetrying(t *testing.T) {
	space, cons := e2eSpace()
	srv := serve.New(serve.Config{}) // worker mode off
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})

	m := &distrib.Metrics{}
	_, err := distrib.Run(context.Background(), explore.Params{}, space, cons,
		explore.MaxThroughput, &distrib.Options{
			NoLocal: true,
			Remotes: []string{ts.URL},
			Metrics: m,
		})
	if err == nil {
		t.Fatal("want an error from the non-worker remote, got success")
	}
	if !strings.Contains(err.Error(), "worker mode disabled") {
		t.Errorf("error does not carry the worker-mode hint: %v", err)
	}
	if st := m.Snapshot(); st.ShardsRetried != 0 {
		t.Errorf("permanent rejection burned %d retries; want 0", st.ShardsRetried)
	}
}

// TestCancellationReturnsPartialMerge pins the serial-engine parity of
// cancellation: a canceled distributed sweep returns promptly with
// ctx.Err() and whatever shards completed.
func TestCancellationReturnsPartialMerge(t *testing.T) {
	space, cons := e2eSpace()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := distrib.Run(ctx, explore.Params{}, space, cons,
		explore.MaxThroughput, &distrib.Options{Remotes: []string{newWorker(t)}})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("want a (possibly empty) partial result, got nil")
	}
}
