package distrib

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"mcpat/internal/chip"
	"mcpat/internal/explore"
)

// validationSpaces mirror the explore package's pareto-vs-exhaustive
// validation set: the distributed contract is pinned on the same three
// constraint geometries the serial engines are.
var validationSpaces = []struct {
	name  string
	space explore.Space
	cons  explore.Constraints
}{
	{"wide", explore.Space{
		Cores:        []int{2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256},
		L2PerCoreKB:  []int{32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 4096},
		Fabrics:      []chip.InterconnectKind{chip.Mesh, chip.Ring, chip.Crossbar},
		ClusterSizes: []int{1, 2, 4},
	}, explore.Constraints{MaxAreaMM2: 600, MaxTDP: 400}},
	{"tight", explore.Space{
		Cores:        []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64},
		L2PerCoreKB:  []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384},
		Fabrics:      []chip.InterconnectKind{chip.Bus, chip.Ring, chip.Mesh},
		ClusterSizes: []int{1, 2, 4},
	}, explore.Constraints{MaxAreaMM2: 150, MaxTDP: 100}},
	{"flat", explore.Space{
		Cores:        []int{2, 4, 8, 16, 32, 64, 128},
		L2PerCoreKB:  []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384},
		Fabrics:      []chip.InterconnectKind{chip.Ring, chip.Crossbar},
		ClusterSizes: []int{1},
	}, explore.Constraints{MaxAreaMM2: 400, MaxTDP: 300}},
}

// randomPartition cuts [0, size) into contiguous ranges at random
// boundaries (at least two parts for size > 1).
func randomPartition(rnd *rand.Rand, size int) [][2]int {
	cuts := map[int]bool{0: true, size: true}
	n := 2 + rnd.Intn(6)
	for i := 0; i < n; i++ {
		cuts[1+rnd.Intn(size-1)] = true
	}
	var bounds []int
	for c := range cuts {
		bounds = append(bounds, c)
	}
	for i := 1; i < len(bounds); i++ {
		for j := i; j > 0 && bounds[j] < bounds[j-1]; j-- {
			bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
		}
	}
	var parts [][2]int
	for i := 0; i+1 < len(bounds); i++ {
		parts = append(parts, [2]int{bounds[i], bounds[i+1]})
	}
	return parts
}

func assertResultsEqual(t *testing.T, serial, merged *explore.Result) {
	t.Helper()
	if merged.Evaluated != serial.Evaluated || merged.Feasible != serial.Feasible ||
		merged.SpaceSize != serial.SpaceSize {
		t.Fatalf("counts differ: merged (eval=%d feas=%d size=%d), serial (eval=%d feas=%d size=%d)",
			merged.Evaluated, merged.Feasible, merged.SpaceSize,
			serial.Evaluated, serial.Feasible, serial.SpaceSize)
	}
	if (merged.Best == nil) != (serial.Best == nil) {
		t.Fatalf("best presence differs: merged %v, serial %v", merged.Best, serial.Best)
	}
	if merged.Best != nil && *merged.Best != *serial.Best {
		t.Fatalf("best differs:\nmerged %+v\nserial %+v", *merged.Best, *serial.Best)
	}
	if !reflect.DeepEqual(merged.Front, serial.Front) {
		t.Fatalf("front differs (%d vs %d members):\nmerged %+v\nserial %+v",
			len(merged.Front), len(serial.Front), merged.Front, serial.Front)
	}
	if !reflect.DeepEqual(merged.Candidates, serial.Candidates) {
		for i := range serial.Candidates {
			if i < len(merged.Candidates) && merged.Candidates[i] != serial.Candidates[i] {
				t.Fatalf("candidate ranking diverges at %d:\nmerged %+v\nserial %+v",
					i, merged.Candidates[i], serial.Candidates[i])
			}
		}
		t.Fatalf("candidate lists differ in length: merged %d, serial %d",
			len(merged.Candidates), len(serial.Candidates))
	}
}

// TestMergeIsPartitionAndOrderIndependent is the satellite property
// test: random contiguous shardings of every validation space, with the
// per-shard results merged in shuffled arrival order, reproduce the
// serial exhaustive sweep bit for bit — winners, ranking, and Pareto
// front alike.
func TestMergeIsPartitionAndOrderIndependent(t *testing.T) {
	for _, tc := range validationSpaces {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial, err := explore.SearchContext(context.Background(),
				explore.Params{}, tc.space, tc.cons, explore.MaxThroughput, nil)
			if err != nil {
				t.Fatal(err)
			}
			size := serial.SpaceSize

			for seed := int64(1); seed <= 3; seed++ {
				rnd := rand.New(rand.NewSource(seed))
				parts := randomPartition(rnd, size)
				shards := make([]*ShardResult, 0, len(parts))
				for _, p := range parts {
					res, err := EvalShard(context.Background(), ShardSpec{
						Params: explore.Params{}, Space: tc.space, Cons: tc.cons,
						Obj: explore.MaxThroughput, Start: p[0], End: p[1],
					}, nil)
					if err != nil {
						t.Fatalf("seed %d shard [%d,%d): %v", seed, p[0], p[1], err)
					}
					shards = append(shards, res)
				}
				rnd.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
				merged := mergeOutcomes(size, 0, shards)
				assertResultsEqual(t, serial, merged)
			}
		})
	}
}

// TestMergeBoundedFrontMatchesSerial pins the crowding-truncation path:
// when the archive is size-capped (truncation makes insertion order
// matter), the merge replays the full candidate list in enumeration
// order and still matches the serial engine exactly.
func TestMergeBoundedFrontMatchesSerial(t *testing.T) {
	tc := validationSpaces[2] // flat
	const frontSize = 5
	serial, err := explore.SearchContext(context.Background(),
		explore.Params{}, tc.space, tc.cons, explore.MaxThroughput,
		&explore.Options{FrontSize: frontSize})
	if err != nil {
		t.Fatal(err)
	}
	size := serial.SpaceSize

	rnd := rand.New(rand.NewSource(7))
	parts := randomPartition(rnd, size)
	shards := make([]*ShardResult, 0, len(parts))
	for _, p := range parts {
		res, err := EvalShard(context.Background(), ShardSpec{
			Params: explore.Params{}, Space: tc.space, Cons: tc.cons,
			Obj: explore.MaxThroughput, Start: p[0], End: p[1],
		}, nil)
		if err != nil {
			t.Fatalf("shard [%d,%d): %v", p[0], p[1], err)
		}
		shards = append(shards, res)
	}
	rnd.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
	merged := mergeOutcomes(size, frontSize, shards)
	if !reflect.DeepEqual(merged.Front, serial.Front) {
		t.Fatalf("bounded front differs:\nmerged %+v\nserial %+v", merged.Front, serial.Front)
	}
}

// TestWireCandidateRoundTrip pins the lossless wire encoding: every
// engine field survives ShardCandidate conversion exactly, fabric names
// included.
func TestWireCandidateRoundTrip(t *testing.T) {
	res, err := explore.SearchContext(context.Background(),
		explore.Params{}, validationSpaces[2].space, validationSpaces[2].cons,
		explore.MaxThroughput, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Candidates {
		c := res.Candidates[i]
		w := toWire(&c, i)
		back := fromWire(&w)
		if back != c {
			t.Fatalf("candidate %d did not round-trip:\n got %+v\nwant %+v", i, back, c)
		}
	}
}

// TestRunLocalOnlyMatchesSerial pins the degraded mode: a coordinator
// with no remotes (the -remote-absent path) equals the serial engine.
func TestRunLocalOnlyMatchesSerial(t *testing.T) {
	tc := validationSpaces[2]
	serial, err := explore.SearchContext(context.Background(),
		explore.Params{}, tc.space, tc.cons, explore.MaxPerfPerWatt, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := &Metrics{}
	var lastDone, total int
	dist, err := Run(context.Background(), explore.Params{}, tc.space, tc.cons,
		explore.MaxPerfPerWatt, &Options{
			Metrics:    m,
			OnProgress: func(d, tot int) { lastDone, total = d, tot },
		})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, serial, dist)
	if lastDone != serial.SpaceSize || total != serial.SpaceSize {
		t.Errorf("final progress %d/%d, want %d/%d", lastDone, total, serial.SpaceSize, serial.SpaceSize)
	}
	st := m.Snapshot()
	if st.ShardsDispatched == 0 {
		t.Error("no shards dispatched")
	}
	if st.ShardsRetried != 0 {
		t.Errorf("unexpected retries: %d", st.ShardsRetried)
	}
}
