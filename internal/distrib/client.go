package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client evaluates shards on one remote mcpatd worker by streaming
// POST /v1/dse/shard. It is stateless and safe for concurrent use.
type Client struct {
	// Base is the worker's base URL ("host:port" or "http://host:port").
	Base string
	// HTTP is the underlying client; nil selects http.DefaultClient.
	// Deliberately no client-side timeout by default: a shard's
	// duration is unbounded (cold candidates synthesize whole chips),
	// and liveness comes from the progress frames and ctx instead.
	HTTP *http.Client
}

// NormalizeBase accepts the forms users type for -remote (host:port,
// http://host, trailing slashes) and returns a clean base URL.
func NormalizeBase(s string) string {
	s = strings.TrimRight(strings.TrimSpace(s), "/")
	if s == "" {
		return s
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// EvalShard runs one shard on the remote worker, forwarding progress
// frames to onProgress (shard-local done/total, like the engine
// callback). Transport errors, non-2xx statuses, malformed frames, and
// streams that end without a terminal frame all return errors — the
// coordinator treats any of them as a worker failure and requeues the
// range.
func (c *Client) EvalShard(ctx context.Context, spec ShardSpec, onProgress func(done, total int)) (*ShardResult, error) {
	body, err := json.Marshal(spec.Wire())
	if err != nil {
		return nil, fmt.Errorf("distrib: encode shard request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/dse/shard", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("distrib: build shard request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("distrib: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Pre-stream failures arrive as a plain HTTP error body — for
		// mcpatd, the JSON error envelope with the guard classification.
		// Extract its message; fall back to the squashed raw body.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		detail := strings.Join(strings.Fields(string(msg)), " ")
		var env struct {
			Error struct {
				Kind    string `json:"kind"`
				Path    string `json:"path"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(msg, &env) == nil && env.Error.Message != "" {
			detail = env.Error.Message
			if env.Error.Path != "" {
				detail = env.Error.Path + ": " + detail
			}
		}
		err := fmt.Errorf("distrib: %s: HTTP %d: %s", c.Base, resp.StatusCode, detail)
		switch resp.StatusCode {
		case http.StatusBadRequest, http.StatusNotFound, http.StatusUnprocessableEntity:
			// The request itself was rejected (bad sweep, bad range, or
			// a remote that is not in worker mode): re-dispatching the
			// same shard cannot succeed, so fail the sweep instead of
			// burning the retry budget.
			return nil, &permanentError{err}
		}
		return nil, err
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("distrib: %s: stream ended without a result frame", c.Base)
			}
			return nil, fmt.Errorf("distrib: %s: decode shard stream: %w", c.Base, err)
		}
		switch f.Type {
		case "progress":
			if onProgress != nil {
				onProgress(f.Done, f.Total)
			}
		case "result":
			if f.Result == nil {
				return nil, fmt.Errorf("distrib: %s: result frame without a result", c.Base)
			}
			return f.Result, nil
		case "error":
			if f.Error == nil {
				return nil, fmt.Errorf("distrib: %s: error frame without an error", c.Base)
			}
			return nil, f.Error
		default:
			return nil, fmt.Errorf("distrib: %s: unknown frame type %q", c.Base, f.Type)
		}
	}
}
