package distrib

import (
	"sort"
	"sync"
	"time"
)

// Metrics accumulates coordinator-side counters across one or more
// distributed sweeps. All methods are safe for concurrent use; a nil
// *Metrics is a valid no-op sink so call sites never need to guard.
type Metrics struct {
	mu sync.Mutex

	dispatched uint64
	stolen     uint64
	retried    uint64

	workers map[string]*workerAgg
}

type workerAgg struct {
	shards     uint64
	candidates uint64
	failures   uint64
	busy       time.Duration
}

// WorkerStats is the per-worker slice of a metrics snapshot.
type WorkerStats struct {
	Name       string  `json:"name"`
	Shards     uint64  `json:"shards"`
	Candidates uint64  `json:"candidates"`
	Failures   uint64  `json:"failures"`
	BusySec    float64 `json:"busy_sec"`
	// Throughput is candidates per busy second — the worker's observed
	// evaluation rate, independent of how much of the sweep it won.
	Throughput float64 `json:"candidates_per_sec"`
}

// Stats is a point-in-time snapshot of coordinator activity.
type Stats struct {
	// ShardsDispatched counts every shard handed to a worker, including
	// re-dispatches of requeued ranges.
	ShardsDispatched uint64 `json:"shards_dispatched"`
	// ShardsStolen counts dispatches where an idle worker took a range
	// split off another part of the space rather than continuing its
	// own frontier.
	ShardsStolen uint64 `json:"shards_stolen"`
	// ShardsRetried counts ranges requeued after a worker failure.
	ShardsRetried uint64 `json:"shards_retried"`

	Workers []WorkerStats `json:"workers,omitempty"`
}

func (m *Metrics) dispatch(stolen bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.dispatched++
	if stolen {
		m.stolen++
	}
	m.mu.Unlock()
}

func (m *Metrics) retry() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.retried++
	m.mu.Unlock()
}

func (m *Metrics) workerDone(name string, candidates, failures int, busy time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.workers == nil {
		m.workers = make(map[string]*workerAgg)
	}
	w := m.workers[name]
	if w == nil {
		w = &workerAgg{}
		m.workers[name] = w
	}
	w.shards++
	w.candidates += uint64(candidates)
	w.failures += uint64(failures)
	w.busy += busy
	m.mu.Unlock()
}

// Snapshot returns the current counters; workers sort by name so the
// JSON form is stable.
func (m *Metrics) Snapshot() Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		ShardsDispatched: m.dispatched,
		ShardsStolen:     m.stolen,
		ShardsRetried:    m.retried,
	}
	names := make([]string, 0, len(m.workers))
	for name := range m.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := m.workers[name]
		ws := WorkerStats{
			Name:       name,
			Shards:     w.shards,
			Candidates: w.candidates,
			Failures:   w.failures,
			BusySec:    w.busy.Seconds(),
		}
		if sec := w.busy.Seconds(); sec > 0 {
			ws.Throughput = float64(w.candidates) / sec
		}
		s.Workers = append(s.Workers, ws)
	}
	return s
}
