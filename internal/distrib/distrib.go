package distrib

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"mcpat/internal/array"
	"mcpat/internal/component"
	"mcpat/internal/explore"
	"mcpat/internal/guard"
	"mcpat/internal/persist"
)

// Defaults for the coordinator knobs; see Options.
const (
	DefaultMinShard   = 8
	DefaultMaxRetries = 3
	DefaultBackoff    = 100 * time.Millisecond
	DefaultMaxBackoff = 2 * time.Second
)

// Options tunes the distributed coordinator. The zero value runs the
// sweep on the built-in local worker alone, which reproduces the
// single-process engine exactly.
type Options struct {
	// Remotes lists worker base URLs (mcpatd -worker instances);
	// "host:port" and "http://host:port" are both accepted.
	Remotes []string

	// NoLocal removes the built-in local worker so the sweep runs on
	// remotes only. Requires at least one remote. Intended for
	// benchmarks isolating remote throughput; production sweeps keep
	// the local worker as the availability backstop.
	NoLocal bool

	// ShardWorkers bounds candidate-level parallelism inside each
	// worker evaluating one shard (engine Options.Workers on the
	// worker; 0 = the worker's GOMAXPROCS).
	ShardWorkers int

	// SynthWorkers bounds subsystem-synthesis parallelism inside each
	// cold candidate on the local worker (remote workers use their own
	// process default).
	SynthWorkers int

	// CandidateTimeout is the per-candidate evaluation deadline
	// forwarded to every worker (0 = none).
	CandidateTimeout time.Duration

	// FrontSize caps the merged Pareto archive exactly like
	// explore.Options.FrontSize; <= 0 keeps the exact unbounded front.
	FrontSize int

	// MinShard is the smallest range work-stealing will create; ranges
	// at or below 2*MinShard dispatch whole. <= 0 selects
	// DefaultMinShard.
	MinShard int

	// MaxRetries bounds re-dispatches of a single range after worker
	// failures before the sweep aborts. It is also the ejection
	// threshold: a worker failing MaxRetries consecutive dispatches is
	// retired from the pool (unless it is the last one), so one dead
	// host cannot exhaust a range budget the live workers would absorb.
	// < 0 disables retries; 0 selects DefaultMaxRetries.
	MaxRetries int

	// Backoff and MaxBackoff shape the jittered exponential delay a
	// worker sits out after consecutive failures. Zero selects
	// DefaultBackoff / DefaultMaxBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration

	// OnProgress, when non-nil, receives monotonic cross-shard
	// progress: done never regresses even when shards report out of
	// order or a failed range is re-dispatched, and it reaches total
	// exactly when the sweep completes. Calls may come from multiple
	// worker goroutines but are serialized by the tracker.
	OnProgress func(done, total int)

	// OnFrontUpdate, when non-nil, receives the final merged front once
	// the sweep completes (the exhaustive engine's behavior).
	OnFrontUpdate func(front []explore.Candidate, evaluated int)

	// Metrics, when non-nil, accumulates coordinator counters; pass a
	// long-lived instance to aggregate across sweeps (the daemon wires
	// its /metrics instance here).
	Metrics *Metrics

	// HTTPClient overrides the transport used for remote workers.
	HTTPClient *http.Client

	// Logf, when non-nil, receives coordinator diagnostics (dispatches,
	// failures, retries).
	Logf func(format string, args ...any)
}

func (o *Options) minShard() int {
	if o.MinShard <= 0 {
		return DefaultMinShard
	}
	return o.MinShard
}

func (o *Options) maxRetries() int {
	if o.MaxRetries < 0 {
		return 0
	}
	if o.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return o.MaxRetries
}

func (o *Options) backoff() (base, max time.Duration) {
	base, max = o.Backoff, o.MaxBackoff
	if base <= 0 {
		base = DefaultBackoff
	}
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	return base, max
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// permanentError marks a failure that re-dispatching cannot fix (the
// sweep description itself is bad); the coordinator aborts instead of
// retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func isPermanent(err error) bool {
	var pe *permanentError
	if errors.As(err, &pe) {
		return true
	}
	if errors.Is(err, guard.ErrConfig) {
		return true
	}
	var se *ShardError
	if errors.As(err, &se) {
		return se.Kind == "config"
	}
	return false
}

// worker is one evaluation endpoint the coordinator can dispatch to.
type worker interface {
	name() string
	run(ctx context.Context, spec ShardSpec, onProgress func(done, total int)) (*ShardResult, error)
}

// localWorker evaluates shards in-process through the engine.
type localWorker struct{ synthWorkers int }

func (localWorker) name() string { return "local" }

func (w localWorker) run(ctx context.Context, spec ShardSpec, onProgress func(done, total int)) (*ShardResult, error) {
	spec.SynthWorkers = w.synthWorkers
	res, err := EvalShard(ctx, spec, onProgress)
	if err != nil && errors.Is(err, guard.ErrConfig) {
		return nil, &permanentError{err}
	}
	return res, err
}

// httpWorker evaluates shards on a remote mcpatd.
type httpWorker struct{ client *Client }

func (w httpWorker) name() string { return w.client.Base }

func (w httpWorker) run(ctx context.Context, spec ShardSpec, onProgress func(done, total int)) (*ShardResult, error) {
	res, err := w.client.EvalShard(ctx, spec, onProgress)
	if err != nil && isPermanent(err) {
		return nil, &permanentError{err}
	}
	return res, err
}

// rng is a contiguous half-open range of enumeration indices, the unit
// of dispatch.
type rng struct {
	start, end int
	attempts   int
}

func (r rng) len() int { return r.end - r.start }

// coordinator owns the mutable sweep state shared by worker loops.
type coordinator struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  []rng
	inflight int
	active   int  // worker loops still in the pool
	done     bool // all ranges completed
	fatal    error
	results  []*ShardResult

	minShard int
	retries  int
	opts     *Options
	progress *progressTracker
	cancel   context.CancelFunc
}

// take hands the calling worker its next range, blocking while other
// workers still hold in-flight ranges that might fail and requeue. A
// worker whose frontier continues (lastEnd == a pending range's start)
// prefers that range for cache locality; otherwise it takes — steals —
// the largest pending range. Ranges longer than 2*minShard are halved
// on take: the worker gets the leading half and the tail returns to
// pending for others to steal.
func (c *coordinator) take(lastEnd int) (r rng, stolen, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.fatal != nil || c.done {
			return rng{}, false, false
		}
		if len(c.pending) > 0 {
			break
		}
		if c.inflight == 0 {
			c.done = true
			c.cond.Broadcast()
			return rng{}, false, false
		}
		c.cond.Wait()
	}
	pick := 0
	continuation := false
	for i := range c.pending {
		if c.pending[i].start == lastEnd {
			pick, continuation = i, true
			break
		}
		if c.pending[i].len() > c.pending[pick].len() {
			pick = i
		}
	}
	r = c.pending[pick]
	c.pending = append(c.pending[:pick], c.pending[pick+1:]...)
	if r.len() > 2*c.minShard {
		half := (r.len() + 1) / 2
		tail := rng{start: r.start + half, end: r.end, attempts: r.attempts}
		r.end = r.start + half
		c.pending = append(c.pending, tail)
		c.cond.Broadcast()
	}
	c.inflight++
	stolen = !continuation && lastEnd >= 0
	c.opts.Metrics.dispatch(stolen)
	return r, stolen, true
}

func (c *coordinator) complete(r rng, res *ShardResult) {
	c.mu.Lock()
	c.results = append(c.results, res)
	c.inflight--
	c.cond.Broadcast()
	c.mu.Unlock()
	c.progress.complete(r.start, r.end)
}

// fail requeues a range after a worker failure, aborting the sweep when
// the range's retry budget is exhausted or the failure is permanent.
func (c *coordinator) fail(r rng, who string, err error) {
	c.progress.requeue(r.start, r.end)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatal != nil {
		return
	}
	r.attempts++
	if isPermanent(err) {
		c.fatal = err
	} else if r.attempts > c.retries {
		c.fatal = fmt.Errorf("distrib: shard [%d,%d) failed %d times, giving up: %w",
			r.start, r.end, r.attempts, err)
	} else {
		c.opts.Metrics.retry()
		c.opts.logf("distrib: shard [%d,%d) failed on %s (attempt %d/%d), requeued: %v",
			r.start, r.end, who, r.attempts, c.retries+1, err)
		c.pending = append(c.pending, r)
	}
	c.inflight--
	if c.fatal != nil && c.cancel != nil {
		c.cancel()
	}
	c.cond.Broadcast()
}

// retire removes one worker loop from the pool — a worker failing every
// dispatch (a host that died and never came back) must stop pulling
// ranges, or it alone can exhaust a range's retry budget that the live
// workers would have absorbed. The last active worker never retires:
// it is the availability backstop, and the per-range budget remains the
// abort path when failures are systemic rather than one bad host.
func (c *coordinator) retire() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.active <= 1 {
		return false
	}
	c.active--
	return true
}

// abort wakes every worker when the caller's context ends.
func (c *coordinator) abort() {
	c.mu.Lock()
	c.done = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Run executes a distributed exhaustive sweep and returns a result
// bit-identical to explore.SearchContext over the same inputs. The
// built-in local worker participates unless opts.NoLocal; remote
// workers come from opts.Remotes. Cancellation returns the merged
// partial result together with ctx.Err(), matching the serial engine.
func Run(ctx context.Context, p explore.Params, space explore.Space, cons explore.Constraints, obj explore.Objective, opts *Options) (*explore.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts == nil {
		opts = &Options{}
	}

	var workers []worker
	if !opts.NoLocal {
		workers = append(workers, localWorker{synthWorkers: opts.SynthWorkers})
	}
	for _, remote := range opts.Remotes {
		base := NormalizeBase(remote)
		if base == "" {
			continue
		}
		workers = append(workers, httpWorker{client: &Client{Base: base, HTTP: opts.HTTPClient}})
	}
	if len(workers) == 0 {
		return nil, guard.Configf("distrib", "no workers: NoLocal set and no remotes given")
	}

	specs := explore.Enumerate(space)
	size := len(specs)

	cacheBefore := array.Stats()
	subsysBefore := component.Stats()
	optBefore := array.OptStats()
	diskBefore := persist.DefaultStats()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	c := &coordinator{
		minShard: opts.minShard(),
		retries:  opts.maxRetries(),
		opts:     opts,
		progress: newProgressTracker(size, opts.OnProgress),
		cancel:   cancel,
	}
	c.cond = sync.NewCond(&c.mu)
	c.active = len(workers)

	// Initial partition: one contiguous slice per worker, each at least
	// minShard long (fewer slices when the space is small), preserving
	// the enumeration's single-axis delta-locality inside every slice.
	nParts := len(workers)
	if max := (size + c.minShard - 1) / c.minShard; nParts > max {
		nParts = max
	}
	if nParts < 1 {
		nParts = 1
	}
	for i := 0; i < nParts; i++ {
		start := i * size / nParts
		end := (i + 1) * size / nParts
		if start < end {
			c.pending = append(c.pending, rng{start: start, end: end})
		}
	}

	// Wake blocked workers if the caller gives up.
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-runCtx.Done():
			c.abort()
		case <-stopWatch:
		}
	}()

	base, maxBackoff := opts.backoff()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w worker) {
			defer wg.Done()
			lastEnd := -1
			consecFails := 0
			for {
				if consecFails > 0 {
					d := base << (consecFails - 1)
					if d > maxBackoff || d <= 0 {
						d = maxBackoff
					}
					d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
					t := time.NewTimer(d)
					select {
					case <-runCtx.Done():
						t.Stop()
						return
					case <-t.C:
					}
				}
				r, stolen, ok := c.take(lastEnd)
				if !ok {
					return
				}
				spec := ShardSpec{
					Params: p, Space: space, Cons: cons, Obj: obj,
					Start: r.start, End: r.end,
					Workers:          opts.ShardWorkers,
					CandidateTimeout: opts.CandidateTimeout,
				}
				began := time.Now()
				res, err := w.run(runCtx, spec, func(done, total int) {
					c.progress.update(r.start, r.end, done)
				})
				if err != nil {
					if runCtx.Err() != nil {
						c.fail(r, w.name(), runCtx.Err())
						return
					}
					consecFails++
					lastEnd = -1
					c.fail(r, w.name(), err)
					if c.retries > 0 && consecFails >= c.retries && c.retire() {
						opts.logf("distrib: ejecting %s after %d consecutive failures", w.name(), consecFails)
						return
					}
					continue
				}
				consecFails = 0
				opts.Metrics.workerDone(w.name(), len(res.Candidates), len(res.Failures), time.Since(began))
				if stolen {
					opts.logf("distrib: %s stole shard [%d,%d)", w.name(), r.start, r.end)
				}
				c.complete(r, res)
				lastEnd = r.end
			}
		}(w)
	}
	wg.Wait()
	close(stopWatch)

	c.mu.Lock()
	fatal := c.fatal
	results := c.results
	c.mu.Unlock()

	if fatal != nil && ctx.Err() == nil {
		return nil, fatal
	}

	res := mergeOutcomes(size, opts.FrontSize, results)
	res.Cache = array.Stats().Delta(cacheBefore)
	res.Subsys = component.Stats().Delta(subsysBefore)
	res.ArrayOpt = array.OptStats().Delta(optBefore)
	res.Disk = persist.DefaultStats().Delta(diskBefore)
	if opts.OnFrontUpdate != nil && len(res.Front) > 0 {
		opts.OnFrontUpdate(append([]explore.Candidate(nil), res.Front...), res.Evaluated)
	}
	return res, ctx.Err()
}

// mergeOutcomes reduces per-shard results to the exact serial Result:
// candidates restore enumeration (proposal) order before the engine's
// stable feasible-first/score ranking, so ordering and tie-breaks are
// bit-identical; the front merges through ParetoFront (unbounded
// dominance is order- and partition-independent), or — when a size cap
// makes crowding truncation order-sensitive — replays the full
// candidate list in proposal order, which is exactly what the serial
// engine did.
func mergeOutcomes(size, frontSize int, shards []*ShardResult) *explore.Result {
	res := &explore.Result{
		Search:    explore.SearchExhaustive,
		SpaceSize: size,
	}

	type idxCand struct {
		idx  int
		cand explore.Candidate
	}
	var cands []idxCand
	type idxFail struct {
		idx  int
		fail explore.Failure
	}
	var fails []idxFail
	for _, s := range shards {
		res.Evaluated += s.Evaluated
		for i := range s.Candidates {
			c := &s.Candidates[i]
			cands = append(cands, idxCand{c.Index, fromWire(c)})
		}
		for i := range s.Failures {
			f := s.Failures[i]
			e := f.Error
			fails = append(fails, idxFail{f.Index, explore.Failure{
				Candidate: fromWire(&f.Candidate),
				Err:       &e,
			}})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].idx < cands[j].idx })
	sort.Slice(fails, func(i, j int) bool { return fails[i].idx < fails[j].idx })
	for i := range fails {
		res.Failures = append(res.Failures, fails[i].fail)
	}

	if frontSize > 0 {
		front := explore.NewParetoFront(frontSize)
		for i := range cands {
			front.Add(cands[i].cand)
		}
		res.Front = front.Members()
	} else {
		front := explore.NewParetoFront(0)
		for _, s := range shards {
			for i := range s.Front {
				front.Add(fromWire(&s.Front[i]))
			}
		}
		res.Front = front.Members()
	}

	for i := range cands {
		if cands[i].cand.Feasible {
			res.Feasible++
		}
		res.Candidates = append(res.Candidates, cands[i].cand)
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		a, b := res.Candidates[i], res.Candidates[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		return a.Score > b.Score
	})
	if len(res.Candidates) > 0 && res.Candidates[0].Feasible {
		res.Best = &res.Candidates[0]
	}
	return res
}
