// Package distrib scales design-space exploration out across multiple
// mcpatd worker processes. A coordinator partitions the exhaustive
// boustrophedon enumeration of an explore.Space into contiguous index
// ranges, dispatches them to workers over HTTP (POST /v1/dse/shard),
// work-steals by splitting the largest remaining tail when a worker
// runs dry, retries failed shards with jittered backoff, and merges the
// per-shard results exactly: the distributed sweep returns bit-identical
// winners, candidate ordering, and Pareto front to the single-process
// engine.
//
// A built-in local worker always participates, so a coordinator with no
// reachable remotes degrades to (and exactly reproduces) the
// single-process sweep, and a sweep never stalls because every remote
// died — the local worker drains whatever ranges remain.
package distrib

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"mcpat/internal/chip"
	"mcpat/internal/explore"
	"mcpat/internal/guard"
)

// ShardSpec is one unit of distributed work: the full sweep description
// plus the contiguous enumeration index range [Start, End) this worker
// evaluates. The coordinator keeps the sweep description constant and
// varies only the range.
type ShardSpec struct {
	Params explore.Params
	Space  explore.Space
	Cons   explore.Constraints
	Obj    explore.Objective

	Start int
	End   int

	// Workers bounds the engine's candidate-level parallelism inside
	// the worker evaluating this shard (0 = the worker's GOMAXPROCS).
	Workers int
	// SynthWorkers bounds subsystem-synthesis parallelism inside each
	// cold candidate (0 = process default).
	SynthWorkers int
	// CandidateTimeout is the per-candidate deadline (0 = none).
	CandidateTimeout time.Duration
}

// ShardRequest is the JSON body of POST /v1/dse/shard. The sweep fields
// deliberately mirror the /v1/dse request schema so one description
// serves both endpoints; Start/End select the shard.
type ShardRequest struct {
	NM      float64 `json:"nm,omitempty"`
	ClockHz float64 `json:"clock_hz,omitempty"`
	Threads int     `json:"threads,omitempty"`
	MemBW   float64 `json:"mem_bw_bytes_per_s,omitempty"`

	Cores        []int    `json:"cores,omitempty"`
	L2PerCoreKB  []int    `json:"l2_per_core_kb,omitempty"`
	Fabrics      []string `json:"fabrics,omitempty"`
	ClusterSizes []int    `json:"cluster_sizes,omitempty"`

	MaxAreaMM2 float64 `json:"max_area_mm2,omitempty"`
	MaxTDPW    float64 `json:"max_tdp_w,omitempty"`

	Objective string `json:"objective,omitempty"`

	Start int `json:"start"`
	End   int `json:"end"`

	Workers            int `json:"workers,omitempty"`
	CandidateTimeoutMS int `json:"candidate_timeout_ms,omitempty"`
}

// parseFabric maps a fabric name (the chip.InterconnectKind.String()
// form, as used by the /v1/dse wire schema) back to its kind.
func parseFabric(name string) (chip.InterconnectKind, error) {
	for _, k := range []chip.InterconnectKind{chip.NoneIC, chip.Bus, chip.Crossbar, chip.Mesh, chip.Ring} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown fabric %q (none|bus|crossbar|mesh|ring)", name)
}

// parseObjective maps an objective name to the engine constant,
// accepting both the wire aliases and the String() forms.
func parseObjective(name string) (explore.Objective, error) {
	switch name {
	case "", "throughput":
		return explore.MaxThroughput, nil
	case "perf/watt":
		return explore.MaxPerfPerWatt, nil
	case "ed2ap", "1/ED2AP":
		return explore.MinED2AP, nil
	}
	return 0, fmt.Errorf("unknown objective %q (throughput|perf/watt|ed2ap)", name)
}

// Spec validates the wire request and converts it to engine inputs.
// Range-vs-space validation is left to the engine (via ShardRange), so
// worker and coordinator reject identical ranges identically.
func (r *ShardRequest) Spec() (ShardSpec, error) {
	spec := ShardSpec{
		Params: explore.Params{NM: r.NM, ClockHz: r.ClockHz, Threads: r.Threads, MemBW: r.MemBW},
		Space: explore.Space{
			Cores:        r.Cores,
			L2PerCoreKB:  r.L2PerCoreKB,
			ClusterSizes: r.ClusterSizes,
		},
		Cons:             explore.Constraints{MaxAreaMM2: r.MaxAreaMM2, MaxTDP: r.MaxTDPW},
		Start:            r.Start,
		End:              r.End,
		Workers:          r.Workers,
		CandidateTimeout: time.Duration(r.CandidateTimeoutMS) * time.Millisecond,
	}
	for _, name := range r.Fabrics {
		k, err := parseFabric(name)
		if err != nil {
			return spec, guard.Configf("dse.shard", "%v", err)
		}
		spec.Space.Fabrics = append(spec.Space.Fabrics, k)
	}
	obj, err := parseObjective(r.Objective)
	if err != nil {
		return spec, guard.Configf("dse.shard", "%v", err)
	}
	spec.Obj = obj
	return spec, nil
}

// Wire converts the spec to its request form.
func (s *ShardSpec) Wire() ShardRequest {
	req := ShardRequest{
		NM:                 s.Params.NM,
		ClockHz:            s.Params.ClockHz,
		Threads:            s.Params.Threads,
		MemBW:              s.Params.MemBW,
		Cores:              s.Space.Cores,
		L2PerCoreKB:        s.Space.L2PerCoreKB,
		ClusterSizes:       s.Space.ClusterSizes,
		MaxAreaMM2:         s.Cons.MaxAreaMM2,
		MaxTDPW:            s.Cons.MaxTDP,
		Objective:          s.Obj.String(),
		Start:              s.Start,
		End:                s.End,
		Workers:            s.Workers,
		CandidateTimeoutMS: int(s.CandidateTimeout / time.Millisecond),
	}
	for _, k := range s.Space.Fabrics {
		req.Fabrics = append(req.Fabrics, k.String())
	}
	return req
}

// ShardCandidate is the wire form of one evaluated design point inside
// a shard result. Unlike the /v1/dse candidate form it carries the raw
// engine fields (instructions/s, not GIPS) plus the global enumeration
// index, because the coordinator's merge must reproduce the serial
// sweep bit for bit — encoding/json round-trips float64 exactly, and
// the index restores proposal order across shards.
type ShardCandidate struct {
	Index int `json:"index"`

	Cores       int    `json:"cores"`
	L2PerCoreKB int    `json:"l2_per_core_kb"`
	Fabric      string `json:"fabric"`
	ClusterSize int    `json:"cluster_size"`

	TDPW     float64 `json:"tdp_w"`
	AreaMM2  float64 `json:"area_mm2"`
	PerfIPS  float64 `json:"perf_ips"`
	RuntimeW float64 `json:"runtime_w"`

	Feasible bool    `json:"feasible"`
	Reject   string  `json:"reject,omitempty"`
	Score    float64 `json:"score"`
}

// ShardError is the wire form of a classified failure: the guard kind
// name, the component path, and the headline message. It implements
// error so client-side code can surface it directly.
type ShardError struct {
	Kind    string `json:"kind"`
	Path    string `json:"path,omitempty"`
	Message string `json:"message"`
}

func (e *ShardError) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("%s at %s: %s", e.Kind, e.Path, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Kind, e.Message)
}

// ShardFailure is one hard per-candidate failure inside a shard.
type ShardFailure struct {
	Index     int            `json:"index"`
	Candidate ShardCandidate `json:"candidate"`
	Error     ShardError     `json:"error"`
}

// ShardResult is the final frame of a shard evaluation: every evaluated
// candidate (feasible and rejected alike) in global enumeration order,
// the hard failures, and the shard's own Pareto front in the archive's
// deterministic axis order.
type ShardResult struct {
	Start      int              `json:"start"`
	End        int              `json:"end"`
	Evaluated  int              `json:"evaluated"`
	Candidates []ShardCandidate `json:"candidates"`
	Failures   []ShardFailure   `json:"failures,omitempty"`
	Front      []ShardCandidate `json:"front,omitempty"`
}

// Frame is one NDJSON record of the shard stream: interleaved
// "progress" frames while the worker evaluates, then exactly one
// terminal "result" or "error" frame.
type Frame struct {
	Type   string       `json:"type"` // "progress" | "result" | "error"
	Done   int          `json:"done,omitempty"`
	Total  int          `json:"total,omitempty"`
	Result *ShardResult `json:"result,omitempty"`
	Error  *ShardError  `json:"error,omitempty"`
}

// axisKey identifies a design point by its swept axes; unique within a
// space because the enumeration is a cross-product.
type axisKey struct {
	cores, l2, fabric, cluster int
}

func keyOf(c *explore.Candidate) axisKey {
	return axisKey{c.Cores, c.L2PerCoreKB, int(c.Fabric), c.ClusterSize}
}

// indexMap maps each design point of the shard back to its global
// enumeration index.
func indexMap(space explore.Space, start, end int) map[axisKey]int {
	specs := explore.Enumerate(space)
	m := make(map[axisKey]int, end-start)
	for i := start; i < end; i++ {
		m[keyOf(&specs[i])] = i
	}
	return m
}

func toWire(c *explore.Candidate, index int) ShardCandidate {
	return ShardCandidate{
		Index:       index,
		Cores:       c.Cores,
		L2PerCoreKB: c.L2PerCoreKB,
		Fabric:      c.Fabric.String(),
		ClusterSize: c.ClusterSize,
		TDPW:        c.TDP,
		AreaMM2:     c.AreaMM2,
		PerfIPS:     c.Perf,
		RuntimeW:    c.RunW,
		Feasible:    c.Feasible,
		Reject:      c.Reject,
		Score:       c.Score,
	}
}

// fromWire converts a wire candidate back to the engine form. The
// fabric name always parses on a well-formed result (it was produced by
// String()); a corrupted name degrades to the zero kind rather than
// failing the merge, and the property tests pin the round-trip.
func fromWire(c *ShardCandidate) explore.Candidate {
	k, _ := parseFabric(c.Fabric)
	return explore.Candidate{
		Cores:       c.Cores,
		L2PerCoreKB: c.L2PerCoreKB,
		Fabric:      k,
		ClusterSize: c.ClusterSize,
		TDP:         c.TDPW,
		AreaMM2:     c.AreaMM2,
		Perf:        c.PerfIPS,
		RunW:        c.RuntimeW,
		Feasible:    c.Feasible,
		Reject:      c.Reject,
		Score:       c.Score,
	}
}

// EvalShard evaluates one shard with the single-process engine and
// packages the outcome in wire form. It is the one evaluation path for
// every worker: the serve layer calls it to answer POST /v1/dse/shard,
// and the coordinator's built-in local worker calls it directly.
// onProgress, when non-nil, receives the engine's shard-local progress.
func EvalShard(ctx context.Context, spec ShardSpec, onProgress func(done, total int)) (*ShardResult, error) {
	opts := &explore.Options{
		Workers:          spec.Workers,
		SynthWorkers:     spec.SynthWorkers,
		CandidateTimeout: spec.CandidateTimeout,
		OnProgress:       onProgress,
		Shard:            &explore.ShardRange{Start: spec.Start, End: spec.End},
	}
	res, err := explore.SearchContext(ctx, spec.Params, spec.Space, spec.Cons, spec.Obj, opts)
	if err != nil {
		return nil, err
	}
	idx := indexMap(spec.Space, spec.Start, spec.End)
	out := &ShardResult{
		Start:      spec.Start,
		End:        spec.End,
		Evaluated:  res.Evaluated,
		Candidates: make([]ShardCandidate, 0, len(res.Candidates)),
	}
	for i := range res.Candidates {
		c := &res.Candidates[i]
		out.Candidates = append(out.Candidates, toWire(c, idx[keyOf(c)]))
	}
	// The engine ranks candidates by score; the merge wants enumeration
	// order, so restore it here where the index is at hand.
	sort.Slice(out.Candidates, func(i, j int) bool {
		return out.Candidates[i].Index < out.Candidates[j].Index
	})
	for i := range res.Failures {
		f := &res.Failures[i]
		out.Failures = append(out.Failures, ShardFailure{
			Index:     idx[keyOf(&f.Candidate)],
			Candidate: toWire(&f.Candidate, idx[keyOf(&f.Candidate)]),
			Error:     *WireError(f.Err),
		})
	}
	sort.Slice(out.Failures, func(i, j int) bool {
		return out.Failures[i].Index < out.Failures[j].Index
	})
	for i := range res.Front {
		c := &res.Front[i]
		out.Front = append(out.Front, toWire(c, idx[keyOf(c)]))
	}
	return out, nil
}

// WireError maps an evaluation error to the wire form using the
// guard taxonomy kind names shared with the HTTP error bodies.
func WireError(err error) *ShardError {
	kind := "internal"
	switch {
	case errors.Is(err, guard.ErrConfig):
		kind = "config"
	case errors.Is(err, guard.ErrInfeasible):
		kind = "infeasible"
	case errors.Is(err, guard.ErrModelDomain):
		kind = "model_domain"
	case errors.Is(err, context.DeadlineExceeded):
		kind = "timeout"
	case errors.Is(err, context.Canceled):
		kind = "canceled"
	}
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return &ShardError{Kind: kind, Path: guard.PathOf(err), Message: msg}
}
