package logic

import (
	"testing"
	"testing/quick"

	"mcpat/internal/power"
	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

func TestFunctionalUnitReferenceValues(t *testing.T) {
	n := techtest.Node(90)
	alu := mustFU(n, tech.HP, false, IntALU)
	if pj := alu.Energy.Read * 1e12; pj < 5 || pj > 7 {
		t.Errorf("90nm ALU energy = %.2f pJ, want ~6", pj)
	}
	if mm2 := alu.Area * 1e6; mm2 < 0.10 || mm2 > 0.12 {
		t.Errorf("90nm ALU area = %.3f mm^2, want ~0.11", mm2)
	}
	fpu := mustFU(n, tech.HP, false, FPU)
	if fpu.Energy.Read <= alu.Energy.Read || fpu.Area <= alu.Area {
		t.Error("FPU must be bigger and hungrier than an ALU")
	}
	mul := mustFU(n, tech.HP, false, MulDiv)
	if !(mul.Energy.Read > alu.Energy.Read && mul.Energy.Read < fpu.Energy.Read) {
		t.Error("MulDiv energy should sit between ALU and FPU")
	}
}

func TestFunctionalUnitScaling(t *testing.T) {
	a90 := mustFU(techtest.Node(90), tech.HP, false, IntALU)
	a45 := mustFU(techtest.Node(45), tech.HP, false, IntALU)
	areaRatio := a90.Area / a45.Area
	if areaRatio < 3.5 || areaRatio > 4.5 {
		t.Errorf("90->45 ALU area ratio = %.2f, want ~4", areaRatio)
	}
	if a45.Energy.Read >= a90.Energy.Read {
		t.Error("scaling must reduce FU energy")
	}
	if a45.Delay >= a90.Delay {
		t.Error("scaling must reduce FU delay")
	}
}

func TestFunctionalUnitDeviceClasses(t *testing.T) {
	n := techtest.Node(45)
	hp := mustFU(n, tech.HP, false, FPU)
	lstp := mustFU(n, tech.LSTP, false, FPU)
	if lstp.Static.Sub >= hp.Static.Sub {
		t.Errorf("LSTP FPU leakage (%.3g) must be far below HP (%.3g)", lstp.Static.Sub, hp.Static.Sub)
	}
	if lstp.Delay <= hp.Delay {
		t.Error("LSTP FPU must be slower than HP")
	}
	lc := mustFU(n, tech.HP, true, FPU)
	if lc.Static.Sub >= hp.Static.Sub*0.2 {
		t.Errorf("long-channel leakage (%.3g) should be ~10%% of standard (%.3g)", lc.Static.Sub, hp.Static.Sub)
	}
}

func TestDecoder(t *testing.T) {
	n := techtest.Node(65)
	risc := Decoder(n, tech.HP, false, DecoderConfig{Width: 4, OpcodeBits: 8})
	cisc := Decoder(n, tech.HP, false, DecoderConfig{Width: 4, OpcodeBits: 8, X86: true})
	if cisc.Energy.Read <= risc.Energy.Read || cisc.Area <= risc.Area {
		t.Error("x86 decode must cost more than RISC decode")
	}
	if risc.Energy.Read <= 0 || risc.Delay <= 0 {
		t.Errorf("invalid decoder result: %+v", risc)
	}
	// Defaults for zero-valued config.
	def := Decoder(n, tech.HP, false, DecoderConfig{})
	if def.Energy.Read <= 0 {
		t.Error("default decoder config must be valid")
	}
}

func TestDependencyCheckQuadraticInWidth(t *testing.T) {
	n := techtest.Node(65)
	w2 := DependencyCheck(n, tech.HP, false, 2, 7)
	w8 := DependencyCheck(n, tech.HP, false, 8, 7)
	ratio := w8.Energy.Read / w2.Energy.Read
	if ratio < 10 || ratio > 40 {
		t.Errorf("2->8 wide dep-check energy ratio = %.1f, want ~28 (quadratic)", ratio)
	}
	w1 := DependencyCheck(n, tech.HP, false, 1, 7)
	if w1.Energy.Read <= 0 {
		t.Error("scalar dep-check should still have minimal cost")
	}
}

func TestSelectionGrowsWithWindow(t *testing.T) {
	n := techtest.Node(65)
	s16 := Selection(n, tech.HP, false, 16, 4)
	s128 := Selection(n, tech.HP, false, 128, 4)
	if s128.Energy.Read <= s16.Energy.Read {
		t.Error("larger window must cost more select energy")
	}
	if s128.Delay <= s16.Delay {
		t.Error("larger window must have deeper select tree")
	}
	if s128.Area <= s16.Area {
		t.Error("larger window must use more arbiter area")
	}
}

func TestQuickLogicPositive(t *testing.T) {
	n := techtest.Node(32)
	f := func(w, tb uint8) bool {
		width := int(w%8) + 1
		tag := int(tb%10) + 4
		d := DependencyCheck(n, tech.HP, false, width, tag)
		s := Selection(n, tech.HP, false, width*16, width)
		return d.Energy.Read > 0 && d.Area > 0 && d.Static.Sub > 0 &&
			s.Energy.Read > 0 && s.Area > 0 && s.Delay > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// mustFU is the test-only panicking variant of FunctionalUnit.
func mustFU(n *tech.Node, dt tech.DeviceType, longChannel bool, kind FUKind) power.PAT {
	p, err := FunctionalUnit(n, dt, longChannel, kind)
	if err != nil {
		panic(err)
	}
	return p
}

func TestFunctionalUnitUnknownKind(t *testing.T) {
	if _, err := FunctionalUnit(techtest.Node(90), tech.HP, false, FUKind(99)); err == nil {
		t.Fatal("unknown FU kind must return an error, not panic")
	}
	if _, err := FunctionalUnit(nil, tech.HP, false, IntALU); err == nil {
		t.Fatal("nil node must return an error, not panic")
	}
}
