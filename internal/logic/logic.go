// Package logic implements McPAT's models for random logic and datapath
// macros: instruction decoders, inter-instruction dependency-check logic,
// issue selection (arbitration) logic, and the functional units (integer
// ALU, FPU, multiplier/divider).
//
// Regular logic (decoders, comparators, arbiters) is modeled structurally
// from gate counts and the circuit primitives. Functional units have
// custom layouts that analytical models capture poorly, so - exactly as
// McPAT does - they use empirical models: per-operation energy and area
// calibrated at a 90 nm reference point against published processor data
// (Sun Niagara's shared FPU, Alpha 21264-class integer datapaths) and
// scaled across nodes by capacitance (~F), voltage (V^2), and area (F^2).
package logic

import (
	"fmt"
	"math"

	"mcpat/internal/circuit"
	"mcpat/internal/guard"
	"mcpat/internal/power"
	"mcpat/internal/tech"
)

// FUKind identifies a functional-unit class.
type FUKind int

const (
	// IntALU is a 64-bit integer ALU (add/sub/logic/shift).
	IntALU FUKind = iota
	// FPU is a pipelined floating-point add/multiply unit.
	FPU
	// MulDiv is an integer multiplier/divider.
	MulDiv
)

func (k FUKind) String() string {
	switch k {
	case IntALU:
		return "IntALU"
	case FPU:
		return "FPU"
	case MulDiv:
		return "MulDiv"
	}
	return fmt.Sprintf("FUKind(%d)", int(k))
}

// fuRef holds the 90 nm HP 1.2 V reference calibration of one FU class.
type fuRef struct {
	energy  float64 // J per operation
	area    float64 // m^2
	fo4     float64 // logic depth of one pipeline stage in FO4 units
	leakPct float64 // leakage density factor (fraction of active width leaking)
}

// Reference points: an Alpha-class 64-bit ALU burns ~6 pJ/op at 90 nm and
// occupies ~0.11 mm^2; Niagara's shared FPU class unit ~1.1 mm^2 and
// ~35 pJ/op; a 64-bit multiplier ~0.35 mm^2 and ~20 pJ/op.
var fuRefs = map[FUKind]fuRef{
	IntALU: {energy: 6e-12, area: 0.11e-6, fo4: 22, leakPct: 0.40},
	FPU:    {energy: 35e-12, area: 1.10e-6, fo4: 26, leakPct: 0.35},
	MulDiv: {energy: 20e-12, area: 0.35e-6, fo4: 30, leakPct: 0.35},
}

const (
	refFeature = 90e-9
	refVdd     = 1.2
)

// FunctionalUnit synthesizes one functional unit of the given kind on the
// given technology/device. The returned PAT carries Energy.Read as the
// per-operation energy and Delay as the latency of one pipeline stage.
// An unrecognized kind is reported as a configuration error rather than
// a panic, keeping the model crash-free under bad inputs.
func FunctionalUnit(n *tech.Node, dt tech.DeviceType, longChannel bool, kind FUKind) (power.PAT, error) {
	ref, ok := fuRefs[kind]
	if !ok {
		return power.PAT{}, guard.Configf("logic", "unknown FU kind %v", kind)
	}
	if n == nil {
		return power.PAT{}, guard.Configf("logic", "nil technology node")
	}
	d := n.Device(dt, longChannel)
	fScale := n.Feature / refFeature
	vScale := (d.Vdd / refVdd) * (d.Vdd / refVdd)

	area := ref.area * fScale * fScale
	energy := ref.energy * fScale * vScale
	delay := ref.fo4 * n.FO4(dt, longChannel)

	// Leakage: total transistor width scales as area / feature size; the
	// leaking fraction is the calibration's leakPct.
	totalW := ref.leakPct * area / n.Feature
	sub := d.Ioff(totalW/2, totalW/2, n.Temperature) * d.Vdd
	gate := d.Ig(totalW) * d.Vdd

	return power.PAT{
		Energy: power.Energy{Read: energy},
		Static: power.Static{Sub: sub, Gate: gate},
		Area:   area,
		Delay:  delay,
	}, nil
}

// DecoderConfig describes an instruction decoder block.
type DecoderConfig struct {
	Width      int  // instructions decoded per cycle
	OpcodeBits int  // primary opcode field width
	X86        bool // CISC decode adds a microcode ROM and length decode
}

// Decoder models the instruction decode logic: per-lane opcode decoders
// (NAND trees feeding control-signal drivers) plus, for x86, microcode
// sequencing overheads.
func Decoder(n *tech.Node, dt tech.DeviceType, longChannel bool, cfg DecoderConfig) power.PAT {
	if cfg.Width <= 0 {
		cfg.Width = 1
	}
	if cfg.OpcodeBits <= 0 {
		cfg.OpcodeBits = 8
	}
	c := circuit.NewCtx(n, dt, longChannel)
	wmin := n.MinWidthN()

	// One lane: a 2-level predecode of the opcode plus ~80 driven control
	// signals, each a 4x inverter load.
	gatesPerLane := float64(cfg.OpcodeBits)*6 + 80
	cLane := gatesPerLane * c.InvCin(2*wmin)
	ePerInst := c.SwitchE(cLane) * 0.5 // ~half the control signals toggle
	areaPerLane := gatesPerLane * 10 * 8 * n.Feature * n.Feature * 4
	delay := (3 + 0.5*math.Log2(float64(cfg.OpcodeBits))) * c.FO4()

	mult := 1.0
	if cfg.X86 {
		// Length decode + microcode sequencer roughly triples the
		// decode datapath; the uROM itself is modeled by the caller as
		// an array.
		mult = 3.0
	}
	w := float64(cfg.Width)
	totalW := gatesPerLane * 3 * wmin * w * mult
	sub := c.Dev.Ioff(totalW/2, totalW/2, n.Temperature) * c.Vdd()
	gate := c.Dev.Ig(totalW) * c.Vdd()

	return power.PAT{
		Energy: power.Energy{Read: ePerInst * mult}, // per decoded instruction
		Static: power.Static{Sub: sub, Gate: gate},
		Area:   areaPerLane * w * mult,
		Delay:  delay,
	}
}

// DependencyCheck models the inter-instruction dependency comparators of a
// superscalar rename/issue stage: each of the W instructions compares its
// two source tags against the destinations of all earlier instructions in
// the group.
func DependencyCheck(n *tech.Node, dt tech.DeviceType, longChannel bool, width, tagBits int) power.PAT {
	if width <= 0 {
		width = 1
	}
	if tagBits <= 0 {
		tagBits = 7
	}
	c := circuit.NewCtx(n, dt, longChannel)
	wmin := n.MinWidthN()

	comparators := width * (width - 1) // 2 sources x (W choose 2) pairs
	if comparators == 0 {
		comparators = 1
	}
	cCmp := float64(tagBits) * 4 * wmin * c.Dev.CgPerW // XOR per bit + match chain
	ePerGroup := float64(comparators) * c.SwitchE(cCmp) * 0.5
	delay := (2 + math.Log2(float64(tagBits))) * 0.5 * c.FO4()

	totalW := float64(comparators) * float64(tagBits) * 6 * wmin
	sub := c.Dev.Ioff(totalW/2, totalW/2, n.Temperature) * c.Vdd()
	gate := c.Dev.Ig(totalW) * c.Vdd()
	area := float64(comparators) * float64(tagBits) * 60 * n.Feature * n.Feature

	return power.PAT{
		Energy: power.Energy{Read: ePerGroup}, // per renamed group
		Static: power.Static{Sub: sub, Gate: gate},
		Area:   area,
		Delay:  delay,
	}
}

// Selection models the issue-select arbitration tree that picks ready
// instructions out of an issue window: a tree of 4-input arbiter cells,
// one tree per issue port.
func Selection(n *tech.Node, dt tech.DeviceType, longChannel bool, windowEntries, issueWidth int) power.PAT {
	if windowEntries <= 0 {
		windowEntries = 1
	}
	if issueWidth <= 0 {
		issueWidth = 1
	}
	c := circuit.NewCtx(n, dt, longChannel)
	wmin := n.MinWidthN()

	levels := int(math.Ceil(math.Log(float64(windowEntries)) / math.Log(4)))
	if levels < 1 {
		levels = 1
	}
	cellsPerTree := 0
	for l, cnt := 0, windowEntries; l < levels; l++ {
		cnt = (cnt + 3) / 4
		cellsPerTree += cnt
	}
	// Each arbiter cell ~10 gates; request/grant round trip switches the
	// path once per selection.
	cCell := 10 * 2 * wmin * c.Dev.CgPerW
	ePerSelect := float64(levels) * 4 * c.SwitchE(cCell)
	delay := float64(2*levels) * c.FO4() // request up + grant down

	trees := float64(issueWidth)
	totalW := float64(cellsPerTree) * 10 * 3 * wmin * trees
	sub := c.Dev.Ioff(totalW/2, totalW/2, n.Temperature) * c.Vdd()
	gate := c.Dev.Ig(totalW) * c.Vdd()
	area := float64(cellsPerTree) * 10 * 30 * n.Feature * n.Feature * trees

	return power.PAT{
		Energy: power.Energy{Read: ePerSelect}, // per issued instruction
		Static: power.Static{Sub: sub, Gate: gate},
		Area:   area,
		Delay:  delay,
	}
}
